package hputune

import (
	"hputune/internal/deadline"
	"hputune/internal/randx"
	"hputune/internal/retainer"
)

// Comparator baselines from the paper's related-work section: the
// deadline-driven pricing model of Gao & Parameswaran (reference [29],
// acceptance-only latency, pure-parallel repetitions) and the prepaid
// Retainer Model of Bernstein et al. (references [26–28]).
type (
	// DeadlineTask is one atomic task with its own acceptance deadline.
	DeadlineTask = deadline.Task
	// MinCostResult is a solved min-cost-under-deadlines instance.
	MinCostResult = deadline.MinCostResult
	// ParallelResult is a solved min-makespan-under-budget instance in
	// the pure-parallel model of [29].
	ParallelResult = deadline.ParallelResult
	// RetainerPool is a prepaid worker pool configuration.
	RetainerPool = retainer.Pool
	// RetainerChoice is an optimized pool size with its cost/makespan.
	RetainerChoice = retainer.PoolChoice
)

// MinCostForDeadlines solves problem 1 of [29]: the cheapest per-task
// payments meeting every acceptance deadline with the given confidence.
func MinCostForDeadlines(tasks []DeadlineTask, confidence float64, maxPrice int) (MinCostResult, error) {
	return deadline.MinCostForDeadlines(tasks, confidence, maxPrice)
}

// MinimizeExpectedMaxParallel solves problem 2 of [29]: minimize the
// expected acceptance makespan under a budget, treating every repetition
// as an independent parallel task. Use it as the comparator against
// SolveRepetition/SolveHeterogeneous.
func MinimizeExpectedMaxParallel(p Problem) (ParallelResult, error) {
	return deadline.MinimizeExpectedMax(p)
}

// QuantileDeadline returns the time by which the whole pure-parallel task
// set is accepted with the given confidence under uniform per-group
// prices — the deadline [29] would quote for an allocation.
func QuantileDeadline(groups []Group, prices []int, confidence float64) (float64, error) {
	return deadline.QuantileDeadline(groups, prices, confidence)
}

// RetainerBatchMakespan returns the exact expected makespan of n tasks on
// a retainer pool (work-conserving dispatch, exponential service).
func RetainerBatchMakespan(p RetainerPool, n int) (float64, error) {
	return retainer.BatchMakespan(p, n)
}

// RetainerBatchCost returns the expected cost of an n-task batch on the
// pool: per-task payments plus fees over the expected makespan.
func RetainerBatchCost(p RetainerPool, n int) (float64, error) {
	return retainer.BatchCost(p, n)
}

// OptimizeRetainerPool picks the pool size minimizing expected batch
// makespan within an expected-cost budget.
func OptimizeRetainerPool(n int, budget float64, serviceRate, fee, taskPayment float64, maxWorkers int) (RetainerChoice, error) {
	return retainer.OptimizePoolSize(n, budget, serviceRate, fee, taskPayment, maxWorkers)
}

// RetainerSteadyStateLatency returns the expected task latency (queueing
// wait plus service) of a streaming retainer pool facing Poisson arrivals
// at rate lambda — the M/M/c analysis of [27].
func RetainerSteadyStateLatency(p RetainerPool, lambda float64) (float64, error) {
	return retainer.SteadyStateLatency(p, lambda)
}

// SimulateRetainerBatch runs one batch through the pool and returns the
// realized makespan (seeded).
func SimulateRetainerBatch(p RetainerPool, n int, seed uint64) (float64, error) {
	return retainer.SimulateBatch(p, n, randx.New(seed))
}
