package hputune

import (
	"io"

	"hputune/internal/experiments"
	"hputune/internal/inference"
	"hputune/internal/market"
	"hputune/internal/textplot"
	"hputune/internal/trace"
	"hputune/internal/workload"
)

// Marketplace simulation, re-exported from the discrete-event engine that
// stands in for Amazon Mechanical Turk.
type (
	// Market is one marketplace simulation run.
	Market = market.Sim
	// MarketConfig parameterizes a run (mode, arrival rate, seed, horizon).
	MarketConfig = market.Config
	// MarketMode selects the acceptance mechanism.
	MarketMode = market.Mode
	// TaskClass describes one kind of task on the marketplace.
	TaskClass = market.TaskClass
	// TaskSpec is one task to post: class plus per-repetition prices.
	TaskSpec = market.TaskSpec
	// RepRecord is the trace of one completed repetition.
	RepRecord = market.RepRecord
	// TaskResult aggregates a completed task's repetitions.
	TaskResult = market.TaskResult
	// MarketSummary aggregates a finished run.
	MarketSummary = market.Summary
	// PhaseSeries are per-repetition latencies ordered by acceptance.
	PhaseSeries = market.PhaseSeries
)

// Marketplace acceptance modes.
const (
	// ModeIndependent accepts each open repetition on its own exponential
	// clock — the paper's analytical model.
	ModeIndependent = market.ModeIndependent
	// ModeWorkerChoice routes Poisson worker arrivals through a choice
	// among open tasks (introduces competition between tasks).
	ModeWorkerChoice = market.ModeWorkerChoice
)

// NewMarket creates a marketplace simulation.
func NewMarket(cfg MarketConfig) (*Market, error) { return market.New(cfg) }

// MarketBuffers is reusable backing storage for market simulations: a
// caller driving many runs in sequence hands the same *MarketBuffers to
// each NewMarketWithBuffers call, and steady-state runs allocate almost
// nothing. One MarketBuffers belongs to one Market at a time, and
// reusing it invalidates everything the previous run returned by
// reference (results, flattened records) — copy what must survive. See
// the "Scratch-buffer ownership" section of the package documentation.
type MarketBuffers = market.Buffers

// NewMarketWithBuffers is NewMarket recycling buf's backing storage
// (nil buf is exactly NewMarket). Buffer reuse is a pure allocation
// optimization: results are bit-identical to a fresh Market's.
func NewMarketWithBuffers(cfg MarketConfig, buf *MarketBuffers) (*Market, error) {
	return market.NewWithBuffers(cfg, buf)
}

// ReplicatedMakespans runs rounds independent simulations of the same
// task batch across a bounded worker pool (workers <= 0 means
// GOMAXPROCS) and returns each round's makespan in round order. Round
// i's seed derives only from (cfg.Seed, i), so the slice is a pure
// function of the arguments no matter the worker count — the
// deterministic batch primitive behind SimulateBatch and the
// experiments. Note the seed-compatibility consequence: replicated
// estimates at seed s do not reproduce a single-stream run at seed s
// (round 0 draws from a derived stream, not cfg.Seed itself).
func ReplicatedMakespans(cfg MarketConfig, specs []TaskSpec, rounds, workers int) ([]float64, error) {
	return market.ReplicatedMakespans(cfg, specs, rounds, workers)
}

// SummarizeMarket aggregates a finished run's results.
func SummarizeMarket(results []TaskResult) MarketSummary { return market.Summarize(results) }

// CollectPhases extracts ordered per-phase latency series from a run.
func CollectPhases(results []TaskResult) PhaseSeries { return market.CollectPhases(results) }

// Parameter inference (Sec 3.3 of the paper).
type (
	// RateEstimate is one estimated clock rate with its sample size.
	RateEstimate = inference.RateEstimate
	// Probe publishes probe tasks and measures acceptance rates.
	Probe = inference.Probe
	// LinearityResult is a probe sweep with its λo(c) linear fit.
	LinearityResult = inference.LinearityResult
)

// EstimateFixedPeriod applies the fixed-period MLE λ̂ = N/T₀.
func EstimateFixedPeriod(n int, period float64) (RateEstimate, error) {
	return inference.EstimateFixedPeriod(n, period)
}

// EstimateRandomPeriod applies the random-period MLE, optionally
// bias-corrected to (N−1)/T₀.
func EstimateRandomPeriod(n int, period float64, biasCorrect bool) (RateEstimate, error) {
	return inference.EstimateRandomPeriod(n, period, biasCorrect)
}

// EstimateFromDurations is the MLE for iid exponential observations.
func EstimateFromDurations(durations []float64) (RateEstimate, error) {
	return inference.EstimateFromDurations(durations)
}

// SplitPhases recovers λp = λ − λo from overall and on-hold estimates.
func SplitPhases(overall, onhold RateEstimate) (RateEstimate, error) {
	return inference.SplitPhases(overall, onhold)
}

// Experiment reproduction (every table and figure of the paper).
type (
	// ExperimentConfig tunes experiment fidelity (seed, trials, rounds).
	ExperimentConfig = experiments.Config
	// ExperimentResult is one experiment's figures and notes.
	ExperimentResult = experiments.Result
	// Figure is a renderable chart of named series.
	Figure = textplot.Figure
	// Series is one named line of (x, y) points.
	Series = textplot.Series
)

// ExperimentNames lists the reproducible experiments in paper order.
func ExperimentNames() []string { return experiments.Names() }

// DescribeExperiment returns an experiment's one-line description.
func DescribeExperiment(name string) (string, error) { return experiments.Describe(name) }

// RunExperiment regenerates one of the paper's tables or figures.
func RunExperiment(name string, cfg ExperimentConfig) (ExperimentResult, error) {
	return experiments.Run(name, cfg)
}

// RenderChart draws a figure as an ASCII chart.
func RenderChart(f Figure, width, height int) string { return textplot.RenderChart(f, width, height) }

// RenderTable renders a figure's series as an aligned numeric table.
func RenderTable(f Figure) string { return textplot.RenderTable(f) }

// Calibrated workloads (the paper's experimental setups).

// CalibratedAcceptModel returns the AMT price→rate table measured by the
// paper ($0.05–$0.12 → 0.0038–0.0131 s⁻¹); prices in cents.
func CalibratedAcceptModel() (RateModel, error) { return workload.CalibratedAcceptModel() }

// ImageFilterClass returns the Sec 5.2 image-filter marketplace class
// with 4, 6 or 8 internal votes.
func ImageFilterClass(votes int) (*TaskClass, error) { return workload.ImageFilterClass(votes) }

// Fig2Problem builds one synthetic-evaluation tuning instance.
func Fig2Problem(s WorkloadScenario, model RateModel, budget int) (Problem, error) {
	return workload.Fig2Problem(s, model, budget)
}

// Fig5cProblem builds the Mechanical-Turk tuning comparison instance
// (three types, 10/15/20 repetitions) at a budget in cents.
func Fig5cProblem(budgetCents int) (Problem, error) { return workload.Fig5cProblem(budgetCents) }

// WorkloadScenario selects a Fig 2 scenario.
type WorkloadScenario = workload.Scenario

// Fig 2 scenarios.
const (
	// ScenarioHomogeneous is Fig 2 "homo": 100 identical 5-rep tasks.
	ScenarioHomogeneous = workload.Homogeneous
	// ScenarioRepetition is Fig 2 "repe": 3-rep and 5-rep groups.
	ScenarioRepetition = workload.Repetition
	// ScenarioHeterogeneous is Fig 2 "heter": difficulty also differs.
	ScenarioHeterogeneous = workload.Heterogeneous
)

// SpecsForAllocation materializes a tuned allocation as marketplace task
// specs ready to post (accuracy is the simulated worker correctness).
func SpecsForAllocation(p Problem, a Allocation, accuracy float64) ([]TaskSpec, error) {
	return workload.SpecsForAllocation(p, a, accuracy)
}

// Trace interchange: serialize marketplace repetition records for offline
// inference (the paper's Sec 3.3 pipeline run against collected traces).

// WriteTraceCSV writes repetition records as CSV with a header row.
func WriteTraceCSV(w io.Writer, recs []RepRecord) error { return trace.WriteCSV(w, recs) }

// ReadTraceCSV reads records written by WriteTraceCSV.
func ReadTraceCSV(r io.Reader) ([]RepRecord, error) { return trace.ReadCSV(r) }

// WriteTraceJSONL writes repetition records as JSON Lines.
func WriteTraceJSONL(w io.Writer, recs []RepRecord) error { return trace.WriteJSONL(w, recs) }

// ReadTraceJSONL reads records written by WriteTraceJSONL.
func ReadTraceJSONL(r io.Reader) ([]RepRecord, error) { return trace.ReadJSONL(r) }

// TraceOnHoldDurations extracts per-record on-hold latencies from a trace.
func TraceOnHoldDurations(recs []RepRecord) []float64 { return trace.OnHoldDurations(recs) }

// TraceProcessingDurations extracts per-record processing latencies.
func TraceProcessingDurations(recs []RepRecord) []float64 { return trace.ProcessingDurations(recs) }

// TraceGroupByPrice buckets trace records by offered price.
func TraceGroupByPrice(recs []RepRecord) map[int][]RepRecord { return trace.GroupByPrice(recs) }
