package hputune

import (
	"context"
	"fmt"

	"hputune/internal/campaign"
	"hputune/internal/htuning"
	"hputune/internal/workload"
)

// Closed-loop campaign engine (package campaign): tune → post → observe
// → re-tune, per job, until budget exhaustion, convergence of the
// re-fitted price→rate model, or a round deadline. Campaigns run
// concurrently as fleets (RunCampaignFleet) or in the background under
// the htuned service's /v1/campaigns endpoints; every campaign's
// per-round allocations are a pure function of its Campaign config, no
// matter how it is driven.
type (
	// Campaign configures one closed loop: workload groups with their
	// true market classes, the tuner's prior, budgets, convergence
	// epsilon, drift and the optional custom executor.
	Campaign = campaign.Config
	// CampaignGroup is one set of identical tasks in a campaign.
	CampaignGroup = campaign.Group
	// CampaignMarketOptions configures the default market executor.
	CampaignMarketOptions = campaign.MarketOptions
	// CampaignDrift perturbs the true market between rounds (kinds:
	// "rate", "shock", "shrink").
	CampaignDrift = campaign.Drift
	// CampaignExecutor runs one round's allocation on a backend; the
	// market simulator is the default, real backends plug in here.
	CampaignExecutor = campaign.Executor
	// CampaignObservation is an executed round's traces and makespan.
	CampaignObservation = campaign.Observation
	// CampaignStatus is a campaign lifecycle state.
	CampaignStatus = campaign.Status
	// CampaignRound is one completed round's snapshot.
	CampaignRound = campaign.RoundSnapshot
	// CampaignResult is a campaign's inspectable (live or final) state.
	CampaignResult = campaign.Result
	// CrowdQuery switches a campaign to the crowd-DB query executor: one
	// full top-k or group-by query per round, priced per difficulty by
	// the round's tuned allocation (Campaign.Query).
	CrowdQuery = campaign.CrowdQuery
	// DeadlineSLO imposes a per-round latency SLO checked by the [29]
	// comparator before each solve (Campaign.Deadline).
	DeadlineSLO = campaign.DeadlineSLO
	// CampaignRetainerPool serves a share of each round's repetitions
	// from a pre-paid standby pool (Campaign.Retainer). Distinct from
	// RetainerPool, the comparator-side pool of package retainer.
	CampaignRetainerPool = campaign.RetainerPool
	// CampaignQueryInfo is a round's crowd-query outcome.
	CampaignQueryInfo = campaign.QueryInfo
	// CampaignSLOInfo is a round's deadline-SLO accounting.
	CampaignSLOInfo = campaign.SLOInfo
	// CampaignRetainerInfo is a round's retainer-pool accounting.
	CampaignRetainerInfo = campaign.RetainerInfo
)

// RunCampaign drives one closed-loop campaign to a terminal status.
// est may be shared (nil gets a fresh one); sharing never changes
// results.
func RunCampaign(ctx context.Context, est *Estimator, cfg Campaign) (CampaignResult, error) {
	return campaign.Run(ctx, est, cfg)
}

// RunCampaignFleet drives many campaigns concurrently on a bounded
// worker pool (workers <= 0 means GOMAXPROCS), sharing one estimator.
// Results are in campaign order and independent of the pool width.
func RunCampaignFleet(ctx context.Context, est *Estimator, cfgs []Campaign, workers int) ([]CampaignResult, error) {
	return campaign.RunFleet(ctx, est, cfgs, workers)
}

// PaperCampaignFleet builds the paper's scenario fleet as campaigns:
// Fig 2 homogeneous/repetition/heterogeneous, the Fig 5(c) calibrated
// job, and drifted variants (rate drift, price shock, shrinking worker
// pool, quadratic model misfit). Deterministic in seed.
func PaperCampaignFleet(seed uint64) ([]Campaign, error) {
	return workload.PaperCampaignFleet(seed)
}

// CrowdQueryCampaignFleet builds the crowd-DB scenario fleet: four
// campaigns that each run a full crowd query per round — tournament
// top-k, sequential-discovery group-by, the top-k query under a
// deadline SLO, and the top-k query with a retainer pool. Deterministic
// in seed.
func CrowdQueryCampaignFleet(seed uint64) ([]Campaign, error) {
	return workload.CrowdQueryCampaignFleet(seed)
}

// Solve tunes an instance with the solver the paper prescribes for its
// shape — EA for one group (Scenario I), RA for equal processing rates
// (Scenario II), HA otherwise (Scenario III) — and returns the
// materialized allocation. It is the high-level entry point; use
// EvenAllocation, SolveRepetition or SolveHeterogeneous directly for
// solver-specific diagnostics.
func Solve(est *Estimator, p Problem) (Allocation, error) {
	if err := p.Validate(); err != nil {
		return Allocation{}, err
	}
	if est == nil {
		est = NewEstimator()
	}
	if len(p.Groups) == 1 {
		return EvenAllocation(p)
	}
	heter := false
	proc := p.Groups[0].Type.ProcRate
	for _, g := range p.Groups[1:] {
		if g.Type.ProcRate != proc {
			heter = true
			break
		}
	}
	if heter {
		res, err := htuning.SolveHeterogeneous(est, p)
		if err != nil {
			return Allocation{}, fmt.Errorf("hputune: %w", err)
		}
		return res.Allocation(p)
	}
	res, err := htuning.SolveRepetition(est, p)
	if err != nil {
		return Allocation{}, fmt.Errorf("hputune: %w", err)
	}
	return res.Allocation(p)
}
