module hputune

go 1.24
