package hputune

import (
	"hputune/internal/crowddb"
	"hputune/internal/randx"
)

// Crowd-powered database layer (the paper's motivating application):
// sort, filter and max queries decomposed into atomic voting tasks.
type (
	// Item is a database item with a latent numeric value.
	Item = crowddb.Item
	// Dataset is an ordered collection of items.
	Dataset = crowddb.Dataset
	// VoteTask is one atomic voting task a query planner emits.
	VoteTask = crowddb.VoteTask
	// VotePlan is one parallel phase of voting tasks.
	VotePlan = crowddb.Plan
	// Decision is a voting task's aggregated majority outcome.
	Decision = crowddb.Decision
	// PhaseOutcome is a completed plan execution with quality metrics.
	PhaseOutcome = crowddb.PhaseOutcome
	// CrowdExecutor runs voting plans on the simulated marketplace.
	CrowdExecutor = crowddb.Executor
	// PricePolicy decides each voting task's per-repetition payments.
	PricePolicy = crowddb.PricePolicy
	// VoteDifficulty buckets tasks by cognitive load.
	VoteDifficulty = crowddb.Difficulty
	// VoteClassSet maps difficulty buckets to marketplace classes.
	VoteClassSet = crowddb.ClassSet
)

// Vote difficulty buckets.
const (
	// VoteEasy is a well-separated comparison or far-from-threshold vote.
	VoteEasy = crowddb.Easy
	// VoteMedium sits between.
	VoteMedium = crowddb.Medium
	// VoteHard is a close comparison or near-threshold vote.
	VoteHard = crowddb.Hard
)

// DotImages synthesizes n images with uniform random dot counts in
// [lo, hi] — the workload of the paper's image-filter experiment.
func DotImages(n, lo, hi int, seed uint64) (Dataset, error) {
	return crowddb.DotImages(n, lo, hi, randx.New(seed))
}

// DefaultVoteClasses builds marketplace classes for the three difficulty
// buckets over a base acceptance model.
func DefaultVoteClasses(base RateModel, baseProcRate float64) (*VoteClassSet, error) {
	return crowddb.DefaultClassSet(base, baseProcRate)
}

// UniformPrice pays every repetition of every voting task the same.
func UniformPrice(price int) PricePolicy { return crowddb.UniformPrice(price) }

// PriceByDifficulty pays per difficulty bucket.
func PriceByDifficulty(prices map[VoteDifficulty]int) PricePolicy {
	return crowddb.PriceByDifficulty(prices)
}

// PlanSortPairs emits one comparison task per item pair with difficulty-
// scaled repetitions.
func PlanSortPairs(items Dataset, baseReps int) (VotePlan, error) {
	return crowddb.PlanSortPairs(items, baseReps)
}

// PlanFilter emits one threshold vote per item.
func PlanFilter(items Dataset, threshold float64, reps int) (VotePlan, error) {
	return crowddb.PlanFilter(items, threshold, reps)
}

// KendallTau returns the normalized Kendall tau distance between two
// rankings (0 identical, 1 reversed).
func KendallTau(a, b []string) (float64, error) { return crowddb.KendallTau(a, b) }

// FilterQuality reports precision and recall of a predicted id set.
func FilterQuality(predicted, truth []string) (precision, recall float64) {
	return crowddb.FilterQuality(predicted, truth)
}

// Group-by and top-k operators (Davidson et al., reference [10] of the
// paper), re-exported from the crowd database layer.
type (
	// GroupByResult is a completed crowd group-by query.
	GroupByResult = crowddb.GroupByResult
	// TopKResult is a completed crowd top-k query.
	TopKResult = crowddb.TopKResult
)

// CategorizedItems synthesizes n items spread round-robin over latent
// categories — the group-by workload.
func CategorizedItems(n int, classes []string, lo, hi int, seed uint64) (Dataset, error) {
	return crowddb.CategorizedItems(n, classes, lo, hi, randx.New(seed))
}

// RandIndex scores a clustering against the items' latent classes
// (1.0 = perfect recovery).
func RandIndex(clusters [][]string, items Dataset) (float64, error) {
	return crowddb.RandIndex(clusters, items)
}
