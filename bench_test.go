// Benchmarks regenerating every table and figure of the paper (one bench
// per experiment), plus ablation benches for the design choices DESIGN.md
// calls out and micro-benches for the solvers and the marketplace engine.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benches run the Fast configuration of each experiment per
// iteration, so the reported time is the cost of regenerating that figure
// (trimmed sweep). The printed figures themselves come from cmd/repro.
package hputune_test

import (
	"testing"

	"hputune"
	"hputune/internal/dist"
	"hputune/internal/htuning"
	"hputune/internal/pricing"
	"hputune/internal/randx"
	"hputune/internal/workload"
)

func benchCfg() hputune.ExperimentConfig {
	return hputune.ExperimentConfig{Seed: 7, Fast: true, Trials: 200, Rounds: 4}
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := hputune.RunExperiment(name, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Figures) == 0 {
			b.Fatal("no figures")
		}
	}
}

// --- One bench per table/figure of the paper ---------------------------

// BenchmarkMotivation regenerates Table 1's motivation examples (Sec 1).
func BenchmarkMotivation(b *testing.B) { runExperiment(b, "motivation") }

// BenchmarkFig2Homogeneous regenerates Fig 2 (a)-(f): EA vs biased splits.
func BenchmarkFig2Homogeneous(b *testing.B) { runExperiment(b, "fig2-homo") }

// BenchmarkFig2Repetition regenerates Fig 2 (g)-(l): RA vs te/re.
func BenchmarkFig2Repetition(b *testing.B) { runExperiment(b, "fig2-repe") }

// BenchmarkFig2Heterogeneous regenerates Fig 2 (m)-(r): HA vs te/re.
func BenchmarkFig2Heterogeneous(b *testing.B) { runExperiment(b, "fig2-heter") }

// BenchmarkFig3Arrivals regenerates Fig 3: worker arrival moments.
func BenchmarkFig3Arrivals(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4Reward regenerates Fig 4: reward vs latency + λ̂ estimates.
func BenchmarkFig4Reward(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5Difficulty regenerates Fig 5(a)/(b): difficulty vs phases.
func BenchmarkFig5Difficulty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"fig5a", "fig5b"} {
			if _, err := hputune.RunExperiment(name, benchCfg()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig5Tuning regenerates Fig 5(c): OPT vs equal-payment HEU.
func BenchmarkFig5Tuning(b *testing.B) { runExperiment(b, "fig5c") }

// BenchmarkLinearity regenerates the Hypothesis-1 probe sweep and fit.
func BenchmarkLinearity(b *testing.B) { runExperiment(b, "linearity") }

// --- Solver micro-benches ----------------------------------------------

func fig2Instance(b *testing.B, s hputune.WorkloadScenario, budget int) hputune.Problem {
	b.Helper()
	p, err := hputune.Fig2Problem(s, hputune.Linear{K: 1, B: 1}, budget)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkEvenAllocation measures Algorithm 1 on the Fig 2 instance.
func BenchmarkEvenAllocation(b *testing.B) {
	p := fig2Instance(b, hputune.ScenarioHomogeneous, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hputune.EvenAllocation(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveRepetition measures Algorithm 2 (greedy RA), cold cache.
func BenchmarkSolveRepetition(b *testing.B) {
	p := fig2Instance(b, hputune.ScenarioRepetition, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hputune.SolveRepetition(hputune.NewEstimator(), p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveHeterogeneous measures Algorithm 3 (HA), cold cache.
func BenchmarkSolveHeterogeneous(b *testing.B) {
	p := fig2Instance(b, hputune.ScenarioHeterogeneous, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hputune.SolveHeterogeneous(hputune.NewEstimator(), p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarketSim measures the discrete-event marketplace on a
// 100-task, 3-repetition batch.
func BenchmarkMarketSim(b *testing.B) {
	class := &hputune.TaskClass{
		Name:     "bench",
		Accept:   hputune.Linear{K: 1, B: 1},
		ProcRate: 2,
		Accuracy: 0.9,
	}
	for i := 0; i < b.N; i++ {
		sim, err := hputune.NewMarket(hputune.MarketConfig{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		for t := 0; t < 100; t++ {
			if err := sim.Post(hputune.TaskSpec{
				ID: "t", Class: class, RepPrices: []int{2, 2, 2},
			}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateJobLatency measures the Monte-Carlo job scorer used by
// the Fig 2 evaluation (1000 trials on the repe instance).
func BenchmarkSimulateJobLatency(b *testing.B) {
	p := fig2Instance(b, hputune.ScenarioRepetition, 3000)
	a, err := hputune.RepEvenAllocation(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hputune.SimulateJobLatency(p, a, hputune.PhaseOnHold, 1000, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (design choices of DESIGN.md) --------------------

// BenchmarkAblationRAGreedy and BenchmarkAblationRADP compare the paper's
// greedy Algorithm 2 against the exact dynamic program on the same
// instance: the greedy should be orders of magnitude cheaper while the
// quality gap (asserted <= 5% in the test suite) stays negligible.
func BenchmarkAblationRAGreedy(b *testing.B) {
	p := fig2Instance(b, hputune.ScenarioRepetition, 5000)
	for i := 0; i < b.N; i++ {
		if _, err := hputune.SolveRepetition(hputune.NewEstimator(), p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRADP(b *testing.B) {
	p := fig2Instance(b, hputune.ScenarioRepetition, 5000)
	for i := 0; i < b.N; i++ {
		if _, err := hputune.SolveRepetitionDP(hputune.NewEstimator(), p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMaxSurvivalForm and BenchmarkAblationMaxDensityForm
// compare the two E[max] integrands: the survival form ∫(1-Fⁿ) used by
// the estimators versus the paper's density form ∫ n·t·Fⁿ⁻¹·f. Both give
// the same value (asserted in the dist tests); the survival form is the
// default for conditioning, and these benches record the cost of each.
func BenchmarkAblationMaxSurvivalForm(b *testing.B) {
	base, err := dist.NewErlang(5, 3)
	if err != nil {
		b.Fatal(err)
	}
	m, err := dist.NewMaxOrder(100, base)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Mean()
	}
}

func BenchmarkAblationMaxDensityForm(b *testing.B) {
	base, err := dist.NewErlang(5, 3)
	if err != nil {
		b.Fatal(err)
	}
	m, err := dist.NewMaxOrder(100, base)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.MeanDensityForm()
	}
}

// BenchmarkAblationAnalyticVsMC compares the two job scorers on the same
// uniform allocation: the closed-form ∫(1-ΠFⁿ) integral versus 2000
// Monte-Carlo trials.
func BenchmarkAblationJobAnalytic(b *testing.B) {
	p := fig2Instance(b, hputune.ScenarioRepetition, 3000)
	est := htuning.NewEstimator()
	prices := []int{7, 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.JobExpectedLatency(p.Groups, prices, htuning.PhaseOnHold); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationJobMonteCarlo(b *testing.B) {
	p := fig2Instance(b, hputune.ScenarioRepetition, 3000)
	prices := []float64{7, 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := randx.New(uint64(i))
		if _, err := htuning.SimulateJobLatencyFloat(p.Groups, prices, htuning.PhaseOnHold, 2000, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWorkerChoiceMode measures the cost of the higher-
// fidelity worker-entity acceptance mode relative to BenchmarkMarketSim's
// independent mode.
func BenchmarkAblationWorkerChoiceMode(b *testing.B) {
	class := &hputune.TaskClass{
		Name:     "bench",
		Accept:   hputune.Linear{K: 1, B: 1},
		ProcRate: 2,
		Accuracy: 0.9,
	}
	for i := 0; i < b.N; i++ {
		sim, err := hputune.NewMarket(hputune.MarketConfig{
			Mode:        hputune.ModeWorkerChoice,
			ArrivalRate: 50,
			Seed:        uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		for t := 0; t < 100; t++ {
			if err := sim.Post(hputune.TaskSpec{
				ID: "t", Class: class, RepPrices: []int{2, 2, 2},
			}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimatorCache measures the memoized estimator on a repeated
// query mix (the access pattern of the RA/HA inner loops).
func BenchmarkEstimatorCache(b *testing.B) {
	p := fig2Instance(b, hputune.ScenarioRepetition, 3000)
	est := htuning.NewEstimator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		price := 1 + i%10
		for _, g := range p.Groups {
			if _, err := est.GroupPhase1Mean(g, price); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCrowdSortQuery measures an end-to-end crowd-DB sorting query
// (plan, market execution, aggregation) on 8 items.
func BenchmarkCrowdSortQuery(b *testing.B) {
	items, err := hputune.DotImages(8, 10, 99, 3)
	if err != nil {
		b.Fatal(err)
	}
	classes, err := hputune.DefaultVoteClasses(pricing.Linear{K: 1, B: 1}, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := &hputune.CrowdExecutor{Classes: classes, Config: hputune.MarketConfig{Seed: uint64(i)}}
		if _, _, err := ex.RunSort(items, 3, hputune.UniformPrice(3)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadBuild measures instance construction (allocation-free
// paths matter for sweep loops).
func BenchmarkWorkloadBuild(b *testing.B) {
	model := pricing.Linear{K: 1, B: 1}
	for i := 0; i < b.N; i++ {
		if _, err := workload.Fig2Problem(workload.Heterogeneous, model, 3000); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Comparator benches (extensions beyond the paper) -------------------

// BenchmarkComparator29 regenerates the RA/HA vs [29] budget sweep.
func BenchmarkComparator29(b *testing.B) { runExperiment(b, "comparator-29") }

// BenchmarkRetainer regenerates the posted-price vs retainer-pool sweep.
func BenchmarkRetainer(b *testing.B) { runExperiment(b, "retainer") }

// BenchmarkMinimizeExpectedMaxParallel measures the [29]-style greedy on
// the chain-heavy comparator workload.
func BenchmarkMinimizeExpectedMaxParallel(b *testing.B) {
	vote := &hputune.TaskType{Name: "vote", Accept: hputune.Linear{K: 1, B: 1}, ProcRate: 4}
	p := hputune.Problem{
		Groups: []hputune.Group{
			{Type: vote, Tasks: 3, Reps: 12},
			{Type: vote, Tasks: 40, Reps: 2},
		},
		Budget: 600,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hputune.MinimizeExpectedMaxParallel(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRetainerPoolOptimization measures the pool-size scan.
func BenchmarkRetainerPoolOptimization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := hputune.OptimizeRetainerPool(100, 500, 2, 1, 1, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExponentialityTest measures the Monte-Carlo Lilliefors test on
// an AMT-scale latency sample.
func BenchmarkExponentialityTest(b *testing.B) {
	r := randx.New(5)
	xs := make([]float64, 150)
	for i := range xs {
		xs[i] = r.Exp(0.004)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hputune.TestExponential(xs, 200, 9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrowdGroupBy measures the group-by operator end to end on the
// simulated marketplace.
func BenchmarkCrowdGroupBy(b *testing.B) {
	classes, err := hputune.DefaultVoteClasses(hputune.Linear{K: 1, B: 1}, 2)
	if err != nil {
		b.Fatal(err)
	}
	items, err := hputune.CategorizedItems(12, []string{"cat", "dog", "owl"}, 10, 100, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := &hputune.CrowdExecutor{Classes: classes, Config: hputune.MarketConfig{Seed: uint64(i + 1)}}
		if _, err := e.RunGroupBy(items, 3, hputune.UniformPrice(2)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrowdTopK measures the tournament top-k operator end to end.
func BenchmarkCrowdTopK(b *testing.B) {
	classes, err := hputune.DefaultVoteClasses(hputune.Linear{K: 1, B: 1}, 2)
	if err != nil {
		b.Fatal(err)
	}
	items, err := hputune.DotImages(20, 10, 200, 11)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := &hputune.CrowdExecutor{Classes: classes, Config: hputune.MarketConfig{Seed: uint64(i + 1)}}
		if _, err := e.RunTopK(items, 3, 3, hputune.UniformPrice(2)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationClosenessNorm compares HA under the paper's
// first-order (L1) Closeness against L2 and Chebyshev distances: the
// norm choice barely moves the allocation (the greedy path is driven by
// the same marginal gains) while L1 keeps the arithmetic cheapest.
func BenchmarkAblationClosenessNorm(b *testing.B) {
	p := fig2Instance(b, hputune.ScenarioHeterogeneous, 3000)
	for _, norm := range []hputune.ClosenessNorm{hputune.NormL1, hputune.NormL2, hputune.NormLInf} {
		b.Run(norm.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hputune.SolveHeterogeneousNorm(hputune.NewEstimator(), p, norm); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Concurrency benches (batch engine & sharded Monte Carlo) -----------

// benchBatchProblems builds n distinct Fig-2-shaped instances; budgets
// differ so the solves do real work, task types repeat so the shared
// estimator cache pays off.
func benchBatchProblems(b *testing.B, n int) []hputune.Problem {
	b.Helper()
	problems := make([]hputune.Problem, n)
	for i := range problems {
		problems[i] = fig2Instance(b, hputune.ScenarioRepetition, 2000+100*i)
	}
	return problems
}

// BenchmarkSolveBatch compares the batch RA solver serial vs parallel on
// the same 16 instances. The tuned prices are identical in both modes
// (asserted in internal/engine's tests); on >= 4 cores the parallel run
// should finish the batch at least 2x faster. Workers bounds only the
// batch-level fan-out — each solver keeps its internal two-pass
// concurrency either way — so the measured speedup is conservative.
func BenchmarkSolveBatch(b *testing.B) {
	problems := benchBatchProblems(b, 16)
	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hputune.SolveBatch(hputune.NewEstimator(), problems, hputune.BatchOptions{Workers: mode.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulateParallel compares the trial-sharded Monte-Carlo job
// scorer serial vs parallel on one allocation and 20000 trials. Both
// modes compute the identical estimate for the fixed seed (asserted in
// internal/htuning's determinism tests): only wall-clock differs.
func BenchmarkSimulateParallel(b *testing.B) {
	p := fig2Instance(b, hputune.ScenarioRepetition, 3000)
	a, err := hputune.RepEvenAllocation(p)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hputune.SimulateJobLatencyParallel(p, a, hputune.PhaseOnHold, 20000, 11, mode.workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEstimatorShardedConcurrent measures the sharded cache under
// the contended access pattern of a batch solve: every goroutine reads
// the same hot key mix.
func BenchmarkEstimatorShardedConcurrent(b *testing.B) {
	p := fig2Instance(b, hputune.ScenarioRepetition, 3000)
	est := htuning.NewEstimator()
	// Warm the cache once so the parallel loop measures lookups.
	for price := 1; price <= 10; price++ {
		for _, g := range p.Groups {
			if _, err := est.GroupPhase1Mean(g, price); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		price := 0
		for pb.Next() {
			price = price%10 + 1
			for _, g := range p.Groups {
				if _, err := est.GroupPhase1Mean(g, price); err != nil {
					// Fatal must not be called off the benchmark goroutine.
					b.Error(err)
					return
				}
			}
		}
	})
}

// BenchmarkAbandonment regenerates the failure-injection robustness sweep.
func BenchmarkAbandonment(b *testing.B) { runExperiment(b, "abandonment") }

// BenchmarkHeavyTail regenerates the heavy-tailed-processing robustness sweep.
func BenchmarkHeavyTail(b *testing.B) { runExperiment(b, "heavytail") }
