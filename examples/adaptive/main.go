// Adaptive tuning: a requester who does not know the market's price→rate
// curve starts from a wrong prior, observes each repetition wave's
// acceptance times, re-fits the Linearity Hypothesis and re-tunes the
// remaining budget — versus a stubborn requester who never updates.
package main

import (
	"fmt"
	"log"

	"hputune"
)

func main() {
	// The market truly behaves as λo(c) = c + 1, but the requester
	// believes payment barely matters (λo ≈ 8 regardless of price).
	truth := hputune.Linear{K: 1, B: 1}
	wrongPrior := hputune.Linear{K: 0.05, B: 8}

	class := &hputune.TaskClass{
		Name:     "vote",
		Accept:   truth,
		ProcRate: 4,
		Accuracy: 1,
	}
	groups := []hputune.AdaptiveGroupSpec{
		{Name: "big", Tasks: 40, Reps: 3, TrueClass: class},
		{Name: "small", Tasks: 10, Reps: 5, TrueClass: class},
	}

	run := func(freeze bool) hputune.AdaptiveReport {
		c := &hputune.AdaptiveController{
			Groups: groups,
			Budget: 2500,
			Prior:  wrongPrior,
			Seed:   7,
			Freeze: freeze,
		}
		rep, err := c.Run()
		if err != nil {
			log.Fatalf("adaptive run (freeze=%v): %v", freeze, err)
		}
		return rep
	}

	adaptive := run(false)
	frozen := run(true)

	fmt.Printf("frozen wrong prior: makespan %.3f h, spent %d units\n",
		frozen.Makespan, frozen.Spent)
	fmt.Printf("adaptive:           makespan %.3f h, spent %d units\n",
		adaptive.Makespan, adaptive.Spent)
	fmt.Printf("speedup from learning the market: %.1f%%\n",
		100*(1-adaptive.Makespan/frozen.Makespan))

	fmt.Printf("\nfitted model after the run: λo(c) ≈ %.2f·c + %.2f (truth: 1·c + 1)\n",
		adaptive.FinalFit.Slope, adaptive.FinalFit.Intercept)
	fmt.Println("\nwave-by-wave prices (per repetition, active groups in order):")
	for w, prices := range adaptive.WavePrices {
		fmt.Printf("  wave %d: %v\n", w, prices)
	}
	fmt.Println("\nobserved price levels -> estimated rates:")
	for i, p := range adaptive.PriceLevels {
		fmt.Printf("  c=%-4.0f λ̂o=%.3f\n", p, adaptive.RateEstimates[i])
	}
}
