// Imagefilter: the paper's Sec 5.2 Mechanical Turk experiment on the
// simulated marketplace — workers estimate the number of dots in images
// and filter out those below a threshold. Uses the acceptance rates the
// paper measured on AMT ($0.05 → 0.0038 s⁻¹ ... $0.12 → 0.0131 s⁻¹) and
// shows how the reward level trades money for latency at fixed quality.
package main

import (
	"fmt"
	"log"

	"hputune"
)

func main() {
	// Fifty dot images; keep those with more than 50 dots.
	items, err := hputune.DotImages(50, 5, 100, 99)
	if err != nil {
		log.Fatalf("dataset: %v", err)
	}
	const threshold = 50.0
	var truth []string
	for _, it := range items {
		if it.Value > threshold {
			truth = append(truth, it.ID)
		}
	}

	// Marketplace behaviour calibrated to the paper's AMT measurements.
	calibrated, err := hputune.CalibratedAcceptModel()
	if err != nil {
		log.Fatalf("calibrated model: %v", err)
	}
	classes, err := hputune.DefaultVoteClasses(calibrated, 1.0/90) // ~1.5 min per answer
	if err != nil {
		log.Fatalf("classes: %v", err)
	}

	fmt.Println("reward  makespan     paid  precision  recall")
	for _, rewardCents := range []int{5, 8, 10, 12} {
		ex := &hputune.CrowdExecutor{
			Classes: classes,
			Config:  hputune.MarketConfig{Seed: uint64(1000 + rewardCents)},
		}
		kept, outcome, err := ex.RunFilter(items, threshold, 5, hputune.UniformPrice(rewardCents))
		if err != nil {
			log.Fatalf("reward %d: %v", rewardCents, err)
		}
		precision, recall := hputune.FilterQuality(kept, truth)
		fmt.Printf("$0.%02d  %6.1f min  %4d¢     %5.2f    %5.2f\n",
			rewardCents, outcome.Makespan/60, outcome.Paid, precision, recall)
	}
	fmt.Println()
	fmt.Println("Higher rewards shorten the on-hold phase (the paper's Fig 4);")
	fmt.Println("quality is controlled by votes per image, not by the price.")
}
