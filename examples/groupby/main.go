// Group-by and top-k: the crowd-powered database operators of the
// paper's motivating literature (Davidson et al. [10]) running on the
// simulated marketplace — items are clustered by "same type?" votes and
// ranked by pairwise-comparison tournaments, with the budget knob
// controlling how fast each phase clears.
package main

import (
	"fmt"
	"log"

	"hputune"
)

func main() {
	classes, err := hputune.DefaultVoteClasses(hputune.Linear{K: 1, B: 1}, 2.0)
	if err != nil {
		log.Fatalf("classes: %v", err)
	}

	// 18 items of three latent categories, values overlapping so some
	// "same type?" judgments are genuinely hard.
	items, err := hputune.CategorizedItems(18, []string{"cat", "dog", "owl"}, 10, 100, 42)
	if err != nil {
		log.Fatalf("items: %v", err)
	}

	exec := &hputune.CrowdExecutor{
		Classes: classes,
		Config:  hputune.MarketConfig{Seed: 7},
	}

	// Crowd group-by: sequential phases of same-type votes against
	// cluster representatives.
	gb, err := exec.RunGroupBy(items, 5, hputune.UniformPrice(2))
	if err != nil {
		log.Fatalf("group-by: %v", err)
	}
	ri, err := hputune.RandIndex(gb.Clusters, items)
	if err != nil {
		log.Fatalf("rand index: %v", err)
	}
	fmt.Printf("group-by: %d clusters in %d phases, makespan %.2f h, paid %d units\n",
		len(gb.Clusters), len(gb.Phases), gb.Makespan, gb.Paid())
	fmt.Printf("clustering quality (Rand index vs latent classes): %.3f\n", ri)
	for i, cl := range gb.Clusters {
		fmt.Printf("  cluster %d: %v\n", i, cl)
	}

	// Crowd top-k: pod tournaments until a final full-pairwise round.
	images, err := hputune.DotImages(24, 10, 200, 43)
	if err != nil {
		log.Fatalf("images: %v", err)
	}
	const k = 4
	tk, err := exec.RunTopK(images, k, 5, hputune.UniformPrice(2))
	if err != nil {
		log.Fatalf("top-k: %v", err)
	}
	fmt.Printf("\ntop-%d: %v in %d rounds, makespan %.2f h, paid %d units\n",
		k, tk.TopK, len(tk.Rounds), tk.Makespan, tk.Paid())
	truth := images.ByValue().IDs()[:k]
	fmt.Printf("ground truth top-%d: %v\n", k, truth)

	// Raising the price buys a faster tournament: same job, richer prices.
	rich, err := exec.RunTopK(images, k, 5, hputune.UniformPrice(6))
	if err != nil {
		log.Fatalf("top-k rich: %v", err)
	}
	fmt.Printf("\nat price 6 instead of 2: makespan %.2f h vs %.2f h (%.0f%% faster), paid %d vs %d\n",
		rich.Makespan, tk.Makespan, 100*(1-rich.Makespan/tk.Makespan), rich.Paid(), tk.Paid())
}
