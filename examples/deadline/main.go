// Deadline comparator: price a repetition-heavy job with the H-Tuning
// solvers (Scenarios II/III) and with the acceptance-only, pure-parallel
// model of the paper's closest related work ([29], Gao & Parameswaran),
// then score all allocations under the full HPU model. The comparator
// treats a task's k sequential repetitions as k independent parallel
// clocks, so it underestimates chain latency by roughly k/H_k and
// underpays the chain-heavy group.
package main

import (
	"fmt"
	"log"

	"hputune"
)

func main() {
	// A few long-chain tasks (3 tasks × 12 sequential answers) next to a
	// wide fan of short ones (40 tasks × 2 answers).
	vote := &hputune.TaskType{
		Name:     "pairwise-vote",
		Accept:   hputune.Linear{K: 1, B: 1},
		ProcRate: 4.0,
	}
	problem := hputune.Problem{
		Groups: []hputune.Group{
			{Type: vote, Tasks: 3, Reps: 12},
			{Type: vote, Tasks: 40, Reps: 2},
		},
		Budget: 600,
	}

	est := hputune.NewEstimator()
	ra, err := hputune.SolveRepetition(est, problem)
	if err != nil {
		log.Fatalf("RA: %v", err)
	}
	ha, err := hputune.SolveHeterogeneous(est, problem)
	if err != nil {
		log.Fatalf("HA: %v", err)
	}
	par, err := hputune.MinimizeExpectedMaxParallel(problem)
	if err != nil {
		log.Fatalf("parallel comparator: %v", err)
	}

	fmt.Println("per-repetition prices [chain group, fan group]:")
	fmt.Printf("  RA  (Scenario II):                   %v\n", ra.Prices)
	fmt.Printf("  HA  (Scenario III):                  %v\n", ha.Prices)
	fmt.Printf("  [29] acceptance-only pure-parallel:  %v\n", par.Prices)

	// Score everything under the true model: sequential repetitions,
	// on-hold plus processing, exact E[max] integral.
	contenders := []struct {
		name   string
		prices []int
		wall   float64
	}{
		{name: "RA", prices: ra.Prices},
		{name: "HA", prices: ha.Prices},
		{name: "[29] comparator", prices: par.Prices},
	}
	best := 0.0
	for i := range contenders {
		wall, err := est.JobExpectedLatency(problem.Groups, contenders[i].prices, hputune.PhaseBoth)
		if err != nil {
			log.Fatalf("score %s: %v", contenders[i].name, err)
		}
		contenders[i].wall = wall
		if best == 0 || wall < best {
			best = wall
		}
	}
	fmt.Println("\ntrue expected job completion (wall clock):")
	for _, c := range contenders {
		fmt.Printf("  %-17s %.3f h (+%.1f%% over best)\n", c.name, c.wall, 100*(c.wall/best-1))
	}

	// The [29] min-cost mode: meet per-task acceptance deadlines as
	// cheaply as possible.
	tasks := []hputune.DeadlineTask{
		{Type: vote, Deadline: 0.25},
		{Type: vote, Deadline: 1.0},
		{Type: vote, Deadline: 4.0},
	}
	mc, err := hputune.MinCostForDeadlines(tasks, 0.9, 200)
	if err != nil {
		log.Fatalf("min cost: %v", err)
	}
	fmt.Printf("\nmin-cost deadline pricing (90%% confidence): %v, total %d units\n",
		mc.Prices, mc.Total)

	// And the deadline a fixed allocation can promise.
	d, err := hputune.QuantileDeadline(problem.Groups, ha.Prices, 0.95)
	if err != nil {
		log.Fatalf("quantile deadline: %v", err)
	}
	fmt.Printf("HA allocation accepts everything within %.3f h at 95%% confidence\n", d)
}
