// Quickstart: tune a batch of identical crowdsourcing tasks (Scenario I)
// and check the tuned allocation against biased splits, both analytically
// and on the simulated marketplace.
package main

import (
	"fmt"
	"log"

	"hputune"
)

func main() {
	// 100 pairwise-voting tasks, 5 answers each. The crowd picks a task up
	// at rate λo(c) = c + 1 per hour when it pays c units, and answers at
	// rate λp = 2 per hour once picked up.
	voteType := &hputune.TaskType{
		Name:     "pairwise-vote",
		Accept:   hputune.Linear{K: 1, B: 1},
		ProcRate: 2.0,
	}
	problem := hputune.Problem{
		Groups: []hputune.Group{{Type: voteType, Tasks: 100, Reps: 5}},
		Budget: 2000,
	}

	// Algorithm 1 (EA): the provably optimal even split.
	optimal, err := hputune.EvenAllocation(problem)
	if err != nil {
		log.Fatalf("even allocation: %v", err)
	}
	fmt.Printf("optimal allocation: %s (spends %d of %d)\n",
		optimal, optimal.Cost(), problem.Budget)

	// Compare with the biased baselines of the paper's evaluation.
	const trials = 4000
	optLat, err := hputune.SimulateJobLatency(problem, optimal, hputune.PhaseOnHold, trials, 1)
	if err != nil {
		log.Fatalf("simulate optimal: %v", err)
	}
	fmt.Printf("expected on-hold completion (optimal): %.3f h\n", optLat)

	for _, alpha := range []float64{0.67, 0.75} {
		biased, err := hputune.BiasAllocation(problem, alpha, 7)
		if err != nil {
			log.Fatalf("bias allocation: %v", err)
		}
		lat, err := hputune.SimulateJobLatency(problem, biased, hputune.PhaseOnHold, trials, 1)
		if err != nil {
			log.Fatalf("simulate bias: %v", err)
		}
		fmt.Printf("expected on-hold completion (bias α=%.2f): %.3f h (+%.1f%%)\n",
			alpha, lat, 100*(lat/optLat-1))
	}

	// Replay the tuned allocation on the discrete-event marketplace.
	specs, err := hputune.SpecsForAllocation(problem, optimal, 0.95)
	if err != nil {
		log.Fatalf("specs: %v", err)
	}
	sim, err := hputune.NewMarket(hputune.MarketConfig{Seed: 42})
	if err != nil {
		log.Fatalf("market: %v", err)
	}
	for _, spec := range specs {
		if err := sim.Post(spec); err != nil {
			log.Fatalf("post: %v", err)
		}
	}
	results, err := sim.Run()
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	fmt.Printf("marketplace replay: %v\n", hputune.SummarizeMarket(results))
}
