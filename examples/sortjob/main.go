// Sortjob: the paper's Motivation Example 1 at realistic scale — a
// crowd-powered database sorts items by pairwise voting. The query
// planner assigns more repetitions to contentious pairs; the tuner
// (Scenario II) prices the repetition groups so the whole query finishes
// fast, and the crowd's majority votes are aggregated into a ranking.
package main

import (
	"fmt"
	"log"

	"hputune"
)

func main() {
	// Twelve images with latent dot counts; the crowd sorts them.
	items, err := hputune.DotImages(12, 10, 99, 20170419)
	if err != nil {
		log.Fatalf("dataset: %v", err)
	}

	// The planner decomposes the sort into pairwise votes: 3 repetitions
	// for easy pairs, more for close ones.
	plan, err := hputune.PlanSortPairs(items, 3)
	if err != nil {
		log.Fatalf("plan: %v", err)
	}
	fmt.Printf("planner emitted %d pairwise tasks, %d votes total\n",
		len(plan.Tasks), plan.TotalReps())

	// Group the plan's tasks by repetition count and tune the budget with
	// Algorithm 2 (Scenario II: same difficulty model, different reps).
	voteType := &hputune.TaskType{
		Name:     "sort-vote",
		Accept:   hputune.Linear{K: 1, B: 1},
		ProcRate: 2.0,
	}
	byReps := map[int]int{}
	for _, t := range plan.Tasks {
		byReps[t.Reps]++
	}
	var groups []hputune.Group
	var repLevels []int
	for reps, count := range byReps {
		groups = append(groups, hputune.Group{Type: voteType, Tasks: count, Reps: reps})
		repLevels = append(repLevels, reps)
	}
	// A budget that does not divide evenly across votes, so the tuner has
	// real choices to make between the repetition groups.
	problem := hputune.Problem{Groups: groups, Budget: 4*plan.TotalReps() - 100}
	res, err := hputune.SolveRepetition(hputune.NewEstimator(), problem)
	if err != nil {
		log.Fatalf("tune: %v", err)
	}
	priceOf := map[int]int{}
	for i, reps := range repLevels {
		priceOf[reps] = res.Prices[i]
		fmt.Printf("group %d-rep (%d tasks): %d units per vote\n",
			reps, groups[i].Tasks, res.Prices[i])
	}

	// Execute the tuned query on the simulated marketplace and aggregate.
	classes, err := hputune.DefaultVoteClasses(hputune.Linear{K: 1, B: 1}, 2.0)
	if err != nil {
		log.Fatalf("classes: %v", err)
	}
	ex := &hputune.CrowdExecutor{Classes: classes, Config: hputune.MarketConfig{Seed: 7}}
	tunedPolicy := func(t hputune.VoteTask) []int {
		price := priceOf[t.Reps]
		if price < 1 {
			price = 1
		}
		out := make([]int, t.Reps)
		for i := range out {
			out[i] = price
		}
		return out
	}
	ranking, outcome, err := ex.RunSort(items, 3, tunedPolicy)
	if err != nil {
		log.Fatalf("run sort: %v", err)
	}
	tau, err := hputune.KendallTau(ranking, items.ByValue().IDs())
	if err != nil {
		log.Fatalf("tau: %v", err)
	}
	fmt.Printf("tuned query:   makespan %.2f h, paid %d units, vote accuracy %.0f%%, Kendall tau %.3f\n",
		outcome.Makespan, outcome.Paid, 100*outcome.Accuracy(), tau)

	// Baseline: the same query with flat per-vote pricing.
	flatRank, flatOut, err := ex.RunSort(items, 3, hputune.UniformPrice(3))
	if err != nil {
		log.Fatalf("run flat: %v", err)
	}
	flatTau, err := hputune.KendallTau(flatRank, items.ByValue().IDs())
	if err != nil {
		log.Fatalf("tau: %v", err)
	}
	fmt.Printf("flat pricing:  makespan %.2f h, paid %d units, vote accuracy %.0f%%, Kendall tau %.3f\n",
		flatOut.Makespan, flatOut.Paid, 100*flatOut.Accuracy(), flatTau)
}
