// Heterogeneous: the paper's Motivation Example 2 / Fig 5(c) scenario — a
// database runs a sorting query and a filtering query at once. The task
// types differ in difficulty (processing rate) and repetition count, so
// the Scenario III tuner (Algorithm 3, compromise programming against the
// Utopia Point) decides how the shared budget splits across types, and
// the equal-payment heuristic is the comparison.
package main

import (
	"fmt"
	"log"

	"hputune"
)

func main() {
	// The Fig 5(c) instance: three task types with 10, 15 and 20 required
	// repetitions, on the calibrated AMT acceptance rates; budget in cents.
	for _, budgetCents := range []int{600, 800, 1000} {
		problem, err := hputune.Fig5cProblem(budgetCents)
		if err != nil {
			log.Fatalf("problem: %v", err)
		}
		res, err := hputune.SolveHeterogeneous(hputune.NewEstimator(), problem)
		if err != nil {
			log.Fatalf("tune: %v", err)
		}
		fmt.Printf("budget $%.2f → per-vote prices %v (closeness %.2f to utopia O1=%.0fs O2=%.0fs)\n",
			float64(budgetCents)/100, res.Prices, res.Closeness, res.Utopia.O1, res.Utopia.O2)

		opt, err := res.Allocation(problem)
		if err != nil {
			log.Fatalf("allocation: %v", err)
		}
		heu, err := hputune.UniformTypeAllocation(problem)
		if err != nil {
			log.Fatalf("heuristic: %v", err)
		}
		const trials = 3000
		optLat, err := hputune.SimulateJobLatency(problem, opt, hputune.PhaseBoth, trials, uint64(budgetCents))
		if err != nil {
			log.Fatalf("simulate opt: %v", err)
		}
		heuLat, err := hputune.SimulateJobLatency(problem, heu, hputune.PhaseBoth, trials, uint64(budgetCents))
		if err != nil {
			log.Fatalf("simulate heu: %v", err)
		}
		fmt.Printf("  expected job latency: OPT %.1f min vs equal-payment %.1f min (%.0f%% saved)\n\n",
			optLat/60, heuLat/60, 100*(1-optLat/heuLat))
	}
}
