// Command repro regenerates the tables and figures of "Tuning
// Crowdsourced Human Computation" (Cao et al., ICDE 2017) on the
// simulated substrate and renders them as ASCII charts and tables.
//
// Usage:
//
//	repro -list
//	repro -exp fig2-homo [-fast] [-seed 7] [-trials 2000] [-rounds 24]
//	repro -exp all -table
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hputune"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("repro: ")
	list := flag.Bool("list", false, "list the reproducible experiments")
	exp := flag.String("exp", "all", "experiment name, or 'all'")
	fast := flag.Bool("fast", false, "trimmed sweeps for a quick smoke run")
	seed := flag.Uint64("seed", 0, "experiment seed (0 = default)")
	trials := flag.Int("trials", 0, "Monte-Carlo trials per point (0 = default)")
	rounds := flag.Int("rounds", 0, "marketplace replications per point (0 = default)")
	tableOnly := flag.Bool("table", false, "render tables only (no ASCII charts)")
	width := flag.Int("width", 72, "chart width")
	height := flag.Int("height", 18, "chart height")
	flag.Parse()

	if *list {
		for _, name := range hputune.ExperimentNames() {
			desc, err := hputune.DescribeExperiment(name)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s %s\n", name, desc)
		}
		return
	}

	cfg := hputune.ExperimentConfig{
		Seed:   *seed,
		Trials: *trials,
		Rounds: *rounds,
		Fast:   *fast,
	}
	names := []string{*exp}
	if *exp == "all" {
		names = hputune.ExperimentNames()
	}
	failed := false
	for _, name := range names {
		fmt.Printf("==== %s ====\n", name)
		res, err := hputune.RunExperiment(name, cfg)
		if err != nil {
			log.Printf("%s: %v", name, err)
			failed = true
			continue
		}
		for _, fig := range res.Figures {
			if *tableOnly {
				fmt.Println(hputune.RenderTable(fig))
			} else {
				fmt.Println(hputune.RenderChart(fig, *width, *height))
			}
		}
		for _, note := range res.Notes {
			fmt.Printf("note: %s\n", note)
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}
