// Command htrouter fronts a cluster of htuned nodes with the same /v1
// envelope API a single node serves: campaign starts scatter across the
// nodes on a consistent-hash ring (fleet presets split per campaign),
// ingest partitions by client identity, stateless solve and simulate
// round-robin, and stats/metrics fan out into one cluster document.
//
// Usage:
//
//	htrouter -node n1=http://host1:8080 -node n2=http://host2:8080 ...
//	         [-addr :8090] [-replica-dir DIR] [-poll D] [-health D]
//	         [-failover N] [-vnodes N] [-merge D]
//
// Node names must be [a-zA-Z0-9_]+ — the router builds cluster-wide
// campaign ids as "<node>-<id>", so '-' is reserved as the separator.
//
// With -replica-dir, the router runs one WAL-shipping follower per
// node: each follower seeds a replica state directory from the node's
// /v1/replication/state and appends the node's acknowledged WAL frames
// (polled every -poll) verbatim, so every replica directory is a
// crash-recoverable copy of its node. With -failover N, a node that
// fails N consecutive health probes is replaced: its follower takes
// one final poll, promotes the replica through the standard recovery
// path (resuming the node's campaigns from their last acknowledged
// round), and the router repoints the node's traffic at the promoted
// server in-process. While a node is down but not yet promoted, GET
// reads for its campaigns, stats and metrics are served from its
// replica, labeled stale (X-HT-Stale header, "stale" body fields);
// writes keep answering 503 until promotion.
//
// With -merge D, the router runs the cluster's fit exchange every D:
// it pulls each node's durable ingest aggregates (additive sufficient
// statistics), merges them, fits the union, and pushes the merged model
// to every node through the same guarded publish path a local re-fit
// takes — so a "fitted" solve prices identically no matter which node
// answers, and identically to one process that ingested every
// partition's records.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"hputune/internal/cluster"
	"hputune/internal/server"
	"hputune/internal/store"
)

// nodeFlags collects repeated -node name=url arguments.
type nodeFlags []string

func (f *nodeFlags) String() string { return strings.Join(*f, ",") }
func (f *nodeFlags) Set(v string) error {
	*f = append(*f, v)
	return nil
}

// parseNodes splits -node entries into (name, url) pairs.
func parseNodes(entries []string) ([][2]string, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("at least one -node name=url is required")
	}
	out := make([][2]string, 0, len(entries))
	seen := make(map[string]bool)
	for _, e := range entries {
		name, url, ok := strings.Cut(e, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("-node %q is not name=url", e)
		}
		if seen[name] {
			return nil, fmt.Errorf("-node %q repeats name %q", e, name)
		}
		seen[name] = true
		out = append(out, [2]string{name, strings.TrimSuffix(url, "/")})
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("htrouter: ")
	addr := flag.String("addr", ":8090", "listen address")
	var nodes nodeFlags
	flag.Var(&nodes, "node", "cluster member as name=url (repeatable; name is [a-zA-Z0-9_]+)")
	replicaDir := flag.String("replica-dir", "", "run one WAL-shipping follower per node, replicating into DIR/<name>; empty disables replication")
	poll := flag.Duration("poll", 500*time.Millisecond, "follower WAL poll interval")
	health := flag.Duration("health", time.Second, "node health probe interval")
	failover := flag.Int("failover", 0, "promote a node's replica after N consecutive failed health probes (0 = never; requires -replica-dir)")
	vnodes := flag.Int("vnodes", 0, "vnodes per node on the placement ring (0 = default 256)")
	merge := flag.Duration("merge", 2*time.Second, "cross-node fit exchange interval: pull every node's aggregates, fit the union, push the merged model back (0 disables — each node then serves a fit over its own partition only)")
	flag.Parse()

	pairs, err := parseNodes(nodes)
	if err != nil {
		log.Fatal(err)
	}
	if *failover > 0 && *replicaDir == "" {
		log.Fatal("-failover requires -replica-dir")
	}

	cl := cluster.New(cluster.Config{Vnodes: *vnodes})
	for _, p := range pairs {
		if err := cl.AddNode(p[0], p[1]); err != nil {
			log.Fatal(err)
		}
	}
	rt := cluster.NewRouter(cl, nil)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	followers := make(map[string]*cluster.Follower)
	if *replicaDir != "" {
		for _, p := range pairs {
			name, url := p[0], p[1]
			f := cluster.NewFollower(name, filepath.Join(*replicaDir, name),
				&cluster.HTTPFetch{Base: url, Client: &http.Client{Timeout: 10 * time.Second}},
				cluster.FollowerOptions{})
			followers[name] = f
			go f.Run(ctx, *poll)
		}
		// Stale-allowed reads: while a node is down but not yet promoted,
		// its GET surface is answered from the replica, clearly labeled.
		rt.SetReplicaSource(func(name string) (*store.State, error) {
			f := followers[name]
			if f == nil {
				return nil, fmt.Errorf("no follower for %s", name)
			}
			return f.ReplicaState()
		})
	}

	if *merge > 0 {
		mg := cluster.NewMerger(cl, nil, log.Printf)
		go mg.Run(ctx, *merge)
	}

	// Health monitor + failover: a node failing -failover consecutive
	// probes is replaced by its promoted replica, served in-process on a
	// loopback listener; the ring never moves, only the node's URL.
	promote := func(name string) (string, error) {
		f := followers[name]
		if f == nil {
			return "", fmt.Errorf("no follower for %s", name)
		}
		// One final poll closes the async window for records the node
		// acknowledged but the ticker had not shipped yet; it fails if
		// the node is fully dead, which is fine — the replica already
		// holds everything shipped so far.
		_ = f.Poll(ctx)
		_, srv, err := f.Promote(server.Config{Node: name})
		if err != nil {
			return "", err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		go func() { _ = srv.Serve(ctx, ln) }()
		rt.AddFailover()
		return "http://" + ln.Addr().String(), nil
	}
	threshold := *failover
	if *replicaDir == "" {
		threshold = 0 // health flags only; nothing to promote
	}
	wd := cluster.NewWatchdog(cl, nil, threshold, promote, log.Printf)
	go wd.Run(ctx, *health)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: rt.Handler()}
	go func() {
		<-ctx.Done()
		stop()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(shutdownCtx)
	}()
	log.Printf("routing %d nodes on %s", len(pairs), ln.Addr())
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	log.Print("drained, bye")
}
