package main

import (
	"strings"
	"testing"
)

func TestParseNodes(t *testing.T) {
	pairs, err := parseNodes([]string{"n1=http://a:8080", "n2=http://b:8080/"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 || pairs[0] != [2]string{"n1", "http://a:8080"} || pairs[1] != [2]string{"n2", "http://b:8080"} {
		t.Fatalf("pairs %v", pairs)
	}
	cases := []struct {
		entries []string
		want    string
	}{
		{nil, "at least one"},
		{[]string{"n1"}, "not name=url"},
		{[]string{"=http://a"}, "not name=url"},
		{[]string{"n1="}, "not name=url"},
		{[]string{"n1=http://a", "n1=http://b"}, "repeats name"},
	}
	for _, tc := range cases {
		if _, err := parseNodes(tc.entries); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("parseNodes(%v): %v does not mention %q", tc.entries, err, tc.want)
		}
	}
}
