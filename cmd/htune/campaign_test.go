package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"hputune"
	"hputune/internal/campaign"
	"hputune/internal/server"
)

func TestCampaignModeRunsFleet(t *testing.T) {
	code, out, errb := runCLI(t, "-campaign", "-spec", td("campaigns.json"), "-workers", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for _, want := range []string{
		"fleet: 2 campaigns, 2 workers",
		"[0] repe: converged after",
		"[1] repe-drift: budget-exhausted after",
		"round 0: ra prices",
		"fit k=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
}

func TestCampaignModeDeterministic(t *testing.T) {
	_, out1, _ := runCLI(t, "-campaign", "-spec", td("campaigns.json"), "-workers", "1")
	_, out2, _ := runCLI(t, "-campaign", "-spec", td("campaigns.json"), "-workers", "4")
	// Everything below the header (which prints the worker count) must
	// be byte-identical: campaigns are pure functions of their specs.
	_, body1, _ := strings.Cut(out1, "\n")
	_, body2, _ := strings.Cut(out2, "\n")
	if body1 != body2 {
		t.Errorf("same campaign spec, different results across worker counts:\n%s\nvs\n%s", body1, body2)
	}
}

func TestCampaignRejectedShapes(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string
	}{
		{"compare with campaign", []string{"-campaign", "-spec", td("campaigns.json"), "-compare"}, 1, "not supported with -campaign"},
		{"saturation with campaign", []string{"-campaign", "-spec", td("campaigns.json"), "-saturation", "5"}, 1, "not supported with -campaign"},
		{"seed with campaign", []string{"-campaign", "-spec", td("campaigns.json"), "-seed", "42"}, 1, "-seed not supported with -campaign"},
		{"simulate with campaign", []string{"-campaign", "-spec", td("campaigns.json"), "-simulate", "100"}, 1, "-simulate not supported with -campaign"},
		{"solve spec in campaign mode", []string{"-campaign", "-spec", td("single.json")}, 1, "drop -campaign"},
		{"campaign spec in solve mode", []string{"-spec", td("campaigns.json")}, 1, "run htune -campaign"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, errb := runCLI(t, tc.args...)
			if code != tc.wantCode {
				t.Errorf("exit %d, want %d (stderr %q)", code, tc.wantCode, errb)
			}
			if !strings.Contains(errb, tc.wantErr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantErr, errb)
			}
		})
	}
}

// priceLines extracts the per-round price vectors, in print order.
var priceLine = regexp.MustCompile(`prices (\[[0-9 ]+\])`)

// TestCampaignCLIServerParity pins the acceptance contract of the
// closed-loop engine: the paper scenario fleet (>= 8 campaigns, >= 2
// drifted) produces identical per-round allocations through
// `htune -campaign` and through POST /v1/campaigns on the service, for
// the same spec and seed.
func TestCampaignCLIServerParity(t *testing.T) {
	raw, err := os.ReadFile(td("fleet.json"))
	if err != nil {
		t.Fatal(err)
	}

	// Service side: start the fleet, poll every campaign to terminal.
	srv, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("start: status %d", resp.StatusCode)
	}
	var started struct {
		IDs []string `json:"ids"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&started); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(started.IDs) < 8 {
		t.Fatalf("fleet started %d campaigns, want >= 8", len(started.IDs))
	}
	var serverPrices []string
	drifted := 0
	deadline := time.Now().Add(60 * time.Second)
	for _, id := range started.IDs {
		var res campaign.Result
		for {
			resp, err := http.Get(ts.URL + "/v1/campaigns/" + id)
			if err != nil {
				t.Fatal(err)
			}
			err = json.NewDecoder(resp.Body).Decode(&res)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if res.Status.Terminal() {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("campaign %s stuck in %s", id, res.Status)
			}
			time.Sleep(5 * time.Millisecond)
		}
		if res.Status == campaign.StatusFailed {
			t.Fatalf("campaign %s failed: %s", res.Name, res.Reason)
		}
		if strings.Contains(res.Name, "drift") || strings.Contains(res.Name, "shock") || strings.Contains(res.Name, "shrink") {
			drifted++
		}
		for _, r := range res.Rounds {
			serverPrices = append(serverPrices, fmt.Sprint(r.Prices))
		}
	}
	if drifted < 2 {
		t.Fatalf("fleet ran %d drifted campaigns, want >= 2", drifted)
	}

	// CLI side: same spec file, then compare every round's allocation in
	// order.
	code, out, errb := runCLI(t, "-campaign", "-spec", td("fleet.json"))
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	var cliPrices []string
	for _, m := range priceLine.FindAllStringSubmatch(out, -1) {
		cliPrices = append(cliPrices, m[1])
	}
	if len(cliPrices) == 0 || len(cliPrices) != len(serverPrices) {
		t.Fatalf("CLI printed %d rounds, service ran %d", len(cliPrices), len(serverPrices))
	}
	for i := range cliPrices {
		if cliPrices[i] != serverPrices[i] {
			t.Fatalf("round %d allocations diverge: CLI %s, service %s", i, cliPrices[i], serverPrices[i])
		}
	}
}

// TestCrowdCampaignCLIServerParity extends the parity contract to the
// crowd-DB executor family: the crowd fleet (tournament top-k,
// sequential-discovery group-by, the deadline-SLO and retainer-pool
// regimes) must produce byte-identical results through the library's
// RunCampaignFleet and POST /v1/campaigns, and identical per-round
// allocations through `htune -campaign`, all from one spec and seed.
func TestCrowdCampaignCLIServerParity(t *testing.T) {
	raw, err := os.ReadFile(td("crowdfleet.json"))
	if err != nil {
		t.Fatal(err)
	}

	// Library reference: the same preset and seed the spec names.
	cfgs, err := hputune.CrowdQueryCampaignFleet(3)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := hputune.RunCampaignFleet(context.Background(), nil, cfgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != 4 {
		t.Fatalf("crowd fleet has %d campaigns, want 4", len(ref))
	}
	var refPrices []string
	for _, res := range ref {
		if res.Status == campaign.StatusFailed {
			t.Fatalf("reference campaign %s failed: %s", res.Name, res.Reason)
		}
		for _, r := range res.Rounds {
			if r.Query == nil {
				t.Fatalf("campaign %s round %d has no query info", res.Name, r.Round)
			}
			refPrices = append(refPrices, fmt.Sprint(r.Prices))
		}
	}

	// Service side: byte-identical full results, not just allocations.
	srv, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("start: status %d", resp.StatusCode)
	}
	var started struct {
		IDs []string `json:"ids"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&started); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(started.IDs) != len(ref) {
		t.Fatalf("service started %d campaigns, want %d", len(started.IDs), len(ref))
	}
	deadline := time.Now().Add(60 * time.Second)
	for i, id := range started.IDs {
		var res campaign.Result
		for {
			resp, err := http.Get(ts.URL + "/v1/campaigns/" + id)
			if err != nil {
				t.Fatal(err)
			}
			err = json.NewDecoder(resp.Body).Decode(&res)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if res.Status.Terminal() {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("campaign %s stuck in %s", id, res.Status)
			}
			time.Sleep(5 * time.Millisecond)
		}
		got, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(ref[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("service result for %s diverged from the library run\n got  %s\n want %s", res.Name, got, want)
		}
	}

	// CLI side: same spec, identical allocation stream, and the crowd
	// extras printed per round.
	code, out, errb := runCLI(t, "-campaign", "-spec", td("crowdfleet.json"))
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for _, want := range []string{"query topk", "query groupby", "slo deadline=", "retainer workers="} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
	var cliPrices []string
	for _, m := range priceLine.FindAllStringSubmatch(out, -1) {
		cliPrices = append(cliPrices, m[1])
	}
	if len(cliPrices) == 0 || len(cliPrices) != len(refPrices) {
		t.Fatalf("CLI printed %d rounds, reference ran %d", len(cliPrices), len(refPrices))
	}
	for i := range cliPrices {
		if cliPrices[i] != refPrices[i] {
			t.Fatalf("round %d allocations diverge: CLI %s, reference %s", i, cliPrices[i], refPrices[i])
		}
	}
}
