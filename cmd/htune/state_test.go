package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hputune/internal/campaign"
	"hputune/internal/inference"
	"hputune/internal/store"
)

// buildStateDir writes a small but representative state directory.
func buildStateDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	if err := st.AppendIngest(map[int]inference.PriceAggregate{2: {N: 4, Total: 1}, 5: {N: 2, Total: 0.5}}, 6); err != nil {
		t.Fatalf("AppendIngest: %v", err)
	}
	if err := st.AppendFit(store.FitRecord{Slope: 2, Intercept: 0.5, R2: 0.99, N: 2, Prices: 2}); err != nil {
		t.Fatalf("AppendFit: %v", err)
	}
	if err := st.AppendFleet([]byte(`{"campaign":{"name":"x"}}`), []string{"c1"}, nil); err != nil {
		t.Fatalf("AppendFleet: %v", err)
	}
	chk := campaign.Checkpoint{Name: "x", Status: campaign.StatusRunning, RoundsRun: 2, HistoryCap: 8, Spent: 20, Remaining: 80}
	if err := st.AppendRound("c1", campaign.RoundSnapshot{Round: 1, Prices: []int{3}}, chk); err != nil {
		t.Fatalf("AppendRound: %v", err)
	}
	return dir
}

func TestStateDumpAndVerify(t *testing.T) {
	dir := buildStateDir(t)
	var out, errOut bytes.Buffer
	if code := run([]string{"-state", dir, "-verify"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, errOut.String())
	}
	text := out.String()
	for _, want := range []string{
		"wal: 4 records",
		"ingest: 6 records at 2 price levels",
		"fit k=2 b=0.5",
		"c1 x: running, 2 rounds (1 retained), spent 20 of 100",
		"resumes at round 2",
		"verify: ok",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("dump missing %q:\n%s", want, text)
		}
	}
}

func TestStateVerifyFailsOnCorruption(t *testing.T) {
	dir := buildStateDir(t)
	walPath := filepath.Join(dir, "wal.log")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[10] ^= 0xff // first record's payload: mid-file corruption
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-state", dir, "-verify"}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1; out: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "CORRUPT") || !strings.Contains(out.String(), "verify: FAILED") {
		t.Fatalf("verify output does not call out the corruption:\n%s", out.String())
	}
	// Without -verify the dump still prints what it can and exits 0.
	out.Reset()
	if code := run([]string{"-state", dir}, &out, &errOut); code != 0 {
		t.Fatalf("dump of corrupt dir: exit %d", code)
	}
}

func TestStateTornTailIsAWarningNotAFailure(t *testing.T) {
	dir := buildStateDir(t)
	walPath := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x20, 0, 0, 0, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out, errOut bytes.Buffer
	if code := run([]string{"-state", dir, "-verify"}, &out, &errOut); code != 0 {
		t.Fatalf("torn tail failed verify (exit %d):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "torn at byte") {
		t.Fatalf("torn tail not reported:\n%s", out.String())
	}
}

func TestStateFlagValidation(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-state", t.TempDir(), "-spec", "x.json"}, &out, &errOut); code != 1 {
		t.Fatalf("-state with -spec: exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "-spec not supported with -state") {
		t.Fatalf("unexpected error: %s", errOut.String())
	}
	errOut.Reset()
	if code := run([]string{"-verify"}, &out, &errOut); code != 1 {
		t.Fatalf("-verify alone: exit %d, want 1", code)
	}
	errOut.Reset()
	if code := run([]string{"-state", filepath.Join(t.TempDir(), "missing")}, &out, &errOut); code != 1 {
		t.Fatalf("missing dir: exit %d, want 1", code)
	}
}
