package main

import (
	"fmt"
	"io"
	"sort"

	"hputune/internal/store"
)

// runState implements -state: dump a durable state directory's summary
// (what htuned -state-dir wrote), and with -verify make integrity the
// exit status. A torn final WAL record is reported but is not a
// failure — it is the expected artifact of a crash mid-append and the
// next open repairs it by truncation; anything else structurally wrong
// (snapshot rot, mid-file CRC damage, sequence gaps, records that
// contradict the state) fails -verify.
func runState(stdout, stderr io.Writer, dir string, verify bool) int {
	rep, err := store.Inspect(dir)
	if err != nil {
		return fail(stderr, "%v", err)
	}
	fmt.Fprintf(stdout, "state dir: %s\n", dir)
	if rep.SnapshotErr != nil {
		fmt.Fprintf(stdout, "snapshot: UNREADABLE: %v\n", rep.SnapshotErr)
	} else if rep.HasSnapshot {
		fmt.Fprintf(stdout, "snapshot: through seq %d\n", rep.SnapshotSeq)
	} else {
		fmt.Fprintln(stdout, "snapshot: none")
	}
	fmt.Fprintf(stdout, "wal: %d records, %d bytes", rep.WALRecords, rep.WALBytes)
	if len(rep.ByType) > 0 {
		types := make([]string, 0, len(rep.ByType))
		for t := range rep.ByType {
			types = append(types, t)
		}
		sort.Strings(types)
		fmt.Fprint(stdout, " (")
		for i, t := range types {
			if i > 0 {
				fmt.Fprint(stdout, ", ")
			}
			fmt.Fprintf(stdout, "%s %d", t, rep.ByType[t])
		}
		fmt.Fprint(stdout, ")")
	}
	fmt.Fprintln(stdout)
	if rep.TornTail != nil {
		fmt.Fprintf(stdout, "wal tail: torn at byte %d (%s) — crash artifact, truncated on next open\n",
			rep.TornTail.Offset, rep.TornTail.Cause)
	}
	if rep.Corrupt != nil {
		fmt.Fprintf(stdout, "wal: CORRUPT at byte %d: %s\n", rep.Corrupt.Offset, rep.Corrupt.Cause)
	}
	if rep.ApplyErr != nil {
		fmt.Fprintf(stdout, "replay: FAILED: %v\n", rep.ApplyErr)
	}
	if st := rep.State; st != nil {
		fmt.Fprintf(stdout, "ingest: %d records at %d price levels", st.Records, len(st.Aggs))
		if f := st.Fit; f != nil {
			fmt.Fprintf(stdout, "; fit k=%.6g b=%.6g (R²=%.4f, %d prices)", f.Slope, f.Intercept, f.R2, f.Prices)
		}
		fmt.Fprintln(stdout)
		fmt.Fprintf(stdout, "campaigns: %d live (%d started, %d finished, %d canceled lifetime)\n",
			len(st.Campaigns), st.Started, st.Finished, st.Canceled)
		ids := make([]string, 0, len(st.Campaigns))
		for id := range st.Campaigns {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			cs := st.Campaigns[id]
			chk := cs.Checkpoint
			status := chk.Status
			if status == "" {
				status = "pending"
			}
			fmt.Fprintf(stdout, "  %s %s: %s, %d rounds (%d retained), spent %d of %d",
				id, chk.Name, status, chk.RoundsRun, len(cs.Rounds), chk.Spent, chk.Spent+chk.Remaining)
			if !status.Terminal() {
				fmt.Fprintf(stdout, " — resumes at round %d", chk.RoundsRun)
			}
			fmt.Fprintln(stdout)
		}
		if n := len(st.Archived); n > 0 {
			rounds := 0
			for _, a := range st.Archived {
				rounds += a.Checkpoint.RoundsRun
			}
			fmt.Fprintf(stdout, "archived: %d evicted campaigns (%d rounds)\n", n, rounds)
		}
	}
	if verify {
		if !rep.Clean() {
			fmt.Fprintln(stdout, "verify: FAILED")
			return 1
		}
		fmt.Fprintln(stdout, "verify: ok")
	}
	return 0
}
