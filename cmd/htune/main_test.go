package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI drives run() exactly as main does, capturing both streams.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func td(name string) string { return filepath.Join("testdata", name) }

func TestSingleSpecAutoPicksRA(t *testing.T) {
	code, out, errb := runCLI(t, "-spec", td("single.json"))
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for _, want := range []string{
		"algorithm: RA (Scenario II)",
		"per-group prices",
		"allocation:",
		"spend:",
		"of 200 units",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
}

func TestSingleSpecDeterministicOutput(t *testing.T) {
	_, out1, _ := runCLI(t, "-spec", td("single.json"), "-simulate", "200", "-seed", "7")
	_, out2, _ := runCLI(t, "-spec", td("single.json"), "-simulate", "200", "-seed", "7")
	if out1 != out2 {
		t.Errorf("same spec and seed, different output:\n%s\nvs\n%s", out1, out2)
	}
	if !strings.Contains(out1, "expected job latency (both phases, 200 trials):") {
		t.Errorf("missing simulation line:\n%s", out1)
	}
}

func TestSingleGroupAutoPicksEA(t *testing.T) {
	code, out, errb := runCLI(t, "-spec", td("single_ea.json"))
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "algorithm: EA (Scenario I)") {
		t.Errorf("single-group spec did not route to EA:\n%s", out)
	}
}

func TestHeterogeneousAutoPicksHA(t *testing.T) {
	code, out, errb := runCLI(t, "-spec", td("hetero.json"))
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for _, want := range []string{"algorithm: HA (Scenario III)", "closeness", "utopia"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
}

func TestBatchSpec(t *testing.T) {
	code, out, errb := runCLI(t, "-spec", td("batch.json"), "-workers", "2", "-simulate", "100")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "batch: 2 problems, 2 workers") {
		t.Errorf("missing batch header:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// header + column row + one row per problem
	if len(lines) != 4 {
		t.Fatalf("got %d output lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "simulated") {
		t.Errorf("-simulate did not add the simulated column:\n%s", out)
	}
	// Problem 0 shares a procRate → ra; problem 1 differs → ha.
	if !strings.Contains(lines[2], " ra ") {
		t.Errorf("problem 0 not routed to ra: %q", lines[2])
	}
	if !strings.Contains(lines[3], " ha ") {
		t.Errorf("problem 1 not routed to ha: %q", lines[3])
	}
}

func TestCompareSingle(t *testing.T) {
	code, out, errb := runCLI(t, "-spec", td("single.json"), "-compare")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for _, want := range []string{"strategy", "RA", "RA-DP", "HA", "[29]", "task-even", "rep-even"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare table missing %q:\n%s", want, out)
		}
	}
}

func TestSaturationSingle(t *testing.T) {
	code, out, errb := runCLI(t, "-spec", td("single_ea.json"), "-saturation", "30")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for _, want := range []string{"group 0 (filter, 4 tasks x 3 reps)", "processing floor", "latency at price 1:"} {
		if !strings.Contains(out, want) {
			t.Errorf("saturation output missing %q:\n%s", want, out)
		}
	}
}

// Rejected shapes: every case must fail with the documented status and a
// message that names the problem.
func TestRejectedShapes(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string
	}{
		{"no spec flag", []string{}, 2, "-spec"},
		{"missing file", []string{"-spec", td("absent.json")}, 1, "no such file"},
		{"compare on batch", []string{"-spec", td("batch.json"), "-compare"}, 1, "-compare and -saturation are not supported for batch specs"},
		{"saturation on batch", []string{"-spec", td("batch.json"), "-saturation", "10"}, 1, "-compare and -saturation are not supported for batch specs"},
		{"ea on batch", []string{"-spec", td("batch.json"), "-algorithm", "ea"}, 1, `algorithm "ea" is not supported for batch specs`},
		{"mixed spec", []string{"-spec", td("mixed.json")}, 1, "mixes a top-level problem"},
		{"nested batch", []string{"-spec", td("nested.json")}, 1, "nested \"problems\" arrays are not supported"},
		{"unknown algorithm", []string{"-spec", td("single.json"), "-algorithm", "zz"}, 1, `unknown algorithm "zz"`},
		{"serve passthrough", []string{"-serve"}, 2, "htuned"},
		{"bad flag", []string{"-definitely-not-a-flag"}, 2, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out, errb := runCLI(t, tc.args...)
			if code != tc.wantCode {
				t.Errorf("exit %d, want %d (stdout %q, stderr %q)", code, tc.wantCode, out, errb)
			}
			if !strings.Contains(errb, tc.wantErr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantErr, errb)
			}
		})
	}
}

// TestHelpExitsZero pins -h as a success, matching flag.ExitOnError.
func TestHelpExitsZero(t *testing.T) {
	code, _, errb := runCLI(t, "-h")
	if code != 0 {
		t.Errorf("htune -h exited %d, want 0", code)
	}
	if !strings.Contains(errb, "-spec") {
		t.Errorf("-h did not print usage:\n%s", errb)
	}
}
