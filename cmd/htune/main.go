// Command htune solves an H-Tuning instance described in JSON and prints
// the tuned payment plan.
//
// Usage:
//
//	htune -spec problem.json [-algorithm auto|ea|ra|ha] [-simulate 2000]
//	htune -spec problem.json -compare [-simulate 2000]
//	htune -spec problem.json -saturation 50
//	htune -spec batch.json [-workers 8] [-simulate 2000]
//
// Spec format:
//
//	{
//	  "budget": 1000,
//	  "groups": [
//	    {"name": "sort-vote", "tasks": 50, "reps": 3, "procRate": 2.0,
//	     "model": {"kind": "linear", "k": 1, "b": 1}},
//	    {"name": "yesno-vote", "tasks": 50, "reps": 5, "procRate": 3.0,
//	     "model": {"kind": "log"}}
//	  ]
//	}
//
// Model kinds: "linear" (k, b), "quadratic", "log", "table" (points:
// {"price": rate, ...}).
//
// A spec with a top-level "problems" array instead of "budget"/"groups"
// is a batch: every instance is tuned concurrently on a -workers pool
// over one shared estimator, and -simulate scores each plan with the
// deterministic trial-sharded Monte Carlo engine.
//
//	{"problems": [{"budget": 1000, "groups": [...]},
//	              {"budget": 2000, "groups": [...]}]}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"hputune"
)

type modelSpec struct {
	Kind   string             `json:"kind"`
	K      float64            `json:"k"`
	B      float64            `json:"b"`
	Points map[string]float64 `json:"points"`
}

type groupSpec struct {
	Name     string    `json:"name"`
	Tasks    int       `json:"tasks"`
	Reps     int       `json:"reps"`
	ProcRate float64   `json:"procRate"`
	Model    modelSpec `json:"model"`
}

type problemSpec struct {
	Budget int         `json:"budget"`
	Groups []groupSpec `json:"groups"`
	// Problems, when non-empty, makes the spec a batch of instances.
	Problems []problemSpec `json:"problems"`
}

func (m modelSpec) build(name string) (hputune.RateModel, error) {
	switch m.Kind {
	case "linear":
		return hputune.Linear{K: m.K, B: m.B}, nil
	case "quadratic":
		return hputune.Quadratic{}, nil
	case "log":
		return hputune.Logarithmic{}, nil
	case "table":
		points := make(map[float64]float64, len(m.Points))
		for k, v := range m.Points {
			var price float64
			if _, err := fmt.Sscanf(k, "%g", &price); err != nil {
				return nil, fmt.Errorf("bad table price %q: %w", k, err)
			}
			points[price] = v
		}
		return hputune.NewRateTable(name, points)
	}
	return nil, fmt.Errorf("unknown model kind %q (want linear, quadratic, log or table)", m.Kind)
}

func (s problemSpec) build() (hputune.Problem, error) {
	p := hputune.Problem{Budget: s.Budget}
	for i, g := range s.Groups {
		model, err := g.Model.build(g.Name)
		if err != nil {
			return hputune.Problem{}, fmt.Errorf("group %d: %w", i, err)
		}
		p.Groups = append(p.Groups, hputune.Group{
			Type:  &hputune.TaskType{Name: g.Name, Accept: model, ProcRate: g.ProcRate},
			Tasks: g.Tasks,
			Reps:  g.Reps,
		})
	}
	return p, nil
}

// load parses the spec file. batch reports whether the spec used the
// top-level "problems" array — a one-element batch still runs (and
// prints) in batch mode, so generated specs behave uniformly.
func load(path string) (problems []hputune.Problem, batch bool, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	var spec problemSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return nil, false, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(spec.Problems) > 0 {
		if len(spec.Groups) > 0 || spec.Budget != 0 {
			return nil, false, fmt.Errorf("%s: spec mixes a top-level problem with a \"problems\" array; use one or the other", path)
		}
		problems = make([]hputune.Problem, len(spec.Problems))
		for i, ps := range spec.Problems {
			if len(ps.Problems) > 0 {
				return nil, false, fmt.Errorf("problem %d: nested \"problems\" arrays are not supported", i)
			}
			if len(ps.Groups) == 0 {
				return nil, false, fmt.Errorf("problem %d: no groups", i)
			}
			p, err := ps.build()
			if err != nil {
				return nil, false, fmt.Errorf("problem %d: %w", i, err)
			}
			problems[i] = p
		}
		return problems, true, nil
	}
	if len(spec.Groups) == 0 {
		return nil, false, fmt.Errorf("%s: spec has no groups and no problems", path)
	}
	p, err := spec.build()
	if err != nil {
		return nil, false, err
	}
	return []hputune.Problem{p}, false, nil
}

// pickAlgorithm chooses the scenario solver the paper prescribes for the
// instance's shape.
func pickAlgorithm(p hputune.Problem) string {
	if len(p.Groups) == 1 {
		return "ea"
	}
	proc := p.Groups[0].Type.ProcRate
	for _, g := range p.Groups[1:] {
		if g.Type.ProcRate != proc {
			return "ha"
		}
	}
	return "ra"
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("htune: ")
	specPath := flag.String("spec", "", "path to the JSON problem spec (required)")
	algorithm := flag.String("algorithm", "auto", "solver: auto, ea (Scenario I), ra (II) or ha (III)")
	simulate := flag.Int("simulate", 0, "Monte-Carlo trials to score the plan (0 = skip)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	compare := flag.Bool("compare", false, "score every applicable solver, the paper's baselines and the [29] comparator")
	saturation := flag.Int("saturation", 0, "scan per-group price saturation up to this price (0 = skip)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size for batch specs and simulation")
	flag.Parse()
	if *specPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	problems, batch, err := load(*specPath)
	if err != nil {
		log.Fatal(err)
	}
	if batch {
		if *compare || *saturation > 0 {
			log.Fatal("-compare and -saturation are not supported for batch specs")
		}
		runBatch(problems, *algorithm, *simulate, *seed, *workers)
		return
	}
	p := problems[0]
	if *saturation > 0 {
		runSaturation(p, *saturation)
		return
	}
	if *compare {
		runCompare(p, *simulate, *seed)
		return
	}
	algo := *algorithm
	if algo == "auto" {
		algo = pickAlgorithm(p)
	}
	var alloc hputune.Allocation
	switch algo {
	case "ea":
		alloc, err = hputune.EvenAllocation(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("algorithm: EA (Scenario I)\n")
	case "ra":
		res, rerr := hputune.SolveRepetition(hputune.NewEstimator(), p)
		if rerr != nil {
			log.Fatal(rerr)
		}
		fmt.Printf("algorithm: RA (Scenario II), per-group prices %v, objective %.4f\n",
			res.Prices, res.Objective)
		alloc, err = res.Allocation(p)
		if err != nil {
			log.Fatal(err)
		}
	case "ha":
		res, herr := hputune.SolveHeterogeneous(hputune.NewEstimator(), p)
		if herr != nil {
			log.Fatal(herr)
		}
		fmt.Printf("algorithm: HA (Scenario III), per-group prices %v, closeness %.4f to utopia (%.4f, %.4f)\n",
			res.Prices, res.Closeness, res.Utopia.O1, res.Utopia.O2)
		alloc, err = res.Allocation(p)
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown algorithm %q", algo)
	}
	fmt.Printf("allocation: %s\n", alloc)
	fmt.Printf("spend: %d of %d units\n", alloc.Cost(), p.Budget)
	if *simulate > 0 {
		lat, err := hputune.SimulateJobLatencyParallel(p, alloc, hputune.PhaseBoth, *simulate, *seed, *workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("expected job latency (both phases, %d trials): %.4f\n", *simulate, lat)
	}
}

// runBatch tunes a batch spec on the worker pool — every instance solved
// concurrently over one shared estimator — and optionally scores each
// plan with the deterministic trial-sharded simulator. algorithm picks
// the solver: "ra", "ha", or "auto" for the per-instance choice the
// single-problem path makes (EA has no batch form — its Scenario I
// instances are a single group, which RA solves identically).
func runBatch(problems []hputune.Problem, algorithm string, trials int, seed uint64, workers int) {
	algos := make([]string, len(problems))
	var raIdx, haIdx []int
	for i, p := range problems {
		algo := algorithm
		if algo == "auto" {
			algo = pickAlgorithm(p)
			if algo == "ea" {
				algo = "ra" // one group: RA's greedy reduces to EA's split
			}
		}
		switch algo {
		case "ra":
			raIdx = append(raIdx, i)
		case "ha":
			haIdx = append(haIdx, i)
		default:
			log.Fatalf("algorithm %q is not supported for batch specs (want auto, ra or ha)", algo)
		}
		algos[i] = algo
	}
	est := hputune.NewEstimator()
	opts := hputune.BatchOptions{Workers: workers}
	type row struct {
		prices    []int
		objective float64
	}
	rows := make([]row, len(problems))
	if len(raIdx) > 0 {
		sub := make([]hputune.Problem, len(raIdx))
		for k, i := range raIdx {
			sub[k] = problems[i]
		}
		results, err := hputune.SolveBatch(est, sub, opts)
		if err != nil {
			log.Fatal(err)
		}
		for k, i := range raIdx {
			rows[i] = row{prices: results[k].Prices, objective: results[k].Objective}
		}
	}
	if len(haIdx) > 0 {
		sub := make([]hputune.Problem, len(haIdx))
		for k, i := range haIdx {
			sub[k] = problems[i]
		}
		results, err := hputune.SolveHeterogeneousBatch(est, sub, opts)
		if err != nil {
			log.Fatal(err)
		}
		for k, i := range haIdx {
			rows[i] = row{prices: results[k].Prices, objective: results[k].Closeness}
		}
	}
	var lats []float64
	if trials > 0 {
		items := make([]hputune.SimulateItem, len(problems))
		for i := range problems {
			a, err := hputune.NewUniformAllocation(problems[i], rows[i].prices)
			if err != nil {
				log.Fatalf("problem %d: %v", i, err)
			}
			items[i] = hputune.SimulateItem{Problem: problems[i], Allocation: a}
		}
		var err error
		lats, err = hputune.SimulateBatch(items, hputune.PhaseBoth, trials, seed, opts)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("batch: %d problems, %d workers\n", len(problems), workers)
	fmt.Printf("%-8s %-6s %-10s %-22s %12s", "problem", "algo", "budget", "per-group prices", "objective")
	if trials > 0 {
		fmt.Printf(" %14s", "simulated")
	}
	fmt.Println()
	for i := range problems {
		fmt.Printf("%-8d %-6s %-10d %-22s %12.4f", i, algos[i], problems[i].Budget, fmt.Sprint(rows[i].prices), rows[i].objective)
		if trials > 0 {
			fmt.Printf(" %14.4f", lats[i])
		}
		fmt.Println()
	}
}

// runCompare scores every applicable strategy on the instance with the
// exact wall-clock E[max] (and optional Monte Carlo).
func runCompare(p hputune.Problem, trials int, seed uint64) {
	est := hputune.NewEstimator()
	type entry struct {
		name   string
		prices []int
		alloc  hputune.Allocation
	}
	var entries []entry

	if len(p.Groups) == 1 {
		if a, err := hputune.EvenAllocation(p); err == nil {
			entries = append(entries, entry{name: "EA", alloc: a})
		}
	}
	if ra, err := hputune.SolveRepetition(est, p); err == nil {
		entries = append(entries, entry{name: "RA", prices: ra.Prices})
	}
	if dp, err := hputune.SolveRepetitionDP(est, p); err == nil {
		entries = append(entries, entry{name: "RA-DP", prices: dp.Prices})
	}
	if ha, err := hputune.SolveHeterogeneous(est, p); err == nil {
		entries = append(entries, entry{name: "HA", prices: ha.Prices})
	}
	if par, err := hputune.MinimizeExpectedMaxParallel(p); err == nil {
		entries = append(entries, entry{name: "[29]", prices: par.Prices})
	}
	if te, err := hputune.TaskEvenAllocation(p); err == nil {
		entries = append(entries, entry{name: "task-even", alloc: te})
	}
	if re, err := hputune.RepEvenAllocation(p); err == nil {
		entries = append(entries, entry{name: "rep-even", alloc: re})
	}

	fmt.Printf("%-10s %-22s %10s %12s", "strategy", "per-group prices", "spend", "E[max] wall")
	if trials > 0 {
		fmt.Printf(" %14s", "simulated")
	}
	fmt.Println()
	for _, e := range entries {
		var analytic float64
		var spend int
		var err error
		if e.prices != nil {
			analytic, err = est.JobExpectedLatency(p.Groups, e.prices, hputune.PhaseBoth)
			if err != nil {
				log.Fatalf("%s: %v", e.name, err)
			}
			for i, g := range p.Groups {
				spend += g.UnitCost() * e.prices[i]
			}
			if e.alloc, err = hputune.NewUniformAllocation(p, e.prices); err != nil {
				log.Fatalf("%s: %v", e.name, err)
			}
		} else {
			spend = e.alloc.Cost()
			analytic, err = hputune.SimulateJobLatency(p, e.alloc, hputune.PhaseBoth, 20000, seed)
			if err != nil {
				log.Fatalf("%s: %v", e.name, err)
			}
		}
		priceCol := "-"
		if e.prices != nil {
			priceCol = fmt.Sprint(e.prices)
		}
		fmt.Printf("%-10s %-22s %10d %12.4f", e.name, priceCol, spend, analytic)
		if trials > 0 {
			lat, err := hputune.SimulateJobLatency(p, e.alloc, hputune.PhaseBoth, trials, seed)
			if err != nil {
				log.Fatalf("%s: %v", e.name, err)
			}
			fmt.Printf(" %14.4f", lat)
		}
		fmt.Println()
	}
}

// runSaturation prints each group's marginal-return curve summary.
func runSaturation(p hputune.Problem, maxPrice int) {
	est := hputune.NewEstimator()
	for i, g := range p.Groups {
		res, err := hputune.SaturationScan(est, g, maxPrice, 0.01)
		if err != nil {
			log.Fatalf("group %d: %v", i, err)
		}
		fmt.Printf("group %d (%s, %d tasks x %d reps): processing floor %.4f\n",
			i, g.Type.Name, g.Tasks, g.Reps, res.ProcessingFloor)
		if res.Saturated() {
			fmt.Printf("  saturates at price %d (marginal gain < 1%% of floor)\n", res.SaturationPrice)
		} else {
			fmt.Printf("  no saturation below price %d\n", maxPrice)
		}
		last := res.Curve[len(res.Curve)-1]
		fmt.Printf("  latency at price 1: %.4f, at price %d: %.4f\n",
			res.Curve[0].Latency, last.Price, last.Latency)
	}
}
