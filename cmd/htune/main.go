// Command htune solves an H-Tuning instance described in JSON and prints
// the tuned payment plan.
//
// Usage:
//
//	htune -spec problem.json [-algorithm auto|ea|ra|ha] [-simulate 2000]
//	htune -spec problem.json -compare [-simulate 2000]
//	htune -spec problem.json -saturation 50
//	htune -spec batch.json [-workers 8] [-simulate 2000]
//	htune -campaign -spec campaigns.json [-workers 8]
//	htune -state /var/lib/htuned [-verify]
//
// The spec format (single instance or top-level "problems" batch) is
// documented in internal/spec; model kinds: "linear" (k, b),
// "quadratic", "log", "table" (points: {"price": rate, ...}).
//
// -campaign runs closed-loop campaigns instead of one-shot solves: the
// spec's top level is "campaign" (one), "campaigns" (a fleet) or
// "fleet" (a named preset, e.g. {"fleet": {"preset": "paper"}}). Each
// campaign repeatedly tunes under its current belief, executes the
// round on the simulated market, re-fits the price→rate model from the
// observed traces and re-tunes, until its budget runs out, the fit
// converges, or the round deadline passes. Campaigns are tuned
// concurrently on the -workers pool; results are deterministic in the
// spec alone (identical to POST /v1/campaigns on htuned).
//
// A spec with a top-level "problems" array instead of "budget"/"groups"
// is a batch: every instance is tuned concurrently on a -workers pool
// over one shared estimator, and -simulate scores each plan with the
// deterministic trial-sharded Monte Carlo engine.
//
//	{"problems": [{"budget": 1000, "groups": [...]},
//	              {"budget": 2000, "groups": [...]}]}
//
// -state inspects a durable state directory written by htuned
// -state-dir: it prints the snapshot/WAL summary, the recovered ingest
// and fit state, and every campaign's resumable position; with -verify
// the exit status reports structural integrity (a torn final WAL
// record — the expected crash artifact, repaired by truncation on the
// next open — is a warning, everything else is corruption).
//
// htune is the one-shot CLI; to serve tuning continuously over HTTP
// (shared estimator cache, trace ingest, re-tuning), run the htuned
// binary instead — see -serve.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"hputune"
	"hputune/internal/campaign"
	"hputune/internal/spec"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process exit, so tests can drive the CLI
// end-to-end in-process against golden specs. It returns the exit
// status: 0 success, 1 runtime failure, 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("htune", flag.ContinueOnError)
	fs.SetOutput(stderr)
	specPath := fs.String("spec", "", "path to the JSON problem spec (required)")
	algorithm := fs.String("algorithm", "auto", "solver: auto, ea (Scenario I), ra (II) or ha (III)")
	simulate := fs.Int("simulate", 0, "Monte-Carlo trials to score the plan (0 = skip)")
	seed := fs.Uint64("seed", 1, "simulation seed")
	compare := fs.Bool("compare", false, "score every applicable solver, the paper's baselines and the [29] comparator")
	saturation := fs.Int("saturation", 0, "scan per-group price saturation up to this price (0 = skip)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "worker pool size for batch specs, campaign fleets and simulation")
	campaignMode := fs.Bool("campaign", false, "run closed-loop campaigns (tune → post → observe → re-tune) from a campaign spec")
	serve := fs.Bool("serve", false, "print how to run the HTTP service (htune itself is one-shot)")
	statePath := fs.String("state", "", "inspect a durable state directory (htuned -state-dir): print its summary and exit")
	verifyState := fs.Bool("verify", false, "with -state: verify structural integrity; corruption makes the exit status 1")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // -h/-help is a success, as with flag.ExitOnError
		}
		return 2
	}
	if *serve {
		fmt.Fprintln(stderr, "htune: htune is the one-shot CLI; the HTTP service is the separate htuned binary.")
		fmt.Fprintln(stderr, "htune: run `go run hputune/cmd/htuned -addr :8080` and POST your spec to /v1/solve.")
		return 2
	}
	if *statePath != "" {
		// State inspection is offline and self-contained; any solver
		// flag alongside it would be silently dead, so fail loudly.
		var inapplicable []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "state", "verify":
			default:
				inapplicable = append(inapplicable, "-"+f.Name)
			}
		})
		if len(inapplicable) > 0 {
			return fail(stderr, "%s not supported with -state (state inspection is offline)", strings.Join(inapplicable, ", "))
		}
		return runState(stdout, stderr, *statePath, *verifyState)
	}
	if *verifyState {
		return fail(stderr, "-verify needs -state <dir>")
	}
	if *specPath == "" {
		fs.Usage()
		return 2
	}
	if *campaignMode {
		// Campaign seeds, trial counts and solver choices come from the
		// spec; an explicitly set flag that cannot take effect must fail
		// loudly, not be silently dropped.
		var inapplicable []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "compare", "saturation", "simulate", "seed", "algorithm":
				inapplicable = append(inapplicable, "-"+f.Name)
			}
		})
		if len(inapplicable) > 0 {
			return fail(stderr, "%s not supported with -campaign (campaign seeds, trials and solvers come from the spec)",
				strings.Join(inapplicable, ", "))
		}
		return runCampaigns(stdout, stderr, *specPath, *workers)
	}
	problems, batch, err := spec.Load(*specPath, spec.BuildOpts{})
	if err != nil {
		return fail(stderr, "%v", err)
	}
	if batch {
		if *compare || *saturation > 0 {
			return fail(stderr, "-compare and -saturation are not supported for batch specs")
		}
		return runBatch(stdout, stderr, problems, *algorithm, *simulate, *seed, *workers)
	}
	p := problems[0]
	if *saturation > 0 {
		return runSaturation(stdout, stderr, p, *saturation)
	}
	if *compare {
		return runCompare(stdout, stderr, p, *simulate, *seed)
	}
	algo := *algorithm
	if algo == "auto" {
		algo = pickAlgorithm(p)
	}
	var alloc hputune.Allocation
	switch algo {
	case "ea":
		alloc, err = hputune.EvenAllocation(p)
		if err != nil {
			return fail(stderr, "%v", err)
		}
		fmt.Fprintf(stdout, "algorithm: EA (Scenario I)\n")
	case "ra":
		res, rerr := hputune.SolveRepetition(hputune.NewEstimator(), p)
		if rerr != nil {
			return fail(stderr, "%v", rerr)
		}
		fmt.Fprintf(stdout, "algorithm: RA (Scenario II), per-group prices %v, objective %.4f\n",
			res.Prices, res.Objective)
		alloc, err = res.Allocation(p)
		if err != nil {
			return fail(stderr, "%v", err)
		}
	case "ha":
		res, herr := hputune.SolveHeterogeneous(hputune.NewEstimator(), p)
		if herr != nil {
			return fail(stderr, "%v", herr)
		}
		fmt.Fprintf(stdout, "algorithm: HA (Scenario III), per-group prices %v, closeness %.4f to utopia (%.4f, %.4f)\n",
			res.Prices, res.Closeness, res.Utopia.O1, res.Utopia.O2)
		alloc, err = res.Allocation(p)
		if err != nil {
			return fail(stderr, "%v", err)
		}
	default:
		return fail(stderr, "unknown algorithm %q", algo)
	}
	fmt.Fprintf(stdout, "allocation: %s\n", alloc)
	fmt.Fprintf(stdout, "spend: %d of %d units\n", alloc.Cost(), p.Budget)
	if *simulate > 0 {
		lat, err := hputune.SimulateJobLatencyParallel(p, alloc, hputune.PhaseBoth, *simulate, *seed, *workers)
		if err != nil {
			return fail(stderr, "%v", err)
		}
		fmt.Fprintf(stdout, "expected job latency (both phases, %d trials): %.4f\n", *simulate, lat)
	}
	return 0
}

// runCampaigns drives a campaign spec's closed loops to their terminal
// statuses on the worker pool and prints each campaign's rounds. The
// printed per-round prices are identical to what POST /v1/campaigns
// reports for the same spec: both paths run campaign.Run on the same
// configs, and a campaign is a pure function of its config.
func runCampaigns(stdout, stderr io.Writer, specPath string, workers int) int {
	cfgs, err := spec.LoadCampaigns(specPath, spec.BuildOpts{})
	if err != nil {
		return fail(stderr, "%v", err)
	}
	results, err := campaign.RunFleet(context.Background(), nil, cfgs, workers)
	if err != nil {
		return fail(stderr, "%v", err)
	}
	fmt.Fprintf(stdout, "fleet: %d campaigns, %d workers\n", len(cfgs), workers)
	for i, res := range results {
		fmt.Fprintf(stdout, "[%d] %s: %s after %d rounds, spent %d (%d left), %s\n",
			i, res.Name, res.Status, res.RoundsRun, res.Spent, res.Remaining, res.Reason)
		if res.DroppedRounds > 0 {
			fmt.Fprintf(stdout, "    (%d earlier rounds dropped from history)\n", res.DroppedRounds)
		}
		for _, r := range res.Rounds {
			fmt.Fprintf(stdout, "    round %d: %s prices %v spent %d makespan %.4f",
				r.Round, r.Algorithm, r.Prices, r.Spent, r.Makespan)
			switch {
			case r.Fit != nil:
				fmt.Fprintf(stdout, " fit k=%.4f b=%.4f (Δ %.4f)", r.Fit.Slope, r.Fit.Intercept, r.FitDelta)
			case r.FitPending != "":
				fmt.Fprintf(stdout, " fit pending")
			}
			if q := r.Query; q != nil {
				fmt.Fprintf(stdout, " query %s phases=%d tasks=%d accuracy=%.4f quality=%.4f",
					q.Kind, q.Phases, q.Tasks, q.Accuracy, q.Quality)
			}
			if s := r.SLO; s != nil {
				fmt.Fprintf(stdout, " slo deadline=%.4f comparator=%d violated=%t",
					s.Deadline, s.ComparatorCost, s.Violated)
			}
			if p := r.Retainer; p != nil {
				fmt.Fprintf(stdout, " retainer workers=%d retained=%d fee=%d",
					p.Workers, p.Retained, p.Fee)
			}
			fmt.Fprintln(stdout)
		}
	}
	return 0
}

// fail prints an htune-prefixed error to stderr and returns exit
// status 1, the CLI's uniform runtime-failure path.
func fail(stderr io.Writer, format string, a ...any) int {
	fmt.Fprintf(stderr, "htune: "+format+"\n", a...)
	return 1
}

// pickAlgorithm chooses the scenario solver the paper prescribes for the
// instance's shape.
func pickAlgorithm(p hputune.Problem) string {
	if len(p.Groups) == 1 {
		return "ea"
	}
	proc := p.Groups[0].Type.ProcRate
	for _, g := range p.Groups[1:] {
		if g.Type.ProcRate != proc {
			return "ha"
		}
	}
	return "ra"
}

// runBatch tunes a batch spec on the worker pool — every instance solved
// concurrently over one shared estimator — and optionally scores each
// plan with the deterministic trial-sharded simulator. algorithm picks
// the solver: "ra", "ha", or "auto" for the per-instance choice the
// single-problem path makes (EA has no batch form — its Scenario I
// instances are a single group, which RA solves identically).
func runBatch(stdout, stderr io.Writer, problems []hputune.Problem, algorithm string, trials int, seed uint64, workers int) int {
	algos := make([]string, len(problems))
	var raIdx, haIdx []int
	for i, p := range problems {
		algo := algorithm
		if algo == "auto" {
			algo = pickAlgorithm(p)
			if algo == "ea" {
				algo = "ra" // one group: RA's greedy reduces to EA's split
			}
		}
		switch algo {
		case "ra":
			raIdx = append(raIdx, i)
		case "ha":
			haIdx = append(haIdx, i)
		default:
			return fail(stderr, "algorithm %q is not supported for batch specs (want auto, ra or ha)", algo)
		}
		algos[i] = algo
	}
	est := hputune.NewEstimator()
	opts := hputune.BatchOptions{Workers: workers}
	type row struct {
		prices    []int
		objective float64
	}
	rows := make([]row, len(problems))
	if len(raIdx) > 0 {
		sub := make([]hputune.Problem, len(raIdx))
		for k, i := range raIdx {
			sub[k] = problems[i]
		}
		results, err := hputune.SolveBatch(est, sub, opts)
		if err != nil {
			return fail(stderr, "%v", err)
		}
		for k, i := range raIdx {
			rows[i] = row{prices: results[k].Prices, objective: results[k].Objective}
		}
	}
	if len(haIdx) > 0 {
		sub := make([]hputune.Problem, len(haIdx))
		for k, i := range haIdx {
			sub[k] = problems[i]
		}
		results, err := hputune.SolveHeterogeneousBatch(est, sub, opts)
		if err != nil {
			return fail(stderr, "%v", err)
		}
		for k, i := range haIdx {
			rows[i] = row{prices: results[k].Prices, objective: results[k].Closeness}
		}
	}
	var lats []float64
	if trials > 0 {
		items := make([]hputune.SimulateItem, len(problems))
		for i := range problems {
			a, err := hputune.NewUniformAllocation(problems[i], rows[i].prices)
			if err != nil {
				return fail(stderr, "problem %d: %v", i, err)
			}
			items[i] = hputune.SimulateItem{Problem: problems[i], Allocation: a}
		}
		var err error
		lats, err = hputune.SimulateBatch(items, hputune.PhaseBoth, trials, seed, opts)
		if err != nil {
			return fail(stderr, "%v", err)
		}
	}
	fmt.Fprintf(stdout, "batch: %d problems, %d workers\n", len(problems), workers)
	fmt.Fprintf(stdout, "%-8s %-6s %-10s %-22s %12s", "problem", "algo", "budget", "per-group prices", "objective")
	if trials > 0 {
		fmt.Fprintf(stdout, " %14s", "simulated")
	}
	fmt.Fprintln(stdout)
	for i := range problems {
		fmt.Fprintf(stdout, "%-8d %-6s %-10d %-22s %12.4f", i, algos[i], problems[i].Budget, fmt.Sprint(rows[i].prices), rows[i].objective)
		if trials > 0 {
			fmt.Fprintf(stdout, " %14.4f", lats[i])
		}
		fmt.Fprintln(stdout)
	}
	return 0
}

// runCompare scores every applicable strategy on the instance with the
// exact wall-clock E[max] (and optional Monte Carlo).
func runCompare(stdout, stderr io.Writer, p hputune.Problem, trials int, seed uint64) int {
	est := hputune.NewEstimator()
	type entry struct {
		name   string
		prices []int
		alloc  hputune.Allocation
	}
	var entries []entry

	if len(p.Groups) == 1 {
		if a, err := hputune.EvenAllocation(p); err == nil {
			entries = append(entries, entry{name: "EA", alloc: a})
		}
	}
	if ra, err := hputune.SolveRepetition(est, p); err == nil {
		entries = append(entries, entry{name: "RA", prices: ra.Prices})
	}
	if dp, err := hputune.SolveRepetitionDP(est, p); err == nil {
		entries = append(entries, entry{name: "RA-DP", prices: dp.Prices})
	}
	if ha, err := hputune.SolveHeterogeneous(est, p); err == nil {
		entries = append(entries, entry{name: "HA", prices: ha.Prices})
	}
	if par, err := hputune.MinimizeExpectedMaxParallel(p); err == nil {
		entries = append(entries, entry{name: "[29]", prices: par.Prices})
	}
	if te, err := hputune.TaskEvenAllocation(p); err == nil {
		entries = append(entries, entry{name: "task-even", alloc: te})
	}
	if re, err := hputune.RepEvenAllocation(p); err == nil {
		entries = append(entries, entry{name: "rep-even", alloc: re})
	}

	fmt.Fprintf(stdout, "%-10s %-22s %10s %12s", "strategy", "per-group prices", "spend", "E[max] wall")
	if trials > 0 {
		fmt.Fprintf(stdout, " %14s", "simulated")
	}
	fmt.Fprintln(stdout)
	for _, e := range entries {
		var analytic float64
		var spend int
		var err error
		if e.prices != nil {
			analytic, err = est.JobExpectedLatency(p.Groups, e.prices, hputune.PhaseBoth)
			if err != nil {
				return fail(stderr, "%s: %v", e.name, err)
			}
			for i, g := range p.Groups {
				spend += g.UnitCost() * e.prices[i]
			}
			if e.alloc, err = hputune.NewUniformAllocation(p, e.prices); err != nil {
				return fail(stderr, "%s: %v", e.name, err)
			}
		} else {
			spend = e.alloc.Cost()
			analytic, err = hputune.SimulateJobLatency(p, e.alloc, hputune.PhaseBoth, 20000, seed)
			if err != nil {
				return fail(stderr, "%s: %v", e.name, err)
			}
		}
		priceCol := "-"
		if e.prices != nil {
			priceCol = fmt.Sprint(e.prices)
		}
		fmt.Fprintf(stdout, "%-10s %-22s %10d %12.4f", e.name, priceCol, spend, analytic)
		if trials > 0 {
			lat, err := hputune.SimulateJobLatency(p, e.alloc, hputune.PhaseBoth, trials, seed)
			if err != nil {
				return fail(stderr, "%s: %v", e.name, err)
			}
			fmt.Fprintf(stdout, " %14.4f", lat)
		}
		fmt.Fprintln(stdout)
	}
	return 0
}

// runSaturation prints each group's marginal-return curve summary.
func runSaturation(stdout, stderr io.Writer, p hputune.Problem, maxPrice int) int {
	est := hputune.NewEstimator()
	for i, g := range p.Groups {
		res, err := hputune.SaturationScan(est, g, maxPrice, 0.01)
		if err != nil {
			return fail(stderr, "group %d: %v", i, err)
		}
		fmt.Fprintf(stdout, "group %d (%s, %d tasks x %d reps): processing floor %.4f\n",
			i, g.Type.Name, g.Tasks, g.Reps, res.ProcessingFloor)
		if res.Saturated() {
			fmt.Fprintf(stdout, "  saturates at price %d (marginal gain < 1%% of floor)\n", res.SaturationPrice)
		} else {
			fmt.Fprintf(stdout, "  no saturation below price %d\n", maxPrice)
		}
		last := res.Curve[len(res.Curve)-1]
		fmt.Fprintf(stdout, "  latency at price 1: %.4f, at price %d: %.4f\n",
			res.Curve[0].Latency, last.Price, last.Latency)
	}
	return 0
}
