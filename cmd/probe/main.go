// Command probe estimates marketplace parameters the way Sec 3.3 of the
// paper prescribes: publish probe tasks at several prices, measure
// acceptance with the MLE λ̂ = N/T₀, and fit the Linearity Hypothesis
// λo(c) = k·c + b.
//
// Usage:
//
//	probe [-k 1] [-b 1] [-prices 1,2,3,4,5] [-tasks 2000] [-seed 1]
//
// The probe runs against the built-in marketplace simulator with ground
// truth λo(c) = k·c + b, so the printed fit can be compared to the truth.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"hputune"
)

func parsePrices(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad price %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("need at least 2 prices, got %d", len(out))
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("probe: ")
	k := flag.Float64("k", 1, "ground-truth slope of λo(c)")
	b := flag.Float64("b", 1, "ground-truth intercept of λo(c)")
	pricesFlag := flag.String("prices", "1,2,3,4,5,6", "comma-separated probe prices")
	tasks := flag.Int("tasks", 2000, "probe tasks per price")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	prices, err := parsePrices(*pricesFlag)
	if err != nil {
		log.Fatal(err)
	}
	truth := hputune.Linear{K: *k, B: *b}
	class := &hputune.TaskClass{
		Name:     "probe",
		Accept:   truth,
		ProcRate: 1e6, // probe tasks are submitted immediately (Sec 3.3.1)
		Accuracy: 1,
	}
	probe := hputune.Probe{Class: class, Tasks: *tasks, Seed: *seed}
	sweep, err := probe.SweepLinearity(prices, *tasks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("price   λ̂o (probe)      95% CI          λo (truth)  covered")
	for pi, price := range prices {
		// Each price level gets its own stream; a shared seed would make
		// the estimates perfectly correlated across prices.
		perPrice := probe
		perPrice.Seed = *seed + uint64(pi+1)*0x9e3779b97f4a7c15
		est, err := perPrice.RunOnHold(price, *tasks)
		if err != nil {
			log.Fatal(err)
		}
		ci, err := hputune.RateIntervalFromDurations(est.N, est.Period, 0.95)
		if err != nil {
			log.Fatal(err)
		}
		real := truth.Rate(float64(price))
		mark := "yes"
		if !ci.Contains(real) {
			mark = "NO"
		}
		fmt.Printf("%5d   %10.4f   [%7.4f, %7.4f]   %8.4f  %s\n",
			price, est.Rate, ci.Lo, ci.Hi, real, mark)
	}
	fmt.Printf("\nlinearity fit: %s\n", sweep.Fit)
	fmt.Printf("ground truth:  y = %g*x + %g\n", *k, *b)
}
