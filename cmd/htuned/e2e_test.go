package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hputune/internal/campaign"
	"hputune/internal/spec"
	"hputune/internal/store"
)

// e2eFleetDoc runs long enough (epsilon 0 + drift: every campaign goes
// the full 48 rounds) that a SIGKILL reliably lands mid-fleet.
const e2eFleetDoc = `{"campaigns":[
  {"name":"alpha","roundBudget":1000,"budget":48000,"rounds":48,"epsilon":0,"seed":7,
   "prior":{"kind":"linear","k":1,"b":1},
   "drift":{"kind":"rate","factor":0.97},
   "groups":[{"name":"g3","tasks":50,"reps":3,"procRate":2,"true":{"kind":"linear","k":2,"b":0.5}},
             {"name":"g5","tasks":50,"reps":5,"procRate":2,"true":{"kind":"linear","k":2,"b":0.5}}]},
  {"name":"beta","roundBudget":900,"budget":43200,"rounds":48,"epsilon":0,"seed":21,
   "prior":{"kind":"linear","k":1,"b":1},
   "drift":{"kind":"shock","factor":0.7,"round":9},
   "groups":[{"name":"g2","tasks":60,"reps":2,"procRate":2,"true":{"kind":"linear","k":1.8,"b":0.6}},
             {"name":"g4","tasks":45,"reps":4,"procRate":3,"true":{"kind":"linear","k":1.8,"b":0.6}}]}
]}`

// buildHtuned compiles the binary under test once per test run.
func buildHtuned(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "htuned")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// htunedProc is one running htuned under test.
type htunedProc struct {
	cmd  *exec.Cmd
	base string // http://addr
	logs *bytes.Buffer
}

// startHtuned launches htuned on a free port over stateDir and waits
// for its listen line.
func startHtuned(t *testing.T, bin, stateDir string) *htunedProc {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-state-dir", stateDir)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start htuned: %v", err)
	}
	p := &htunedProc{cmd: cmd, logs: &bytes.Buffer{}}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	addrC := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			p.logs.WriteString(line + "\n")
			if i := strings.Index(line, "listening on "); i >= 0 {
				fields := strings.Fields(line[i+len("listening on "):])
				if len(fields) > 0 {
					select {
					case addrC <- fields[0]:
					default:
					}
				}
			}
		}
	}()
	select {
	case addr := <-addrC:
		p.base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatalf("htuned never listened; logs:\n%s", p.logs.String())
	}
	return p
}

// kill SIGKILLs the process — no drain, no snapshot, no goodbye.
func (p *htunedProc) kill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	_, _ = p.cmd.Process.Wait()
}

// fleetList is the GET /v1/campaigns reply shape the test reads.
type fleetList struct {
	Campaigns []campaign.Summary `json:"campaigns"`
}

func (p *htunedProc) list(t *testing.T) fleetList {
	t.Helper()
	resp, err := http.Get(p.base + "/v1/campaigns")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	defer resp.Body.Close()
	var out fleetList
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	return out
}

func (p *htunedProc) result(t *testing.T, id string) campaign.Result {
	t.Helper()
	resp, err := http.Get(p.base + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("get %s: %d: %s", id, resp.StatusCode, raw)
	}
	var got struct {
		ID string `json:"id"`
		campaign.Result
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	return got.Result
}

// TestMetricsEndpointSmoke drives a real htuned process the way a
// monitoring agent would: one solve, then a plain GET /v1/metrics,
// asserting the document carries the solve's latency histogram and the
// admission gauges, and that an unknown route answers with the uniform
// error envelope plus a request id.
func TestMetricsEndpointSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives real processes")
	}
	bin := buildHtuned(t)
	p := startHtuned(t, bin, filepath.Join(t.TempDir(), "state"))

	solve := `{"budget":300,"groups":[{"name":"a","tasks":4,"reps":2,"procRate":2,"model":{"kind":"linear","k":2,"b":1}}]}`
	resp, err := http.Post(p.base+"/v1/solve", "application/json", strings.NewReader(solve))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("solve: %d", resp.StatusCode)
	}

	resp, err = http.Get(p.base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	var m struct {
		Endpoints map[string]struct {
			Count uint64  `json:"count"`
			SumMS float64 `json:"sumMs"`
		} `json:"endpoints"`
		Admission struct {
			Limit     int `json:"limit"`
			BulkLimit int `json:"bulkLimit"`
		} `json:"admission"`
		Store *struct {
			Appends uint64 `json:"appends"`
		} `json:"store"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	if h := m.Endpoints["POST /v1/solve"]; h.Count < 1 {
		t.Errorf("solve histogram missing from metrics: %+v", m.Endpoints)
	}
	if m.Admission.Limit < 1 || m.Admission.BulkLimit < 1 {
		t.Errorf("admission gauges = %+v", m.Admission)
	}
	if m.Store == nil {
		t.Error("durable htuned reports no store block")
	}

	resp, err = http.Get(p.base + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("404 body is not the envelope: %v", err)
	}
	if resp.StatusCode != 404 || env.Error.Code != "not_found" {
		t.Errorf("unknown route: status %d code %q, want 404 not_found", resp.StatusCode, env.Error.Code)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("no X-Request-ID on error reply")
	}
}

// TestSIGKILLMidFleetResumesByteIdentical is the PR's acceptance pin:
// htuned, killed with SIGKILL mid-fleet and restarted with the same
// -state-dir, resumes every unfinished campaign and produces round
// snapshots identical to an uninterrupted run at the same seed.
func TestSIGKILLMidFleetResumesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives real processes")
	}
	// Reference: the same fleet, uninterrupted, in-process (campaigns
	// are a pure function of their spec).
	cfgs, err := spec.ParseCampaigns([]byte(e2eFleetDoc), spec.BuildOpts{})
	if err != nil {
		t.Fatalf("parse fleet: %v", err)
	}
	ref, err := campaign.RunFleet(context.Background(), nil, cfgs, 0)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}

	bin := buildHtuned(t)
	stateDir := filepath.Join(t.TempDir(), "state")

	// First life: start the fleet, wait for real progress, SIGKILL.
	p1 := startHtuned(t, bin, stateDir)
	resp, err := http.Post(p1.base+"/v1/campaigns", "application/json", strings.NewReader(e2eFleetDoc))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("start fleet: %d: %s", resp.StatusCode, raw)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never progressed; logs:\n%s", p1.logs.String())
		}
		list := p1.list(t)
		rounds, running := 0, 0
		for _, c := range list.Campaigns {
			rounds += c.RoundsRun
			if !c.Status.Terminal() {
				running++
			}
		}
		if rounds >= 4 && running > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	p1.kill(t)

	// The torn directory must report unfinished campaigns (otherwise
	// the kill proved nothing).
	rep, err := store.Inspect(stateDir)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("SIGKILL left more than a torn tail: %+v %v", rep.Corrupt, rep.ApplyErr)
	}
	unfinished := 0
	for _, cs := range rep.State.Campaigns {
		if !cs.Checkpoint.Status.Terminal() {
			unfinished++
		}
	}
	if unfinished == 0 {
		t.Fatal("every campaign already finished before the kill; nothing was resumed")
	}

	// Second life: same -state-dir. Unfinished campaigns resume on boot
	// and run to completion without any new client request.
	p2 := startHtuned(t, bin, stateDir)
	deadline = time.Now().Add(120 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("resumed fleet never settled; logs:\n%s", p2.logs.String())
		}
		list := p2.list(t)
		allDone := len(list.Campaigns) == len(ref)
		for _, c := range list.Campaigns {
			if !c.Status.Terminal() {
				allDone = false
			}
		}
		if allDone {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := range ref {
		id := fmt.Sprintf("c%d", i+1)
		got := p2.result(t, id)
		gotJSON, _ := json.Marshal(got)
		wantJSON, _ := json.Marshal(ref[i])
		if string(gotJSON) != string(wantJSON) {
			t.Fatalf("campaign %s after SIGKILL+restart diverged from the uninterrupted run\n got  %s\n want %s", id, gotJSON, wantJSON)
		}
	}

	// Bonus: the offline inspector agrees the directory is healthy and
	// fully settled.
	p2.kill(t)
	rep, err = store.Inspect(stateDir)
	if err != nil {
		t.Fatalf("Inspect after settle: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("settled dir not clean: %+v", rep)
	}
}
