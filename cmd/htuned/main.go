// Command htuned is the long-running H-Tuning service: an HTTP JSON API
// over the solver engine, with a shared bounded estimator cache, an
// admission gate that turns overload into fast 503s, an online
// ingest→inference→re-tune loop that keeps a trace-fitted rate model
// current while solves are in flight, and an optional durable state
// directory that lets the process crash or upgrade without losing any
// of that.
//
// Usage:
//
//	htuned [-addr :8080] [-max-inflight N] [-workers N] [-cache-entries N]
//	       [-max-campaigns N] [-state-dir DIR] [-snapshot-every N]
//	       [-group-commit D] [-rate-limit R] [-rate-burst N]
//	       [-bulk-share F] [-shed-cpu F] [-access-log] [-node NAME]
//
// Endpoints: POST /v1/solve, /v1/solve-heterogeneous, /v1/simulate,
// /v1/ingest, /v1/campaigns; GET /v1/campaigns[/{id}], /v1/stats,
// /v1/metrics, /v1/healthz; DELETE /v1/campaigns/{id}. See the
// repository README for request and response shapes.
//
// Traffic hardening: -rate-limit R throttles each client (keyed by the
// X-Client-ID header, else remote address) to R requests per second
// with a burst of -rate-burst, answering 429 with a Retry-After
// computed from that client's bucket. -bulk-share caps the fraction of
// -max-inflight that bulk work (solve, solve-heterogeneous, simulate)
// may hold, so ingest and campaign control are never starved by a bulk
// flood. -shed-cpu sheds bulk work with a fast 503 once process CPU
// load crosses the threshold. GET /v1/metrics reports per-endpoint
// latency histograms plus admission, rate-limit, cache, campaign and
// WAL gauges; -access-log writes one line per request to stderr.
//
// With -state-dir, ingest aggregates, published fits and campaign state
// are journaled to an fsync'd write-ahead log (compacted into a
// snapshot every -snapshot-every records) and recovered on boot:
// campaigns that were running when the previous process died resume
// from their last completed round and produce exactly the rounds an
// uninterrupted run would have. SIGINT/SIGTERM trigger a graceful
// drain; with a state directory the running campaigns are suspended
// (resumable on next boot) and the WAL is compacted into a final
// snapshot before exit — without one they are canceled, keeping the
// belief their completed rounds published. Inspect or verify a state
// directory offline with htune -state DIR [-verify].
//
// Concurrent appends group-commit: records that arrive while a flush is
// in flight coalesce into one frame write and one fsync, and
// -group-commit D additionally holds each flush open for D (e.g. 2ms)
// so staggered appends share it too — trading bounded ack latency for
// fewer fsyncs under load. Every append still returns only after its
// record is durable.
//
// Under an htrouter cluster the process additionally serves the
// replication surface (rate-limit exempt): GET /v1/replication/state
// and /wal feed the router's WAL-shipping follower, GET
// /v1/replication/aggregates exports this node's ingest partition as
// additive sufficient statistics, and POST /v1/replication/fit accepts
// the router's cluster-merged model through the same slope/rate guard a
// local re-fit passes, journaling it so recovery (and a promoted
// replica) restores the merged fit bit-identically.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os/signal"
	"runtime"
	"syscall"

	"hputune"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("htuned: ")
	addr := flag.String("addr", ":8080", "listen address")
	node := flag.String("node", "", "this process's cluster node name, reported by the replication endpoints (must match the htrouter -node entry; [a-zA-Z0-9_]+)")
	maxInFlight := flag.Int("max-inflight", runtime.GOMAXPROCS(0), "concurrent solve/simulate requests admitted before 503")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "engine worker-pool size per admitted batch")
	cacheEntries := flag.Int("cache-entries", 0, "estimator cache bound in entries (0 = default 65536)")
	maxCampaigns := flag.Int("max-campaigns", 0, "concurrently running closed-loop campaigns admitted before 503 (0 = default 64)")
	stateDir := flag.String("state-dir", "", "durable state directory (WAL + snapshots); empty serves in-memory only")
	snapshotEvery := flag.Int("snapshot-every", 0, "compact the WAL into a snapshot every N records (0 = default 1024)")
	groupCommit := flag.Duration("group-commit", 0, "hold each WAL flush open this long so concurrent appends share its fsync (0 = opportunistic batching only)")
	rateLimit := flag.Float64("rate-limit", 0, "per-client request rate limit in req/s (0 = unlimited)")
	rateBurst := flag.Float64("rate-burst", 0, "per-client burst above -rate-limit (0 = default 2×rate)")
	bulkShare := flag.Float64("bulk-share", 0, "fraction of -max-inflight open to bulk solve/simulate work (0 = default 0.75)")
	shedCPU := flag.Float64("shed-cpu", 0, "process CPU load in [0,1] at which bulk work is shed (0 = disabled)")
	accessLog := flag.Bool("access-log", false, "log one line per request (method, path, status, latency, request id, client)")
	flag.Parse()

	cfg := hputune.ServerConfig{
		Node:         *node,
		MaxInFlight:  *maxInFlight,
		Workers:      *workers,
		CacheEntries: *cacheEntries,
		MaxCampaigns: *maxCampaigns,
		Traffic: hputune.TrafficConfig{
			BulkShare:     *bulkShare,
			RatePerClient: *rateLimit,
			RateBurst:     *rateBurst,
			ShedCPU:       *shedCPU,
		},
	}
	if *accessLog {
		cfg.Traffic.AccessLog = log.New(log.Writer(), "access: ", 0)
	}
	var srv *hputune.Server
	var st *hputune.Store
	if *stateDir != "" {
		var err error
		st, err = hputune.OpenStore(*stateDir, hputune.StoreOptions{
			SnapshotEvery:     *snapshotEvery,
			GroupCommitWindow: *groupCommit,
			OnError: func(err error) {
				// Sticky: the store is read-only from here on; the process
				// keeps serving from memory so live traffic survives a bad
				// disk, but a restart loses everything since this point.
				log.Printf("state: durability lost: %v", err)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		srv, err = hputune.RecoverServer(cfg, st)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("recovered state from %s", *stateDir)
	} else {
		var err error
		srv, err = hputune.NewServer(cfg)
		if err != nil {
			log.Fatal(err)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		// Restore default signal behavior once the drain starts, so a
		// second Ctrl-C force-quits instead of being swallowed for the
		// length of the drain window.
		<-ctx.Done()
		stop()
	}()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// The resolved address, not the flag: ":0" callers need the port.
	log.Printf("listening on %s (max-inflight %d, workers %d)", ln.Addr(), *maxInFlight, *workers)
	if err := srv.Serve(ctx, ln); err != nil {
		log.Fatal(err)
	}
	if st != nil {
		// Drain-then-snapshot: campaigns were suspended during shutdown;
		// folding the WAL tail into a snapshot makes the next boot replay
		// nothing.
		if err := st.Compact(); err != nil {
			log.Printf("state: final snapshot: %v", err)
		}
		if err := st.Close(); err != nil {
			log.Printf("state: close: %v", err)
		}
	}
	log.Print("drained, bye")
}
