// Command htuned is the long-running H-Tuning service: an HTTP JSON API
// over the solver engine, with a shared bounded estimator cache, an
// admission gate that turns overload into fast 503s, and an online
// ingest→inference→re-tune loop that keeps a trace-fitted rate model
// current while solves are in flight.
//
// Usage:
//
//	htuned [-addr :8080] [-max-inflight N] [-workers N] [-cache-entries N]
//	       [-max-campaigns N]
//
// Endpoints: POST /v1/solve, /v1/solve-heterogeneous, /v1/simulate,
// /v1/ingest, /v1/campaigns; GET /v1/campaigns[/{id}], /v1/stats,
// /v1/healthz; DELETE /v1/campaigns/{id}. See the repository README for
// request and response shapes. SIGINT/SIGTERM trigger a graceful drain;
// running campaigns are canceled first (a campaign canceled mid-round
// keeps the belief its completed rounds published).
package main

import (
	"context"
	"flag"
	"log"
	"os/signal"
	"runtime"
	"syscall"

	"hputune"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("htuned: ")
	addr := flag.String("addr", ":8080", "listen address")
	maxInFlight := flag.Int("max-inflight", runtime.GOMAXPROCS(0), "concurrent solve/simulate requests admitted before 503")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "engine worker-pool size per admitted batch")
	cacheEntries := flag.Int("cache-entries", 0, "estimator cache bound in entries (0 = default 65536)")
	maxCampaigns := flag.Int("max-campaigns", 0, "concurrently running closed-loop campaigns admitted before 503 (0 = default 64)")
	flag.Parse()

	srv, err := hputune.NewServer(hputune.ServerConfig{
		MaxInFlight:  *maxInFlight,
		Workers:      *workers,
		CacheEntries: *cacheEntries,
		MaxCampaigns: *maxCampaigns,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		// Restore default signal behavior once the drain starts, so a
		// second Ctrl-C force-quits instead of being swallowed for the
		// length of the drain window.
		<-ctx.Done()
		stop()
	}()
	log.Printf("listening on %s (max-inflight %d, workers %d)", *addr, *maxInFlight, *workers)
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		log.Fatal(err)
	}
	log.Print("drained, bye")
}
