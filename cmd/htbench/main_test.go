package main

import (
	"flag"
	"path/filepath"
	"strings"
	"testing"

	"hputune/internal/benchio"
)

func TestSelectSuites(t *testing.T) {
	all, err := selectSuites("all")
	if err != nil || len(all) != len(suites) {
		t.Fatalf("selectSuites(all) = %d suites, err %v", len(all), err)
	}
	one, err := selectSuites("market")
	if err != nil || len(one) != 1 || one[0].name != "market" {
		t.Fatalf("selectSuites(market) = %+v, err %v", one, err)
	}
	if _, err := selectSuites("nope"); err == nil {
		t.Error("selectSuites accepted an unknown suite")
	}
}

// TestSuiteRegistry pins the declared surface: the four committed
// baselines exist, every benchmark is named, and names are unique
// within a suite (Compare matches by name).
func TestSuiteRegistry(t *testing.T) {
	want := map[string]bool{"campaign": true, "solvers": true, "market": true, "inference": true}
	for _, s := range suites {
		if !want[s.name] {
			t.Errorf("unregistered suite name %q", s.name)
		}
		delete(want, s.name)
		if s.pkg == "" || s.description == "" {
			t.Errorf("suite %s missing pkg or description", s.name)
		}
		seen := map[string]bool{}
		for _, b := range s.benchmarks {
			if b.name == "" || b.fn == nil {
				t.Errorf("suite %s has an unnamed or bodyless benchmark", s.name)
			}
			if seen[b.name] {
				t.Errorf("suite %s: duplicate benchmark %s", s.name, b.name)
			}
			seen[b.name] = true
		}
	}
	for name := range want {
		t.Errorf("suite %s not registered", name)
	}
}

// TestRunSuitesAndCompare drives the real harness end to end on the
// cheap suites at one iteration: measure, write, self-compare (always
// within tolerance), then a doctored regression must fail. The campaign
// suite is exercised by BenchmarkCampaignFleet and the fleet tests; its
// two fleet runs per benchmark are too heavy for the unit suite.
func TestRunSuitesAndCompare(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	if err := flag.Set("test.benchtime", "1x"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, name := range []string{"solvers", "market", "inference"} {
		sel, err := selectSuites(name)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := runSuite(sel[0], "1x", "testcommit")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(doc.Benchmarks) != len(sel[0].benchmarks) {
			t.Fatalf("%s: measured %d of %d benchmarks", name, len(doc.Benchmarks), len(sel[0].benchmarks))
		}
		path := filepath.Join(dir, "BENCH_"+name+".json")
		if err := writeSuite(path, doc); err != nil {
			t.Fatal(err)
		}
		if err := runCompare(path, path, 2.0, 1.5, 10000, 16); err != nil {
			t.Errorf("%s: self-compare failed: %v", name, err)
		}
	}
	// Doctor a gross allocation regression into a copy and require the
	// comparison to fail on it.
	base, err := benchio.Read(filepath.Join(dir, "BENCH_market.json"))
	if err != nil {
		t.Fatal(err)
	}
	worse := base
	worse.Benchmarks = append([]benchio.Result(nil), base.Benchmarks...)
	for i := range worse.Benchmarks {
		worse.Benchmarks[i].AllocsPerOp = worse.Benchmarks[i].AllocsPerOp*2 + 100
	}
	worsePath := filepath.Join(dir, "BENCH_market_worse.json")
	if err := benchio.Write(worsePath, worse); err != nil {
		t.Fatal(err)
	}
	err = runCompare(filepath.Join(dir, "BENCH_market.json"), worsePath, 2.0, 1.5, 10000, 16)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Errorf("doctored regression not caught: %v", err)
	}
}

// TestLoadTestSmall runs the degradation harness at a small multiplier
// so every bound (envelope parity, zero starved rounds, p99) is
// exercised in the ordinary test suite; CI's bench-smoke runs 10×.
func TestLoadTestSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("floods an in-process server")
	}
	if err := runLoadTest(2, t.Logf); err != nil {
		t.Fatal(err)
	}
}
