package main

import (
	"flag"
	"path/filepath"
	"strings"
	"testing"

	"hputune/internal/benchio"
)

func TestSelectSuites(t *testing.T) {
	all, err := selectSuites("all")
	if err != nil || len(all) != len(suites) {
		t.Fatalf("selectSuites(all) = %d suites, err %v", len(all), err)
	}
	one, err := selectSuites("market")
	if err != nil || len(one) != 1 || one[0].name != "market" {
		t.Fatalf("selectSuites(market) = %+v, err %v", one, err)
	}
	// The scaling suite resolves by name but never rides "all": its 10k
	// cells would turn every smoke run into a minutes-long measurement.
	sc, err := selectSuites("scaling")
	if err != nil || len(sc) != 1 || sc[0].name != "scaling" {
		t.Fatalf("selectSuites(scaling) = %+v, err %v", sc, err)
	}
	for _, s := range all {
		if s.name == "scaling" {
			t.Error("scaling suite must not be part of -suite all")
		}
	}
	if _, err := selectSuites("nope"); err == nil {
		t.Error("selectSuites accepted an unknown suite")
	}
}

// TestScalingSuiteShape pins the scaling grid: every fleet shape is
// measured at every worker count, each cell carries its workers
// dimension, and names are unique.
func TestScalingSuiteShape(t *testing.T) {
	want := len(scalingFleets) * len(scalingWorkerGrid)
	if len(scalingSuite.benchmarks) != want {
		t.Fatalf("scaling suite has %d cells, want %d", len(scalingSuite.benchmarks), want)
	}
	seen := map[string]bool{}
	byWorkers := map[int]int{}
	for _, b := range scalingSuite.benchmarks {
		if seen[b.name] {
			t.Errorf("duplicate scaling cell %s", b.name)
		}
		seen[b.name] = true
		if b.workers < 1 {
			t.Errorf("cell %s has no workers dimension", b.name)
		}
		byWorkers[b.workers]++
	}
	for _, w := range scalingWorkerGrid {
		if byWorkers[w] != len(scalingFleets) {
			t.Errorf("worker count %d measured %d times, want %d", w, byWorkers[w], len(scalingFleets))
		}
	}
	if scalingSuite.finish == nil {
		t.Error("scaling suite has no finish hook; speedup_vs_serial would never be filled")
	}
}

// TestScalingSpeedupDerivation drives the finish hook on a fabricated
// measurement: each cell's speedup must be its fleet's W1 ns/op over its
// own, and the serial cells must read exactly 1.
func TestScalingSpeedupDerivation(t *testing.T) {
	doc := suiteDoc{benchio.Suite{Suite: "scaling"}}
	doc.Benchmarks = []benchio.Result{
		{Name: "Fleet16W1", Workers: 1, NsPerOp: 8e6},
		{Name: "Fleet16W4", Workers: 4, NsPerOp: 2e6},
		{Name: "Fleet256W1", Workers: 1, NsPerOp: 1e7},
		{Name: "Fleet256W4", Workers: 4, NsPerOp: 2e7}, // a slowdown: speedup < 1, still recorded
	}
	scalingSuite.finish(&doc)
	wantSpeedup := map[string]float64{
		"Fleet16W1": 1, "Fleet16W4": 4,
		"Fleet256W1": 1, "Fleet256W4": 0.5,
	}
	for _, b := range doc.Benchmarks {
		if got := b.SpeedupVsSerial; got != wantSpeedup[b.Name] {
			t.Errorf("%s: speedup %.3g, want %.3g", b.Name, got, wantSpeedup[b.Name])
		}
	}
}

// TestSuiteRegistry pins the declared surface: the five committed
// baselines exist, every benchmark is named, and names are unique
// within a suite (Compare matches by name).
func TestSuiteRegistry(t *testing.T) {
	want := map[string]bool{"campaign": true, "solvers": true, "market": true, "inference": true, "crowddb": true}
	for _, s := range suites {
		if !want[s.name] {
			t.Errorf("unregistered suite name %q", s.name)
		}
		delete(want, s.name)
		if s.pkg == "" || s.description == "" {
			t.Errorf("suite %s missing pkg or description", s.name)
		}
		seen := map[string]bool{}
		for _, b := range s.benchmarks {
			if b.name == "" || b.fn == nil {
				t.Errorf("suite %s has an unnamed or bodyless benchmark", s.name)
			}
			if seen[b.name] {
				t.Errorf("suite %s: duplicate benchmark %s", s.name, b.name)
			}
			seen[b.name] = true
		}
	}
	for name := range want {
		t.Errorf("suite %s not registered", name)
	}
}

// TestRunSuitesAndCompare drives the real harness end to end on the
// cheap suites at one iteration: measure, write, self-compare (always
// within tolerance), then a doctored regression must fail. The campaign
// suite is exercised by BenchmarkCampaignFleet and the fleet tests; its
// two fleet runs per benchmark are too heavy for the unit suite.
func TestRunSuitesAndCompare(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	if err := flag.Set("test.benchtime", "1x"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, name := range []string{"solvers", "market", "inference"} {
		sel, err := selectSuites(name)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := runSuite(sel[0], "1x", "testcommit")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(doc.Benchmarks) != len(sel[0].benchmarks) {
			t.Fatalf("%s: measured %d of %d benchmarks", name, len(doc.Benchmarks), len(sel[0].benchmarks))
		}
		path := filepath.Join(dir, "BENCH_"+name+".json")
		if err := writeSuite(path, doc); err != nil {
			t.Fatal(err)
		}
		if err := runCompare(path, path, 2.0, 1.5, 10000, 16); err != nil {
			t.Errorf("%s: self-compare failed: %v", name, err)
		}
	}
	// Doctor a gross allocation regression into a copy and require the
	// comparison to fail on it.
	base, err := benchio.Read(filepath.Join(dir, "BENCH_market.json"))
	if err != nil {
		t.Fatal(err)
	}
	worse := base
	worse.Benchmarks = append([]benchio.Result(nil), base.Benchmarks...)
	for i := range worse.Benchmarks {
		worse.Benchmarks[i].AllocsPerOp = worse.Benchmarks[i].AllocsPerOp*2 + 100
	}
	worsePath := filepath.Join(dir, "BENCH_market_worse.json")
	if err := benchio.Write(worsePath, worse); err != nil {
		t.Fatal(err)
	}
	err = runCompare(filepath.Join(dir, "BENCH_market.json"), worsePath, 2.0, 1.5, 10000, 16)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Errorf("doctored regression not caught: %v", err)
	}
}

// TestCompareEnvMismatchSkips pins the CI semantics of a core-count
// mismatch: benchio.Compare hard-refuses (its own test pins that), but
// runCompare — the `htbench -compare` / `make bench-compare` path —
// downgrades the refusal to a skip-with-notice (nil error). Anything
// else leaves the bench CI job deterministically red whenever the
// runner's core count differs from the baseline recorder's, which is a
// permanent state until someone re-records on the runner's machine
// class.
func TestCompareEnvMismatchSkips(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string, cpus int) string {
		s := benchio.Suite{
			Suite:       "solvers",
			Package:     "p",
			Description: "d",
			Recorded:    "2026-08-07",
			Commit:      "abc1234",
			Environment: benchio.Environment{GOOS: "linux", GOARCH: "amd64", CPUs: cpus, GOMAXPROCS: cpus},
			Benchmarks:  []benchio.Result{{Name: "RASolve", Iterations: 1, NsPerOp: 1e6, AllocsPerOp: 10}},
		}
		path := filepath.Join(dir, name)
		if err := benchio.Write(path, s); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := mk("BENCH_base.json", 1)
	fresh := mk("BENCH_fresh.json", 4)
	if err := runCompare(base, fresh, 2.0, 1.5, 10000, 16); err != nil {
		t.Errorf("env mismatch must skip-with-notice, not fail: %v", err)
	}
	// Matching environments still compare (and here, pass).
	if err := runCompare(base, base, 2.0, 1.5, 10000, 16); err != nil {
		t.Errorf("self-compare failed: %v", err)
	}
}

// TestLoadTestSmall runs the degradation harness at a small multiplier
// so every bound (envelope parity, zero starved rounds, p99) is
// exercised in the ordinary test suite; CI's bench-smoke runs 10×.
func TestLoadTestSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("floods an in-process server")
	}
	if err := runLoadTest(2, t.Logf); err != nil {
		t.Fatal(err)
	}
}
