package main

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"hputune/internal/benchio"
	"hputune/internal/campaign"
	"hputune/internal/crowddb"
	"hputune/internal/engine"
	"hputune/internal/htuning"
	"hputune/internal/inference"
	"hputune/internal/market"
	"hputune/internal/pricing"
	"hputune/internal/randx"
	"hputune/internal/workload"
)

// benchDef is one declared benchmark: a name, the inner rounds one
// iteration performs (0 when the benchmark has no such unit — it feeds
// ms_per_round), the worker-pool width it runs with (0 when it has no
// worker dimension), a note for readers of the JSON, and the body.
type benchDef struct {
	name    string
	rounds  int
	workers int
	note    string
	fn      func(b *testing.B)
}

// suiteDef is one BENCH_<suite>.json worth of benchmarks. finish, when
// set, post-processes the measured document once every benchmark has
// run (the scaling suite derives speedup-vs-serial there).
type suiteDef struct {
	name        string
	pkg         string
	description string
	benchmarks  []benchDef
	finish      func(d *suiteDoc)
}

// suiteDoc accumulates measurements into the benchio schema.
type suiteDoc struct{ benchio.Suite }

func newSuiteDoc(s suiteDef, benchtime, commit, date string) suiteDoc {
	return suiteDoc{benchio.Suite{
		Suite:       s.name,
		Package:     s.pkg,
		Description: s.description,
		Recorded:    date,
		Commit:      commit,
		Environment: benchio.CaptureEnvironment(),
		Command:     fmt.Sprintf("go run ./cmd/htbench -suite %s -benchtime %s -out .", s.name, benchtime),
	}}
}

func (d *suiteDoc) add(b benchDef, r testing.BenchmarkResult) {
	res := benchio.FromBenchmarkResult(b.name, r, b.rounds)
	res.Workers = b.workers
	res.Note = b.note
	d.Benchmarks = append(d.Benchmarks, res)
}

func writeSuite(path string, d suiteDoc) error { return benchio.Write(path, d.Suite) }

// Fixed workloads. Sizes and seeds are pinned so every run of a suite
// measures the same work — see docs/PERFORMANCE.md for the methodology.

// prior is the mistuned belief the campaign fleet starts from; the
// solver suites price under it so their integrals match the campaign
// hot path's.
var prior = pricing.Linear{K: 1, B: 1}

// solverProblem is the fleet round shape: 50 tasks × 3 reps and
// 50 × 5 under one task type, budget 1000.
func solverProblem(procRates ...float64) htuning.Problem {
	reps := []int{3, 5}
	p := htuning.Problem{Budget: 1000}
	for i, proc := range procRates {
		p.Groups = append(p.Groups, htuning.Group{
			Type:  &htuning.TaskType{Name: fmt.Sprintf("g%d", reps[i]), Accept: prior, ProcRate: proc},
			Tasks: 50,
			Reps:  reps[i],
		})
	}
	return p
}

// warmed returns an estimator pre-warmed by one run of fn, so the
// recorded iterations measure the steady serving state (cache hits plus
// solver mechanics) rather than a mix of cold and warm passes.
func warmed(b *testing.B, fn func(est *htuning.Estimator) error) *htuning.Estimator {
	b.Helper()
	est := htuning.NewEstimator()
	if err := fn(est); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	return est
}

var solverSuite = suiteDef{
	name:        "solvers",
	pkg:         "hputune/internal/htuning",
	description: "solver hot paths on the fleet round shape (2 groups, 100 tasks, budget 1000) with a warmed shared estimator; Reference benchmarks are the unoptimized certification paths (the optimization ablation)",
	benchmarks: []benchDef{
		{name: "RASolve", note: "Algorithm 2 greedy, incremental-delta path", fn: func(b *testing.B) {
			p := solverProblem(2, 2)
			est := warmed(b, func(est *htuning.Estimator) error { _, err := htuning.SolveRepetition(est, p); return err })
			for i := 0; i < b.N; i++ {
				if _, err := htuning.SolveRepetition(est, p); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "RASolveReference", note: "Algorithm 2 greedy, unoptimized reference path", fn: func(b *testing.B) {
			p := solverProblem(2, 2)
			est := warmed(b, func(est *htuning.Estimator) error { _, err := htuning.SolveRepetitionReference(est, p); return err })
			for i := 0; i < b.N; i++ {
				if _, err := htuning.SolveRepetitionReference(est, p); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "RASolveDP", note: "exact multiple-choice knapsack certification solver", fn: func(b *testing.B) {
			p := solverProblem(2, 2)
			est := warmed(b, func(est *htuning.Estimator) error { _, err := htuning.SolveRepetitionDP(est, p); return err })
			for i := 0; i < b.N; i++ {
				if _, err := htuning.SolveRepetitionDP(est, p); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "HASolve", note: "Algorithm 3, incremental candidate scoring + binary-search O2", fn: func(b *testing.B) {
			p := solverProblem(2, 3)
			est := warmed(b, func(est *htuning.Estimator) error { _, err := htuning.SolveHeterogeneous(est, p); return err })
			for i := 0; i < b.N; i++ {
				if _, err := htuning.SolveHeterogeneous(est, p); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "HASolveReference", note: "Algorithm 3, unoptimized reference path", fn: func(b *testing.B) {
			p := solverProblem(2, 3)
			est := warmed(b, func(est *htuning.Estimator) error {
				_, err := htuning.SolveHeterogeneousNormReference(est, p, htuning.NormL1)
				return err
			})
			for i := 0; i < b.N; i++ {
				if _, err := htuning.SolveHeterogeneousNormReference(est, p, htuning.NormL1); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "EASolve", note: "Algorithm 1 closed-form split, one group of 100 tasks x 5 reps", fn: func(b *testing.B) {
			p := htuning.Problem{
				Budget: 1000,
				Groups: []htuning.Group{{
					Type:  &htuning.TaskType{Name: "g", Accept: prior, ProcRate: 2},
					Tasks: 100,
					Reps:  5,
				}},
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := htuning.EvenAllocation(p); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "SolveBatch64", rounds: 64, note: "64 distinct RA instances on the batch engine, GOMAXPROCS pool; ms_per_round is per instance", fn: func(b *testing.B) {
			problems := make([]htuning.Problem, 64)
			for i := range problems {
				problems[i] = solverProblem(2, 2)
				problems[i].Budget = 900 + i*4
			}
			est := warmed(b, func(est *htuning.Estimator) error {
				_, err := engine.SolveBatch(est, problems, engine.Options{})
				return err
			})
			for i := 0; i < b.N; i++ {
				if _, err := engine.SolveBatch(est, problems, engine.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
	},
}

// marketClass is the true market behaviour the simulator benchmarks
// drive: the fleet's 2p+0.5 acceptance curve.
var marketClass = &market.TaskClass{Name: "t", Accept: pricing.Linear{K: 2, B: 0.5}, ProcRate: 2, Accuracy: 1}

// marketSpecs builds the simulator batch: tasks identical three-rep
// tasks at price 2.
func marketSpecs(tasks, reps int) []market.TaskSpec {
	specs := make([]market.TaskSpec, tasks)
	for i := range specs {
		prices := make([]int, reps)
		for r := range prices {
			prices[r] = 2
		}
		specs[i] = market.TaskSpec{ID: fmt.Sprintf("t-%03d", i), Class: marketClass, RepPrices: prices}
	}
	return specs
}

var marketSuite = suiteDef{
	name:        "market",
	pkg:         "hputune/internal/market",
	description: "discrete-event marketplace simulator: single runs (steady-state buffer reuse) and the deterministic replication engine",
	benchmarks: []benchDef{
		{name: "SimRun", note: "one event-ordered run of 100 tasks x 3 reps, independent acceptance, recycled Buffers (steady state: first run's allocations excluded)", fn: func(b *testing.B) {
			specs := marketSpecs(100, 3)
			var buf market.Buffers
			runOnce := func() {
				sim, err := market.NewWithBuffers(market.Config{Seed: 1}, &buf)
				if err != nil {
					b.Fatal(err)
				}
				if err := sim.PostAll(specs); err != nil {
					b.Fatal(err)
				}
				if _, err := sim.Run(); err != nil {
					b.Fatal(err)
				}
			}
			runOnce()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runOnce()
			}
		}},
		{name: "SimRunWorkerChoice", note: "one run of 100 tasks x 3 reps under Poisson worker arrivals (rate 25); steady state", fn: func(b *testing.B) {
			specs := marketSpecs(100, 3)
			var buf market.Buffers
			runOnce := func() {
				sim, err := market.NewWithBuffers(market.Config{Mode: market.ModeWorkerChoice, ArrivalRate: 25, Seed: 1}, &buf)
				if err != nil {
					b.Fatal(err)
				}
				if err := sim.PostAll(specs); err != nil {
					b.Fatal(err)
				}
				if _, err := sim.Run(); err != nil {
					b.Fatal(err)
				}
			}
			runOnce()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runOnce()
			}
		}},
		{name: "ReplicatedMakespans64", rounds: 64, note: "64 deterministic replications of 100 tasks x 3 reps on the GOMAXPROCS pool; ms_per_round is per replication; steady state", fn: func(b *testing.B) {
			specs := marketSpecs(100, 3)
			cfg := market.Config{Seed: 1}
			if _, err := market.ReplicatedMakespans(cfg, specs, 64, 0); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := market.ReplicatedMakespans(cfg, specs, 64, 0); err != nil {
					b.Fatal(err)
				}
			}
		}},
	},
}

var inferenceSuite = suiteDef{
	name:        "inference",
	pkg:         "hputune/internal/inference",
	description: "the re-fit half of the closed loop (aggregate folding + linearity fit) and the estimator cache hit/miss costs it competes with",
	benchmarks: []benchDef{
		{name: "FitAggregates64", note: "per-price MLE + least-squares line over 64 price levels", fn: func(b *testing.B) {
			aggs := make(map[int]inference.PriceAggregate, 64)
			for price := 1; price <= 64; price++ {
				agg := aggs[price]
				agg.Add(200, 200/(2*float64(price)+0.5))
				aggs[price] = agg
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := inference.FitAggregates(aggs); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "FoldRecords", rounds: 400, note: "folding one round's 400 repetition records into cumulative price aggregates; ms_per_round is per record", fn: func(b *testing.B) {
			aggs := make(map[int]inference.PriceAggregate)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := 0; r < 400; r++ {
					price := 1 + r%4
					agg := aggs[price]
					agg.Add(1, 0.4+float64(r%7)*0.05)
					aggs[price] = agg
				}
			}
		}},
		{name: "EstimatorCacheHit", note: "one memoized E[max] lookup (sharded second-chance hit: lock, map probe, touched-bit store — no list splice)", fn: func(b *testing.B) {
			est := htuning.NewEstimator()
			g := htuning.Group{Type: &htuning.TaskType{Name: "g", Accept: prior, ProcRate: 2}, Tasks: 50, Reps: 3}
			if _, err := est.GroupPhase1Mean(g, 2); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := est.GroupPhase1Mean(g, 2); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "EstimatorCacheHitParallel", workers: 4, note: "the EstimatorCacheHit critical section under 4 contending goroutines hammering one shard — the case the touched-bit hit path exists for (the old splice-on-hit serialized here)", fn: func(b *testing.B) {
			est := htuning.NewEstimator()
			g := htuning.Group{Type: &htuning.TaskType{Name: "g", Accept: prior, ProcRate: 2}, Tasks: 50, Reps: 3}
			if _, err := est.GroupPhase1Mean(g, 2); err != nil {
				b.Fatal(err)
			}
			b.SetParallelism(4)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := est.GroupPhase1Mean(g, 2); err != nil {
						// Fatal must not be called off the benchmark goroutine
						// (testing.FailNow is undefined there); Error + return
						// fails the run and exits only this worker.
						b.Error(err)
						return
					}
				}
			})
		}},
		{name: "EstimatorCacheMiss", note: "one full E[max of 10 Erlang] integral per op: every lookup uses a never-seen price, so every op is a true miss regardless of cache layout", fn: func(b *testing.B) {
			est := htuning.NewEstimator()
			g := htuning.Group{Type: &htuning.TaskType{Name: "g", Accept: prior, ProcRate: 2}, Tasks: 10, Reps: 3}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := est.GroupPhase1Mean(g, 1+i); err != nil {
					b.Fatal(err)
				}
			}
		}},
	},
}

var campaignSuite = suiteDef{
	name:        "campaign",
	pkg:         "hputune/internal/campaign",
	description: "16 concurrent closed-loop campaigns x 8 rounds each (solve -> market-execute -> re-fit per round), shared estimator; one iteration = 128 rounds (workload.BenchCampaignFleet, same fleet as BenchmarkCampaignFleet)",
	benchmarks: []benchDef{
		{name: "CampaignFleet", rounds: 128, workers: 4, note: "4-worker pool (explicit - workers=0 means GOMAXPROCS, which on a 1-CPU recorder silently ran the serial path); steady state (one warmup fleet run before the timer)", fn: func(b *testing.B) {
			cfgs := workload.BenchCampaignFleet()
			est := htuning.NewEstimator()
			ctx := context.Background()
			// One warmup run so the recorded iterations measure the
			// steady serving state (integrals cached, pools populated)
			// at any -benchtime, keeping smoke runs comparable to
			// baselines.
			if _, err := campaign.RunFleet(ctx, est, cfgs, 4); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err := campaign.RunFleet(ctx, est, cfgs, 4)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if r.RoundsRun != 8 {
						b.Fatalf("campaign %s ran %d rounds, want 8", r.Name, r.RoundsRun)
					}
				}
			}
		}},
		{name: "CampaignFleetSerial", rounds: 128, workers: 1, note: "one worker - the parallel speedup denominator; steady state", fn: func(b *testing.B) {
			cfgs := workload.BenchCampaignFleet()
			est := htuning.NewEstimator()
			ctx := context.Background()
			if _, err := campaign.RunFleet(ctx, est, cfgs, 1); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := campaign.RunFleet(ctx, est, cfgs, 1); err != nil {
					b.Fatal(err)
				}
			}
		}},
	},
}

// The scaling suite: speedup-vs-workers curves over three fleet shapes.
// Each benchmark runs one fixed fleet on an explicit worker count; the
// finish hook divides each fleet's serial (W1) ns/op by the wider runs'
// to fill speedup_vs_serial. Round counts shrink as fleets grow so the
// whole grid stays runnable in about a minute (`make bench-scaling`);
// total rounds per iteration stay comparable across shapes (128 / 512 /
// 10k), what varies is whether parallelism amortizes across few long
// campaigns or many short ones.
var scalingFleets = []struct {
	campaigns, rounds int
}{
	{16, 8},
	{256, 2},
	{10000, 1},
}

// scalingWorkerGrid is the independent variable of the speedup curves.
var scalingWorkerGrid = []int{1, 4, 16, 64}

// scalingBenchName is the grid cell's benchmark name ("Fleet256W16");
// the part before 'W' keys the serial denominator lookup.
func scalingBenchName(campaigns, workers int) string {
	return fmt.Sprintf("Fleet%dW%d", campaigns, workers)
}

func buildScalingSuite() suiteDef {
	s := suiteDef{
		name:        "scaling",
		pkg:         "hputune/internal/campaign",
		description: "speedup-vs-workers curves: three fleet shapes (16 campaigns x 8 rounds, 256 x 2, 10000 x 1) each run at 1/4/16/64 workers on a shared estimator; speedup_vs_serial is each fleet's W1 ns_per_op over the measured ns_per_op",
		finish: func(d *suiteDoc) {
			serial := make(map[string]float64)
			for _, r := range d.Benchmarks {
				if r.Workers == 1 {
					name, _, _ := strings.Cut(r.Name, "W")
					serial[name] = r.NsPerOp
				}
			}
			for i := range d.Benchmarks {
				r := &d.Benchmarks[i]
				name, _, _ := strings.Cut(r.Name, "W")
				if s := serial[name]; s > 0 && r.NsPerOp > 0 {
					r.SpeedupVsSerial = s / r.NsPerOp
				}
			}
		},
	}
	for _, f := range scalingFleets {
		campaigns, rounds := f.campaigns, f.rounds
		for _, workers := range scalingWorkerGrid {
			w := workers
			s.benchmarks = append(s.benchmarks, benchDef{
				name:    scalingBenchName(campaigns, w),
				rounds:  campaigns * rounds,
				workers: w,
				note:    fmt.Sprintf("%d campaigns x %d rounds on %d workers; steady state", campaigns, rounds, w),
				fn: func(b *testing.B) {
					cfgs := workload.BenchCampaignFleetSize(campaigns, rounds)
					est := htuning.NewEstimator()
					ctx := context.Background()
					// Warm the shared estimator with a small fleet of the
					// same campaign shape: every campaign is a copy, so a
					// 16-campaign run populates the same integral cache
					// keys without paying a full-size warmup fleet.
					warm := cfgs
					if len(warm) > 16 {
						warm = workload.BenchCampaignFleetSize(16, rounds)
					}
					if _, err := campaign.RunFleet(ctx, est, warm, w); err != nil {
						b.Fatal(err)
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						results, err := campaign.RunFleet(ctx, est, cfgs, w)
						if err != nil {
							b.Fatal(err)
						}
						for _, r := range results {
							if r.RoundsRun != rounds {
								b.Fatalf("campaign %s ran %d rounds, want %d", r.Name, r.RoundsRun, rounds)
							}
						}
					}
				},
			})
		}
	}
	return s
}

var scalingSuite = buildScalingSuite()

// crowddbSuite measures the crowd-DB operator layer the crowd-query
// campaigns execute every round: one full tournament top-k, one full
// sequential-discovery group-by, and the whole 4-preset crowd fleet
// closed loop (tune → query → fold per round, including the
// deadline-SLO admission check and the retainer transform).
var crowddbSuite = suiteDef{
	name:        "crowddb",
	pkg:         "hputune/internal/crowddb",
	description: "crowd query operators on fixed datasets (32-item top-8 tournament, 24-item 4-class group-by; noisy default classes, uniform price 2) plus the 4-preset crowd campaign fleet closed loop",
	benchmarks: []benchDef{
		{name: "TopKQuery", rounds: 2, note: "32 items, k = 8: one elimination round plus the final full-pairwise round; one iteration = one full query", fn: func(b *testing.B) {
			items, err := crowddb.DotImages(32, 10, 100, randx.New(3))
			if err != nil {
				b.Fatal(err)
			}
			cs, err := crowddb.DefaultClassSet(pricing.Linear{K: 2, B: 0.5}, 2)
			if err != nil {
				b.Fatal(err)
			}
			exec := &crowddb.Executor{Classes: cs, Config: market.Config{Seed: 7}}
			policy := crowddb.UniformPrice(2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := exec.RunTopK(items, 8, 3, policy)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rounds) != 2 {
					b.Fatalf("tournament ran %d rounds, want 2", len(res.Rounds))
				}
			}
		}},
		{name: "GroupByQuery", note: "24 items, 4 latent classes: sequential-discovery phases (at most 5); one iteration = one full query", fn: func(b *testing.B) {
			items, err := crowddb.CategorizedItems(24, []string{"bird", "boat", "bike", "barn"}, 10, 100, randx.New(5))
			if err != nil {
				b.Fatal(err)
			}
			cs, err := crowddb.DefaultClassSet(pricing.Linear{K: 2, B: 0.5}, 2)
			if err != nil {
				b.Fatal(err)
			}
			exec := &crowddb.Executor{Classes: cs, Config: market.Config{Seed: 11}}
			policy := crowddb.UniformPrice(2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := exec.RunGroupBy(items, 3, policy)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Clusters) < 4 {
					b.Fatalf("group-by found %d clusters, want >= 4", len(res.Clusters))
				}
			}
		}},
		{name: "CrowdCampaignFleet", workers: 4, note: "workload.CrowdQueryCampaignFleet(1) to terminal statuses on a 4-worker pool; round counts are convergence-dependent but deterministic in the fleet seed; steady state (one warmup fleet run before the timer)", fn: func(b *testing.B) {
			cfgs, err := workload.CrowdQueryCampaignFleet(1)
			if err != nil {
				b.Fatal(err)
			}
			est := htuning.NewEstimator()
			ctx := context.Background()
			if _, err := campaign.RunFleet(ctx, est, cfgs, 4); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err := campaign.RunFleet(ctx, est, cfgs, 4)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if r.Status == campaign.StatusFailed || r.RoundsRun == 0 {
						b.Fatalf("campaign %s: status %s after %d rounds", r.Name, r.Status, r.RoundsRun)
					}
				}
			}
		}},
	},
}

// suites is the registry of the committed per-PR drift baselines, in the
// order files are written; `-suite all` and bench-smoke run exactly
// these. The scaling suite is registered separately (selectSuites finds
// it by name) because its 10k-campaign cells are too heavy for the CI
// smoke gate — `make bench-scaling` runs it on demand.
var suites = []suiteDef{campaignSuite, solverSuite, marketSuite, inferenceSuite, crowddbSuite}
