// Command htbench is the standing benchmark harness: it runs the
// declared benchmark suites against the live packages and emits
// versioned BENCH_<suite>.json trajectory files (internal/benchio
// schema), or diffs two such files with a tolerance so CI can
// smoke-guard regressions.
//
// Usage:
//
//	htbench [-suite all|campaign|solvers|market|inference|scaling] [-benchtime 10x]
//	        [-out .] [-commit abc1234] [-list]
//	htbench -compare [-max-ns-ratio 2.0] [-max-alloc-ratio 1.5] BASELINE FRESH
//	htbench -loadtest MULT
//
// Each suite is a declared list of benchmarks over fixed seeds and
// sizes, executed through testing.Benchmark with the given -benchtime,
// so `make bench-suite` regenerates every committed baseline and
// `make bench-smoke` runs the whole surface once. `-suite scaling` is
// the multi-core measurement — three campaign-fleet shapes at 1/4/16/64
// workers, emitting speedup_vs_serial per cell (`make bench-scaling`);
// it is not part of "all" because its largest cells are too heavy for
// the smoke gate. The measurement methodology, the suite table and how
// to read the JSON live in docs/PERFORMANCE.md.
//
// Comparison exits non-zero when the fresh run drifted beyond tolerance
// on any baseline benchmark (ns/op ratio, allocs/op ratio) or dropped
// one entirely; improvements never fail. ns/op drift needs a generous
// bound when the two files come from different machine classes —
// allocs/op is the stable cross-machine signal. When the two files
// disagree on cpus/GOMAXPROCS no drift is computed at all: the compare
// exits zero with a ::warning notice that the baseline needs
// re-recording on the current machine class (cross-core-count numbers
// measure the machine delta, not the code delta).
//
// -loadtest MULT is the graceful-degradation check: it floods an
// in-process serving layer with MULT× more bulk clients than its
// admission pool holds while a campaign fleet runs, and exits non-zero
// unless every rejection carries the uniform error envelope, every
// campaign round runs (nothing starves), and admitted-solve p99 stays
// under the committed bound. `make bench-smoke` runs it at 10×.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("htbench: ")
	suite := flag.String("suite", "all", "suite to run (all, or one of the registered names)")
	benchtime := flag.String("benchtime", "10x", "benchmark time per measurement (testing -benchtime syntax)")
	out := flag.String("out", ".", "directory the BENCH_<suite>.json files are written to")
	commit := flag.String("commit", "unknown", "short commit hash recorded in the output")
	list := flag.Bool("list", false, "list the registered suites and benchmarks, run nothing")
	compare := flag.Bool("compare", false, "compare two BENCH_*.json files: htbench -compare BASELINE FRESH")
	maxNs := flag.Float64("max-ns-ratio", 2.0, "with -compare: fail when fresh ns/op exceeds baseline by this factor")
	maxAlloc := flag.Float64("max-alloc-ratio", 1.5, "with -compare: fail when fresh allocs/op exceeds baseline by this factor")
	nsFloor := flag.Float64("min-ns-floor", 10000, "with -compare: skip the ns/op check for benchmarks whose baseline is below this many ns (timer noise at smoke iteration counts); allocs/op is still checked")
	allocFloor := flag.Int64("alloc-floor", 16, "with -compare: absolute allocs/op slack — drift fails only above max(baseline*ratio, this); keeps zero-alloc baselines guarded without flagging single-alloc jitter")
	loadtest := flag.Int("loadtest", 0, "flood an in-process server at N× its admission limit and enforce the degradation bounds (0 = off)")
	testing.Init()
	flag.Parse()

	if *loadtest > 0 {
		if err := runLoadTest(*loadtest, log.Printf); err != nil {
			log.Fatal(err)
		}
		fmt.Println("loadtest: all degradation bounds held")
		return
	}

	if *compare {
		if flag.NArg() != 2 {
			log.Fatal("-compare needs exactly two arguments: BASELINE FRESH")
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1), *maxNs, *maxAlloc, *nsFloor, *allocFloor); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *list {
		for _, s := range append(append([]suiteDef(nil), suites...), scalingSuite) {
			fmt.Printf("%s — %s\n", s.name, s.description)
			for _, b := range s.benchmarks {
				fmt.Printf("  %s\n", b.name)
			}
		}
		return
	}
	// testing.Benchmark reads the benchmark duration from the testing
	// package's own flag set; htbench is not a test binary, so the flag
	// is forwarded by hand.
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		log.Fatalf("bad -benchtime %q: %v", *benchtime, err)
	}
	selected, err := selectSuites(*suite)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range selected {
		doc, err := runSuite(s, *benchtime, *commit)
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(*out, "BENCH_"+s.name+".json")
		if err := writeSuite(path, doc); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", path, len(doc.Benchmarks))
	}
}

// selectSuites resolves the -suite argument. "all" is the committed
// drift-baseline registry; the scaling suite is addressed by name only
// (it is the speedup-curve measurement, not a smoke gate — see `make
// bench-scaling`).
func selectSuites(name string) ([]suiteDef, error) {
	if name == "all" {
		return suites, nil
	}
	for _, s := range append(append([]suiteDef(nil), suites...), scalingSuite) {
		if s.name == name {
			return []suiteDef{s}, nil
		}
	}
	return nil, fmt.Errorf("unknown suite %q (use -list)", name)
}

// runSuite measures every benchmark of the suite.
func runSuite(s suiteDef, benchtime, commit string) (suiteDoc, error) {
	doc := newSuiteDoc(s, benchtime, commit, time.Now().Format("2006-01-02"))
	for _, b := range s.benchmarks {
		fmt.Fprintf(os.Stderr, "%s/%s...\n", s.name, b.name)
		r := testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			b.fn(tb)
		})
		if r.N == 0 {
			return doc, fmt.Errorf("suite %s: benchmark %s did not run (it likely failed; see output above)", s.name, b.name)
		}
		doc.add(b, r)
	}
	if s.finish != nil {
		s.finish(&doc)
	}
	return doc, nil
}
