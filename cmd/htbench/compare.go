package main

import (
	"fmt"

	"hputune/internal/benchio"
)

// runCompare diffs a fresh suite measurement against a committed
// baseline and fails (non-nil error) on any tolerance violation. Both
// schemas benchio understands are accepted, so the committed legacy
// BENCH_campaign.json remains comparable.
func runCompare(baselinePath, freshPath string, maxNs, maxAlloc, nsFloor float64, allocFloor int64) error {
	baseline, err := benchio.Read(baselinePath)
	if err != nil {
		return err
	}
	fresh, err := benchio.Read(freshPath)
	if err != nil {
		return err
	}
	if baseline.Environment.CPU != "" && fresh.Environment.CPU != "" &&
		baseline.Environment.CPU != fresh.Environment.CPU {
		fmt.Printf("note: comparing across machine classes (%q vs %q); ns/op drift is expected, allocs/op is the reliable signal\n",
			baseline.Environment.CPU, fresh.Environment.CPU)
	}
	// A core-count mismatch is a hard error, not a drift verdict:
	// comparing a single-core baseline against a multi-core run (or vice
	// versa) was exactly how the original cpus:1 baselines went stale
	// without CI noticing.
	regs, err := benchio.Compare(baseline, fresh, benchio.Tolerance{
		MaxNsRatio:    maxNs,
		MaxAllocRatio: maxAlloc,
		NsFloor:       nsFloor,
		AllocFloor:    allocFloor,
	})
	if err != nil {
		return fmt.Errorf("%s vs %s: %w", baselinePath, freshPath, err)
	}
	if len(regs) == 0 {
		fmt.Printf("%s: %d benchmarks within tolerance (ns/op <= %.2gx, allocs/op <= %.2gx)\n",
			freshPath, len(baseline.Benchmarks), maxNs, maxAlloc)
		return nil
	}
	for _, r := range regs {
		fmt.Printf("REGRESSION %s\n", r)
	}
	return fmt.Errorf("%d regression(s) against %s", len(regs), baselinePath)
}
