package main

import (
	"errors"
	"fmt"

	"hputune/internal/benchio"
)

// runCompare diffs a fresh suite measurement against a committed
// baseline and fails (non-nil error) on any tolerance violation. Both
// schemas benchio understands are accepted, so the committed legacy
// BENCH_campaign.json remains comparable.
//
// A core-count mismatch between the two environments is not a drift
// verdict either way: benchio.Compare refuses to produce one, and
// runCompare downgrades that refusal to a skip-with-notice (nil error,
// loud ::warning annotation). Hard-failing here would make CI
// deterministically red on every runner whose core count differs from
// the baseline machine — the gate would block merges without measuring
// anything. Skipping keeps CI green while the annotation says, on every
// run, that the drift gate is inert until the baselines are re-recorded
// on the runner's machine class (make bench-suite on that machine, then
// commit the JSON).
func runCompare(baselinePath, freshPath string, maxNs, maxAlloc, nsFloor float64, allocFloor int64) error {
	baseline, err := benchio.Read(baselinePath)
	if err != nil {
		return err
	}
	fresh, err := benchio.Read(freshPath)
	if err != nil {
		return err
	}
	if baseline.Environment.CPU != "" && fresh.Environment.CPU != "" &&
		baseline.Environment.CPU != fresh.Environment.CPU {
		fmt.Printf("note: comparing across machine classes (%q vs %q); ns/op drift is expected, allocs/op is the reliable signal\n",
			baseline.Environment.CPU, fresh.Environment.CPU)
	}
	regs, err := benchio.Compare(baseline, fresh, benchio.Tolerance{
		MaxNsRatio:    maxNs,
		MaxAllocRatio: maxAlloc,
		NsFloor:       nsFloor,
		AllocFloor:    allocFloor,
	})
	var mismatch *benchio.EnvMismatchError
	if errors.As(err, &mismatch) {
		fmt.Printf("SKIP %s vs %s: %v\n", baselinePath, freshPath, mismatch)
		// GitHub Actions surfaces ::warning lines as annotations on the
		// run; elsewhere it is just a loud log line.
		fmt.Printf("::warning title=bench baseline environment mismatch::%s: baseline recorded at cpus=%d/gomaxprocs=%d, this runner has cpus=%d/gomaxprocs=%d — drift not compared; re-record the baselines on this machine class (make bench-suite) to re-arm the gate\n",
			baselinePath, mismatch.Baseline.CPUs, mismatch.Baseline.GOMAXPROCS, mismatch.Fresh.CPUs, mismatch.Fresh.GOMAXPROCS)
		return nil
	}
	if err != nil {
		return fmt.Errorf("%s vs %s: %w", baselinePath, freshPath, err)
	}
	if len(regs) == 0 {
		fmt.Printf("%s: %d benchmarks within tolerance (ns/op <= %.2gx, allocs/op <= %.2gx)\n",
			freshPath, len(baseline.Benchmarks), maxNs, maxAlloc)
		return nil
	}
	for _, r := range regs {
		fmt.Printf("REGRESSION %s\n", r)
	}
	return fmt.Errorf("%d regression(s) against %s", len(regs), baselinePath)
}
