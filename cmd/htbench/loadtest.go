package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hputune/internal/campaign"
	"hputune/internal/server"
	"hputune/internal/traffic"
)

// Load-test harness: the graceful-degradation acceptance check behind
// `htbench -loadtest MULT`. It stands up an in-process serving layer
// with a deliberately tiny admission pool, floods it with MULT× more
// concurrent bulk clients than the pool has permits, and — while the
// flood runs — starts a campaign fleet and requires it to finish. The
// run fails (non-zero exit) when any of the committed degradation
// bounds break:
//
//   - every non-2xx reply must carry the uniform error envelope with a
//     stable code (no blank 503s under pressure);
//   - zero starved campaign rounds: every campaign in the fleet reaches
//     a terminal status within loadSettleDeadline even though bulk
//     traffic holds MULT× the pool;
//   - the p99 latency of *admitted* solves stays under a bound derived
//     from this machine's own unloaded baseline — admission control
//     must keep served work fast instead of queueing it into molasses.
const (
	// loadMaxInFlight is the admission pool of the server under test —
	// small, so MULT× floods are cheap to generate.
	loadMaxInFlight = 4
	// The admitted-p99 bound is measured, not hard-coded: before the
	// flood starts, loadBaselineSolves serial solves establish this
	// machine's unloaded p99, and the bound is loadP99Multiplier× that
	// (never below loadP99Floor, so timer jitter on a sub-ms baseline
	// cannot make the bound hair-trigger). A fixed wall-clock bound —
	// the old 2s constant — says nothing portable: it was simultaneously
	// far too loose for a fast machine (queueing 1000× the unloaded
	// latency passed) and a flake risk on a throttled CI runner. A
	// 100× degradation of the machine's own baseline only trips when
	// admitted work is queueing behind the flood, which is exactly the
	// regression the harness guards.
	loadBaselineSolves = 50
	loadP99Multiplier  = 100
	loadP99Floor       = time.Second
	// loadSettleDeadline bounds the campaign fleet's settle time under
	// flood. The fleet is 4 campaigns × 6 rounds of small solves.
	loadSettleDeadline = 60 * time.Second
	// loadFleetCampaigns and loadFleetRounds shape the priority-class
	// work the flood must not starve.
	loadFleetCampaigns = 4
	loadFleetRounds    = 6
)

// loadFleetDoc builds the campaign fleet document: epsilon 0 keeps
// every campaign running its full round count, so "all terminal" means
// "every round ran".
func loadFleetDoc() string {
	var b strings.Builder
	b.WriteString(`{"campaigns":[`)
	for i := 0; i < loadFleetCampaigns; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"name":"load%d","roundBudget":400,"rounds":%d,"budget":%d,"epsilon":0,"seed":%d,
		  "prior":{"kind":"linear","k":1,"b":1},
		  "groups":[{"name":"g3","tasks":20,"reps":3,"procRate":2,"true":{"kind":"linear","k":2,"b":0.5}},
		            {"name":"g5","tasks":20,"reps":5,"procRate":2,"true":{"kind":"linear","k":2,"b":0.5}}]}`,
			i, loadFleetRounds, 400*loadFleetRounds, 7+i)
	}
	b.WriteString(`]}`)
	return b.String()
}

// loadSolveDoc is the bulk request the flood hammers.
const loadSolveDoc = `{"budget":300,"groups":[
  {"name":"a","tasks":4,"reps":2,"procRate":2,"model":{"kind":"linear","k":2,"b":1}},
  {"name":"b","tasks":5,"reps":3,"procRate":2,"model":{"kind":"linear","k":1,"b":1}}]}`

// loadEnvelope mirrors the server's error envelope for parity checks.
type loadEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// loadResult aggregates one load-test run for reporting.
type loadResult struct {
	admitted, rejected, badEnvelope atomic.Uint64
	firstBad                        atomic.Pointer[string]
}

func (r *loadResult) reportBad(detail string) {
	r.badEnvelope.Add(1)
	r.firstBad.CompareAndSwap(nil, &detail)
}

// runLoadTest floods an in-process server at mult× its admission limit
// and enforces the degradation bounds. It returns an error describing
// the first violated bound.
func runLoadTest(mult int, logf func(format string, args ...any)) error {
	if mult < 1 {
		return fmt.Errorf("loadtest: multiplier %d < 1", mult)
	}
	s, err := server.New(server.Config{
		MaxInFlight: loadMaxInFlight,
		Workers:     2,
		Traffic:     server.TrafficConfig{BulkShare: 0.5},
	})
	if err != nil {
		return fmt.Errorf("loadtest: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &http.Client{Timeout: 30 * time.Second}

	// Unloaded baseline first: serial solves on the quiet server anchor
	// the degradation bound to this machine's own speed.
	p99Bound, err := measureP99Bound(client, ts.URL)
	if err != nil {
		return err
	}
	logf("loadtest: unloaded baseline over %d serial solves sets the admitted-p99 bound at %v",
		loadBaselineSolves, p99Bound)

	flooders := mult * loadMaxInFlight
	logf("loadtest: %d flood clients against a %d-permit pool (%d× the limit)",
		flooders, loadMaxInFlight, mult)

	var res loadResult
	hist := &traffic.Histogram{} // admitted-solve latency, client-side
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < flooders; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				resp, err := client.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(loadSolveDoc))
				if err != nil {
					res.reportBad(fmt.Sprintf("transport error: %v", err))
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					hist.Observe(time.Since(start))
					res.admitted.Add(1)
				case resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests:
					res.rejected.Add(1)
					var env loadEnvelope
					if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code == "" || env.Error.Message == "" {
						res.reportBad(fmt.Sprintf("status %d without envelope: %.128s", resp.StatusCode, raw))
					} else if resp.Header.Get("Retry-After") == "" {
						res.reportBad(fmt.Sprintf("status %d without Retry-After", resp.StatusCode))
					}
				default:
					res.reportBad(fmt.Sprintf("unexpected status %d: %.128s", resp.StatusCode, raw))
				}
			}
		}()
	}

	// Start the fleet mid-flood and wait for every campaign to settle.
	fleetErr := func() error {
		resp, err := client.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(loadFleetDoc()))
		if err != nil {
			return fmt.Errorf("start fleet: %v", err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			return fmt.Errorf("start fleet under flood: status %d: %.256s", resp.StatusCode, raw)
		}
		var started struct {
			IDs []string `json:"ids"`
		}
		if err := json.Unmarshal(raw, &started); err != nil || len(started.IDs) != loadFleetCampaigns {
			return fmt.Errorf("fleet start reply: %v (%.256s)", err, raw)
		}
		deadline := time.Now().Add(loadSettleDeadline)
		for {
			if time.Now().After(deadline) {
				return fmt.Errorf("starved campaign rounds: fleet not terminal after %v under %d× flood", loadSettleDeadline, mult)
			}
			var list struct {
				Campaigns []campaign.Summary `json:"campaigns"`
			}
			resp, err := client.Get(ts.URL + "/v1/campaigns")
			if err != nil {
				return fmt.Errorf("list campaigns: %v", err)
			}
			err = json.NewDecoder(resp.Body).Decode(&list)
			resp.Body.Close()
			if err != nil {
				return fmt.Errorf("decode campaign list: %v", err)
			}
			done, rounds := 0, 0
			for _, c := range list.Campaigns {
				rounds += c.RoundsRun
				if c.Status.Terminal() {
					if c.Status != campaign.StatusMaxRounds && c.Status != campaign.StatusConverged &&
						c.Status != campaign.StatusBudgetExhausted {
						return fmt.Errorf("campaign %s under flood: terminal status %s", c.ID, c.Status)
					}
					done++
				}
			}
			if done == loadFleetCampaigns {
				if rounds < loadFleetCampaigns*loadFleetRounds {
					return fmt.Errorf("starved campaign rounds: %d of %d ran", rounds, loadFleetCampaigns*loadFleetRounds)
				}
				logf("loadtest: fleet settled, %d/%d rounds ran", rounds, loadFleetCampaigns*loadFleetRounds)
				return nil
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	close(stop)
	wg.Wait()

	snap := hist.Snapshot()
	logf("loadtest: %d admitted (p50 %.3fms p99 %.3fms), %d rejected with envelope",
		res.admitted.Load(), snap.P50MS, snap.P99MS, res.rejected.Load())
	if fleetErr != nil {
		return fleetErr
	}
	if n := res.badEnvelope.Load(); n > 0 {
		return fmt.Errorf("envelope parity: %d bad replies; first: %s", n, *res.firstBad.Load())
	}
	if res.admitted.Load() == 0 {
		return fmt.Errorf("flood saw zero admitted solves; the gate is wedged shut")
	}
	if p99 := time.Duration(snap.P99MS * float64(time.Millisecond)); p99 > p99Bound {
		return fmt.Errorf("admitted-solve p99 %v above the measured-baseline bound %v (%d× unloaded p99, floor %v)",
			p99, p99Bound, loadP99Multiplier, loadP99Floor)
	}
	return nil
}

// measureP99Bound runs loadBaselineSolves serial solves against the
// quiet server and returns the degradation bound for admitted-solve
// p99 under flood: loadP99Multiplier× the unloaded p99, floored at
// loadP99Floor.
func measureP99Bound(client *http.Client, url string) (time.Duration, error) {
	base := &traffic.Histogram{}
	for i := 0; i < loadBaselineSolves; i++ {
		start := time.Now()
		resp, err := client.Post(url+"/v1/solve", "application/json", strings.NewReader(loadSolveDoc))
		if err != nil {
			return 0, fmt.Errorf("loadtest baseline solve: %v", err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("loadtest baseline solve: status %d: %.128s", resp.StatusCode, raw)
		}
		base.Observe(time.Since(start))
	}
	bound := time.Duration(base.Snapshot().P99MS * float64(time.Millisecond) * loadP99Multiplier)
	if bound < loadP99Floor {
		bound = loadP99Floor
	}
	return bound, nil
}
