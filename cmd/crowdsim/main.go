// Command crowdsim runs the discrete-event crowdsourcing marketplace on a
// batch of identical tasks and prints the run summary and optional trace —
// the smallest way to observe the HPU latency model end to end.
//
// Usage:
//
//	crowdsim [-tasks 50] [-reps 3] [-price 2] [-k 1] [-b 1] [-proc 2]
//	         [-mode independent|workers] [-arrival 10] [-seed 1] [-trace]
//	         [-abandon 0.2 -abandonrate 4] [-out trace.csv|trace.jsonl]
//	         [-replicate 100 [-workers 8]] [-env]
//
// -env prints the environment block (goos/goarch/CPU/GOMAXPROCS) that
// the htbench harness embeds in BENCH_*.json files — the same capture
// helper (internal/benchio), so a crowdsim timing quoted next to a
// benchmark baseline carries an identical machine description.
//
// A plain run drives one event-ordered simulation from -seed and prints
// its trace-level summary. With -replicate N the batch is instead
// simulated N independent times on the deterministic replication engine
// — round i's RNG stream derives only from (seed, i), so the printed
// makespan statistics are identical for any -workers value — matching
// how the rest of the repository estimates latencies (htune -simulate
// and the /v1/simulate endpoint run the same trial-sharded simulator
// with 32 fixed shards).
//
// Seed compatibility: sharded/replicated estimates at seed s do not
// reproduce a single-stream run at seed s — each shard draws from a
// stream derived from the seed, not from the seed itself. Estimates are
// reproducible run-to-run and across worker counts, but comparable only
// within the same mode (one -trace run vs. a -replicate batch at the
// same seed legitimately differ).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"hputune"
	"hputune/internal/benchio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crowdsim: ")
	tasks := flag.Int("tasks", 50, "number of tasks to post")
	reps := flag.Int("reps", 3, "repetitions per task")
	price := flag.Int("price", 2, "payment per repetition (units)")
	k := flag.Float64("k", 1, "acceptance model slope")
	b := flag.Float64("b", 1, "acceptance model intercept")
	proc := flag.Float64("proc", 2, "processing rate λp")
	accuracy := flag.Float64("accuracy", 0.9, "worker answer accuracy")
	mode := flag.String("mode", "independent", "acceptance mode: independent or workers")
	arrival := flag.Float64("arrival", 10, "worker arrival rate (workers mode)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	trace := flag.Bool("trace", false, "print the per-repetition trace")
	abandon := flag.Float64("abandon", 0, "probability an accepting worker returns the repetition unfinished")
	abandonRate := flag.Float64("abandonrate", 4, "rate of the give-up time when -abandon > 0")
	out := flag.String("out", "", "write the trace to this file (.csv or .jsonl)")
	replicate := flag.Int("replicate", 0, "simulate the batch this many independent times on the deterministic replication engine (0 = one traced run)")
	workers := flag.Int("workers", 0, "worker pool for -replicate (0 = GOMAXPROCS; never changes the estimates)")
	env := flag.Bool("env", false, "print the benchmark environment block (shared with htbench) and exit")
	flag.Parse()

	if *env {
		out, err := json.MarshalIndent(benchio.CaptureEnvironment(), "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
		return
	}

	cfg := hputune.MarketConfig{Seed: *seed}
	if *abandon > 0 {
		cfg.AbandonProb = *abandon
		cfg.AbandonRate = *abandonRate
	}
	switch *mode {
	case "independent":
		cfg.Mode = hputune.ModeIndependent
	case "workers":
		cfg.Mode = hputune.ModeWorkerChoice
		cfg.ArrivalRate = *arrival
	default:
		log.Fatalf("unknown mode %q (want independent or workers)", *mode)
	}
	class := &hputune.TaskClass{
		Name:     "task",
		Accept:   hputune.Linear{K: *k, B: *b},
		ProcRate: *proc,
		Accuracy: *accuracy,
	}
	if *replicate > 0 {
		if *trace || *out != "" {
			log.Fatal("-trace and -out describe one event-ordered run; drop them with -replicate (replications are summarized, not traced)")
		}
		specs := make([]hputune.TaskSpec, *tasks)
		for i := range specs {
			prices := make([]int, *reps)
			for r := range prices {
				prices[r] = *price
			}
			specs[i] = hputune.TaskSpec{ID: fmt.Sprintf("task-%03d", i), Class: class, RepPrices: prices}
		}
		spans, err := hputune.ReplicatedMakespans(cfg, specs, *replicate, *workers)
		if err != nil {
			log.Fatal(err)
		}
		mean, min, max := 0.0, spans[0], spans[0]
		for _, s := range spans {
			mean += s
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		mean /= float64(len(spans))
		fmt.Printf("replications: %d (deterministic in -seed for any -workers)\n", *replicate)
		fmt.Printf("makespan: mean %.4f, min %.4f, max %.4f\n", mean, min, max)
		fmt.Println("note: replicated estimates do not reproduce a single -trace run at the same seed (round seeds are derived, not reused)")
		return
	}
	sim, err := hputune.NewMarket(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < *tasks; i++ {
		prices := make([]int, *reps)
		for r := range prices {
			prices[r] = *price
		}
		err := sim.Post(hputune.TaskSpec{
			ID:        fmt.Sprintf("task-%03d", i),
			Class:     class,
			RepPrices: prices,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	results, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(hputune.SummarizeMarket(results))
	if n := sim.Abandoned(); n > 0 {
		fmt.Printf("abandoned acceptances: %d\n", n)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		recs := sim.AllRecords()
		switch {
		case strings.HasSuffix(*out, ".jsonl"):
			err = hputune.WriteTraceJSONL(f, recs)
		case strings.HasSuffix(*out, ".csv"):
			err = hputune.WriteTraceCSV(f, recs)
		default:
			err = fmt.Errorf("unknown trace format %q (want .csv or .jsonl)", *out)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s (%d records)\n", *out, len(recs))
	}
	if *trace {
		fmt.Println("\ntask        rep  price   posted  accepted      done   onhold     proc")
		for _, res := range results {
			for _, r := range res.Reps {
				fmt.Printf("%-10s %4d %6d %8.3f %9.3f %9.3f %8.3f %8.3f\n",
					r.TaskID, r.Rep, r.Price, r.PostedAt, r.Accepted, r.Done,
					r.OnHold(), r.Processing())
			}
		}
	}
}
