package hputune_test

import (
	"errors"
	"strings"
	"testing"

	"hputune"
)

func apiProblem(budget int) hputune.Problem {
	typ := &hputune.TaskType{
		Name:     "vote",
		Accept:   hputune.Linear{K: 1, B: 1},
		ProcRate: 2.0,
	}
	return hputune.Problem{
		Groups: []hputune.Group{{Type: typ, Tasks: 10, Reps: 5}},
		Budget: budget,
	}
}

func TestPublicEvenAllocation(t *testing.T) {
	alloc, err := hputune.EvenAllocation(apiProblem(200))
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Cost() != 200 {
		t.Errorf("cost %d, want 200", alloc.Cost())
	}
	if price, ok := alloc.GroupPrice(0); !ok || price != 4 {
		t.Errorf("group price %d,%v; want 4,true", price, ok)
	}
}

func TestPublicBudgetSentinel(t *testing.T) {
	_, err := hputune.EvenAllocation(apiProblem(10))
	if err == nil {
		t.Fatal("infeasible budget accepted")
	}
	// The sentinel must be reachable through the facade for errors.Is.
	if !errors.Is(err, hputune.ErrBudgetTooSmall) && !strings.Contains(err.Error(), "budget") {
		t.Errorf("unhelpful budget error: %v", err)
	}
}

func TestPublicRepetitionSolvers(t *testing.T) {
	typ := &hputune.TaskType{Name: "v", Accept: hputune.Linear{K: 1, B: 1}, ProcRate: 2}
	p := hputune.Problem{
		Groups: []hputune.Group{
			{Type: typ, Tasks: 5, Reps: 3},
			{Type: typ, Tasks: 5, Reps: 5},
		},
		Budget: 160,
	}
	est := hputune.NewEstimator()
	greedy, err := hputune.SolveRepetition(est, p)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := hputune.SolveRepetitionDP(est, p)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Objective > exact.Objective*1.05 {
		t.Errorf("greedy %.4f too far from DP %.4f", greedy.Objective, exact.Objective)
	}
	alloc, err := greedy.Allocation(p)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := hputune.SimulateJobLatency(p, alloc, hputune.PhaseOnHold, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Errorf("non-positive latency %v", lat)
	}
}

func TestPublicHeterogeneous(t *testing.T) {
	easy := &hputune.TaskType{Name: "easy", Accept: hputune.Linear{K: 1, B: 1}, ProcRate: 3}
	hard := &hputune.TaskType{Name: "hard", Accept: hputune.Linear{K: 1, B: 1}, ProcRate: 2}
	p := hputune.Problem{
		Groups: []hputune.Group{
			{Type: hard, Tasks: 4, Reps: 3},
			{Type: easy, Tasks: 4, Reps: 5},
		},
		Budget: 150,
	}
	res, err := hputune.SolveHeterogeneous(hputune.NewEstimator(), p)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-9
	if res.O1 < res.Utopia.O1-eps || res.O2 < res.Utopia.O2-eps {
		t.Errorf("solution dominates its utopia point: O=(%.6f, %.6f) UP=(%.6f, %.6f)",
			res.O1, res.O2, res.Utopia.O1, res.Utopia.O2)
	}
}

func TestPublicBaselines(t *testing.T) {
	p := apiProblem(300)
	for name, build := range map[string]func() (hputune.Allocation, error){
		"bias":    func() (hputune.Allocation, error) { return hputune.BiasAllocation(p, 0.67, 7) },
		"te":      func() (hputune.Allocation, error) { return hputune.TaskEvenAllocation(p) },
		"re":      func() (hputune.Allocation, error) { return hputune.RepEvenAllocation(p) },
		"uniform": func() (hputune.Allocation, error) { return hputune.UniformTypeAllocation(p) },
	} {
		a, err := build()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if a.Cost() > p.Budget {
			t.Errorf("%s overspent: %d > %d", name, a.Cost(), p.Budget)
		}
	}
}

func TestPublicMarketRoundTrip(t *testing.T) {
	class := &hputune.TaskClass{
		Name:     "c",
		Accept:   hputune.Linear{K: 1, B: 1},
		ProcRate: 2,
		Accuracy: 1,
	}
	sim, err := hputune.NewMarket(hputune.MarketConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Post(hputune.TaskSpec{ID: "t", Class: class, RepPrices: []int{2, 2}}); err != nil {
		t.Fatal(err)
	}
	results, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	sum := hputune.SummarizeMarket(results)
	if sum.Tasks != 1 || sum.Repetitions != 2 {
		t.Errorf("summary wrong: %+v", sum)
	}
	phases := hputune.CollectPhases(results)
	if len(phases.OnHold) != 2 {
		t.Errorf("phases wrong: %+v", phases)
	}
}

func TestPublicInference(t *testing.T) {
	est, err := hputune.EstimateFixedPeriod(10, 2)
	if err != nil || est.Rate != 5 {
		t.Errorf("fixed-period: %v, %v", est, err)
	}
	over, _ := hputune.EstimateRandomPeriod(20, 4, false)
	on, _ := hputune.EstimateFromDurations([]float64{0.5, 0.5})
	if _, err := hputune.SplitPhases(over, on); err != nil {
		t.Errorf("split: %v", err)
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	names := hputune.ExperimentNames()
	if len(names) < 10 {
		t.Fatalf("only %d experiments registered", len(names))
	}
	res, err := hputune.RunExperiment("motivation", hputune.ExperimentConfig{Seed: 1, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Figures) == 0 {
		t.Error("no figures returned")
	}
	chart := hputune.RenderChart(res.Figures[0], 50, 12)
	table := hputune.RenderTable(res.Figures[0])
	if chart == "" || table == "" {
		t.Error("rendering failed")
	}
}

func TestPublicCrowdDB(t *testing.T) {
	items, err := hputune.DotImages(6, 10, 90, 5)
	if err != nil {
		t.Fatal(err)
	}
	classes, err := hputune.DefaultVoteClasses(hputune.Linear{K: 1, B: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	ex := &hputune.CrowdExecutor{Classes: classes, Config: hputune.MarketConfig{Seed: 11}}
	ranking, out, err := ex.RunSort(items, 3, hputune.UniformPrice(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(ranking) != 6 {
		t.Errorf("ranking size %d", len(ranking))
	}
	if out.Makespan <= 0 {
		t.Error("no makespan")
	}
	if _, err := hputune.KendallTau(ranking, items.ByValue().IDs()); err != nil {
		t.Errorf("tau: %v", err)
	}
}

func TestPublicWorkloads(t *testing.T) {
	m, err := hputune.CalibratedAcceptModel()
	if err != nil {
		t.Fatal(err)
	}
	if m.Rate(5) != 0.0038 {
		t.Errorf("calibrated rate wrong: %v", m.Rate(5))
	}
	p, err := hputune.Fig2Problem(hputune.ScenarioRepetition, hputune.Linear{K: 1, B: 1}, 900)
	if err != nil {
		t.Fatal(err)
	}
	a, err := hputune.RepEvenAllocation(p)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := hputune.SpecsForAllocation(p, a, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 100 {
		t.Errorf("got %d specs", len(specs))
	}
	if _, err := hputune.Fig5cProblem(600); err != nil {
		t.Errorf("fig5c problem: %v", err)
	}
	if _, err := hputune.ImageFilterClass(6); err != nil {
		t.Errorf("image filter class: %v", err)
	}
}
