package hputune_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hputune"
)

// TestRootSurfaceFlagships exercises the root re-exports that exist for
// embedders rather than for the repo's own binaries, so the API audit
// keeps them honest: the campaign fleet entry points, the bounded
// estimator constructor, and the traffic configuration + metrics types
// surfaced by this PR. Anything here that stops compiling is a breaking
// API change, not dead weight to delete.
func TestRootSurfaceFlagships(t *testing.T) {
	est, err := hputune.NewEstimatorCapacity(512)
	if err != nil {
		t.Fatal(err)
	}
	if cs := est.CacheStats(); cs.Capacity != 512 {
		t.Fatalf("CacheStats().Capacity = %d, want 512", cs.Capacity)
	}

	fleet, err := hputune.PaperCampaignFleet(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) == 0 {
		t.Fatal("PaperCampaignFleet returned no campaigns")
	}
	// One small fleet end to end through the root entry point. Trim the
	// paper fleet to a single short campaign: the full fleet is the
	// integration suite's job.
	cfg := fleet[0]
	cfg.MaxRounds = 2
	results, err := hputune.RunCampaignFleet(context.Background(), est, []hputune.Campaign{cfg}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].RoundsRun == 0 {
		t.Fatalf("fleet results = %+v, want one campaign with rounds", results)
	}
}

// TestRootTrafficSurface drives the TrafficConfig and MetricsSnapshot
// re-exports the way an embedder would: configure hardening through
// ServerConfig, mount Handler, read /v1/metrics back into the exported
// snapshot type.
func TestRootTrafficSurface(t *testing.T) {
	srv, err := hputune.NewServer(hputune.ServerConfig{
		MaxInFlight: 4,
		Traffic:     hputune.TrafficConfig{RatePerClient: 100, BulkShare: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	solve := `{"budget":300,"groups":[{"name":"a","tasks":4,"reps":2,"procRate":2,"model":{"kind":"linear","k":2,"b":1}}]}`
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(solve))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m hputune.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Endpoints["POST /v1/solve"].Count < 1 {
		t.Errorf("solve histogram missing: %+v", m.Endpoints)
	}
	if m.Admission.Limit != 4 || m.Admission.BulkLimit != 2 {
		t.Errorf("admission = %+v, want limit 4 bulk 2", m.Admission)
	}
	if m.RateLimit.Rate != 100 {
		t.Errorf("rate limit gauge = %+v, want rate 100", m.RateLimit)
	}
}
