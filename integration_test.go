package hputune_test

import (
	"bytes"
	"math"
	"testing"

	"hputune"
)

// TestTracePipelineEndToEnd runs the full offline-inference loop through
// the public API: simulate a marketplace run, export the trace, read it
// back, estimate the clock rates from the durations, validate the
// exponential fit statistically, and check the recovered rates against
// the simulator's ground truth.
func TestTracePipelineEndToEnd(t *testing.T) {
	const (
		truthK    = 1.0
		truthB    = 1.0
		truthProc = 2.0
		price     = 3
		tasks     = 400
	)
	class := &hputune.TaskClass{
		Name:     "vote",
		Accept:   hputune.Linear{K: truthK, B: truthB},
		ProcRate: truthProc,
		Accuracy: 1,
	}
	sim, err := hputune.NewMarket(hputune.MarketConfig{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tasks; i++ {
		err := sim.Post(hputune.TaskSpec{
			ID:        "t" + string(rune('a'+i%26)) + "-" + string(rune('0'+i%10)),
			Class:     class,
			RepPrices: []int{price},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}

	// Export and reimport through both formats.
	recs := sim.AllRecords()
	var csvBuf, jsonBuf bytes.Buffer
	if err := hputune.WriteTraceCSV(&csvBuf, recs); err != nil {
		t.Fatal(err)
	}
	if err := hputune.WriteTraceJSONL(&jsonBuf, recs); err != nil {
		t.Fatal(err)
	}
	fromCSV, err := hputune.ReadTraceCSV(&csvBuf)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := hputune.ReadTraceJSONL(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromCSV) != len(recs) || len(fromJSON) != len(recs) {
		t.Fatalf("trace round trips lost records: %d / %d of %d", len(fromCSV), len(fromJSON), len(recs))
	}

	// Rates from the reimported trace.
	onhold := hputune.TraceOnHoldDurations(fromCSV)
	proc := hputune.TraceProcessingDurations(fromCSV)
	ohEst, err := hputune.EstimateFromDurations(onhold)
	if err != nil {
		t.Fatal(err)
	}
	procEst, err := hputune.EstimateFromDurations(proc)
	if err != nil {
		t.Fatal(err)
	}
	wantRate := truthK*price + truthB
	if math.Abs(ohEst.Rate-wantRate) > 0.35*wantRate {
		t.Errorf("on-hold rate estimate %v far from truth %v", ohEst.Rate, wantRate)
	}
	if math.Abs(procEst.Rate-truthProc) > 0.35*truthProc {
		t.Errorf("processing rate estimate %v far from truth %v", procEst.Rate, truthProc)
	}

	// The exact CI from the same sample must cover the truth.
	total := 0.0
	for _, d := range onhold {
		total += d
	}
	ci, err := hputune.RateIntervalFromDurations(len(onhold), total, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Contains(wantRate) {
		t.Errorf("99.9%% CI [%v, %v] misses the true rate %v", ci.Lo, ci.Hi, wantRate)
	}

	// Both phases must pass the exponentiality test — the model check a
	// real deployment would run before trusting the tuner.
	ks, err := hputune.TestExponential(onhold, 400, 123)
	if err != nil {
		t.Fatal(err)
	}
	if ks.Reject(0.01) {
		t.Errorf("on-hold sample rejected as exponential: D=%v p=%v", ks.D, ks.P)
	}
	chi, err := hputune.TestExponentialBinned(proc)
	if err != nil {
		t.Fatal(err)
	}
	if chi.Reject(0.01) {
		t.Errorf("processing sample rejected as exponential: stat=%v p=%v", chi.Stat, chi.P)
	}

	// Price bucketing covers the whole trace.
	buckets := hputune.TraceGroupByPrice(fromJSON)
	if len(buckets) != 1 || len(buckets[price]) != len(recs) {
		t.Errorf("price buckets wrong: %d buckets, %d at price %d", len(buckets), len(buckets[price]), price)
	}
}

// TestAbandonmentThroughFacade checks the failure-injection knob end to
// end through the public configuration surface.
func TestAbandonmentThroughFacade(t *testing.T) {
	class := &hputune.TaskClass{
		Name:     "vote",
		Accept:   hputune.Linear{K: 1, B: 1},
		ProcRate: 2,
		Accuracy: 1,
	}
	sim, err := hputune.NewMarket(hputune.MarketConfig{
		Seed:        4,
		AbandonProb: 0.5,
		AbandonRate: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := sim.Post(hputune.TaskSpec{ID: "t", Class: class, RepPrices: []int{2, 2}}); err != nil {
			t.Fatal(err)
		}
	}
	results, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 50 {
		t.Fatalf("completed %d of 50 tasks", len(results))
	}
	if sim.Abandoned() == 0 {
		t.Error("no abandonments recorded at probability 0.5")
	}
}

// TestComparatorFacade exercises the [29] and retainer comparators
// through the public API on one coherent scenario.
func TestComparatorFacade(t *testing.T) {
	vote := &hputune.TaskType{Name: "vote", Accept: hputune.Linear{K: 1, B: 1}, ProcRate: 2}
	p := hputune.Problem{
		Groups: []hputune.Group{
			{Type: vote, Tasks: 4, Reps: 10},
			{Type: vote, Tasks: 30, Reps: 1},
		},
		Budget: 300,
	}
	par, err := hputune.MinimizeExpectedMaxParallel(p)
	if err != nil {
		t.Fatal(err)
	}
	if par.Spent > p.Budget {
		t.Errorf("comparator overspent: %d > %d", par.Spent, p.Budget)
	}
	d, err := hputune.QuantileDeadline(p.Groups, par.Prices, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !(d > 0) {
		t.Errorf("non-positive deadline %v", d)
	}
	mc, err := hputune.MinCostForDeadlines([]hputune.DeadlineTask{
		{Type: vote, Deadline: 1},
	}, 0.9, 100)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Total < 1 {
		t.Errorf("empty min-cost result: %+v", mc)
	}

	pool := hputune.RetainerPool{Workers: 20, ServiceRate: 2, Fee: 0.5, TaskPayment: 1}
	mk, err := hputune.RetainerBatchMakespan(pool, 70)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := hputune.RetainerBatchCost(pool, 70)
	if err != nil {
		t.Fatal(err)
	}
	if !(mk > 0) || cost <= 70 {
		t.Errorf("retainer batch wrong: makespan %v cost %v", mk, cost)
	}
	sm, err := hputune.SimulateRetainerBatch(pool, 70, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sm-mk) > 2*mk {
		t.Errorf("simulated makespan %v wildly off expectation %v", sm, mk)
	}
	lat, err := hputune.RetainerSteadyStateLatency(pool, 30)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0.5 { // must exceed the bare service time 1/μ
		t.Errorf("steady-state latency %v not above service time", lat)
	}
	choice, err := hputune.OptimizeRetainerPool(70, 200, 2, 0.5, 1, 70)
	if err != nil {
		t.Fatal(err)
	}
	if choice.Cost > 200 {
		t.Errorf("optimized pool over budget: %v", choice.Cost)
	}
}

// TestAdaptiveFacade runs the adaptive controller through the facade.
func TestAdaptiveFacade(t *testing.T) {
	truth := hputune.Linear{K: 1, B: 1}
	class := &hputune.TaskClass{Name: "vote", Accept: truth, ProcRate: 4, Accuracy: 1}
	c := &hputune.AdaptiveController{
		Groups: []hputune.AdaptiveGroupSpec{
			{Name: "g", Tasks: 20, Reps: 3, TrueClass: class},
		},
		Budget: 600,
		Prior:  truth,
		Seed:   2,
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= 0 || rep.Spent > 600 || len(rep.WavePrices) != 3 {
		t.Errorf("adaptive report wrong: %+v", rep)
	}
}

// TestGroupByTopKFacade exercises the group-by and top-k operators
// through the public API.
func TestGroupByTopKFacade(t *testing.T) {
	classes, err := hputune.DefaultVoteClasses(hputune.Linear{K: 1, B: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	items, err := hputune.CategorizedItems(9, []string{"cat", "dog", "owl"}, 10, 100, 21)
	if err != nil {
		t.Fatal(err)
	}
	e := &hputune.CrowdExecutor{Classes: classes, Config: hputune.MarketConfig{Seed: 5}}
	gb, err := e.RunGroupBy(items, 5, hputune.UniformPrice(2))
	if err != nil {
		t.Fatal(err)
	}
	ri, err := hputune.RandIndex(gb.Clusters, items)
	if err != nil {
		t.Fatal(err)
	}
	if ri < 0.5 {
		t.Errorf("group-by Rand index %v below 0.5", ri)
	}
	images, err := hputune.DotImages(12, 10, 200, 23)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := e.RunTopK(images, 3, 3, hputune.UniformPrice(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(tk.TopK) != 3 {
		t.Errorf("top-k returned %d ids", len(tk.TopK))
	}
}

// TestSolverCrossValidation is a coarse property: for random two-group
// Scenario II instances, the greedy RA must stay within 5% of the exact
// DP objective.
func TestSolverCrossValidation(t *testing.T) {
	vote := &hputune.TaskType{Name: "vote", Accept: hputune.Linear{K: 1, B: 1}, ProcRate: 2}
	for _, tc := range []struct {
		t1, r1, t2, r2, budget int
	}{
		{10, 1, 10, 4, 200},
		{5, 2, 20, 3, 350},
		{8, 5, 2, 1, 150},
		{15, 2, 15, 2, 400},
	} {
		p := hputune.Problem{
			Groups: []hputune.Group{
				{Type: vote, Tasks: tc.t1, Reps: tc.r1},
				{Type: vote, Tasks: tc.t2, Reps: tc.r2},
			},
			Budget: tc.budget,
		}
		est := hputune.NewEstimator()
		greedy, err := hputune.SolveRepetition(est, p)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := hputune.SolveRepetitionDP(est, p)
		if err != nil {
			t.Fatal(err)
		}
		if greedy.Objective > exact.Objective*1.05+1e-9 {
			t.Errorf("%+v: greedy %v exceeds DP %v by >5%%", tc, greedy.Objective, exact.Objective)
		}
	}
}
