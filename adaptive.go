package hputune

import (
	"hputune/internal/adaptive"
)

// Adaptive tuning: interleaved inference and re-tuning for requesters who
// do not know the market's price→rate curve up front (closing the loop
// the paper sketches in Sec 3.3).
type (
	// AdaptiveGroupSpec is one group of identical tasks to run adaptively.
	AdaptiveGroupSpec = adaptive.GroupSpec
	// AdaptiveController runs a job in repetition waves, re-fitting the
	// believed λo(c) model from each wave's observed acceptance times.
	AdaptiveController = adaptive.Controller
	// AdaptiveReport is the outcome of an adaptive run.
	AdaptiveReport = adaptive.Report
)
