// Package hputune is a Go implementation of "Tuning Crowdsourced Human
// Computation" (Cao, Liu, Chen, Jagadish — ICDE 2017): budget allocation
// that minimizes the expected completion latency of crowdsourced jobs.
//
// # The model
//
// A crowd worker is a Human Processing Unit (HPU). A task offered at
// price c waits on the marketplace for an exponential on-hold time with
// rate λo(c) (higher pay, faster pickup — the Linearity Hypothesis says
// λo(c) ≈ k·c + b), then takes an exponential processing time with rate
// λp set by task difficulty alone. A job is a set of atomic tasks, each
// answered by a number of sequential repetitions; distinct tasks run in
// parallel and the job finishes when the slowest task does.
//
// # The H-Tuning problem
//
// Given a discrete budget B, choose per-repetition payments minimizing
// the expected job latency. Three scenarios, three solvers:
//
//	Scenario I   identical tasks & repetitions  → EvenAllocation (EA)
//	Scenario II  repetitions differ by group    → SolveRepetition (RA)
//	Scenario III difficulty also differs        → SolveHeterogeneous (HA)
//
// # Quick start
//
//	typ := &hputune.TaskType{
//		Name:     "pairwise-vote",
//		Accept:   hputune.Linear{K: 1, B: 1}, // λo(c) = c + 1
//		ProcRate: 2.0,                        // λp
//	}
//	p := hputune.Problem{
//		Groups: []hputune.Group{{Type: typ, Tasks: 100, Reps: 5}},
//		Budget: 2000,
//	}
//	alloc, err := hputune.Solve(hputune.NewEstimator(), p)
//
// Solve picks the scenario solver for the instance's shape; runnable
// entry points live in the package examples (ExampleSolve,
// ExampleNewServer, ExampleCampaign).
//
// # Concurrency
//
// The tuning engine is built for multi-core use:
//
//   - Estimator is safe for concurrent use and bounded. Its memo of
//     E[max] integrals is sharded by key hash, each shard a
//     mutex-guarded LRU (default bound 65536 entries;
//     NewEstimatorCapacity picks another, CacheStats reports
//     hit/miss/eviction counters), so one estimator can back many
//     solver and simulation goroutines for the life of a serving
//     process; sharing one estimator across a batch is the intended
//     pattern, because overlapping problems reuse each other's
//     integrals, and eviction can only cost a recompute, never change
//     a result.
//   - SolveRepetition and SolveHeterogeneous fan their independent
//     sub-computations (the two greedy rules, the two Utopia-Point
//     objectives, per-candidate evaluations) across goroutines
//     internally while returning exactly the prices the serial solver
//     picks.
//   - SolveBatch, SolveHeterogeneousBatch and SimulateBatch spread a
//     slice of problems over a bounded worker pool (BatchOptions.Workers,
//     default GOMAXPROCS) with results in input order.
//   - SimulateJobLatencyParallel splits Monte-Carlo trials over a fixed
//     number of deterministic randx shards. Every parallel API is a pure
//     function of its arguments: the worker count never changes a
//     result, only how fast it arrives. Fixed seed in, identical
//     float64 out — on one core or sixty-four.
//
// # Performance and the benchmark harness
//
// The hot path (solve → simulate → re-fit, hundreds of rounds per
// second in a campaign fleet) is profile-tuned: the solvers score
// candidates incrementally against cached latency arrays instead of
// re-walking allocations through the estimator, the market simulator
// runs a boxing-free event heap and recycles its buffers across rounds,
// and the expensive phase-type mixture tables are interned process-wide.
// Every optimized path is pinned bit-identical to a retained reference
// implementation (SolveRepetitionReference, SolveHeterogeneousNormReference)
// by parity tests — optimization never changes a result.
//
// The standing benchmark harness, cmd/htbench, measures the declared
// suites (campaign fleet, solvers, market, inference, plus the
// by-name scaling suite: three fleet shapes at 1/4/16/64 workers,
// emitting speedup_vs_serial per cell) and writes the committed
// BENCH_<suite>.json trajectory files; `make bench-suite` regenerates
// the core four, `make bench-scaling` the speedup grid, and
// `make bench-compare` diffs a fresh run against the baselines with a
// tolerance — refusing outright when the measuring machine's core
// count differs from the baseline's, because wall-time ratios across
// core counts are meaningless. Benchmarks that dispatch concurrently
// record their worker width in the JSON, and a dispatch-assertion
// test pins that the parallel fleet really fans out (the pre-PR-7
// benchmark silently ran serial on a 1-CPU recorder and was labeled
// parallel). docs/PERFORMANCE.md documents the methodology, current
// numbers, the multi-core scaling measurements and the optimization
// log.
//
// # Scratch-buffer ownership
//
// The hot paths recycle scratch memory, under one rule: a pooled buffer
// belongs to exactly one call, from acquisition to release, and nothing
// backed by it may outlive that window — results that escape are copied
// out first. Concretely:
//
//   - solver scratch (internal): solvers copy their price vectors into
//     fresh slices before returning; callers never see pooled memory.
//   - market.Buffers (via the root MarketBuffers/NewMarketWithBuffers):
//     one Buffers belongs to one Sim at a time. Reusing it invalidates
//     everything the previous run returned by reference — Results and
//     flattened record slices — so copy anything that must survive.
//   - campaign executors recycle their market buffers between rounds;
//     an Observation's Records are therefore valid only until the next
//     Execute call on the same executor (the loop folds them into
//     aggregates before re-executing, and custom Executor
//     implementations get the same latitude).
//   - uniform allocations share one price row per group (tasks of a
//     group are identically priced by construction); treat
//     Allocation.RepPrices as read-only.
//
// # Serving
//
// NewServer wraps the batch engine in the HTTP JSON API the htuned
// binary serves: POST /v1/solve and /v1/solve-heterogeneous take the
// same spec documents the htune CLI reads, /v1/simulate scores uniform
// price plans with the deterministic trial-sharded Monte Carlo engine,
// and /v1/ingest folds observed trace records (CSV or JSON Lines)
// through the Sec 3.3 MLE into a re-fitted Linearity-Hypothesis model
// that subsequent solves pick up atomically via the "fitted" model
// kind. One process shares one bounded estimator; /v1/stats exposes the
// cache and gate counters, and shutdown drains gracefully. See the
// README for the wire shapes.
//
// # Traffic hardening and observability
//
// The serving layer is built to degrade gracefully rather than fall
// over. Admission is two-class: bulk work (solve, solve-heterogeneous,
// simulate) holds at most a configured share of the in-flight permit
// pool, while priority work (ingest, campaign control) may use the
// whole pool — a flood of bulk traffic therefore cannot starve the
// closed-loop re-tune path. Overload answers a fast 503, optional
// per-client token buckets answer 429 with a Retry-After computed from
// the client's own bucket, and an optional CPU threshold sheds bulk
// work first under pressure. All of it is configured by TrafficConfig
// (ServerConfig.Traffic; htuned's -rate-limit, -rate-burst,
// -bulk-share, -shed-cpu, -access-log flags).
//
// Every non-2xx reply, from any /v1 endpoint, carries one uniform JSON
// envelope:
//
//	{"error": {"code": "...", "message": "...", "retry_after_ms": 1000}}
//
// with a stable machine-readable code: bad_spec (malformed or
// over-limit request), not_found, method_not_allowed, too_large (body
// over the byte cap), overloaded (admission refused; retry_after_ms
// set), rate_limited (token bucket empty; retry_after_ms set),
// suspended (server draining), internal. Every response also echoes an
// X-Request-ID header (the client's, if it sent a reasonable one).
//
// GET /v1/metrics returns a MetricsSnapshot: per-endpoint latency
// histograms (fixed log-spaced buckets with p50/p90/p99), admission
// gate and rate-limiter gauges, the sampled process CPU load, estimator
// cache counters, campaign occupancy, lifetime serve counters and — on
// durable servers — WAL append/fsync/compaction counters. The
// `htbench -loadtest N` harness floods a server at N× its admission
// limit and fails unless the envelope, starvation and p99 bounds all
// hold; `make bench-smoke` runs it in CI. docs/ARCHITECTURE.md
// ("Traffic and observability") specifies the classes, the shed policy
// and every metric name.
//
// # Durability
//
// A serving process forgets nothing it learned if it is given a state
// directory: OpenStore opens (or creates) an append-only, CRC-checked,
// fsync'd write-ahead log with periodic compacting snapshots, and
// RecoverServer builds a server whose ingest aggregates, published
// fit, campaigns and lifetime counters are restored from it — with
// every unfinished campaign resumed from its last completed round.
// Resumption is bit-identical to the run that was interrupted: round
// seeds derive only from each campaign's config seed, the solvers and
// simulator are deterministic, and every persisted float round-trips
// JSON exactly, so the resumed rounds equal the rounds an
// uninterrupted process would have produced. A torn final WAL record
// (the footprint of a crash mid-append) is repaired by truncation on
// open; any other corruption fails recovery loudly rather than guess.
// Concurrent appends group-commit: records arriving while a flush is
// in flight coalesce into one frame write and one fsync
// (StoreOptions.GroupCommitWindow widens the batches; htuned's
// -group-commit flag exposes it), every append still returns only
// after its record is durable, and batches land in sequence order so
// crash recovery is always a gapless prefix containing every
// acknowledged append.
// What is deliberately not persisted: the estimator cache (pure
// memoization — recomputed on demand) and per-request serve counters.
// The htuned binary wires this up with -state-dir/-snapshot-every and
// suspends (rather than cancels) campaigns on SIGTERM so the next boot
// picks them up; htune -state inspects a directory offline. The WAL
// format and the fsync/rotation contract live in docs/ARCHITECTURE.md.
//
// # Closed-loop campaigns
//
// RunCampaign and RunCampaignFleet drive the paper's loop end to end:
// each round tunes the workload under the current belief about λo(c),
// executes the allocation on the marketplace (a CampaignExecutor — the
// simulator by default, real backends plug in), folds the observed
// acceptance timings through the per-price MLE and linearity fit, and
// atomically publishes the re-fitted belief for the next round — until
// budget exhaustion, convergence (fit delta ≤ ε with a repeated
// allocation), a round deadline, or cancellation (a mid-round cancel
// never publishes the interrupted round). The htuned service runs
// campaigns in the background under POST /v1/campaigns; the htune CLI
// runs them one-shot with -campaign; PaperCampaignFleet builds the
// paper's scenario fleet with drifted variants. Campaign results are
// pure functions of their configs — identical through every entry
// point, for any worker count. docs/ARCHITECTURE.md traces the loop.
//
// Beyond the tuning algorithms the module ships every substrate the paper
// depends on: a discrete-event marketplace simulator standing in for
// Amazon Mechanical Turk (NewMarket), parameter inference probes
// (Probe, EstimateFixedPeriod, ...), a crowd-powered database layer
// (sort/filter/max/top-k/group-by over pairwise votes, in
// internal/crowddb, surfaced by the examples), comparator baselines from
// the paper's related work (the deadline pricing of [29] and the prepaid
// Retainer Model of [26–28]), statistical model validation (KS and
// chi-square exponentiality tests, exact rate confidence intervals),
// trace interchange (CSV/JSONL), an adaptive inference-and-retuning
// controller, and the harness regenerating every figure and table of the
// paper's evaluation (RunExperiment).
//
// # API index
//
// The root package is a deliberate, audited facade over the internal
// packages — every re-export below has a consumer (an example, a test,
// a cmd, or a documented embedder pattern); anything without one is
// removed rather than left to rot. By area:
//
//   - Tuning (hputune.go): TaskType, Group, Problem, Allocation,
//     RateModel, Linear, Estimator, NewEstimator,
//     NewEstimatorCapacity, Solve, EvenAllocation, SolveRepetition,
//     SolveRepetitionDP, SolveHeterogeneous, SolveHeterogeneousNorm,
//     the baseline allocations (Bias/TaskEven/RepEven/UniformType),
//     SimulateJobLatency and the saturation diagnostics.
//   - Batch engine (engine.go): SolveBatch, SolveHeterogeneousBatch,
//     SimulateBatch, BatchOptions.
//   - Marketplace and paper harness (market.go): NewMarket,
//     MarketBuffers, the simulator option/result types, the inference
//     probes (Probe, EstimateFixedPeriod, ...) and RunExperiment.
//   - Latency distributions (distributions.go): Distribution with the
//     Exponential, Erlang, HyperExponential and LogNormal families.
//   - Adaptive control (adaptive.go): AdaptiveController and its
//     spec/report types — interleaved inference and re-tuning.
//   - Validation (stats.go): TestExponential, TestExponentialBinned,
//     RateIntervalFromDurations with KSResult, ChiSquareResult, RateCI.
//   - Campaigns (campaign.go): Campaign and its part types, RunCampaign,
//     RunCampaignFleet, PaperCampaignFleet.
//   - Serving (serve.go): ServerConfig, TrafficConfig, Server,
//     NewServer, MetricsSnapshot, CacheStats; durable variants Store,
//     StoreOptions, OpenStore, RecoverServer.
//   - Comparators and crowd DB (comparators.go, crowddb.go): the
//     related-work baselines and the pairwise-vote operators.
package hputune
