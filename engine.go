package hputune

import (
	"hputune/internal/engine"
	"hputune/internal/htuning"
)

// Concurrent batch layer (package engine): fan independent problems
// across a bounded worker pool over one shared, concurrency-safe
// Estimator. All batch calls are deterministic — results in input
// order, per-item seeds derived from (seed, index) only — so a batch is
// a pure function of its arguments regardless of worker count.

// BatchOptions configures a batch run; the zero value uses GOMAXPROCS
// workers.
type BatchOptions = engine.Options

// SimulateItem pairs one problem with the allocation to score in
// SimulateBatch.
type SimulateItem = engine.SimulateItem

// SolveBatch tunes every problem with Algorithm 2 (RA) on a bounded
// worker pool sharing est's memoized integrals (nil est gets a fresh
// one). Results are in problem order; the error, if any, is the
// lowest-index failure.
func SolveBatch(est *Estimator, problems []Problem, opts BatchOptions) ([]RepetitionResult, error) {
	return engine.SolveBatch(est, problems, opts)
}

// SolveHeterogeneousBatch tunes every problem with Algorithm 3 (HA) on
// a bounded worker pool with a shared estimator.
func SolveHeterogeneousBatch(est *Estimator, problems []Problem, opts BatchOptions) ([]HeterogeneousResult, error) {
	return engine.SolveHeterogeneousBatch(est, problems, opts)
}

// SimulateBatch scores every (problem, allocation) pair by trial-sharded
// Monte Carlo across a bounded worker pool. Deterministic in
// (items, phase, trials, seed) for any worker count.
func SimulateBatch(items []SimulateItem, phase Phase, trials int, seed uint64, opts BatchOptions) ([]float64, error) {
	return engine.SimulateBatch(items, phase, trials, seed, opts)
}

// SimulateJobLatencyParallel is SimulateJobLatency with the trials split
// over fixed deterministic randx shards executed by a bounded worker
// pool (workers <= 0 means GOMAXPROCS). The estimate depends only on
// (p, a, phase, trials, seed) — bit-for-bit identical for any workers
// value — so parallel runs stay reproducible.
func SimulateJobLatencyParallel(p Problem, a Allocation, phase Phase, trials int, seed uint64, workers int) (float64, error) {
	return htuning.SimulateJobLatencyParallel(p, a, phase, trials, seed, workers)
}
