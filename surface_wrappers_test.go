package hputune_test

import (
	"math"
	"testing"

	"hputune"
)

// TestDistributionSurface drives every distribution constructor the
// robustness experiments re-export, plus the seeded sampler.
func TestDistributionSurface(t *testing.T) {
	exp, err := hputune.NewExponential(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hputune.NewErlang(3, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := hputune.NewHyperExponential([]float64{0.5, 0.5}, []float64{1, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := hputune.NewLogNormal(0, 0.5); err != nil {
		t.Fatal(err)
	}
	ln, err := hputune.LogNormalFromMoments(0.5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if m := ln.Mean(); math.Abs(m-0.5) > 1e-9 {
		t.Errorf("LogNormalFromMoments mean = %v, want 0.5", m)
	}
	// The exponential's coefficient of variation is exactly 1.
	cv, err := hputune.CoefficientOfVariation(exp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cv-1) > 1e-9 {
		t.Errorf("exponential CV = %v, want 1", cv)
	}

	samples, err := hputune.SampleDistribution(exp, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 200 {
		t.Fatalf("drew %d samples, want 200", len(samples))
	}
	for _, s := range samples {
		if s < 0 {
			t.Fatalf("negative latency sample %v", s)
		}
	}
	if _, err := hputune.SampleDistribution(nil, 1, 0); err == nil || err.Error() == "" {
		t.Fatal("nil distribution must be rejected with a message")
	}
}

// heterogeneousProblem builds a Scenario III instance: two groups with
// different processing rates.
func heterogeneousProblem(budget int) hputune.Problem {
	fast := &hputune.TaskType{Name: "fast", Accept: hputune.Linear{K: 1, B: 1}, ProcRate: 3}
	slow := &hputune.TaskType{Name: "slow", Accept: hputune.Linear{K: 1, B: 1}, ProcRate: 1.5}
	return hputune.Problem{
		Groups: []hputune.Group{
			{Type: fast, Tasks: 5, Reps: 3},
			{Type: slow, Tasks: 5, Reps: 4},
		},
		Budget: budget,
	}
}

// TestSolvePicksTheSolverForTheShape exercises the high-level Solve
// entry point across the three scenario shapes the paper prescribes.
func TestSolvePicksTheSolverForTheShape(t *testing.T) {
	est := hputune.NewEstimator()

	// One group: EA.
	one := apiProblem(200)
	a, err := hputune.Solve(est, one)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost() > 200 {
		t.Fatalf("EA-shaped Solve overspent: %d > 200", a.Cost())
	}

	// Two groups, equal processing rates: RA.
	typ := &hputune.TaskType{Name: "v", Accept: hputune.Linear{K: 1, B: 1}, ProcRate: 2}
	ra := hputune.Problem{
		Groups: []hputune.Group{
			{Type: typ, Tasks: 5, Reps: 3},
			{Type: typ, Tasks: 5, Reps: 5},
		},
		Budget: 160,
	}
	if _, err := hputune.Solve(est, ra); err != nil {
		t.Fatal(err)
	}

	// Different processing rates: HA.
	if _, err := hputune.Solve(est, heterogeneousProblem(180)); err != nil {
		t.Fatal(err)
	}

	// Invalid instances are rejected before any solver runs, and a nil
	// estimator gets a fresh one.
	if _, err := hputune.Solve(nil, hputune.Problem{}); err == nil {
		t.Fatal("empty problem accepted")
	}
	if _, err := hputune.Solve(nil, apiProblem(200)); err != nil {
		t.Fatal(err)
	}
}

// TestBatchSurface drives the concurrent batch wrappers and checks the
// determinism contract: results are a pure function of the arguments,
// independent of worker count.
func TestBatchSurface(t *testing.T) {
	problems := []hputune.Problem{heterogeneousProblem(180), heterogeneousProblem(220)}
	res, err := hputune.SolveHeterogeneousBatch(nil, problems, hputune.BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("batch returned %d results, want 2", len(res))
	}

	items := make([]hputune.SimulateItem, len(problems))
	for i, p := range problems {
		a, err := res[i].Allocation(p)
		if err != nil {
			t.Fatal(err)
		}
		items[i] = hputune.SimulateItem{Problem: p, Allocation: a}
	}
	lat1, err := hputune.SimulateBatch(items, hputune.PhaseOnHold, 300, 9, hputune.BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	lat4, err := hputune.SimulateBatch(items, hputune.PhaseOnHold, 300, 9, hputune.BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range lat1 {
		if lat1[i] != lat4[i] {
			t.Fatalf("SimulateBatch not worker-count invariant at %d: %v vs %v", i, lat1[i], lat4[i])
		}
		if lat1[i] <= 0 {
			t.Fatalf("non-positive latency %v", lat1[i])
		}
	}

	p, a := items[0].Problem, items[0].Allocation
	s1, err := hputune.SimulateJobLatencyParallel(p, a, hputune.PhaseOnHold, 400, 13, 1)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := hputune.SimulateJobLatencyParallel(p, a, hputune.PhaseOnHold, 400, 13, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s4 {
		t.Fatalf("SimulateJobLatencyParallel drifted across worker counts: %v vs %v", s1, s4)
	}
}

// TestAllocationAndDiagnosticsSurface covers the remaining allocation
// helpers and the saturation diagnostic.
func TestAllocationAndDiagnosticsSurface(t *testing.T) {
	est := hputune.NewEstimator()
	p := heterogeneousProblem(180)

	norm, err := hputune.SolveHeterogeneousNorm(est, p, hputune.NormL2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := norm.Allocation(p); err != nil {
		t.Fatal(err)
	}

	alloc, err := hputune.NewUniformAllocation(p, []int{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if price, ok := alloc.GroupPrice(1); !ok || price != 5 {
		t.Fatalf("uniform allocation group 1 price = %d,%v; want 5,true", price, ok)
	}
	if _, err := hputune.NewUniformAllocation(p, []int{4}); err == nil {
		t.Fatal("price-count mismatch accepted")
	}

	scan, err := hputune.SaturationScan(est, p.Groups[0], 12, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Curve) == 0 {
		t.Fatal("saturation scan produced no curve")
	}
}

// TestCrowdPlanningSurface covers the voting-plan and quality wrappers
// of the crowd database layer.
func TestCrowdPlanningSurface(t *testing.T) {
	items, err := hputune.DotImages(6, 10, 100, 3)
	if err != nil {
		t.Fatal(err)
	}

	sortPlan, err := hputune.PlanSortPairs(items, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := 6 * 5 / 2; len(sortPlan.Tasks) != want {
		t.Fatalf("sort plan has %d tasks, want %d pairs", len(sortPlan.Tasks), want)
	}

	filterPlan, err := hputune.PlanFilter(items, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(filterPlan.Tasks) != len(items) {
		t.Fatalf("filter plan has %d tasks, want one per item", len(filterPlan.Tasks))
	}

	policy := hputune.PriceByDifficulty(map[hputune.VoteDifficulty]int{
		hputune.VoteEasy: 1, hputune.VoteMedium: 2, hputune.VoteHard: 3,
	})
	for _, task := range filterPlan.Tasks {
		prices := policy(task)
		if len(prices) != task.Reps {
			t.Fatalf("policy emitted %d prices for %d reps", len(prices), task.Reps)
		}
		for _, pr := range prices {
			if pr < 1 {
				t.Fatalf("non-positive price %d", pr)
			}
		}
	}

	precision, recall := hputune.FilterQuality([]string{"a", "b", "c"}, []string{"b", "c", "d"})
	if math.Abs(precision-2.0/3.0) > 1e-9 || math.Abs(recall-2.0/3.0) > 1e-9 {
		t.Fatalf("FilterQuality = %v, %v; want 2/3, 2/3", precision, recall)
	}
}
