# Targets mirror the CI pipeline (.github/workflows/ci.yml) so local
# runs and CI agree on what passing means.

GO ?= go

.PHONY: all build test race bench lint fmt

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 1800s ./...

race:
	$(GO) test -race -timeout 1800s ./...

# bench smoke: compile and run every benchmark once, no timing claims.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x -timeout 1800s ./...

lint:
	@diff=$$(gofmt -l .); \
	if [ -n "$$diff" ]; then \
		echo "files need gofmt:" >&2; echo "$$diff" >&2; exit 1; \
	fi
	$(GO) vet ./...

fmt:
	gofmt -w .
