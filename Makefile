# Targets mirror the CI pipeline (.github/workflows/ci.yml) so local
# runs and CI agree on what passing means.

GO ?= go

# COVER_MIN is the total-coverage floor `make cover` enforces — pinned
# just under the level at PR merge (82.9%) to absorb sub-point
# platform variance; raise it as coverage grows, never lower it.
COVER_MIN ?= 82.4

.PHONY: all build test race bench lint fmt cover cover-check fuzz-smoke linkcheck doccheck docs bench-campaign bench-suite bench-smoke bench-compare bench-scaling

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 1800s ./...

race:
	$(GO) test -race -timeout 1800s ./...

# bench smoke: compile and run every benchmark once, no timing claims.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x -timeout 1800s ./...

# cover runs the suite with per-package coverage and enforces the
# floor. CI folds the profile into the race run instead (one suite
# execution) and calls cover-check on the existing profile.
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic -timeout 1800s ./...
	@$(MAKE) --no-print-directory cover-check

# cover-check fails when the total of an existing coverage.out drops
# below COVER_MIN.
cover-check:
	@$(GO) tool cover -func=coverage.out | tail -1
	@total=$$($(GO) tool cover -func=coverage.out | tail -1 | awk '{print $$3}' | tr -d '%'); \
	awk -v t=$$total -v min=$(COVER_MIN) 'BEGIN { \
		if (t+0 < min+0) { printf "total coverage %.1f%% below minimum %.1f%%\n", t, min; exit 1 } \
		printf "total coverage %.1f%% meets the %.1f%% floor\n", t, min }'

# fuzz smoke: run each fuzz target briefly so regressions in the trace
# readers, the WAL decoder and the campaign spec parser surface in CI
# without a long fuzzing budget. Runs under -race: the WAL decoder
# feeds a concurrent store and the cheap smoke budget is the one place
# fuzzing and the race detector meet.
fuzz-smoke:
	$(GO) test -race -run=NONE -fuzz=FuzzReadCSV -fuzztime=10s ./internal/trace
	$(GO) test -race -run=NONE -fuzz=FuzzReadJSONL -fuzztime=10s ./internal/trace
	$(GO) test -race -run=NONE -fuzz=FuzzWALDecode -fuzztime=10s ./internal/store
	$(GO) test -race -run=NONE -fuzz=FuzzShipDecode -fuzztime=10s ./internal/cluster
	$(GO) test -race -run=NONE -fuzz=FuzzAggregatesDecode -fuzztime=10s ./internal/cluster
	$(GO) test -race -run=NONE -fuzz=FuzzParseCampaigns -fuzztime=10s ./internal/spec

lint:
	@diff=$$(gofmt -l .); \
	if [ -n "$$diff" ]; then \
		echo "files need gofmt:" >&2; echo "$$diff" >&2; exit 1; \
	fi
	$(GO) vet ./...

fmt:
	gofmt -w .

# linkcheck verifies every relative markdown link in the top-level and
# docs/ markdown points at an existing file.
linkcheck:
	sh scripts/mdlinkcheck.sh README.md ROADMAP.md CHANGES.md PAPER.md docs/*.md

# doccheck guards that every internal/* package has a package comment
# (pkg.go.dev renders nothing for packages without one).
doccheck:
	sh scripts/doccheck.sh

# docs mirrors the CI docs job.
docs: linkcheck doccheck
	$(GO) vet ./...

# The standing benchmark subsystem (cmd/htbench + internal/benchio).
# BENCH_SUITES lists the committed BENCH_<suite>.json baselines;
# methodology and how to read them: docs/PERFORMANCE.md.
BENCH_SUITES ?= campaign solvers market inference crowddb
BENCH_COMMIT ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)
BENCH_FRESH_DIR ?= bench-fresh

# bench-suite regenerates every committed baseline in place (run on a
# quiet machine; commit the JSON alongside the change that moved the
# numbers).
bench-suite:
	$(GO) run ./cmd/htbench -suite all -benchtime 10x -out . -commit $(BENCH_COMMIT)

# bench-campaign regenerates only BENCH_campaign.json (machine-written;
# never hand-edit the JSON).
bench-campaign:
	$(GO) run ./cmd/htbench -suite campaign -benchtime 10x -out . -commit $(BENCH_COMMIT)

# bench-scaling regenerates BENCH_scaling.json: three campaign-fleet
# shapes at 1/4/16/64 workers, emitting speedup_vs_serial per cell — the
# multi-core scaling measurement (docs/PERFORMANCE.md "Multi-core
# scaling"). Heavier than the smoke suites (~a minute); run it on a
# quiet machine and commit the JSON when the curves move.
bench-scaling:
	$(GO) run ./cmd/htbench -suite scaling -benchtime 3x -out . -commit $(BENCH_COMMIT)

# bench-smoke measures the whole suite surface at a few iterations into
# $(BENCH_FRESH_DIR) — cheap enough for CI (benchmarks warm up before
# their timers start, so small iteration counts still read steady
# state), and the input bench-compare diffs against the committed
# baselines. It then runs the load-test harness at 10× the admission
# limit: the target fails if any rejection lacks the error envelope, a
# campaign round starves, or admitted-solve p99 breaks its bound.
bench-smoke:
	mkdir -p $(BENCH_FRESH_DIR)
	$(GO) run ./cmd/htbench -suite all -benchtime 10x -out $(BENCH_FRESH_DIR) -commit $(BENCH_COMMIT)
	$(GO) run ./cmd/htbench -loadtest 10

# bench-compare fails on >2x ns/op or >1.5x allocs/op drift of any
# baseline benchmark (generous on wall time — CI machines differ from
# the baseline machine; allocs/op is the stable cross-machine signal;
# sub-10µs baselines skip the wall-time check entirely, it is timer
# noise at smoke iteration counts; allocation drift has a 16-alloc
# absolute slack so zero-alloc baselines stay guarded without flagging
# single-alloc jitter). A cpus/GOMAXPROCS mismatch between baseline and
# fresh environments skips that suite with a loud ::warning instead of
# computing cross-core-count drift (garbage) or hard-failing (CI
# permanently red until a re-record): re-record with bench-suite on the
# comparison machine class to re-arm the gate.
bench-compare:
	@status=0; for s in $(BENCH_SUITES); do \
		$(GO) run ./cmd/htbench -compare -max-ns-ratio 2.0 -max-alloc-ratio 1.5 \
			-min-ns-floor 10000 -alloc-floor 16 \
			BENCH_$$s.json $(BENCH_FRESH_DIR)/BENCH_$$s.json || status=1; \
	done; exit $$status
