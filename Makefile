# Targets mirror the CI pipeline (.github/workflows/ci.yml) so local
# runs and CI agree on what passing means.

GO ?= go

# COVER_MIN is the total-coverage floor `make cover` enforces — pinned
# just under the level at PR merge (81.5%) to absorb sub-point
# platform variance; raise it as coverage grows, never lower it.
COVER_MIN ?= 81.0

.PHONY: all build test race bench lint fmt cover cover-check fuzz-smoke linkcheck doccheck docs bench-campaign

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 1800s ./...

race:
	$(GO) test -race -timeout 1800s ./...

# bench smoke: compile and run every benchmark once, no timing claims.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x -timeout 1800s ./...

# cover runs the suite with per-package coverage and enforces the
# floor. CI folds the profile into the race run instead (one suite
# execution) and calls cover-check on the existing profile.
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic -timeout 1800s ./...
	@$(MAKE) --no-print-directory cover-check

# cover-check fails when the total of an existing coverage.out drops
# below COVER_MIN.
cover-check:
	@$(GO) tool cover -func=coverage.out | tail -1
	@total=$$($(GO) tool cover -func=coverage.out | tail -1 | awk '{print $$3}' | tr -d '%'); \
	awk -v t=$$total -v min=$(COVER_MIN) 'BEGIN { \
		if (t+0 < min+0) { printf "total coverage %.1f%% below minimum %.1f%%\n", t, min; exit 1 } \
		printf "total coverage %.1f%% meets the %.1f%% floor\n", t, min }'

# fuzz smoke: run each fuzz target briefly so regressions in the trace
# readers surface in CI without a long fuzzing budget.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzReadCSV -fuzztime=10s ./internal/trace
	$(GO) test -run=NONE -fuzz=FuzzReadJSONL -fuzztime=10s ./internal/trace

lint:
	@diff=$$(gofmt -l .); \
	if [ -n "$$diff" ]; then \
		echo "files need gofmt:" >&2; echo "$$diff" >&2; exit 1; \
	fi
	$(GO) vet ./...

fmt:
	gofmt -w .

# linkcheck verifies every relative markdown link in the top-level and
# docs/ markdown points at an existing file.
linkcheck:
	sh scripts/mdlinkcheck.sh README.md ROADMAP.md CHANGES.md PAPER.md docs/*.md

# doccheck guards that every internal/* package has a package comment
# (pkg.go.dev renders nothing for packages without one).
doccheck:
	sh scripts/doccheck.sh

# docs mirrors the CI docs job.
docs: linkcheck doccheck
	$(GO) vet ./...

# bench-campaign re-runs the committed BENCH_campaign.json workload;
# update the JSON from its output when the engine changes materially.
bench-campaign:
	$(GO) test -run=NONE -bench 'BenchmarkCampaignFleet$$' -benchtime=10x ./internal/campaign/
