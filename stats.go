package hputune

import (
	"hputune/internal/randx"
	"hputune/internal/stats"
)

// Statistical validation of the HPU model (exponential phases, Poisson
// arrivals) against simulated or probed latency samples.
type (
	// KSResult is a Kolmogorov–Smirnov test outcome.
	KSResult = stats.KSResult
	// ChiSquareResult is a binned goodness-of-fit test outcome.
	ChiSquareResult = stats.ChiSquareResult
	// RateCI is an exact confidence interval for a clock rate.
	RateCI = stats.RateCI
)

// TestExponential runs the Lilliefors-style Kolmogorov–Smirnov test of
// exponentiality with rate estimated from the sample; the p-value is
// simulated with mcTrials Monte-Carlo replications (seeded).
func TestExponential(xs []float64, mcTrials int, seed uint64) (KSResult, error) {
	return stats.KSExponential(xs, mcTrials, randx.New(seed))
}

// TestExponentialBinned runs the binned chi-square goodness-of-fit test
// of exponentiality with estimated rate.
func TestExponentialBinned(xs []float64) (ChiSquareResult, error) {
	return stats.ChiSquareExponential(xs)
}

// RateIntervalFromDurations returns the exact confidence interval for a
// clock rate λ estimated from n iid exponential observations totalling
// the given duration (the paper's Random Period probe).
func RateIntervalFromDurations(n int, total, confidence float64) (RateCI, error) {
	return stats.RateIntervalFromDurations(n, total, confidence)
}
