package hputune

import (
	"hputune/internal/randx"
	"hputune/internal/stats"
)

// Statistical validation of the HPU model (exponential phases, Poisson
// arrivals) against simulated or probed latency samples.
type (
	// SampleSummary holds descriptive statistics of a latency sample.
	SampleSummary = stats.Summary
	// KSResult is a Kolmogorov–Smirnov test outcome.
	KSResult = stats.KSResult
	// ChiSquareResult is a binned goodness-of-fit test outcome.
	ChiSquareResult = stats.ChiSquareResult
	// RateCI is an exact confidence interval for a clock rate.
	RateCI = stats.RateCI
)

// SummarizeSample computes descriptive statistics of a sample.
func SummarizeSample(xs []float64) (SampleSummary, error) { return stats.Summarize(xs) }

// TestExponential runs the Lilliefors-style Kolmogorov–Smirnov test of
// exponentiality with rate estimated from the sample; the p-value is
// simulated with mcTrials Monte-Carlo replications (seeded).
func TestExponential(xs []float64, mcTrials int, seed uint64) (KSResult, error) {
	return stats.KSExponential(xs, mcTrials, randx.New(seed))
}

// TestExponentialBinned runs the binned chi-square goodness-of-fit test
// of exponentiality with estimated rate.
func TestExponentialBinned(xs []float64) (ChiSquareResult, error) {
	return stats.ChiSquareExponential(xs)
}

// RateIntervalFromDurations returns the exact confidence interval for a
// clock rate λ estimated from n iid exponential observations totalling
// the given duration (the paper's Random Period probe).
func RateIntervalFromDurations(n int, total, confidence float64) (RateCI, error) {
	return stats.RateIntervalFromDurations(n, total, confidence)
}

// RateIntervalFromCount returns the exact (Garwood) confidence interval
// for a Poisson rate from n events over a fixed horizon (the paper's
// Fixed Period probe).
func RateIntervalFromCount(n int, horizon, confidence float64) (RateCI, error) {
	return stats.RateIntervalFromCount(n, horizon, confidence)
}
