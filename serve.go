package hputune

import (
	"hputune/internal/htuning"
	"hputune/internal/server"
	"hputune/internal/store"
)

// Serving layer (package server): the htuned binary's HTTP JSON API over
// the batch engine — one shared bounded estimator, admission-gated
// solves (503 on overload), and the online trace ingest → MLE →
// linearity re-fit loop. Embed it in another process via NewServer +
// Server.Handler, or run it standalone with cmd/htuned.

// ServerConfig sizes one serving process: admission bound, engine pool
// width, estimator cache capacity and traffic hardening. The zero value
// is usable.
type ServerConfig = server.Config

// TrafficConfig tunes the serving layer's traffic hardening: the bulk
// share of the admission pool, per-client rate limiting, CPU shedding
// and access logging. The zero value keeps the pre-hardening defaults
// (no rate limiting, no shedding, 3/4 of permits open to bulk work).
// It is ServerConfig's Traffic field and htuned's -rate-limit,
// -rate-burst, -bulk-share, -shed-cpu and -access-log flags.
type TrafficConfig = server.TrafficConfig

// MetricsSnapshot is the GET /v1/metrics document: per-endpoint latency
// histograms plus admission, rate-limit, load, cache, campaign, serve
// and (durable servers only) WAL gauges.
type MetricsSnapshot = server.MetricsSnapshot

// Server is the HTTP serving layer. Safe for concurrent use.
type Server = server.Server

// CacheStats is a snapshot of an Estimator's memo-cache counters.
type CacheStats = htuning.CacheStats

// NewServer builds a serving layer over a fresh bounded estimator.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// NewEstimatorCapacity returns an estimator whose memo cache holds at
// most capacity entries (LRU eviction; evictions recompute, never change
// results). NewEstimator's default bound is 65536 entries.
func NewEstimatorCapacity(capacity int) (*Estimator, error) {
	return htuning.NewEstimatorCapacity(capacity)
}

// Durable state subsystem (package store): an append-only CRC-checked
// WAL plus compacting snapshots under a state directory, persisting
// ingest aggregates, published fits and campaign state so a serving
// process can crash, restart and resume every unfinished campaign
// bit-identically to an uninterrupted run. htuned wires it up with
// -state-dir; embedders OpenStore a directory and RecoverServer over it.

// Store is an open durable state directory (WAL + snapshots).
type Store = store.Store

// StoreOptions configures OpenStore; the zero value is production-safe
// (fsync on every append, snapshot every 1024 records).
type StoreOptions = store.Options

// OpenStore opens or creates a durable state directory and recovers its
// state, truncating a torn final WAL record (the expected artifact of a
// crash mid-append) and refusing louder corruption. Inspect a directory
// without modifying it via htune -state <dir>.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	return store.Open(dir, opts)
}

// RecoverServer builds a serving layer whose durable state lives in st:
// recorded ingest aggregates, the published fit and all campaigns are
// restored, unfinished campaigns resume from their last completed round
// (bit-identically to an uninterrupted run), and subsequent state
// changes are journaled back to st. Shutting the server down suspends
// campaigns instead of canceling them; the store's Compact + Close
// remain the caller's job after the drain (see cmd/htuned).
func RecoverServer(cfg ServerConfig, st *Store) (*Server, error) {
	return server.Recover(cfg, st)
}
