package hputune

import (
	"hputune/internal/htuning"
	"hputune/internal/server"
)

// Serving layer (package server): the htuned binary's HTTP JSON API over
// the batch engine — one shared bounded estimator, admission-gated
// solves (503 on overload), and the online trace ingest → MLE →
// linearity re-fit loop. Embed it in another process via NewServer +
// Server.Handler, or run it standalone with cmd/htuned.

// ServerConfig sizes one serving process: admission bound, engine pool
// width, and estimator cache capacity. The zero value is usable.
type ServerConfig = server.Config

// Server is the HTTP serving layer. Safe for concurrent use.
type Server = server.Server

// CacheStats is a snapshot of an Estimator's memo-cache counters.
type CacheStats = htuning.CacheStats

// NewServer builds a serving layer over a fresh bounded estimator.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// NewEstimatorCapacity returns an estimator whose memo cache holds at
// most capacity entries (LRU eviction; evictions recompute, never change
// results). NewEstimator's default bound is 65536 entries.
func NewEstimatorCapacity(capacity int) (*Estimator, error) {
	return htuning.NewEstimatorCapacity(capacity)
}
