package hputune_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"

	"hputune"
)

// ExampleSolve tunes a two-group Scenario II instance: 50 tasks needing
// 3 answer repetitions and 50 needing 5, under the paper's linear
// price→rate model and a budget of 1000 payment units.
func ExampleSolve() {
	typ := &hputune.TaskType{
		Name:     "pairwise-vote",
		Accept:   hputune.Linear{K: 1, B: 1}, // λo(c) = c + 1
		ProcRate: 2.0,                        // λp
	}
	p := hputune.Problem{
		Groups: []hputune.Group{
			{Type: typ, Tasks: 50, Reps: 3},
			{Type: typ, Tasks: 50, Reps: 5},
		},
		Budget: 1000,
	}
	alloc, err := hputune.Solve(hputune.NewEstimator(), p)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(alloc)
	fmt.Printf("spend: %d of %d units\n", alloc.Cost(), p.Budget)
	// Output:
	// g0[50 tasks, 150 reps]: all @3; g1[50 tasks, 250 reps]: all @2
	// spend: 950 of 1000 units
}

// ExampleNewServer embeds the htuned serving layer in-process and
// solves a JSON spec over HTTP — the same bytes `htune -spec` accepts.
func ExampleNewServer() {
	srv, err := hputune.NewServer(hputune.ServerConfig{})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := `{
	  "budget": 1000,
	  "groups": [
	    {"name": "g3", "tasks": 50, "reps": 3, "procRate": 2.0,
	     "model": {"kind": "linear", "k": 1, "b": 1}},
	    {"name": "g5", "tasks": 50, "reps": 5, "procRate": 2.0,
	     "model": {"kind": "linear", "k": 1, "b": 1}}
	  ]
	}`
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(spec))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(strings.TrimSpace(string(body)))
	// Output:
	// {"batch":false,"results":[{"prices":[3,2],"objective":5.857431838421854,"spent":950}]}
}

// ExampleCampaign runs one closed-loop campaign: each round is tuned
// under the current belief about the market (starting from a mistuned
// prior), executed on the simulated marketplace, and the observed
// acceptance timings re-fit the belief before the next round — until
// the fit stops moving.
func ExampleCampaign() {
	truth := hputune.Linear{K: 2, B: 0.5} // the market's real curve
	cfg := hputune.Campaign{
		Name: "demo",
		Groups: []hputune.CampaignGroup{
			{Name: "g3", Tasks: 50, Reps: 3, Class: &hputune.TaskClass{
				Name: "g3", Accept: truth, ProcRate: 2.0, Accuracy: 1}},
			{Name: "g5", Tasks: 50, Reps: 5, Class: &hputune.TaskClass{
				Name: "g5", Accept: truth, ProcRate: 2.0, Accuracy: 1}},
		},
		Prior:       hputune.Linear{K: 1, B: 1}, // what the tuner believes
		RoundBudget: 1000,
		Budget:      12000,
		MaxRounds:   12,
		Epsilon:     0.05,
		Seed:        7,
	}
	res, err := hputune.RunCampaign(context.Background(), nil, cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s after %d rounds, spent %d\n", res.Status, res.RoundsRun, res.Spent)
	for _, r := range res.Rounds[:2] {
		fmt.Printf("round %d: prices %v\n", r.Round, r.Prices)
	}
	// Output:
	// converged after 8 rounds, spent 7600
	// round 0: prices [3 2]
	// round 1: prices [3 2]
}

// ExampleCrowdQuery runs a closed-loop crowd-query campaign: each
// round, the tuned per-difficulty prices drive a tournament top-k over
// a synthesized dataset instead of posting flat task groups, and the
// observed acceptance timings from every tournament phase re-fit the
// tuner's belief about the market.
func ExampleCrowdQuery() {
	cfg := hputune.Campaign{
		Name: "crowd-topk",
		Query: &hputune.CrowdQuery{
			Kind:        "topk",
			Items:       8,
			K:           2,
			Reps:        3,
			DatasetSeed: 5,
			Accept:      hputune.Linear{K: 2, B: 0.5}, // the market's real curve
			ProcRate:    2,
		},
		Prior:       hputune.Linear{K: 1, B: 1}, // what the tuner believes
		RoundBudget: 150,
		Budget:      2500,
		MaxRounds:   4,
		Epsilon:     0.05,
		Seed:        11,
	}
	res, err := hputune.RunCampaign(context.Background(), nil, cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s after %d rounds, spent %d\n", res.Status, res.RoundsRun, res.Spent)
	last := res.Rounds[len(res.Rounds)-1]
	fmt.Printf("final round: %s in %d phases, quality %.2f\n",
		last.Query.Kind, last.Query.Phases, last.Query.Quality)
	// Output:
	// max-rounds after 4 rounds, spent 888
	// final round: topk in 2 phases, quality 1.00
}

// ExampleSolveBatch tunes a batch of related instances on the
// concurrent engine: one shared estimator memoizes the E[max]
// integrals, so overlapping instances reuse each other's work, and the
// results come back in input order no matter how many workers ran them.
func ExampleSolveBatch() {
	typ := &hputune.TaskType{
		Name:     "pairwise-vote",
		Accept:   hputune.Linear{K: 1, B: 1},
		ProcRate: 2.0,
	}
	budgets := []int{900, 1000, 1100}
	problems := make([]hputune.Problem, len(budgets))
	for i, budget := range budgets {
		problems[i] = hputune.Problem{
			Groups: []hputune.Group{
				{Type: typ, Tasks: 50, Reps: 3},
				{Type: typ, Tasks: 50, Reps: 5},
			},
			Budget: budget,
		}
	}
	results, err := hputune.SolveBatch(hputune.NewEstimator(), problems, hputune.BatchOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	for i, r := range results {
		fmt.Printf("budget %d: prices %v, spent %d\n", problems[i].Budget, r.Prices, r.Spent)
	}
	// Output:
	// budget 900: prices [2 2], spent 800
	// budget 1000: prices [3 2], spent 950
	// budget 1100: prices [2 3], spent 1050
}

// ExampleEstimator_CacheStats shows the estimator's bounded memo cache
// at work: the first lookup of a (shape, rate) key computes the E[max]
// integral and stores it, repeats are O(1) hits, and the counters make
// the hit rate observable (htuned serves them via /v1/stats).
func ExampleEstimator_CacheStats() {
	est := hputune.NewEstimator()
	g := hputune.Group{
		Type:  &hputune.TaskType{Name: "vote", Accept: hputune.Linear{K: 1, B: 1}, ProcRate: 2},
		Tasks: 50,
		Reps:  3,
	}
	for i := 0; i < 3; i++ {
		if _, err := est.GroupPhase1Mean(g, 2); err != nil {
			fmt.Println(err)
			return
		}
	}
	stats := est.CacheStats()
	fmt.Printf("hits %d, misses %d, entries %d\n", stats.Hits, stats.Misses, stats.Entries)
	// Output:
	// hits 2, misses 1, entries 1
}
