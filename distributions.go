package hputune

import (
	"hputune/internal/dist"
	"hputune/internal/randx"
)

// Latency distributions of the HPU model and the heavy-tailed
// alternatives used by the robustness experiments.
type (
	// Distribution is a non-negative continuous latency distribution.
	Distribution = dist.Distribution
	// Exponential is the single-phase HPU latency.
	Exponential = dist.Exponential
	// Erlang is the latency of k sequential repetitions (Lemma 3).
	Erlang = dist.Erlang
	// HyperExponential is a mixture of exponentials: a heterogeneous
	// worker population, over-dispersed relative to the HPU model.
	HyperExponential = dist.HyperExponential
	// LogNormal is the heavy-tailed processing alternative reported by
	// empirical crowdsourcing studies.
	LogNormal = dist.LogNormal
)

// NewExponential returns Exp(rate).
func NewExponential(rate float64) (Exponential, error) { return dist.NewExponential(rate) }

// NewErlang returns Erlang(k, rate).
func NewErlang(k int, rate float64) (Erlang, error) { return dist.NewErlang(k, rate) }

// NewHyperExponential returns the exponential mixture with the given
// component weights (normalized) and rates.
func NewHyperExponential(weights, rates []float64) (HyperExponential, error) {
	return dist.NewHyperExponential(weights, rates)
}

// NewLogNormal returns LogNormal(mu, sigma).
func NewLogNormal(mu, sigma float64) (LogNormal, error) { return dist.NewLogNormal(mu, sigma) }

// LogNormalFromMoments returns the log-normal with the given mean and
// coefficient of variation — handy for matching an exponential's mean
// while turning up the tail.
func LogNormalFromMoments(mean, cv float64) (LogNormal, error) {
	return dist.LogNormalFromMoments(mean, cv)
}

// CoefficientOfVariation returns std/mean for distributions with a
// closed-form variance; the exponential's is exactly 1.
func CoefficientOfVariation(d Distribution) (float64, error) {
	return dist.CoefficientOfVariation(d)
}

// SampleDistribution draws n seeded samples from d.
func SampleDistribution(d Distribution, n int, seed uint64) ([]float64, error) {
	if d == nil {
		return nil, errNilDistribution
	}
	r := randx.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(r)
	}
	return out, nil
}

var errNilDistribution = errorString("hputune: nil distribution")

// errorString is a tiny constant-error helper.
type errorString string

func (e errorString) Error() string { return string(e) }
