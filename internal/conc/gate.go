package conc

import "sync/atomic"

// Gate is a non-blocking admission limiter: at most Limit holders at
// once, excess callers are turned away immediately instead of queueing.
// Serving layers put a Gate in front of the worker pool so overload
// becomes a fast, explicit rejection (HTTP 503) rather than an unbounded
// backlog of goroutines all contending for the same cores.
type Gate struct {
	limit    int64
	inflight atomic.Int64
	rejected atomic.Uint64
}

// NewGate returns a gate admitting at most limit concurrent holders;
// limit <= 0 means GOMAXPROCS-sized (via Workers).
func NewGate(limit int) *Gate {
	return &Gate{limit: int64(Workers(limit))}
}

// TryAcquire takes a permit if one is free. Every successful acquire
// must be paired with exactly one Release. The CAS loop (rather than an
// optimistic add-then-rollback) keeps InFlight from ever reading above
// Limit, so observers see a consistent bound.
func (g *Gate) TryAcquire() bool {
	for {
		cur := g.inflight.Load()
		if cur >= g.limit {
			g.rejected.Add(1)
			return false
		}
		if g.inflight.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// Release returns a permit taken by a successful TryAcquire.
func (g *Gate) Release() { g.inflight.Add(-1) }

// InFlight reports the number of currently held permits.
func (g *Gate) InFlight() int { return int(g.inflight.Load()) }

// Limit reports the permit bound.
func (g *Gate) Limit() int { return int(g.limit) }

// Rejected reports how many TryAcquire calls were turned away.
func (g *Gate) Rejected() uint64 { return g.rejected.Load() }
