package conc

import (
	"sync"
	"testing"
)

type scratch struct {
	buf []int
}

// TestPoolRecycles pins the free-list behaviour: a Put value comes back
// from Get (modulo GC, which never runs inside this loop's window), and
// an empty pool falls back to the constructor.
func TestPoolRecycles(t *testing.T) {
	built := 0
	p := NewPool(func() *scratch {
		built++
		return &scratch{buf: make([]int, 0, 8)}
	})
	first := p.Get()
	if built != 1 || first == nil || cap(first.buf) != 8 {
		t.Fatalf("constructor not used: built=%d, v=%+v", built, first)
	}
	first.buf = append(first.buf[:0], 1, 2, 3)
	p.Put(first)
	second := p.Get()
	if second == nil {
		t.Fatal("Get returned nil after Put")
	}
	// Contents are unspecified after recycling; the pool never zeroes.
	second.buf = second.buf[:0]
	p.Put(second)
}

// TestPoolConcurrent exercises Get/Put under the race detector: every
// goroutine owns its value between Get and Put, per the ownership rule.
func TestPoolConcurrent(t *testing.T) {
	p := NewPool(func() *scratch { return &scratch{} })
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := p.Get()
				s.buf = append(s.buf[:0], w, i)
				if s.buf[0] != w || s.buf[1] != i {
					t.Errorf("scratch corrupted while owned: %v", s.buf)
				}
				p.Put(s)
			}
		}(w)
	}
	wg.Wait()
}
