package conc

import (
	"sync"
	"testing"
)

func TestGateLimit(t *testing.T) {
	g := NewGate(2)
	if !g.TryAcquire() || !g.TryAcquire() {
		t.Fatal("first two acquires must succeed")
	}
	if g.TryAcquire() {
		t.Fatal("third acquire beyond limit 2 succeeded")
	}
	if g.InFlight() != 2 {
		t.Errorf("inflight = %d, want 2", g.InFlight())
	}
	if g.Rejected() != 1 {
		t.Errorf("rejected = %d, want 1", g.Rejected())
	}
	g.Release()
	if !g.TryAcquire() {
		t.Fatal("acquire after release failed")
	}
	g.Release()
	g.Release()
	if g.InFlight() != 0 {
		t.Errorf("inflight = %d after full release, want 0", g.InFlight())
	}
}

func TestGateDefaultLimit(t *testing.T) {
	g := NewGate(0)
	if g.Limit() != Workers(0) {
		t.Errorf("default limit = %d, want GOMAXPROCS (%d)", g.Limit(), Workers(0))
	}
}

func TestGateConcurrentNeverExceedsLimit(t *testing.T) {
	const limit = 4
	g := NewGate(limit)
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if g.TryAcquire() {
					if n := g.InFlight(); n > limit {
						t.Errorf("inflight %d exceeded limit %d", n, limit)
					}
					g.Release()
				}
			}
		}()
	}
	wg.Wait()
	if g.InFlight() != 0 {
		t.Errorf("inflight = %d at rest, want 0", g.InFlight())
	}
}
