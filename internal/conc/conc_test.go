package conc

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		hit := make([]atomic.Int32, 40)
		i, err := Each(40, workers, func(i int) error {
			hit[i].Add(1)
			return nil
		})
		if err != nil || i != -1 {
			t.Fatalf("workers=%d: (%d, %v)", workers, i, err)
		}
		for j := range hit {
			if hit[j].Load() != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, j, hit[j].Load())
			}
		}
	}
}

func TestEachBoundsPool(t *testing.T) {
	var running, peak atomic.Int64
	if _, err := Each(64, 4, func(int) error {
		cur := running.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		defer running.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if peak.Load() > 4 {
		t.Errorf("pool exceeded bound: peak %d workers", peak.Load())
	}
}

func TestEachReturnsLowestIndexError(t *testing.T) {
	sentinel := errors.New("boom")
	other := errors.New("other")
	i, err := Each(30, 8, func(i int) error {
		switch i {
		case 5:
			return sentinel
		case 21:
			return other
		}
		return nil
	})
	if i != 5 || !errors.Is(err, sentinel) {
		t.Fatalf("got (%d, %v), want (5, boom)", i, err)
	}
}

func TestEachEmpty(t *testing.T) {
	if i, err := Each(0, 4, nil); err != nil || i != -1 {
		t.Fatalf("empty: (%d, %v)", i, err)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("explicit value not respected")
	}
	if Workers(0) < 1 || Workers(-2) < 1 {
		t.Error("defaulted pool size below 1")
	}
}
