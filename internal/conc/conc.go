// Package conc holds the small concurrency primitives shared by the
// tuning engine's parallel layers (solver candidate fan-out, Monte-Carlo
// trial shards, batch solving, market replications): a bounded
// worker-pool Each, an admission Gate, and a typed free list (Pool) for
// hot-path scratch buffers. Each call spawns and bounds its own pool —
// there is no global pool, so concurrent callers compose additively.
// Work is handed out through an atomic counter so finished workers steal
// remaining items; failure reporting is deterministic — the lowest-index
// error wins, no matter which goroutine finishes first.
package conc

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a pool-size argument: values <= 0 mean GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Each runs fn(i) for every i in [0, n) across at most workers
// goroutines (inline when workers <= 1 or n <= 1) and returns the
// lowest failing index with its error, or (-1, nil). Every item is
// attempted even after a failure. fn must be safe for concurrent calls
// and should write only to its own index's slot in any shared output.
// The inline path allocates nothing, so per-iteration fan-outs inside
// solver loops cost only the calls themselves when the pool is size 1.
func Each(n, workers int, fn func(i int) error) (int, error) {
	if n <= 0 {
		return -1, nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		// Serial: items run in index order, so the first error seen is
		// the lowest-index error; every item still runs.
		firstI, firstErr := -1, error(nil)
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && firstErr == nil {
				firstI, firstErr = i, err
			}
		}
		return firstI, firstErr
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return i, err
		}
	}
	return -1, nil
}

// Pool is a typed free list over sync.Pool for scratch values that hot
// loops would otherwise allocate per call (solver price/latency arrays,
// simulator buffers). Get returns a recycled *T or a fresh one from the
// constructor; Put recycles.
//
// Ownership contract for every scratch buffer pooled through this type:
// the *T belongs to the caller from Get until the matching Put, and to
// nobody afterwards — a caller must never retain the pointer, or any
// slice backed by it, past its own Put. Results that outlive the call
// are copied out of the scratch before it is returned. Values carry no
// cleanup: the constructor must tolerate arbitrary previous contents
// being reset by the user (Pool never zeroes).
type Pool[T any] struct {
	p sync.Pool
}

// NewPool returns a pool whose Get falls back to newT when empty.
func NewPool[T any](newT func() *T) *Pool[T] {
	return &Pool[T]{p: sync.Pool{New: func() any { return newT() }}}
}

// Get hands out a scratch value owned by the caller until Put.
func (p *Pool[T]) Get() *T { return p.p.Get().(*T) }

// Put returns a scratch value to the free list. The caller must not use
// v, or anything backed by it, afterwards.
func (p *Pool[T]) Put(v *T) { p.p.Put(v) }
