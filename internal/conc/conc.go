// Package conc is the bounded worker-pool primitive shared by the
// tuning engine's parallel layers (solver candidate fan-out,
// Monte-Carlo trial shards, batch solving, market replications). Each
// Each call spawns and bounds its own pool — there is no global pool,
// so concurrent callers compose additively. Work is handed out through
// an atomic counter so finished workers steal remaining items; failure
// reporting is deterministic — the lowest-index error wins, no matter
// which goroutine finishes first.
package conc

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a pool-size argument: values <= 0 mean GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Each runs fn(i) for every i in [0, n) across at most workers
// goroutines (inline when workers <= 1 or n <= 1) and returns the
// lowest failing index with its error, or (-1, nil). Every item is
// attempted even after a failure. fn must be safe for concurrent calls
// and should write only to its own index's slot in any shared output.
func Each(n, workers int, fn func(i int) error) (int, error) {
	if n <= 0 {
		return -1, nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return i, err
		}
	}
	return -1, nil
}
