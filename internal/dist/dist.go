// Package dist implements the latency distributions of the HPU model
// ("Tuning Crowdsourced Human Computation", Cao et al., ICDE 2017) and
// the heavy-tailed alternatives used by the robustness experiments:
// exponential on-hold and processing phases, Erlang repetition chains
// (Lemma 3), hypoexponential two-phase sums, and the log-normal and
// hyper-exponential processing models of the empirical literature.
//
// Every distribution is an immutable value, safe to share between
// goroutines; sampling draws from an explicit *randx.Rand stream so
// callers control determinism.
package dist

import (
	"fmt"
	"math"

	"hputune/internal/numeric"
	"hputune/internal/randx"
)

// Distribution is a non-negative continuous latency distribution.
// Implementations are immutable values: all methods are safe for
// concurrent use, and Sample's only state lives in the caller's RNG.
type Distribution interface {
	// CDF returns P(X <= t); 0 for t <= 0.
	CDF(t float64) float64
	// Sample draws one value from the distribution using r's stream.
	Sample(r *randx.Rand) float64
	// Mean returns E[X].
	Mean() float64
}

// Varer is implemented by distributions with a closed-form variance.
type Varer interface {
	Var() float64
}

// PDFer is implemented by distributions with a closed-form density;
// MaxOrder.MeanDensityForm requires it of its base.
type PDFer interface {
	PDF(t float64) float64
}

// CoefficientOfVariation returns std/mean for distributions with a
// closed-form variance; the exponential's is exactly 1.
func CoefficientOfVariation(d Distribution) (float64, error) {
	if d == nil {
		return 0, fmt.Errorf("dist: nil distribution")
	}
	v, ok := d.(Varer)
	if !ok {
		return 0, fmt.Errorf("dist: %T has no closed-form variance", d)
	}
	m := d.Mean()
	if !(m > 0) {
		return 0, fmt.Errorf("dist: non-positive mean %v", m)
	}
	return math.Sqrt(v.Var()) / m, nil
}

// erlangCDF returns the Erlang(k, rate) CDF at t: the regularized lower
// incomplete gamma P(k, rate·t).
func erlangCDF(k int, rate, t float64) float64 {
	if t <= 0 {
		return 0
	}
	v, _ := numeric.RegularizedGammaP(float64(k), rate*t)
	return numeric.Clamp(v, 0, 1)
}

// erlangSF returns the Erlang(k, rate) survival function Q(k, rate·t),
// accurate deep in the tail where the CDF rounds to 1.
func erlangSF(k int, rate, t float64) float64 {
	if t <= 0 {
		return 1
	}
	v, _ := numeric.RegularizedGammaQ(float64(k), rate*t)
	return numeric.Clamp(v, 0, 1)
}

// erlangPDF returns the Erlang(k, rate) density at t, computed in log
// space to stay finite for large shapes.
func erlangPDF(k int, rate, t float64) float64 {
	if t <= 0 {
		return 0
	}
	lg := float64(k)*math.Log(rate) + float64(k-1)*math.Log(t) - rate*t - numeric.LogFactorial(k-1)
	return math.Exp(lg)
}

// Exponential is the single-phase HPU latency Exp(rate).
type Exponential struct {
	Rate float64
}

// NewExponential returns Exp(rate).
func NewExponential(rate float64) (Exponential, error) {
	if !(rate > 0) {
		return Exponential{}, fmt.Errorf("dist: exponential rate %v must be positive", rate)
	}
	return Exponential{Rate: rate}, nil
}

// CDF returns 1 - e^{-rate·t}.
func (e Exponential) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return -math.Expm1(-e.Rate * t)
}

// PDF returns rate·e^{-rate·t}.
func (e Exponential) PDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return e.Rate * math.Exp(-e.Rate*t)
}

// Sample draws one exponential value.
func (e Exponential) Sample(r *randx.Rand) float64 { return r.Exp(e.Rate) }

// Mean returns 1/rate.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Var returns 1/rate².
func (e Exponential) Var() float64 { return 1 / (e.Rate * e.Rate) }

// Erlang is the latency of k sequential repetitions, each Exp(rate)
// (Lemma 3 of the paper): the Erlang(k, rate) distribution.
type Erlang struct {
	K    int
	Rate float64
}

// NewErlang returns Erlang(k, rate).
func NewErlang(k int, rate float64) (Erlang, error) {
	if k < 1 {
		return Erlang{}, fmt.Errorf("dist: Erlang shape %d must be >= 1", k)
	}
	if !(rate > 0) {
		return Erlang{}, fmt.Errorf("dist: Erlang rate %v must be positive", rate)
	}
	return Erlang{K: k, Rate: rate}, nil
}

// CDF returns P(k, rate·t).
func (e Erlang) CDF(t float64) float64 { return erlangCDF(e.K, e.Rate, t) }

// PDF returns the Erlang density at t.
func (e Erlang) PDF(t float64) float64 { return erlangPDF(e.K, e.Rate, t) }

// Sample draws the sum of K exponential phases.
func (e Erlang) Sample(r *randx.Rand) float64 { return r.Erlang(e.K, e.Rate) }

// Mean returns k/rate.
func (e Erlang) Mean() float64 { return float64(e.K) / e.Rate }

// Var returns k/rate².
func (e Erlang) Var() float64 { return float64(e.K) / (e.Rate * e.Rate) }

// HyperExponential is a mixture of exponentials: a heterogeneous worker
// population, over-dispersed (CV > 1) relative to the HPU model.
type HyperExponential struct {
	Weights []float64 // normalized, positive
	Rates   []float64
}

// NewHyperExponential returns the exponential mixture with the given
// component weights (normalized to sum 1) and rates.
func NewHyperExponential(weights, rates []float64) (HyperExponential, error) {
	if len(weights) == 0 || len(weights) != len(rates) {
		return HyperExponential{}, fmt.Errorf("dist: %d weights for %d rates", len(weights), len(rates))
	}
	total := 0.0
	for i, w := range weights {
		if !(w > 0) {
			return HyperExponential{}, fmt.Errorf("dist: component %d weight %v must be positive", i, w)
		}
		if !(rates[i] > 0) {
			return HyperExponential{}, fmt.Errorf("dist: component %d rate %v must be positive", i, rates[i])
		}
		total += w
	}
	norm := make([]float64, len(weights))
	for i, w := range weights {
		norm[i] = w / total
	}
	return HyperExponential{Weights: norm, Rates: append([]float64(nil), rates...)}, nil
}

// CDF returns Σ wᵢ (1 - e^{-λᵢ t}).
func (h HyperExponential) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	sum := 0.0
	for i, w := range h.Weights {
		sum += w * -math.Expm1(-h.Rates[i]*t)
	}
	return sum
}

// PDF returns Σ wᵢ λᵢ e^{-λᵢ t}.
func (h HyperExponential) PDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	sum := 0.0
	for i, w := range h.Weights {
		sum += w * h.Rates[i] * math.Exp(-h.Rates[i]*t)
	}
	return sum
}

// Sample picks a component by weight, then draws its exponential.
func (h HyperExponential) Sample(r *randx.Rand) float64 {
	u := r.Float64()
	acc := 0.0
	for i, w := range h.Weights {
		acc += w
		if u < acc {
			return r.Exp(h.Rates[i])
		}
	}
	return r.Exp(h.Rates[len(h.Rates)-1])
}

// Mean returns Σ wᵢ/λᵢ.
func (h HyperExponential) Mean() float64 {
	sum := 0.0
	for i, w := range h.Weights {
		sum += w / h.Rates[i]
	}
	return sum
}

// Var returns the mixture variance E[X²] − E[X]².
func (h HyperExponential) Var() float64 {
	m := h.Mean()
	m2 := 0.0
	for i, w := range h.Weights {
		m2 += 2 * w / (h.Rates[i] * h.Rates[i])
	}
	return m2 - m*m
}

// LogNormal is the heavy-tailed processing alternative reported by
// empirical crowdsourcing studies: exp(N(mu, sigma²)).
type LogNormal struct {
	Mu    float64
	Sigma float64
}

// NewLogNormal returns LogNormal(mu, sigma).
func NewLogNormal(mu, sigma float64) (LogNormal, error) {
	if !(sigma > 0) {
		return LogNormal{}, fmt.Errorf("dist: log-normal sigma %v must be positive", sigma)
	}
	return LogNormal{Mu: mu, Sigma: sigma}, nil
}

// LogNormalFromMoments returns the log-normal with the given mean and
// coefficient of variation — handy for matching an exponential's mean
// while turning up the tail.
func LogNormalFromMoments(mean, cv float64) (LogNormal, error) {
	if !(mean > 0) {
		return LogNormal{}, fmt.Errorf("dist: log-normal mean %v must be positive", mean)
	}
	if !(cv > 0) {
		return LogNormal{}, fmt.Errorf("dist: log-normal CV %v must be positive", cv)
	}
	s2 := math.Log1p(cv * cv)
	return LogNormal{Mu: math.Log(mean) - s2/2, Sigma: math.Sqrt(s2)}, nil
}

// CDF returns Φ((ln t − mu)/sigma).
func (l LogNormal) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return 0.5 * math.Erfc(-(math.Log(t)-l.Mu)/(l.Sigma*math.Sqrt2))
}

// PDF returns the log-normal density at t.
func (l LogNormal) PDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	z := (math.Log(t) - l.Mu) / l.Sigma
	return math.Exp(-z*z/2) / (t * l.Sigma * math.Sqrt(2*math.Pi))
}

// Sample draws exp(mu + sigma·Z).
func (l LogNormal) Sample(r *randx.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*r.Normal())
}

// Mean returns exp(mu + sigma²/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Var returns (e^{sigma²} − 1)·e^{2mu + sigma²}.
func (l LogNormal) Var() float64 {
	s2 := l.Sigma * l.Sigma
	return math.Expm1(s2) * math.Exp(2*l.Mu+s2)
}
