package dist

import (
	"math"
	"testing"

	"hputune/internal/numeric"
	"hputune/internal/randx"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestExponentialClosedForms(t *testing.T) {
	e, err := NewExponential(2.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e.CDF(1), 1-math.Exp(-2.5), 1e-14) {
		t.Errorf("CDF(1) = %v", e.CDF(1))
	}
	if !almostEqual(e.Mean(), 0.4, 1e-14) || !almostEqual(e.Var(), 0.16, 1e-14) {
		t.Errorf("mean %v var %v", e.Mean(), e.Var())
	}
	cv, err := CoefficientOfVariation(e)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(cv, 1, 1e-12) {
		t.Errorf("exponential CV = %v, want 1", cv)
	}
	if e.CDF(0) != 0 || e.CDF(-1) != 0 {
		t.Error("CDF not 0 at t <= 0")
	}
}

func TestErlangCDFMatchesComplementSum(t *testing.T) {
	// F(t) = 1 - e^{-λt} Σ_{i<k} (λt)^i/i!
	er, err := NewErlang(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.1, 0.5, 1, 2, 5} {
		x := 3 * tt
		sum := 0.0
		term := 1.0
		for i := 0; i < 4; i++ {
			if i > 0 {
				term *= x / float64(i)
			}
			sum += term
		}
		want := 1 - math.Exp(-x)*sum
		if !almostEqual(er.CDF(tt), want, 1e-12) {
			t.Errorf("CDF(%v) = %v, want %v", tt, er.CDF(tt), want)
		}
	}
	if !almostEqual(er.Mean(), 4.0/3, 1e-14) {
		t.Errorf("mean %v", er.Mean())
	}
}

func TestErlangPDFIntegratesToCDF(t *testing.T) {
	er, err := NewErlang(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := numeric.Integrate(er.PDF, 0, 3, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, er.CDF(3), 1e-9) {
		t.Errorf("∫pdf = %v, CDF(3) = %v", got, er.CDF(3))
	}
}

func TestHypoexponentialTwoRateClosedForm(t *testing.T) {
	// F(t) = 1 - (b·e^{-at} - a·e^{-bt})/(b-a) for distinct rates a, b.
	a, b := 2.0, 5.0
	h, err := NewHypoexponential(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.1, 0.3, 1, 2} {
		want := 1 - (b*math.Exp(-a*tt)-a*math.Exp(-b*tt))/(b-a)
		if !almostEqual(h.CDF(tt), want, 1e-11) {
			t.Errorf("CDF(%v) = %v, want %v", tt, h.CDF(tt), want)
		}
	}
	if !almostEqual(h.Mean(), 1/a+1/b, 1e-14) {
		t.Errorf("mean %v", h.Mean())
	}
}

func TestHypoexponentialThreeRateClosedForm(t *testing.T) {
	// Distinct single-count rates keep the partial-fraction path:
	// F(t) = 1 - Σᵢ wᵢ e^{-λᵢt}, wᵢ = Π_{j≠i} λⱼ/(λⱼ-λᵢ).
	rates := []float64{1, 3, 7}
	h, err := NewHypoexponential(rates...)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.2, 0.8, 2, 5} {
		want := 1.0
		for i, li := range rates {
			w := 1.0
			for j, lj := range rates {
				if j != i {
					w *= lj / (lj - li)
				}
			}
			want -= w * math.Exp(-li*tt)
		}
		if !almostEqual(h.CDF(tt), want, 1e-11) {
			t.Errorf("CDF(%v) = %v, want %v", tt, h.CDF(tt), want)
		}
	}
	got, err := MeanOfMax(1, h)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 + 1.0/3 + 1.0/7
	if !almostEqual(got, want, 1e-10) {
		t.Errorf("∫SF = %v, want mean %v", got, want)
	}
}

func TestHypoexponentialEqualRatesIsErlang(t *testing.T) {
	h, err := NewHypoexponential(3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	er, err := NewErlang(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.2, 1, 2.5} {
		if !almostEqual(h.CDF(tt), er.CDF(tt), 1e-12) {
			t.Errorf("CDF(%v): hypo %v vs erlang %v", tt, h.CDF(tt), er.CDF(tt))
		}
	}
}

func TestTwoPhaseErlangEqualRatesIsErlang(t *testing.T) {
	tp, err := NewTwoPhaseErlang(3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	er, err := NewErlang(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.5, 1.5, 4} {
		if !almostEqual(tp.CDF(tt), er.CDF(tt), 1e-12) {
			t.Errorf("CDF(%v): two-phase %v vs erlang %v", tt, tp.CDF(tt), er.CDF(tt))
		}
	}
}

func TestTwoPhaseErlangAgainstMonteCarlo(t *testing.T) {
	tp, err := NewTwoPhaseErlang(3, 1.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(tp.Mean(), 3/1.5+3/4.0, 1e-13) {
		t.Fatalf("mean %v, want %v", tp.Mean(), 3/1.5+3/4.0)
	}
	r := randx.New(17)
	const trials = 60000
	counts := map[float64]int{1: 0, 2: 0, 3: 0, 4: 0}
	mean := 0.0
	for i := 0; i < trials; i++ {
		v := tp.Sample(r)
		mean += v / trials
		for th := range counts {
			if v <= th {
				counts[th]++
			}
		}
	}
	if !almostEqual(mean, tp.Mean(), 0.02) {
		t.Errorf("sample mean %v vs analytic %v", mean, tp.Mean())
	}
	for th, c := range counts {
		emp := float64(c) / trials
		if math.Abs(emp-tp.CDF(th)) > 0.01 {
			t.Errorf("CDF(%v) analytic %v vs empirical %v", th, tp.CDF(th), emp)
		}
	}
}

func TestTwoPhaseErlangLargeShapeConsistency(t *testing.T) {
	// k = 12 with rates 6 and 4 is exactly where the textbook
	// partial-fraction expansion loses all 15 digits to cancellation;
	// the NB-mixture CDF must still integrate to the closed-form mean
	// (∫ SF = E) and stay within [0, 1] and monotone.
	tp, err := NewTwoPhaseErlang(12, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MeanOfMax(1, tp)
	if err != nil {
		t.Fatal(err)
	}
	want := 12.0/6 + 12.0/4
	if !almostEqual(got, want, 1e-10) {
		t.Errorf("∫SF = %v, want mean %v", got, want)
	}
	prev := 0.0
	for tt := 0.0; tt <= 30; tt += 0.05 {
		f := tp.CDF(tt)
		if f < prev-1e-13 {
			t.Fatalf("CDF not monotone at t=%v: %v < %v", tt, f, prev)
		}
		if f < 0 || f > 1 {
			t.Fatalf("CDF out of range at t=%v: %v", tt, f)
		}
		prev = f
	}
	if sf := 1 - tp.CDF(1000); sf != 0 {
		t.Errorf("survival floor at t=1000: %g, want exact 0", sf)
	}
}

func TestTwoPhaseErlangExtremeRateRatio(t *testing.T) {
	// A 100:1 rate ratio drives the NB mixture through hundreds of
	// terms; the mean identity must still hold.
	tp, err := NewTwoPhaseErlang(8, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MeanOfMax(1, tp)
	if err != nil {
		t.Fatal(err)
	}
	want := 8.0/200 + 8.0/2
	if !almostEqual(got, want, 1e-9) {
		t.Errorf("∫SF = %v, want mean %v", got, want)
	}
}

func TestTwoPhaseErlangPDFIntegratesToOne(t *testing.T) {
	tp, err := NewTwoPhaseErlang(2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := numeric.IntegrateToInf(tp.PDF, 0, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 1, 1e-8) {
		t.Errorf("∫pdf = %v, want 1", got)
	}
}

func TestMeanOfMaxExponentialHarmonic(t *testing.T) {
	// E[max of n Exp(λ)] = H_n/λ.
	e, err := NewExponential(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 3, 10, 100} {
		got, err := MeanOfMax(n, e)
		if err != nil {
			t.Fatal(err)
		}
		want := numeric.Harmonic(n) / 5
		if !almostEqual(got, want, 1e-10) {
			t.Errorf("n=%d: %v, want %v", n, got, want)
		}
	}
}

func TestMeanOfMaxOrderOneIsMean(t *testing.T) {
	er, err := NewErlang(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MeanOfMax(1, er)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, er.Mean(), 1e-10) {
		t.Errorf("E[max of 1] = %v, want mean %v", got, er.Mean())
	}
}

func TestMaxOrderSurvivalAndDensityFormsAgree(t *testing.T) {
	base, err := NewErlang(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaxOrder(100, base)
	if err != nil {
		t.Fatal(err)
	}
	surv := m.Mean()
	dens := m.MeanDensityForm()
	if math.IsNaN(surv) || math.IsNaN(dens) {
		t.Fatalf("NaN mean: survival %v density %v", surv, dens)
	}
	if !almostEqual(surv, dens, 1e-7) {
		t.Errorf("survival form %v vs density form %v", surv, dens)
	}
}

func TestLogNormalFromMomentsRoundTrip(t *testing.T) {
	ln, err := LogNormalFromMoments(0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ln.Mean(), 0.5, 1e-12) {
		t.Errorf("mean %v, want 0.5", ln.Mean())
	}
	cv, err := CoefficientOfVariation(ln)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(cv, 3, 1e-10) {
		t.Errorf("CV %v, want 3", cv)
	}
}

func TestHyperExponentialMoments(t *testing.T) {
	he, err := NewHyperExponential([]float64{0.8, 0.2}, []float64{4, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.8/4 + 0.2/0.4
	if !almostEqual(he.Mean(), want, 1e-13) {
		t.Errorf("mean %v, want %v", he.Mean(), want)
	}
	cv, err := CoefficientOfVariation(he)
	if err != nil {
		t.Fatal(err)
	}
	if cv <= 1 {
		t.Errorf("hyperexponential CV %v should exceed 1", cv)
	}
	r := randx.New(3)
	mean := 0.0
	const trials = 40000
	for i := 0; i < trials; i++ {
		mean += he.Sample(r) / trials
	}
	if !almostEqual(mean, want, 0.05) {
		t.Errorf("sample mean %v vs analytic %v", mean, want)
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := NewExponential(0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewErlang(0, 1); err == nil {
		t.Error("zero shape accepted")
	}
	if _, err := NewErlang(2, -1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewTwoPhaseErlang(0, 1, 1); err == nil {
		t.Error("zero shape accepted")
	}
	if _, err := NewHypoexponential(); err == nil {
		t.Error("empty rates accepted")
	}
	if _, err := NewHyperExponential([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := NewLogNormal(0, 0); err == nil {
		t.Error("zero sigma accepted")
	}
	if _, err := LogNormalFromMoments(-1, 1); err == nil {
		t.Error("negative mean accepted")
	}
	if _, err := NewMaxOrder(0, Exponential{Rate: 1}); err == nil {
		t.Error("zero order accepted")
	}
	if _, err := NewMaxOrder(2, nil); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := MeanOfMax(2, nil); err == nil {
		t.Error("nil distribution accepted")
	}
	if _, err := CoefficientOfVariation(nil); err == nil {
		t.Error("nil distribution accepted")
	}
}
