package dist

import (
	"fmt"
	"math"

	"hputune/internal/numeric"
	"hputune/internal/randx"
)

// stage is count iid Exp(rate) phases in series.
type stage struct {
	rate  float64
	count int
}

// phaseSum is the distribution of a sum of independent exponential
// phases — a hypoexponential (series phase-type) distribution. Three
// evaluation strategies, picked at construction by what stays
// numerically stable:
//
//   - one distinct rate: plain Erlang;
//   - two distinct rates (any counts — the TwoPhaseErlang hot path):
//     the exact negative-binomial Erlang mixture. Exp(b) is a
//     Geometric(p = b/a)-compound of Exp(a) phases (check the Laplace
//     transforms), so Erlang(m, b) adds NB(m, p) phases of the faster
//     rate a, and the sum is Σⱼ wⱼ·Erlang(base+j, a) with positive
//     weights wⱼ = C(m+j−1, j)·pᵐ·(1−p)ʲ — no cancellation at any
//     shape or rate ratio, unlike the textbook partial fractions whose
//     alternating ~C(2k, k)·(a/(a−b))²ᵏ coefficients destroy all
//     precision already at k ≈ 8;
//   - three or more distinct rates (single-count stages from
//     NewHypoexponential): partial fractions, whose simple poles keep
//     coefficients of order Π λⱼ/(λⱼ−λᵢ).
//
// Rates closer than a relative 1e-9 are merged into one stage.
type phaseSum struct {
	stages []stage
	// coef[i][j-1] multiplies the Erlang(j, stages[i].rate) density term
	// (>= 3 distinct rates only).
	coef [][]float64
	// Two-distinct-rate mixture representation.
	mixRate float64 // the faster rate a
	mixBase int     // smallest mixture shape: count(a) + count(b)
	// mixCW[j] = Σ_{l<=j} w_l, the cumulative mixture weight up to shape
	// mixBase+j; the last entry is exactly 1 (the truncated tail is
	// lumped into the final shape, bounding its error by mixTailMass).
	mixCW []float64
}

// mixTailMass is where the negative-binomial weight tail is truncated;
// the lumped remainder bounds the absolute CDF/PDF error.
const mixTailMass = 1e-15

// mixMaxTerms caps the weight table against extreme rate ratios (the
// NB mean is count·a/b terms).
const mixMaxTerms = 1 << 20

// newPhaseSum merges equal rates and precomputes the representation.
func newPhaseSum(raw []stage) (phaseSum, error) {
	if len(raw) == 0 {
		return phaseSum{}, fmt.Errorf("dist: phase-type sum needs at least one stage")
	}
	var stages []stage
	for _, s := range raw {
		if s.count < 1 {
			return phaseSum{}, fmt.Errorf("dist: stage count %d must be >= 1", s.count)
		}
		if !(s.rate > 0) {
			return phaseSum{}, fmt.Errorf("dist: stage rate %v must be positive", s.rate)
		}
		merged := false
		for i := range stages {
			if math.Abs(stages[i].rate-s.rate) <= 1e-9*math.Max(stages[i].rate, s.rate) {
				stages[i].count += s.count
				merged = true
				break
			}
		}
		if !merged {
			stages = append(stages, s)
		}
	}
	p := phaseSum{stages: stages}
	switch {
	case len(stages) == 2:
		p.buildMixture()
	case len(stages) > 2:
		p.coef = partialFractions(stages)
	}
	return p, nil
}

// buildMixture resolves the cumulative negative-binomial mixture
// weights for the two-distinct-rate case through the package intern
// table (see intern.go) — the weights are a pure function of the merged
// stage counts and rates, so distributions over the same parameters
// share one immutable table.
func (p *phaseSum) buildMixture() {
	fast, slow := p.stages[0], p.stages[1]
	if fast.rate < slow.rate {
		fast, slow = slow, fast
	}
	p.mixRate = fast.rate
	p.mixBase = fast.count + slow.count
	p.mixCW = internedMixture(mixKey{
		fastCount: fast.count,
		slowCount: slow.count,
		aBits:     math.Float64bits(fast.rate),
		bBits:     math.Float64bits(slow.rate),
	})
}

// cwAt returns the cumulative mixture weight of shapes <= i.
func (p phaseSum) cwAt(i int) float64 {
	k := i - p.mixBase
	switch {
	case k < 0:
		return 0
	case k >= len(p.mixCW):
		return 1
	}
	return p.mixCW[k]
}

// partialFractions expands C·Π (λᵢ+s)^{-kᵢ} (C = Π λᵢ^{kᵢ}) into
// Σᵢ Σⱼ Aᵢⱼ (λᵢ+s)^{-j} and returns A with Aᵢⱼ at [i][j-1]. The
// coefficients of pole i follow from Taylor-expanding the remaining
// factors hᵢ(s) = Π_{r≠i} (λᵢ+s)^{-kᵣ} at s = -λᵢ: derivatives of hᵢ
// obey the log-derivative recurrence h⁽ˡ⁾ = Σ C(l-1,m) h⁽ᵐ⁾ g⁽ˡ⁻¹⁻ᵐ⁾
// with g = h'/h a sum of simple poles, all evaluable in closed form.
func partialFractions(stages []stage) [][]float64 {
	logC := 0.0
	for _, s := range stages {
		logC += float64(s.count) * math.Log(s.rate)
	}
	C := math.Exp(logC)
	coef := make([][]float64, len(stages))
	for i, si := range stages {
		k := si.count
		// g⁽ᵐ⁾(-λᵢ) = Σ_{r≠i} -kᵣ·(-1)ᵐ·m!·(λᵣ-λᵢ)^{-(m+1)}
		g := make([]float64, k) // g[m] = g⁽ᵐ⁾(-λᵢ)
		logH0 := 0.0
		signH0 := 1.0
		for r, sr := range stages {
			if r == i {
				continue
			}
			d := sr.rate - si.rate
			logH0 -= float64(sr.count) * math.Log(math.Abs(d))
			if d < 0 && sr.count%2 == 1 {
				signH0 = -signH0
			}
			mfac := 1.0
			for m := 0; m < k; m++ {
				if m > 0 {
					mfac *= float64(m)
				}
				sign := 1.0
				if m%2 == 1 {
					sign = -1
				}
				g[m] += -float64(sr.count) * sign * mfac / math.Pow(d, float64(m+1))
			}
		}
		h := make([]float64, k) // h[l] = hᵢ⁽ˡ⁾(-λᵢ)
		h[0] = signH0 * math.Exp(logH0)
		for l := 1; l < k; l++ {
			binom := 1.0
			for m := 0; m < l; m++ {
				if m > 0 {
					binom *= float64(l-m) / float64(m)
				}
				h[l] += binom * h[m] * g[l-1-m]
			}
		}
		coef[i] = make([]float64, k)
		lfac := 1.0
		for l := 0; l < k; l++ {
			if l > 0 {
				lfac *= float64(l)
			}
			// Aᵢ,(k-l) = C·hᵢ⁽ˡ⁾(-λᵢ)/l!
			coef[i][k-l-1] = C * h[l] / lfac
		}
	}
	return coef
}

// CDF dispatches on the representation chosen at construction.
func (p phaseSum) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	if len(p.stages) == 1 {
		return erlangCDF(p.stages[0].count, p.stages[0].rate, t)
	}
	if p.mixCW != nil {
		if v := p.mixturePoissonSum(t, false); v < 0.5 {
			return numeric.Clamp(v, 0, 1)
		}
		// Past the median, compute the survival sum instead: its terms
		// decay to an exact zero in the deep tail, where the direct sum
		// would round to 1 and leave a spurious survival floor that
		// diverges ∫(1−Fⁿ) integrals over geometric panels.
		return numeric.Clamp(1-p.mixturePoissonSum(t, true), 0, 1)
	}
	return p.fractionsCDF(t)
}

// mixPMFCut truncates the Poisson pmf walk; it bounds the absolute
// CDF/SF error together with mixTailMass.
const mixPMFCut = 1e-22

// mixturePoissonSum evaluates the mixture CDF or survival by summing
// over the Poisson count N ~ Poisson(at) instead of over shapes:
//
//	F(t) = Σⱼ wⱼ·P(N ≥ base+j) = Σᵢ pmf(i)·CW(i−base)
//	SF(t) = Σⱼ wⱼ·P(N ≤ base+j−1) = Σᵢ pmf(i)·(1 − CW(i−base))
//
// The pmf is evaluated once at its mode (where it is ≈ (2πat)^{-1/2},
// never denormal) and walked outward by the exact ratios
// pmf(i−1) = pmf(i)·i/at and pmf(i+1) = pmf(i)·at/(i+1) until it falls
// below mixPMFCut, so the sum is all-positive and immune to the
// underflow that breaks shape-ladder recurrences when at and the shape
// range are far apart.
func (p phaseSum) mixturePoissonSum(t float64, survival bool) float64 {
	at := p.mixRate * t
	weight := func(i int) float64 {
		if survival {
			return 1 - p.cwAt(i)
		}
		return p.cwAt(i)
	}
	mode := int(at)
	lg, _ := math.Lgamma(float64(mode) + 1)
	pmfMode := math.Exp(float64(mode)*math.Log(at) - at - lg)
	acc := numeric.NewKahan()
	pmf := pmfMode
	for i := mode; i >= 0; i-- {
		acc.Add(pmf * weight(i))
		pmf *= float64(i) / at
		if pmf < mixPMFCut {
			if survival {
				// Everything further down survives with weight 1;
				// add the remaining lower-tail Poisson mass, bounded
				// by the geometric ratio of the pmf.
				acc.Add(pmf * float64(i) / math.Max(at-float64(i), 1))
			}
			break
		}
	}
	pmf = pmfMode
	for i := mode + 1; ; i++ {
		pmf *= at / float64(i)
		if pmf < mixPMFCut {
			break
		}
		acc.Add(pmf * weight(i))
	}
	return numeric.Clamp(acc.Sum(), 0, 1)
}

// fractionsCDF evaluates the partial-fraction expansion term-by-term:
// each (λᵢ+s)^{-j} pole integrates to an Erlang(j, λᵢ) CDF scaled by
// Aᵢⱼ/λᵢʲ. Past the median the lower form loses its leading digits to
// cancellation (the signed terms sum to 1 − tiny), which would leave a
// spurious ~1e-15 survival floor that diverges ∫(1−Fⁿ) integrals — so
// the tail is computed from the complementary expansion
// Σ Aᵢⱼ/λᵢʲ·Q(j, λᵢt), whose terms decay to zero instead of cancelling.
func (p phaseSum) fractionsCDF(t float64) float64 {
	lower := numeric.NewKahan()
	for i, s := range p.stages {
		scale := 1.0
		for j, a := range p.coef[i] {
			scale /= s.rate
			lower.Add(a * scale * erlangCDF(j+1, s.rate, t))
		}
	}
	if v := lower.Sum(); v < 0.5 {
		return numeric.Clamp(v, 0, 1)
	}
	upper := numeric.NewKahan()
	for i, s := range p.stages {
		scale := 1.0
		for j, a := range p.coef[i] {
			scale /= s.rate
			upper.Add(a * scale * erlangSF(j+1, s.rate, t))
		}
	}
	return numeric.Clamp(1-upper.Sum(), 0, 1)
}

// PDF dispatches on the representation chosen at construction.
func (p phaseSum) PDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	if len(p.stages) == 1 {
		return erlangPDF(p.stages[0].count, p.stages[0].rate, t)
	}
	if p.mixCW != nil {
		// f_{Erlang(n, a)}(t) = a·poisPMF(n−1; at), so the density is
		// a·Σᵢ pmf(i)·w_{i−base+1}, summed by the same mode-outward
		// Poisson walk as the CDF.
		at := p.mixRate * t
		wAt := func(i int) float64 {
			j := i - p.mixBase + 1
			switch {
			case j < 0 || j >= len(p.mixCW):
				return 0
			case j == 0:
				return p.mixCW[0]
			}
			return p.mixCW[j] - p.mixCW[j-1]
		}
		mode := int(at)
		lg, _ := math.Lgamma(float64(mode) + 1)
		pmfMode := math.Exp(float64(mode)*math.Log(at) - at - lg)
		acc := numeric.NewKahan()
		pmf := pmfMode
		for i := mode; i >= 0; i-- {
			acc.Add(pmf * wAt(i))
			pmf *= float64(i) / at
			if pmf < mixPMFCut {
				break
			}
		}
		pmf = pmfMode
		for i := mode + 1; ; i++ {
			pmf *= at / float64(i)
			if pmf < mixPMFCut {
				break
			}
			acc.Add(pmf * wAt(i))
		}
		return p.mixRate * acc.Sum()
	}
	sum := numeric.NewKahan()
	for i, s := range p.stages {
		scale := 1.0
		for j, a := range p.coef[i] {
			scale /= s.rate
			sum.Add(a * scale * erlangPDF(j+1, s.rate, t))
		}
	}
	return math.Max(sum.Sum(), 0)
}

// Sample draws each stage's Erlang independently and sums.
func (p phaseSum) Sample(r *randx.Rand) float64 {
	total := 0.0
	for _, s := range p.stages {
		total += r.Erlang(s.count, s.rate)
	}
	return total
}

// Mean returns Σ kᵢ/λᵢ.
func (p phaseSum) Mean() float64 {
	sum := 0.0
	for _, s := range p.stages {
		sum += float64(s.count) / s.rate
	}
	return sum
}

// Var returns Σ kᵢ/λᵢ².
func (p phaseSum) Var() float64 {
	sum := 0.0
	for _, s := range p.stages {
		sum += float64(s.count) / (s.rate * s.rate)
	}
	return sum
}

// Hypoexponential is the series sum of independent exponential phases
// with the given rates — the latency of one repetition's on-hold phase
// followed by its processing phase is the two-rate case.
type Hypoexponential struct {
	phaseSum
}

// NewHypoexponential returns the sum of one Exp(rate) phase per argument.
func NewHypoexponential(rates ...float64) (Hypoexponential, error) {
	if len(rates) == 0 {
		return Hypoexponential{}, fmt.Errorf("dist: hypoexponential needs at least one rate")
	}
	stages := make([]stage, len(rates))
	for i, r := range rates {
		stages[i] = stage{rate: r, count: 1}
	}
	ps, err := newPhaseSum(stages)
	if err != nil {
		return Hypoexponential{}, err
	}
	return Hypoexponential{phaseSum: ps}, nil
}

// TwoPhaseErlang is the full latency of a task's k sequential
// repetitions under the HPU model: each repetition waits Exp(λo) on
// hold and then takes Exp(λp) of processing, so the total is
// Erlang(k, λo) + Erlang(k, λp).
type TwoPhaseErlang struct {
	phaseSum
	K          int
	AcceptRate float64
	ProcRate   float64
}

// NewTwoPhaseErlang returns the distribution of k on-hold/processing
// repetition pairs.
func NewTwoPhaseErlang(k int, acceptRate, procRate float64) (TwoPhaseErlang, error) {
	if k < 1 {
		return TwoPhaseErlang{}, fmt.Errorf("dist: two-phase Erlang shape %d must be >= 1", k)
	}
	if !(acceptRate > 0) || !(procRate > 0) {
		return TwoPhaseErlang{}, fmt.Errorf("dist: two-phase Erlang rates (%v, %v) must be positive", acceptRate, procRate)
	}
	ps, err := newPhaseSum([]stage{{rate: acceptRate, count: k}, {rate: procRate, count: k}})
	if err != nil {
		return TwoPhaseErlang{}, err
	}
	return TwoPhaseErlang{phaseSum: ps, K: k, AcceptRate: acceptRate, ProcRate: procRate}, nil
}
