package dist

import (
	"math"
	"testing"

	"hputune/internal/randx"
)

// sampleMoments draws n values and returns the empirical mean and
// variance.
func sampleMoments(t *testing.T, d Distribution, n int, seed uint64) (mean, variance float64) {
	t.Helper()
	r := randx.New(seed)
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		if v < 0 {
			t.Fatalf("negative latency sample %v", v)
		}
		sum += v
		sumSq += v * v
	}
	mean = sum / float64(n)
	variance = sumSq/float64(n) - mean*mean
	return mean, variance
}

// TestSamplersMatchClosedFormMoments checks every sampler against its
// own Mean/Var closed forms by Monte Carlo.
func TestSamplersMatchClosedFormMoments(t *testing.T) {
	exp, err := NewExponential(2)
	if err != nil {
		t.Fatal(err)
	}
	erl, err := NewErlang(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	hyp, err := NewHyperExponential([]float64{1, 3}, []float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		d    interface {
			Distribution
			Var() float64
		}
	}{
		{"exponential", exp},
		{"erlang", erl},
		{"hyperexponential", hyp},
	} {
		const n = 200000
		mean, variance := sampleMoments(t, tc.d, n, 11)
		if want := tc.d.Mean(); math.Abs(mean-want) > 0.05*want+1e-3 {
			t.Errorf("%s: sample mean %v, closed form %v", tc.name, mean, want)
		}
		if want := tc.d.Var(); math.Abs(variance-want) > 0.1*want+1e-3 {
			t.Errorf("%s: sample variance %v, closed form %v", tc.name, variance, want)
		}
	}

	// The log-normal exposes no Var; check its sampler against the
	// textbook moments exp(mu+sigma²/2) and m²·(e^{sigma²}−1).
	ln, err := NewLogNormal(0.2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	mean, variance := sampleMoments(t, ln, 200000, 11)
	if want := ln.Mean(); math.Abs(mean-want) > 0.05*want {
		t.Errorf("lognormal: sample mean %v, closed form %v", mean, want)
	}
	if want := ln.Mean() * ln.Mean() * math.Expm1(ln.Sigma*ln.Sigma); math.Abs(variance-want) > 0.1*want {
		t.Errorf("lognormal: sample variance %v, closed form %v", variance, want)
	}
}

// TestPDFIsDerivativeOfCDF checks each density against a central
// difference of its own CDF.
func TestPDFIsDerivativeOfCDF(t *testing.T) {
	exp, _ := NewExponential(1.5)
	hyp, _ := NewHyperExponential([]float64{0.3, 0.7}, []float64{0.8, 5})
	ln, _ := NewLogNormal(0, 0.8)
	type pdfCDF interface {
		PDF(t float64) float64
		CDF(t float64) float64
	}
	for _, tc := range []struct {
		name string
		d    pdfCDF
	}{
		{"exponential", exp},
		{"hyperexponential", hyp},
		{"lognormal", ln},
	} {
		const h = 1e-5
		for _, x := range []float64{0.1, 0.5, 1, 2, 5} {
			want := (tc.d.CDF(x+h) - tc.d.CDF(x-h)) / (2 * h)
			if got := tc.d.PDF(x); math.Abs(got-want) > 1e-4*(1+want) {
				t.Errorf("%s: PDF(%v) = %v, CDF slope %v", tc.name, x, got, want)
			}
		}
		// Below the support everything is flat zero.
		if tc.d.PDF(-1) != 0 || tc.d.CDF(-1) != 0 {
			t.Errorf("%s: density or mass below 0", tc.name)
		}
	}
}

// TestMaxOrderSamplerMatchesCDF draws max-of-n batches and compares the
// empirical CDF at the median against F(t)^N.
func TestMaxOrderSamplerMatchesCDF(t *testing.T) {
	base, err := NewExponential(1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaxOrder(5, base)
	if err != nil {
		t.Fatal(err)
	}
	// Invert F(t)^5 = 0.5 for the reference point.
	target := -math.Log(1 - math.Pow(0.5, 1.0/5))
	if got := m.CDF(target); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("CDF at inverted median = %v, want 0.5", got)
	}
	r := randx.New(23)
	const n = 100000
	below := 0
	for i := 0; i < n; i++ {
		if m.Sample(r) <= target {
			below++
		}
	}
	if p := float64(below) / n; math.Abs(p-0.5) > 0.01 {
		t.Fatalf("empirical CDF at median = %v, want 0.5±0.01", p)
	}
}

// TestHypoexponentialVariance pins Var = Σ 1/λᵢ² for the series sum.
func TestHypoexponentialVariance(t *testing.T) {
	hypo, err := NewHypoexponential(1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 + 1.0/4 + 1.0/16
	if got := hypo.Var(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Var = %v, want %v", got, want)
	}
}
