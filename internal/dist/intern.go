package dist

import (
	"math"
	"sync"

	"hputune/internal/randx"
)

// The negative-binomial mixture table of a two-distinct-rate phase sum
// (the TwoPhaseErlang hot path) is a pure function of the stage counts
// and the two rates, and it is not cheap: hundreds to thousands of
// cumulative weights per (shape, rate-pair). The estimator rebuilds the
// distribution on every cache miss — and an online ingest loop mints a
// fresh rate pair per re-fitted model, so misses recur for the life of
// a serving process. Interning the finished tables makes every rebuild
// after the first a map hit.
//
// The intern table is sharded like the estimator cache, and bounded the
// blunt way: a shard that reaches its capacity is cleared and refilled
// by subsequent construction (an epoch reset). Clearing never changes
// results — the table is recomputed from the key — it only costs the
// rebuild, and capacity is far above any realistic working set (the
// htuned service's distinct (k, λo, λp) triples per fit generation).
// Interned slices are shared between phaseSum values and are immutable
// after construction; nothing may write to a mixCW slice post-build.

// mixKey identifies one mixture table: the merged stage counts and the
// raw bits of both rates (rates are positive and finite, so bit
// equality is value equality).
type mixKey struct {
	fastCount, slowCount int
	aBits, bBits         uint64
}

const (
	mixInternShards   = 16
	mixInternPerShard = 1024
)

type mixInternShard struct {
	mu sync.RWMutex
	m  map[mixKey][]float64
}

var mixIntern [mixInternShards]mixInternShard

// shard hashes the key through the splitmix64 finalizer.
func (k mixKey) shard() *mixInternShard {
	h := randx.Mix64(uint64(k.fastCount)<<32 ^ uint64(k.slowCount) ^ k.aBits)
	h = randx.Mix64(h ^ k.bBits)
	return &mixIntern[h%mixInternShards]
}

// internedMixture returns the cumulative mixture weight table for the
// key, computing and interning it on first use.
func internedMixture(k mixKey) []float64 {
	s := k.shard()
	s.mu.RLock()
	cw, ok := s.m[k]
	s.mu.RUnlock()
	if ok {
		return cw
	}
	cw = buildMixtureWeights(k)
	s.mu.Lock()
	if prev, ok := s.m[k]; ok {
		// A concurrent builder won the race; share its table (both are
		// identical pure-function values, sharing just saves memory).
		cw = prev
	} else {
		if s.m == nil || len(s.m) >= mixInternPerShard {
			s.m = make(map[mixKey][]float64)
		}
		s.m[k] = cw
	}
	s.mu.Unlock()
	return cw
}

// buildMixtureWeights computes the cumulative negative-binomial mixture
// weights: w₀ = pᵐ; w_{j+1} = w_j·(1−p)·(m+j)/(j+1) with p = b/a,
// accumulated until the remaining tail mass is negligible, the tail
// lumped into the last entry so the table ends at exactly 1 (keeping
// the deep survival tail an exact zero instead of a 1e-15 floor).
func buildMixtureWeights(k mixKey) []float64 {
	a, b := math.Float64frombits(k.aBits), math.Float64frombits(k.bBits)
	prob := b / a
	m := k.slowCount
	w := math.Pow(prob, float64(m))
	total := 0.0
	var cw []float64
	for j := 0; j < mixMaxTerms; j++ {
		total += w
		cw = append(cw, total)
		if 1-total <= mixTailMass {
			break
		}
		w *= (1 - prob) * float64(m+j) / float64(j+1)
		if total+w == total {
			// Roundoff stranded the accumulated mass just above the
			// mixTailMass cutoff while the remaining weights are too
			// small to move it: no later term can terminate the walk,
			// which would otherwise grind out mixMaxTerms ~1e6 dead
			// entries. Stop here; the forced final 1 below lumps the
			// stranded remainder (< a few ULP beyond mixTailMass) the
			// same way the normal cutoff does.
			break
		}
	}
	cw[len(cw)-1] = 1
	return cw
}
