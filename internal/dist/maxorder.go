package dist

import (
	"fmt"
	"math"

	"hputune/internal/numeric"
	"hputune/internal/randx"
)

// MaxOrder is the distribution of the maximum of N iid draws from a base
// distribution — the completion time of a parallel batch of identical
// tasks (Sec 3.2.1 of the paper): F_max(t) = F(t)^N.
type MaxOrder struct {
	N    int
	Base Distribution
}

// NewMaxOrder returns the max-of-n distribution over base.
func NewMaxOrder(n int, base Distribution) (MaxOrder, error) {
	if n < 1 {
		return MaxOrder{}, fmt.Errorf("dist: max order %d must be >= 1", n)
	}
	if base == nil {
		return MaxOrder{}, fmt.Errorf("dist: nil base distribution")
	}
	return MaxOrder{N: n, Base: base}, nil
}

// CDF returns F(t)^N.
func (m MaxOrder) CDF(t float64) float64 { return powN(m.Base.CDF(t), m.N) }

// Sample draws N base values and keeps the largest.
func (m MaxOrder) Sample(r *randx.Rand) float64 {
	best := 0.0
	for i := 0; i < m.N; i++ {
		if v := m.Base.Sample(r); v > best {
			best = v
		}
	}
	return best
}

// Mean returns E[max] via the survival form ∫₀^∞ (1 − F(t)^N) dt — the
// better-conditioned of the two E[max] integrands (the integrand is
// bounded in [0, 1] and needs no density). NaN on integration failure.
func (m MaxOrder) Mean() float64 {
	v, err := MeanOfMax(m.N, m.Base)
	if err != nil {
		return math.NaN()
	}
	return v
}

// MeanDensityForm returns E[max] via the paper's density form
// ∫₀^∞ t·N·F(t)^{N-1}·f(t) dt. It requires the base to expose a PDF and
// exists to benchmark the two integrands against each other; use Mean
// for production estimates. NaN when the base has no closed-form density
// or the integral fails.
func (m MaxOrder) MeanDensityForm() float64 {
	pdf, ok := m.Base.(PDFer)
	if !ok {
		return math.NaN()
	}
	v, err := numeric.IntegrateToInf(func(t float64) float64 {
		return t * float64(m.N) * powN(m.Base.CDF(t), m.N-1) * pdf.PDF(t)
	}, 0, 1e-12)
	if err != nil {
		return math.NaN()
	}
	return v
}

// MeanOfMax returns E[max of n iid draws from d] by the survival-form
// integral ∫₀^∞ (1 − F(t)ⁿ) dt.
func MeanOfMax(n int, d Distribution) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("dist: MeanOfMax order %d must be >= 1", n)
	}
	if d == nil {
		return 0, fmt.Errorf("dist: nil distribution")
	}
	v, err := numeric.IntegrateToInf(func(t float64) float64 {
		f := d.CDF(t)
		if f == 0 {
			return 1
		}
		return 1 - powN(f, n)
	}, 0, 1e-12)
	if err != nil {
		return v, fmt.Errorf("dist: E[max of %d] integral: %w", n, err)
	}
	return v, nil
}

// powN computes x^n for n >= 0 by binary exponentiation.
func powN(x float64, n int) float64 {
	r := 1.0
	for n > 0 {
		if n&1 == 1 {
			r *= x
		}
		x *= x
		n >>= 1
	}
	return r
}
