package dist

import (
	"math"
	"sync"
	"testing"
)

// TestMixtureInternSharing pins that two distributions over the same
// (shape, rates) share one interned weight table, and that interning is
// invisible in the values: CDF/PDF equal a table built directly.
func TestMixtureInternSharing(t *testing.T) {
	d1, err := NewTwoPhaseErlang(5, 3.5, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewTwoPhaseErlang(5, 3.5, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1.mixCW) == 0 {
		t.Fatal("two-rate phase sum did not build a mixture")
	}
	if &d1.mixCW[0] != &d2.mixCW[0] {
		t.Error("identical parameters did not intern to one shared table")
	}
	direct := buildMixtureWeights(mixKey{
		fastCount: 5, slowCount: 5,
		aBits: math.Float64bits(3.5), bBits: math.Float64bits(2.0),
	})
	if len(direct) != len(d1.mixCW) {
		t.Fatalf("interned table has %d entries, direct build %d", len(d1.mixCW), len(direct))
	}
	for i := range direct {
		if direct[i] != d1.mixCW[i] {
			t.Fatalf("interned weight %d = %v, direct build %v", i, d1.mixCW[i], direct[i])
		}
	}
	for _, x := range []float64{0.1, 0.5, 1, 2.5, 5, 10, 40} {
		if d1.CDF(x) != d2.CDF(x) {
			t.Errorf("CDF(%v) differs between interned twins", x)
		}
		if d1.PDF(x) != d2.PDF(x) {
			t.Errorf("PDF(%v) differs between interned twins", x)
		}
	}
}

// TestMixtureInternConcurrent races many builders of overlapping
// parameter sets; every resulting distribution must agree with a
// serially built twin bit for bit.
func TestMixtureInternConcurrent(t *testing.T) {
	type params struct {
		k      int
		ao, pr float64
	}
	var cases []params
	for k := 1; k <= 8; k++ {
		cases = append(cases, params{k, 1.5 + float64(k)*0.25, 2.0})
	}
	want := make([]float64, len(cases))
	for i, c := range cases {
		d, err := NewTwoPhaseErlang(c.k, c.ao, c.pr)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = d.CDF(3.0)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, c := range cases {
				d, err := NewTwoPhaseErlang(c.k, c.ao, c.pr)
				if err != nil {
					t.Error(err)
					return
				}
				if got := d.CDF(3.0); got != want[i] {
					t.Errorf("concurrent build k=%d: CDF = %v, want %v", c.k, got, want[i])
				}
			}
		}()
	}
	wg.Wait()
}

// TestMixtureInternEpochReset fills one shard past capacity and checks
// construction still yields correct tables after the reset.
func TestMixtureInternEpochReset(t *testing.T) {
	// Mint more distinct keys than the whole intern holds.
	total := mixInternShards*mixInternPerShard + 64
	for i := 0; i < total; i++ {
		rate := 1.0 + float64(i)*1e-6
		if _, err := NewTwoPhaseErlang(2, 3.0, rate); err != nil {
			t.Fatal(err)
		}
	}
	// A fresh build after mass eviction still interns and still matches
	// a direct computation.
	d, err := NewTwoPhaseErlang(2, 3.0, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	direct := buildMixtureWeights(mixKey{
		fastCount: 2, slowCount: 2,
		aBits: math.Float64bits(3.0), bBits: math.Float64bits(1.5),
	})
	for i := range direct {
		if d.mixCW[i] != direct[i] {
			t.Fatalf("post-reset weight %d = %v, direct %v", i, d.mixCW[i], direct[i])
		}
	}
}
