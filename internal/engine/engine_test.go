package engine

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"hputune/internal/htuning"
	"hputune/internal/pricing"
)

func batchType(name string, k, b, proc float64) *htuning.TaskType {
	return &htuning.TaskType{Name: name, Accept: pricing.Linear{K: k, B: b}, ProcRate: proc}
}

func batchProblems(n int) []htuning.Problem {
	typA := batchType("a", 1, 1, 2)
	typB := batchType("b", 2, 1, 3)
	problems := make([]htuning.Problem, n)
	for i := range problems {
		problems[i] = htuning.Problem{
			Groups: []htuning.Group{
				{Type: typA, Tasks: 4 + i%3, Reps: 2},
				{Type: typB, Tasks: 3, Reps: 1 + i%2},
			},
			Budget: 120 + 10*i,
		}
	}
	return problems
}

func TestMapOrderAndConcurrency(t *testing.T) {
	var running, peak atomic.Int64
	got, err := Map(50, 8, func(i int) (int, error) {
		cur := running.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		defer running.Add(-1)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("index %d: got %d", i, v)
		}
	}
	if peak.Load() > 8 {
		t.Errorf("pool exceeded bound: peak %d workers", peak.Load())
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := Map(20, 4, func(i int) (int, error) {
		if i == 7 || i == 13 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("lost the cause: %v", err)
	}
	if !strings.Contains(err.Error(), "problem 7") {
		t.Errorf("error %q does not name the lowest failing index", err)
	}
}

func TestSolveBatchMatchesSequential(t *testing.T) {
	problems := batchProblems(8)
	want := make([]htuning.RepetitionResult, len(problems))
	for i, p := range problems {
		r, err := htuning.SolveRepetition(htuning.NewEstimator(), p)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	for _, workers := range []int{1, 4, 0} {
		got, err := SolveBatch(nil, problems, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i].Objective != want[i].Objective {
				t.Errorf("workers=%d problem %d: objective %v vs %v", workers, i, got[i].Objective, want[i].Objective)
			}
			for j := range got[i].Prices {
				if got[i].Prices[j] != want[i].Prices[j] {
					t.Errorf("workers=%d problem %d: prices %v vs %v", workers, i, got[i].Prices, want[i].Prices)
					break
				}
			}
		}
	}
}

func TestSolveHeterogeneousBatchMatchesSequential(t *testing.T) {
	problems := batchProblems(4)
	want := make([]htuning.HeterogeneousResult, len(problems))
	for i, p := range problems {
		r, err := htuning.SolveHeterogeneous(htuning.NewEstimator(), p)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	got, err := SolveHeterogeneousBatch(nil, problems, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Closeness != want[i].Closeness {
			t.Errorf("problem %d: closeness %v vs %v", i, got[i].Closeness, want[i].Closeness)
		}
		for j := range got[i].Prices {
			if got[i].Prices[j] != want[i].Prices[j] {
				t.Errorf("problem %d: prices %v vs %v", i, got[i].Prices, want[i].Prices)
				break
			}
		}
	}
}

func TestSolveBatchSurfacesBadProblem(t *testing.T) {
	problems := batchProblems(3)
	problems[1].Budget = 0 // below MinBudget
	_, err := SolveBatch(nil, problems, Options{Workers: 2})
	if err == nil {
		t.Fatal("invalid problem accepted")
	}
	if !strings.Contains(err.Error(), "problem 1") {
		t.Errorf("error %q does not name the failing problem", err)
	}
}

func TestSimulateBatchDeterministic(t *testing.T) {
	problems := batchProblems(6)
	items := make([]SimulateItem, len(problems))
	for i, p := range problems {
		res, err := htuning.SolveRepetition(htuning.NewEstimator(), p)
		if err != nil {
			t.Fatal(err)
		}
		a, err := htuning.NewUniformAllocation(p, res.Prices)
		if err != nil {
			t.Fatal(err)
		}
		items[i] = SimulateItem{Problem: p, Allocation: a}
	}
	base, err := SimulateBatch(items, htuning.PhaseBoth, 400, 5, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{3, 0} {
		got, err := SimulateBatch(items, htuning.PhaseBoth, 400, 5, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d item %d: %v differs from %v", workers, i, got[i], base[i])
			}
		}
	}
	// Items must not share a stream: identical problems still get
	// distinct per-item seeds.
	if base[0] == base[3] && base[1] == base[4] {
		t.Error("per-item seeds look identical across the batch")
	}
}

func TestMapZeroAndNegative(t *testing.T) {
	got, err := Map(0, 4, func(i int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Errorf("empty batch: %v, %v", got, err)
	}
	if _, err := Map[int](-1, 4, nil); err == nil {
		t.Error("negative batch size accepted")
	}
}
