// Package engine is the concurrent batch layer over the tuning solvers
// and Monte-Carlo simulators: it fans slices of independent H-Tuning
// problems across a bounded worker pool, sharing one concurrency-safe
// Estimator so problems with overlapping (rate, shape) queries reuse
// each other's E[max] integrals.
//
// Every batch function is deterministic: results land in input order,
// per-item seeds are derived only from (seed, index), and the reported
// error is always the lowest-index failure — so a batch run is a pure
// function of its arguments no matter how many workers execute it.
package engine

import (
	"fmt"

	"hputune/internal/conc"
	"hputune/internal/htuning"
	"hputune/internal/randx"
)

// Options configures a batch run.
type Options struct {
	// Workers bounds the batch-level worker pool — how many problems
	// are in flight at once; <= 0 means GOMAXPROCS. Solver-internal
	// concurrency is separate (see SolveBatch).
	Workers int
}

func (o Options) workers() int { return conc.Workers(o.Workers) }

// ResolvedWorkers reports the pool size a batch will actually use once
// defaults are applied. Serving layers expose it so operators can see
// the goroutine budget: admitted requests × resolved workers bounds the
// engine's total concurrency.
func (o Options) ResolvedWorkers() int { return o.workers() }

// Map runs fn(i) for every i in [0, n) on the shared bounded worker
// pool and returns the results in index order. fn must be safe for
// concurrent calls. On failure Map still finishes every item and
// returns the lowest-index error, so the error is deterministic.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("engine: negative batch size %d", n)
	}
	out := make([]T, n)
	if i, err := conc.Each(n, workers, func(i int) error {
		var err error
		out[i], err = fn(i)
		return err
	}); err != nil {
		return out, fmt.Errorf("engine: problem %d: %w", i, err)
	}
	return out, nil
}

// SolveBatch tunes every problem with Algorithm 2 (RA, SolveRepetition)
// on a bounded worker pool. All solves share est (nil gets a fresh one),
// so batches whose problems overlap in task types and price ranges hit
// the memoized integrals instead of recomputing them. Results are in
// problem order.
//
// Each solver keeps its own internal parallelism (the two greedy
// passes, candidate fan-out for problems with many groups), so the
// total goroutine count can exceed Workers; the inner fan-out is gated
// to instances with >= 4 concurrent candidates, so for typical 2-3
// group problems the nesting stays within a small constant factor of
// the pool.
func SolveBatch(est *htuning.Estimator, problems []htuning.Problem, opts Options) ([]htuning.RepetitionResult, error) {
	if est == nil {
		est = htuning.NewEstimator()
	}
	return Map(len(problems), opts.workers(), func(i int) (htuning.RepetitionResult, error) {
		return htuning.SolveRepetition(est, problems[i])
	})
}

// SolveHeterogeneousBatch tunes every problem with Algorithm 3 (HA,
// SolveHeterogeneous) on a bounded worker pool with a shared estimator.
func SolveHeterogeneousBatch(est *htuning.Estimator, problems []htuning.Problem, opts Options) ([]htuning.HeterogeneousResult, error) {
	if est == nil {
		est = htuning.NewEstimator()
	}
	return Map(len(problems), opts.workers(), func(i int) (htuning.HeterogeneousResult, error) {
		return htuning.SolveHeterogeneous(est, problems[i])
	})
}

// SimulateItem pairs one problem with the allocation to score.
type SimulateItem struct {
	Problem    htuning.Problem
	Allocation htuning.Allocation
}

// SimulateBatch scores every (problem, allocation) pair by Monte Carlo
// across a bounded worker pool. Item i's RNG seed derives only from
// (seed, i) — drawn from a single splitmix-seeded stream before the
// fan-out — and each item runs the trial-sharded deterministic
// simulator, so the returned latencies are a pure function of the
// arguments, independent of Workers.
func SimulateBatch(items []SimulateItem, phase htuning.Phase, trials int, seed uint64, opts Options) ([]float64, error) {
	seeds := make([]uint64, len(items))
	base := randx.New(seed)
	for i := range seeds {
		seeds[i] = base.Uint64()
	}
	return Map(len(items), opts.workers(), func(i int) (float64, error) {
		// Workers = 1 inside each item: the batch dimension already
		// saturates the pool, and nested fan-out would oversubscribe.
		return htuning.SimulateJobLatencyParallel(items[i].Problem, items[i].Allocation, phase, trials, seeds[i], 1)
	})
}
