package benchio

import (
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sample() Suite {
	return Suite{
		Suite:       "solvers",
		Package:     "hputune/internal/htuning",
		Description: "solver hot paths",
		Recorded:    "2026-07-27",
		Commit:      "abc1234",
		Environment: CaptureEnvironment(),
		Benchmarks: []Result{
			{Name: "RASolve", Iterations: 100, NsPerOp: 1e6, BytesPerOp: 2048, AllocsPerOp: 12},
			{Name: "HASolve", Iterations: 10, NsPerOp: 9e6, BytesPerOp: 4096, AllocsPerOp: 40, MsPerRound: 0.5},
		},
		Command: "htbench -suite solvers",
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_solvers.json")
	want := sample()
	if err := Write(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestWriteRejectsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.json")
	if err := Write(path, Suite{Suite: "x"}); err == nil {
		t.Error("Write accepted a suite with no benchmarks")
	}
	if err := Write(path, Suite{Benchmarks: []Result{{Name: "a"}}}); err == nil {
		t.Error("Write accepted a suite with no name")
	}
}

// TestReadLegacy pins compatibility with the original hand-written
// BENCH_campaign.json schema: a single nested results object becomes a
// one-benchmark suite.
func TestReadLegacy(t *testing.T) {
	legacy := `{
  "benchmark": "BenchmarkCampaignFleet",
  "package": "hputune/internal/campaign",
  "description": "16 campaigns x 8 rounds",
  "recorded": "2026-07-27",
  "commit_note": "first baseline",
  "environment": {"goos": "linux", "goarch": "amd64", "cpus": 1, "gomaxprocs": 0},
  "results": {
    "iterations": 10,
    "ns_per_op": 102087758,
    "ms_per_round": 0.797,
    "bytes_per_op": 38851516,
    "allocs_per_op": 312027
  },
  "command": "go test -bench CampaignFleet"
}`
	path := filepath.Join(t.TempDir(), "BENCH_campaign.json")
	if err := writeFile(path, legacy); err != nil {
		t.Fatal(err)
	}
	s, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Suite != "CampaignFleet" || len(s.Benchmarks) != 1 {
		t.Fatalf("legacy normalization wrong: %+v", s)
	}
	b := s.Benchmarks[0]
	if b.Name != "CampaignFleet" || b.AllocsPerOp != 312027 || b.MsPerRound != 0.797 {
		t.Errorf("legacy counters lost: %+v", b)
	}
	if s.Commit != "unknown" {
		t.Errorf("legacy commit_note should normalize to %q, got %q", "unknown", s.Commit)
	}
}

func writeFile(path, content string) error {
	return osWriteFile(path, []byte(content))
}

// mustCompare fails the test on Compare's environment-mismatch error;
// these tests build baseline and fresh from the same CaptureEnvironment,
// so a non-nil error is itself a bug.
func mustCompare(t *testing.T, baseline, fresh Suite, tol Tolerance) []Regression {
	t.Helper()
	regs, err := Compare(baseline, fresh, tol)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	return regs
}

func TestCompare(t *testing.T) {
	base := sample()
	tol := Tolerance{MaxNsRatio: 2.0, MaxAllocRatio: 1.5}

	fresh := sample()
	fresh.Benchmarks[0].NsPerOp *= 1.9   // inside tolerance
	fresh.Benchmarks[1].AllocsPerOp = 59 // 1.475x, inside
	if regs := mustCompare(t, base, fresh, tol); len(regs) != 0 {
		t.Errorf("drift inside tolerance flagged: %v", regs)
	}

	fresh = sample()
	fresh.Benchmarks[0].NsPerOp *= 2.5
	fresh.Benchmarks[1].AllocsPerOp = 61 // 1.525x
	regs := mustCompare(t, base, fresh, tol)
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions, got %v", regs)
	}
	if regs[0].Metric != "ns/op" || regs[1].Metric != "allocs/op" {
		t.Errorf("wrong metrics flagged: %v", regs)
	}
	if !strings.Contains(regs[0].String(), "ns/op") {
		t.Errorf("regression string missing metric: %s", regs[0])
	}

	// An improvement is never a regression.
	fresh = sample()
	fresh.Benchmarks[0].NsPerOp /= 10
	fresh.Benchmarks[0].AllocsPerOp = 1
	if regs := mustCompare(t, base, fresh, tol); len(regs) != 0 {
		t.Errorf("improvement flagged: %v", regs)
	}

	// Dropping a baseline benchmark is a regression (lost coverage);
	// adding a fresh one is not.
	fresh = sample()
	fresh.Benchmarks = fresh.Benchmarks[:1]
	fresh.Benchmarks = append(fresh.Benchmarks, Result{Name: "Extra", NsPerOp: 1})
	regs = mustCompare(t, base, fresh, tol)
	if len(regs) != 1 || regs[0].Metric != "missing" || regs[0].Benchmark != "HASolve" {
		t.Errorf("missing benchmark not flagged correctly: %v", regs)
	}
}

// TestCompareRejectsEnvironmentMismatch pins the root-bug guard: a
// baseline recorded at one core count must never be drift-compared
// against a run at another — Compare errors out before reading any
// number, for both a cpus and a GOMAXPROCS disagreement.
func TestCompareRejectsEnvironmentMismatch(t *testing.T) {
	tol := Tolerance{MaxNsRatio: 2.0, MaxAllocRatio: 1.5}

	base := sample()
	fresh := sample()
	fresh.Environment.CPUs = base.Environment.CPUs + 3
	regs, err := Compare(base, fresh, tol)
	if err == nil || !strings.Contains(err.Error(), "environment mismatch") {
		t.Fatalf("cpus mismatch not rejected: regs=%v err=%v", regs, err)
	}
	// The refusal is a typed error: the CI compare command keys its
	// skip-with-notice downgrade on exactly this type.
	var mismatch *EnvMismatchError
	if !errors.As(err, &mismatch) {
		t.Fatalf("mismatch error is %T, want *EnvMismatchError", err)
	}
	if mismatch.Fresh.CPUs != fresh.Environment.CPUs {
		t.Errorf("EnvMismatchError.Fresh.CPUs = %d, want %d", mismatch.Fresh.CPUs, fresh.Environment.CPUs)
	}
	if regs != nil {
		t.Errorf("rejected comparison still produced regressions: %v", regs)
	}

	fresh = sample()
	fresh.Environment.GOMAXPROCS = base.Environment.GOMAXPROCS + 1
	if _, err := Compare(base, fresh, tol); err == nil {
		t.Error("GOMAXPROCS mismatch not rejected")
	}

	// Even a run with gross regressions must fail on the environment,
	// not the numbers: the numbers are meaningless across machines.
	fresh = sample()
	fresh.Environment.CPUs = base.Environment.CPUs + 1
	fresh.Benchmarks[0].NsPerOp *= 100
	if _, err := Compare(base, fresh, tol); err == nil || !strings.Contains(err.Error(), "cpus=") {
		t.Errorf("env mismatch error should name the core counts, got: %v", err)
	}
}

// TestResultWorkersRoundTrip pins the scaling dimension's schema: the
// workers count and speedup survive a write/read cycle, and both are
// omitted from the JSON when zero (pre-scaling baselines stay
// byte-stable).
func TestResultWorkersRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_scaling.json")
	want := sample()
	want.Benchmarks[0].Workers = 4
	want.Benchmarks[0].SpeedupVsSerial = 1.7
	if err := Write(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("workers round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	raw, err := osReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(string(raw), `"workers"`) != 1 {
		t.Errorf("workers should be omitted when zero; file:\n%s", raw)
	}
}

// TestCompareZeroAllocBaseline pins that a zero-alloc baseline stays
// guarded: drift beyond the absolute AllocFloor fails even though a
// ratio over zero is undefined, while jitter within the floor passes.
func TestCompareZeroAllocBaseline(t *testing.T) {
	base := sample()
	base.Benchmarks[0].AllocsPerOp = 0
	tol := Tolerance{MaxNsRatio: 2.0, MaxAllocRatio: 1.5, AllocFloor: 16}

	fresh := sample()
	fresh.Benchmarks[0].AllocsPerOp = 16 // at the floor: jitter, not a regression
	if regs := mustCompare(t, base, fresh, tol); len(regs) != 0 {
		t.Errorf("within-floor drift over a zero baseline flagged: %v", regs)
	}

	fresh = sample()
	fresh.Benchmarks[0].AllocsPerOp = 50 // a real allocation came back
	regs := mustCompare(t, base, fresh, tol)
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("zero-alloc baseline regression not flagged: %v", regs)
	}
	if !math.IsInf(regs[0].Ratio, 1) {
		t.Errorf("ratio over zero baseline should report +Inf, got %v", regs[0].Ratio)
	}

	// The floor also absorbs near-zero jitter on tiny baselines.
	base = sample()
	base.Benchmarks[0].AllocsPerOp = 2
	fresh = sample()
	fresh.Benchmarks[0].AllocsPerOp = 4 // 2x, but under the absolute floor
	if regs := mustCompare(t, base, fresh, tol); len(regs) != 0 {
		t.Errorf("sub-floor jitter on a tiny baseline flagged: %v", regs)
	}
}

func TestCaptureEnvironment(t *testing.T) {
	env := CaptureEnvironment()
	if env.GOOS == "" || env.GOARCH == "" || env.CPUs < 1 || env.GOMAXPROCS < 1 {
		t.Errorf("incomplete environment: %+v", env)
	}
}

// TestFromBenchmarkResult pins the counter conversion and the
// per-round breakdown.
func TestFromBenchmarkResult(t *testing.T) {
	r := benchResult(50, 5*time.Second, 1000, 2_000_000)
	res := FromBenchmarkResult("X", r, 128)
	if res.Iterations != 50 || res.NsPerOp != 1e8 || res.AllocsPerOp != 20 {
		t.Errorf("conversion wrong: %+v", res)
	}
	if want := 1e8 / 128 / 1e6; res.MsPerRound != want {
		t.Errorf("MsPerRound = %v, want %v", res.MsPerRound, want)
	}
	if res := FromBenchmarkResult("X", r, 0); res.MsPerRound != 0 {
		t.Errorf("roundless benchmark got MsPerRound %v", res.MsPerRound)
	}
}
