// Package benchio is the I/O layer of the standing benchmark subsystem:
// the versioned BENCH_<suite>.json trajectory files that record the
// repository's measured performance over time, the environment capture
// they embed, and the tolerance comparison CI uses to smoke-guard
// regressions. cmd/htbench produces the files; make bench-compare (and
// the CI bench job) diffs a freshly measured suite against the
// committed baseline through Compare.
//
// The schema extends the original hand-written BENCH_campaign.json: the
// same environment block and per-benchmark counters (ns_per_op,
// bytes_per_op, allocs_per_op, ms_per_round), with the single "results"
// object generalized to a "benchmarks" list so one suite file records
// several benchmarks. Read still accepts the legacy single-result form
// and normalizes it, so trajectories can span the schema change.
package benchio

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"
)

// Environment describes the machine a suite was measured on — the block
// every BENCH_*.json embeds so a trajectory diff knows when it is
// comparing across machine classes.
type Environment struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPU        string `json:"cpu,omitempty"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Note       string `json:"note,omitempty"`
}

// CaptureEnvironment records the current process's environment. The CPU
// model is read best-effort from /proc/cpuinfo (empty where the
// platform does not expose it).
func CaptureEnvironment() Environment {
	return Environment{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPU:        cpuModel(),
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// cpuModel parses the first "model name" line of /proc/cpuinfo.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}

// Result is one benchmark's measurement inside a suite.
type Result struct {
	// Name is the benchmark's name within the suite ("RASolve",
	// "CampaignFleet", ...).
	Name string `json:"name"`
	// Iterations is b.N of the recorded run.
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// MsPerRound breaks NsPerOp down by the benchmark's inner unit of
	// work (campaign rounds, replication rounds); 0 when the benchmark
	// has no such unit.
	MsPerRound float64 `json:"ms_per_round,omitempty"`
	// Workers is the worker-pool width the benchmark ran with — the
	// scaling suites' independent variable. 0 means the benchmark has no
	// worker dimension (single-threaded or GOMAXPROCS-implicit).
	Workers int `json:"workers,omitempty"`
	// SpeedupVsSerial is this measurement's throughput relative to the
	// same workload at Workers=1 within the same suite run (old ns_per_op
	// / new ns_per_op); 0 when not computed. It is what the speedup-vs-
	// workers curves plot.
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
	// Note carries benchmark-specific context for human readers.
	Note string `json:"note,omitempty"`
}

// FromBenchmarkResult converts a testing.Benchmark measurement. rounds
// is the benchmark's inner rounds per iteration for MsPerRound (0 for
// none).
func FromBenchmarkResult(name string, r testing.BenchmarkResult, rounds int) Result {
	res := Result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if rounds > 0 {
		res.MsPerRound = res.NsPerOp / float64(rounds) / 1e6
	}
	return res
}

// Suite is one BENCH_<suite>.json document.
type Suite struct {
	// Suite names the benchmark group ("campaign", "solvers", ...); the
	// file it lives in is BENCH_<suite>.json.
	Suite string `json:"suite"`
	// Package is the Go package the measured code lives in.
	Package string `json:"package"`
	// Description says what one iteration of the suite's benchmarks
	// measures.
	Description string `json:"description"`
	// Recorded is the ISO date the measurement was taken.
	Recorded string `json:"recorded"`
	// Commit is the short hash of the commit the measurement was taken
	// at ("unknown" when not supplied).
	Commit      string      `json:"commit"`
	Environment Environment `json:"environment"`
	Benchmarks  []Result    `json:"benchmarks"`
	// Command reproduces the measurement.
	Command string `json:"command"`
}

// legacySuite is the original hand-written BENCH_campaign.json shape:
// one benchmark, its counters in a nested "results" object, the commit
// recorded as free-form "commit_note".
type legacySuite struct {
	Benchmark   string      `json:"benchmark"`
	Package     string      `json:"package"`
	Description string      `json:"description"`
	Recorded    string      `json:"recorded"`
	CommitNote  string      `json:"commit_note"`
	Environment Environment `json:"environment"`
	Results     *struct {
		Iterations  int     `json:"iterations"`
		NsPerOp     float64 `json:"ns_per_op"`
		MsPerRound  float64 `json:"ms_per_round"`
		BytesPerOp  int64   `json:"bytes_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
	} `json:"results"`
	Command string `json:"command"`
}

// Read loads a suite file, accepting both the current multi-benchmark
// schema and the legacy single-result BENCH_campaign.json form (which
// it normalizes into a one-benchmark Suite).
func Read(path string) (Suite, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Suite{}, err
	}
	var s Suite
	if err := json.Unmarshal(data, &s); err != nil {
		return Suite{}, fmt.Errorf("benchio: %s: %w", path, err)
	}
	if len(s.Benchmarks) > 0 {
		return s, nil
	}
	var l legacySuite
	if err := json.Unmarshal(data, &l); err != nil || l.Results == nil {
		return Suite{}, fmt.Errorf("benchio: %s: no benchmarks and no legacy results block", path)
	}
	return Suite{
		Suite:       strings.TrimPrefix(l.Benchmark, "Benchmark"),
		Package:     l.Package,
		Description: l.Description,
		Recorded:    l.Recorded,
		Commit:      "unknown",
		Environment: l.Environment,
		Benchmarks: []Result{{
			Name:        strings.TrimPrefix(l.Benchmark, "Benchmark"),
			Iterations:  l.Results.Iterations,
			NsPerOp:     l.Results.NsPerOp,
			BytesPerOp:  l.Results.BytesPerOp,
			AllocsPerOp: l.Results.AllocsPerOp,
			MsPerRound:  l.Results.MsPerRound,
		}},
		Command: l.Command,
	}, nil
}

// Write stores the suite as pretty-printed JSON with a trailing newline
// and no HTML escaping (the files are committed; diffs should be
// line-stable and arrows readable).
func Write(path string, s Suite) error {
	if s.Suite == "" {
		return fmt.Errorf("benchio: suite name required")
	}
	if len(s.Benchmarks) == 0 {
		return fmt.Errorf("benchio: suite %q has no benchmarks", s.Suite)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// Tolerance bounds how much a fresh measurement may drift above the
// baseline before Compare reports a regression. Ratios are new/old;
// values <= 1 disable that dimension's check. Only regressions fail —
// improvements are never an error.
type Tolerance struct {
	// MaxNsRatio flags ns/op drift (wall time is machine-sensitive;
	// keep this generous — CI compares a 1-iteration smoke run on a
	// shared runner against a committed baseline).
	MaxNsRatio float64
	// MaxAllocRatio flags allocs/op drift (allocation counts are nearly
	// machine-independent; a tighter bound holds).
	MaxAllocRatio float64
	// NsFloor exempts benchmarks whose baseline ns/op is below it from
	// the wall-time check: at smoke iteration counts, sub-microsecond
	// benchmarks measure timer overhead, not the code. allocs/op is
	// still guarded for them.
	NsFloor float64
	// AllocFloor is the absolute allocs/op a fresh run may always reach
	// before the allocation check fires: the drift limit is
	// max(old·MaxAllocRatio, AllocFloor). It keeps zero- and
	// near-zero-alloc baselines guarded (a ratio over 0 is undefined,
	// and 2→3 allocs is jitter, not a regression) without letting a
	// zero-alloc hot path silently regain real allocation. Zero means
	// no slack.
	AllocFloor int64
}

// EnvMismatchError is Compare's refusal to diff suites whose
// environments disagree on core count. It is a distinct type so callers
// can separate "these files must not be compared" from a drift verdict:
// the library always hard-errors, and the CI-facing compare command
// (cmd/htbench -compare) downgrades exactly this error to a loud
// skip-with-notice — a mismatched runner means the baselines need
// re-recording on that machine class, not that the code regressed.
type EnvMismatchError struct {
	Baseline, Fresh Environment
}

func (e *EnvMismatchError) Error() string {
	return fmt.Sprintf(
		"benchio: environment mismatch: baseline cpus=%d gomaxprocs=%d vs fresh cpus=%d gomaxprocs=%d; "+
			"cross-core-count comparisons are meaningless — re-record the baseline on this machine class",
		e.Baseline.CPUs, e.Baseline.GOMAXPROCS, e.Fresh.CPUs, e.Fresh.GOMAXPROCS)
}

// Regression is one tolerance violation (or structural mismatch) found
// by Compare.
type Regression struct {
	Benchmark string
	Metric    string // "ns/op", "allocs/op" or "missing"
	Old, New  float64
	Ratio     float64
}

// String renders the regression for logs.
func (r Regression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s: present in baseline but not in fresh run", r.Benchmark)
	}
	return fmt.Sprintf("%s: %s %.4g -> %.4g (%.2fx)", r.Benchmark, r.Metric, r.Old, r.New, r.Ratio)
}

// Compare checks every baseline benchmark against the fresh suite and
// returns the regressions: metric drift beyond the tolerance, and
// baseline benchmarks the fresh run no longer measures (silently
// dropped coverage reads as a pass otherwise). Fresh benchmarks absent
// from the baseline are ignored — adding coverage is not a regression.
//
// Compare refuses (with an *EnvMismatchError, before looking at any
// numbers) to diff suites whose environments disagree on cpus or
// GOMAXPROCS: a multi-core run against a single-core baseline measures
// the machine delta, not the code delta, and a drift verdict either way
// is garbage. Re-record the baseline on the comparison machine class
// instead.
func Compare(baseline, fresh Suite, tol Tolerance) ([]Regression, error) {
	if be, fe := baseline.Environment, fresh.Environment; be.CPUs != fe.CPUs || be.GOMAXPROCS != fe.GOMAXPROCS {
		return nil, &EnvMismatchError{Baseline: be, Fresh: fe}
	}
	byName := make(map[string]Result, len(fresh.Benchmarks))
	for _, b := range fresh.Benchmarks {
		byName[b.Name] = b
	}
	var regs []Regression
	for _, old := range baseline.Benchmarks {
		now, ok := byName[old.Name]
		if !ok {
			regs = append(regs, Regression{Benchmark: old.Name, Metric: "missing"})
			continue
		}
		if tol.MaxNsRatio > 1 && old.NsPerOp > tol.NsFloor && old.NsPerOp > 0 {
			if ratio := now.NsPerOp / old.NsPerOp; ratio > tol.MaxNsRatio {
				regs = append(regs, Regression{
					Benchmark: old.Name, Metric: "ns/op",
					Old: old.NsPerOp, New: now.NsPerOp, Ratio: ratio,
				})
			}
		}
		if tol.MaxAllocRatio > 1 {
			limit := float64(old.AllocsPerOp) * tol.MaxAllocRatio
			if floor := float64(tol.AllocFloor); limit < floor {
				limit = floor
			}
			if float64(now.AllocsPerOp) > limit {
				ratio := math.Inf(1)
				if old.AllocsPerOp > 0 {
					ratio = float64(now.AllocsPerOp) / float64(old.AllocsPerOp)
				}
				regs = append(regs, Regression{
					Benchmark: old.Name, Metric: "allocs/op",
					Old: float64(old.AllocsPerOp), New: float64(now.AllocsPerOp), Ratio: ratio,
				})
			}
		}
	}
	return regs, nil
}
