package benchio

import (
	"os"
	"testing"
	"time"
)

// osWriteFile indirects os.WriteFile for the legacy-schema fixture.
func osWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// osReadFile mirrors osWriteFile for raw-JSON assertions.
func osReadFile(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// benchResult fabricates a testing.BenchmarkResult with exact counters.
func benchResult(n int, total time.Duration, allocs, bytes uint64) testing.BenchmarkResult {
	return testing.BenchmarkResult{
		N: n, T: total,
		MemAllocs: allocs, MemBytes: bytes,
	}
}
