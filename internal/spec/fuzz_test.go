package spec

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzParseCampaigns hammers the campaign spec parser — the surface
// both `htune -campaign` and POST /v1/campaigns expose to untrusted
// bytes — with three invariants:
//
//  1. no panic, ever: every failure is a classified error value;
//  2. parsing is deterministic: the same bytes parse to the same
//     configs or the same error, twice;
//  3. strict-parse fixed point: any accepted document, re-marshaled
//     from its decoded form, parses again to identical configs — the
//     canonicalized spec the WAL persists verbatim means exactly what
//     the original bytes meant.
func FuzzParseCampaigns(f *testing.F) {
	seeds := []string{
		// The shapes the engine documents, including every crowd-query
		// regime this parser gates.
		`{"campaign":{"name":"c","roundBudget":100,"budget":1000,"rounds":4,"epsilon":0.05,"seed":7,
		  "prior":{"kind":"linear","k":1,"b":1},
		  "groups":[{"name":"g","tasks":10,"reps":3,"procRate":2,"true":{"kind":"linear","k":2,"b":0.5}}]}}`,
		`{"campaign":{"name":"tk","executor":"crowdquery","roundBudget":300,"budget":6000,"rounds":8,"epsilon":0.05,
		  "prior":{"kind":"linear","k":1,"b":1},
		  "query":{"kind":"topk","items":16,"k":4,"reps":3,"datasetSeed":11,"true":{"kind":"linear","k":2,"b":0.5},"procRate":2}}}`,
		`{"campaign":{"name":"gb","executor":"crowdquery","roundBudget":150,"budget":4000,"rounds":8,"epsilon":0.05,
		  "prior":{"kind":"linear","k":1,"b":1},
		  "query":{"kind":"groupby","items":12,"classes":["bird","boat","bike"],"reps":3,"datasetSeed":12,"true":{"kind":"linear","k":2,"b":0.5},"procRate":2}}}`,
		`{"campaign":{"name":"dl","executor":"crowdquery","roundBudget":300,"budget":6000,"rounds":8,
		  "prior":{"kind":"linear","k":1,"b":1},
		  "query":{"kind":"topk","items":16,"k":4,"true":{"kind":"linear","k":2,"b":0.5},"procRate":2},
		  "deadline":{"makespan":6,"confidence":0.9,"maxPrice":64}}}`,
		`{"campaign":{"name":"rt","executor":"crowdquery","roundBudget":300,"budget":6000,"rounds":8,
		  "prior":{"kind":"linear","k":1,"b":1},
		  "query":{"kind":"topk","items":16,"k":4,"true":{"kind":"linear","k":2,"b":0.5},"procRate":2},
		  "retainer":{"workers":4,"serviceRate":2,"fee":0.5,"share":0.5}}}`,
		`{"campaigns":[{"name":"a","roundBudget":100,"budget":400,"rounds":2,
		  "prior":{"kind":"linear","k":1,"b":1},
		  "groups":[{"name":"g","tasks":5,"reps":2,"procRate":2,"true":{"kind":"linear","k":2,"b":0.5}}]}]}`,
		`{"fleet":{"preset":"paper","seed":1}}`,
		`{"fleet":{"preset":"crowd","seed":3}}`,
		`{"fleet":{"preset":"crowd","seed":3,"index":2}}`,
		// Rejection shapes: redirect hints, mutual exclusions, junk.
		`{"campaign":{"name":"x","executor":"market","query":{"kind":"topk","items":4,"k":1}}}`,
		`{"campaign":{"name":"x","executor":"crowdquery","groups":[{"name":"g"}],
		  "query":{"kind":"topk","items":4,"k":1,"true":{"kind":"linear","k":1,"b":1},"procRate":1}}}`,
		`{"campaign":{"name":"x","executor":"teleport"}}`,
		`{"campaign":{"name":"x","drift":{"kind":"rate","factor":0.9}},"fleet":{"preset":"paper"}}`,
		`{"budget":100,"groups":[]}`,
		`{"fleet":{"preset":"nope","seed":1}}`,
		`{"fleet":{"preset":"crowd","seed":3,"index":-1}}`,
		`{"fleet":{"preset":"crowd","seed":3,"index":99}}`,
		`{}`,
		``,
		`null`,
		`{"campaign":null}`,
		`{"campaigns":[]}`,
		`[1,2,3]`,
		"{\"campaign\":{}} trailing",
		"\x00\xff\xfe",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	opts := BuildOpts{}
	f.Fuzz(func(t *testing.T, raw []byte) {
		cfgs, err := ParseCampaigns(raw, opts)
		cfgs2, err2 := ParseCampaigns(raw, opts)
		if (err == nil) != (err2 == nil) || (err != nil && err.Error() != err2.Error()) {
			t.Fatalf("non-deterministic parse: %v vs %v", err, err2)
		}
		if err != nil {
			if err.Error() == "" {
				t.Fatal("empty error message")
			}
			return
		}
		if !reflect.DeepEqual(cfgs, cfgs2) {
			t.Fatal("non-deterministic configs from one input")
		}
		// Strict-parse fixed point through the document's decoded form.
		var doc campaignDoc
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&doc); err != nil {
			t.Fatalf("accepted input no longer decodes: %v", err)
		}
		canon, err := json.Marshal(doc)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		cfgsCanon, err := ParseCampaigns(canon, opts)
		if err != nil {
			t.Fatalf("canonicalized document rejected: %v\ncanon: %s", err, canon)
		}
		if !reflect.DeepEqual(cfgs, cfgsCanon) {
			t.Fatalf("canonicalization changed meaning\n raw   %s\n canon %s", raw, canon)
		}
	})
}
