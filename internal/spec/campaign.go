package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"hputune/internal/campaign"
	"hputune/internal/market"
	"hputune/internal/workload"
)

// The campaign spec kind describes closed-loop jobs instead of one-shot
// solves: a document whose top level is "campaign" (one), "campaigns" (a
// fleet) or "fleet" (a named preset). It is parsed by ParseCampaigns —
// Parse rejects it, pointing at htune -campaign / POST /v1/campaigns.
//
//	{
//	  "campaign": {
//	    "name": "repe", "roundBudget": 1000, "rounds": 12,
//	    "budget": 8000, "epsilon": 0.05, "seed": 7,
//	    "prior": {"kind": "linear", "k": 1, "b": 1},
//	    "groups": [
//	      {"name": "g3", "tasks": 50, "reps": 3, "procRate": 2.0,
//	       "true": {"kind": "linear", "k": 2, "b": 0.5}}
//	    ],
//	    "drift": {"kind": "rate", "factor": 0.9}
//	  }
//	}
//
// The per-group "true" model is the simulated market's actual behaviour;
// the tuner prices rounds with "prior" until observed traces re-fit it.
// Presets: {"fleet": {"preset": "paper", "seed": 1}} expands to the
// paper's scenario fleet (workload.PaperCampaignFleet) and
// {"fleet": {"preset": "crowd", "seed": 1}} to the crowd-DB query fleet
// (workload.CrowdQueryCampaignFleet).
//
// Crowd-query campaigns set "executor": "crowdquery" and describe the
// query instead of groups (groups are derived from the query plan):
//
//	{
//	  "campaign": {
//	    "name": "topk", "executor": "crowdquery",
//	    "roundBudget": 300, "rounds": 8, "seed": 7,
//	    "prior": {"kind": "linear", "k": 1, "b": 1},
//	    "query": {"kind": "topk", "items": 16, "k": 4, "reps": 3,
//	              "datasetSeed": 11, "procRate": 2,
//	              "true": {"kind": "linear", "k": 2, "b": 0.5}},
//	    "deadline": {"makespan": 6, "confidence": 0.9, "maxPrice": 64},
//	    "retainer": {"workers": 4, "serviceRate": 2, "fee": 0.5,
//	                 "share": 0.5}
//	  }
//	}
//
// "deadline" and "retainer" are optional regimes on any campaign kind:
// the former terminates the loop as slo-infeasible when no price can
// meet the latency SLO under the current belief, the latter serves a
// share of repetitions from a pre-paid standby pool.

// CampaignGroup is the JSON shape of one campaign task group.
type CampaignGroup struct {
	Name     string  `json:"name"`
	Tasks    int     `json:"tasks"`
	Reps     int     `json:"reps"`
	ProcRate float64 `json:"procRate"`
	// True is the marketplace's actual price→rate behaviour (hidden from
	// the tuner, which observes only completion traces).
	True Model `json:"true"`
	// Accuracy is the simulated worker answer accuracy; default 1.
	Accuracy float64 `json:"accuracy"`
}

// CampaignQuery is the JSON shape of a crowd-DB query workload
// (campaign.CrowdQuery): the operator a crowd-query campaign runs every
// round.
type CampaignQuery struct {
	// Kind is "topk" or "groupby".
	Kind  string `json:"kind"`
	Items int    `json:"items"`
	// K is the top-k cut (required for "topk").
	K int `json:"k"`
	// Classes are the latent categories of a "groupby" dataset.
	Classes []string `json:"classes"`
	Reps    int      `json:"reps"`
	ValueLo int      `json:"valueLo"`
	ValueHi int      `json:"valueHi"`
	// DatasetSeed synthesizes the query's item set.
	DatasetSeed uint64 `json:"datasetSeed"`
	// True is the marketplace's actual base acceptance behaviour (hidden
	// from the tuner), damped per difficulty bucket.
	True Model `json:"true"`
	// ProcRate is the base processing rate, damped per difficulty.
	ProcRate float64 `json:"procRate"`
}

// CampaignDeadline is the JSON shape of a latency SLO
// (campaign.DeadlineSLO).
type CampaignDeadline struct {
	Makespan   float64 `json:"makespan"`
	Confidence float64 `json:"confidence"`
	MaxPrice   int     `json:"maxPrice"`
}

// CampaignRetainer is the JSON shape of a retainer pool
// (campaign.RetainerPool).
type CampaignRetainer struct {
	Workers     int     `json:"workers"`
	ServiceRate float64 `json:"serviceRate"`
	Fee         float64 `json:"fee"`
	Share       float64 `json:"share"`
}

// CampaignDrift is the JSON shape of a drift: kind "rate", "shock" or
// "shrink" (see campaign.Drift).
type CampaignDrift struct {
	Kind   string  `json:"kind"`
	Factor float64 `json:"factor"`
	Round  int     `json:"round"`
}

// CampaignSpec is the JSON shape of one closed-loop campaign.
type CampaignSpec struct {
	Name        string          `json:"name"`
	Groups      []CampaignGroup `json:"groups"`
	Prior       Model           `json:"prior"`
	RoundBudget int             `json:"roundBudget"`
	Budget      int             `json:"budget"`
	Rounds      int             `json:"rounds"`
	Epsilon     float64         `json:"epsilon"`
	Seed        uint64          `json:"seed"`
	// Mode is "independent" (default) or "workers" (worker-choice
	// market, requires arrival).
	Mode        string         `json:"mode"`
	Arrival     float64        `json:"arrival"`
	AbandonProb float64        `json:"abandonProb"`
	AbandonRate float64        `json:"abandonRate"`
	Drift       *CampaignDrift `json:"drift"`
	HistoryCap  int            `json:"historyCap"`
	// Executor is "market" (default) or "crowdquery" (requires query,
	// forbids groups).
	Executor string         `json:"executor"`
	Query    *CampaignQuery `json:"query"`
	// Deadline and Retainer are optional campaign regimes (see the
	// package comment above).
	Deadline *CampaignDeadline `json:"deadline"`
	Retainer *CampaignRetainer `json:"retainer"`
}

// FleetSpec names a predefined campaign fleet.
type FleetSpec struct {
	// Preset is the fleet name; "paper" is the Fig-2/Fig-5c scenario
	// fleet with drifted variants, "crowd" the crowd-DB query fleet
	// (top-k, group-by, deadline-SLO, retainer-pool).
	Preset string `json:"preset"`
	// Seed derives every campaign's seed in the preset.
	Seed uint64 `json:"seed"`
	// Index, when set, selects the single campaign at that position
	// (0-based) of the expanded preset. The cluster router uses it to
	// scatter one fleet document across nodes: each node re-expands the
	// preset deterministically from the same seed and keeps exactly its
	// slice, so the scattered campaigns are bit-identical to the ones a
	// single node would have run.
	Index *int `json:"index,omitempty"`
}

// campaignDoc is the top level of a campaign spec document.
type campaignDoc struct {
	Campaign  *CampaignSpec  `json:"campaign"`
	Campaigns []CampaignSpec `json:"campaigns"`
	Fleet     *FleetSpec     `json:"fleet"`
}

// Build materializes the campaign config (defaults are applied by
// campaign.New; this only translates shapes and models).
func (s CampaignSpec) Build(opts BuildOpts) (campaign.Config, error) {
	cfg := campaign.Config{
		Name:        s.Name,
		RoundBudget: s.RoundBudget,
		Budget:      s.Budget,
		MaxRounds:   s.Rounds,
		Epsilon:     s.Epsilon,
		Seed:        s.Seed,
		HistoryCap:  s.HistoryCap,
		Market: campaign.MarketOptions{
			AbandonProb: s.AbandonProb,
			AbandonRate: s.AbandonRate,
		},
	}
	switch s.Mode {
	case "", "independent":
	case "workers":
		cfg.Market.WorkerChoice = true
		cfg.Market.ArrivalRate = s.Arrival
	default:
		return campaign.Config{}, fmt.Errorf("unknown mode %q (want \"independent\" or \"workers\")", s.Mode)
	}
	prior, err := s.Prior.Build(s.Name+"-prior", opts)
	if err != nil {
		return campaign.Config{}, fmt.Errorf("prior: %w", err)
	}
	cfg.Prior = prior
	switch s.Executor {
	case "", "market":
		if s.Query != nil {
			return campaign.Config{}, fmt.Errorf("\"query\" needs \"executor\": \"crowdquery\"")
		}
	case "crowdquery":
		if s.Query == nil {
			return campaign.Config{}, fmt.Errorf("executor \"crowdquery\" needs a \"query\"")
		}
		if len(s.Groups) > 0 {
			return campaign.Config{}, fmt.Errorf("crowd-query campaigns derive groups from the query plan: drop \"groups\"")
		}
		truth, err := s.Query.True.Build(s.Name+"-query", opts)
		if err != nil {
			return campaign.Config{}, fmt.Errorf("query: true model: %w", err)
		}
		cfg.Query = &campaign.CrowdQuery{
			Kind:        s.Query.Kind,
			Items:       s.Query.Items,
			K:           s.Query.K,
			Classes:     s.Query.Classes,
			Reps:        s.Query.Reps,
			ValueLo:     s.Query.ValueLo,
			ValueHi:     s.Query.ValueHi,
			DatasetSeed: s.Query.DatasetSeed,
			Accept:      truth,
			ProcRate:    s.Query.ProcRate,
		}
	default:
		return campaign.Config{}, fmt.Errorf("unknown executor %q (want \"market\" or \"crowdquery\")", s.Executor)
	}
	if s.Deadline != nil {
		cfg.Deadline = &campaign.DeadlineSLO{
			Makespan:   s.Deadline.Makespan,
			Confidence: s.Deadline.Confidence,
			MaxPrice:   s.Deadline.MaxPrice,
		}
	}
	if s.Retainer != nil {
		cfg.Retainer = &campaign.RetainerPool{
			Workers:     s.Retainer.Workers,
			ServiceRate: s.Retainer.ServiceRate,
			Fee:         s.Retainer.Fee,
			Share:       s.Retainer.Share,
		}
	}
	for i, g := range s.Groups {
		truth, err := g.True.Build(g.Name, opts)
		if err != nil {
			return campaign.Config{}, fmt.Errorf("group %d: true model: %w", i, err)
		}
		accuracy := g.Accuracy
		if accuracy == 0 {
			accuracy = 1
		}
		cfg.Groups = append(cfg.Groups, campaign.Group{
			Name:  g.Name,
			Tasks: g.Tasks,
			Reps:  g.Reps,
			Class: &market.TaskClass{
				Name:     g.Name,
				Accept:   truth,
				ProcRate: g.ProcRate,
				Accuracy: accuracy,
			},
		})
	}
	if s.Drift != nil {
		cfg.Drift = campaign.Drift{Kind: s.Drift.Kind, Factor: s.Drift.Factor, Round: s.Drift.Round}
	}
	return cfg, nil
}

// buildFleet expands a named preset, sliced to one campaign when the
// spec pins an index.
func buildFleet(f FleetSpec) ([]campaign.Config, error) {
	var cfgs []campaign.Config
	var err error
	switch f.Preset {
	case "paper":
		cfgs, err = workload.PaperCampaignFleet(f.Seed)
	case "crowd":
		cfgs, err = workload.CrowdQueryCampaignFleet(f.Seed)
	default:
		return nil, fmt.Errorf("unknown fleet preset %q (want \"paper\" or \"crowd\")", f.Preset)
	}
	if err != nil {
		return nil, err
	}
	if f.Index != nil {
		i := *f.Index
		if i < 0 || i >= len(cfgs) {
			return nil, fmt.Errorf("fleet index %d outside [0, %d) for preset %q", i, len(cfgs), f.Preset)
		}
		cfgs = cfgs[i : i+1]
	}
	return cfgs, nil
}

// ParseCampaigns decodes a campaign spec document — exactly one of
// "campaign", "campaigns" or "fleet" at the top level — and materializes
// its campaign configurations in document order. Unknown fields are
// rejected, like Parse. Validation beyond shape (budgets, drift kinds)
// happens in campaign.New so the CLI and the service agree on it.
func ParseCampaigns(raw []byte, opts BuildOpts) ([]campaign.Config, error) {
	var doc campaignDoc
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		for _, key := range []string{"\"budget\"", "\"groups\"", "\"problems\""} {
			if strings.Contains(err.Error(), "unknown field "+key) {
				return nil, fmt.Errorf("parse campaign spec: %w (this is a one-shot solve spec: drop -campaign, or POST it to /v1/solve)", err)
			}
		}
		return nil, fmt.Errorf("parse campaign spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("parse campaign spec: trailing data after the document")
	}
	kinds := 0
	if doc.Campaign != nil {
		kinds++
	}
	if len(doc.Campaigns) > 0 {
		kinds++
	}
	if doc.Fleet != nil {
		kinds++
	}
	if kinds != 1 {
		return nil, fmt.Errorf("campaign spec needs exactly one of \"campaign\", \"campaigns\" or \"fleet\" at the top level")
	}
	switch {
	case doc.Campaign != nil:
		cfg, err := doc.Campaign.Build(opts)
		if err != nil {
			return nil, err
		}
		return []campaign.Config{cfg}, nil
	case doc.Fleet != nil:
		return buildFleet(*doc.Fleet)
	}
	cfgs := make([]campaign.Config, len(doc.Campaigns))
	for i, s := range doc.Campaigns {
		cfg, err := s.Build(opts)
		if err != nil {
			return nil, fmt.Errorf("campaign %d: %w", i, err)
		}
		cfgs[i] = cfg
	}
	return cfgs, nil
}

// LoadCampaigns reads and parses a campaign spec file.
func LoadCampaigns(path string, opts BuildOpts) ([]campaign.Config, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfgs, err := ParseCampaigns(raw, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cfgs, nil
}
