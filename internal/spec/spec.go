// Package spec parses the JSON problem-spec format shared by the htune
// CLI and the htuned service, so a spec file tuned locally can be POSTed
// to the service unchanged. A spec is either a single H-Tuning instance
// (top-level "budget" and "groups") or a batch (top-level "problems"
// array of single instances); the two shapes are mutually exclusive and
// batches do not nest.
//
//	{
//	  "budget": 1000,
//	  "groups": [
//	    {"name": "sort-vote", "tasks": 50, "reps": 3, "procRate": 2.0,
//	     "model": {"kind": "linear", "k": 1, "b": 1}}
//	  ]
//	}
//
// Model kinds: "linear" (k, b), "quadratic", "log", "table" (points:
// {"price": rate, ...}) and "fitted" — the rate model the htuned service
// has inferred from ingested traces (rejected outside the service, or
// before any fit exists).
package spec

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hputune/internal/htuning"
	"hputune/internal/pricing"
)

// ErrMixedShapes rejects a document that is both a single instance and
// a batch — the one shape rule shared with request formats (like the
// service's simulate body) that embed the single-vs-batch convention.
var ErrMixedShapes = errors.New("spec mixes a top-level problem with a \"problems\" array; use one or the other")

// Model is the JSON shape of a price→rate model.
type Model struct {
	Kind   string             `json:"kind"`
	K      float64            `json:"k"`
	B      float64            `json:"b"`
	Points map[string]float64 `json:"points"`
}

// Group is the JSON shape of one task group.
type Group struct {
	Name     string  `json:"name"`
	Tasks    int     `json:"tasks"`
	Reps     int     `json:"reps"`
	ProcRate float64 `json:"procRate"`
	Model    Model   `json:"model"`
}

// Problem is the JSON shape of a spec file: either a single instance
// (Budget, Groups) or a batch (Problems).
type Problem struct {
	Budget int     `json:"budget"`
	Groups []Group `json:"groups"`
	// Problems, when non-empty, makes the spec a batch of instances.
	Problems []Problem `json:"problems"`
}

// BuildOpts resolves spec constructs that need out-of-band context.
type BuildOpts struct {
	// Fitted backs the "fitted" model kind — the htuned service passes
	// its current trace-inferred rate model here. In a cluster this is
	// the merged model the router's fit exchange published from the
	// union of every node's ingest partition, so a "fitted" spec prices
	// identically regardless of which node solves it. When nil, "fitted"
	// specs are rejected with an explanatory error.
	Fitted pricing.RateModel
}

// Build materializes the model. name labels table models in output.
func (m Model) Build(name string, opts BuildOpts) (pricing.RateModel, error) {
	switch m.Kind {
	case "linear":
		return pricing.Linear{K: m.K, B: m.B}, nil
	case "quadratic":
		return pricing.Quadratic{}, nil
	case "log":
		return pricing.Logarithmic{}, nil
	case "table":
		points := make(map[float64]float64, len(m.Points))
		for k, v := range m.Points {
			// ParseFloat, not Sscanf: the whole key must be the number,
			// so a typo like "1,5" fails loudly instead of misparsing
			// as price 1.
			price, err := strconv.ParseFloat(k, 64)
			if err != nil {
				return nil, fmt.Errorf("bad table price %q: %w", k, err)
			}
			points[price] = v
		}
		return pricing.NewTable(name, points)
	case "fitted":
		if opts.Fitted == nil {
			return nil, fmt.Errorf("model kind \"fitted\" needs a trace-inferred fit: ingest traces into htuned first (the htune CLI has no fit)")
		}
		return opts.Fitted, nil
	}
	return nil, fmt.Errorf("unknown model kind %q (want linear, quadratic, log, table or fitted)", m.Kind)
}

// Build materializes a single-instance spec into a solver problem.
func (s Problem) Build(opts BuildOpts) (htuning.Problem, error) {
	p := htuning.Problem{Budget: s.Budget}
	for i, g := range s.Groups {
		model, err := g.Model.Build(g.Name, opts)
		if err != nil {
			return htuning.Problem{}, fmt.Errorf("group %d: %w", i, err)
		}
		p.Groups = append(p.Groups, htuning.Group{
			Type:  &htuning.TaskType{Name: g.Name, Accept: model, ProcRate: g.ProcRate},
			Tasks: g.Tasks,
			Reps:  g.Reps,
		})
	}
	return p, nil
}

// Parse decodes a spec document and materializes its problems. Unknown
// fields are rejected — a typoed key ("procrate") must fail loudly, and
// the CLI and the htuned service must agree on what a valid spec is.
// batch reports whether the document used the top-level "problems"
// array — a one-element batch still runs (and prints) in batch mode, so
// generated specs behave uniformly.
func Parse(raw []byte, opts BuildOpts) (problems []htuning.Problem, batch bool, err error) {
	var s Problem
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		for _, key := range []string{"\"campaign\"", "\"campaigns\"", "\"fleet\""} {
			if strings.Contains(err.Error(), "unknown field "+key) {
				return nil, false, fmt.Errorf("parse spec: %w (this is a campaign spec: run htune -campaign or POST it to /v1/campaigns)", err)
			}
		}
		return nil, false, fmt.Errorf("parse spec: %w", err)
	}
	if dec.More() {
		return nil, false, fmt.Errorf("parse spec: trailing data after the spec document")
	}
	return s.Materialize(opts)
}

// Materialize turns an already-decoded spec document into solver
// problems, enforcing the single-vs-batch shape rules.
func (s Problem) Materialize(opts BuildOpts) (problems []htuning.Problem, batch bool, err error) {
	if len(s.Problems) > 0 {
		if len(s.Groups) > 0 || s.Budget != 0 {
			return nil, false, ErrMixedShapes
		}
		problems = make([]htuning.Problem, len(s.Problems))
		for i, ps := range s.Problems {
			if len(ps.Problems) > 0 {
				return nil, false, fmt.Errorf("problem %d: nested \"problems\" arrays are not supported", i)
			}
			if len(ps.Groups) == 0 {
				return nil, false, fmt.Errorf("problem %d: no groups", i)
			}
			p, err := ps.Build(opts)
			if err != nil {
				return nil, false, fmt.Errorf("problem %d: %w", i, err)
			}
			problems[i] = p
		}
		return problems, true, nil
	}
	if len(s.Groups) == 0 {
		return nil, false, fmt.Errorf("spec has no groups and no problems")
	}
	p, err := s.Build(opts)
	if err != nil {
		return nil, false, err
	}
	return []htuning.Problem{p}, false, nil
}

// Load reads and parses a spec file.
func Load(path string, opts BuildOpts) (problems []htuning.Problem, batch bool, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	problems, batch, err = Parse(raw, opts)
	if err != nil {
		return nil, false, fmt.Errorf("%s: %w", path, err)
	}
	return problems, batch, nil
}
