package spec

import (
	"strings"
	"testing"

	"hputune/internal/pricing"
)

const singleDoc = `{
  "budget": 100,
  "groups": [
    {"name": "a", "tasks": 2, "reps": 2, "procRate": 2.0,
     "model": {"kind": "linear", "k": 1, "b": 1}},
    {"name": "b", "tasks": 3, "reps": 1, "procRate": 3.0,
     "model": {"kind": "table", "points": {"1": 2, "5": 10}}}
  ]
}`

func TestParseSingle(t *testing.T) {
	problems, batch, err := Parse([]byte(singleDoc), BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if batch {
		t.Error("single spec reported as batch")
	}
	if len(problems) != 1 {
		t.Fatalf("got %d problems", len(problems))
	}
	p := problems[0]
	if p.Budget != 100 || len(p.Groups) != 2 {
		t.Fatalf("bad problem: %+v", p)
	}
	if got := p.Groups[0].Type.Accept.Rate(3); got != 4 {
		t.Errorf("linear model rate(3) = %v, want 4", got)
	}
	if got := p.Groups[1].Type.Accept.Rate(5); got != 10 {
		t.Errorf("table model rate(5) = %v, want 10", got)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("built problem invalid: %v", err)
	}
}

func TestParseBatch(t *testing.T) {
	doc := `{"problems": [
	  {"budget": 20, "groups": [{"name":"a","tasks":2,"reps":2,"procRate":1,"model":{"kind":"log"}}]},
	  {"budget": 30, "groups": [{"name":"b","tasks":3,"reps":2,"procRate":1,"model":{"kind":"quadratic"}}]}
	]}`
	problems, batch, err := Parse([]byte(doc), BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !batch || len(problems) != 2 {
		t.Fatalf("batch=%v problems=%d", batch, len(problems))
	}
	if problems[0].Budget != 20 || problems[1].Budget != 30 {
		t.Errorf("budgets out of order: %d, %d", problems[0].Budget, problems[1].Budget)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, doc, want string }{
		{"garbage", `{`, "parse spec"},
		{"empty", `{}`, "no groups and no problems"},
		{"mixed", `{"budget": 1, "groups": [{"name":"a"}], "problems": [{}]}`, "mixes a top-level problem"},
		{"nested", `{"problems": [{"problems": [{}]}]}`, "nested"},
		{"batch empty problem", `{"problems": [{"budget": 5}]}`, "problem 0: no groups"},
		{"bad model", `{"budget": 5, "groups": [{"name":"a","tasks":1,"reps":1,"procRate":1,"model":{"kind":"zzz"}}]}`, "unknown model kind"},
		{"unknown field", `{"budget": 5, "procrate": 1, "groups": [{"name":"a","tasks":1,"reps":1,"procRate":1,"model":{"kind":"log"}}]}`, "unknown field"},
		{"trailing data", `{"budget": 5, "groups": [{"name":"a","tasks":1,"reps":1,"procRate":1,"model":{"kind":"log"}}]} {"budget": 9}`, "trailing data"},
		{"bad table price", `{"budget": 5, "groups": [{"name":"a","tasks":1,"reps":1,"procRate":1,"model":{"kind":"table","points":{"abc":1}}}]}`, "bad table price"},
		{"table price trailing junk", `{"budget": 5, "groups": [{"name":"a","tasks":1,"reps":1,"procRate":1,"model":{"kind":"table","points":{"1,5":3}}}]}`, "bad table price"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Parse([]byte(tc.doc), BuildOpts{})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestFittedModelKind(t *testing.T) {
	doc := `{"budget": 10, "groups": [{"name":"a","tasks":2,"reps":1,"procRate":1,"model":{"kind":"fitted"}}]}`
	if _, _, err := Parse([]byte(doc), BuildOpts{}); err == nil {
		t.Error("fitted kind accepted without a fit")
	}
	problems, _, err := Parse([]byte(doc), BuildOpts{Fitted: pricing.Linear{K: 2, B: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := problems[0].Groups[0].Type.Accept.Rate(3); got != 7 {
		t.Errorf("fitted rate(3) = %v, want 7", got)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, _, err := Load("definitely-absent.json", BuildOpts{}); err == nil {
		t.Error("missing file accepted")
	}
}
