package spec

import (
	"fmt"
	"strings"
	"testing"

	"hputune/internal/campaign"
)

const oneCampaign = `{
  "campaign": {
    "name": "c", "roundBudget": 100, "rounds": 4, "budget": 400,
    "epsilon": 0.1, "seed": 9, "historyCap": 2,
    "prior": {"kind": "linear", "k": 1, "b": 1},
    "groups": [
      {"name": "g", "tasks": 5, "reps": 2, "procRate": 2.0, "accuracy": 0.8,
       "true": {"kind": "quadratic"}}
    ],
    "drift": {"kind": "shock", "factor": 0.5, "round": 2}
  }
}`

func TestParseCampaignSingle(t *testing.T) {
	cfgs, err := ParseCampaigns([]byte(oneCampaign), BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 1 {
		t.Fatalf("%d configs", len(cfgs))
	}
	cfg := cfgs[0]
	if cfg.Name != "c" || cfg.RoundBudget != 100 || cfg.MaxRounds != 4 || cfg.Budget != 400 ||
		cfg.Epsilon != 0.1 || cfg.Seed != 9 || cfg.HistoryCap != 2 {
		t.Fatalf("config %+v", cfg)
	}
	if len(cfg.Groups) != 1 || cfg.Groups[0].Tasks != 5 || cfg.Groups[0].Reps != 2 {
		t.Fatalf("groups %+v", cfg.Groups)
	}
	cls := cfg.Groups[0].Class
	if cls.Accuracy != 0.8 || cls.ProcRate != 2.0 || cls.Accept.Name() != "1+p^2" {
		t.Fatalf("class %+v", cls)
	}
	if cfg.Prior.Name() != "p+1" {
		t.Fatalf("prior %q", cfg.Prior.Name())
	}
	if cfg.Drift != (campaign.Drift{Kind: "shock", Factor: 0.5, Round: 2}) {
		t.Fatalf("drift %+v", cfg.Drift)
	}
	// The parsed config must be accepted verbatim by the engine.
	if _, err := campaign.New(nil, cfg); err != nil {
		t.Fatalf("campaign.New: %v", err)
	}
}

func TestParseCampaignModes(t *testing.T) {
	doc := `{"campaign": {"name": "w", "roundBudget": 10, "mode": "workers", "arrival": 4,
	  "prior": {"kind": "linear", "k": 1, "b": 1},
	  "groups": [{"name": "g", "tasks": 2, "reps": 2, "procRate": 1, "true": {"kind": "linear", "k": 1, "b": 1}}]}}`
	cfgs, err := ParseCampaigns([]byte(doc), BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !cfgs[0].Market.WorkerChoice || cfgs[0].Market.ArrivalRate != 4 {
		t.Fatalf("market %+v", cfgs[0].Market)
	}
	if _, err := ParseCampaigns([]byte(strings.Replace(doc, "workers", "psychic", 1)), BuildOpts{}); err == nil || !strings.Contains(err.Error(), "unknown mode") {
		t.Fatalf("bad mode: %v", err)
	}
}

func TestParseCampaignFleetPreset(t *testing.T) {
	cfgs, err := ParseCampaigns([]byte(`{"fleet": {"preset": "paper", "seed": 3}}`), BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) < 8 {
		t.Fatalf("paper preset has %d campaigns", len(cfgs))
	}
	if _, err := ParseCampaigns([]byte(`{"fleet": {"preset": "imaginary"}}`), BuildOpts{}); err == nil || !strings.Contains(err.Error(), "unknown fleet preset") {
		t.Fatalf("unknown preset: %v", err)
	}
}

// TestParseCampaignFleetIndex pins the router's scatter contract: a
// fleet spec with an index expands to exactly the campaign a full
// expansion would place at that position.
func TestParseCampaignFleetIndex(t *testing.T) {
	full, err := ParseCampaigns([]byte(`{"fleet": {"preset": "paper", "seed": 3}}`), BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range full {
		doc := fmt.Sprintf(`{"fleet": {"preset": "paper", "seed": 3, "index": %d}}`, i)
		one, err := ParseCampaigns([]byte(doc), BuildOpts{})
		if err != nil {
			t.Fatalf("index %d: %v", i, err)
		}
		if len(one) != 1 {
			t.Fatalf("index %d expanded to %d campaigns, want 1", i, len(one))
		}
		if one[0].Name != full[i].Name || one[0].Seed != full[i].Seed {
			t.Fatalf("index %d: got %q seed %d, want %q seed %d", i, one[0].Name, one[0].Seed, full[i].Name, full[i].Seed)
		}
	}
	for _, bad := range []int{-1, len(full)} {
		doc := fmt.Sprintf(`{"fleet": {"preset": "paper", "seed": 3, "index": %d}}`, bad)
		if _, err := ParseCampaigns([]byte(doc), BuildOpts{}); err == nil || !strings.Contains(err.Error(), "fleet index") {
			t.Fatalf("index %d: %v", bad, err)
		}
	}
}

func TestParseCampaignRejections(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"empty", `{}`, "exactly one of"},
		{"two kinds", `{"campaign": {"name": "a"}, "fleet": {"preset": "paper"}}`, "exactly one of"},
		{"unknown field", `{"campaign": {"name": "a", "rate": 2}}`, "unknown field"},
		{"solve spec", `{"budget": 10, "groups": []}`, "drop -campaign"},
		{"trailing", `{"fleet": {"preset": "paper"}} {}`, "trailing data"},
		{"bad prior", `{"campaign": {"name": "a", "roundBudget": 1, "prior": {"kind": "x"}, "groups": [{"name": "g", "tasks": 1, "reps": 1, "procRate": 1, "true": {"kind": "linear"}}]}}`, "prior"},
		{"bad true model", `{"campaign": {"name": "a", "roundBudget": 1, "prior": {"kind": "linear", "k": 1, "b": 1}, "groups": [{"name": "g", "tasks": 1, "reps": 1, "procRate": 1, "true": {"kind": "x"}}]}}`, "true model"},
		{"fleet campaign error is indexed", `{"campaigns": [
		   {"name": "ok", "roundBudget": 4, "prior": {"kind": "linear", "k": 1, "b": 1}, "groups": [{"name": "g", "tasks": 2, "reps": 2, "procRate": 1, "true": {"kind": "linear", "k": 1, "b": 1}}]},
		   {"name": "bad", "roundBudget": 4, "prior": {"kind": "nope"}, "groups": [{"name": "g", "tasks": 2, "reps": 2, "procRate": 1, "true": {"kind": "linear", "k": 1, "b": 1}}]}]}`, "campaign 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseCampaigns([]byte(tc.doc), BuildOpts{}); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not mention %q", err, tc.want)
			}
		})
	}
}

// TestSolveParseHintsAtCampaigns pins the cross-kind redirect in Parse.
func TestSolveParseHintsAtCampaigns(t *testing.T) {
	if _, _, err := Parse([]byte(oneCampaign), BuildOpts{}); err == nil || !strings.Contains(err.Error(), "htune -campaign") {
		t.Fatalf("Parse on a campaign spec: %v", err)
	}
}
