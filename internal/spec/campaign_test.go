package spec

import (
	"fmt"
	"strings"
	"testing"

	"hputune/internal/campaign"
)

const oneCampaign = `{
  "campaign": {
    "name": "c", "roundBudget": 100, "rounds": 4, "budget": 400,
    "epsilon": 0.1, "seed": 9, "historyCap": 2,
    "prior": {"kind": "linear", "k": 1, "b": 1},
    "groups": [
      {"name": "g", "tasks": 5, "reps": 2, "procRate": 2.0, "accuracy": 0.8,
       "true": {"kind": "quadratic"}}
    ],
    "drift": {"kind": "shock", "factor": 0.5, "round": 2}
  }
}`

func TestParseCampaignSingle(t *testing.T) {
	cfgs, err := ParseCampaigns([]byte(oneCampaign), BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 1 {
		t.Fatalf("%d configs", len(cfgs))
	}
	cfg := cfgs[0]
	if cfg.Name != "c" || cfg.RoundBudget != 100 || cfg.MaxRounds != 4 || cfg.Budget != 400 ||
		cfg.Epsilon != 0.1 || cfg.Seed != 9 || cfg.HistoryCap != 2 {
		t.Fatalf("config %+v", cfg)
	}
	if len(cfg.Groups) != 1 || cfg.Groups[0].Tasks != 5 || cfg.Groups[0].Reps != 2 {
		t.Fatalf("groups %+v", cfg.Groups)
	}
	cls := cfg.Groups[0].Class
	if cls.Accuracy != 0.8 || cls.ProcRate != 2.0 || cls.Accept.Name() != "1+p^2" {
		t.Fatalf("class %+v", cls)
	}
	if cfg.Prior.Name() != "p+1" {
		t.Fatalf("prior %q", cfg.Prior.Name())
	}
	if cfg.Drift != (campaign.Drift{Kind: "shock", Factor: 0.5, Round: 2}) {
		t.Fatalf("drift %+v", cfg.Drift)
	}
	// The parsed config must be accepted verbatim by the engine.
	if _, err := campaign.New(nil, cfg); err != nil {
		t.Fatalf("campaign.New: %v", err)
	}
}

func TestParseCampaignModes(t *testing.T) {
	doc := `{"campaign": {"name": "w", "roundBudget": 10, "mode": "workers", "arrival": 4,
	  "prior": {"kind": "linear", "k": 1, "b": 1},
	  "groups": [{"name": "g", "tasks": 2, "reps": 2, "procRate": 1, "true": {"kind": "linear", "k": 1, "b": 1}}]}}`
	cfgs, err := ParseCampaigns([]byte(doc), BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !cfgs[0].Market.WorkerChoice || cfgs[0].Market.ArrivalRate != 4 {
		t.Fatalf("market %+v", cfgs[0].Market)
	}
	if _, err := ParseCampaigns([]byte(strings.Replace(doc, "workers", "psychic", 1)), BuildOpts{}); err == nil || !strings.Contains(err.Error(), "unknown mode") {
		t.Fatalf("bad mode: %v", err)
	}
}

func TestParseCampaignFleetPreset(t *testing.T) {
	cfgs, err := ParseCampaigns([]byte(`{"fleet": {"preset": "paper", "seed": 3}}`), BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) < 8 {
		t.Fatalf("paper preset has %d campaigns", len(cfgs))
	}
	if _, err := ParseCampaigns([]byte(`{"fleet": {"preset": "imaginary"}}`), BuildOpts{}); err == nil || !strings.Contains(err.Error(), "unknown fleet preset") {
		t.Fatalf("unknown preset: %v", err)
	}
}

// TestParseCampaignFleetIndex pins the router's scatter contract: a
// fleet spec with an index expands to exactly the campaign a full
// expansion would place at that position.
func TestParseCampaignFleetIndex(t *testing.T) {
	full, err := ParseCampaigns([]byte(`{"fleet": {"preset": "paper", "seed": 3}}`), BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range full {
		doc := fmt.Sprintf(`{"fleet": {"preset": "paper", "seed": 3, "index": %d}}`, i)
		one, err := ParseCampaigns([]byte(doc), BuildOpts{})
		if err != nil {
			t.Fatalf("index %d: %v", i, err)
		}
		if len(one) != 1 {
			t.Fatalf("index %d expanded to %d campaigns, want 1", i, len(one))
		}
		if one[0].Name != full[i].Name || one[0].Seed != full[i].Seed {
			t.Fatalf("index %d: got %q seed %d, want %q seed %d", i, one[0].Name, one[0].Seed, full[i].Name, full[i].Seed)
		}
	}
	for _, bad := range []int{-1, len(full)} {
		doc := fmt.Sprintf(`{"fleet": {"preset": "paper", "seed": 3, "index": %d}}`, bad)
		if _, err := ParseCampaigns([]byte(doc), BuildOpts{}); err == nil || !strings.Contains(err.Error(), "fleet index") {
			t.Fatalf("index %d: %v", bad, err)
		}
	}
}

func TestParseCampaignRejections(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"empty", `{}`, "exactly one of"},
		{"two kinds", `{"campaign": {"name": "a"}, "fleet": {"preset": "paper"}}`, "exactly one of"},
		{"unknown field", `{"campaign": {"name": "a", "rate": 2}}`, "unknown field"},
		{"solve spec", `{"budget": 10, "groups": []}`, "drop -campaign"},
		{"trailing", `{"fleet": {"preset": "paper"}} {}`, "trailing data"},
		{"bad prior", `{"campaign": {"name": "a", "roundBudget": 1, "prior": {"kind": "x"}, "groups": [{"name": "g", "tasks": 1, "reps": 1, "procRate": 1, "true": {"kind": "linear"}}]}}`, "prior"},
		{"bad true model", `{"campaign": {"name": "a", "roundBudget": 1, "prior": {"kind": "linear", "k": 1, "b": 1}, "groups": [{"name": "g", "tasks": 1, "reps": 1, "procRate": 1, "true": {"kind": "x"}}]}}`, "true model"},
		{"fleet campaign error is indexed", `{"campaigns": [
		   {"name": "ok", "roundBudget": 4, "prior": {"kind": "linear", "k": 1, "b": 1}, "groups": [{"name": "g", "tasks": 2, "reps": 2, "procRate": 1, "true": {"kind": "linear", "k": 1, "b": 1}}]},
		   {"name": "bad", "roundBudget": 4, "prior": {"kind": "nope"}, "groups": [{"name": "g", "tasks": 2, "reps": 2, "procRate": 1, "true": {"kind": "linear", "k": 1, "b": 1}}]}]}`, "campaign 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseCampaigns([]byte(tc.doc), BuildOpts{}); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not mention %q", err, tc.want)
			}
		})
	}
}

// TestSolveParseHintsAtCampaigns pins the cross-kind redirect in Parse.
func TestSolveParseHintsAtCampaigns(t *testing.T) {
	if _, _, err := Parse([]byte(oneCampaign), BuildOpts{}); err == nil || !strings.Contains(err.Error(), "htune -campaign") {
		t.Fatalf("Parse on a campaign spec: %v", err)
	}
}

const crowdCampaign = `{
  "campaign": {
    "name": "tk", "executor": "crowdquery",
    "roundBudget": 300, "budget": 6000, "rounds": 8, "epsilon": 0.05, "seed": 4,
    "prior": {"kind": "linear", "k": 1, "b": 1},
    "query": {"kind": "topk", "items": 16, "k": 4, "reps": 3, "datasetSeed": 11,
              "true": {"kind": "linear", "k": 2, "b": 0.5}, "procRate": 2},
    "deadline": {"makespan": 6, "confidence": 0.9, "maxPrice": 64},
    "retainer": {"workers": 4, "serviceRate": 2, "fee": 0.5, "share": 0.5}
  }
}`

func TestParseCrowdQueryCampaign(t *testing.T) {
	cfgs, err := ParseCampaigns([]byte(crowdCampaign), BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cfgs[0]
	q := cfg.Query
	if q == nil {
		t.Fatal("no query translated")
	}
	if q.Kind != "topk" || q.Items != 16 || q.K != 4 || q.Reps != 3 || q.DatasetSeed != 11 ||
		q.ProcRate != 2 || q.Accept.Name() != "2p+0.5" {
		t.Fatalf("query %+v (accept %q)", *q, q.Accept.Name())
	}
	if cfg.Deadline == nil || *cfg.Deadline != (campaign.DeadlineSLO{Makespan: 6, Confidence: 0.9, MaxPrice: 64}) {
		t.Fatalf("deadline %+v", cfg.Deadline)
	}
	if cfg.Retainer == nil || *cfg.Retainer != (campaign.RetainerPool{Workers: 4, ServiceRate: 2, Fee: 0.5, Share: 0.5}) {
		t.Fatalf("retainer %+v", cfg.Retainer)
	}
	if len(cfg.Groups) != 0 {
		t.Fatalf("spec-level groups %+v on a crowd-query campaign", cfg.Groups)
	}
	// The parsed config must be accepted verbatim by the engine, which
	// derives the groups from the query plan.
	c, err := campaign.New(nil, cfg)
	if err != nil {
		t.Fatalf("campaign.New: %v", err)
	}
	_ = c
}

func TestParseCrowdQueryRejections(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"query without executor", `{"campaign": {"name": "x",
		   "prior": {"kind": "linear", "k": 1, "b": 1},
		   "query": {"kind": "topk", "items": 4, "k": 1, "true": {"kind": "linear", "k": 1, "b": 1}, "procRate": 1}}}`,
			`"query" needs "executor": "crowdquery"`},
		{"query with market executor", `{"campaign": {"name": "x", "executor": "market",
		   "prior": {"kind": "linear", "k": 1, "b": 1},
		   "query": {"kind": "topk", "items": 4, "k": 1, "true": {"kind": "linear", "k": 1, "b": 1}, "procRate": 1}}}`,
			`"query" needs "executor": "crowdquery"`},
		{"crowdquery without query", `{"campaign": {"name": "x", "executor": "crowdquery",
		   "prior": {"kind": "linear", "k": 1, "b": 1}}}`,
			`executor "crowdquery" needs a "query"`},
		{"crowdquery with groups", `{"campaign": {"name": "x", "executor": "crowdquery",
		   "prior": {"kind": "linear", "k": 1, "b": 1},
		   "query": {"kind": "topk", "items": 4, "k": 1, "true": {"kind": "linear", "k": 1, "b": 1}, "procRate": 1},
		   "groups": [{"name": "g", "tasks": 1, "reps": 1, "procRate": 1, "true": {"kind": "linear", "k": 1, "b": 1}}]}}`,
			`drop "groups"`},
		{"unknown executor", `{"campaign": {"name": "x", "executor": "teleport",
		   "prior": {"kind": "linear", "k": 1, "b": 1}}}`,
			"unknown executor"},
		{"bad query true model", `{"campaign": {"name": "x", "executor": "crowdquery",
		   "prior": {"kind": "linear", "k": 1, "b": 1},
		   "query": {"kind": "topk", "items": 4, "k": 1, "true": {"kind": "nope"}, "procRate": 1}}}`,
			"query: true model"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseCampaigns([]byte(tc.doc), BuildOpts{}); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseCrowdFleetPreset: the "crowd" preset expands to the four
// crowd-DB campaigns and slices by index exactly like "paper" — the
// property the cluster router's scatter relies on.
func TestParseCrowdFleetPreset(t *testing.T) {
	full, err := ParseCampaigns([]byte(`{"fleet": {"preset": "crowd", "seed": 3}}`), BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 4 {
		t.Fatalf("crowd preset has %d campaigns, want 4", len(full))
	}
	wantNames := []string{"crowd-topk", "crowd-groupby", "crowd-deadline", "crowd-retainer"}
	for i, cfg := range full {
		if cfg.Name != wantNames[i] {
			t.Errorf("campaign %d named %q, want %q", i, cfg.Name, wantNames[i])
		}
		if cfg.Query == nil {
			t.Errorf("campaign %q has no query", cfg.Name)
		}
	}
	if full[2].Deadline == nil {
		t.Error("crowd-deadline has no SLO")
	}
	if full[3].Retainer == nil {
		t.Error("crowd-retainer has no pool")
	}
	for i := range full {
		doc := fmt.Sprintf(`{"fleet": {"preset": "crowd", "seed": 3, "index": %d}}`, i)
		one, err := ParseCampaigns([]byte(doc), BuildOpts{})
		if err != nil {
			t.Fatalf("index %d: %v", i, err)
		}
		if len(one) != 1 || one[0].Name != full[i].Name || one[0].Seed != full[i].Seed {
			t.Fatalf("index %d: got %+v, want %q seed %d", i, one, full[i].Name, full[i].Seed)
		}
	}
	for _, bad := range []int{-1, 4} {
		doc := fmt.Sprintf(`{"fleet": {"preset": "crowd", "seed": 3, "index": %d}}`, bad)
		if _, err := ParseCampaigns([]byte(doc), BuildOpts{}); err == nil || !strings.Contains(err.Error(), "fleet index") {
			t.Fatalf("index %d: %v", bad, err)
		}
	}
}
