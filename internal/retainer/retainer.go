// Package retainer models the prepaid-worker alternative to posted-price
// crowdsourcing — the Retainer Model of Bernstein et al. (references
// [26, 27] of "Tuning Crowdsourced Human Computation") and the
// combinatorial allocation of CrowdManager [28].
//
// A retainer pool keeps c workers on standby for a per-worker,
// per-unit-time fee; an arriving task is dispatched to an idle retained
// worker immediately, eliminating the on-hold phase entirely at the cost
// of paying for idle capacity. The paper's related-work section contrasts
// this with HPU tuning: retainers suit high-instantaneity interactive
// tasks, while the H-Tuning problem covers batch jobs where the set-level
// latency is tuned through pricing. This package makes that comparison
// quantitative:
//
//   - BatchMakespan gives the exact expected completion time of a batch
//     of n exponential tasks on c retained workers;
//   - OptimizePoolSize picks the cheapest pool that meets a budget, the
//     decision [28] frames as combinatorial allocation;
//   - ErlangC and SteadyStateWait provide the M/M/c analysis of [27] for
//     the streaming (real-time) regime.
package retainer

import (
	"fmt"
	"math"

	"hputune/internal/numeric"
	"hputune/internal/randx"
)

// Pool is a retainer pool configuration.
type Pool struct {
	// Workers is the number of retained workers, c.
	Workers int
	// ServiceRate is each worker's task completion rate μ (the HPU
	// processing clock rate; retained workers skip the on-hold phase).
	ServiceRate float64
	// Fee is the retainer payment per worker per unit time, charged for
	// the whole span the pool is held.
	Fee float64
	// TaskPayment is the payment per completed task.
	TaskPayment float64
}

// Validate reports whether the pool is usable.
func (p Pool) Validate() error {
	if p.Workers < 1 {
		return fmt.Errorf("retainer: pool needs >= 1 worker, got %d", p.Workers)
	}
	if !(p.ServiceRate > 0) {
		return fmt.Errorf("retainer: service rate must be positive, got %v", p.ServiceRate)
	}
	if p.Fee < 0 {
		return fmt.Errorf("retainer: negative fee %v", p.Fee)
	}
	if p.TaskPayment < 0 {
		return fmt.Errorf("retainer: negative task payment %v", p.TaskPayment)
	}
	return nil
}

// BatchMakespan returns the exact expected makespan of n tasks, all
// available at time zero, on the pool's c workers with work-conserving
// dispatch and iid Exp(μ) service times:
//
//	E[makespan] = (n−c)⁺/(c·μ) + H_min(n,c)/μ
//
// While more than c tasks remain the pool departs at rate c·μ (drain
// phase, exact by memorylessness); once min(n, c) tasks remain each has
// its own worker and the residual is the max of that many fresh
// exponentials.
func BatchMakespan(p Pool, n int) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("retainer: negative batch size %d", n)
	}
	if n == 0 {
		return 0, nil
	}
	c := p.Workers
	drain := 0.0
	tail := n
	if n > c {
		drain = float64(n-c) / (float64(c) * p.ServiceRate)
		tail = c
	}
	return drain + numeric.Harmonic(tail)/p.ServiceRate, nil
}

// BatchCost returns the expected total cost of running an n-task batch:
// per-task payments plus retainer fees accrued over the expected
// makespan.
func BatchCost(p Pool, n int) (float64, error) {
	mk, err := BatchMakespan(p, n)
	if err != nil {
		return 0, err
	}
	return float64(n)*p.TaskPayment + float64(p.Workers)*p.Fee*mk, nil
}

// PoolChoice is the outcome of OptimizePoolSize.
type PoolChoice struct {
	Pool     Pool
	Makespan float64
	Cost     float64
}

// OptimizePoolSize returns the pool size in [1, maxWorkers] minimizing
// the expected batch makespan subject to an expected-cost budget, with
// the given per-worker economics. Makespan is strictly decreasing and
// cost increasing in c on the interesting range, but both are evaluated
// exhaustively — maxWorkers is small in practice — so no shape assumption
// is needed. It returns an error if even a single worker exceeds the
// budget.
func OptimizePoolSize(n int, budget float64, serviceRate, fee, taskPayment float64, maxWorkers int) (PoolChoice, error) {
	if n < 1 {
		return PoolChoice{}, fmt.Errorf("retainer: batch size %d below 1", n)
	}
	if maxWorkers < 1 {
		return PoolChoice{}, fmt.Errorf("retainer: maxWorkers %d below 1", maxWorkers)
	}
	best := PoolChoice{Makespan: math.Inf(1)}
	feasible := false
	for c := 1; c <= maxWorkers; c++ {
		pool := Pool{Workers: c, ServiceRate: serviceRate, Fee: fee, TaskPayment: taskPayment}
		mk, err := BatchMakespan(pool, n)
		if err != nil {
			return PoolChoice{}, err
		}
		cost, err := BatchCost(pool, n)
		if err != nil {
			return PoolChoice{}, err
		}
		if cost > budget {
			continue
		}
		feasible = true
		if mk < best.Makespan {
			best = PoolChoice{Pool: pool, Makespan: mk, Cost: cost}
		}
	}
	if !feasible {
		return PoolChoice{}, fmt.Errorf("retainer: no pool of <= %d workers fits budget %v (single worker costs %v)",
			maxWorkers, budget, singleWorkerCost(n, serviceRate, fee, taskPayment))
	}
	return best, nil
}

func singleWorkerCost(n int, serviceRate, fee, taskPayment float64) float64 {
	pool := Pool{Workers: 1, ServiceRate: serviceRate, Fee: fee, TaskPayment: taskPayment}
	cost, err := BatchCost(pool, n)
	if err != nil {
		return math.NaN()
	}
	return cost
}

// ErlangC returns the steady-state probability that an arriving task must
// wait in an M/M/c queue with offered load a = λ/μ (Erlang-C formula).
// It requires stability, a < c. Computation runs in log space via the
// recurrence on Erlang-B to stay stable for large c.
func ErlangC(c int, a float64) (float64, error) {
	if c < 1 {
		return 0, fmt.Errorf("retainer: need >= 1 server, got %d", c)
	}
	if !(a > 0) {
		return 0, fmt.Errorf("retainer: offered load must be positive, got %v", a)
	}
	if a >= float64(c) {
		return 0, fmt.Errorf("retainer: unstable queue: offered load %v >= %d servers", a, c)
	}
	// Erlang-B by the standard recurrence B(0) = 1, B(k) = a·B(k−1)/(k + a·B(k−1)).
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(c)
	return b / (1 - rho + rho*b), nil
}

// SteadyStateWait returns the expected queueing delay (excluding service)
// of an M/M/c retainer pool facing Poisson task arrivals at rate lambda:
// E[W] = C(c, a)/(c·μ − λ).
func SteadyStateWait(p Pool, lambda float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if !(lambda > 0) {
		return 0, fmt.Errorf("retainer: arrival rate must be positive, got %v", lambda)
	}
	a := lambda / p.ServiceRate
	pc, err := ErlangC(p.Workers, a)
	if err != nil {
		return 0, err
	}
	return pc / (float64(p.Workers)*p.ServiceRate - lambda), nil
}

// SteadyStateLatency returns E[W] + 1/μ, the expected task latency of the
// streaming pool — the quantity a retainer deployment quotes where the
// posted-price HPU quotes E[on-hold] + E[processing].
func SteadyStateLatency(p Pool, lambda float64) (float64, error) {
	w, err := SteadyStateWait(p, lambda)
	if err != nil {
		return 0, err
	}
	return w + 1/p.ServiceRate, nil
}

// SimulateBatch runs one batch of n tasks through the pool with
// work-conserving dispatch and returns the realized makespan. It exists
// to validate BatchMakespan and for experiments that want full
// distributions rather than means.
func SimulateBatch(p Pool, n int, r *randx.Rand) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("retainer: negative batch size %d", n)
	}
	if r == nil {
		return 0, fmt.Errorf("retainer: nil random source")
	}
	if n == 0 {
		return 0, nil
	}
	// Track each worker's free-at time; assign tasks to the earliest
	// available worker. With iid exponential service this realizes the
	// same process BatchMakespan analyzes.
	free := make([]float64, p.Workers)
	for i := 0; i < n; i++ {
		// Earliest available worker.
		w := 0
		for j := 1; j < len(free); j++ {
			if free[j] < free[w] {
				w = j
			}
		}
		free[w] += r.Exp(p.ServiceRate)
	}
	mk := 0.0
	for _, f := range free {
		if f > mk {
			mk = f
		}
	}
	return mk, nil
}
