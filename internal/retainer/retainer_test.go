package retainer

import (
	"math"
	"testing"
	"testing/quick"

	"hputune/internal/numeric"
	"hputune/internal/randx"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestPoolValidate(t *testing.T) {
	cases := []struct {
		name string
		pool Pool
		ok   bool
	}{
		{"good", Pool{Workers: 2, ServiceRate: 1, Fee: 0.1, TaskPayment: 1}, true},
		{"free pool", Pool{Workers: 1, ServiceRate: 1}, true},
		{"zero workers", Pool{Workers: 0, ServiceRate: 1}, false},
		{"zero rate", Pool{Workers: 1}, false},
		{"negative fee", Pool{Workers: 1, ServiceRate: 1, Fee: -1}, false},
		{"negative payment", Pool{Workers: 1, ServiceRate: 1, TaskPayment: -1}, false},
	}
	for _, c := range cases {
		if err := c.pool.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestBatchMakespanMoreWorkersThanTasks(t *testing.T) {
	// c >= n: makespan is E[max of n Exp(μ)] = H_n/μ.
	p := Pool{Workers: 10, ServiceRate: 2}
	got, err := BatchMakespan(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := numeric.Harmonic(4) / 2
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("makespan %v, want %v", got, want)
	}
}

func TestBatchMakespanDrainPlusTail(t *testing.T) {
	// n > c: (n−c)/(cμ) + H_c/μ.
	p := Pool{Workers: 3, ServiceRate: 2}
	got, err := BatchMakespan(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := 7.0/(3*2) + numeric.Harmonic(3)/2
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("makespan %v, want %v", got, want)
	}
}

func TestBatchMakespanZeroTasks(t *testing.T) {
	p := Pool{Workers: 3, ServiceRate: 2}
	got, err := BatchMakespan(p, 0)
	if err != nil || got != 0 {
		t.Errorf("empty batch: %v, %v", got, err)
	}
	if _, err := BatchMakespan(p, -1); err == nil {
		t.Error("negative batch accepted")
	}
}

func TestBatchMakespanAgainstSimulation(t *testing.T) {
	r := randx.New(12)
	for _, tc := range []struct {
		workers, n int
	}{
		{1, 5}, {3, 10}, {8, 8}, {20, 7}, {5, 100},
	} {
		p := Pool{Workers: tc.workers, ServiceRate: 1.5}
		analytic, err := BatchMakespan(p, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		const trials = 20000
		sum := 0.0
		for i := 0; i < trials; i++ {
			mk, err := SimulateBatch(p, tc.n, r)
			if err != nil {
				t.Fatal(err)
			}
			sum += mk
		}
		mc := sum / trials
		if !almostEqual(analytic, mc, 0.02) {
			t.Errorf("c=%d n=%d: analytic %v vs simulated %v", tc.workers, tc.n, analytic, mc)
		}
	}
}

func TestBatchMakespanMonotoneInWorkersProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		r := randx.New(seed)
		n := 1 + r.Intn(200)
		c := 1 + r.Intn(50)
		p1 := Pool{Workers: c, ServiceRate: 1}
		p2 := Pool{Workers: c + 1, ServiceRate: 1}
		m1, err1 := BatchMakespan(p1, n)
		m2, err2 := BatchMakespan(p2, n)
		if err1 != nil || err2 != nil {
			return false
		}
		return m2 <= m1+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBatchCostComposition(t *testing.T) {
	p := Pool{Workers: 2, ServiceRate: 1, Fee: 0.5, TaskPayment: 3}
	mk, err := BatchMakespan(p, 6)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := BatchCost(p, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := 6*3.0 + 2*0.5*mk
	if !almostEqual(cost, want, 1e-12) {
		t.Errorf("cost %v, want %v", cost, want)
	}
}

func TestOptimizePoolSizeRespectsBudget(t *testing.T) {
	choice, err := OptimizePoolSize(50, 200, 1, 0.5, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if choice.Cost > 200 {
		t.Errorf("chosen pool costs %v over budget 200", choice.Cost)
	}
	if choice.Pool.Workers < 1 {
		t.Errorf("empty pool chosen: %+v", choice)
	}
	// A bigger budget must not produce a slower pool.
	richer, err := OptimizePoolSize(50, 400, 1, 0.5, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if richer.Makespan > choice.Makespan+1e-12 {
		t.Errorf("richer budget slower: %v > %v", richer.Makespan, choice.Makespan)
	}
}

func TestOptimizePoolSizeInfeasible(t *testing.T) {
	// Task payments alone exceed the budget.
	if _, err := OptimizePoolSize(100, 50, 1, 0.1, 1, 20); err == nil {
		t.Error("infeasible budget accepted")
	}
	if _, err := OptimizePoolSize(0, 50, 1, 0.1, 1, 20); err == nil {
		t.Error("zero batch accepted")
	}
	if _, err := OptimizePoolSize(10, 50, 1, 0.1, 1, 0); err == nil {
		t.Error("zero maxWorkers accepted")
	}
}

func TestErlangCKnownValues(t *testing.T) {
	// Single server: C(1, a) = a (the M/M/1 waiting probability is ρ).
	for _, a := range []float64{0.2, 0.5, 0.9} {
		got, err := ErlangC(1, a)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, a, 1e-12) {
			t.Errorf("C(1, %v) = %v, want %v", a, got, a)
		}
	}
	// Textbook value: C(2, 1) = 1/3.
	got, err := ErlangC(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 1.0/3, 1e-12) {
		t.Errorf("C(2, 1) = %v, want 1/3", got)
	}
}

func TestErlangCStability(t *testing.T) {
	if _, err := ErlangC(2, 2); err == nil {
		t.Error("critical load accepted")
	}
	if _, err := ErlangC(2, 3); err == nil {
		t.Error("overload accepted")
	}
	if _, err := ErlangC(0, 0.5); err == nil {
		t.Error("zero servers accepted")
	}
	if _, err := ErlangC(2, 0); err == nil {
		t.Error("zero load accepted")
	}
}

func TestErlangCInUnitInterval(t *testing.T) {
	prop := func(seed uint64) bool {
		r := randx.New(seed)
		c := 1 + r.Intn(30)
		a := r.Float64() * float64(c) * 0.99
		if a <= 0 {
			a = 0.01
		}
		v, err := ErlangC(c, a)
		return err == nil && v >= 0 && v <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSteadyStateWaitMM1ClosedForm(t *testing.T) {
	// M/M/1: E[W] = ρ/(μ−λ).
	p := Pool{Workers: 1, ServiceRate: 2}
	lambda := 1.0
	got, err := SteadyStateWait(p, lambda)
	if err != nil {
		t.Fatal(err)
	}
	rho := lambda / p.ServiceRate
	want := rho / (p.ServiceRate - lambda)
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("E[W] = %v, want %v", got, want)
	}
}

func TestSteadyStateWaitAgainstSimulation(t *testing.T) {
	// Lindley recursion simulation of M/M/3.
	p := Pool{Workers: 3, ServiceRate: 1}
	lambda := 2.0
	analytic, err := SteadyStateWait(p, lambda)
	if err != nil {
		t.Fatal(err)
	}
	r := randx.New(77)
	free := make([]float64, p.Workers)
	clock := 0.0
	var totalWait float64
	const warmup = 2000
	const measured = 60000
	for i := 0; i < warmup+measured; i++ {
		clock += r.Exp(lambda)
		w := 0
		for j := 1; j < len(free); j++ {
			if free[j] < free[w] {
				w = j
			}
		}
		start := clock
		if free[w] > start {
			start = free[w]
		}
		if i >= warmup {
			totalWait += start - clock
		}
		free[w] = start + r.Exp(p.ServiceRate)
	}
	mc := totalWait / measured
	if !almostEqual(analytic, mc, 0.05) {
		t.Errorf("E[W] analytic %v vs simulated %v", analytic, mc)
	}
}

func TestSteadyStateLatencyAddsService(t *testing.T) {
	p := Pool{Workers: 4, ServiceRate: 2}
	w, err := SteadyStateWait(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	l, err := SteadyStateLatency(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(l, w+0.5, 1e-12) {
		t.Errorf("latency %v, want wait %v + 0.5", l, w)
	}
}

func TestSteadyStateWaitValidation(t *testing.T) {
	p := Pool{Workers: 2, ServiceRate: 1}
	if _, err := SteadyStateWait(p, 0); err == nil {
		t.Error("zero arrival rate accepted")
	}
	if _, err := SteadyStateWait(p, 2); err == nil {
		t.Error("unstable load accepted")
	}
	if _, err := SteadyStateWait(Pool{}, 1); err == nil {
		t.Error("invalid pool accepted")
	}
}

func TestSimulateBatchValidation(t *testing.T) {
	p := Pool{Workers: 2, ServiceRate: 1}
	if _, err := SimulateBatch(p, 5, nil); err == nil {
		t.Error("nil rand accepted")
	}
	if _, err := SimulateBatch(p, -1, randx.New(1)); err == nil {
		t.Error("negative batch accepted")
	}
	if v, err := SimulateBatch(p, 0, randx.New(1)); err != nil || v != 0 {
		t.Errorf("empty batch: %v, %v", v, err)
	}
}

func TestRetainerBeatsPostedPriceOnLatencyLosesOnCost(t *testing.T) {
	// The qualitative contrast from the paper's related-work section: a
	// retainer pool sized for the batch eliminates the on-hold phase, so
	// for the same per-task payment its makespan is below the
	// posted-price expectation (which adds acceptance latency), but the
	// retainer fees make it strictly more expensive.
	const n = 40
	const mu = 2.0 // processing rate, both deployments
	pool := Pool{Workers: n, ServiceRate: mu, Fee: 0.2, TaskPayment: 1}
	poolMk, err := BatchMakespan(pool, n)
	if err != nil {
		t.Fatal(err)
	}
	poolCost, err := BatchCost(pool, n)
	if err != nil {
		t.Fatal(err)
	}
	// Posted-price: same payment per task buys on-hold rate λo ≈ 2
	// under the synthetic λ = p + 1 model, then the processing phase.
	// E[makespan] >= E[max of n processing clocks] alone.
	postedMk := numeric.Harmonic(n)/(1.0+1) + numeric.Harmonic(n)/mu
	postedCost := float64(n) * 1
	if poolMk >= postedMk {
		t.Errorf("retainer makespan %v not below posted-price %v", poolMk, postedMk)
	}
	if poolCost <= postedCost {
		t.Errorf("retainer cost %v not above posted-price %v", poolCost, postedCost)
	}
}
