package retainer

import (
	"math"
	"testing"
)

// Edge behavior at the boundaries the closed forms are most fragile at:
// a single server, utilization approaching 1, and budgets that land
// exactly on a pool's expected cost.

func TestErlangCSingleServerEqualsUtilization(t *testing.T) {
	// For c = 1 the Erlang-C formula collapses to the M/M/1 result: an
	// arrival waits iff the server is busy, with probability ρ = a.
	for _, a := range []float64{0.01, 0.25, 0.5, 0.9, 0.999} {
		got, err := ErlangC(1, a)
		if err != nil {
			t.Fatalf("a = %v: %v", a, err)
		}
		if math.Abs(got-a) > 1e-12 {
			t.Errorf("C(1, %v) = %v, want exactly the utilization", a, got)
		}
	}
}

func TestErlangCApproachesOneAtSaturation(t *testing.T) {
	for _, c := range []int{1, 2, 8, 64} {
		a := float64(c) * (1 - 1e-9)
		got, err := ErlangC(c, a)
		if err != nil {
			t.Fatalf("c = %d: %v", c, err)
		}
		if got > 1 {
			t.Errorf("C(%d, %v) = %v above 1: not a probability", c, a, got)
		}
		if got < 1-1e-6 {
			t.Errorf("C(%d, %v) = %v, want → 1 at saturation", c, a, got)
		}
	}
}

func TestErlangCMonotoneInLoad(t *testing.T) {
	const c = 4
	prev := 0.0
	for _, a := range []float64{0.5, 1, 2, 3, 3.9, 3.999} {
		got, err := ErlangC(c, a)
		if err != nil {
			t.Fatalf("a = %v: %v", a, err)
		}
		if got <= prev {
			t.Errorf("C(%d, %v) = %v not above C at lighter load %v", c, a, got, prev)
		}
		prev = got
	}
}

func TestSteadyStateWaitDivergesAtSaturation(t *testing.T) {
	p := Pool{Workers: 2, ServiceRate: 1, Fee: 0.1, TaskPayment: 1}
	cap := float64(p.Workers) * p.ServiceRate
	// The wait must grow without bound as λ → cμ ...
	prev := 0.0
	for _, frac := range []float64{0.5, 0.9, 0.99, 0.999999} {
		w, err := SteadyStateWait(p, cap*frac)
		if err != nil {
			t.Fatalf("λ = %v: %v", cap*frac, err)
		}
		if w <= prev {
			t.Errorf("wait %v at λ = %v not above %v at lighter load", w, cap*frac, prev)
		}
		prev = w
	}
	if prev < 1e5 {
		t.Errorf("wait %v at 99.9999%% utilization: expected divergence", prev)
	}
	// ... and the formula must refuse λ at or above capacity rather than
	// return a negative "wait".
	if _, err := SteadyStateWait(p, cap); err == nil {
		t.Error("λ = cμ accepted")
	}
	if _, err := SteadyStateWait(p, cap*1.5); err == nil {
		t.Error("λ above capacity accepted")
	}
}

func TestOptimizePoolSizeExactBudgetBoundary(t *testing.T) {
	const (
		n           = 20
		serviceRate = 2.0
		fee         = 0.5
		taskPayment = 1.0
		maxWorkers  = 8
	)
	oneCost, err := BatchCost(Pool{Workers: 1, ServiceRate: serviceRate, Fee: fee, TaskPayment: taskPayment}, n)
	if err != nil {
		t.Fatal(err)
	}
	// A budget exactly equal to the single-worker cost is feasible: the
	// constraint is cost <= budget, not strict.
	choice, err := OptimizePoolSize(n, oneCost, serviceRate, fee, taskPayment, maxWorkers)
	if err != nil {
		t.Fatalf("budget == single-worker cost rejected: %v", err)
	}
	if choice.Pool.Workers != 1 {
		t.Errorf("budget %v admits only 1 worker, chose %d", oneCost, choice.Pool.Workers)
	}
	if choice.Cost > oneCost {
		t.Errorf("chosen cost %v above budget %v", choice.Cost, oneCost)
	}
	// One ulp below the single-worker cost nothing fits.
	if _, err := OptimizePoolSize(n, math.Nextafter(oneCost, 0), serviceRate, fee, taskPayment, maxWorkers); err == nil {
		t.Error("budget below the cheapest pool accepted")
	}
	// A budget exactly on a larger pool's cost unlocks that pool, and the
	// optimizer takes it: makespan is decreasing in workers here.
	twoCost, err := BatchCost(Pool{Workers: 2, ServiceRate: serviceRate, Fee: fee, TaskPayment: taskPayment}, n)
	if err != nil {
		t.Fatal(err)
	}
	choice, err = OptimizePoolSize(n, twoCost, serviceRate, fee, taskPayment, maxWorkers)
	if err != nil {
		t.Fatal(err)
	}
	if choice.Pool.Workers != 2 {
		t.Errorf("budget %v covers 2 workers, chose %d", twoCost, choice.Pool.Workers)
	}
}
