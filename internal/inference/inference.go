// Package inference estimates the HPU running parameters of "Tuning
// Crowdsourced Human Computation" (Sec 3.3): the on-hold clock rate λo at
// a given price, the processing clock rate λp, and the Linearity
// Hypothesis fit λo(c) = k·c + b.
//
// Two probe methodologies from the paper are implemented, both with the
// maximum-likelihood estimator λ̂ = N/T₀ (Appendix A):
//
//   - Fixed Period: publish probe tasks, wait a fixed horizon T₀, count
//     the N acceptances;
//   - Random Period: publish probe tasks, stop once N are accepted, note
//     the elapsed T₀ (optionally bias-corrected by (N−1)/N).
package inference

import (
	"fmt"

	"hputune/internal/market"
	"hputune/internal/numeric"
)

// RateEstimate is a single estimated clock rate.
type RateEstimate struct {
	Rate   float64 // λ̂
	N      int     // events observed
	Period float64 // observation period T₀
}

// EstimateFixedPeriod applies the fixed-period MLE: n events observed over
// the horizon period, λ̂ = n/period.
func EstimateFixedPeriod(n int, period float64) (RateEstimate, error) {
	if n < 0 {
		return RateEstimate{}, fmt.Errorf("inference: negative event count %d", n)
	}
	if !(period > 0) {
		return RateEstimate{}, fmt.Errorf("inference: period must be positive, got %v", period)
	}
	return RateEstimate{Rate: float64(n) / period, N: n, Period: period}, nil
}

// EstimateRandomPeriod applies the random-period MLE: observation stopped
// at the n-th event after elapsed period. With bias correction (Appendix A)
// the estimate is (n−1)/period; without, n/period.
func EstimateRandomPeriod(n int, period float64, biasCorrect bool) (RateEstimate, error) {
	if n < 1 {
		return RateEstimate{}, fmt.Errorf("inference: need at least one event, got %d", n)
	}
	if !(period > 0) {
		return RateEstimate{}, fmt.Errorf("inference: period must be positive, got %v", period)
	}
	num := float64(n)
	if biasCorrect {
		num = float64(n - 1)
	}
	return RateEstimate{Rate: num / period, N: n, Period: period}, nil
}

// EstimateFromDurations is the MLE for iid Exp(λ) observations:
// λ̂ = n / Σ durations. The paper's probe latencies are exactly this shape.
func EstimateFromDurations(durations []float64) (RateEstimate, error) {
	if len(durations) == 0 {
		return RateEstimate{}, fmt.Errorf("inference: no durations")
	}
	total := numeric.NewKahan()
	for i, d := range durations {
		if !(d >= 0) {
			return RateEstimate{}, fmt.Errorf("inference: duration %d is %v, need >= 0", i, d)
		}
		total.Add(d)
	}
	if total.Sum() <= 0 {
		return RateEstimate{}, fmt.Errorf("inference: all durations zero")
	}
	return RateEstimate{
		Rate:   float64(len(durations)) / total.Sum(),
		N:      len(durations),
		Period: total.Sum(),
	}, nil
}

// SplitPhases recovers the processing rate from an overall-rate estimate
// and an on-hold estimate, following the paper's decomposition
// λ̂p = λ̂ − λ̂o (Sec 3.3.1). It fails when the on-hold estimate exceeds the
// overall one — observational noise that the caller must handle by
// collecting more samples.
func SplitPhases(overall, onhold RateEstimate) (RateEstimate, error) {
	rate := overall.Rate - onhold.Rate
	if !(rate > 0) {
		return RateEstimate{}, fmt.Errorf("inference: overall rate %v not above on-hold rate %v; collect more probe samples", overall.Rate, onhold.Rate)
	}
	return RateEstimate{Rate: rate, N: overall.N, Period: overall.Period}, nil
}

// Probe publishes probe tasks on a marketplace simulation and measures
// acceptance. Probe tasks follow the paper's design: workers submit
// immediately, so the processing latency is negligible (the market class
// should carry a very large ProcRate).
type Probe struct {
	// Class is the probe task class posted on the market.
	Class *market.TaskClass
	// Tasks is the number of probe tasks posted per run.
	Tasks int
	// Seed seeds each probe run's marketplace.
	Seed uint64
}

// validate checks the probe setup.
func (p Probe) validate() error {
	if err := p.Class.Validate(); err != nil {
		return err
	}
	if p.Tasks < 1 {
		return fmt.Errorf("inference: probe needs at least one task, got %d", p.Tasks)
	}
	return nil
}

// RunOnHold posts the probe tasks at the given price, waits for the first
// stopAt acceptances and returns the random-period estimate of λo built
// from the individual on-hold durations. stopAt must not exceed the number
// of tasks posted.
func (p Probe) RunOnHold(price, stopAt int) (RateEstimate, error) {
	if err := p.validate(); err != nil {
		return RateEstimate{}, err
	}
	if stopAt < 1 || stopAt > p.Tasks {
		return RateEstimate{}, fmt.Errorf("inference: stopAt %d outside [1, %d]", stopAt, p.Tasks)
	}
	sim, err := market.New(market.Config{Seed: p.Seed})
	if err != nil {
		return RateEstimate{}, err
	}
	for i := 0; i < p.Tasks; i++ {
		spec := market.TaskSpec{
			ID:        fmt.Sprintf("probe-%d", i),
			Class:     p.Class,
			RepPrices: []int{price},
		}
		if err := sim.Post(spec); err != nil {
			return RateEstimate{}, err
		}
	}
	results, err := sim.Run()
	if err != nil {
		return RateEstimate{}, err
	}
	phases := market.CollectPhases(results)
	if len(phases.OnHold) < stopAt {
		return RateEstimate{}, fmt.Errorf("inference: observed %d acceptances, wanted %d", len(phases.OnHold), stopAt)
	}
	return EstimateFromDurations(phases.OnHold[:stopAt])
}

// LinearityResult is a probe sweep over prices with its least-squares fit
// of λo(c) = Slope·c + Intercept — the empirical test of Hypothesis 1.
type LinearityResult struct {
	Prices []float64
	Rates  []float64
	Fit    numeric.LinearFit
}

// SweepLinearity estimates λo at each price with the probe (stopAt
// acceptances per price) and fits the linear price-rate model.
func (p Probe) SweepLinearity(prices []int, stopAt int) (LinearityResult, error) {
	if len(prices) < 2 {
		return LinearityResult{}, fmt.Errorf("inference: need at least 2 prices, got %d", len(prices))
	}
	res := LinearityResult{}
	for i, price := range prices {
		probe := p
		probe.Seed = p.Seed + uint64(i)*0x9e3779b9 // distinct stream per price
		est, err := probe.RunOnHold(price, stopAt)
		if err != nil {
			return LinearityResult{}, fmt.Errorf("inference: price %d: %w", price, err)
		}
		res.Prices = append(res.Prices, float64(price))
		res.Rates = append(res.Rates, est.Rate)
	}
	fit, err := numeric.FitLinear(res.Prices, res.Rates)
	if err != nil {
		return LinearityResult{}, err
	}
	res.Fit = fit
	return res, nil
}
