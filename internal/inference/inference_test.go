package inference

import (
	"math"
	"testing"

	"hputune/internal/market"
	"hputune/internal/pricing"
	"hputune/internal/randx"
)

func TestEstimateFixedPeriod(t *testing.T) {
	est, err := EstimateFixedPeriod(20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if est.Rate != 5 {
		t.Errorf("rate = %v, want 5", est.Rate)
	}
	if _, err := EstimateFixedPeriod(-1, 1); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := EstimateFixedPeriod(3, 0); err == nil {
		t.Error("zero period accepted")
	}
	// Zero events over a period is a legitimate (zero-rate) observation.
	zero, err := EstimateFixedPeriod(0, 5)
	if err != nil || zero.Rate != 0 {
		t.Errorf("zero-event estimate: %v, %v", zero, err)
	}
}

func TestEstimateRandomPeriod(t *testing.T) {
	raw, err := EstimateRandomPeriod(10, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if raw.Rate != 5 {
		t.Errorf("raw rate = %v, want 5", raw.Rate)
	}
	corrected, err := EstimateRandomPeriod(10, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if corrected.Rate != 4.5 {
		t.Errorf("corrected rate = %v, want 4.5", corrected.Rate)
	}
	if _, err := EstimateRandomPeriod(0, 1, false); err == nil {
		t.Error("zero events accepted")
	}
	if _, err := EstimateRandomPeriod(5, -1, false); err == nil {
		t.Error("negative period accepted")
	}
}

func TestEstimateFromDurationsRecoversRate(t *testing.T) {
	r := randx.New(7)
	const lambda = 3.5
	const n = 50000
	durations := make([]float64, n)
	for i := range durations {
		durations[i] = r.Exp(lambda)
	}
	est, err := EstimateFromDurations(durations)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Rate-lambda) > 0.08 {
		t.Errorf("λ̂ = %v, want ≈%v", est.Rate, lambda)
	}
	if est.N != n {
		t.Errorf("N = %d", est.N)
	}
}

func TestEstimateFromDurationsErrors(t *testing.T) {
	if _, err := EstimateFromDurations(nil); err == nil {
		t.Error("empty slice accepted")
	}
	if _, err := EstimateFromDurations([]float64{1, -2}); err == nil {
		t.Error("negative duration accepted")
	}
	if _, err := EstimateFromDurations([]float64{0, 0}); err == nil {
		t.Error("all-zero durations accepted")
	}
}

func TestSplitPhases(t *testing.T) {
	overall := RateEstimate{Rate: 2.0, N: 100, Period: 50}
	onhold := RateEstimate{Rate: 1.2}
	proc, err := SplitPhases(overall, onhold)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(proc.Rate-0.8) > 1e-12 {
		t.Errorf("λp = %v, want 0.8", proc.Rate)
	}
	if _, err := SplitPhases(RateEstimate{Rate: 1}, RateEstimate{Rate: 2}); err == nil {
		t.Error("inverted rates accepted")
	}
}

func probeClass() *market.TaskClass {
	return &market.TaskClass{
		Name:     "probe",
		Accept:   pricing.Linear{K: 1, B: 1},
		ProcRate: 1e6, // submit instantly: probe semantics
		Accuracy: 1,
	}
}

func TestProbeRunOnHoldRecoversRate(t *testing.T) {
	p := Probe{Class: probeClass(), Tasks: 4000, Seed: 11}
	price := 3 // λo = 4
	est, err := p.RunOnHold(price, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Rate-4) > 0.25 {
		t.Errorf("λ̂o = %v, want ≈4", est.Rate)
	}
}

func TestProbeValidation(t *testing.T) {
	p := Probe{Class: probeClass(), Tasks: 10, Seed: 1}
	if _, err := p.RunOnHold(1, 0); err == nil {
		t.Error("stopAt 0 accepted")
	}
	if _, err := p.RunOnHold(1, 11); err == nil {
		t.Error("stopAt beyond tasks accepted")
	}
	bad := Probe{Class: probeClass(), Tasks: 0}
	if _, err := bad.RunOnHold(1, 1); err == nil {
		t.Error("zero-task probe accepted")
	}
}

func TestSweepLinearityOnLinearMarket(t *testing.T) {
	p := Probe{Class: probeClass(), Tasks: 3000, Seed: 29}
	res, err := p.SweepLinearity([]int{1, 2, 3, 4, 5, 6}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	// True model λo(c) = c + 1: slope 1, intercept 1.
	if math.Abs(res.Fit.Slope-1) > 0.15 {
		t.Errorf("slope = %v, want ≈1", res.Fit.Slope)
	}
	if math.Abs(res.Fit.Intercept-1) > 0.4 {
		t.Errorf("intercept = %v, want ≈1", res.Fit.Intercept)
	}
	if res.Fit.R2 < 0.98 {
		t.Errorf("R² = %v, want near 1 (linearity hypothesis)", res.Fit.R2)
	}
	if len(res.Prices) != 6 || len(res.Rates) != 6 {
		t.Errorf("sweep sizes: %d prices, %d rates", len(res.Prices), len(res.Rates))
	}
}

func TestSweepLinearityNeedsTwoPrices(t *testing.T) {
	p := Probe{Class: probeClass(), Tasks: 10, Seed: 1}
	if _, err := p.SweepLinearity([]int{2}, 5); err == nil {
		t.Error("single-price sweep accepted")
	}
}

func TestSweepLinearityDetectsNonlinearity(t *testing.T) {
	// Against a quadratic market the linear fit must show a worse R² than
	// against a linear market over a wide price range.
	quad := &market.TaskClass{
		Name:     "probe-quad",
		Accept:   pricing.Quadratic{},
		ProcRate: 1e6,
		Accuracy: 1,
	}
	pQuad := Probe{Class: quad, Tasks: 2500, Seed: 31}
	resQuad, err := pQuad.SweepLinearity([]int{1, 4, 8, 12, 16, 20}, 2500)
	if err != nil {
		t.Fatal(err)
	}
	pLin := Probe{Class: probeClass(), Tasks: 2500, Seed: 31}
	resLin, err := pLin.SweepLinearity([]int{1, 4, 8, 12, 16, 20}, 2500)
	if err != nil {
		t.Fatal(err)
	}
	if resLin.Fit.R2 <= resQuad.Fit.R2 {
		t.Errorf("linear market R² (%v) should exceed quadratic market R² (%v)",
			resLin.Fit.R2, resQuad.Fit.R2)
	}
}
