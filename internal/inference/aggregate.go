package inference

import (
	"fmt"
	"sort"

	"hputune/internal/numeric"
)

// PriceAggregate is the sufficient statistic of the exponential MLE for
// one price level: the number of observed on-hold durations and their
// sum. Aggregates are additive, so an online ingest loop can keep one
// per price and merge each new trace batch in O(1) memory regardless of
// how many records have ever been ingested.
type PriceAggregate struct {
	N     int     // observations at this price
	Total float64 // Σ on-hold durations
}

// Add merges n observations summing to total into the aggregate.
func (a *PriceAggregate) Add(n int, total float64) {
	a.N += n
	a.Total += total
}

// Rate returns the MLE λ̂o = N/Σ at this price (Appendix A of the paper,
// the iid-exponential form of EstimateFromDurations).
func (a PriceAggregate) Rate() (float64, error) {
	if a.N < 1 {
		return 0, fmt.Errorf("inference: aggregate has no observations")
	}
	if !(a.Total > 0) {
		return 0, fmt.Errorf("inference: aggregate durations sum to %v, need > 0", a.Total)
	}
	return float64(a.N) / a.Total, nil
}

// MergeAggregates folds src into dst price by price, returning dst
// (allocated when nil). Because each aggregate is an additive
// sufficient statistic, merging per-partition maps and fitting the
// union is exactly equivalent to having ingested every record in one
// process — the identity the cluster's cross-node fit exchange relies
// on. Merge order does not change counts; callers that need bit-exact
// totals across runs must still merge partitions in a fixed order,
// since float addition is not associative.
func MergeAggregates(dst, src map[int]PriceAggregate) map[int]PriceAggregate {
	if dst == nil {
		dst = make(map[int]PriceAggregate, len(src))
	}
	for price, agg := range src {
		d := dst[price]
		d.Add(agg.N, agg.Total)
		dst[price] = d
	}
	return dst
}

// FitAggregates computes the per-price MLE rates and fits the Linearity
// Hypothesis λo(c) = Slope·c + Intercept across them — the offline-trace
// counterpart of Probe.SweepLinearity. At least two distinct prices with
// a usable rate are required; buckets whose durations sum to zero carry
// no rate information (λ̂ would be infinite) and are skipped rather than
// allowed to poison the fit forever. Prices (and Rates) come back
// sorted by price so the result is deterministic regardless of map
// order.
func FitAggregates(byPrice map[int]PriceAggregate) (LinearityResult, error) {
	prices := make([]int, 0, len(byPrice))
	for price, agg := range byPrice {
		if agg.N > 0 && agg.Total > 0 {
			prices = append(prices, price)
		}
	}
	if len(prices) < 2 {
		return LinearityResult{}, fmt.Errorf("inference: need observations at >= 2 distinct prices, got %d", len(prices))
	}
	sort.Ints(prices)
	res := LinearityResult{
		Prices: make([]float64, len(prices)),
		Rates:  make([]float64, len(prices)),
	}
	for i, price := range prices {
		rate, err := byPrice[price].Rate()
		if err != nil {
			return LinearityResult{}, fmt.Errorf("inference: price %d: %w", price, err)
		}
		res.Prices[i] = float64(price)
		res.Rates[i] = rate
	}
	fit, err := numeric.FitLinear(res.Prices, res.Rates)
	if err != nil {
		return LinearityResult{}, err
	}
	res.Fit = fit
	return res, nil
}
