package inference

import (
	"math"
	"testing"
)

func TestPriceAggregateRate(t *testing.T) {
	var a PriceAggregate
	if _, err := a.Rate(); err == nil {
		t.Error("empty aggregate produced a rate")
	}
	a.Add(4, 2.0)
	rate, err := a.Rate()
	if err != nil {
		t.Fatal(err)
	}
	if rate != 2.0 {
		t.Errorf("rate = %v, want 4/2 = 2", rate)
	}
	zero := PriceAggregate{N: 3, Total: 0}
	if _, err := zero.Rate(); err == nil {
		t.Error("all-zero durations produced a rate")
	}
}

func TestFitAggregatesRecoversLinearModel(t *testing.T) {
	// Durations generated to make the MLE exact: at price c the true rate
	// is 2c+1, so N observations summing to N/(2c+1) give λ̂ = 2c+1.
	byPrice := map[int]PriceAggregate{}
	for _, c := range []int{1, 2, 4, 8} {
		rate := 2*float64(c) + 1
		byPrice[c] = PriceAggregate{N: 100, Total: 100 / rate}
	}
	res, err := FitAggregates(byPrice)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Fit.Slope-2) > 1e-9 || math.Abs(res.Fit.Intercept-1) > 1e-9 {
		t.Errorf("fit = %v, want slope 2 intercept 1", res.Fit)
	}
	if res.Fit.R2 < 0.999 {
		t.Errorf("R² = %v for exact data", res.Fit.R2)
	}
	// Deterministic ordering: prices sorted ascending.
	for i := 1; i < len(res.Prices); i++ {
		if res.Prices[i] <= res.Prices[i-1] {
			t.Fatalf("prices not sorted: %v", res.Prices)
		}
	}
}

func TestFitAggregatesNeedsTwoPrices(t *testing.T) {
	_, err := FitAggregates(map[int]PriceAggregate{3: {N: 10, Total: 5}})
	if err == nil {
		t.Error("single-price fit accepted")
	}
	_, err = FitAggregates(map[int]PriceAggregate{3: {N: 10, Total: 5}, 4: {}})
	if err == nil {
		t.Error("fit with one observed price accepted")
	}
	// Zero-total buckets carry no rate information and must not poison
	// the fit — with only one usable price left, the fit still errors...
	_, err = FitAggregates(map[int]PriceAggregate{3: {N: 10, Total: 5}, 4: {N: 2, Total: 0}})
	if err == nil {
		t.Error("fit with a zero-total bucket and one usable price accepted")
	}
	// ...and with two usable prices it succeeds despite the bad bucket.
	res, err := FitAggregates(map[int]PriceAggregate{
		1: {N: 100, Total: 100.0 / 3},
		4: {N: 100, Total: 100.0 / 9},
		7: {N: 2, Total: 0},
	})
	if err != nil {
		t.Fatalf("zero-total bucket poisoned the fit: %v", err)
	}
	if len(res.Prices) != 2 {
		t.Errorf("fit used %d prices, want the 2 usable ones", len(res.Prices))
	}
}
