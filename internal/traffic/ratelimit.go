package traffic

import (
	"sync"
	"sync/atomic"
	"time"
)

// LimiterConfig sizes a Limiter.
type LimiterConfig struct {
	// Rate is the sustained request rate each client may hold, in
	// requests per second. <= 0 disables the limiter: NewLimiter
	// returns nil, and a nil *Limiter admits everything.
	Rate float64
	// Burst is the bucket capacity — how many requests a quiet client
	// may issue back to back before the sustained rate applies.
	// <= 0 means max(1, 2×Rate).
	Burst float64
	// MaxClients bounds the tracked client set; the least recently seen
	// bucket is evicted when a new client would exceed it (an evicted
	// client restarts with a full bucket). <= 0 means 4096.
	MaxClients int
	// Now is the clock; nil means time.Now. Injectable for tests — the
	// limiter itself never seeds anything from wall time.
	Now func() time.Time
}

// bucket is one client's token bucket, threaded on an intrusive LRU
// list (most recently seen at the front).
type bucket struct {
	key        string
	tokens     float64
	last       time.Time
	prev, next *bucket
}

// Limiter applies per-client token-bucket rate limiting. A nil *Limiter
// admits everything (the disabled state), so callers never branch.
type Limiter struct {
	rate       float64
	burst      float64
	maxClients int
	now        func() time.Time

	mu      sync.Mutex
	clients map[string]*bucket
	// head/tail of the intrusive LRU list; head is most recent.
	head, tail *bucket

	allowed atomic.Uint64
	limited atomic.Uint64
	evicted atomic.Uint64
}

// NewLimiter builds a limiter from cfg, or returns nil (the disabled
// limiter) when cfg.Rate <= 0.
func NewLimiter(cfg LimiterConfig) *Limiter {
	if cfg.Rate <= 0 {
		return nil
	}
	burst := cfg.Burst
	if burst <= 0 {
		burst = 2 * cfg.Rate
		if burst < 1 {
			burst = 1
		}
	}
	maxClients := cfg.MaxClients
	if maxClients <= 0 {
		maxClients = 4096
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Limiter{
		rate:       cfg.Rate,
		burst:      burst,
		maxClients: maxClients,
		now:        now,
		clients:    make(map[string]*bucket, maxClients),
	}
}

// Allow spends one token from key's bucket. It returns ok=true when the
// request is admitted; otherwise retry is how long the client must wait
// for the bucket to refill one token — the Retry-After value, computed
// from bucket state rather than a constant.
func (l *Limiter) Allow(key string) (ok bool, retry time.Duration) {
	if l == nil {
		return true, 0
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.clients[key]
	if b == nil {
		if len(l.clients) >= l.maxClients {
			l.evictTailLocked()
		}
		b = &bucket{key: key, tokens: l.burst, last: now}
		l.clients[key] = b
		l.pushFrontLocked(b)
	} else {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens += dt * l.rate
			if b.tokens > l.burst {
				b.tokens = l.burst
			}
		}
		b.last = now
		l.moveFrontLocked(b)
	}
	if b.tokens >= 1 {
		b.tokens--
		l.allowed.Add(1)
		return true, 0
	}
	l.limited.Add(1)
	need := (1 - b.tokens) / l.rate // seconds until one whole token
	return false, time.Duration(need * float64(time.Second))
}

// Rate is the configured per-client rate (0 when disabled).
func (l *Limiter) Rate() float64 {
	if l == nil {
		return 0
	}
	return l.rate
}

// LimiterStats is a point-in-time copy of a Limiter's counters for the
// /v1/metrics document. The zero value reports a disabled limiter.
type LimiterStats struct {
	// Rate and Burst echo the configuration (requests/second, tokens).
	Rate  float64 `json:"rate"`
	Burst float64 `json:"burst"`
	// Clients is the tracked bucket count (gauge); Allowed / Limited /
	// Evicted are lifetime counters.
	Clients int    `json:"clients"`
	Allowed uint64 `json:"allowed"`
	Limited uint64 `json:"limited"`
	Evicted uint64 `json:"evicted"`
}

// Stats snapshots the limiter's counters; a nil limiter reports zeros.
func (l *Limiter) Stats() LimiterStats {
	if l == nil {
		return LimiterStats{}
	}
	l.mu.Lock()
	clients := len(l.clients)
	l.mu.Unlock()
	return LimiterStats{
		Rate:    l.rate,
		Burst:   l.burst,
		Clients: clients,
		Allowed: l.allowed.Load(),
		Limited: l.limited.Load(),
		Evicted: l.evicted.Load(),
	}
}

func (l *Limiter) pushFrontLocked(b *bucket) {
	b.prev = nil
	b.next = l.head
	if l.head != nil {
		l.head.prev = b
	}
	l.head = b
	if l.tail == nil {
		l.tail = b
	}
}

func (l *Limiter) unlinkLocked(b *bucket) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		l.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		l.tail = b.prev
	}
	b.prev, b.next = nil, nil
}

func (l *Limiter) moveFrontLocked(b *bucket) {
	if l.head == b {
		return
	}
	l.unlinkLocked(b)
	l.pushFrontLocked(b)
}

func (l *Limiter) evictTailLocked() {
	t := l.tail
	if t == nil {
		return
	}
	l.unlinkLocked(t)
	delete(l.clients, t.key)
	l.evicted.Add(1)
}
