package traffic

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"
)

// clockTicksPerSecond is the kernel USER_HZ exported through
// /proc/self/stat's utime/stime fields; fixed at 100 on every supported
// Linux architecture.
const clockTicksPerSecond = 100

// defaultSampleInterval is how long a load reading is served from cache
// before the sampler re-reads procfs.
const defaultSampleInterval = 500 * time.Millisecond

// LoadSampler reports this process's CPU utilization as a fraction of
// GOMAXPROCS capacity, from /proc/self/stat deltas. Readings are cached
// for a minimum interval so Load can sit on the admission path without
// hitting procfs per request. On platforms or sandboxes without a
// readable /proc it permanently reports 0 (never shed, never block).
type LoadSampler struct {
	minInterval time.Duration
	readCPU     func() (seconds float64, ok bool)
	now         func() time.Time
	capacity    float64

	mu      sync.Mutex
	lastAt  time.Time
	lastCPU float64
	value   float64
}

// NewLoadSampler builds the production sampler: /proc/self/stat, real
// clock, half-second cache.
func NewLoadSampler() *LoadSampler {
	return NewLoadSamplerWith(readProcSelfCPU, time.Now, defaultSampleInterval)
}

// NewLoadSamplerWith builds a sampler over an injectable CPU reader and
// clock (for tests). readCPU returns cumulative process CPU seconds;
// ok=false marks the source unreadable, pinning Load at 0.
func NewLoadSamplerWith(readCPU func() (float64, bool), now func() time.Time, minInterval time.Duration) *LoadSampler {
	if minInterval <= 0 {
		minInterval = defaultSampleInterval
	}
	return &LoadSampler{
		minInterval: minInterval,
		readCPU:     readCPU,
		now:         now,
		capacity:    float64(runtime.GOMAXPROCS(0)),
	}
}

// Load returns the most recent utilization reading in [0, 1]: CPU
// seconds burned per wall second, divided by GOMAXPROCS. The first call
// establishes the baseline and returns 0.
func (s *LoadSampler) Load() float64 {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.lastAt.IsZero() && now.Sub(s.lastAt) < s.minInterval {
		return s.value
	}
	cpu, ok := s.readCPU()
	if !ok {
		s.value = 0
		s.lastAt = now
		return 0
	}
	if s.lastAt.IsZero() {
		s.lastAt, s.lastCPU = now, cpu
		return 0
	}
	wall := now.Sub(s.lastAt).Seconds()
	if wall > 0 {
		v := (cpu - s.lastCPU) / (wall * s.capacity)
		switch {
		case v < 0:
			v = 0
		case v > 1:
			v = 1
		}
		s.value = v
	}
	s.lastAt, s.lastCPU = now, cpu
	return s.value
}

// readProcSelfCPU returns this process's cumulative user+system CPU
// time in seconds from /proc/self/stat, or ok=false when the file is
// unreadable or malformed.
func readProcSelfCPU() (float64, bool) {
	raw, err := os.ReadFile("/proc/self/stat")
	if err != nil {
		return 0, false
	}
	// Field 2 (comm) may contain spaces and parentheses; everything
	// after the last ')' is whitespace-separated, with utime and stime
	// at positions 14 and 15 of the overall line (12 and 13 after comm).
	i := strings.LastIndexByte(string(raw), ')')
	if i < 0 {
		return 0, false
	}
	fields := strings.Fields(string(raw[i+1:]))
	if len(fields) < 13 {
		return 0, false
	}
	utime, err1 := strconv.ParseUint(fields[11], 10, 64)
	stime, err2 := strconv.ParseUint(fields[12], 10, 64)
	if err1 != nil || err2 != nil {
		return 0, false
	}
	return float64(utime+stime) / clockTicksPerSecond, true
}
