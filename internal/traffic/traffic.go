// Package traffic is the heavy-traffic hardening layer under the
// serving API: admission, rate limiting and observability primitives
// that keep htuned degrading gracefully instead of falling over when
// request volume exceeds capacity.
//
// It provides four building blocks, each independent and individually
// testable:
//
//   - Gate: a weighted two-class admission gate. Bulk work (solve,
//     simulate) is capped at a configurable share of the total permit
//     pool, while priority work (ingest, campaign control) may use the
//     whole pool — so re-tuning and campaign rounds never starve behind
//     a flood of bulk traffic. An optional load hook sheds bulk work
//     when process CPU utilization crosses a threshold.
//   - Limiter: per-client token buckets keyed by an opaque client id,
//     bounded in memory by LRU eviction, reporting how long a rejected
//     client should wait (the Retry-After value) from bucket state.
//   - Histogram: a fixed-bucket log-spaced latency histogram whose
//     record path is allocation-free (a single atomic add per
//     observation), snapshotted into counts and estimated quantiles.
//   - LoadSampler: process self-CPU utilization from /proc/self/stat,
//     cached between samples so the admission path never stats procfs
//     more than a few times a second.
//
// Everything here is deterministic given its inputs: clocks and CPU
// readers are injectable, and nothing seeds from wall time, matching
// the repo-wide replay-determinism contract.
package traffic

import (
	"runtime"
	"sync/atomic"
)

// Class labels one admission class at the Gate.
type Class int

const (
	// Bulk is solve/simulate traffic: capped at GateConfig.BulkShare of
	// the permit pool and shed first under CPU pressure.
	Bulk Class = iota
	// Priority is ingest and campaign-control traffic: may use the whole
	// permit pool and is never CPU-shed.
	Priority
)

// GateConfig sizes a Gate. The zero value is usable: GOMAXPROCS total
// permits, 3/4 of them available to bulk work, no CPU shedding.
type GateConfig struct {
	// Limit is the total concurrent admissions across both classes.
	// <= 0 means GOMAXPROCS.
	Limit int
	// BulkShare is the fraction of Limit the bulk class may occupy
	// (0 < share <= 1). <= 0 means 0.75. Whenever Limit >= 2 at least
	// one permit stays reserved for the priority class regardless of
	// the share.
	BulkShare float64
	// ShedLoad sheds bulk admissions while Load() reports utilization
	// at or above this fraction of capacity. <= 0 disables shedding.
	ShedLoad float64
	// Load reports current process CPU utilization in [0, 1] (see
	// LoadSampler). nil disables shedding.
	Load func() float64
}

// Gate is a weighted two-class admission gate. All methods are safe for
// concurrent use; Try/Release are lock-free (CAS loops on two counters).
type Gate struct {
	limit     int64
	bulkLimit int64
	shedLoad  float64
	load      func() float64

	inflight     atomic.Int64
	bulkInflight atomic.Int64

	bulkRejected     atomic.Uint64
	priorityRejected atomic.Uint64
	shed             atomic.Uint64
}

// NewGate builds a gate from cfg (see GateConfig for zero-value
// semantics).
func NewGate(cfg GateConfig) *Gate {
	limit := int64(cfg.Limit)
	if limit <= 0 {
		limit = int64(runtime.GOMAXPROCS(0))
	}
	share := cfg.BulkShare
	if share <= 0 {
		share = 0.75
	}
	if share > 1 {
		share = 1
	}
	bulk := int64(share * float64(limit))
	if bulk < 1 {
		bulk = 1
	}
	// Reserve at least one permit for the priority class whenever the
	// pool is big enough to afford it; with a single permit the classes
	// necessarily share it.
	if bulk >= limit && limit > 1 {
		bulk = limit - 1
	}
	if bulk > limit {
		bulk = limit
	}
	g := &Gate{limit: limit, bulkLimit: bulk, shedLoad: cfg.ShedLoad}
	if cfg.ShedLoad > 0 {
		g.load = cfg.Load
	}
	return g
}

// TryAcquire attempts to take one permit for class c without blocking.
// On true the caller must Release(c) when done; on false the request
// was rejected (counted per class) and nothing is held.
func (g *Gate) TryAcquire(c Class) bool {
	if c == Bulk {
		if g.load != nil && g.load() >= g.shedLoad {
			g.shed.Add(1)
			g.bulkRejected.Add(1)
			return false
		}
		for {
			b := g.bulkInflight.Load()
			if b >= g.bulkLimit {
				g.bulkRejected.Add(1)
				return false
			}
			if g.bulkInflight.CompareAndSwap(b, b+1) {
				break
			}
		}
	}
	for {
		n := g.inflight.Load()
		if n >= g.limit {
			if c == Bulk {
				g.bulkInflight.Add(-1)
				g.bulkRejected.Add(1)
			} else {
				g.priorityRejected.Add(1)
			}
			return false
		}
		if g.inflight.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Release returns a permit taken by a successful TryAcquire(c).
func (g *Gate) Release(c Class) {
	if c == Bulk {
		g.bulkInflight.Add(-1)
	}
	g.inflight.Add(-1)
}

// Limit is the total permit pool size.
func (g *Gate) Limit() int { return int(g.limit) }

// BulkLimit is the bulk class's permit cap (<= Limit).
func (g *Gate) BulkLimit() int { return int(g.bulkLimit) }

// InFlight is the currently admitted request count across both classes.
func (g *Gate) InFlight() int { return int(g.inflight.Load()) }

// Rejected is the total rejected admission count across both classes,
// including CPU sheds.
func (g *Gate) Rejected() uint64 {
	return g.bulkRejected.Load() + g.priorityRejected.Load()
}

// GateSnapshot is a point-in-time copy of a Gate's configuration and
// counters, shaped for the /v1/metrics document.
type GateSnapshot struct {
	// Limit and BulkLimit are the permit pool sizes (gauge, permits).
	Limit     int `json:"limit"`
	BulkLimit int `json:"bulkLimit"`
	// InFlight and BulkInFlight are current occupancy (gauge, permits).
	InFlight     int `json:"inFlight"`
	BulkInFlight int `json:"bulkInFlight"`
	// BulkRejected / PriorityRejected count rejections per class since
	// start (counter). Shed counts the subset of bulk rejections caused
	// by CPU load shedding rather than permit exhaustion.
	BulkRejected     uint64 `json:"bulkRejected"`
	PriorityRejected uint64 `json:"priorityRejected"`
	Shed             uint64 `json:"shed"`
	// ShedLoad is the configured shed threshold (0 = disabled).
	ShedLoad float64 `json:"shedLoad,omitempty"`
}

// Snapshot returns the gate's current counters. Counters are read
// individually (not under one lock), so a snapshot taken under load is
// consistent only per field — fine for monitoring.
func (g *Gate) Snapshot() GateSnapshot {
	return GateSnapshot{
		Limit:            int(g.limit),
		BulkLimit:        int(g.bulkLimit),
		InFlight:         int(g.inflight.Load()),
		BulkInFlight:     int(g.bulkInflight.Load()),
		BulkRejected:     g.bulkRejected.Load(),
		PriorityRejected: g.priorityRejected.Load(),
		Shed:             g.shed.Load(),
		ShedLoad:         g.shedLoad,
	}
}
