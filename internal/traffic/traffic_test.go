package traffic

import (
	"sync"
	"testing"
	"time"
)

func TestGateDefaultsAndLimits(t *testing.T) {
	g := NewGate(GateConfig{Limit: 8})
	if g.Limit() != 8 {
		t.Fatalf("Limit() = %d, want 8", g.Limit())
	}
	if g.BulkLimit() != 6 { // 0.75 × 8
		t.Fatalf("BulkLimit() = %d, want 6", g.BulkLimit())
	}
	// BulkShare 1 still reserves one priority permit when Limit >= 2.
	g = NewGate(GateConfig{Limit: 4, BulkShare: 1})
	if g.BulkLimit() != 3 {
		t.Fatalf("BulkLimit() with share 1 = %d, want 3", g.BulkLimit())
	}
	// A single permit is necessarily shared.
	g = NewGate(GateConfig{Limit: 1})
	if g.BulkLimit() != 1 {
		t.Fatalf("BulkLimit() with limit 1 = %d, want 1", g.BulkLimit())
	}
	// Zero config resolves to GOMAXPROCS.
	if NewGate(GateConfig{}).Limit() < 1 {
		t.Fatal("zero-config gate has no permits")
	}
}

// TestGatePriorityReserve pins the starvation guarantee: with bulk at
// its cap, priority work is still admitted up to the total limit, and
// bulk stays rejected until a bulk permit frees.
func TestGatePriorityReserve(t *testing.T) {
	g := NewGate(GateConfig{Limit: 4, BulkShare: 0.5})
	if g.BulkLimit() != 2 {
		t.Fatalf("BulkLimit() = %d, want 2", g.BulkLimit())
	}
	for i := 0; i < 2; i++ {
		if !g.TryAcquire(Bulk) {
			t.Fatalf("bulk acquire %d refused below cap", i)
		}
	}
	if g.TryAcquire(Bulk) {
		t.Fatal("bulk admitted above its cap")
	}
	for i := 0; i < 2; i++ {
		if !g.TryAcquire(Priority) {
			t.Fatalf("priority acquire %d refused with reserve free", i)
		}
	}
	if g.TryAcquire(Priority) {
		t.Fatal("priority admitted above the total limit")
	}
	snap := g.Snapshot()
	if snap.InFlight != 4 || snap.BulkInFlight != 2 {
		t.Fatalf("snapshot occupancy = %d/%d, want 4/2", snap.InFlight, snap.BulkInFlight)
	}
	if snap.BulkRejected != 1 || snap.PriorityRejected != 1 {
		t.Fatalf("snapshot rejections = %d bulk, %d priority, want 1 and 1", snap.BulkRejected, snap.PriorityRejected)
	}
	if got := g.Rejected(); got != 2 {
		t.Fatalf("Rejected() = %d, want 2", got)
	}
	g.Release(Bulk)
	if !g.TryAcquire(Bulk) {
		t.Fatal("bulk refused after a bulk release")
	}
}

// TestGateShedsBulkUnderLoad: the load hook sheds bulk but never
// priority, and sheds are counted separately.
func TestGateShedsBulkUnderLoad(t *testing.T) {
	load := 1.0
	g := NewGate(GateConfig{Limit: 4, ShedLoad: 0.9, Load: func() float64 { return load }})
	if g.TryAcquire(Bulk) {
		t.Fatal("bulk admitted at full load")
	}
	if !g.TryAcquire(Priority) {
		t.Fatal("priority shed — only bulk may be")
	}
	g.Release(Priority)
	if s := g.Snapshot(); s.Shed != 1 || s.BulkRejected != 1 {
		t.Fatalf("shed/bulkRejected = %d/%d, want 1/1", s.Shed, s.BulkRejected)
	}
	load = 0.1
	if !g.TryAcquire(Bulk) {
		t.Fatal("bulk refused at low load")
	}
	g.Release(Bulk)
}

// TestGateConcurrent hammers the gate from both classes under -race and
// checks the invariants: occupancy never exceeds the limits and the
// books balance at the end.
func TestGateConcurrent(t *testing.T) {
	g := NewGate(GateConfig{Limit: 6, BulkShare: 0.5})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		class := Bulk
		if w%2 == 1 {
			class = Priority
		}
		wg.Add(1)
		go func(c Class) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if g.TryAcquire(c) {
					if n := g.InFlight(); n > g.Limit() {
						t.Errorf("inflight %d exceeds limit %d", n, g.Limit())
					}
					g.Release(c)
				}
			}
		}(class)
	}
	wg.Wait()
	if s := g.Snapshot(); s.InFlight != 0 || s.BulkInFlight != 0 {
		t.Fatalf("occupancy after drain = %d/%d, want 0/0", s.InFlight, s.BulkInFlight)
	}
}

// TestLimiterRefill drives a bucket with a fake clock through burst
// exhaustion, a computed Retry-After, refill, and recovery.
func TestLimiterRefill(t *testing.T) {
	clock := time.Unix(1000, 0)
	l := NewLimiter(LimiterConfig{Rate: 1, Burst: 2, Now: func() time.Time { return clock }})
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("c"); !ok {
			t.Fatalf("request %d refused inside burst", i)
		}
	}
	ok, retry := l.Allow("c")
	if ok {
		t.Fatal("request admitted with an empty bucket")
	}
	// The bucket is exactly empty, so one token takes 1/rate = 1s.
	if retry <= 900*time.Millisecond || retry > time.Second {
		t.Fatalf("retry = %v, want ~1s", retry)
	}
	clock = clock.Add(retry)
	if ok, _ := l.Allow("c"); !ok {
		t.Fatal("request refused after waiting the advertised retry")
	}
	// Refill caps at the burst.
	clock = clock.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("c"); !ok {
			t.Fatalf("request %d refused after a long idle", i)
		}
	}
	if ok, _ := l.Allow("c"); ok {
		t.Fatal("burst did not cap the refill")
	}
	st := l.Stats()
	if st.Allowed != 5 || st.Limited != 2 || st.Clients != 1 {
		t.Fatalf("stats = %+v, want 5 allowed, 2 limited, 1 client", st)
	}
}

// TestLimiterIsolatesClients: one client draining its bucket must not
// affect another's.
func TestLimiterIsolatesClients(t *testing.T) {
	clock := time.Unix(1000, 0)
	l := NewLimiter(LimiterConfig{Rate: 1, Burst: 1, Now: func() time.Time { return clock }})
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("first request from a refused")
	}
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("second request from a admitted past its burst")
	}
	if ok, _ := l.Allow("b"); !ok {
		t.Fatal("b throttled by a's empty bucket")
	}
}

// TestLimiterEvictsLRU bounds the client map: the least recently seen
// bucket goes first, and an evicted client returns with a fresh burst.
func TestLimiterEvictsLRU(t *testing.T) {
	clock := time.Unix(1000, 0)
	l := NewLimiter(LimiterConfig{Rate: 1, Burst: 1, MaxClients: 2, Now: func() time.Time { return clock }})
	l.Allow("a")
	l.Allow("b")
	l.Allow("a") // refresh a; b is now LRU
	l.Allow("c") // evicts b
	st := l.Stats()
	if st.Clients != 2 || st.Evicted != 1 {
		t.Fatalf("stats = %+v, want 2 clients, 1 evicted", st)
	}
	if ok, _ := l.Allow("b"); !ok {
		t.Fatal("evicted client did not restart with a full bucket")
	}
}

func TestLimiterDisabled(t *testing.T) {
	var l *Limiter
	if l = NewLimiter(LimiterConfig{}); l != nil {
		t.Fatal("zero rate did not disable the limiter")
	}
	if ok, retry := l.Allow("x"); !ok || retry != 0 {
		t.Fatal("nil limiter rejected a request")
	}
	if st := l.Stats(); st != (LimiterStats{}) {
		t.Fatalf("nil limiter stats = %+v, want zero", st)
	}
	if l.Rate() != 0 {
		t.Fatal("nil limiter reports a rate")
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{time.Millisecond, 10},     // 1000µs → Len64=10, [512µs, 1024µs)
		{time.Second, 20},          // 1e6 µs → Len64 = 20
		{100 * 24 * time.Hour, 39}, // clamped to the last bucket
		{-time.Second, 0},          // negative clamps to the first
	}
	for _, tc := range cases {
		if got := bucketIndex(tc.d); got != tc.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	// 90 fast observations and 10 slow ones: p50/p90 land in the fast
	// bucket, p99 in the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(1500 * time.Microsecond) // (1.024ms, 2.048ms]
	}
	for i := 0; i < 10; i++ {
		h.Observe(300 * time.Millisecond) // (262ms, 524ms]
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	wantSum := 90*1.5 + 10*300
	if s.SumMS < wantSum-0.01 || s.SumMS > wantSum+0.01 {
		t.Fatalf("sum = %v ms, want %v", s.SumMS, wantSum)
	}
	if s.P50MS < 1.024 || s.P50MS > 2.048 {
		t.Fatalf("p50 = %v ms, want within the fast bucket", s.P50MS)
	}
	if s.P99MS < 262.144 || s.P99MS > 524.288 {
		t.Fatalf("p99 = %v ms, want within the slow bucket", s.P99MS)
	}
	if len(s.Buckets) != 2 || s.Buckets[0].Count != 90 || s.Buckets[1].Count != 10 {
		t.Fatalf("buckets = %+v, want two (90, 10)", s.Buckets)
	}
	if s.Buckets[0].LeMS >= s.Buckets[1].LeMS {
		t.Fatalf("bucket bounds out of order: %+v", s.Buckets)
	}
}

func TestLoadSamplerDeltas(t *testing.T) {
	clock := time.Unix(0, 0)
	cpu := 0.0
	s := NewLoadSamplerWith(func() (float64, bool) { return cpu, true }, func() time.Time { return clock }, time.Second)
	s.capacity = 2 // pin GOMAXPROCS for the arithmetic below
	if got := s.Load(); got != 0 {
		t.Fatalf("baseline Load() = %v, want 0", got)
	}
	// Within the cache interval nothing is re-read.
	cpu = 100
	clock = clock.Add(500 * time.Millisecond)
	if got := s.Load(); got != 0 {
		t.Fatalf("cached Load() = %v, want 0", got)
	}
	// 1 CPU-second over 1 wall second at capacity 2 → 0.5.
	cpu = 1.0
	clock = time.Unix(1, 0)
	if got := s.Load(); got != 0.5 {
		t.Fatalf("Load() = %v, want 0.5", got)
	}
	// Clamped to 1 even if the reader jumps past capacity.
	cpu = 100
	clock = clock.Add(time.Second)
	if got := s.Load(); got != 1 {
		t.Fatalf("overloaded Load() = %v, want 1", got)
	}
}

func TestLoadSamplerUnreadable(t *testing.T) {
	clock := time.Unix(0, 0)
	s := NewLoadSamplerWith(func() (float64, bool) { return 0, false }, func() time.Time { return clock }, time.Millisecond)
	for i := 0; i < 3; i++ {
		clock = clock.Add(time.Second)
		if got := s.Load(); got != 0 {
			t.Fatalf("unreadable Load() = %v, want 0", got)
		}
	}
}

// TestLoadSamplerProc exercises the real procfs reader where available;
// the burn loop guarantees a non-zero delta on Linux.
func TestLoadSamplerProc(t *testing.T) {
	if _, ok := readProcSelfCPU(); !ok {
		t.Skip("/proc/self/stat not readable")
	}
	s := NewLoadSampler()
	s.minInterval = time.Nanosecond
	_ = s.Load()
	deadline := time.Now().Add(200 * time.Millisecond)
	x := 0.0
	for time.Now().Before(deadline) {
		x += 1.0 // busy loop to accrue CPU time
	}
	got := s.Load()
	if got < 0 || got > 1 {
		t.Fatalf("Load() = %v outside [0, 1] (burn=%v)", got, x)
	}
}
