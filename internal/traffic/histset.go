package traffic

import "time"

// HistogramSet labels one Histogram per route pattern plus an "other"
// bucket for unmatched requests. The pattern set is fixed at
// construction, so Observe is lock-free and the set is safe for
// concurrent use; both the serving layer and the cluster router put one
// in front of their muxes.
type HistogramSet struct {
	hist  map[string]*Histogram
	other *Histogram
}

// NewHistogramSet builds a set with one histogram per pattern.
func NewHistogramSet(patterns ...string) *HistogramSet {
	s := &HistogramSet{
		hist:  make(map[string]*Histogram, len(patterns)),
		other: &Histogram{},
	}
	for _, p := range patterns {
		s.hist[p] = &Histogram{}
	}
	return s
}

// Observe records one request duration under its route pattern;
// unknown patterns (unmatched routes) pool under "other".
func (s *HistogramSet) Observe(pattern string, d time.Duration) {
	h := s.hist[pattern]
	if h == nil {
		h = s.other
	}
	h.Observe(d)
}

// Snapshot copies every histogram, keyed by pattern plus "other".
func (s *HistogramSet) Snapshot() map[string]HistogramSnapshot {
	out := make(map[string]HistogramSnapshot, len(s.hist)+1)
	for p, h := range s.hist {
		out[p] = h.Snapshot()
	}
	out["other"] = s.other.Snapshot()
	return out
}
