package traffic

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count: bucket i (i >= 1) covers
// durations in [2^(i-1), 2^i) microseconds, bucket 0 covers [0, 1) µs,
// and the last bucket absorbs everything from ~2^38 µs (~3.2 days) up.
const histBuckets = 40

// Histogram is a fixed log-spaced latency histogram. Observe is
// allocation-free and lock-free (three atomic adds), so it can sit on
// every request path. The zero value is ready to use.
type Histogram struct {
	counts   [histBuckets]atomic.Uint64
	count    atomic.Uint64
	sumNanos atomic.Int64
}

// bucketIndex maps a duration to its bucket: the position of the
// highest set bit of the duration in microseconds.
func bucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	i := bits.Len64(uint64(d / time.Microsecond))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Observe records one request duration.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// bucketUpperMS is bucket i's exclusive upper bound in milliseconds.
func bucketUpperMS(i int) float64 {
	return math.Ldexp(1, i) / 1000 // 2^i µs → ms
}

// HistogramBucket is one non-empty bucket in a snapshot: Count
// observations at most LeMS milliseconds (exclusive upper bound of a
// log-spaced bucket; the bucket below it, if any, bounds it from
// below).
type HistogramBucket struct {
	LeMS  float64 `json:"leMs"`
	Count uint64  `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a Histogram: totals,
// estimated quantiles in milliseconds, and the non-empty buckets.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	SumMS float64 `json:"sumMs"`
	P50MS float64 `json:"p50Ms"`
	P90MS float64 `json:"p90Ms"`
	P99MS float64 `json:"p99Ms"`
	// Buckets lists only non-empty buckets, smallest bound first.
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's counters and estimates p50/p90/p99 by
// log-linear interpolation inside the covering bucket. Counters are
// read individually, so a snapshot under load is approximate — fine for
// monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [histBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	snap := HistogramSnapshot{
		Count: total,
		SumMS: float64(h.sumNanos.Load()) / 1e6,
	}
	if total == 0 {
		return snap
	}
	snap.P50MS = quantile(&counts, total, 0.50)
	snap.P90MS = quantile(&counts, total, 0.90)
	snap.P99MS = quantile(&counts, total, 0.99)
	for i, c := range counts {
		if c > 0 {
			snap.Buckets = append(snap.Buckets, HistogramBucket{LeMS: bucketUpperMS(i), Count: c})
		}
	}
	return snap
}

// quantile estimates the q-quantile in milliseconds from bucket counts:
// find the bucket holding the q·total-th observation and interpolate
// linearly between its bounds by the observation's rank within it.
func quantile(counts *[histBuckets]uint64, total uint64, q float64) float64 {
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= rank {
			lower := 0.0
			if i > 0 {
				lower = bucketUpperMS(i - 1)
			}
			upper := bucketUpperMS(i)
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + (upper-lower)*frac
		}
		cum += float64(c)
	}
	return bucketUpperMS(histBuckets - 1)
}
