// Package pricing maps task prices to on-hold clock rates λo(c).
//
// The paper's Linearity Hypothesis (Sec 3.3.2) posits λo(c) = k·c + b over
// the operating price range; the synthetic evaluation (Sec 5.1) stresses
// the tuning strategies under four linear models and two non-linear ones
// (quadratic and logarithmic). All six, plus an empirical table model
// matching Table 1 of the paper, are provided here behind one interface.
package pricing

import (
	"fmt"
	"math"
	"sort"
)

// RateModel maps a per-repetition price (in discrete budget units) to the
// on-hold clock rate λo of a task offered at that price.
type RateModel interface {
	// Rate returns λo(price). Implementations must return a positive,
	// finite, non-decreasing function of price for price >= 1.
	Rate(price float64) float64
	// Name is a short identifier used in experiment output ("1+p", …).
	Name() string
}

// Linear is the paper's Hypothesis 1: λo(c) = K·c + B.
type Linear struct {
	K float64 // slope (price sensitivity)
	B float64 // intercept (base attractiveness)
}

// Rate returns K·price + B.
func (l Linear) Rate(price float64) float64 { return l.K*price + l.B }

// Name identifies the model, e.g. "10p+1".
func (l Linear) Name() string {
	switch {
	case l.K == 1 && l.B == 0:
		return "p"
	case l.K == 1:
		return fmt.Sprintf("p+%g", l.B)
	case l.B == 0:
		return fmt.Sprintf("%gp", l.K)
	default:
		return fmt.Sprintf("%gp+%g", l.K, l.B)
	}
}

// Quadratic is the synthetic non-linear model λo(c) = 1 + c².
type Quadratic struct{}

// Rate returns 1 + price².
func (Quadratic) Rate(price float64) float64 { return 1 + price*price }

// Name returns "1+p^2".
func (Quadratic) Name() string { return "1+p^2" }

// Logarithmic is the synthetic non-linear model λo(c) = log(1 + c).
type Logarithmic struct{}

// Rate returns log(1 + price).
func (Logarithmic) Rate(price float64) float64 { return math.Log1p(price) }

// Name returns "log(1+p)".
func (Logarithmic) Name() string { return "log(1+p)" }

// Scaled wraps a model and multiplies its rate by Factor; used to model
// task difficulty damping attractiveness (harder tasks are taken up more
// slowly at the same price, Fig 5(a) of the paper).
type Scaled struct {
	Base   RateModel
	Factor float64
}

// Rate returns Factor · Base.Rate(price).
func (s Scaled) Rate(price float64) float64 { return s.Factor * s.Base.Rate(price) }

// Name returns "<factor>x(<base>)".
func (s Scaled) Name() string { return fmt.Sprintf("%gx(%s)", s.Factor, s.Base.Name()) }

// Floored clamps a model's rate to a small positive floor so tuners can
// evaluate any price >= 1 on it. Inferred models need it: a least-squares
// linearity fit can extrapolate to non-positive rates below the observed
// price range, which would violate the RateModel contract every solver
// assumes.
type Floored struct {
	Base RateModel
	// Floor is the minimum rate; <= 0 means the 1e-6 default.
	Floor float64
}

// Rate returns max(Base.Rate(price), floor).
func (f Floored) Rate(price float64) float64 {
	floor := f.Floor
	if floor <= 0 {
		floor = 1e-6
	}
	if r := f.Base.Rate(price); r > floor {
		return r
	}
	return floor
}

// Name returns "floor(<base>)".
func (f Floored) Name() string { return "floor(" + f.Base.Name() + ")" }

// Table interpolates an empirical price→rate table, e.g. Table 1 of the
// paper (sorting votes: $2→2, $3→3, $1.5→1.5; yes/no votes: $2→3, $3→5,
// $1.5→2). Rates between knots are linearly interpolated; beyond the ends
// the nearest segment is extrapolated, floored at a tiny positive rate.
type Table struct {
	name   string
	prices []float64 // ascending
	rates  []float64
}

// NewTable builds an interpolating model from price→rate pairs. At least
// two distinct prices are required; rates must be positive.
func NewTable(name string, points map[float64]float64) (*Table, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("pricing: table %q needs at least 2 points, got %d", name, len(points))
	}
	t := &Table{name: name}
	for p := range points {
		t.prices = append(t.prices, p)
	}
	sort.Float64s(t.prices)
	for _, p := range t.prices {
		r := points[p]
		if !(r > 0) {
			return nil, fmt.Errorf("pricing: table %q has non-positive rate %v at price %v", name, r, p)
		}
		t.rates = append(t.rates, r)
	}
	return t, nil
}

// Rate linearly interpolates (and extrapolates) the table.
func (t *Table) Rate(price float64) float64 {
	const floor = 1e-9
	n := len(t.prices)
	i := sort.SearchFloat64s(t.prices, price)
	switch {
	case i == 0:
		i = 1 // extrapolate from the first segment
	case i >= n:
		i = n - 1 // extrapolate from the last segment
	}
	p0, p1 := t.prices[i-1], t.prices[i]
	r0, r1 := t.rates[i-1], t.rates[i]
	r := r0 + (r1-r0)*(price-p0)/(p1-p0)
	if r < floor {
		return floor
	}
	return r
}

// Name returns the table's identifier.
func (t *Table) Name() string { return t.name }

// Paper's Table 1 (HPU processing rate for the motivation example):
// reward $1.5/$2/$3 against the two task types.

// SortVoteTable returns the "sorting vote" column of Table 1.
func SortVoteTable() *Table {
	t, err := NewTable("sort-vote", map[float64]float64{1.5: 1.5, 2: 2, 3: 3})
	if err != nil {
		panic("pricing: SortVoteTable: " + err.Error()) // static data, cannot fail
	}
	return t
}

// YesNoVoteTable returns the "yes or no vote" column of Table 1.
func YesNoVoteTable() *Table {
	t, err := NewTable("yesno-vote", map[float64]float64{1.5: 2, 2: 3, 3: 5})
	if err != nil {
		panic("pricing: YesNoVoteTable: " + err.Error())
	}
	return t
}

// SyntheticModels returns the six price→rate models of the synthetic
// evaluation (Sec 5.1), in the paper's (a)–(f) panel order:
// λ = p+1, 10p+1, 0.1p+10, 3p+3, 1+p², log(1+p).
func SyntheticModels() []RateModel {
	return []RateModel{
		Linear{K: 1, B: 1},
		Linear{K: 10, B: 1},
		Linear{K: 0.1, B: 10},
		Linear{K: 3, B: 3},
		Quadratic{},
		Logarithmic{},
	}
}
