package pricing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinearRateAndName(t *testing.T) {
	l := Linear{K: 10, B: 1}
	if got := l.Rate(3); got != 31 {
		t.Errorf("Rate(3) = %v, want 31", got)
	}
	cases := []struct {
		m    Linear
		want string
	}{
		{Linear{K: 1, B: 0}, "p"},
		{Linear{K: 1, B: 1}, "p+1"},
		{Linear{K: 3, B: 0}, "3p"},
		{Linear{K: 10, B: 1}, "10p+1"},
		{Linear{K: 0.1, B: 10}, "0.1p+10"},
	}
	for _, c := range cases {
		if got := c.m.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

func TestQuadraticAndLogarithmic(t *testing.T) {
	if got := (Quadratic{}).Rate(3); got != 10 {
		t.Errorf("quadratic Rate(3) = %v, want 10", got)
	}
	if got := (Logarithmic{}).Rate(math.E - 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("log Rate(e-1) = %v, want 1", got)
	}
	if (Quadratic{}).Name() == "" || (Logarithmic{}).Name() == "" {
		t.Error("empty names")
	}
}

func TestScaled(t *testing.T) {
	s := Scaled{Base: Linear{K: 2, B: 0}, Factor: 0.5}
	if got := s.Rate(4); got != 4 {
		t.Errorf("scaled Rate(4) = %v, want 4", got)
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
}

func TestTableInterpolation(t *testing.T) {
	tbl, err := NewTable("t", map[float64]float64{1: 1, 3: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Rate(2); got != 3 {
		t.Errorf("midpoint Rate(2) = %v, want 3", got)
	}
	if got := tbl.Rate(1); got != 1 {
		t.Errorf("knot Rate(1) = %v, want 1", got)
	}
	if got := tbl.Rate(3); got != 5 {
		t.Errorf("knot Rate(3) = %v, want 5", got)
	}
	// Extrapolation continues the boundary segments.
	if got := tbl.Rate(4); got != 7 {
		t.Errorf("extrapolated Rate(4) = %v, want 7", got)
	}
	if got := tbl.Rate(0.5); got <= 0 {
		t.Errorf("low extrapolation should be floored positive, got %v", got)
	}
	if got := tbl.Rate(-100); got <= 0 {
		t.Errorf("rate must stay positive, got %v", got)
	}
}

func TestTableErrors(t *testing.T) {
	if _, err := NewTable("x", map[float64]float64{1: 1}); err == nil {
		t.Error("single-point table accepted")
	}
	if _, err := NewTable("x", map[float64]float64{1: 1, 2: -3}); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestPaperTable1Values(t *testing.T) {
	sortT := SortVoteTable()
	yesNo := YesNoVoteTable()
	// Exact knots from Table 1 of the paper.
	checks := []struct {
		tbl   *Table
		price float64
		want  float64
	}{
		{sortT, 2, 2}, {sortT, 3, 3}, {sortT, 1.5, 1.5},
		{yesNo, 2, 3}, {yesNo, 3, 5}, {yesNo, 1.5, 2},
	}
	for _, c := range checks {
		if got := c.tbl.Rate(c.price); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s.Rate(%v) = %v, want %v", c.tbl.Name(), c.price, got, c.want)
		}
	}
	// Yes/no voting is faster at every price (the motivation's premise).
	for _, p := range []float64{1.5, 2, 2.5, 3} {
		if yesNo.Rate(p) <= sortT.Rate(p) {
			t.Errorf("at price %v, yes/no (%v) should exceed sorting (%v)",
				p, yesNo.Rate(p), sortT.Rate(p))
		}
	}
}

func TestSyntheticModelsOrderAndCount(t *testing.T) {
	ms := SyntheticModels()
	if len(ms) != 6 {
		t.Fatalf("want 6 synthetic models, got %d", len(ms))
	}
	wantNames := []string{"p+1", "10p+1", "0.1p+10", "3p+3", "1+p^2", "log(1+p)"}
	for i, m := range ms {
		if m.Name() != wantNames[i] {
			t.Errorf("model %d = %q, want %q", i, m.Name(), wantNames[i])
		}
	}
}

func TestAllModelsMonotoneNonDecreasing(t *testing.T) {
	models := SyntheticModels()
	models = append(models, SortVoteTable(), YesNoVoteTable(),
		Scaled{Base: Linear{K: 1, B: 1}, Factor: 0.7})
	prop := func(p8, d8 uint8) bool {
		p := 1 + float64(p8%100)/4
		q := p + float64(d8%100)/10
		for _, m := range models {
			if m.Rate(q) < m.Rate(p)-1e-12 {
				return false
			}
			if m.Rate(p) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFloored(t *testing.T) {
	f := Floored{Base: Linear{K: 1, B: -5}}
	if got := f.Rate(1); got != 1e-6 {
		t.Errorf("below-floor rate %v, want the 1e-6 default floor", got)
	}
	if got := f.Rate(10); got != 5 {
		t.Errorf("above-floor rate %v, want the base's 5", got)
	}
	custom := Floored{Base: Linear{K: 1, B: -5}, Floor: 0.5}
	if got := custom.Rate(1); got != 0.5 {
		t.Errorf("custom floor rate %v, want 0.5", got)
	}
	if name := f.Name(); name != "floor(p+-5)" {
		t.Errorf("name %q", name)
	}
}
