package workload

import (
	"math"
	"reflect"
	"testing"

	"hputune/internal/inference"
)

// TestDyadicTraceIsDeterministicPerClient pins the generator contract:
// the same client always gets the same records, different clients get
// different ones (the per-client phase), and every on-hold duration is
// a positive multiple of 1/4.
func TestDyadicTraceIsDeterministicPerClient(t *testing.T) {
	prices := []int{2, 4, 6}
	a1 := DyadicTrace("alpha", prices, 5)
	a2 := DyadicTrace("alpha", prices, 5)
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("same client, same arguments, different trace")
	}
	if len(a1) != len(prices)*5 {
		t.Fatalf("%d records, want %d", len(a1), len(prices)*5)
	}
	// The phase takes only four values, so any two specific clients may
	// collide; across several clients at least two sequences must differ.
	distinct := map[float64]bool{}
	for _, c := range []string{"alpha", "bravo", "charlie", "delta", "echo"} {
		distinct[DyadicTrace(c, prices, 5)[0].OnHold()] = true
	}
	if len(distinct) < 2 {
		t.Fatal("five clients produced one duration sequence; the phase does nothing")
	}
	for _, r := range a1 {
		d := r.OnHold()
		if !(d > 0) || d != math.Trunc(d*4)/4 {
			t.Fatalf("record %s: on-hold %v is not a positive multiple of 1/4", r.TaskID, d)
		}
	}
}

// TestDyadicTracePartitionOrderInvariance is the property the cluster
// parity suite stands on: because every duration is dyadic, folding the
// concatenated trace into aggregates record by record and merging
// per-client partition maps in a different order produce bit-identical
// totals, hence a bit-identical fit.
func TestDyadicTracePartitionOrderInvariance(t *testing.T) {
	prices := []int{2, 4, 6, 8}
	clients := []string{"alpha", "bravo", "charlie", "delta"}

	// Single-process order: all records, client after client.
	whole := make(map[int]inference.PriceAggregate)
	for _, c := range clients {
		for _, r := range DyadicTrace(c, prices, 7) {
			agg := whole[r.Price]
			agg.Add(1, r.OnHold())
			whole[r.Price] = agg
		}
	}

	// Partitioned order: per-client maps merged back to front.
	parts := make([]map[int]inference.PriceAggregate, len(clients))
	for i, c := range clients {
		parts[i] = make(map[int]inference.PriceAggregate)
		for _, r := range DyadicTrace(c, prices, 7) {
			agg := parts[i][r.Price]
			agg.Add(1, r.OnHold())
			parts[i][r.Price] = agg
		}
	}
	merged := make(map[int]inference.PriceAggregate)
	for i := len(parts) - 1; i >= 0; i-- {
		merged = inference.MergeAggregates(merged, parts[i])
	}

	for price, w := range whole {
		g := merged[price]
		if g.N != w.N || math.Float64bits(g.Total) != math.Float64bits(w.Total) {
			t.Fatalf("price %d: merged %+v != sequential %+v", price, g, w)
		}
	}
	wf, err := inference.FitAggregates(whole)
	if err != nil {
		t.Fatalf("fit whole: %v", err)
	}
	mf, err := inference.FitAggregates(merged)
	if err != nil {
		t.Fatalf("fit merged: %v", err)
	}
	if math.Float64bits(wf.Fit.Slope) != math.Float64bits(mf.Fit.Slope) ||
		math.Float64bits(wf.Fit.Intercept) != math.Float64bits(mf.Fit.Intercept) {
		t.Fatalf("fits diverge: %+v vs %+v", wf.Fit, mf.Fit)
	}
	// The generated rates must rise with price: a published-fit guard
	// (slope >= 0, positive rate at price 1) has to accept this fit.
	if !(wf.Fit.Slope >= 0) || !(wf.Fit.Slope*1+wf.Fit.Intercept > 0) {
		t.Fatalf("fit %+v violates the rate-model contract the guard enforces", wf.Fit)
	}
}
