package workload

import (
	"context"
	"testing"

	"hputune/internal/campaign"
)

func TestPaperCampaignFleetShape(t *testing.T) {
	cfgs, err := PaperCampaignFleet(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) < 8 {
		t.Fatalf("fleet has %d campaigns, want >= 8", len(cfgs))
	}
	drifted := 0
	names := map[string]bool{}
	seeds := map[uint64]bool{}
	for i, cfg := range cfgs {
		if names[cfg.Name] {
			t.Fatalf("duplicate campaign name %q", cfg.Name)
		}
		names[cfg.Name] = true
		if seeds[cfg.Seed] {
			t.Fatalf("campaign %d reuses a seed", i)
		}
		seeds[cfg.Seed] = true
		if cfg.Drift.Kind != campaign.DriftNone {
			drifted++
		}
		// Every preset must be runnable as-is.
		if _, err := campaign.New(nil, cfg); err != nil {
			t.Fatalf("campaign %q invalid: %v", cfg.Name, err)
		}
	}
	if drifted < 2 {
		t.Fatalf("fleet has %d drifted campaigns, want >= 2", drifted)
	}
}

func TestPaperCampaignFleetDeterministic(t *testing.T) {
	a, err := PaperCampaignFleet(42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PaperCampaignFleet(42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Seed != b[i].Seed || a[i].Name != b[i].Name {
			t.Fatalf("fleet build not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	other, err := PaperCampaignFleet(43)
	if err != nil {
		t.Fatal(err)
	}
	if other[0].Seed == a[0].Seed {
		t.Fatal("different fleet seeds produced the same campaign seed")
	}
}

// TestPaperCampaignFleetRuns drives the whole fleet to terminal states —
// the roadmap's scenario-diversity smoke: every campaign must stop for
// the reason its design dictates.
func TestPaperCampaignFleetRuns(t *testing.T) {
	cfgs, err := PaperCampaignFleet(1)
	if err != nil {
		t.Fatal(err)
	}
	results, err := campaign.RunFleet(context.Background(), nil, cfgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	converged := 0
	for i, r := range results {
		if !r.Status.Terminal() {
			t.Fatalf("campaign %q ended non-terminal: %s", r.Name, r.Status)
		}
		if r.Status == campaign.StatusFailed {
			t.Fatalf("campaign %q failed: %s", r.Name, r.Reason)
		}
		if r.RoundsRun < 2 {
			t.Fatalf("campaign %q ran only %d rounds", r.Name, r.RoundsRun)
		}
		if cfgs[i].Drift.Kind == campaign.DriftRate && r.Status != campaign.StatusBudgetExhausted {
			// The rate-drift variant runs epsilon 0 on a tight budget: a
			// perpetually moving fit must stop only on budget exhaustion.
			t.Fatalf("rate-drift campaign stopped with %s (%s), want %s", r.Status, r.Reason, campaign.StatusBudgetExhausted)
		}
		if r.Converged {
			converged++
		}
	}
	if converged < 3 {
		t.Fatalf("only %d campaigns converged; the stationary scenarios should", converged)
	}
}

func TestCrowdQueryCampaignFleetShape(t *testing.T) {
	cfgs, err := CrowdQueryCampaignFleet(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 4 {
		t.Fatalf("crowd fleet has %d campaigns, want 4", len(cfgs))
	}
	names := map[string]bool{}
	seeds := map[uint64]bool{}
	kinds := map[string]int{}
	for i, cfg := range cfgs {
		if names[cfg.Name] {
			t.Fatalf("duplicate campaign name %q", cfg.Name)
		}
		names[cfg.Name] = true
		if seeds[cfg.Seed] {
			t.Fatalf("campaign %d reuses a seed", i)
		}
		seeds[cfg.Seed] = true
		if cfg.Query == nil {
			t.Fatalf("campaign %q has no crowd query", cfg.Name)
		}
		kinds[cfg.Query.Kind]++
		// Every preset must be runnable as-is.
		if _, err := campaign.New(nil, cfg); err != nil {
			t.Fatalf("campaign %q invalid: %v", cfg.Name, err)
		}
	}
	if kinds["topk"] == 0 || kinds["groupby"] == 0 {
		t.Fatalf("fleet misses an operator: %v", kinds)
	}
	sloed, retained := 0, 0
	for _, cfg := range cfgs {
		if cfg.Deadline != nil {
			sloed++
		}
		if cfg.Retainer != nil {
			retained++
		}
	}
	if sloed == 0 || retained == 0 {
		t.Fatalf("fleet misses a regime: %d deadline, %d retainer", sloed, retained)
	}
}

func TestCrowdQueryCampaignFleetDeterministic(t *testing.T) {
	a, err := CrowdQueryCampaignFleet(42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrowdQueryCampaignFleet(42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Seed != b[i].Seed || a[i].Name != b[i].Name {
			t.Fatalf("fleet build not deterministic at %d", i)
		}
	}
	// Dataset seeds are fixed per preset: the query workload is shared
	// across fleet seeds, only marketplace randomness varies.
	other, err := CrowdQueryCampaignFleet(43)
	if err != nil {
		t.Fatal(err)
	}
	if other[0].Seed == a[0].Seed {
		t.Fatal("different fleet seeds produced the same campaign seed")
	}
	if other[0].Query.DatasetSeed != a[0].Query.DatasetSeed {
		t.Fatal("dataset seed varies with the fleet seed")
	}
}

// TestCrowdQueryCampaignFleetRuns drives the crowd fleet closed loop to
// terminal states: all four presets must stop for a designed reason
// (convergence, budget, or the round deadline — never a failure), with
// the regime extras present in their snapshots.
func TestCrowdQueryCampaignFleetRuns(t *testing.T) {
	cfgs, err := CrowdQueryCampaignFleet(1)
	if err != nil {
		t.Fatal(err)
	}
	results, err := campaign.RunFleet(context.Background(), nil, cfgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !r.Status.Terminal() {
			t.Errorf("campaign %q finished non-terminal: %s", r.Name, r.Status)
		}
		if r.Status == campaign.StatusFailed {
			t.Errorf("campaign %q failed: %s", r.Name, r.Reason)
		}
		if r.RoundsRun == 0 {
			t.Errorf("campaign %q ran no rounds", r.Name)
		}
		for _, snap := range r.Rounds {
			if snap.Query == nil {
				t.Fatalf("campaign %q round %d has no query info", r.Name, snap.Round)
			}
			if cfgs[i].Deadline != nil && snap.SLO == nil {
				t.Errorf("campaign %q round %d misses SLO info", r.Name, snap.Round)
			}
			if cfgs[i].Retainer != nil && snap.Retainer == nil {
				t.Errorf("campaign %q round %d misses retainer info", r.Name, snap.Round)
			}
		}
	}
}
