package workload

import (
	"fmt"
	"hash/fnv"

	"hputune/internal/market"
)

// DyadicTrace builds a deterministic synthetic trace for one client:
// perPrice repetition records at every price in prices, with on-hold
// durations that are exact dyadic rationals (multiples of 1/4). Dyadic
// durations make floating-point sums of any subset exact, so the same
// records ingested in any order — or partitioned across cluster nodes
// and merged as sufficient statistics — produce bit-identical per-price
// totals and therefore a bit-identical fit. That is what cluster/single
// -process parity tests and benchmarks need from a trace: determinism
// down to the last ULP, not realism.
//
// Durations decrease with price (workers accept better-paid tasks
// faster), so the MLE rates increase with price and the least-squares
// line through them has the positive slope the published-fit guard
// demands. The client name seeds a constant per-client offset (its
// "patience"), so different clients' partitions carry genuinely
// different per-price means — a fit over one client subset differs
// from a fit over the whole population, which is exactly the
// divergence the cluster fit exchange exists to close.
func DyadicTrace(client string, prices []int, perPrice int) []market.RepRecord {
	h := fnv.New32a()
	h.Write([]byte(client))
	phase := int(h.Sum32() % 4)
	recs := make([]market.RepRecord, 0, len(prices)*perPrice)
	t := 0.0
	for _, p := range prices {
		// Base on-hold shrinks by 1/2 per price unit and carries the
		// client's constant 1/4-step offset; the jitter term cycles
		// through {0, 1/4, 2/4, 3/4}. Everything is a multiple of 1/4,
		// hence exactly representable.
		base := 16.0 - 0.5*float64(p) + 0.25*float64(phase)
		if base < 1 {
			base = 1
		}
		for j := 0; j < perPrice; j++ {
			jitter := 0.25 * float64(j%4)
			d := base + jitter
			recs = append(recs, market.RepRecord{
				TaskID:   fmt.Sprintf("%s-p%d-t%d", client, p, j),
				Rep:      1,
				Price:    p,
				PostedAt: t,
				Accepted: t + d,
				Done:     t + d + 1,
				WorkerID: j + 1,
				Correct:  true,
			})
			t += 32 // dyadic stride keeps every timestamp exact too
		}
	}
	return recs
}
