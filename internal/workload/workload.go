// Package workload builds the experiment configurations of the paper's
// evaluation (Sec 5): the synthetic Scenario I/II/III sweeps of Figure 2
// and the calibrated Mechanical-Turk-style setups of Figures 3–5.
package workload

import (
	"fmt"

	"hputune/internal/htuning"
	"hputune/internal/market"
	"hputune/internal/pricing"
)

// Scenario selects one of the paper's three tuning scenarios.
type Scenario int

const (
	// Homogeneous: 100 identical tasks × 5 repetitions (Fig 2 "homo").
	Homogeneous Scenario = iota
	// Repetition: 50 tasks × 3 reps + 50 tasks × 5 reps, one difficulty
	// (Fig 2 "repe").
	Repetition
	// Heterogeneous: 50 tasks × 3 reps at λp=2.0 + 50 tasks × 5 reps at
	// λp=3.0 (Fig 2 "heter").
	Heterogeneous
)

// String implements fmt.Stringer.
func (s Scenario) String() string {
	switch s {
	case Homogeneous:
		return "homo"
	case Repetition:
		return "repe"
	case Heterogeneous:
		return "heter"
	}
	return fmt.Sprintf("Scenario(%d)", int(s))
}

// Fig2Budgets returns the paper's budget sweep 1000–5000 in steps of 500.
func Fig2Budgets() []int {
	var bs []int
	for b := 1000; b <= 5000; b += 500 {
		bs = append(bs, b)
	}
	return bs
}

// Fig2TaskCount is the task population of every Fig 2 panel.
const Fig2TaskCount = 100

// Fig2Problem builds the H-Tuning instance of one Fig 2 panel: the given
// scenario under the given price→rate model at the given budget.
// Parameters follow Sec 5.1: 100 tasks, 5 repetitions (homo) or a 50/50
// split of 3 and 5 repetitions, λp = 2.0 (and 3.0 for the second
// heterogeneous group).
func Fig2Problem(s Scenario, model pricing.RateModel, budget int) (htuning.Problem, error) {
	if model == nil {
		return htuning.Problem{}, fmt.Errorf("workload: nil rate model")
	}
	if budget < 1 {
		return htuning.Problem{}, fmt.Errorf("workload: budget %d below 1", budget)
	}
	half := Fig2TaskCount / 2
	switch s {
	case Homogeneous:
		typ := &htuning.TaskType{Name: "homo-" + model.Name(), Accept: model, ProcRate: 2.0}
		return htuning.Problem{
			Groups: []htuning.Group{{Type: typ, Tasks: Fig2TaskCount, Reps: 5}},
			Budget: budget,
		}, nil
	case Repetition:
		typ := &htuning.TaskType{Name: "repe-" + model.Name(), Accept: model, ProcRate: 2.0}
		return htuning.Problem{
			Groups: []htuning.Group{
				{Type: typ, Tasks: half, Reps: 3},
				{Type: typ, Tasks: half, Reps: 5},
			},
			Budget: budget,
		}, nil
	case Heterogeneous:
		hard := &htuning.TaskType{Name: "heter3-" + model.Name(), Accept: model, ProcRate: 2.0}
		easy := &htuning.TaskType{Name: "heter5-" + model.Name(), Accept: model, ProcRate: 3.0}
		return htuning.Problem{
			Groups: []htuning.Group{
				{Type: hard, Tasks: half, Reps: 3},
				{Type: easy, Tasks: half, Reps: 5},
			},
			Budget: budget,
		}, nil
	}
	return htuning.Problem{}, fmt.Errorf("workload: unknown scenario %d", s)
}

// --- Calibrated Mechanical-Turk substitute (Sec 5.2) -------------------

// AMT price unit: one budget unit is one US cent; the paper's $0.05 reward
// is 5 units, its $6–$10 budgets are 600–1000 units.
const (
	CentsPerDollar = 100
	// ProbeReward is the 1-unit reward of the Fig 3 experiment, $0.05.
	ProbeReward = 5
)

// CalibratedAcceptModel returns the empirical price→rate model measured on
// AMT by the paper (Sec 5.2): rewards $0.05, $0.08, $0.10, $0.12 mapped to
// on-hold rates 0.0038, 0.0062, 0.0121, 0.0131 s⁻¹ — the observations the
// paper reports as supporting the Linearity Hypothesis. Prices are cents.
func CalibratedAcceptModel() (pricing.RateModel, error) {
	return pricing.NewTable("amt-2016", map[float64]float64{
		5:  0.0038,
		8:  0.0062,
		10: 0.0121,
		12: 0.0131,
	})
}

// ImageFilterProcRate is the processing clock rate of the image-filter
// task with the given number of internal binary votes (4, 6 or 8).
// Values match the scale of the paper's Fig 5(b): roughly 1–4 minutes per
// answer, slower with more votes.
func ImageFilterProcRate(votes int) (float64, error) {
	switch votes {
	case 4:
		return 1.0 / 60, nil // ~1 min
	case 6:
		return 1.0 / 110, nil
	case 8:
		return 1.0 / 180, nil // ~3 min
	}
	return 0, fmt.Errorf("workload: image-filter variants have 4, 6 or 8 votes, got %d", votes)
}

// ImageFilterClass builds the marketplace class of the Sec 5.2 image
// filtering task with the given number of internal votes. Difficulty damps
// the acceptance rate (Fig 5(a)): 4 votes full rate, 6 votes ×0.8,
// 8 votes ×0.6.
func ImageFilterClass(votes int) (*market.TaskClass, error) {
	base, err := CalibratedAcceptModel()
	if err != nil {
		return nil, err
	}
	proc, err := ImageFilterProcRate(votes)
	if err != nil {
		return nil, err
	}
	damp := 1.0
	switch votes {
	case 6:
		damp = 0.8
	case 8:
		damp = 0.6
	}
	return &market.TaskClass{
		Name:     fmt.Sprintf("image-filter-%dv", votes),
		Accept:   pricing.Scaled{Base: base, Factor: damp},
		ProcRate: proc,
		Accuracy: 0.9,
	}, nil
}

// Fig5cProblem builds the Sec 5.2 tuning comparison: three task types with
// 10, 15 and 20 required repetitions (one task each), budget in cents
// ($6–$10 in the paper). Types reuse the image-filter classes (4, 6 and
// 8 votes).
func Fig5cProblem(budgetCents int) (htuning.Problem, error) {
	if budgetCents < 1 {
		return htuning.Problem{}, fmt.Errorf("workload: budget %d below 1 cent", budgetCents)
	}
	reps := []int{10, 15, 20}
	votes := []int{4, 6, 8}
	var groups []htuning.Group
	for i := range reps {
		class, err := ImageFilterClass(votes[i])
		if err != nil {
			return htuning.Problem{}, err
		}
		groups = append(groups, htuning.Group{
			Type: &htuning.TaskType{
				Name:     class.Name,
				Accept:   class.Accept,
				ProcRate: class.ProcRate,
			},
			Tasks: 1,
			Reps:  reps[i],
		})
	}
	return htuning.Problem{Groups: groups, Budget: budgetCents}, nil
}

// Fig5cBudgets returns the paper's $6–$10 sweep in cents.
func Fig5cBudgets() []int { return []int{600, 700, 800, 900, 1000} }

// MarketClass converts an htuning task type into a marketplace class with
// the given worker accuracy, so tuned allocations can be replayed on the
// simulated market.
func MarketClass(t *htuning.TaskType, accuracy float64) (*market.TaskClass, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	c := &market.TaskClass{Name: t.Name, Accept: t.Accept, ProcRate: t.ProcRate, Accuracy: accuracy}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// SpecsForAllocation materializes a tuned allocation as marketplace task
// specs, one per atomic task, ready to post.
func SpecsForAllocation(p htuning.Problem, a htuning.Allocation, accuracy float64) ([]market.TaskSpec, error) {
	if err := a.Validate(p); err != nil {
		return nil, err
	}
	var specs []market.TaskSpec
	for gi, g := range p.Groups {
		class, err := MarketClass(g.Type, accuracy)
		if err != nil {
			return nil, err
		}
		for ti := 0; ti < g.Tasks; ti++ {
			specs = append(specs, market.TaskSpec{
				ID:        fmt.Sprintf("g%d-t%d", gi, ti),
				Class:     class,
				RepPrices: a.RepPrices[gi][ti],
			})
		}
	}
	return specs, nil
}
