package workload

import (
	"fmt"

	"hputune/internal/campaign"
	"hputune/internal/market"
	"hputune/internal/pricing"
	"hputune/internal/randx"
)

// PaperCampaignFleet builds the closed-loop scenario fleet: the paper's
// evaluation workloads recast as campaigns whose tuner starts from a
// deliberately mistuned prior and must re-fit the market from observed
// traces. Eight campaigns cover the Fig 2 scenarios (homogeneous,
// repetition, heterogeneous), the Fig 5(c) AMT-calibrated job, and
// stressed variants: gradual rate drift, a mid-campaign price shock, a
// shrinking worker pool (worker-choice competition), and a model-misfit
// market whose true curve is quadratic.
//
// Campaign seeds derive from seed in fleet order, so the whole fleet is
// a pure function of its one seed.
func PaperCampaignFleet(seed uint64) ([]campaign.Config, error) {
	seeds := randx.New(seed)
	truth := pricing.Linear{K: 2, B: 0.5}
	prior := pricing.Linear{K: 1, B: 1}
	class := func(name string, accept pricing.RateModel, proc float64) *market.TaskClass {
		return &market.TaskClass{Name: name, Accept: accept, ProcRate: proc, Accuracy: 1}
	}
	// fig2 builds the Fig 2 task population: 100 tasks as a 50/50 split
	// of 3- and 5-repetition groups (the "repe"/"heter" shapes; the homo
	// scenario overrides it with a single group).
	fig2 := func(proc3, proc5 float64) []campaign.Group {
		return []campaign.Group{
			{Name: "g3", Tasks: Fig2TaskCount / 2, Reps: 3, Class: class("g3", truth, proc3)},
			{Name: "g5", Tasks: Fig2TaskCount / 2, Reps: 5, Class: class("g5", truth, proc5)},
		}
	}
	base := campaign.Config{
		Prior:       prior,
		RoundBudget: 1000,
		MaxRounds:   12,
		Epsilon:     0.05,
	}

	homo := base
	homo.Name = "fig2-homo"
	homo.Groups = []campaign.Group{{Name: "g", Tasks: Fig2TaskCount, Reps: 5, Class: class("g", truth, 2.0)}}

	repe := base
	repe.Name = "fig2-repe"
	repe.Groups = fig2(2.0, 2.0)

	heter := base
	heter.Name = "fig2-heter"
	heter.Groups = fig2(2.0, 3.0)

	// Fig 5(c): the AMT-calibrated image-filter job — three task types
	// with 10/15/20 repetitions, prices in cents, the paper's $8 budget
	// per round. The prior is linear over cents, far from the calibrated
	// table truth.
	fig5c := campaign.Config{
		Name:        "fig5c",
		Prior:       pricing.Linear{K: 0.001, B: 0.001},
		RoundBudget: 800,
		MaxRounds:   12,
		Epsilon:     0.05,
	}
	reps := []int{10, 15, 20}
	votes := []int{4, 6, 8}
	for i := range reps {
		cls, err := ImageFilterClass(votes[i])
		if err != nil {
			return nil, fmt.Errorf("workload: fleet: %w", err)
		}
		fig5c.Groups = append(fig5c.Groups, campaign.Group{
			Name: cls.Name, Tasks: 1, Reps: reps[i], Class: cls,
		})
	}

	// Stressed variants. The drifted campaigns run with epsilon 0 — a
	// moving fit must never read as converged — and stop on budget
	// exhaustion or the round deadline instead.
	drift := base
	drift.Name = "fig2-repe-ratedrift"
	drift.Groups = fig2(2.0, 2.0)
	drift.Epsilon = 0
	drift.Budget = 5000
	drift.MaxRounds = 64
	drift.Drift = campaign.Drift{Kind: campaign.DriftRate, Factor: 0.85}

	shock := base
	shock.Name = "fig2-repe-priceshock"
	shock.Groups = fig2(2.0, 2.0)
	shock.Drift = campaign.Drift{Kind: campaign.DriftShock, Factor: 0.5, Round: 2}

	shrink := base
	shrink.Name = "fig2-repe-poolshrink"
	shrink.Groups = fig2(2.0, 2.0)
	shrink.MaxRounds = 8
	shrink.Market = campaign.MarketOptions{WorkerChoice: true, ArrivalRate: 12}
	shrink.Drift = campaign.Drift{Kind: campaign.DriftShrink, Factor: 0.85}

	quad := base
	quad.Name = "fig2-homo-quadratic"
	quad.Groups = []campaign.Group{
		{Name: "q3", Tasks: Fig2TaskCount / 2, Reps: 3, Class: class("q3", pricing.Quadratic{}, 2.0)},
		{Name: "q5", Tasks: Fig2TaskCount / 2, Reps: 5, Class: class("q5", pricing.Quadratic{}, 2.0)},
	}

	fleet := []campaign.Config{homo, repe, heter, fig5c, drift, shock, shrink, quad}
	for i := range fleet {
		fleet[i].Seed = seeds.Uint64()
	}
	return fleet, nil
}

// CrowdQueryCampaignFleet builds the crowd-DB scenario fleet: four
// campaigns that each run a full crowd query per round — the closed
// loop pricing real query operators instead of raw market tasks. The
// presets cover the two operators and the two pricing regimes the
// related work contrasts with H-Tuning:
//
//   - crowd-topk: a 16-item tournament top-k (k = 4), per-difficulty
//     pricing re-tuned round by round;
//   - crowd-groupby: a 12-item, 3-category group-by with
//     sequential-discovery phases;
//   - crowd-deadline: the top-k query under a latency SLO, with the
//     [29] comparator as the per-round admission check and baseline;
//   - crowd-retainer: the top-k query with half the repetitions served
//     from a pre-paid standby pool — the on-hold distribution shifts
//     toward zero, the regime change the fit guard must survive (rounds
//     may legitimately report fitPending until both regimes are
//     represented across the price levels).
//
// Campaign seeds derive from seed in fleet order; dataset seeds are
// fixed per preset, so the query workloads are identical across fleet
// seeds and only the marketplace randomness varies.
func CrowdQueryCampaignFleet(seed uint64) ([]campaign.Config, error) {
	seeds := randx.New(seed)
	truth := pricing.Linear{K: 2, B: 0.5}
	topk := &campaign.CrowdQuery{
		Kind:        "topk",
		Items:       16,
		K:           4,
		Reps:        3,
		DatasetSeed: 11,
		Accept:      truth,
		ProcRate:    2.0,
	}
	base := campaign.Config{
		Prior:       pricing.Linear{K: 1, B: 1},
		RoundBudget: 300,
		Budget:      6000,
		MaxRounds:   8,
		Epsilon:     0.05,
	}

	tk := base
	tk.Name = "crowd-topk"
	tk.Query = topk

	gb := base
	gb.Name = "crowd-groupby"
	gb.Query = &campaign.CrowdQuery{
		Kind:        "groupby",
		Items:       12,
		Classes:     []string{"bird", "boat", "bike"},
		Reps:        3,
		DatasetSeed: 12,
		Accept:      truth,
		ProcRate:    2.0,
	}
	gb.RoundBudget = 150
	gb.Budget = 4000

	dl := base
	dl.Name = "crowd-deadline"
	dl.Query = topk
	dl.Deadline = &campaign.DeadlineSLO{Makespan: 6, Confidence: 0.9, MaxPrice: 64}

	rt := base
	rt.Name = "crowd-retainer"
	rt.Query = topk
	rt.Retainer = &campaign.RetainerPool{Workers: 4, ServiceRate: 2, Fee: 0.5, Share: 0.5}

	fleet := []campaign.Config{tk, gb, dl, rt}
	for i := range fleet {
		fleet[i].Seed = seeds.Uint64()
	}
	return fleet, nil
}

// BenchCampaignFleet builds the BENCH_campaign.json workload: 16
// campaigns that each run exactly 8 full closed-loop rounds (epsilon 0
// on a stationary two-price market never converges, the budget outlasts
// the deadline), so one fleet run is 128 solve→simulate→re-fit rounds.
// It is the single source of truth for the campaign perf baseline —
// BenchmarkCampaignFleet and the htbench campaign suite both drive it,
// so their numbers stay comparable across the trajectory.
func BenchCampaignFleet() []campaign.Config {
	return BenchCampaignFleetSize(16, 8)
}

// BenchCampaignFleetSize is the parameterized form behind the htbench
// scaling suites: campaigns copies of the benchmark campaign, each
// running exactly rounds closed-loop rounds (the budget scales with the
// round count so it never terminates a campaign early). Per-campaign
// seeds derive from the index, so a fleet of any size is deterministic.
func BenchCampaignFleetSize(campaigns, rounds int) []campaign.Config {
	truth := pricing.Linear{K: 2, B: 0.5}
	class := &market.TaskClass{Name: "t", Accept: truth, ProcRate: 2, Accuracy: 1}
	cfgs := make([]campaign.Config, campaigns)
	for i := range cfgs {
		cfgs[i] = campaign.Config{
			Name: fmt.Sprintf("bench-%02d", i),
			Groups: []campaign.Group{
				{Name: "g3", Tasks: 50, Reps: 3, Class: class},
				{Name: "g5", Tasks: 50, Reps: 5, Class: class},
			},
			Prior:       pricing.Linear{K: 1, B: 1},
			RoundBudget: 1000,
			Budget:      2000 * rounds,
			MaxRounds:   rounds,
			Epsilon:     0,
			Seed:        uint64(i + 1),
		}
	}
	return cfgs
}
