package workload

import (
	"testing"

	"hputune/internal/htuning"
	"hputune/internal/pricing"
)

func TestScenarioString(t *testing.T) {
	if Homogeneous.String() != "homo" || Repetition.String() != "repe" || Heterogeneous.String() != "heter" {
		t.Error("scenario names wrong")
	}
	if Scenario(9).String() == "" {
		t.Error("unknown scenario has empty name")
	}
}

func TestFig2Budgets(t *testing.T) {
	bs := Fig2Budgets()
	if len(bs) != 9 || bs[0] != 1000 || bs[8] != 5000 {
		t.Errorf("budget sweep wrong: %v", bs)
	}
}

func TestFig2ProblemShapes(t *testing.T) {
	model := pricing.Linear{K: 1, B: 1}
	homo, err := Fig2Problem(Homogeneous, model, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(homo.Groups) != 1 || homo.Groups[0].Tasks != 100 || homo.Groups[0].Reps != 5 {
		t.Errorf("homo shape wrong: %+v", homo.Groups)
	}
	if homo.Groups[0].Type.ProcRate != 2.0 {
		t.Errorf("homo λp = %v, want 2.0", homo.Groups[0].Type.ProcRate)
	}

	repe, err := Fig2Problem(Repetition, model, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(repe.Groups) != 2 || repe.Groups[0].Reps != 3 || repe.Groups[1].Reps != 5 {
		t.Errorf("repe shape wrong: %+v", repe.Groups)
	}
	if repe.Groups[0].Tasks+repe.Groups[1].Tasks != 100 {
		t.Error("repe task split wrong")
	}
	if repe.Groups[0].Type.ProcRate != repe.Groups[1].Type.ProcRate {
		t.Error("repe groups must share difficulty")
	}

	heter, err := Fig2Problem(Heterogeneous, model, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if heter.Groups[0].Type.ProcRate != 2.0 || heter.Groups[1].Type.ProcRate != 3.0 {
		t.Errorf("heter proc rates wrong: %v, %v",
			heter.Groups[0].Type.ProcRate, heter.Groups[1].Type.ProcRate)
	}

	if _, err := Fig2Problem(Scenario(9), model, 1000); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := Fig2Problem(Homogeneous, nil, 1000); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := Fig2Problem(Homogeneous, model, 0); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestCalibratedAcceptModelMatchesPaper(t *testing.T) {
	m, err := CalibratedAcceptModel()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's λ₁..λ₄ at $0.05, $0.08, $0.10, $0.12.
	cases := map[float64]float64{5: 0.0038, 8: 0.0062, 10: 0.0121, 12: 0.0131}
	for price, want := range cases {
		if got := m.Rate(price); got != want {
			t.Errorf("Rate(%v) = %v, want %v", price, got, want)
		}
	}
	// Monotone in between.
	if m.Rate(6) <= m.Rate(5) || m.Rate(11) <= m.Rate(10) {
		t.Error("calibrated model not increasing")
	}
}

func TestImageFilterClasses(t *testing.T) {
	for _, votes := range []int{4, 6, 8} {
		c, err := ImageFilterClass(votes)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("class %dv invalid: %v", votes, err)
		}
	}
	c4, _ := ImageFilterClass(4)
	c8, _ := ImageFilterClass(8)
	if c8.Accept.Rate(8) >= c4.Accept.Rate(8) {
		t.Error("8-vote class accepted as fast as 4-vote")
	}
	if c8.ProcRate >= c4.ProcRate {
		t.Error("8-vote class processed as fast as 4-vote")
	}
	if _, err := ImageFilterClass(5); err == nil {
		t.Error("invalid vote count accepted")
	}
	if _, err := ImageFilterProcRate(7); err == nil {
		t.Error("invalid vote count accepted by proc rate")
	}
}

func TestFig5cProblem(t *testing.T) {
	p, err := Fig5cProblem(600)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Groups) != 3 {
		t.Fatalf("got %d groups", len(p.Groups))
	}
	wantReps := []int{10, 15, 20}
	for i, g := range p.Groups {
		if g.Reps != wantReps[i] || g.Tasks != 1 {
			t.Errorf("group %d: %d tasks × %d reps", i, g.Tasks, g.Reps)
		}
	}
	if err := p.Validate(); err != nil {
		t.Errorf("fig5c problem invalid: %v", err)
	}
	if _, err := Fig5cProblem(0); err == nil {
		t.Error("zero budget accepted")
	}
	if bs := Fig5cBudgets(); len(bs) != 5 || bs[0] != 600 || bs[4] != 1000 {
		t.Errorf("fig5c budgets wrong: %v", bs)
	}
}

func TestSpecsForAllocation(t *testing.T) {
	model := pricing.Linear{K: 1, B: 1}
	p, err := Fig2Problem(Repetition, model, 800)
	if err != nil {
		t.Fatal(err)
	}
	a, err := htuning.RepEvenAllocation(p)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := SpecsForAllocation(p, a, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 100 {
		t.Fatalf("got %d specs, want 100", len(specs))
	}
	total := 0
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Fatalf("spec %s invalid: %v", s.ID, err)
		}
		for _, price := range s.RepPrices {
			total += price
		}
	}
	if total != a.Cost() {
		t.Errorf("specs spend %d, allocation costs %d", total, a.Cost())
	}
	// Mismatched allocation must be rejected.
	other, _ := Fig2Problem(Homogeneous, model, 800)
	if _, err := SpecsForAllocation(other, a, 0.9); err == nil {
		t.Error("mismatched allocation accepted")
	}
}

func TestMarketClassConversion(t *testing.T) {
	typ := &htuning.TaskType{Name: "t", Accept: pricing.Linear{K: 1, B: 1}, ProcRate: 2}
	c, err := MarketClass(typ, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "t" || c.ProcRate != 2 || c.Accuracy != 0.8 {
		t.Errorf("converted class wrong: %+v", c)
	}
	if _, err := MarketClass(typ, 0); err == nil {
		t.Error("zero accuracy accepted")
	}
	bad := &htuning.TaskType{Name: "x"}
	if _, err := MarketClass(bad, 1); err == nil {
		t.Error("invalid type accepted")
	}
}
