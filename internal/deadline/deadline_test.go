package deadline

import (
	"math"
	"testing"
	"testing/quick"

	"hputune/internal/htuning"
	"hputune/internal/numeric"
	"hputune/internal/pricing"
	"hputune/internal/randx"
)

func voteType() *htuning.TaskType {
	return &htuning.TaskType{Name: "vote", Accept: pricing.Linear{K: 1, B: 1}, ProcRate: 2}
}

func slowType() *htuning.TaskType {
	return &htuning.TaskType{Name: "slow-vote", Accept: pricing.Linear{K: 0.5, B: 0.5}, ProcRate: 0.5}
}

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestMinCostSingleTaskExact(t *testing.T) {
	// Deadline 1, confidence 0.95: need λ >= −ln(0.05) ≈ 2.996, so with
	// λ(c) = c + 1 the smallest integer price is 2.
	res, err := MinCostForDeadlines([]Task{{Type: voteType(), Deadline: 1}}, 0.95, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Prices[0] != 2 || res.Total != 2 {
		t.Errorf("price = %v total = %d, want 2/2", res.Prices, res.Total)
	}
}

func TestMinCostTighterDeadlineCostsMore(t *testing.T) {
	loose, err := MinCostForDeadlines([]Task{{Type: voteType(), Deadline: 5}}, 0.95, 1000)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := MinCostForDeadlines([]Task{{Type: voteType(), Deadline: 0.2}}, 0.95, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Total <= loose.Total {
		t.Errorf("tight deadline total %d not above loose %d", tight.Total, loose.Total)
	}
}

func TestMinCostGuaranteeHolds(t *testing.T) {
	// The chosen price must actually deliver the confidence, and price−1
	// must not (minimality), for a spread of deadlines.
	for _, d := range []float64{0.1, 0.5, 1, 2, 10} {
		res, err := MinCostForDeadlines([]Task{{Type: voteType(), Deadline: d}}, 0.9, 10000)
		if err != nil {
			t.Fatalf("deadline %v: %v", d, err)
		}
		c := res.Prices[0]
		rate := voteType().Accept.Rate(float64(c))
		if p := 1 - math.Exp(-rate*d); p < 0.9 {
			t.Errorf("deadline %v price %d delivers only %v", d, c, p)
		}
		if c > 1 {
			rate = voteType().Accept.Rate(float64(c - 1))
			if p := 1 - math.Exp(-rate*d); p >= 0.9 {
				t.Errorf("deadline %v price %d not minimal (%d already delivers %v)", d, c, c-1, p)
			}
		}
	}
}

func TestMinCostUnreachableDeadline(t *testing.T) {
	_, err := MinCostForDeadlines([]Task{{Type: voteType(), Deadline: 0.0001}}, 0.99, 10)
	if err == nil {
		t.Error("unreachable deadline accepted")
	}
}

func TestMinCostValidation(t *testing.T) {
	if _, err := MinCostForDeadlines(nil, 0.9, 10); err == nil {
		t.Error("empty task list accepted")
	}
	if _, err := MinCostForDeadlines([]Task{{Type: voteType(), Deadline: 1}}, 0, 10); err == nil {
		t.Error("zero confidence accepted")
	}
	if _, err := MinCostForDeadlines([]Task{{Type: voteType(), Deadline: 1}}, 1, 10); err == nil {
		t.Error("confidence 1 accepted")
	}
	if _, err := MinCostForDeadlines([]Task{{Type: voteType(), Deadline: 0}}, 0.9, 10); err == nil {
		t.Error("zero deadline accepted")
	}
	if _, err := MinCostForDeadlines([]Task{{Type: voteType(), Deadline: 1}}, 0.9, 0); err == nil {
		t.Error("zero maxPrice accepted")
	}
	if _, err := MinCostForDeadlines([]Task{{Type: &htuning.TaskType{}, Deadline: 1}}, 0.9, 10); err == nil {
		t.Error("invalid task type accepted")
	}
}

func TestMinCostMixedTypes(t *testing.T) {
	tasks := []Task{
		{Type: voteType(), Deadline: 1},
		{Type: slowType(), Deadline: 1},
	}
	res, err := MinCostForDeadlines(tasks, 0.9, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Prices[1] <= res.Prices[0] {
		t.Errorf("slower type should cost more: %v", res.Prices)
	}
	if res.Total != res.Prices[0]+res.Prices[1] {
		t.Errorf("total %d != sum of %v", res.Total, res.Prices)
	}
}

func TestParallelMakespanSingleGroupClosedForm(t *testing.T) {
	groups := []htuning.Group{{Type: voteType(), Tasks: 10, Reps: 3}}
	got, err := parallelMakespan(groups, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	want := numeric.Harmonic(30) / 3.0 // 30 parallel clocks at rate 3
	if !almostEqual(got, want, 1e-9) {
		t.Errorf("makespan %v, want %v", got, want)
	}
}

func TestParallelMakespanTwoGroupsAgainstMonteCarlo(t *testing.T) {
	groups := []htuning.Group{
		{Type: voteType(), Tasks: 8, Reps: 2},
		{Type: slowType(), Tasks: 4, Reps: 3},
	}
	prices := []int{2, 3}
	analytic, err := parallelMakespan(groups, prices)
	if err != nil {
		t.Fatal(err)
	}
	r := randx.New(99)
	const trials = 40000
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		m := 0.0
		for gi, g := range groups {
			rate := g.Type.Accept.Rate(float64(prices[gi]))
			for i := 0; i < g.Tasks*g.Reps; i++ {
				if v := r.Exp(rate); v > m {
					m = v
				}
			}
		}
		sum += m
	}
	mc := sum / trials
	if !almostEqual(analytic, mc, 0.02) {
		t.Errorf("analytic %v vs Monte Carlo %v", analytic, mc)
	}
}

func TestMinimizeExpectedMaxSpendsBudget(t *testing.T) {
	p := htuning.Problem{
		Groups: []htuning.Group{
			{Type: voteType(), Tasks: 10, Reps: 2},
			{Type: voteType(), Tasks: 5, Reps: 4},
		},
		Budget: 200,
	}
	res, err := MinimizeExpectedMax(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spent > p.Budget {
		t.Errorf("overspent: %d > %d", res.Spent, p.Budget)
	}
	// With a strictly increasing rate model every extra unit helps, so
	// the greedy must leave less than one step of slack.
	minStep := p.Groups[0].UnitCost()
	if s := p.Groups[1].UnitCost(); s < minStep {
		minStep = s
	}
	if p.Budget-res.Spent >= minStep {
		t.Errorf("left %d unspent with steps of %d available", p.Budget-res.Spent, minStep)
	}
	for i, price := range res.Prices {
		if price < 1 {
			t.Errorf("group %d priced %d", i, price)
		}
	}
}

func TestMinimizeExpectedMaxImprovesOnUniform(t *testing.T) {
	// Asymmetric groups: optimal parallel prices differ from uniform.
	p := htuning.Problem{
		Groups: []htuning.Group{
			{Type: voteType(), Tasks: 40, Reps: 1},
			{Type: voteType(), Tasks: 5, Reps: 1},
		},
		Budget: 450,
	}
	res, err := MinimizeExpectedMax(p)
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := parallelMakespan(p.Groups, []int{10, 10}) // 40·10+5·10=450
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective > uniform+1e-9 {
		t.Errorf("greedy %v worse than uniform %v", res.Objective, uniform)
	}
}

func TestMinimizeExpectedMaxBudgetTooSmall(t *testing.T) {
	p := htuning.Problem{
		Groups: []htuning.Group{{Type: voteType(), Tasks: 10, Reps: 2}},
		Budget: 19,
	}
	if _, err := MinimizeExpectedMax(p); err == nil {
		t.Error("starved budget accepted")
	}
}

func TestMinimizeExpectedMaxMonotoneInBudgetProperty(t *testing.T) {
	// Property: a larger budget can never yield a worse objective.
	groups := []htuning.Group{
		{Type: voteType(), Tasks: 6, Reps: 2},
		{Type: slowType(), Tasks: 3, Reps: 3},
	}
	prop := func(seed uint64) bool {
		r := randx.New(seed)
		b1 := 21 + r.Intn(100)
		b2 := b1 + 1 + r.Intn(100)
		r1, err1 := MinimizeExpectedMax(htuning.Problem{Groups: groups, Budget: b1})
		r2, err2 := MinimizeExpectedMax(htuning.Problem{Groups: groups, Budget: b2})
		if err1 != nil || err2 != nil {
			return false
		}
		return r2.Objective <= r1.Objective+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestQuantileDeadlineMatchesCDF(t *testing.T) {
	groups := []htuning.Group{
		{Type: voteType(), Tasks: 10, Reps: 2},
		{Type: slowType(), Tasks: 5, Reps: 1},
	}
	prices := []int{3, 4}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		d, err := QuantileDeadline(groups, prices, q)
		if err != nil {
			t.Fatal(err)
		}
		// Verify by evaluating the joint CDF at the returned deadline.
		cdf := 1.0
		for i, g := range groups {
			rate := g.Type.Accept.Rate(float64(prices[i]))
			cdf *= math.Pow(1-math.Exp(-rate*d), float64(g.Tasks*g.Reps))
		}
		if !almostEqual(cdf, q, 1e-6) {
			t.Errorf("q=%v: CDF(deadline) = %v", q, cdf)
		}
	}
}

func TestQuantileDeadlineMonotoneInConfidence(t *testing.T) {
	groups := []htuning.Group{{Type: voteType(), Tasks: 10, Reps: 1}}
	prev := 0.0
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		d, err := QuantileDeadline(groups, []int{2}, q)
		if err != nil {
			t.Fatal(err)
		}
		if d <= prev {
			t.Errorf("deadline not increasing at q=%v: %v <= %v", q, d, prev)
		}
		prev = d
	}
}

func TestQuantileDeadlineValidation(t *testing.T) {
	groups := []htuning.Group{{Type: voteType(), Tasks: 10, Reps: 1}}
	if _, err := QuantileDeadline(groups, []int{1, 2}, 0.9); err == nil {
		t.Error("mismatched prices accepted")
	}
	if _, err := QuantileDeadline(groups, []int{1}, 0); err == nil {
		t.Error("zero confidence accepted")
	}
	if _, err := QuantileDeadline(groups, []int{1}, 1); err == nil {
		t.Error("confidence 1 accepted")
	}
}

func TestComparatorMatchesEAInScenarioI(t *testing.T) {
	// Scenario I with single repetitions: acceptance-only and
	// pure-parallel are exactly the HPU model, so the comparator's
	// allocation must agree with Even Allocation's uniform price.
	p := htuning.Problem{
		Groups: []htuning.Group{{Type: voteType(), Tasks: 20, Reps: 1}},
		Budget: 100,
	}
	res, err := MinimizeExpectedMax(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Prices[0] != 5 { // 100/20
		t.Errorf("comparator price %d, want 5", res.Prices[0])
	}
}

func TestComparatorLosesWhenRepetitionsAreSequential(t *testing.T) {
	// The comparator's pure-parallel assumption treats a task's k
	// repetitions as k independent clocks, so it overestimates
	// parallelism; scoring its allocation under the true sequential
	// model must never beat the Scenario II solver's own objective.
	est := htuning.NewEstimator()
	p := htuning.Problem{
		Groups: []htuning.Group{
			{Type: voteType(), Tasks: 10, Reps: 5},
			{Type: voteType(), Tasks: 10, Reps: 1},
		},
		Budget: 300,
	}
	ra, err := htuning.SolveRepetition(est, p)
	if err != nil {
		t.Fatal(err)
	}
	par, err := MinimizeExpectedMax(p)
	if err != nil {
		t.Fatal(err)
	}
	raScore, err := est.SumGroupPhase1(p.Groups, ra.Prices)
	if err != nil {
		t.Fatal(err)
	}
	parScore, err := est.SumGroupPhase1(p.Groups, par.Prices)
	if err != nil {
		t.Fatal(err)
	}
	if parScore < raScore-1e-9 {
		t.Errorf("comparator %v beat RA %v on RA's own objective", parScore, raScore)
	}
}
