package deadline

import (
	"math"
	"strings"
	"testing"
)

// TestMinCostInfeasibleIdentifiesTask pins the failure mode a campaign's
// SLO admission check relies on: when one task of a batch cannot meet
// its deadline at any admissible price, the whole solve fails (no
// partial price vector) and the error names the offending task.
func TestMinCostInfeasibleIdentifiesTask(t *testing.T) {
	tasks := []Task{
		{Type: voteType(), Deadline: 5},
		{Type: slowType(), Deadline: 0.0001},
	}
	res, err := MinCostForDeadlines(tasks, 0.99, 10)
	if err == nil {
		t.Fatalf("infeasible batch accepted: %+v", res)
	}
	if !strings.Contains(err.Error(), "task 1") || !strings.Contains(err.Error(), "slow-vote") {
		t.Errorf("error %q does not identify task 1 (slow-vote)", err)
	}
	if len(res.Prices) != 0 {
		t.Errorf("partial price vector %v returned alongside the error", res.Prices)
	}
}

// TestMinCostFeasibilityBoundary brackets the exact deadline at which
// maxPrice stops being enough: the threshold is d* = −ln(1−conf)/λ(max),
// feasible (at exactly maxPrice) just above it, infeasible just below.
func TestMinCostFeasibilityBoundary(t *testing.T) {
	const (
		conf     = 0.9
		maxPrice = 10
	)
	rate := voteType().Accept.Rate(maxPrice)
	boundary := -math.Log(1-conf) / rate

	res, err := MinCostForDeadlines([]Task{{Type: voteType(), Deadline: boundary * (1 + 1e-9)}}, conf, maxPrice)
	if err != nil {
		t.Fatalf("deadline just above the boundary rejected: %v", err)
	}
	if res.Prices[0] != maxPrice {
		t.Errorf("boundary deadline priced at %d, want maxPrice %d", res.Prices[0], maxPrice)
	}
	if _, err := MinCostForDeadlines([]Task{{Type: voteType(), Deadline: boundary * (1 - 1e-9)}}, conf, maxPrice); err == nil {
		t.Error("deadline just below the boundary accepted")
	}
}

// TestMinCostHighConfidenceTightensBoundary: raising the confidence with
// the deadline fixed can flip a feasible instance infeasible — the knob
// the crowd-deadline campaign preset exposes.
func TestMinCostHighConfidenceTightensBoundary(t *testing.T) {
	task := []Task{{Type: voteType(), Deadline: 0.3}}
	if _, err := MinCostForDeadlines(task, 0.9, 10); err != nil {
		t.Fatalf("moderate confidence infeasible: %v", err)
	}
	if _, err := MinCostForDeadlines(task, 1-1e-9, 10); err == nil {
		t.Error("near-certain confidence accepted at the same deadline and price cap")
	}
}
