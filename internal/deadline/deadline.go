// Package deadline reimplements the pricing model of the paper's closest
// related work — Gao & Parameswaran, "Finish Them! Pricing Algorithms for
// Human Computation" (VLDB 2014), reference [29] of "Tuning Crowdsourced
// Human Computation" — as a comparator baseline.
//
// The [29] model differs from the HPU tuner in exactly the two ways the
// paper calls out (Sec 2):
//
//   - it prices only the acceptance phase ("[29] only considers the
//     latency of the tasks' acceptance"), ignoring processing time;
//   - it assumes pure parallel processing: every answer repetition is an
//     independent task posted simultaneously, never a sequential chain.
//
// Two optimization problems from [29] are provided:
//
//   - MinCostForDeadlines: minimize total payment such that every task
//     is accepted by its deterministic deadline with the requested
//     confidence (problem 1 of [29]);
//   - MinimizeExpectedMax: minimize the expected acceptance makespan of
//     the whole task set under a fixed budget (problem 2 of [29], the
//     objective shared with the H-Tuning problem).
//
// The experiments score both tuners under the true HPU model (sequential
// repetitions, on-hold plus processing): the comparator matches the
// H-Tuning solvers when processing is negligible and repetitions are
// single, and falls behind once either assumption bites.
package deadline

import (
	"fmt"
	"math"

	"hputune/internal/htuning"
	"hputune/internal/numeric"
)

// Task is one atomic task with its own completion deadline, the unit of
// the [29] min-cost problem.
type Task struct {
	// Type supplies the acceptance rate model λo(c).
	Type *htuning.TaskType
	// Deadline is the latest acceptable acceptance time, in the same
	// clock units as the rate model.
	Deadline float64
}

// MinCostResult is the outcome of MinCostForDeadlines.
type MinCostResult struct {
	// Prices holds the chosen per-task payment, aligned with the input.
	Prices []int
	// Total is the summed payment.
	Total int
	// Confidence is the per-task acceptance probability guaranteed by
	// each deadline.
	Confidence float64
}

// MinCostForDeadlines solves problem 1 of [29] under the HPU acceptance
// model: for each task independently, find the smallest integer payment c
// such that P(Exp(λo(c)) ≤ deadline) ≥ confidence, i.e.
// λo(c) ≥ −ln(1−confidence)/deadline. Payments are scanned upward from 1
// to maxPrice so no monotonicity of the rate model is assumed; a task
// whose deadline is unreachable at maxPrice yields an error identifying
// the task.
func MinCostForDeadlines(tasks []Task, confidence float64, maxPrice int) (MinCostResult, error) {
	if len(tasks) == 0 {
		return MinCostResult{}, fmt.Errorf("deadline: no tasks")
	}
	if !(confidence > 0 && confidence < 1) {
		return MinCostResult{}, fmt.Errorf("deadline: confidence %v outside (0, 1)", confidence)
	}
	if maxPrice < 1 {
		return MinCostResult{}, fmt.Errorf("deadline: maxPrice %d below 1", maxPrice)
	}
	res := MinCostResult{Prices: make([]int, len(tasks)), Confidence: confidence}
	for i, task := range tasks {
		if err := task.Type.Validate(); err != nil {
			return MinCostResult{}, fmt.Errorf("deadline: task %d: %w", i, err)
		}
		if !(task.Deadline > 0) {
			return MinCostResult{}, fmt.Errorf("deadline: task %d deadline %v not positive", i, task.Deadline)
		}
		need := -math.Log(1-confidence) / task.Deadline
		price := 0
		for c := 1; c <= maxPrice; c++ {
			if task.Type.Accept.Rate(float64(c)) >= need {
				price = c
				break
			}
		}
		if price == 0 {
			return MinCostResult{}, fmt.Errorf("deadline: task %d (%s) cannot meet deadline %v with confidence %v at any price <= %d (needs rate %.4g)",
				i, task.Type.Name, task.Deadline, confidence, maxPrice, need)
		}
		res.Prices[i] = price
		res.Total += price
	}
	return res, nil
}

// ParallelResult is the outcome of MinimizeExpectedMax.
type ParallelResult struct {
	// Prices is the uniform per-repetition price chosen for each group.
	Prices []int
	// Objective is the comparator's own objective at Prices: the expected
	// acceptance-phase makespan under the pure-parallel assumption.
	Objective float64
	// Spent is the budget consumed.
	Spent int
}

// MinimizeExpectedMax solves problem 2 of [29] under the HPU acceptance
// model: spend the budget to minimize E[max acceptance time] where every
// repetition of every task is posted in parallel. Group i therefore
// contributes Tasks×Reps iid Exp(λo(p_i)) acceptance clocks. Allocation
// is greedy by marginal makespan decrease; the objective is evaluated
// exactly as E[max] = ∫(1 − Π_i F_i^{n_i·k_i}) dt. Because the
// acceptance-phase makespan under any price vector strictly decreases
// when any group's price rises (for monotone rate models), the greedy
// step is well defined; for non-monotone models steps that do not help
// are skipped.
func MinimizeExpectedMax(p htuning.Problem) (ParallelResult, error) {
	if err := p.Validate(); err != nil {
		return ParallelResult{}, err
	}
	n := len(p.Groups)
	prices := make([]int, n)
	costs := make([]int, n)
	spent := 0
	for i, g := range p.Groups {
		prices[i] = 1
		costs[i] = g.UnitCost()
		spent += costs[i]
	}
	current, err := parallelMakespan(p.Groups, prices)
	if err != nil {
		return ParallelResult{}, err
	}
	remaining := p.Budget - spent
	for {
		bestI := -1
		bestVal := current
		for i := range p.Groups {
			if costs[i] > remaining {
				continue
			}
			prices[i]++
			cand, err := parallelMakespan(p.Groups, prices)
			prices[i]--
			if err != nil {
				return ParallelResult{}, err
			}
			if cand < bestVal-1e-15 {
				bestVal = cand
				bestI = i
			}
		}
		if bestI < 0 {
			break
		}
		prices[bestI]++
		current = bestVal
		remaining -= costs[bestI]
		spent += costs[bestI]
	}
	return ParallelResult{Prices: prices, Objective: current, Spent: spent}, nil
}

// parallelMakespan computes E[max acceptance time] when every repetition
// of group i is an independent Exp(λo(p_i)) clock:
// ∫₀^∞ (1 − Π_i (1 − e^{−λ_i t})^{n_i k_i}) dt.
func parallelMakespan(groups []htuning.Group, prices []int) (float64, error) {
	rates := make([]float64, len(groups))
	counts := make([]int, len(groups))
	for i, g := range groups {
		r := g.Type.Accept.Rate(float64(prices[i]))
		if !(r > 0) {
			return 0, fmt.Errorf("deadline: group %d rate %v at price %d", i, r, prices[i])
		}
		rates[i] = r
		counts[i] = g.Tasks * g.Reps
	}
	if len(groups) == 1 {
		// Closed form: E[max of m iid Exp(λ)] = H_m/λ.
		return numeric.Harmonic(counts[0]) / rates[0], nil
	}
	v, err := numeric.IntegrateToInf(func(t float64) float64 {
		prod := 1.0
		for i, rate := range rates {
			f := 1 - math.Exp(-rate*t)
			if f == 0 {
				return 1
			}
			prod *= powInt(f, counts[i])
			if prod == 0 {
				return 1
			}
		}
		return 1 - prod
	}, 0, 1e-9)
	if err != nil {
		return v, fmt.Errorf("deadline: makespan integral: %w", err)
	}
	return v, nil
}

// powInt computes x^n for n >= 0 by binary exponentiation.
func powInt(x float64, n int) float64 {
	r := 1.0
	for n > 0 {
		if n&1 == 1 {
			r *= x
		}
		x *= x
		n >>= 1
	}
	return r
}

// QuantileDeadline returns the time by which the whole pure-parallel task
// set is accepted with the requested confidence under uniform per-group
// prices: the q-quantile of max over Π_i F_i^{n_i k_i}, found by
// bisection. This is the deadline [29] would quote for a given budget
// allocation.
func QuantileDeadline(groups []htuning.Group, prices []int, confidence float64) (float64, error) {
	if len(groups) != len(prices) {
		return 0, fmt.Errorf("deadline: %d prices for %d groups", len(prices), len(groups))
	}
	if !(confidence > 0 && confidence < 1) {
		return 0, fmt.Errorf("deadline: confidence %v outside (0, 1)", confidence)
	}
	rates := make([]float64, len(groups))
	counts := make([]int, len(groups))
	slowest := math.Inf(1)
	for i, g := range groups {
		if err := g.Validate(); err != nil {
			return 0, err
		}
		r := g.Type.Accept.Rate(float64(prices[i]))
		if !(r > 0) {
			return 0, fmt.Errorf("deadline: group %d rate %v at price %d", i, r, prices[i])
		}
		rates[i] = r
		counts[i] = g.Tasks * g.Reps
		if r < slowest {
			slowest = r
		}
	}
	cdf := func(t float64) float64 {
		prod := 1.0
		for i, rate := range rates {
			prod *= powInt(1-math.Exp(-rate*t), counts[i])
		}
		return prod
	}
	// Bracket the quantile: the all-tasks CDF is below any single task's,
	// so start from the slowest group's scale and grow.
	hi := 1 / slowest
	for cdf(hi) < confidence {
		hi *= 2
		if hi > 1e18 {
			return 0, fmt.Errorf("deadline: quantile bracket failed")
		}
	}
	return numeric.Bisect(func(t float64) float64 { return cdf(t) - confidence }, 0, hi, 1e-10)
}
