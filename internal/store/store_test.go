package store

import (
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hputune/internal/campaign"
	"hputune/internal/inference"
)

// reopen closes nothing (a crash closes nothing either) and opens the
// directory fresh.
func reopen(t *testing.T, dir string) *Store {
	t.Helper()
	st, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// stateOf returns a deep copy of the store's state.
func stateOf(t *testing.T, st *Store) *State {
	t.Helper()
	s, err := st.State()
	if err != nil {
		t.Fatalf("State: %v", err)
	}
	return s
}

// sameState compares two states via their canonical JSON form.
func sameState(t *testing.T, got, want *State, what string) {
	t.Helper()
	g, err := json.Marshal(got)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	w, err := json.Marshal(want)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if string(g) != string(w) {
		t.Fatalf("%s: state mismatch\n got: %s\nwant: %s", what, g, w)
	}
}

// seedActivity appends a representative record mix and returns the
// expected state.
func seedActivity(t *testing.T, st *Store) {
	t.Helper()
	if err := st.AppendIngest(map[int]inference.PriceAggregate{2: {N: 3, Total: 1.25}, 5: {N: 2, Total: 0.5}}, 5); err != nil {
		t.Fatalf("AppendIngest: %v", err)
	}
	if err := st.AppendFit(FitRecord{Slope: 2, Intercept: 0.5, R2: 0.98, SE: 0.01, N: 2, Prices: 2}); err != nil {
		t.Fatalf("AppendFit: %v", err)
	}
	if err := st.AppendFleet([]byte(`{"campaign":{"name":"x"}}`), []string{"c1"}, &FittedModel{K: 2, B: 0.5}); err != nil {
		t.Fatalf("AppendFleet: %v", err)
	}
	chk := campaign.Checkpoint{Name: "x", Status: campaign.StatusRunning, RoundsRun: 1, HistoryCap: 4, Spent: 10, Remaining: 90, TotalMakespan: 1.5,
		Aggs: map[int]inference.PriceAggregate{3: {N: 7, Total: 2.5}}}
	if err := st.AppendRound("c1", campaign.RoundSnapshot{Round: 0, Prices: []int{3}, Spent: 10}, chk); err != nil {
		t.Fatalf("AppendRound: %v", err)
	}
}

func TestStoreReopenRecoversState(t *testing.T) {
	dir := t.TempDir()
	st1, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	seedActivity(t, st1)
	want := stateOf(t, st1)
	// Crash: no compact, no close.
	st2 := reopen(t, dir)
	sameState(t, stateOf(t, st2), want, "after crash-reopen")
	if want.LastSeq != 4 || want.Records != 5 || want.Fit == nil || len(want.Campaigns) != 1 {
		t.Fatalf("unexpected recovered shape: %+v", want)
	}
}

func TestStoreCompactRotatesAndRecoversIdentically(t *testing.T) {
	dir := t.TempDir()
	st1, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	seedActivity(t, st1)
	want := stateOf(t, st1)
	if err := st1.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	// The WAL is truncated under the snapshot.
	if fi, err := os.Stat(filepath.Join(dir, walName)); err != nil || fi.Size() != 0 {
		t.Fatalf("WAL after compact: %v size %d, want 0", err, fi.Size())
	}
	st2 := reopen(t, dir)
	sameState(t, stateOf(t, st2), want, "after compact+reopen")
	// Appends continue past the snapshot with the sequence intact.
	if err := st2.AppendFinished("c1", campaign.Checkpoint{Name: "x", Status: campaign.StatusMaxRounds, RoundsRun: 1, HistoryCap: 4, Spent: 10, Remaining: 90}); err != nil {
		t.Fatalf("AppendFinished after compact: %v", err)
	}
	st3 := reopen(t, dir)
	got := stateOf(t, st3)
	if got.LastSeq != want.LastSeq+1 || got.Finished != 1 {
		t.Fatalf("post-snapshot append lost: %+v", got)
	}
}

func TestStoreCrashBetweenSnapshotAndTruncationReplaysOnce(t *testing.T) {
	dir := t.TempDir()
	st1, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	seedActivity(t, st1)
	want := stateOf(t, st1)
	// Simulate the crash window: the snapshot rename landed but the WAL
	// truncation never did — the WAL still holds every absorbed record.
	raw, err := json.Marshal(want)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapName), raw, 0o644); err != nil {
		t.Fatalf("write snapshot: %v", err)
	}
	st2 := reopen(t, dir)
	sameState(t, stateOf(t, st2), want, "snapshot + stale WAL")
	// Aggregates must not be double-applied by the stale records.
	if got := stateOf(t, st2).Aggs[2]; got != (inference.PriceAggregate{N: 3, Total: 1.25}) {
		t.Fatalf("aggregate replayed twice: %+v", got)
	}
}

func TestStoreTornTailIsTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	st1, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	seedActivity(t, st1)
	want := stateOf(t, st1)
	walPath := filepath.Join(dir, walName)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	// Tear the file mid-way through a half-appended next record.
	torn := append(append([]byte{}, raw...), 0x2a, 0x00, 0x00, 0x00, 0xde, 0xad)
	if err := os.WriteFile(walPath, torn, 0o644); err != nil {
		t.Fatalf("write torn wal: %v", err)
	}
	st2 := reopen(t, dir)
	sameState(t, stateOf(t, st2), want, "after torn-tail repair")
	// The repair truncated the file, and appending still works.
	if err := st2.AppendArchive("zzz"); err == nil {
		t.Fatal("archive of unknown campaign must fail")
	} else if fi, _ := os.Stat(walPath); fi.Size() != int64(len(raw)) {
		t.Fatalf("torn tail not truncated: %d bytes, want %d", fi.Size(), len(raw))
	}
}

func TestStoreRefusesCorruptWAL(t *testing.T) {
	dir := t.TempDir()
	st1, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	seedActivity(t, st1)
	st1.Close()
	walPath := filepath.Join(dir, walName)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	raw[frameHeaderSize+3] ^= 0xff // first record's payload: mid-file damage
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatalf("write corrupt wal: %v", err)
	}
	if _, err := Open(dir, Options{NoSync: true}); err == nil {
		t.Fatal("Open accepted a corrupt WAL")
	} else {
		var corrupt *CorruptError
		if !errors.As(err, &corrupt) {
			t.Fatalf("err %v, want CorruptError", err)
		}
	}
	rep, err := Inspect(dir)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if rep.Clean() || rep.Corrupt == nil {
		t.Fatalf("Inspect of corrupt dir reports clean: %+v", rep)
	}
}

func TestStoreRefusesCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	st1, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	seedActivity(t, st1)
	if err := st1.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st1.Close()
	if err := os.WriteFile(filepath.Join(dir, snapName), []byte(`{"lastSeq":`), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := Open(dir, Options{NoSync: true}); err == nil {
		t.Fatal("Open accepted a corrupt snapshot")
	}
	rep, err := Inspect(dir)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if rep.Clean() || rep.SnapshotErr == nil {
		t.Fatalf("Inspect of corrupt snapshot reports clean: %+v", rep)
	}
}

// truncatingWriter writes through until its byte budget runs out, then
// tears the write mid-buffer and fails — the crash-simulation seam.
type truncatingWriter struct {
	w      io.Writer
	budget int
}

var errInjected = errors.New("injected write failure")

func (tw *truncatingWriter) Write(p []byte) (int, error) {
	if tw.budget <= 0 {
		return 0, errInjected
	}
	if len(p) > tw.budget {
		n, _ := tw.w.Write(p[:tw.budget])
		tw.budget = 0
		return n, errInjected
	}
	tw.budget -= len(p)
	return tw.w.Write(p)
}

func TestStoreFaultInjectionGoesStickyAndRecovers(t *testing.T) {
	dir := t.TempDir()
	st1, err := Open(dir, Options{
		NoSync:  true,
		WrapWAL: func(w io.Writer) io.Writer { return &truncatingWriter{w: w, budget: 150} },
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var appendErr error
	appended := 0
	for i := 0; i < 50; i++ {
		err := st1.AppendIngest(map[int]inference.PriceAggregate{2 + i: {N: 1, Total: 1}}, 1)
		if err != nil {
			appendErr = err
			break
		}
		appended++
	}
	if appendErr == nil {
		t.Fatal("the byte budget never tripped")
	}
	if st1.Err() == nil {
		t.Fatal("failure must stick")
	}
	// Everything after the failure is refused, including compaction —
	// the on-disk image must stay frozen at the crash point.
	if err := st1.AppendFit(FitRecord{Slope: 1}); !errors.Is(err, errInjected) {
		t.Fatalf("append after failure: %v, want the sticky injected error", err)
	}
	if err := st1.Compact(); !errors.Is(err, errInjected) {
		t.Fatalf("compact after failure: %v, want the sticky injected error", err)
	}
	// Recovery sees the appended records and repairs the torn one.
	st2 := reopen(t, dir)
	got := stateOf(t, st2)
	if int(got.LastSeq) != appended {
		t.Fatalf("recovered %d records, %d were acknowledged", got.LastSeq, appended)
	}
	if int(got.Records) != appended {
		t.Fatalf("recovered %d ingest records, want %d", got.Records, appended)
	}
}

func TestStoreAutoCompacts(t *testing.T) {
	dir := t.TempDir()
	st1, err := Open(dir, Options{NoSync: true, SnapshotEvery: 4})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := st1.AppendIngest(map[int]inference.PriceAggregate{2: {N: 1, Total: 1}}, 1); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	rep, err := Inspect(dir)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if !rep.HasSnapshot || rep.SnapshotSeq < 4 {
		t.Fatalf("no auto snapshot: %+v", rep)
	}
	if rep.WALRecords >= 10 {
		t.Fatalf("WAL never truncated: %d records", rep.WALRecords)
	}
	st2 := reopen(t, dir)
	got := stateOf(t, st2)
	if got.LastSeq != 10 || got.Records != 10 || got.Aggs[2].N != 10 {
		t.Fatalf("recovered %+v, want 10 applied records", got)
	}
}

func TestStoreClosedRejectsAppends(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := st.AppendFit(FitRecord{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := st.Compact(); !errors.Is(err, ErrClosed) {
		t.Fatalf("compact after close: %v, want ErrClosed", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestInspectOnMissingAndEmptyDirs(t *testing.T) {
	if _, err := Inspect(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("Inspect of a missing dir must error")
	}
	dir := t.TempDir()
	rep, err := Inspect(dir)
	if err != nil {
		t.Fatalf("Inspect(empty): %v", err)
	}
	if !rep.Clean() || rep.HasSnapshot || rep.WALRecords != 0 {
		t.Fatalf("empty dir report: %+v", rep)
	}
	if rep.State == nil || !reflect.DeepEqual(rep.State, NewState()) {
		t.Fatalf("empty dir state: %+v", rep.State)
	}
}

// TestStoreMetrics pins the write-path counters: appends and WAL bytes
// accrue per record, fsyncs only when syncing is on, and a compaction
// resets the WAL byte gauge while counting itself.
func TestStoreMetrics(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SnapshotEvery: 3})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	if m := st.Metrics(); m != (Metrics{}) {
		t.Fatalf("fresh metrics = %+v, want zero", m)
	}
	for i := 0; i < 2; i++ {
		if err := st.AppendFit(FitRecord{Slope: float64(i)}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	m := st.Metrics()
	if m.Appends != 2 || m.Fsyncs != 2 || m.Compactions != 0 {
		t.Fatalf("after 2 appends: %+v", m)
	}
	if m.WALBytes <= 0 || m.LastSeq != 2 || m.Failed {
		t.Fatalf("after 2 appends: %+v", m)
	}
	// The third append crosses SnapshotEvery and compacts: WAL bytes
	// reset, the snapshot fsync and the append fsync both count.
	if err := st.AppendFit(FitRecord{Slope: 3}); err != nil {
		t.Fatalf("append 3: %v", err)
	}
	m = st.Metrics()
	if m.Appends != 3 || m.Compactions != 1 || m.WALBytes != 0 {
		t.Fatalf("after compaction: %+v", m)
	}
	if m.Fsyncs < 4 { // 3 WAL appends + at least the snapshot file
		t.Fatalf("after compaction: %+v", m)
	}

	// NoSync stores append without fsyncing.
	st2, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st2.Close()
	if err := st2.AppendFit(FitRecord{}); err != nil {
		t.Fatal(err)
	}
	if m := st2.Metrics(); m.Appends != 1 || m.Fsyncs != 0 {
		t.Fatalf("NoSync metrics = %+v", m)
	}
}
