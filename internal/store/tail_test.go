package store

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// tailOf fetches the tail after seq, failing the test on error.
func tailOf(t *testing.T, st *Store, seq uint64) []Record {
	t.Helper()
	recs, err := st.TailSince(seq)
	if err != nil {
		t.Fatalf("TailSince(%d): %v", seq, err)
	}
	return recs
}

func TestTailSinceServesDurableSuffix(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	seedActivity(t, st) // 4 records: ingest, fit, fleet, round

	all := tailOf(t, st, 0)
	if len(all) != 4 {
		t.Fatalf("TailSince(0) returned %d records, want 4", len(all))
	}
	for i, rec := range all {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("tail[%d].Seq = %d, want %d (gapless from 1)", i, rec.Seq, i+1)
		}
	}
	if got := tailOf(t, st, 2); len(got) != 2 || got[0].Seq != 3 {
		t.Fatalf("TailSince(2) = %d records starting at %d, want 2 starting at 3", len(got), got[0].Seq)
	}
	if got := tailOf(t, st, 4); len(got) != 0 {
		t.Fatalf("TailSince(lastSeq) returned %d records, want none", len(got))
	}
	// A follower ahead of the store (impossible in a healthy pair, but a
	// poll must not invent records for it).
	if got := tailOf(t, st, 99); len(got) != 0 {
		t.Fatalf("TailSince(beyond) returned %d records, want none", len(got))
	}
}

func TestTailSinceCompactionReturnsErrCompacted(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	seedActivity(t, st)
	if err := st.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if _, err := st.TailSince(0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("TailSince(0) after compaction: %v, want ErrCompacted", err)
	}
	// From the snapshot boundary on, the (empty) tail is servable again.
	if got := tailOf(t, st, 4); len(got) != 0 {
		t.Fatalf("TailSince(snapshot seq) returned %d records, want none", len(got))
	}
	seedActivity2 := func() {
		if err := st.AppendArchive("c1"); err == nil {
			t.Fatal("archive of running campaign unexpectedly accepted")
		}
		if err := st.AppendFit(FitRecord{Slope: 1, Intercept: 1}); err != nil {
			t.Fatalf("AppendFit: %v", err)
		}
	}
	seedActivity2()
	got := tailOf(t, st, 4)
	if len(got) != 1 || got[0].Seq != 5 || got[0].Type != TypeFit {
		t.Fatalf("post-compaction tail = %+v, want one fit record at seq 5", got)
	}
}

func TestTailSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	seedActivity(t, st)
	want := tailOf(t, st, 0)
	st.Close()

	st2 := reopen(t, dir)
	got := tailOf(t, st2, 0)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tail after reopen = %+v, want %+v", got, want)
	}
}

func TestEncodeRecordFrameRoundTrips(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	seedActivity(t, st)
	recs := tailOf(t, st, 0)
	var buf []byte
	for _, rec := range recs {
		buf, err = EncodeRecordFrame(buf, rec)
		if err != nil {
			t.Fatalf("EncodeRecordFrame: %v", err)
		}
	}
	got, err := DecodeAll(bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("DecodeAll of re-encoded frames: %v", err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("re-encoded frames decode to %+v, want %+v", got, recs)
	}
}

func TestSeedDirRecoversSeededState(t *testing.T) {
	src := t.TempDir()
	st, err := Open(src, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	seedActivity(t, st)
	state := stateOf(t, st)

	dst := t.TempDir()
	// A stale WAL in the replica directory must not replay on top of the
	// seeded snapshot.
	stale, err := Open(dst, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open stale: %v", err)
	}
	if err := stale.AppendFit(FitRecord{Slope: 9}); err != nil {
		t.Fatalf("AppendFit: %v", err)
	}
	stale.Close()

	if err := SeedDir(dst, state, Options{NoSync: true}); err != nil {
		t.Fatalf("SeedDir: %v", err)
	}
	replica := reopen(t, dst)
	sameState(t, stateOf(t, replica), state, "seeded replica")
	if got := tailOf(t, replica, state.LastSeq); len(got) != 0 {
		t.Fatalf("seeded replica has %d tail records, want none", len(got))
	}
}
