package store

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"hputune/internal/campaign"
	"hputune/internal/inference"
	"hputune/internal/spec"
)

// walJournal journals a directly-driven campaign into a store while
// recording every live event, so the test can compare replayed state
// against what the in-memory run actually was at each point.
type walJournal struct {
	st *Store
	// events mirrors the round/finished records in append order, carrying
	// the live checkpoint each one was cut from.
	events []journalEvent
}

type journalEvent struct {
	id    string
	round *campaign.RoundSnapshot // nil for a finished event
	chk   campaign.Checkpoint
}

func (j *walJournal) Round(id string, snap campaign.RoundSnapshot, chk campaign.Checkpoint) {
	j.events = append(j.events, journalEvent{id: id, round: &snap, chk: chk})
	_ = j.st.AppendRound(id, snap, chk)
}

func (j *walJournal) Finished(id string, chk campaign.Checkpoint) {
	j.events = append(j.events, journalEvent{id: id, chk: chk})
	_ = j.st.AppendFinished(id, chk)
}

// genFleetDoc builds a random small campaign fleet spec. Budgets are
// derived from the workload so every config validates; some fleets get
// drift (fits keep moving) and some get budgets that exhaust mid-way.
func genFleetDoc(r *rand.Rand) []byte {
	n := 1 + r.Intn(3)
	doc := `{"campaigns":[`
	for i := 0; i < n; i++ {
		if i > 0 {
			doc += ","
		}
		groups := 1 + r.Intn(2)
		minCost := 0
		gdoc := ""
		for g := 0; g < groups; g++ {
			if g > 0 {
				gdoc += ","
			}
			tasks := 4 + r.Intn(12)
			reps := 1 + r.Intn(3)
			minCost += tasks * reps
			gdoc += fmt.Sprintf(`{"name":"g%d","tasks":%d,"reps":%d,"procRate":2,"true":{"kind":"linear","k":%.1f,"b":0.5}}`,
				g, tasks, reps, 1.5+r.Float64())
		}
		roundBudget := minCost * (2 + r.Intn(3))
		rounds := 2 + r.Intn(3)
		budget := roundBudget * rounds
		if r.Intn(3) == 0 {
			budget = roundBudget + roundBudget/2 // exhausts after round 1
		}
		drift := ""
		if r.Intn(2) == 0 {
			drift = `,"drift":{"kind":"rate","factor":0.93}`
		}
		doc += fmt.Sprintf(`{"name":"f%d","roundBudget":%d,"budget":%d,"rounds":%d,"epsilon":0.05,"seed":%d,"prior":{"kind":"linear","k":1,"b":1},"groups":[%s]%s}`,
			i, roundBudget, budget, rounds, r.Uint64()%1000, gdoc, drift)
	}
	return []byte(doc + "]}")
}

// TestPrefixReplayEqualsLiveRun is the replay-determinism property: for
// random fleets (with interleaved ingests and fits), recovering from
// the WAL truncated at EVERY record boundary — and additionally
// snapshotting (Compact) at that boundary and recovering from the
// snapshot — yields exactly the state the live in-memory run had at
// that point: campaign checkpoints, retained round history, ingest
// aggregates, fit, and lifetime counters.
func TestPrefixReplayEqualsLiveRun(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial-%d", trial), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(int64(1000 + 17*trial)))
			dir := t.TempDir()
			st, err := Open(dir, Options{NoSync: true, SnapshotEvery: 1 << 30})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			j := &walJournal{st: st}

			doc := genFleetDoc(r)
			cfgs, err := spec.ParseCampaigns(doc, spec.BuildOpts{})
			if err != nil {
				t.Fatalf("generated spec does not parse: %v\n%s", err, doc)
			}
			ids := make([]string, len(cfgs))
			for i := range cfgs {
				ids[i] = fmt.Sprintf("c%d", i+1)
			}
			if err := st.AppendFleet(doc, ids, nil); err != nil {
				t.Fatalf("AppendFleet: %v", err)
			}
			// Drive the campaigns sequentially (the WAL interleaving of a
			// concurrent fleet is exercised by the server crash suite; here
			// a deterministic order lets every prefix be predicted), with
			// random ingests and fits interleaved between campaigns.
			var ingests []ingestData
			var fits []FitRecord
			interleave := func() {
				for r.Intn(2) == 0 {
					d := ingestData{Deltas: map[int]inference.PriceAggregate{
						1 + r.Intn(5): {N: 1 + r.Intn(4), Total: float64(1+r.Intn(8)) / 2},
					}, Count: 1 + r.Intn(4)}
					ingests = append(ingests, d)
					if err := st.AppendIngest(d.Deltas, d.Count); err != nil {
						t.Fatalf("AppendIngest: %v", err)
					}
					if r.Intn(2) == 0 {
						f := FitRecord{Slope: 1 + r.Float64(), Intercept: r.Float64(), R2: 0.9, N: 2, Prices: 2}
						fits = append(fits, f)
						if err := st.AppendFit(f); err != nil {
							t.Fatalf("AppendFit: %v", err)
						}
					}
				}
			}
			for i, cfg := range cfgs {
				interleave()
				c, err := campaign.New(nil, cfg)
				if err != nil {
					t.Fatalf("campaign %d: %v", i, err)
				}
				c.SetJournal(j, ids[i])
				if _, err := c.Run(context.Background()); err != nil {
					t.Fatalf("campaign %d run: %v", i, err)
				}
			}
			interleave()

			// Decode the finished WAL, tracking each record's end offset.
			walPath := filepath.Join(dir, walName)
			raw, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatalf("read wal: %v", err)
			}
			recs, err := DecodeAll(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("decode wal: %v", err)
			}
			offsets := recordOffsets(t, raw, len(recs))

			// Walk the records, maintaining an INDEPENDENT expectation
			// (live journal events and test-made ingests/fits — not the
			// store's own Apply) and check recovery at every prefix.
			exp := newExpectation()
			eventIdx, ingestIdx, fitIdx := 0, 0, 0
			checkEvery := 1
			if len(recs) > 24 {
				checkEvery = 2 // bound test time on long trials
			}
			for i, rec := range recs {
				switch rec.Type {
				case TypeFleet:
					exp.fleet(ids)
				case TypeRound, TypeFinished:
					ev := j.events[eventIdx]
					eventIdx++
					exp.event(ev)
				case TypeIngest:
					exp.ingest(ingests[ingestIdx])
					ingestIdx++
				case TypeFit:
					exp.setFit(fits[fitIdx])
					fitIdx++
				default:
					t.Fatalf("unexpected record type %s", rec.Type)
				}
				if i%checkEvery != 0 && i != len(recs)-1 {
					continue
				}
				pdir := t.TempDir()
				if err := os.WriteFile(filepath.Join(pdir, walName), raw[:offsets[i]], 0o644); err != nil {
					t.Fatalf("write prefix: %v", err)
				}
				pst, err := Open(pdir, Options{NoSync: true})
				if err != nil {
					t.Fatalf("prefix %d: Open: %v", i, err)
				}
				got, err := pst.State()
				if err != nil {
					t.Fatalf("prefix %d: State: %v", i, err)
				}
				exp.check(t, fmt.Sprintf("prefix %d (replay)", i), got)
				// Snapshot at this prefix, reopen: state must not move.
				if err := pst.Compact(); err != nil {
					t.Fatalf("prefix %d: Compact: %v", i, err)
				}
				pst.Close()
				pst2, err := Open(pdir, Options{NoSync: true})
				if err != nil {
					t.Fatalf("prefix %d: reopen after snapshot: %v", i, err)
				}
				got2, err := pst2.State()
				if err != nil {
					t.Fatalf("prefix %d: State: %v", i, err)
				}
				exp.check(t, fmt.Sprintf("prefix %d (snapshot+replay)", i), got2)
				pst2.Close()
			}
			if eventIdx != len(j.events) || ingestIdx != len(ingests) || fitIdx != len(fits) {
				t.Fatalf("record/event bookkeeping drifted: %d/%d events, %d/%d ingests, %d/%d fits",
					eventIdx, len(j.events), ingestIdx, len(ingests), fitIdx, len(fits))
			}
		})
	}
}

// expectation is the test's independent model of what the durable state
// must be — built from live events, with its own (deliberately naive)
// re-implementation of the history ring and counters.
type expectation struct {
	campaigns map[string]*expCampaign
	aggs      map[int]inference.PriceAggregate
	records   uint64
	fit       *FitRecord
	started   uint64
	finished  uint64
	canceled  uint64
}

type expCampaign struct {
	chk    campaign.Checkpoint
	rounds []campaign.RoundSnapshot
}

func newExpectation() *expectation {
	return &expectation{campaigns: make(map[string]*expCampaign), aggs: make(map[int]inference.PriceAggregate)}
}

func (e *expectation) fleet(ids []string) {
	for _, id := range ids {
		e.campaigns[id] = &expCampaign{chk: campaign.Checkpoint{Status: campaign.StatusPending}}
		e.started++
	}
}

func (e *expectation) event(ev journalEvent) {
	c := e.campaigns[ev.id]
	if !c.chk.Status.Terminal() && ev.chk.Status.Terminal() {
		e.finished++
		if ev.chk.Status == campaign.StatusCanceled {
			e.canceled++
		}
	}
	c.chk = ev.chk
	if ev.round != nil {
		c.rounds = append(c.rounds, *ev.round)
		if len(c.rounds) > ev.chk.HistoryCap {
			c.rounds = c.rounds[len(c.rounds)-ev.chk.HistoryCap:]
		}
	}
}

func (e *expectation) ingest(d ingestData) {
	for price, delta := range d.Deltas {
		agg := e.aggs[price]
		agg.Add(delta.N, delta.Total)
		e.aggs[price] = agg
	}
	e.records += uint64(d.Count)
}

func (e *expectation) setFit(f FitRecord) { e.fit = &f }

func (e *expectation) check(t *testing.T, what string, got *State) {
	t.Helper()
	if got.Records != e.records || got.Started != e.started || got.Finished != e.finished || got.Canceled != e.canceled {
		t.Fatalf("%s: counters (records %d started %d finished %d canceled %d), want (%d %d %d %d)",
			what, got.Records, got.Started, got.Finished, got.Canceled, e.records, e.started, e.finished, e.canceled)
	}
	if len(got.Aggs) != len(e.aggs) {
		t.Fatalf("%s: %d aggregate levels, want %d", what, len(got.Aggs), len(e.aggs))
	}
	for price, want := range e.aggs {
		if got.Aggs[price] != want {
			t.Fatalf("%s: aggregate at %d is %+v, want %+v", what, price, got.Aggs[price], want)
		}
	}
	if (got.Fit == nil) != (e.fit == nil) || (got.Fit != nil && *got.Fit != *e.fit) {
		t.Fatalf("%s: fit %+v, want %+v", what, got.Fit, e.fit)
	}
	if len(got.Campaigns) != len(e.campaigns) {
		t.Fatalf("%s: %d campaigns, want %d", what, len(got.Campaigns), len(e.campaigns))
	}
	for id, want := range e.campaigns {
		cs, ok := got.Campaigns[id]
		if !ok {
			t.Fatalf("%s: campaign %s missing", what, id)
		}
		gotChk := mustJSON(t, cs.Checkpoint)
		wantChk := mustJSON(t, want.chk)
		if gotChk != wantChk {
			t.Fatalf("%s: campaign %s checkpoint\n got  %s\n want %s", what, id, gotChk, wantChk)
		}
		gotRounds := mustJSON(t, cs.Rounds)
		wantRounds := mustJSON(t, want.rounds)
		if len(cs.Rounds) == 0 && len(want.rounds) == 0 {
			continue
		}
		if gotRounds != wantRounds {
			t.Fatalf("%s: campaign %s rounds\n got  %s\n want %s", what, id, gotRounds, wantRounds)
		}
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(raw)
}

// recordOffsets returns the byte offset just past each record.
func recordOffsets(t *testing.T, raw []byte, n int) []int64 {
	t.Helper()
	d := NewReader(bytes.NewReader(raw))
	offsets := make([]int64, 0, n)
	for {
		_, err := d.Next()
		if err != nil {
			break
		}
		offsets = append(offsets, d.Offset())
	}
	if len(offsets) != n {
		t.Fatalf("offsets: %d records, want %d", len(offsets), n)
	}
	return offsets
}
