package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"testing"
)

// encodeRecords frames a sequence of records the way the store does.
func encodeRecords(t *testing.T, recs ...Record) []byte {
	t.Helper()
	var buf []byte
	for _, rec := range recs {
		payload, err := json.Marshal(rec)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		buf = appendFrame(buf, payload)
	}
	return buf
}

// mkRecord builds a minimal valid record of the given type.
func mkRecord(seq uint64, typ string, data string) Record {
	return Record{Seq: seq, Type: typ, Data: json.RawMessage(data)}
}

func TestWALRoundTrip(t *testing.T) {
	want := []Record{
		mkRecord(1, TypeIngest, `{"deltas":{"2":{"N":3,"Total":1.5}},"count":3}`),
		mkRecord(2, TypeFit, `{"slope":2,"intercept":0.5,"r2":0.99,"se":0.01,"n":4,"prices":4}`),
		mkRecord(3, TypeArchive, `{"id":"c1"}`),
	}
	raw := encodeRecords(t, want...)
	got, err := DecodeAll(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || got[i].Type != want[i].Type || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestWALTornTailClassification(t *testing.T) {
	full := encodeRecords(t,
		mkRecord(1, TypeArchive, `{"id":"c1"}`),
		mkRecord(2, TypeArchive, `{"id":"c2"}`),
	)
	first := encodeRecords(t, mkRecord(1, TypeArchive, `{"id":"c1"}`))
	// Every proper prefix that cuts into the second frame must decode
	// the first record and classify the remainder as a torn tail.
	for cut := len(first) + 1; cut < len(full); cut++ {
		recs, err := DecodeAll(bytes.NewReader(full[:cut]))
		var tail *TailError
		if !errors.As(err, &tail) {
			t.Fatalf("cut %d: err %v, want TailError", cut, err)
		}
		if len(recs) != 1 || recs[0].Seq != 1 {
			t.Fatalf("cut %d: got %d records, want the intact first", cut, len(recs))
		}
		if tail.Offset != int64(len(first)) {
			t.Fatalf("cut %d: torn offset %d, want %d", cut, tail.Offset, len(first))
		}
	}
	// A cut inside the first frame leaves zero records.
	for cut := 1; cut < len(first); cut++ {
		recs, err := DecodeAll(bytes.NewReader(full[:cut]))
		var tail *TailError
		if !errors.As(err, &tail) {
			t.Fatalf("cut %d: err %v, want TailError", cut, err)
		}
		if len(recs) != 0 {
			t.Fatalf("cut %d: got %d records, want 0", cut, len(recs))
		}
	}
}

func TestWALCorruptionClassification(t *testing.T) {
	r1 := mkRecord(1, TypeArchive, `{"id":"c1"}`)
	r2 := mkRecord(2, TypeArchive, `{"id":"c2"}`)

	t.Run("mid-file bit flip is corrupt, not torn", func(t *testing.T) {
		raw := encodeRecords(t, r1, r2)
		raw[frameHeaderSize+2] ^= 0xff // inside the first payload
		recs, err := DecodeAll(bytes.NewReader(raw))
		var corrupt *CorruptError
		if !errors.As(err, &corrupt) {
			t.Fatalf("err %v, want CorruptError", err)
		}
		if len(recs) != 0 {
			t.Fatalf("got %d records before the corruption, want 0", len(recs))
		}
	})

	t.Run("final-frame bit flip is a torn tail", func(t *testing.T) {
		raw := encodeRecords(t, r1, r2)
		raw[len(raw)-1] ^= 0xff
		recs, err := DecodeAll(bytes.NewReader(raw))
		var tail *TailError
		if !errors.As(err, &tail) {
			t.Fatalf("err %v, want TailError", err)
		}
		if len(recs) != 1 {
			t.Fatalf("got %d records, want 1", len(recs))
		}
	})

	t.Run("absurd length prefix is corrupt", func(t *testing.T) {
		raw := encodeRecords(t, r1)
		binary.LittleEndian.PutUint32(raw[0:4], maxRecordBytes+1)
		_, err := DecodeAll(bytes.NewReader(raw))
		var corrupt *CorruptError
		if !errors.As(err, &corrupt) {
			t.Fatalf("err %v, want CorruptError", err)
		}
	})

	t.Run("duplicated record is corrupt", func(t *testing.T) {
		raw := encodeRecords(t, r1, r1)
		recs, err := DecodeAll(bytes.NewReader(raw))
		var corrupt *CorruptError
		if !errors.As(err, &corrupt) {
			t.Fatalf("err %v, want CorruptError", err)
		}
		if len(recs) != 1 {
			t.Fatalf("got %d records, want 1", len(recs))
		}
	})

	t.Run("sequence regression is corrupt", func(t *testing.T) {
		raw := encodeRecords(t, r2, r1)
		_, err := DecodeAll(bytes.NewReader(raw))
		var corrupt *CorruptError
		if !errors.As(err, &corrupt) {
			t.Fatalf("err %v, want CorruptError", err)
		}
	})

	t.Run("CRC-valid non-record JSON is corrupt", func(t *testing.T) {
		raw := appendFrame(nil, []byte(`[1,2,3]`))
		_, err := DecodeAll(bytes.NewReader(raw))
		var corrupt *CorruptError
		if !errors.As(err, &corrupt) {
			t.Fatalf("err %v, want CorruptError", err)
		}
	})
}

func TestReaderErrorsAreSticky(t *testing.T) {
	raw := encodeRecords(t, mkRecord(1, TypeArchive, `{"id":"c1"}`))
	raw = raw[:len(raw)-2]
	d := NewReader(bytes.NewReader(raw))
	if _, err := d.Next(); err == nil {
		t.Fatal("want an error from the torn record")
	}
	if _, err := d.Next(); err == io.EOF {
		t.Fatal("error must stick, not decay to EOF")
	}
}

func TestApplyRejectsUnknownAndMalformed(t *testing.T) {
	cases := []Record{
		mkRecord(1, "mystery", `{}`),
		mkRecord(1, TypeIngest, `{"deltas":{"0":{"N":1,"Total":1}},"count":1}`),  // price below 1
		mkRecord(1, TypeIngest, `{"deltas":{"2":{"N":-1,"Total":1}},"count":1}`), // negative N
		mkRecord(1, TypeRound, `{"id":"ghost","snap":{},"checkpoint":{"historyCap":4}}`),
		mkRecord(1, TypeFinished, `{"id":"ghost","checkpoint":{"status":"converged"}}`),
		mkRecord(1, TypeArchive, `{"id":"ghost"}`),
		mkRecord(2, TypeArchive, `{"id":"c1"}`), // sequence gap
		mkRecord(1, TypeFleet, `{"ids":[],"spec":{}}`),
		mkRecord(1, TypeFleet, `{"ids":["c1"]}`), // no spec
	}
	for i, rec := range cases {
		st := NewState()
		if err := st.Apply(rec); err == nil {
			t.Fatalf("case %d (%s seq %d): Apply accepted a bad record", i, rec.Type, rec.Seq)
		}
	}
}

func TestApplyFleetRoundFinishArchiveLifecycle(t *testing.T) {
	st := NewState()
	seq := uint64(0)
	next := func(typ, data string) error {
		seq++
		return st.Apply(mkRecord(seq, typ, data))
	}
	if err := next(TypeFleet, `{"spec":{"campaign":{}},"ids":["c1","c2"]}`); err != nil {
		t.Fatalf("fleet: %v", err)
	}
	if st.Started != 2 || st.NextID != 2 || len(st.Campaigns) != 2 {
		t.Fatalf("after fleet: started %d nextID %d campaigns %d", st.Started, st.NextID, len(st.Campaigns))
	}
	// Three rounds into a cap-2 ring: the oldest snapshot falls out.
	for r := 0; r < 3; r++ {
		data := fmt.Sprintf(`{"id":"c1","snap":{"round":%d},"checkpoint":{"name":"a","status":"running","roundsRun":%d,"historyCap":2,"spent":%d,"remaining":%d,"totalMakespan":1}}`,
			r, r+1, (r+1)*10, 100-(r+1)*10)
		if err := next(TypeRound, data); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
	cs := st.Campaigns["c1"]
	if len(cs.Rounds) != 2 || cs.Rounds[0].Round != 1 || cs.Rounds[1].Round != 2 {
		t.Fatalf("ring: %+v", cs.Rounds)
	}
	if cs.Checkpoint.RoundsRun != 3 || cs.Checkpoint.Spent != 30 {
		t.Fatalf("checkpoint: %+v", cs.Checkpoint)
	}
	// A terminal round record (convergence) counts as finished.
	if err := next(TypeRound, `{"id":"c1","snap":{"round":3},"checkpoint":{"name":"a","status":"converged","roundsRun":4,"historyCap":2,"spent":40,"remaining":60}}`); err != nil {
		t.Fatalf("terminal round: %v", err)
	}
	if st.Finished != 1 {
		t.Fatalf("finished %d, want 1", st.Finished)
	}
	// Further rounds for a settled campaign are corruption.
	if err := next(TypeRound, `{"id":"c1","snap":{"round":4},"checkpoint":{"status":"running","roundsRun":5,"historyCap":2}}`); err == nil {
		t.Fatal("round after terminal must fail")
	}
	seq-- // the failed apply consumed no sequence number
	// c2 cancels between rounds.
	if err := next(TypeFinished, `{"id":"c2","checkpoint":{"name":"b","status":"canceled","reason":"canceled before round 0"}}`); err != nil {
		t.Fatalf("finished: %v", err)
	}
	if st.Finished != 2 || st.Canceled != 1 {
		t.Fatalf("finished %d canceled %d", st.Finished, st.Canceled)
	}
	// Archive c1: history moves to the archive, live entry disappears.
	if err := next(TypeArchive, `{"id":"c1"}`); err != nil {
		t.Fatalf("archive: %v", err)
	}
	if len(st.Archived) != 1 || st.Archived[0].ID != "c1" || len(st.Archived[0].Rounds) != 2 {
		t.Fatalf("archived: %+v", st.Archived)
	}
	if st.EvictedRounds != 4 {
		t.Fatalf("evicted rounds %d, want 4", st.EvictedRounds)
	}
	if _, live := st.Campaigns["c1"]; live {
		t.Fatal("archived campaign still live")
	}
	// Prune: c2 still references fleet 0, so it stays.
	st.pruneFleets()
	if len(st.Fleets) != 1 {
		t.Fatalf("fleets %d, want 1", len(st.Fleets))
	}
	// Archive c2 too; now the fleet is unreferenced.
	if err := next(TypeArchive, `{"id":"c2"}`); err != nil {
		t.Fatalf("archive c2: %v", err)
	}
	st.pruneFleets()
	if len(st.Fleets) != 0 {
		t.Fatalf("fleets %d after prune, want 0", len(st.Fleets))
	}
}
