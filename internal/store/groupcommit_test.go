package store

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hputune/internal/inference"
)

// blockingWriter parks every Write on gate until release is closed —
// the deterministic way to hold a group-commit flush open while the
// test piles follower appends into the next batch.
type blockingWriter struct {
	w       io.Writer
	release chan struct{}
}

func (bw *blockingWriter) Write(p []byte) (int, error) {
	<-bw.release
	return bw.w.Write(p)
}

// TestGroupCommitBatchesFsyncs is the tentpole's core property: appends
// that arrive while a flush is in flight coalesce into one batch and
// share a single write+fsync, so Metrics.Fsyncs grows far slower than
// Metrics.Appends under concurrency — while every record still lands
// durably.
func TestGroupCommitBatchesFsyncs(t *testing.T) {
	dir := t.TempDir()
	release := make(chan struct{})
	st, err := Open(dir, Options{
		WrapWAL: func(w io.Writer) io.Writer { return &blockingWriter{w: w, release: release} },
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	const followers = 15
	var wg sync.WaitGroup
	errs := make([]error, followers+1)
	wg.Add(1)
	go func() { // the leader: its flush parks on the gate
		defer wg.Done()
		errs[0] = st.AppendIngest(map[int]inference.PriceAggregate{1: {N: 1, Total: 1}}, 1)
	}()
	// Give the leader time to reach the parked Write, then pile on
	// followers; they must queue into the next batch, not fsync alone.
	time.Sleep(50 * time.Millisecond)
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = st.AppendIngest(map[int]inference.PriceAggregate{1 + i: {N: 1, Total: 1}}, 1)
		}(i)
	}
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}

	m := st.Metrics()
	if m.Appends != followers+1 {
		t.Fatalf("Appends = %d, want %d", m.Appends, followers+1)
	}
	if m.Fsyncs >= m.Appends/2 {
		t.Fatalf("group commit did not batch: %d fsyncs for %d appends", m.Fsyncs, m.Appends)
	}
	if m.Fsyncs < 1 {
		t.Fatalf("durable appends with zero fsyncs: %+v", m)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Every acknowledged append must be recovered.
	st2 := reopen(t, dir)
	state := stateOf(t, st2)
	if state.Records != followers+1 {
		t.Fatalf("recovered %d records, want %d", state.Records, followers+1)
	}
	for p := 1; p <= followers+1; p++ {
		if state.Aggs[p].N != 1 {
			t.Errorf("price %d lost in recovery: %+v", p, state.Aggs[p])
		}
	}
}

// TestStateWaitsForInFlightFlush pins the read side of the durability
// contract under group commit: append applies a record to the mirror
// before its batched fsync settles, so State must wait out the flush
// rather than serve an append that is still unacknowledged (and whose
// write could yet fail). The flush is parked on a gated writer; State,
// called mid-flush, must not return until the gate opens — and when it
// does, the record it shows is durable.
func TestStateWaitsForInFlightFlush(t *testing.T) {
	dir := t.TempDir()
	release := make(chan struct{})
	st, err := Open(dir, Options{
		WrapWAL: func(w io.Writer) io.Writer { return &blockingWriter{w: w, release: release} },
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	appendDone := make(chan error, 1)
	go func() {
		appendDone <- st.AppendIngest(map[int]inference.PriceAggregate{7: {N: 1, Total: 1}}, 1)
	}()
	// Wait until the leader is parked inside its Write (mu released,
	// flushing set, record already applied to the mirror).
	time.Sleep(50 * time.Millisecond)

	stateDone := make(chan *State, 1)
	go func() {
		state, err := st.State()
		if err != nil {
			t.Errorf("State: %v", err)
		}
		stateDone <- state
	}()
	select {
	case <-stateDone:
		t.Fatal("State returned while the record's flush was still in flight")
	case <-time.After(100 * time.Millisecond):
		// Still blocked — the durable-read wait is holding.
	}

	close(release)
	if err := <-appendDone; err != nil {
		t.Fatalf("append: %v", err)
	}
	select {
	case state := <-stateDone:
		if state.Aggs[7].N != 1 {
			t.Errorf("post-flush State is missing the flushed record: %+v", state.Aggs[7])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("State still blocked after the flush settled")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitDisabledMatchesReference pins the parity discipline:
// with GroupCommitWindow < 0 every append pays its own fsync, and a
// sequential append history produces a byte-identical WAL on both
// write paths (group commit only changes when fsyncs happen, never
// what bytes reach the log).
func TestGroupCommitDisabledMatchesReference(t *testing.T) {
	dirs := [2]string{t.TempDir(), t.TempDir()}
	opts := [2]Options{
		{GroupCommitWindow: -1}, // reference: one fsync per append
		{},                      // group commit (sequential appends = batches of one)
	}
	var mets [2]Metrics
	for i := range dirs {
		st, err := Open(dirs[i], opts[i])
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		seedActivity(t, st)
		mets[i] = st.Metrics()
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if mets[0].Fsyncs != mets[0].Appends {
		t.Errorf("reference path must fsync per append: %+v", mets[0])
	}
	if mets[1].Fsyncs != mets[1].Appends {
		t.Errorf("sequential group commit degenerates to one fsync per append: %+v", mets[1])
	}
	walA, err := os.ReadFile(filepath.Join(dirs[0], walName))
	if err != nil {
		t.Fatal(err)
	}
	walB, err := os.ReadFile(filepath.Join(dirs[1], walName))
	if err != nil {
		t.Fatal(err)
	}
	if len(walA) == 0 || !bytes.Equal(walA, walB) {
		t.Errorf("write paths diverged: reference WAL %d bytes, group-commit WAL %d bytes", len(walA), len(walB))
	}
	sA, sB := stateOf(t, reopen(t, dirs[0])), stateOf(t, reopen(t, dirs[1]))
	sameState(t, sB, sA, "group-commit recovery vs reference recovery")
}

// TestGroupCommitWindowLingers: with a positive window the leader holds
// its flush open, so appends staggered within the window share its
// fsync instead of each paying their own.
func TestGroupCommitWindowLingers(t *testing.T) {
	st, err := Open(t.TempDir(), Options{GroupCommitWindow: 300 * time.Millisecond})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	const n = 4
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(time.Duration(i) * 10 * time.Millisecond)
			errs[i] = st.AppendIngest(map[int]inference.PriceAggregate{1 + i: {N: 1, Total: 1}}, 1)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	m := st.Metrics()
	if m.Appends != n || m.Fsyncs >= n {
		t.Fatalf("linger did not batch the staggered appends: %+v", m)
	}
}

// slowTearingWriter tears the write stream after a byte budget like
// truncatingWriter, but also dawdles per write so concurrent appends
// really do pile into shared batches before the crash lands.
type slowTearingWriter struct {
	mu     sync.Mutex
	w      io.Writer
	budget int
	delay  time.Duration
}

func (sw *slowTearingWriter) Write(p []byte) (int, error) {
	time.Sleep(sw.delay)
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.budget <= 0 {
		return 0, errInjected
	}
	if len(p) > sw.budget {
		n, _ := sw.w.Write(p[:sw.budget])
		sw.budget = 0
		return n, errInjected
	}
	sw.budget -= len(p)
	return sw.w.Write(p)
}

// TestGroupCommitCrashMidBatchRecoversPrefix is the randomized
// crash-point property for batched appends: tear the WAL at random byte
// budgets while concurrent appenders group-commit, then prove on
// recovery that (a) the directory reopens cleanly (the torn frame is
// the repairable tail), (b) every acknowledged append survived, and
// (c) nothing beyond the attempted history appeared. Batch frames are
// written in sequence order, so recovery is a gapless prefix — a replay
// gap would fail the reopen loudly.
func TestGroupCommitCrashMidBatchRecoversPrefix(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 12; trial++ {
		trial := trial
		budget := 40 + r.Intn(1200)
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			dir := t.TempDir()
			st, err := Open(dir, Options{
				NoSync: true,
				WrapWAL: func(w io.Writer) io.Writer {
					return &slowTearingWriter{w: w, budget: budget, delay: time.Millisecond}
				},
			})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			const appenders, perG = 4, 8
			acked := make([][]bool, appenders)
			var wg sync.WaitGroup
			for g := 0; g < appenders; g++ {
				acked[g] = make([]bool, perG)
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						price := 1 + g*perG + i
						err := st.AppendIngest(map[int]inference.PriceAggregate{price: {N: 1, Total: 1}}, 1)
						if err == nil {
							acked[g][i] = true
						}
					}
				}(g)
			}
			wg.Wait()
			if st.Err() == nil {
				t.Skipf("trial %d: budget %d never tripped (all %d appends fit)", trial, budget, appenders*perG)
			}
			st.Close()

			st2, err := Open(dir, Options{NoSync: true})
			if err != nil {
				t.Fatalf("reopen after mid-batch crash: %v", err)
			}
			defer st2.Close()
			state := stateOf(t, st2)
			ackedN := uint64(0)
			for g := range acked {
				for i, ok := range acked[g] {
					if !ok {
						continue
					}
					ackedN++
					price := 1 + g*perG + i
					if state.Aggs[price].N != 1 {
						t.Errorf("acknowledged append (price %d) lost in recovery", price)
					}
				}
			}
			if state.Records < ackedN {
				t.Errorf("recovered %d records < %d acknowledged", state.Records, ackedN)
			}
			if state.Records > appenders*perG {
				t.Errorf("recovered %d records > %d ever attempted", state.Records, appenders*perG)
			}
		})
	}
}

// TestGroupCommitAutoCompactsUnderConcurrency: the SnapshotEvery
// cadence must keep firing when appends land in batches, and the
// compacted directory must recover every record.
func TestGroupCommitAutoCompactsUnderConcurrency(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SnapshotEvery: 8})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const appenders, perG = 4, 10
	var wg sync.WaitGroup
	for g := 0; g < appenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				price := 1 + g*perG + i
				if err := st.AppendIngest(map[int]inference.PriceAggregate{price: {N: 1, Total: 1}}, 1); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	m := st.Metrics()
	if m.Compactions < 1 {
		t.Fatalf("no compaction after %d batched appends with SnapshotEvery=8: %+v", m.Appends, m)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	state := stateOf(t, reopen(t, dir))
	if state.Records != appenders*perG {
		t.Fatalf("recovered %d records, want %d", state.Records, appenders*perG)
	}
}
