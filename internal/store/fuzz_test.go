package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"testing"
)

// FuzzWALDecode drives the WAL reader and the state-apply layer over
// arbitrary bytes: corrupt, truncated, duplicated or hostile input must
// yield clean classified errors — never a panic, never silent partial
// state passed off as complete, and never an unclassified failure.
func FuzzWALDecode(f *testing.F) {
	// Seed with a healthy WAL covering every record type...
	healthy := encodeSeed(
		Record{Seq: 1, Type: TypeIngest, Data: json.RawMessage(`{"deltas":{"2":{"N":3,"Total":1.5}},"count":3}`)},
		Record{Seq: 2, Type: TypeFit, Data: json.RawMessage(`{"slope":2,"intercept":0.5,"r2":0.99,"se":0.01,"n":4,"prices":4}`)},
		Record{Seq: 3, Type: TypeFleet, Data: json.RawMessage(`{"spec":{"campaign":{"name":"x"}},"ids":["c1"]}`)},
		Record{Seq: 4, Type: TypeRound, Data: json.RawMessage(`{"id":"c1","snap":{"round":0,"prices":[3]},"checkpoint":{"name":"x","status":"running","roundsRun":1,"historyCap":4,"spent":10,"remaining":90}}`)},
		Record{Seq: 5, Type: TypeFinished, Data: json.RawMessage(`{"id":"c1","checkpoint":{"name":"x","status":"max-rounds","roundsRun":1,"historyCap":4,"spent":10,"remaining":90}}`)},
		Record{Seq: 6, Type: TypeArchive, Data: json.RawMessage(`{"id":"c1"}`)},
	)
	f.Add(healthy)
	// ...its torn, duplicated and damaged variants...
	f.Add(healthy[:len(healthy)-3])
	// A tear mid-way through the stream — the shape a crash leaves when
	// it lands inside a group-commit batch: intact leading frames, one
	// torn frame, nothing after.
	f.Add(healthy[:len(healthy)/2])
	f.Add(append(append([]byte{}, healthy...), healthy...))
	flipped := append([]byte{}, healthy...)
	flipped[frameHeaderSize+4] ^= 0xff
	f.Add(flipped)
	// ...and raw junk.
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	f.Add([]byte("not a wal at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeAll(bytes.NewReader(data))
		switch err {
		case nil:
		default:
			// Every failure must be one of the two classified kinds.
			var tail *TailError
			var corrupt *CorruptError
			if !errors.As(err, &tail) && !errors.As(err, &corrupt) {
				t.Fatalf("unclassified decode error %T: %v", err, err)
			}
			// Truncation-repair idempotence: a torn tail is repaired by
			// truncating to the reported offset (what Open does after a
			// crash mid-append or mid-batch). Decoding that repaired
			// prefix must yield exactly the already-decoded records and
			// no error — otherwise repair would change history or need a
			// second repair.
			if errors.As(err, &tail) {
				if tail.Offset < 0 || tail.Offset > int64(len(data)) {
					t.Fatalf("tail offset %d outside data of %d bytes", tail.Offset, len(data))
				}
				repaired, rerr := DecodeAll(bytes.NewReader(data[:tail.Offset]))
				if rerr != nil {
					t.Fatalf("repaired prefix failed to decode: %v", rerr)
				}
				if len(repaired) != len(recs) {
					t.Fatalf("repair changed history: %d records, then %d", len(recs), len(repaired))
				}
				for i := range recs {
					if repaired[i].Seq != recs[i].Seq || repaired[i].Type != recs[i].Type {
						t.Fatalf("repair drifted at %d: %+v vs %+v", i, repaired[i], recs[i])
					}
				}
			}
		}
		// Whatever decoded intact must re-encode and re-decode
		// identically (the frame format round-trips), and the reader's
		// offset must equal the re-encoded byte length.
		var reenc []byte
		for _, rec := range recs {
			payload, merr := json.Marshal(rec)
			if merr != nil {
				t.Fatalf("re-marshal decoded record: %v", merr)
			}
			reenc = appendFrame(reenc, payload)
		}
		d := NewReader(bytes.NewReader(reenc))
		for i := range recs {
			rec, rerr := d.Next()
			if rerr != nil {
				t.Fatalf("re-decode record %d: %v", i, rerr)
			}
			if rec.Seq != recs[i].Seq || rec.Type != recs[i].Type {
				t.Fatalf("round-trip drifted at %d: %+v vs %+v", i, rec, recs[i])
			}
		}
		if _, rerr := d.Next(); rerr != io.EOF {
			t.Fatalf("re-decode tail: %v, want EOF", rerr)
		}
		// Applying the decoded prefix must never panic; rejected records
		// leave the state at its pre-record value (all-or-nothing per
		// record is what "no silent partial state" means here).
		st := NewState()
		for _, rec := range recs {
			before, merr := json.Marshal(st)
			if merr != nil {
				t.Fatalf("marshal state: %v", merr)
			}
			if aerr := st.Apply(rec); aerr != nil {
				after, merr := json.Marshal(st)
				if merr != nil {
					t.Fatalf("marshal state: %v", merr)
				}
				if !bytes.Equal(before, after) {
					t.Fatalf("rejected %s record mutated state:\n before %s\n after  %s", rec.Type, before, after)
				}
				break
			}
		}
	})
}

// encodeSeed frames records without a *testing.T (fuzz seeds run at
// registration time).
func encodeSeed(recs ...Record) []byte {
	var buf []byte
	for _, rec := range recs {
		payload, err := json.Marshal(rec)
		if err != nil {
			panic(err)
		}
		buf = appendFrame(buf, payload)
	}
	return buf
}
