package store

import (
	"encoding/json"
	"fmt"
	"math"

	"hputune/internal/campaign"
	"hputune/internal/inference"
)

// maxArchived bounds evicted-campaign finals kept in the state (oldest
// dropped first); it keeps snapshots from growing without bound on a
// process that churns through many campaigns.
const maxArchived = 1024

// FitRecord is one published trace-inferred linear rate model — enough
// to restore the serving layer's fit (and its /v1/stats description)
// exactly.
type FitRecord struct {
	Slope     float64 `json:"slope"`
	Intercept float64 `json:"intercept"`
	R2        float64 `json:"r2"`
	SE        float64 `json:"se"`
	N         int     `json:"n"`
	Prices    int     `json:"prices"`
}

// MergedFitRecord is one cluster-merged fit publication: the fit
// itself — restored on replay exactly like a locally inferred one —
// plus the per-node aggregate versions (each partition's durable WAL
// sequence) it was computed from, so an operator can audit which
// partition states fed a published model.
type MergedFitRecord struct {
	Fit FitRecord `json:"fit"`
	// Sources maps node name → the aggregate version (WAL sequence) the
	// merger pulled from that node when it computed this fit.
	Sources map[string]uint64 `json:"sources,omitempty"`
}

// FittedModel pins the linear model a fleet's "fitted" spec kind
// resolved against at start time, so recovery rebuilds the exact same
// campaign configs no matter what the live fit has since become.
type FittedModel struct {
	K float64 `json:"k"`
	B float64 `json:"b"`
}

// FleetRecord is one started campaign fleet. The verbatim spec document
// is the serializable form of the campaign configs — configs themselves
// hold rate-model interfaces — and recovery re-parses it (spec parsing
// is deterministic, including fleet presets, which expand from a seed).
type FleetRecord struct {
	Spec   json.RawMessage `json:"spec"`
	IDs    []string        `json:"ids"`
	Fitted *FittedModel    `json:"fitted,omitempty"`
}

// CampaignState is one live (running, suspended-by-crash, or finished
// but retained) campaign: where its config comes from, its latest
// resumable checkpoint, and the retained round-snapshot ring.
type CampaignState struct {
	Fleet      int                      `json:"fleet"` // index into State.Fleets
	Index      int                      `json:"index"` // index within the fleet's parsed configs
	Checkpoint campaign.Checkpoint      `json:"checkpoint"`
	Rounds     []campaign.RoundSnapshot `json:"rounds,omitempty"`
}

// ArchivedCampaign is a finished campaign exported at retention
// eviction: its final state and history survive here after the manager
// dropped its live copy.
type ArchivedCampaign struct {
	ID         string                   `json:"id"`
	Checkpoint campaign.Checkpoint      `json:"checkpoint"`
	Rounds     []campaign.RoundSnapshot `json:"rounds,omitempty"`
}

// State is the store's materialized view: the full durable state of one
// serving process as of a snapshot plus every applied WAL record. It is
// what snapshots serialize and what recovery hands the serving layer.
type State struct {
	// LastSeq is the sequence number of the last applied record; replay
	// skips WAL records at or below it (they predate the snapshot).
	LastSeq uint64 `json:"lastSeq"`

	// Ingest state: the O(#price levels) sufficient statistic of every
	// accepted trace record, the lifetime accepted-record count, and the
	// currently published fit (nil while none).
	Aggs    map[int]inference.PriceAggregate `json:"aggs,omitempty"`
	Records uint64                           `json:"records,omitempty"`
	Fit     *FitRecord                       `json:"fit,omitempty"`

	// Campaign state.
	Fleets    []FleetRecord             `json:"fleets,omitempty"`
	Campaigns map[string]*CampaignState `json:"campaigns,omitempty"`
	Archived  []ArchivedCampaign        `json:"archived,omitempty"`

	// NextID is the highest numeric campaign id ever assigned, so a
	// recovered manager never reuses an id.
	NextID uint64 `json:"nextID,omitempty"`
	// Manager lifetime counters, restored into /v1/stats.
	Started       uint64 `json:"started,omitempty"`
	Finished      uint64 `json:"finished,omitempty"`
	Canceled      uint64 `json:"canceled,omitempty"`
	EvictedRounds uint64 `json:"evictedRounds,omitempty"`
}

// NewState returns an empty state.
func NewState() *State {
	return &State{
		Aggs:      make(map[int]inference.PriceAggregate),
		Campaigns: make(map[string]*CampaignState),
	}
}

// Payload shapes of the WAL record types.
type (
	ingestData struct {
		Deltas map[int]inference.PriceAggregate `json:"deltas"`
		Count  int                              `json:"count"`
	}
	roundData struct {
		ID         string                 `json:"id"`
		Snap       campaign.RoundSnapshot `json:"snap"`
		Checkpoint campaign.Checkpoint    `json:"checkpoint"`
	}
	finishedData struct {
		ID         string              `json:"id"`
		Checkpoint campaign.Checkpoint `json:"checkpoint"`
	}
	archiveData struct {
		ID string `json:"id"`
	}
)

// Apply folds one decoded record into the state. Errors are
// corruption-class: they mean the WAL and the state disagree (a gap in
// the sequence, a round for an unknown campaign, a non-finite
// aggregate) and recovery must refuse to proceed on the partial state.
func (st *State) Apply(rec Record) error {
	if rec.Seq != st.LastSeq+1 {
		return fmt.Errorf("store: record sequence %d after state at %d (gap or duplicate)", rec.Seq, st.LastSeq)
	}
	var err error
	switch rec.Type {
	case TypeIngest:
		err = st.applyIngest(rec.Data)
	case TypeFit:
		err = st.applyFit(rec.Data)
	case TypeMergedFit:
		err = st.applyMergedFit(rec.Data)
	case TypeFleet:
		err = st.applyFleet(rec.Data)
	case TypeRound:
		err = st.applyRound(rec.Data)
	case TypeFinished:
		err = st.applyFinished(rec.Data)
	case TypeArchive:
		err = st.applyArchive(rec.Data)
	default:
		err = fmt.Errorf("unknown record type %q", rec.Type)
	}
	if err != nil {
		return fmt.Errorf("store: apply %s record seq %d: %w", rec.Type, rec.Seq, err)
	}
	st.LastSeq = rec.Seq
	return nil
}

func (st *State) applyIngest(data json.RawMessage) error {
	var d ingestData
	if err := json.Unmarshal(data, &d); err != nil {
		return err
	}
	if d.Count < 0 {
		return fmt.Errorf("negative record count %d", d.Count)
	}
	// Validate every delta before applying any: a rejected record must
	// leave the state untouched, never half-merged.
	for price, delta := range d.Deltas {
		if price < 1 {
			return fmt.Errorf("price %d below 1", price)
		}
		if delta.N < 0 || !(delta.Total >= 0) || math.IsInf(delta.Total, 1) {
			return fmt.Errorf("price %d: aggregate delta (%d, %v) is not finite non-negative", price, delta.N, delta.Total)
		}
	}
	for price, delta := range d.Deltas {
		agg := st.Aggs[price]
		agg.Add(delta.N, delta.Total)
		st.Aggs[price] = agg
	}
	st.Records += uint64(d.Count)
	return nil
}

func (st *State) applyFit(data json.RawMessage) error {
	var f FitRecord
	if err := json.Unmarshal(data, &f); err != nil {
		return err
	}
	st.Fit = &f
	return nil
}

func (st *State) applyMergedFit(data json.RawMessage) error {
	var d MergedFitRecord
	if err := json.Unmarshal(data, &d); err != nil {
		return err
	}
	// The guard at publish time admitted only finite, contract-keeping
	// fits; a non-finite parameter here means the record did not come
	// through that path and must not become the served model.
	for _, v := range []float64{d.Fit.Slope, d.Fit.Intercept, d.Fit.R2, d.Fit.SE} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("merged fit parameter %v is not finite", v)
		}
	}
	st.Fit = &d.Fit
	return nil
}

func (st *State) applyFleet(data json.RawMessage) error {
	var f FleetRecord
	if err := json.Unmarshal(data, &f); err != nil {
		return err
	}
	if len(f.IDs) == 0 {
		return fmt.Errorf("fleet with no campaign ids")
	}
	if len(f.Spec) == 0 {
		return fmt.Errorf("fleet with no spec document")
	}
	for _, id := range f.IDs {
		if id == "" {
			return fmt.Errorf("fleet with an empty campaign id")
		}
		if _, dup := st.Campaigns[id]; dup {
			return fmt.Errorf("campaign id %q already exists", id)
		}
	}
	st.Fleets = append(st.Fleets, f)
	fleet := len(st.Fleets) - 1
	for i, id := range f.IDs {
		st.Campaigns[id] = &CampaignState{
			Fleet:      fleet,
			Index:      i,
			Checkpoint: campaign.Checkpoint{Status: campaign.StatusPending},
		}
		if n, ok := campaign.ParseCampaignID(id); ok && n > st.NextID {
			st.NextID = n
		}
	}
	st.Started += uint64(len(f.IDs))
	return nil
}

// settle updates the terminal-transition counters when a checkpoint
// moves a campaign from live to terminal.
func (st *State) settle(cs *CampaignState, chk campaign.Checkpoint) {
	if !cs.Checkpoint.Status.Terminal() && chk.Status.Terminal() {
		st.Finished++
		if chk.Status == campaign.StatusCanceled {
			st.Canceled++
		}
	}
}

func (st *State) applyRound(data json.RawMessage) error {
	var d roundData
	if err := json.Unmarshal(data, &d); err != nil {
		return err
	}
	cs, ok := st.Campaigns[d.ID]
	if !ok {
		return fmt.Errorf("round for unknown campaign %q", d.ID)
	}
	if d.Checkpoint.HistoryCap < 1 {
		return fmt.Errorf("campaign %q: checkpoint history cap %d below 1", d.ID, d.Checkpoint.HistoryCap)
	}
	if cs.Checkpoint.Status.Terminal() {
		return fmt.Errorf("round for already-terminal campaign %q", d.ID)
	}
	st.settle(cs, d.Checkpoint)
	cs.Checkpoint = d.Checkpoint
	cs.Rounds = append(cs.Rounds, d.Snap)
	if over := len(cs.Rounds) - d.Checkpoint.HistoryCap; over > 0 {
		cs.Rounds = append(cs.Rounds[:0], cs.Rounds[over:]...)
	}
	return nil
}

func (st *State) applyFinished(data json.RawMessage) error {
	var d finishedData
	if err := json.Unmarshal(data, &d); err != nil {
		return err
	}
	cs, ok := st.Campaigns[d.ID]
	if !ok {
		return fmt.Errorf("finish for unknown campaign %q", d.ID)
	}
	if !d.Checkpoint.Status.Terminal() {
		return fmt.Errorf("finish for campaign %q with non-terminal status %q", d.ID, d.Checkpoint.Status)
	}
	st.settle(cs, d.Checkpoint)
	cs.Checkpoint = d.Checkpoint
	return nil
}

func (st *State) applyArchive(data json.RawMessage) error {
	var d archiveData
	if err := json.Unmarshal(data, &d); err != nil {
		return err
	}
	cs, ok := st.Campaigns[d.ID]
	if !ok {
		return fmt.Errorf("archive of unknown campaign %q", d.ID)
	}
	if !cs.Checkpoint.Status.Terminal() {
		return fmt.Errorf("archive of non-terminal campaign %q (%s)", d.ID, cs.Checkpoint.Status)
	}
	st.Archived = append(st.Archived, ArchivedCampaign{
		ID: d.ID, Checkpoint: cs.Checkpoint, Rounds: cs.Rounds,
	})
	if over := len(st.Archived) - maxArchived; over > 0 {
		st.Archived = append(st.Archived[:0], st.Archived[over:]...)
	}
	st.EvictedRounds += uint64(cs.Checkpoint.RoundsRun)
	delete(st.Campaigns, d.ID)
	return nil
}

// pruneFleets drops fleet records no live campaign references and remaps
// the survivors' indices — snapshots stay proportional to live state,
// not to how many fleets the process ever started. Called by Compact.
func (st *State) pruneFleets() {
	if len(st.Fleets) == 0 {
		return
	}
	used := make(map[int]bool, len(st.Fleets))
	for _, cs := range st.Campaigns {
		used[cs.Fleet] = true
	}
	remap := make(map[int]int, len(used))
	kept := st.Fleets[:0]
	for i, f := range st.Fleets {
		if used[i] {
			remap[i] = len(kept)
			kept = append(kept, f)
		}
	}
	if len(kept) == len(st.Fleets) {
		return
	}
	st.Fleets = kept
	for _, cs := range st.Campaigns {
		cs.Fleet = remap[cs.Fleet]
	}
}

// clone deep-copies the state via a JSON round-trip (exact for the
// state's finite floats — Go marshals float64 at shortest-round-trip
// precision).
func (st *State) clone() (*State, error) {
	raw, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("store: clone state: %w", err)
	}
	out := NewState()
	if err := json.Unmarshal(raw, out); err != nil {
		return nil, fmt.Errorf("store: clone state: %w", err)
	}
	return out, nil
}
