package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// WAL framing. Each record occupies one frame:
//
//	4 bytes  little-endian uint32: payload length
//	4 bytes  little-endian uint32: CRC-32C (Castagnoli) of the payload
//	n bytes  payload: the JSON-encoded Record envelope
//
// Frames are appended and fsync'd; nothing in a WAL is ever rewritten.
// A crash mid-append leaves at most one torn frame at the very end of
// the file — the reader classifies it (TailError) separately from real
// corruption (CorruptError), because recovery repairs the former by
// truncation and must refuse to proceed past the latter.
const (
	frameHeaderSize = 8
	// maxRecordBytes bounds one payload so a corrupt length prefix can
	// never drive a multi-gigabyte allocation. It comfortably exceeds
	// the largest legal payload (a fleet record embedding a spec body at
	// the serving layer's 32 MiB request cap).
	maxRecordBytes = 48 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is the WAL envelope: a sequence number that increases by
// exactly one per appended record (snapshots pin the last sequence they
// cover, so replay can skip records a snapshot already absorbed), a
// type tag, and the type's JSON payload.
type Record struct {
	Seq  uint64          `json:"seq"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// WAL record types.
const (
	// TypeIngest folds one accepted /v1/ingest batch: per-price
	// aggregate deltas plus the accepted record count.
	TypeIngest = "ingest"
	// TypeFit publishes one trace-inferred rate model. Replay restores
	// the last fit record rather than re-fitting, preserving the
	// "keep the previous fit on a contract violation" semantics.
	TypeFit = "fit"
	// TypeMergedFit publishes one cluster-merged rate model: a fit the
	// cross-node merger computed over the union of every partition's
	// aggregates and pushed through the same guarded publish path as a
	// local fit. Replay restores it exactly like TypeFit, so a recovered
	// (or promoted) node serves the merged model bit-identically.
	TypeMergedFit = "mergedfit"
	// TypeFleet starts a campaign fleet: the verbatim spec document,
	// the assigned campaign ids, and the pinned "fitted" model.
	TypeFleet = "fleet"
	// TypeRound is one completed campaign round: its snapshot plus the
	// campaign's full resumable checkpoint (terminal when the round
	// decided convergence).
	TypeRound = "round"
	// TypeFinished is a campaign terminal status reached between rounds
	// (budget exhaustion, round deadline, cancellation, failure).
	TypeFinished = "finished"
	// TypeArchive moves a finished campaign out of live state into the
	// bounded archive — the manager's retention-eviction export.
	TypeArchive = "archive"
)

// TailError reports a WAL whose final frame is incomplete or torn — the
// expected artifact of a crash mid-append. Offset is the byte position
// of the torn frame; everything before it decoded cleanly. Recovery
// truncates the tail there and continues.
type TailError struct {
	Offset int64
	Cause  string
}

func (e *TailError) Error() string {
	return fmt.Sprintf("store: torn WAL tail at byte %d: %s", e.Offset, e.Cause)
}

// CorruptError reports WAL damage that is not a torn tail: a CRC
// mismatch with further data behind it, an absurd length prefix, an
// undecodable envelope, or a sequence that fails to increase. Recovery
// refuses to proceed past it — partial state must never masquerade as
// recovered state.
type CorruptError struct {
	Offset int64
	Cause  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: corrupt WAL record at byte %d: %s", e.Offset, e.Cause)
}

// EncodeRecordFrame appends rec to buf in the WAL's on-disk framing
// (length + CRC-32C + JSON envelope) and returns the extended buffer.
// It is the wire encoding WAL shipping uses: a follower appends the
// shipped frames verbatim to its replica WAL, so the replica replays
// through the exact same Reader as a local recovery.
func EncodeRecordFrame(buf []byte, rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: encode %s record frame: %w", rec.Type, err)
	}
	if len(payload) > maxRecordBytes {
		return nil, fmt.Errorf("store: record frame %d bytes above the %d cap", len(payload), maxRecordBytes)
	}
	return appendFrame(buf, payload), nil
}

// appendFrame appends one framed payload to buf and returns it.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// Reader decodes framed records sequentially, enforcing the framing
// contract: intact CRCs, decodable envelopes, strictly increasing
// sequence numbers, record types non-empty. It never panics on
// arbitrary input (fuzzed in FuzzWALDecode) and classifies every
// failure as either a torn tail or corruption.
type Reader struct {
	br      *bufio.Reader
	offset  int64 // byte offset of the next frame
	lastSeq uint64
	hasSeq  bool
	err     error
}

// NewReader decodes WAL frames from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReader(r)}
}

// Offset returns the byte offset just past the last fully decoded
// record — the truncation point when Next returned a TailError.
func (d *Reader) Offset() int64 { return d.offset }

// Next returns the next record, io.EOF at a clean end, a *TailError at
// a torn final frame, or a *CorruptError. Errors are sticky.
func (d *Reader) Next() (Record, error) {
	if d.err != nil {
		return Record{}, d.err
	}
	rec, err := d.next()
	if err != nil {
		d.err = err
	}
	return rec, err
}

func (d *Reader) next() (Record, error) {
	var hdr [frameHeaderSize]byte
	n, err := io.ReadFull(d.br, hdr[:])
	if err == io.EOF && n == 0 {
		return Record{}, io.EOF
	}
	if err == io.ErrUnexpectedEOF || err == io.EOF {
		return Record{}, &TailError{Offset: d.offset, Cause: fmt.Sprintf("frame header is %d of %d bytes", n, frameHeaderSize)}
	}
	if err != nil {
		// A real read failure (EIO and kin) is neither a torn tail nor
		// corruption: the durable bytes may be fine. Fail the read so
		// recovery refuses to truncate records it merely could not see.
		return Record{}, fmt.Errorf("store: read WAL frame header: %w", err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
	if length == 0 || length > maxRecordBytes {
		// No writer ever produces an empty or over-cap payload, so the
		// header itself is garbage, not a partially flushed append.
		return Record{}, &CorruptError{Offset: d.offset, Cause: fmt.Sprintf("frame length %d outside (0, %d]", length, maxRecordBytes)}
	}
	payload := make([]byte, length)
	if m, err := io.ReadFull(d.br, payload); err != nil {
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			return Record{}, &TailError{Offset: d.offset, Cause: fmt.Sprintf("frame payload is %d of %d bytes", m, length)}
		}
		return Record{}, fmt.Errorf("store: read WAL frame payload: %w", err)
	}
	if got := crc32.Checksum(payload, crcTable); got != wantCRC {
		if _, err := d.br.Peek(1); err == io.EOF {
			// The final frame: its length hit the disk but part of the
			// payload did not — a torn append, repairable by truncation.
			return Record{}, &TailError{Offset: d.offset, Cause: fmt.Sprintf("final frame CRC mismatch (%08x != %08x)", got, wantCRC)}
		}
		return Record{}, &CorruptError{Offset: d.offset, Cause: fmt.Sprintf("CRC mismatch (%08x != %08x) with records following", got, wantCRC)}
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, &CorruptError{Offset: d.offset, Cause: fmt.Sprintf("envelope: %v", err)}
	}
	if rec.Type == "" {
		return Record{}, &CorruptError{Offset: d.offset, Cause: "envelope has no type"}
	}
	if d.hasSeq && rec.Seq <= d.lastSeq {
		return Record{}, &CorruptError{Offset: d.offset, Cause: fmt.Sprintf("sequence %d does not increase past %d (duplicated or reordered record)", rec.Seq, d.lastSeq)}
	}
	d.lastSeq, d.hasSeq = rec.Seq, true
	d.offset += int64(frameHeaderSize) + int64(length)
	return rec, nil
}

// DecodeAll decodes every record in r. The returned error is nil at a
// clean end, a *TailError when the final frame is torn (the returned
// records are still the valid prefix), a *CorruptError, or — when the
// underlying reader itself fails — that read error verbatim.
func DecodeAll(r io.Reader) ([]Record, error) {
	d := NewReader(r)
	var recs []Record
	for {
		rec, err := d.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}
