package store

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestStoreMergedFitRoundTrip pins the new WAL record type end to end:
// a journaled cluster-merged fit survives reopen (and compaction) as
// the served fit, bit-identically, and the record carries the source
// versions for audit.
func TestStoreMergedFitRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	fit := FitRecord{Slope: 0.0625, Intercept: 0.5, R2: 0.875, SE: 0.03125, N: 12, Prices: 4}
	sources := map[string]uint64{"n0": 7, "n1": 3, "n2": 0}
	if err := st.AppendMergedFit(fit, sources); err != nil {
		t.Fatalf("AppendMergedFit: %v", err)
	}

	// The record on the wire names its sources.
	recs, err := st.TailSince(0)
	if err != nil {
		t.Fatalf("TailSince: %v", err)
	}
	if len(recs) != 1 || recs[0].Type != TypeMergedFit {
		t.Fatalf("tail %+v, want one %s record", recs, TypeMergedFit)
	}
	var rec MergedFitRecord
	if err := json.Unmarshal(recs[0].Data, &rec); err != nil {
		t.Fatalf("decode record: %v", err)
	}
	if rec.Fit != fit || !reflect.DeepEqual(rec.Sources, sources) {
		t.Fatalf("record %+v, want fit %+v sources %v", rec, fit, sources)
	}

	// Crash-reopen replays the record into the served fit.
	st2 := reopen(t, dir)
	state := stateOf(t, st2)
	if state.Fit == nil || *state.Fit != fit {
		t.Fatalf("recovered fit %+v, want %+v", state.Fit, fit)
	}

	// Compaction folds it into the snapshot without loss.
	if err := st2.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st3 := reopen(t, dir)
	state3 := stateOf(t, st3)
	if state3.Fit == nil || *state3.Fit != fit {
		t.Fatalf("post-compaction fit %+v, want %+v", state3.Fit, fit)
	}
}

// TestStateRejectsMalformedMergedFit pins the replay-side validation: a
// merged-fit record that does not decode must fail the apply loudly
// instead of silently serving a broken model.
func TestStateRejectsMalformedMergedFit(t *testing.T) {
	st := NewState()
	err := st.Apply(Record{Seq: 1, Type: TypeMergedFit, Data: json.RawMessage(`{"fit":{"slope":"x"}}`)})
	if err == nil {
		t.Fatal("malformed merged-fit record applied")
	}
	if st.Fit != nil || st.LastSeq != 0 {
		t.Fatalf("failed apply mutated state: fit %+v seq %d", st.Fit, st.LastSeq)
	}
}
