// Package store is the durable state subsystem under the htuned serving
// layer: an append-only, CRC-checked, length-prefixed JSON write-ahead
// log plus periodic compacting snapshots, fsync'd and atomically
// rotated. It persists exactly the state whose loss would force
// re-learning — ingest aggregates, published fits, campaign fleet
// starts, per-round campaign checkpoints and lifecycle events — so a
// serving process can crash (SIGKILL), restart, recover, and resume
// every unfinished campaign bit-identically to an uninterrupted run.
//
// Durability contract: an append returns only after the framed record
// has been written and fsync'd (Options.NoSync relaxes this for tests).
// Concurrent appends group-commit: they batch into one frame-write and
// one shared fsync (Options.GroupCommitWindow tunes or disables the
// batching), which preserves the contract — every batch member waits on
// that fsync — while a busy fleet stops paying one fsync per record.
// Batch frames are written in sequence order, so a crash mid-batch
// recovers a gapless prefix: acknowledged appends are never lost and a
// batch never recovers with holes. Reads through State see only
// durable records — State waits out an in-flight flush, so a reader is
// never shown an append that a crash could still take back.
// Every SnapshotEvery appends — and on the serving layer's
// drain-then-snapshot shutdown — Compact writes the full materialized
// State to snapshot.json.tmp, fsyncs it, atomically renames it over
// snapshot.json, fsyncs the directory, and truncates the WAL; records
// carry monotonic sequence numbers and the snapshot pins the last one
// it absorbed, so a crash anywhere in that dance replays to the same
// state. On open, a torn final WAL record (the expected artifact of a
// crash mid-append) is truncated away; any other corruption fails the
// open loudly — partial state never masquerades as recovered state.
// Inspect (htune -state) reads a directory without modifying it.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"hputune/internal/campaign"
	"hputune/internal/inference"
)

// State directory layout.
const (
	walName     = "wal.log"
	snapName    = "snapshot.json"
	snapTmpName = "snapshot.json.tmp"
)

// WALPath returns the WAL file's path inside a state directory — the
// file a cluster follower appends shipped frames to between SeedDir and
// the Open that promotes the replica.
func WALPath(dir string) string { return filepath.Join(dir, walName) }

// DefaultSnapshotEvery is the auto-compaction cadence in appended
// records when Options.SnapshotEvery is unset.
const DefaultSnapshotEvery = 1024

// ErrClosed rejects operations on a closed store.
var ErrClosed = errors.New("store: closed")

// ErrCompacted reports a TailSince request for records a compaction has
// already absorbed into the snapshot: the WAL tail no longer reaches
// back that far. A follower recovers by refetching the full state
// (State) and resuming from its LastSeq.
var ErrCompacted = errors.New("store: tail compacted past the requested sequence")

// Options configures a store. The zero value is production-safe.
type Options struct {
	// SnapshotEvery compacts (snapshot + WAL truncation) after this many
	// appended records; <= 0 means DefaultSnapshotEvery.
	SnapshotEvery int
	// NoSync skips every fsync — test-only speed; a crash may then lose
	// acknowledged records.
	NoSync bool
	// OnError, when set, observes the store's first write failure. After
	// it the store is read-only (appends and compactions return the
	// sticky error; see Err) while the serving process keeps running in
	// memory — durability degrades, the live loop does not.
	OnError func(error)
	// WrapWAL, when set, wraps the WAL's writer — the fault-injection
	// seam the crash-recovery tests use to tear appends mid-frame.
	WrapWAL func(io.Writer) io.Writer
	// GroupCommitWindow controls how concurrent appends share WAL
	// write+fsync work:
	//
	//	 0 (default): opportunistic group commit. Appends that arrive
	//	   while a flush is in flight coalesce into the next batch and
	//	   share its single write+fsync. A lone append still flushes
	//	   immediately — an idle store adds no latency.
	//	>0: the flush leader additionally lingers this long before
	//	   writing, letting near-simultaneous appends join its batch at
	//	   the price of that much append latency.
	//	<0: group commit disabled; every append writes and fsyncs its
	//	   own frame (the pre-batching reference write path, kept
	//	   in-tree for parity checks).
	//
	// Every mode preserves the durability contract: an Append returns
	// only after its own record's frame is written and fsync'd
	// (NoSync relaxes the fsync as always). Batch members are framed
	// in sequence order, so recovery after a crash mid-batch yields a
	// gapless prefix — acknowledged appends are never lost, and a
	// batch never recovers with holes.
	GroupCommitWindow time.Duration
}

// Store is an open state directory: one WAL being appended plus the
// materialized State it and the last snapshot encode. Safe for
// concurrent use.
type Store struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File
	w       io.Writer
	state   *State
	appends int
	failed  error
	closed  bool
	buf     []byte

	// Replication tail (under mu): the durable records since the last
	// compaction, in sequence order — exactly the records a rebuilt
	// replay of the current WAL would apply on top of the snapshot.
	// tailBase is the sequence the snapshot pins; tail[i] has sequence
	// tailBase+1+i (appends are gapless). Records enter the tail only
	// after their flush settled (never records a crash could take back)
	// and leave it when a compaction absorbs them into the snapshot, so
	// the memory held is bounded by SnapshotEvery records. TailSince
	// serves it to WAL-shipping followers.
	tail     []Record
	tailBase uint64

	// Group-commit state (under mu). pending is the batch accepting new
	// appends; flushing marks a leader mid write+fsync (it releases mu
	// for the disk I/O, so followers queue into the next batch
	// meanwhile); flushDone wakes Close and Compact once the leader is
	// finished.
	pending   *commitBatch
	flushing  bool
	flushDone sync.Cond

	// Write-path counters for Metrics (under mu). walBytes tracks bytes
	// written to the WAL since its last truncation, i.e. roughly the
	// current file size.
	metAppends     uint64
	metFsyncs      uint64
	metCompactions uint64
	walBytes       int64
}

// Open opens or creates a state directory and recovers its state: the
// snapshot (if any) is loaded, the WAL tail replayed, and a torn final
// record truncated away. Structural corruption anywhere else fails the
// open (inspect the directory with htune -state <dir>).
func Open(dir string, opts Options) (*Store, error) {
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// A leftover tmp snapshot is a crash mid-Compact before the atomic
	// rename: never valid state, always safe to discard.
	_ = os.Remove(filepath.Join(dir, snapTmpName))

	state, err := loadSnapshot(filepath.Join(dir, snapName))
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	snapSeq := state.LastSeq
	tail, good, replayErr := replayWAL(f, state)
	if replayErr != nil {
		var tail *TailError
		if !errors.As(replayErr, &tail) {
			f.Close()
			return nil, replayErr
		}
		// Torn tail: repair by truncating to the last intact record.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncate torn WAL tail: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opts: opts, f: f, state: state, tail: tail, tailBase: snapSeq}
	s.w = io.Writer(f)
	if opts.WrapWAL != nil {
		s.w = opts.WrapWAL(f)
	}
	s.flushDone.L = &s.mu
	return s, nil
}

// loadSnapshot reads the snapshot file; a missing file is an empty
// state.
func loadSnapshot(path string) (*State, error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return NewState(), nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	state := NewState()
	if err := json.Unmarshal(raw, state); err != nil {
		return nil, fmt.Errorf("store: snapshot %s: %w (corrupt snapshot; recovery refuses to guess)", path, err)
	}
	return state, nil
}

// replayWAL folds the WAL into state, skipping records the snapshot
// already absorbed (a crash between snapshot rename and WAL truncation
// legitimately leaves them behind). It returns the applied records (the
// recovered replication tail) and the byte offset just past the last
// intact record.
func replayWAL(r io.Reader, state *State) ([]Record, int64, error) {
	d := NewReader(r)
	snapSeq := state.LastSeq
	var tail []Record
	for {
		rec, err := d.Next()
		if err == io.EOF {
			return tail, d.Offset(), nil
		}
		if err != nil {
			return tail, d.Offset(), err
		}
		if rec.Seq <= snapSeq {
			continue // absorbed by the snapshot before the crash
		}
		if err := state.Apply(rec); err != nil {
			return tail, d.Offset(), err
		}
		tail = append(tail, rec)
	}
}

// Dir returns the state directory path.
func (s *Store) Dir() string { return s.dir }

// Err returns the sticky first write failure, or nil while the store is
// healthy.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// State returns a deep copy of the materialized state (recovered plus
// everything appended since), containing only durable records: group
// commit applies a record to the in-memory mirror before its batched
// fsync settles, so State waits out any in-flight flush (like Compact
// does) rather than serve appends that are still unacknowledged and
// could yet fail — a crash must never roll back state a reader was
// shown. The wait is bounded by one flush (GroupCommitWindow plus a
// write+fsync). The one exception is a store already sticky-failed:
// its mirror may be ahead of its disk, which is harmless because the
// failure is surfaced on every append and the mirror is never
// snapshotted.
func (s *Store) State() (*State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.flushing {
		s.flushDone.Wait()
	}
	return s.state.clone()
}

// TailSince returns the durable records with sequence greater than seq,
// in order — the WAL-shipping read a replication follower polls. Like
// State it waits out an in-flight group-commit flush, so it never serves
// a record that a crash could still take back; on a sticky-failed store
// it keeps serving the durable prefix (shipping what did reach the disk
// off a dying node is exactly the failover path). It returns
// ErrCompacted when seq predates the tail's base — a compaction absorbed
// the requested records into the snapshot — in which case the caller
// refetches the full state instead.
func (s *Store) TailSince(seq uint64) ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.flushing {
		s.flushDone.Wait()
	}
	if seq < s.tailBase {
		return nil, ErrCompacted
	}
	start := seq - s.tailBase
	if start >= uint64(len(s.tail)) {
		return nil, nil
	}
	// Copy the slice header range; the records themselves are immutable
	// once appended.
	out := make([]Record, len(s.tail)-int(start))
	copy(out, s.tail[start:])
	return out, nil
}

// SeedDir initializes (or resets) a state directory to hold exactly
// state: the state is written as the directory's snapshot with the same
// tmp-write + fsync + atomic-rename dance Compact uses, and any leftover
// WAL is removed. A follower uses it to seed its replica from a
// primary's full state before shipping WAL records on top; opening the
// directory afterwards recovers a state deep-equal to the one given.
func SeedDir(dir string, state *State, opts Options) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	raw, err := json.Marshal(state)
	if err != nil {
		return fmt.Errorf("store: encode snapshot: %w", err)
	}
	tmp := filepath.Join(dir, snapTmpName)
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if _, err := tf.Write(raw); err != nil {
		tf.Close()
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if !opts.NoSync {
		if err := tf.Sync(); err != nil {
			tf.Close()
			return fmt.Errorf("store: snapshot fsync: %w", err)
		}
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapName)); err != nil {
		return fmt.Errorf("store: snapshot rename: %w", err)
	}
	// A stale WAL under the new snapshot would replay foreign records on
	// top of it; the seeded state must stand alone.
	if err := os.Remove(filepath.Join(dir, walName)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: remove stale WAL: %w", err)
	}
	if !opts.NoSync {
		if err := syncDir(dir); err != nil {
			return err
		}
	}
	return nil
}

// fail records the first write failure; the store is read-only after.
func (s *Store) fail(err error) error {
	if s.failed == nil {
		s.failed = err
		if s.opts.OnError != nil {
			s.opts.OnError(err)
		}
	}
	return s.failed
}

// commitBatch is one group-commit unit: the concatenated frames of
// every append that joined it, flushed with a single write+fsync. done
// closes once the flush settled either way; err is the shared outcome.
type commitBatch struct {
	buf  []byte
	n    int
	done chan struct{}
	err  error
	// recs are the batch's applied records, promoted into the
	// replication tail once the shared fsync settles.
	recs []Record
}

// append frames and applies one record, then commits it: batched with
// concurrent appends into one write+fsync (the group-commit path), or
// alone when GroupCommitWindow < 0. Either way it returns only after
// the record's frame is durable (NoSync relaxes the fsync).
func (s *Store) append(typ string, data any) error {
	raw, err := json.Marshal(data)
	if err != nil {
		return fmt.Errorf("store: encode %s record: %w", typ, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.failed != nil {
		err := s.failed
		s.mu.Unlock()
		return err
	}
	rec := Record{Seq: s.state.LastSeq + 1, Type: typ, Data: raw}
	payload, err := json.Marshal(rec)
	if err != nil {
		s.mu.Unlock()
		return fmt.Errorf("store: encode %s envelope: %w", typ, err)
	}
	// Apply before writing: a record the mirror rejects (a caller bug —
	// say an archive of an unknown id) must never reach the disk, where
	// it would poison every future replay. The inverse divergence — a
	// write failure after a successful apply — leaves the mirror ahead
	// of the disk, which is harmless: the store is sticky read-only from
	// that point, so the mirror is never snapshotted (compaction only
	// runs once every applied record is flushed), and the caller was
	// told the record is not durable.
	if err := s.state.Apply(rec); err != nil {
		s.mu.Unlock()
		return err
	}
	if s.opts.GroupCommitWindow < 0 {
		defer s.mu.Unlock()
		return s.writeOneLocked(rec, payload)
	}

	// Group commit. Enqueue this record's frame on the open batch; the
	// first append to find no flush in flight leads it (and any batches
	// queued behind it), the rest wait for their batch's shared fsync.
	if s.pending == nil {
		s.pending = &commitBatch{done: make(chan struct{})}
	}
	b := s.pending
	b.buf = appendFrame(b.buf, payload)
	b.n++
	b.recs = append(b.recs, rec)
	if s.flushing {
		s.mu.Unlock()
		<-b.done
		return b.err
	}
	s.flushing = true
	if w := s.opts.GroupCommitWindow; w > 0 && !s.opts.NoSync {
		// Linger: give near-simultaneous appends time to join the batch.
		// Pointless without an fsync to amortize, so NoSync skips it.
		s.mu.Unlock()
		time.Sleep(w)
		s.mu.Lock()
	}
	for s.pending != nil && s.failed == nil {
		cur := s.pending
		s.pending = nil
		// The leader flushes without mu — the batched frames are framed
		// and sequenced already, and flushing excludes a second writer —
		// so appends arriving during the disk I/O queue into the next
		// batch instead of blocking on the disk.
		s.mu.Unlock()
		_, werr := s.w.Write(cur.buf)
		var serr error
		if werr == nil && !s.opts.NoSync {
			serr = s.f.Sync()
		}
		s.mu.Lock()
		switch {
		case werr != nil:
			cur.err = s.fail(fmt.Errorf("store: append record: %w", werr))
		case serr != nil:
			cur.err = s.fail(fmt.Errorf("store: fsync WAL: %w", serr))
		default:
			s.walBytes += int64(len(cur.buf))
			if !s.opts.NoSync {
				s.metFsyncs++
			}
			s.metAppends += uint64(cur.n)
			s.appends += cur.n
			// The batch is durable: its records join the replication tail
			// (batches settle in sequence order, so the tail stays gapless).
			s.tail = append(s.tail, cur.recs...)
		}
		close(cur.done)
	}
	// A batch that queued behind a failed flush never reaches the disk;
	// its waiters get the sticky error (leaving them waiting would
	// deadlock them against a permanently read-only store).
	if s.failed != nil && s.pending != nil {
		cur := s.pending
		s.pending = nil
		cur.err = s.failed
		close(cur.done)
	}
	s.flushing = false
	s.flushDone.Broadcast()
	var cerr error
	if s.failed == nil && s.appends >= s.opts.SnapshotEvery {
		// Every applied record is flushed here (the drain loop emptied
		// pending under a continuously held mu), so the snapshot never
		// absorbs a record whose append could still fail.
		if err := s.compactLocked(); err != nil {
			cerr = s.fail(err)
		}
	}
	s.mu.Unlock()
	if b.err != nil {
		return b.err
	}
	return cerr
}

// writeOneLocked is the unbatched reference write path (mu held): frame,
// write and fsync exactly one record.
func (s *Store) writeOneLocked(rec Record, payload []byte) error {
	s.buf = appendFrame(s.buf[:0], payload)
	if _, err := s.w.Write(s.buf); err != nil {
		return s.fail(fmt.Errorf("store: append %s record: %w", rec.Type, err))
	}
	s.walBytes += int64(len(s.buf))
	if !s.opts.NoSync {
		if err := s.f.Sync(); err != nil {
			return s.fail(fmt.Errorf("store: fsync WAL: %w", err))
		}
		s.metFsyncs++
	}
	s.metAppends++
	s.appends++
	s.tail = append(s.tail, rec)
	if s.appends >= s.opts.SnapshotEvery {
		if err := s.compactLocked(); err != nil {
			return s.fail(err)
		}
	}
	return nil
}

// AppendIngest logs one accepted trace batch: per-price aggregate
// deltas plus the accepted record count.
func (s *Store) AppendIngest(deltas map[int]inference.PriceAggregate, count int) error {
	return s.append(TypeIngest, ingestData{Deltas: deltas, Count: count})
}

// AppendFit logs one published trace-inferred fit.
func (s *Store) AppendFit(fit FitRecord) error {
	return s.append(TypeFit, fit)
}

// AppendMergedFit logs one cluster-merged fit publication: a model the
// cross-node merger computed over the union of every partition's
// aggregates, with the per-node aggregate versions it consumed. Replay
// restores it as the served fit exactly like AppendFit's records.
func (s *Store) AppendMergedFit(fit FitRecord, sources map[string]uint64) error {
	return s.append(TypeMergedFit, MergedFitRecord{Fit: fit, Sources: sources})
}

// AppendFleet logs a started campaign fleet: the verbatim spec document
// it was parsed from, the manager-assigned ids in spec order, and the
// pinned "fitted" model (nil when no fit backed the parse).
func (s *Store) AppendFleet(specDoc []byte, ids []string, fitted *FittedModel) error {
	return s.append(TypeFleet, FleetRecord{Spec: json.RawMessage(specDoc), IDs: ids, Fitted: fitted})
}

// AppendRound logs one completed campaign round and the campaign's
// resulting resumable checkpoint.
func (s *Store) AppendRound(id string, snap campaign.RoundSnapshot, chk campaign.Checkpoint) error {
	return s.append(TypeRound, roundData{ID: id, Snap: snap, Checkpoint: chk})
}

// AppendFinished logs a campaign terminal status reached between
// rounds.
func (s *Store) AppendFinished(id string, chk campaign.Checkpoint) error {
	return s.append(TypeFinished, finishedData{ID: id, Checkpoint: chk})
}

// AppendArchive moves a finished campaign into the bounded archive —
// the manager's retention-eviction export (its final checkpoint and
// history are already durable from earlier records).
func (s *Store) AppendArchive(id string) error {
	return s.append(TypeArchive, archiveData{ID: id})
}

// Compact writes a full-state snapshot and truncates the WAL under it,
// so recovery cost stays proportional to activity since the last
// snapshot, not to process lifetime. It runs automatically every
// SnapshotEvery appends; the serving layer also calls it on its
// drain-then-snapshot shutdown.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Wait out an in-flight group-commit flush (the leader holds the WAL
	// file, not mu, during its disk I/O): truncating the WAL under a
	// half-written batch would corrupt it.
	for s.flushing {
		s.flushDone.Wait()
	}
	if s.closed {
		return ErrClosed
	}
	if s.failed != nil {
		return s.failed
	}
	if err := s.compactLocked(); err != nil {
		return s.fail(err)
	}
	return nil
}

func (s *Store) compactLocked() error {
	s.state.pruneFleets()
	raw, err := json.Marshal(s.state)
	if err != nil {
		return fmt.Errorf("store: encode snapshot: %w", err)
	}
	tmp := filepath.Join(s.dir, snapTmpName)
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if _, err := tf.Write(raw); err != nil {
		tf.Close()
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if !s.opts.NoSync {
		if err := tf.Sync(); err != nil {
			tf.Close()
			return fmt.Errorf("store: snapshot fsync: %w", err)
		}
		s.metFsyncs++
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapName)); err != nil {
		return fmt.Errorf("store: snapshot rename: %w", err)
	}
	if !s.opts.NoSync {
		if err := syncDir(s.dir); err != nil {
			return err
		}
	}
	// The snapshot now pins LastSeq; the WAL under it is dead weight. A
	// crash before this truncation is benign — replay skips records at
	// or below the snapshot sequence.
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("store: truncate WAL after snapshot: %w", err)
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.appends = 0
	s.walBytes = 0
	s.metCompactions++
	// The snapshot absorbed every tail record; followers still behind it
	// get ErrCompacted from TailSince and refetch the full state.
	s.tail = nil
	s.tailBase = s.state.LastSeq
	return nil
}

// Metrics is a point-in-time copy of the store's write-path counters,
// shaped for the serving layer's /v1/metrics document. Appends, Fsyncs
// and Compactions are lifetime counters for this open store; WALBytes
// is the bytes written to the WAL since its last truncation (roughly
// the live file size).
type Metrics struct {
	Appends     uint64 `json:"appends"`
	Fsyncs      uint64 `json:"fsyncs"`
	Compactions uint64 `json:"compactions"`
	WALBytes    int64  `json:"walBytes"`
	// LastSeq is the newest applied record sequence (gauge). It is a
	// live reading, not a durability statement: under group commit a
	// record is applied before its batched fsync settles, so LastSeq may
	// run ahead of the durable log by the records of one in-flight flush
	// (use State for a durable-only view; it waits the flush out —
	// monitoring deliberately does not block on the disk).
	LastSeq uint64 `json:"lastSeq"`
	// Failed reports the sticky read-only state after a write failure.
	Failed bool `json:"failed"`
}

// Metrics snapshots the write-path counters.
func (s *Store) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Metrics{
		Appends:     s.metAppends,
		Fsyncs:      s.metFsyncs,
		Compactions: s.metCompactions,
		WALBytes:    s.walBytes,
		LastSeq:     s.state.LastSeq,
		Failed:      s.failed != nil,
	}
}

// syncDir fsyncs a directory so a just-renamed file's directory entry
// is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	return nil
}

// Close closes the WAL file. It does not compact — the serving layer's
// shutdown calls Compact first; skipping that (as the crash tests do)
// just means the next open replays the WAL tail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// A group-commit leader may be mid write+fsync without holding mu;
	// closing the file under it would turn a clean flush into a spurious
	// write failure.
	for s.flushing {
		s.flushDone.Wait()
	}
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Report is Inspect's summary of a state directory.
type Report struct {
	// HasSnapshot and SnapshotSeq describe the snapshot file;
	// SnapshotErr is a decode failure (corruption-class).
	HasSnapshot bool
	SnapshotSeq uint64
	SnapshotErr error
	// WALRecords counts intact WAL records (including any a snapshot
	// already absorbed); WALBytes is the file size; ByType counts the
	// intact records per type.
	WALRecords int
	WALBytes   int64
	ByType     map[string]int
	// TornTail is the torn final record, if any — the expected artifact
	// of a crash mid-append; the next Open truncates it away.
	TornTail *TailError
	// Corrupt is structural damage short of the tail; ApplyErr is a
	// record that decoded but contradicts the state. Either makes the
	// directory unrecoverable as-is.
	Corrupt  *CorruptError
	ApplyErr error
	// State is the state recovery would produce (nil when the snapshot
	// is unreadable).
	State *State
}

// Clean reports whether recovery would accept the directory (a torn
// tail is clean — Open repairs it by truncation).
func (r Report) Clean() bool {
	return r.SnapshotErr == nil && r.Corrupt == nil && r.ApplyErr == nil
}

// Inspect reads a state directory without modifying it and reports its
// integrity and the state recovery would produce — the htune -state
// subcommand's engine.
func Inspect(dir string) (Report, error) {
	rep := Report{ByType: make(map[string]int)}
	if fi, err := os.Stat(dir); err != nil {
		return rep, fmt.Errorf("store: %w", err)
	} else if !fi.IsDir() {
		return rep, fmt.Errorf("store: %s is not a directory", dir)
	}
	snapPath := filepath.Join(dir, snapName)
	state, err := loadSnapshot(snapPath)
	if err != nil {
		rep.SnapshotErr = err
		state = nil
	} else if _, serr := os.Stat(snapPath); serr == nil {
		rep.HasSnapshot = true
		rep.SnapshotSeq = state.LastSeq
	}

	f, err := os.Open(filepath.Join(dir, walName))
	if errors.Is(err, os.ErrNotExist) {
		rep.State = state
		return rep, nil
	}
	if err != nil {
		return rep, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	if fi, err := f.Stat(); err == nil {
		rep.WALBytes = fi.Size()
	}
	d := NewReader(f)
	for {
		rec, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			var tail *TailError
			var corrupt *CorruptError
			switch {
			case errors.As(err, &tail):
				rep.TornTail = tail
			case errors.As(err, &corrupt):
				rep.Corrupt = corrupt
			default:
				// A real read failure: the directory may be fine; the
				// report must not claim anything about it either way.
				return rep, err
			}
			break
		}
		rep.WALRecords++
		rep.ByType[rec.Type]++
		if state != nil && rep.ApplyErr == nil && rec.Seq > state.LastSeq {
			if aerr := state.Apply(rec); aerr != nil {
				rep.ApplyErr = aerr
			}
		}
	}
	rep.State = state
	return rep, nil
}
