// Package textplot renders experiment series as ASCII line charts and
// aligned tables, so every figure of the paper can be regenerated on a
// terminal without plotting dependencies.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of (X, Y) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a renderable chart: a title, axis labels and several series.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// seriesMarks are the glyphs assigned to series in order.
var seriesMarks = []byte{'o', '+', 'x', '*', '#', '@', '%', '&'}

// RenderChart draws the figure as an ASCII chart of the given dimensions
// (sensible minimums are enforced). Points are plotted with per-series
// glyphs; later series overwrite earlier ones on collisions.
func RenderChart(f Figure, width, height int) string {
	if width < 24 {
		width = 24
	}
	if height < 8 {
		height = 8
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range f.Series {
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			any = true
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	if !any {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		for i := range s.X {
			if i >= len(s.Y) || math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			col := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			row := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(height-1)))
			grid[height-1-row][col] = mark
		}
	}
	yTop := fmt.Sprintf("%.3g", maxY)
	yBot := fmt.Sprintf("%.3g", minY)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for r, line := range grid {
		label := strings.Repeat(" ", pad)
		if r == 0 {
			label = fmt.Sprintf("%*s", pad, yTop)
		}
		if r == height-1 {
			label = fmt.Sprintf("%*s", pad, yBot)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*.3g%*.3g\n", strings.Repeat(" ", pad), width/2, minX, width-width/2, maxX)
	fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", pad), f.XLabel, f.YLabel)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "%s   %c %s\n", strings.Repeat(" ", pad), seriesMarks[si%len(seriesMarks)], s.Name)
	}
	return b.String()
}

// RenderTable renders the figure's series as an aligned numeric table with
// one row per shared x value, matching rows by x position within each
// series (series must share the same x grid, as all experiment outputs do).
func RenderTable(f Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	if len(f.Series) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	// Header.
	fmt.Fprintf(&b, "%16s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %14s", s.Name)
	}
	b.WriteByte('\n')
	rows := 0
	for _, s := range f.Series {
		if len(s.X) > rows {
			rows = len(s.X)
		}
	}
	for r := 0; r < rows; r++ {
		x := math.NaN()
		for _, s := range f.Series {
			if r < len(s.X) {
				x = s.X[r]
				break
			}
		}
		fmt.Fprintf(&b, "%16.6g", x)
		for _, s := range f.Series {
			if r < len(s.Y) {
				fmt.Fprintf(&b, " %14.6g", s.Y[r])
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
