package textplot

import (
	"math"
	"strings"
	"testing"
)

func sampleFigure() Figure {
	return Figure{
		ID:     "test-fig",
		Title:  "A test figure",
		XLabel: "budget",
		YLabel: "latency",
		Series: []Series{
			{Name: "opt", X: []float64{1, 2, 3}, Y: []float64{3, 2, 1}},
			{Name: "base", X: []float64{1, 2, 3}, Y: []float64{4, 3.5, 3}},
		},
	}
}

func TestRenderChartContainsStructure(t *testing.T) {
	out := RenderChart(sampleFigure(), 40, 10)
	for _, want := range []string{"test-fig", "A test figure", "opt", "base", "budget", "latency", "o", "+"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "|") || !strings.Contains(out, "+-") {
		t.Error("chart missing frame")
	}
}

func TestRenderChartEmptyFigure(t *testing.T) {
	out := RenderChart(Figure{ID: "empty", Title: "nothing"}, 40, 10)
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty figure should render placeholder:\n%s", out)
	}
}

func TestRenderChartEnforcesMinimumSize(t *testing.T) {
	out := RenderChart(sampleFigure(), 1, 1)
	if len(strings.Split(out, "\n")) < 8 {
		t.Error("minimum height not enforced")
	}
}

func TestRenderChartHandlesNaN(t *testing.T) {
	fig := sampleFigure()
	fig.Series[0].Y[1] = math.NaN()
	out := RenderChart(fig, 40, 10)
	if strings.Contains(out, "NaN") {
		t.Error("NaN leaked into chart body")
	}
}

func TestRenderChartConstantSeries(t *testing.T) {
	fig := Figure{
		ID: "const", Title: "flat",
		Series: []Series{{Name: "s", X: []float64{1, 2}, Y: []float64{5, 5}}},
	}
	out := RenderChart(fig, 30, 8)
	if !strings.Contains(out, "o") {
		t.Errorf("flat series not plotted:\n%s", out)
	}
}

func TestRenderTable(t *testing.T) {
	out := RenderTable(sampleFigure())
	for _, want := range []string{"opt", "base", "budget", "3.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + 3 rows.
	if len(lines) != 5 {
		t.Errorf("table has %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestRenderTableEmpty(t *testing.T) {
	out := RenderTable(Figure{ID: "x", Title: "y"})
	if !strings.Contains(out, "(no data)") {
		t.Error("empty table should render placeholder")
	}
}

func TestRenderTableRaggedSeries(t *testing.T) {
	fig := Figure{
		ID: "ragged", Title: "different lengths",
		Series: []Series{
			{Name: "long", X: []float64{1, 2, 3}, Y: []float64{1, 2, 3}},
			{Name: "short", X: []float64{1}, Y: []float64{9}},
		},
	}
	out := RenderTable(fig)
	if !strings.Contains(out, "-") {
		t.Errorf("missing placeholder for absent values:\n%s", out)
	}
}
