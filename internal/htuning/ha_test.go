package htuning

import (
	"testing"

	"hputune/internal/randx"
)

// scenarioIII builds the paper's Scenario III shape: two groups differing
// in both repetitions and difficulty (λp 2.0 vs 3.0).
func scenarioIII(tasks, budget int) Problem {
	easy := linType("easy", 1, 1, 3.0)
	hard := linType("hard", 1, 1, 2.0)
	return Problem{
		Groups: []Group{
			{Type: hard, Tasks: tasks, Reps: 3},
			{Type: easy, Tasks: tasks, Reps: 5},
		},
		Budget: budget,
	}
}

func TestSolveHeterogeneousBasics(t *testing.T) {
	p := scenarioIII(5, 300)
	res, err := SolveHeterogeneous(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Prices) != 2 {
		t.Fatalf("got %d prices", len(res.Prices))
	}
	if res.Spent > p.Budget {
		t.Errorf("spent %d over budget %d", res.Spent, p.Budget)
	}
	a, err := res.Allocation(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(p); err != nil {
		t.Errorf("allocation invalid: %v", err)
	}
	// Diagnostics must dominate the utopia point.
	if res.O1 < res.Utopia.O1-1e-9 {
		t.Errorf("O1 %v below utopia %v", res.O1, res.Utopia.O1)
	}
	if res.O2 < res.Utopia.O2-1e-9 {
		t.Errorf("O2 %v below utopia %v", res.O2, res.Utopia.O2)
	}
	if res.Closeness < -1e-12 {
		t.Errorf("negative closeness %v", res.Closeness)
	}
}

func TestSolveHeterogeneousNearBruteForce(t *testing.T) {
	// On a small instance the greedy's closeness must be within 5% of the
	// exhaustive optimum (the paper's algorithm is the same greedy).
	easy := linType("easy", 1, 1, 3.0)
	hard := linType("hard", 1, 1, 2.0)
	p := Problem{
		Groups: []Group{
			{Type: hard, Tasks: 2, Reps: 2},
			{Type: easy, Tasks: 2, Reps: 3},
		},
		Budget: 50,
	}
	est := NewEstimator()
	greedy, err := SolveHeterogeneous(est, p)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := EnumerateHeterogeneous(est, p, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Closeness > exact.Closeness*1.05+1e-6 {
		t.Errorf("greedy closeness %.6f far from optimum %.6f (prices %v vs %v)",
			greedy.Closeness, exact.Closeness, greedy.Prices, exact.Prices)
	}
}

func TestSolveHeterogeneousBeatsUniformHeuristic(t *testing.T) {
	// Fig 5(c): OPT beats the equal-payment heuristic on wall-clock
	// latency of the whole job.
	p := scenarioIII(6, 400)
	est := NewEstimator()
	res, err := SolveHeterogeneous(est, p)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := res.Allocation(p)
	if err != nil {
		t.Fatal(err)
	}
	heu, err := UniformTypeAllocation(p)
	if err != nil {
		t.Fatal(err)
	}
	optLat, err := SimulateJobLatency(p, opt, PhaseBoth, 8000, randx.New(3))
	if err != nil {
		t.Fatal(err)
	}
	heuLat, err := SimulateJobLatency(p, heu, PhaseBoth, 8000, randx.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if optLat > heuLat*1.03 {
		t.Errorf("OPT %.4f worse than heuristic %.4f", optLat, heuLat)
	}
}

func TestSolveHeterogeneousFavoursDifficultGroup(t *testing.T) {
	// The hard group (lower λp → longer processing) dominates O2, so HA
	// should not starve it relative to rep-even pricing.
	veryHard := linType("very-hard", 1, 1, 0.5)
	easy := linType("easy", 1, 1, 10.0)
	p := Problem{
		Groups: []Group{
			{Type: veryHard, Tasks: 4, Reps: 3},
			{Type: easy, Tasks: 4, Reps: 3},
		},
		Budget: 200,
	}
	res, err := SolveHeterogeneous(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Prices[0] < res.Prices[1] {
		t.Errorf("hard group priced %d below easy group %d", res.Prices[0], res.Prices[1])
	}
}

func TestSolveHeterogeneousInfeasible(t *testing.T) {
	p := scenarioIII(5, 30) // needs 5*3+5*5 = 40
	if _, err := SolveHeterogeneous(nil, p); err == nil {
		t.Error("infeasible budget accepted")
	}
}

func TestSolveHeterogeneousMonotoneInBudget(t *testing.T) {
	prevO1 := 1e300
	for _, budget := range []int{60, 120, 240, 480} {
		p := scenarioIII(5, budget)
		res, err := SolveHeterogeneous(nil, p)
		if err != nil {
			t.Fatal(err)
		}
		if res.O1 > prevO1+1e-9 {
			t.Errorf("O1 rose with budget %d: %v > %v", budget, res.O1, prevO1)
		}
		prevO1 = res.O1
	}
}

func TestEnumerateHeterogeneousStateCap(t *testing.T) {
	p := scenarioIII(2, 100)
	if _, err := EnumerateHeterogeneous(nil, p, 2); err == nil {
		t.Error("state cap not enforced")
	}
}

func TestUtopiaPointDominatesAllFeasible(t *testing.T) {
	// Any feasible uniform price vector must be dominated by the utopia
	// point component-wise.
	easy := linType("easy", 1, 1, 3.0)
	hard := linType("hard", 1, 1, 2.0)
	p := Problem{
		Groups: []Group{
			{Type: hard, Tasks: 2, Reps: 2},
			{Type: easy, Tasks: 2, Reps: 2},
		},
		Budget: 30,
	}
	est := NewEstimator()
	res, err := SolveHeterogeneous(est, p)
	if err != nil {
		t.Fatal(err)
	}
	for p1 := 1; p1 <= 4; p1++ {
		for p2 := 1; p2 <= 4; p2++ {
			if 4*p1+4*p2 > p.Budget {
				continue
			}
			o1, o2, err := objectives(est, p, []int{p1, p2})
			if err != nil {
				t.Fatal(err)
			}
			if o1 < res.Utopia.O1-1e-6 {
				t.Errorf("feasible O1 %v beats utopia %v at prices (%d,%d)", o1, res.Utopia.O1, p1, p2)
			}
			if o2 < res.Utopia.O2-1e-6 {
				t.Errorf("feasible O2 %v beats utopia %v at prices (%d,%d)", o2, res.Utopia.O2, p1, p2)
			}
		}
	}
}

func TestNormDistances(t *testing.T) {
	cases := []struct {
		norm   Norm
		dx, dy float64
		want   float64
	}{
		{NormL1, 3, 4, 7},
		{NormL1, -3, 4, 7},
		{NormL2, 3, 4, 5},
		{NormL2, -3, -4, 5},
		{NormLInf, 3, 4, 4},
		{NormLInf, -5, 4, 5},
	}
	for _, c := range cases {
		if got := c.norm.distance(c.dx, c.dy); got != c.want {
			t.Errorf("%v.distance(%v, %v) = %v, want %v", c.norm, c.dx, c.dy, got, c.want)
		}
	}
	if NormL1.String() != "L1" || NormL2.String() != "L2" || NormLInf.String() != "Linf" {
		t.Error("norm names wrong")
	}
}

func TestSolveHeterogeneousNormVariants(t *testing.T) {
	// All norms must yield feasible allocations on the same instance;
	// their objective points may differ but each must dominate neither
	// utopia coordinate, and L1 must agree with SolveHeterogeneous.
	p := scenarioIII(20, 600)
	est := NewEstimator()
	l1Default, err := SolveHeterogeneous(est, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, norm := range []Norm{NormL1, NormL2, NormLInf} {
		res, err := SolveHeterogeneousNorm(est, p, norm)
		if err != nil {
			t.Fatalf("%v: %v", norm, err)
		}
		if res.Spent > p.Budget {
			t.Errorf("%v overspent: %d > %d", norm, res.Spent, p.Budget)
		}
		if res.O1 < res.Utopia.O1-1e-9 || res.O2 < res.Utopia.O2-1e-9 {
			t.Errorf("%v objective point (%v, %v) beats utopia (%v, %v)",
				norm, res.O1, res.O2, res.Utopia.O1, res.Utopia.O2)
		}
		if res.Closeness < -1e-12 {
			t.Errorf("%v negative closeness %v", norm, res.Closeness)
		}
		if norm == NormL1 {
			for i := range res.Prices {
				if res.Prices[i] != l1Default.Prices[i] {
					t.Errorf("NormL1 prices %v differ from SolveHeterogeneous %v", res.Prices, l1Default.Prices)
					break
				}
			}
		}
	}
}
