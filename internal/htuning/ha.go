package htuning

import (
	"fmt"
	"math"
	"sync"
)

// UtopiaPoint is the pair of independently optimized objectives of
// Scenario III (Definition 4 of the paper):
//
//	O1* — minimal Σ_i E[Phase-1 latency of group i];
//	O2* — minimal max_i (E[Phase-1 of g_i] + E[Phase-2 of g_i]).
type UtopiaPoint struct {
	O1 float64
	O2 float64
}

// HeterogeneousResult extends RepetitionResult with the bi-objective
// diagnostics of Scenario III.
type HeterogeneousResult struct {
	Prices    []int
	O1        float64     // Σ group Phase-1 latencies at Prices
	O2        float64     // max group total latency at Prices
	Utopia    UtopiaPoint // the independently optimal objectives
	Closeness float64     // ‖(O1,O2) − Utopia‖₁ (Definition 6)
	Spent     int
}

// Allocation materializes the per-group prices into a full allocation.
func (r HeterogeneousResult) Allocation(p Problem) (Allocation, error) {
	return NewUniformAllocation(p, r.Prices)
}

// objectives evaluates (O1, O2) for a uniform price vector.
func objectives(est *Estimator, p Problem, prices []int) (o1, o2 float64, err error) {
	o2 = -math.MaxFloat64
	for i, g := range p.Groups {
		e1, err := est.GroupPhase1Mean(g, prices[i])
		if err != nil {
			return 0, 0, err
		}
		e2, err := est.GroupPhase2Mean(g)
		if err != nil {
			return 0, 0, err
		}
		o1 += e1
		if tot := e1 + e2; tot > o2 {
			o2 = tot
		}
	}
	return o1, o2, nil
}

// minimizeO2 finds the minimal achievable O2 = max_i (E1_i(p_i) + C_i)
// within the budget, by binary searching the target over the candidate
// values and checking feasibility (each group independently buys the
// cheapest price reaching the target; feasible iff the costs fit in B).
func minimizeO2(est *Estimator, p Problem) (float64, error) {
	n := len(p.Groups)
	u := make([]int, n)
	c2 := make([]float64, n)
	maxPrice := make([]int, n)
	minB := p.MinBudget()
	for i, g := range p.Groups {
		u[i] = g.UnitCost()
		v, err := est.GroupPhase2Mean(g)
		if err != nil {
			return 0, err
		}
		c2[i] = v
		maxPrice[i] = (p.Budget - (minB - u[i])) / u[i]
	}
	// cheapestFor returns the cheapest total spend such that every group's
	// E1_i + C_i <= target, or -1 when no affordable price reaches it.
	// E1 is decreasing in price for every shipped rate model, so the
	// cheapest target-reaching price is found by binary search — O(log P)
	// estimator lookups per group against the reference's upward scan's
	// Θ(P) — with the exact comparison the scan used, so both locate the
	// same price (the monotonicity parity tests pin this).
	cheapestFor := func(target float64) (int, error) {
		total := 0
		for i, g := range p.Groups {
			reaches := func(price int) (bool, error) {
				e1, err := est.GroupPhase1Mean(g, price)
				if err != nil {
					return false, err
				}
				return e1+c2[i] <= target+1e-12, nil
			}
			if ok, err := reaches(maxPrice[i]); err != nil {
				return 0, err
			} else if !ok {
				return -1, nil
			}
			lo, hi := 1, maxPrice[i]
			for lo < hi {
				mid := lo + (hi-lo)/2
				ok, err := reaches(mid)
				if err != nil {
					return 0, err
				}
				if ok {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			total += u[i] * lo
		}
		return total, nil
	}
	// Bounds: at max affordable prices O2 is the lowest reachable value;
	// at price 1 everywhere it is the highest.
	lo, hi := 0.0, 0.0
	for i, g := range p.Groups {
		e1max, err := est.GroupPhase1Mean(g, maxPrice[i])
		if err != nil {
			return 0, err
		}
		e1min, err := est.GroupPhase1Mean(g, 1)
		if err != nil {
			return 0, err
		}
		if v := e1max + c2[i]; v > lo {
			lo = v
		}
		if v := e1min + c2[i]; v > hi {
			hi = v
		}
	}
	if hi < lo {
		hi = lo
	}
	// lo is achievable only if all groups can simultaneously afford their
	// max prices — generally not. Binary search the smallest feasible target.
	for iter := 0; iter < 60 && hi-lo > 1e-10*(1+hi); iter++ {
		mid := lo + (hi-lo)/2
		spend, err := cheapestFor(mid)
		if err != nil {
			return 0, err
		}
		if spend >= 0 && spend <= p.Budget {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// Norm selects the distance used by the Closeness. Definition 6 of the
// paper states the general form ‖OP − UP‖ and instantiates it with the
// "first order distance" (L1); the other norms exist for the ablation
// benchmarks of the design choice.
type Norm int

const (
	// NormL1 is the paper's first-order distance |ΔO1| + |ΔO2|.
	NormL1 Norm = iota
	// NormL2 is the Euclidean distance.
	NormL2
	// NormLInf is the Chebyshev distance max(|ΔO1|, |ΔO2|).
	NormLInf
)

// distance evaluates the norm on the two objective gaps.
func (n Norm) distance(dx, dy float64) float64 {
	dx, dy = math.Abs(dx), math.Abs(dy)
	switch n {
	case NormL2:
		return math.Hypot(dx, dy)
	case NormLInf:
		return math.Max(dx, dy)
	default:
		return dx + dy
	}
}

// String implements fmt.Stringer.
func (n Norm) String() string {
	switch n {
	case NormL2:
		return "L2"
	case NormLInf:
		return "Linf"
	default:
		return "L1"
	}
}

// SolveHeterogeneous implements Algorithm 3 (HA) for Scenario III with
// the paper's first-order (L1) Closeness. See SolveHeterogeneousNorm.
func SolveHeterogeneous(est *Estimator, p Problem) (HeterogeneousResult, error) {
	return SolveHeterogeneousNorm(est, p, NormL1)
}

// SolveHeterogeneousNorm implements Algorithm 3 (HA) for Scenario III. It
// computes the Utopia Point (O1*, O2*) — O1* via the exact Scenario II
// dynamic program, O2* via feasibility binary search — then greedily
// spends the budget one price increment at a time, always taking the
// increment that most decreases the Closeness ‖(O1,O2) − UP‖ under the
// chosen norm (Definitions 4–6 of the paper; the paper uses NormL1),
// stopping when no affordable increment improves it.
//
// Candidate scoring is incremental: e1[i] and nextE1[i] hold group i's
// Phase-1 latency at its current price and one unit higher, and only the
// group raised last step has its pair refreshed. A candidate's (O1, O2)
// is then a pure float walk over the arrays — in group order, with the
// reference's exact accumulation — instead of a re-walk of the whole
// price vector through the estimator per candidate per step, which cost
// O(n²) shard-locked cache hits per increment. Bit-identical to
// SolveHeterogeneousNormReference: the parity tests pin it.
func SolveHeterogeneousNorm(est *Estimator, p Problem, norm Norm) (HeterogeneousResult, error) {
	if err := p.Validate(); err != nil {
		return HeterogeneousResult{}, err
	}
	if est == nil {
		est = NewEstimator()
	}
	// The two Utopia-Point objectives are independent optimizations over
	// the same estimator cache; run them on two goroutines (Definition 4
	// fixes each one in isolation, so there is no ordering between them).
	var o1DP RepetitionResult
	var o2Star float64
	var o1Err, o2Err error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		o2Star, o2Err = minimizeO2(est, p)
	}()
	o1DP, o1Err = SolveRepetitionDP(est, p)
	wg.Wait()
	if o1Err != nil {
		return HeterogeneousResult{}, o1Err
	}
	if o2Err != nil {
		return HeterogeneousResult{}, o2Err
	}
	up := UtopiaPoint{O1: o1DP.Objective, O2: o2Star}

	n := len(p.Groups)
	sc := haScratchPool.Get()
	defer haScratchPool.Put(sc)
	prices := intScratch(&sc.prices, n)
	costs := intScratch(&sc.costs, n)
	e1 := floatScratch(&sc.e1, n)
	nextE1 := floatScratch(&sc.nextE1, n)
	c2 := floatScratch(&sc.c2, n)
	spent := 0
	for i, g := range p.Groups {
		prices[i] = 1
		costs[i] = g.UnitCost()
		spent += costs[i]
	}
	// Fill the per-group latency arrays, fanned across workers (on a
	// cold cache each is an independent integral).
	if err := parallelEach(n, candidateWorkers(n), func(i int) error {
		v1, err := est.GroupPhase1Mean(p.Groups[i], prices[i])
		if err != nil {
			return err
		}
		v2, err := est.GroupPhase2Mean(p.Groups[i])
		if err != nil {
			return err
		}
		e1[i], c2[i] = v1, v2
		return nil
	}); err != nil {
		return HeterogeneousResult{}, err
	}
	// score evaluates (closeness, O1, O2) for the current prices with
	// group raised's e1 taken from nextE1 (raised < 0 scores the current
	// vector). The accumulation replicates objectives exactly — O1 via
	// += in group order, O2 via max in group order — so the floats match
	// the reference's bit for bit.
	score := func(raised int) (cl, o1, o2 float64) {
		o2 = -math.MaxFloat64
		for k := 0; k < n; k++ {
			v := e1[k]
			if k == raised {
				v = nextE1[k]
			}
			o1 += v
			if tot := v + c2[k]; tot > o2 {
				o2 = tot
			}
		}
		return norm.distance(o1-up.O1, o2-up.O2), o1, o2
	}
	curCL, curO1, curO2 := score(-1)
	remaining := p.Budget - spent
	// Evaluate the affordable groups' next-price latencies once, also
	// fanned; remaining only decreases, so an unaffordable group's slot
	// is never read.
	if err := parallelEach(n, candidateWorkers(n), func(i int) error {
		if costs[i] > remaining {
			return nil
		}
		v, err := est.GroupPhase1Mean(p.Groups[i], prices[i]+1)
		if err != nil {
			return err
		}
		nextE1[i] = v
		return nil
	}); err != nil {
		return HeterogeneousResult{}, err
	}
	for {
		// Score every affordable one-unit increment and reduce in group
		// order so the tie-breaking matches the reference exactly.
		bestI := -1
		bestCL, bestO1, bestO2 := curCL, curO1, curO2
		any := false
		for i := 0; i < n; i++ {
			if costs[i] > remaining {
				continue
			}
			any = true
			cl, o1, o2 := score(i)
			// Prefer strictly smaller closeness; tie-break on cheaper cost.
			if cl < bestCL-1e-15 || (bestI >= 0 && math.Abs(cl-bestCL) <= 1e-15 && costs[i] < costs[bestI]) {
				bestCL, bestO1, bestO2 = cl, o1, o2
				bestI = i
			}
		}
		if !any || bestI < 0 {
			break
		}
		prices[bestI]++
		remaining -= costs[bestI]
		spent += costs[bestI]
		curCL, curO1, curO2 = bestCL, bestO1, bestO2
		e1[bestI] = nextE1[bestI]
		// Only the raised group's next-price latency changed; refresh it
		// if it can still afford another step.
		if costs[bestI] <= remaining {
			v, err := est.GroupPhase1Mean(p.Groups[bestI], prices[bestI]+1)
			if err != nil {
				return HeterogeneousResult{}, err
			}
			nextE1[bestI] = v
		}
	}
	out := make([]int, n)
	copy(out, prices)
	return HeterogeneousResult{
		Prices:    out,
		O1:        curO1,
		O2:        curO2,
		Utopia:    up,
		Closeness: curCL,
		Spent:     spent,
	}, nil
}

// EnumerateHeterogeneous brute-forces the Scenario III closeness over all
// feasible uniform price vectors, for tests on small instances. The Utopia
// Point is computed the same way as in SolveHeterogeneous so closeness
// values are comparable.
func EnumerateHeterogeneous(est *Estimator, p Problem, maxStates int) (HeterogeneousResult, error) {
	if err := p.Validate(); err != nil {
		return HeterogeneousResult{}, err
	}
	if est == nil {
		est = NewEstimator()
	}
	o1DP, err := SolveRepetitionDP(est, p)
	if err != nil {
		return HeterogeneousResult{}, err
	}
	o2Star, err := minimizeO2(est, p)
	if err != nil {
		return HeterogeneousResult{}, err
	}
	up := UtopiaPoint{O1: o1DP.Objective, O2: o2Star}

	n := len(p.Groups)
	prices := make([]int, n)
	for i := range prices {
		prices[i] = 1
	}
	best := HeterogeneousResult{Closeness: math.MaxFloat64, Utopia: up}
	states := 0
	var rec func(i, spent int) error
	rec = func(i, spent int) error {
		if i == n {
			o1, o2, err := objectives(est, p, prices)
			if err != nil {
				return err
			}
			cl := math.Abs(o1-up.O1) + math.Abs(o2-up.O2)
			if cl < best.Closeness {
				best.Closeness = cl
				best.Prices = append([]int(nil), prices...)
				best.O1, best.O2, best.Spent = o1, o2, spent
			}
			return nil
		}
		g := p.Groups[i]
		u := g.UnitCost()
		restMin := 0
		for j := i + 1; j < n; j++ {
			restMin += p.Groups[j].UnitCost()
		}
		for price := 1; spent+u*price+restMin <= p.Budget; price++ {
			states++
			if states > maxStates {
				return fmt.Errorf("htuning: EnumerateHeterogeneous exceeded %d states", maxStates)
			}
			prices[i] = price
			if err := rec(i+1, spent+u*price); err != nil {
				return err
			}
		}
		prices[i] = 1
		return nil
	}
	if err := rec(0, 0); err != nil {
		return HeterogeneousResult{}, err
	}
	if best.Prices == nil {
		return HeterogeneousResult{}, fmt.Errorf("%w: no feasible allocation", ErrBudgetTooSmall)
	}
	return best, nil
}
