package htuning

import (
	"fmt"
	"strings"
)

// Allocation assigns a payment (in discrete units) to every repetition of
// every task of a problem. Entry [g][t][r] is the price of repetition r of
// task t in group g. Prices are at least 1 unit: a repetition offered for
// nothing is never accepted.
type Allocation struct {
	RepPrices [][][]int
}

// NewUniformAllocation gives every repetition of every task in every group
// the group's price from prices (one entry per group).
//
// Tasks within a group are uniformly priced by construction, so all task
// rows of one group share a single backing slice — one row allocation
// per group instead of one per task. Treat the returned RepPrices as
// read-only: writing through one task's row would silently reprice every
// task of its group. Allocations that need independently mutable rows
// (the baselines, EvenAllocation's remainder spreading) build their own.
func NewUniformAllocation(p Problem, prices []int) (Allocation, error) {
	if len(prices) != len(p.Groups) {
		return Allocation{}, fmt.Errorf("htuning: %d group prices for %d groups", len(prices), len(p.Groups))
	}
	a := Allocation{RepPrices: make([][][]int, len(p.Groups))}
	for gi, g := range p.Groups {
		if prices[gi] < 1 {
			return Allocation{}, fmt.Errorf("htuning: group %d price %d below 1 unit", gi, prices[gi])
		}
		row := make([]int, g.Reps)
		for ri := range row {
			row[ri] = prices[gi]
		}
		a.RepPrices[gi] = make([][]int, g.Tasks)
		for ti := 0; ti < g.Tasks; ti++ {
			a.RepPrices[gi][ti] = row
		}
	}
	return a, nil
}

// Cost returns the total number of payment units the allocation spends.
func (a Allocation) Cost() int {
	total := 0
	for _, g := range a.RepPrices {
		for _, t := range g {
			for _, price := range t {
				total += price
			}
		}
	}
	return total
}

// GroupPrice returns the uniform per-repetition price of group g if the
// group is uniformly priced, and ok=false otherwise.
func (a Allocation) GroupPrice(g int) (price int, ok bool) {
	if g < 0 || g >= len(a.RepPrices) || len(a.RepPrices[g]) == 0 {
		return 0, false
	}
	price = a.RepPrices[g][0][0]
	for _, t := range a.RepPrices[g] {
		for _, p := range t {
			if p != price {
				return 0, false
			}
		}
	}
	return price, true
}

// Validate checks the allocation's shape against p, that every repetition
// receives at least one unit, and that the total spend does not exceed the
// budget.
func (a Allocation) Validate(p Problem) error {
	if len(a.RepPrices) != len(p.Groups) {
		return fmt.Errorf("htuning: allocation covers %d groups, problem has %d", len(a.RepPrices), len(p.Groups))
	}
	for gi, g := range p.Groups {
		if len(a.RepPrices[gi]) != g.Tasks {
			return fmt.Errorf("htuning: group %d: allocation covers %d tasks, group has %d", gi, len(a.RepPrices[gi]), g.Tasks)
		}
		for ti, reps := range a.RepPrices[gi] {
			if len(reps) != g.Reps {
				return fmt.Errorf("htuning: group %d task %d: %d repetition prices, need %d", gi, ti, len(reps), g.Reps)
			}
			for ri, price := range reps {
				if price < 1 {
					return fmt.Errorf("htuning: group %d task %d rep %d priced at %d, need >= 1", gi, ti, ri, price)
				}
			}
		}
	}
	if c := a.Cost(); c > p.Budget {
		return fmt.Errorf("htuning: allocation spends %d, budget is %d", c, p.Budget)
	}
	return nil
}

// String renders a compact summary like "g0: 100×5 reps @3 (+20 reps @4)".
func (a Allocation) String() string {
	var b strings.Builder
	for gi, g := range a.RepPrices {
		if gi > 0 {
			b.WriteString("; ")
		}
		counts := map[int]int{}
		reps := 0
		for _, t := range g {
			for _, p := range t {
				counts[p]++
				reps++
			}
		}
		fmt.Fprintf(&b, "g%d[%d tasks, %d reps]:", gi, len(g), reps)
		if price, ok := a.GroupPrice(gi); ok {
			fmt.Fprintf(&b, " all @%d", price)
			continue
		}
		first := true
		for p := minKey(counts); p <= maxKey(counts); p++ {
			if n, present := counts[p]; present {
				if !first {
					b.WriteString(",")
				}
				fmt.Fprintf(&b, " %d reps @%d", n, p)
				first = false
			}
		}
	}
	return b.String()
}

func minKey(m map[int]int) int {
	first := true
	best := 0
	for k := range m {
		if first || k < best {
			best = k
			first = false
		}
	}
	return best
}

func maxKey(m map[int]int) int {
	first := true
	best := 0
	for k := range m {
		if first || k > best {
			best = k
			first = false
		}
	}
	return best
}
