package htuning

import (
	"math"
	"testing"

	"hputune/internal/numeric"
	"hputune/internal/randx"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestGroupPhase1MeanClosedForm(t *testing.T) {
	// n tasks of 1 repetition: E[max of n Exp(λ)] = H_n/λ.
	typ := linType("t", 2, 1, 3) // λo(c) = 2c+1
	est := NewEstimator()
	for _, n := range []int{1, 3, 10} {
		g := Group{Type: typ, Tasks: n, Reps: 1}
		got, err := est.GroupPhase1Mean(g, 2) // λ = 5
		if err != nil {
			t.Fatal(err)
		}
		want := numeric.Harmonic(n) / 5
		if !almostEqual(got, want, 1e-10) {
			t.Errorf("n=%d: %v, want %v", n, got, want)
		}
	}
}

func TestGroupPhase1MeanSingleTaskErlang(t *testing.T) {
	// One task with k reps: E = k/λ.
	typ := linType("t", 1, 0, 3) // λo(c) = c
	est := NewEstimator()
	g := Group{Type: typ, Tasks: 1, Reps: 4}
	got, err := est.GroupPhase1Mean(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 2, 1e-8) {
		t.Errorf("E = %v, want k/λ = 2", got)
	}
}

func TestGroupPhase1MeanDecreasesWithPrice(t *testing.T) {
	typ := linType("t", 1, 1, 2)
	est := NewEstimator()
	g := Group{Type: typ, Tasks: 7, Reps: 3}
	prev := math.MaxFloat64
	for price := 1; price <= 20; price++ {
		v, err := est.GroupPhase1Mean(g, price)
		if err != nil {
			t.Fatal(err)
		}
		if v >= prev {
			t.Fatalf("E not decreasing at price %d: %v >= %v", price, v, prev)
		}
		prev = v
	}
}

func TestGroupPhase1MeanConvexInPrice(t *testing.T) {
	// Convexity underpins the greedy RA solver; check discrete convexity
	// for all synthetic models.
	for _, typ := range []*TaskType{
		linType("a", 1, 1, 2), linType("b", 10, 1, 2),
		linType("c", 0.1, 10, 2), linType("d", 3, 3, 2),
	} {
		est := NewEstimator()
		g := Group{Type: typ, Tasks: 10, Reps: 4}
		var vals []float64
		for price := 1; price <= 15; price++ {
			v, err := est.GroupPhase1Mean(g, price)
			if err != nil {
				t.Fatal(err)
			}
			vals = append(vals, v)
		}
		for i := 2; i < len(vals); i++ {
			d1 := vals[i-1] - vals[i-2]
			d2 := vals[i] - vals[i-1]
			if d2 < d1-1e-9 {
				t.Errorf("%s: differences not increasing at price %d (%v then %v)", typ.Name, i, d1, d2)
			}
		}
	}
}

func TestGroupPhase2MeanIndependentOfPriceModel(t *testing.T) {
	est := NewEstimator()
	g1 := Group{Type: linType("a", 1, 1, 2.5), Tasks: 6, Reps: 2}
	g2 := Group{Type: linType("b", 99, 7, 2.5), Tasks: 6, Reps: 2}
	v1, err := est.GroupPhase2Mean(g1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := est.GroupPhase2Mean(g2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v1, v2, 1e-12) {
		t.Errorf("phase-2 means differ across price models: %v vs %v", v1, v2)
	}
}

func TestGroupTotalMeanExceedsPhases(t *testing.T) {
	est := NewEstimator()
	g := Group{Type: linType("t", 1, 1, 2), Tasks: 5, Reps: 3}
	p1, err := est.GroupPhase1Mean(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := est.GroupPhase2Mean(g)
	if err != nil {
		t.Fatal(err)
	}
	tot, err := est.GroupTotalMean(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	// max(A+B) >= max(A) and >= max(B); and <= max(A)+max(B).
	if tot < p1 || tot < p2 {
		t.Errorf("total %v below a single phase (%v, %v)", tot, p1, p2)
	}
	if tot > p1+p2+1e-9 {
		t.Errorf("total %v above the sum of phase maxima %v", tot, p1+p2)
	}
}

func TestEstimatorCacheHitsAreConsistent(t *testing.T) {
	est := NewEstimator()
	g := Group{Type: linType("t", 2, 1, 3), Tasks: 8, Reps: 2}
	v1, err := est.GroupPhase1Mean(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := est.GroupPhase1Mean(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Errorf("cache returned different value: %v vs %v", v1, v2)
	}
	// Zero-value estimator must also work (lazy map).
	var zero Estimator
	if _, err := zero.GroupPhase1Mean(g, 4); err != nil {
		t.Errorf("zero-value estimator failed: %v", err)
	}
}

func TestEstimateErrors(t *testing.T) {
	est := NewEstimator()
	g := Group{Type: linType("t", 1, 1, 2), Tasks: 3, Reps: 2}
	if _, err := est.GroupPhase1Mean(g, 0); err == nil {
		t.Error("price 0 accepted")
	}
	bad := Group{Type: linType("t", 1, 1, 2), Tasks: 0, Reps: 2}
	if _, err := est.GroupPhase1Mean(bad, 1); err == nil {
		t.Error("invalid group accepted")
	}
	if _, err := est.SumGroupPhase1([]Group{g}, []int{1, 2}); err == nil {
		t.Error("mismatched prices accepted")
	}
}

func TestSumGroupPhase1(t *testing.T) {
	est := NewEstimator()
	typ := linType("t", 1, 0, 2)
	groups := []Group{
		{Type: typ, Tasks: 1, Reps: 1},
		{Type: typ, Tasks: 1, Reps: 2},
	}
	got, err := est.SumGroupPhase1(groups, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// E1 = 1/1 = 1 (Exp(1)); E2 = 2/2 = 1 (Erlang(2, 2)).
	if !almostEqual(got, 2, 1e-8) {
		t.Errorf("sum = %v, want 2", got)
	}
}

func TestJobExpectedLatencySingleGroupMatchesGroupMean(t *testing.T) {
	est := NewEstimator()
	g := Group{Type: linType("t", 1, 1, 2), Tasks: 6, Reps: 3}
	groups := []Group{g}
	job, err := est.JobExpectedLatency(groups, []int{4}, PhaseOnHold)
	if err != nil {
		t.Fatal(err)
	}
	grp, err := est.GroupPhase1Mean(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(job, grp, 1e-6) {
		t.Errorf("job %v vs group %v", job, grp)
	}
}

func TestJobExpectedLatencyBoundedBySumOfGroups(t *testing.T) {
	// The paper approximates E[max over groups] by Σ group means, an upper
	// bound; the exact value must lie between the largest group mean and
	// the sum.
	est := NewEstimator()
	typ := linType("t", 1, 1, 2)
	groups := []Group{
		{Type: typ, Tasks: 5, Reps: 3},
		{Type: typ, Tasks: 5, Reps: 5},
	}
	prices := []int{3, 4}
	job, err := est.JobExpectedLatency(groups, prices, PhaseOnHold)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	maxGroup := 0.0
	for i, g := range groups {
		v, err := est.GroupPhase1Mean(g, prices[i])
		if err != nil {
			t.Fatal(err)
		}
		sum += v
		if v > maxGroup {
			maxGroup = v
		}
	}
	if job < maxGroup-1e-9 || job > sum+1e-9 {
		t.Errorf("job latency %v outside [max group %v, sum %v]", job, maxGroup, sum)
	}
}

func TestJobExpectedLatencyMatchesMonteCarlo(t *testing.T) {
	est := NewEstimator()
	typ := linType("t", 1, 1, 2.5)
	groups := []Group{
		{Type: typ, Tasks: 4, Reps: 2},
		{Type: typ, Tasks: 3, Reps: 4},
	}
	prices := []int{2, 3}
	p := Problem{Groups: groups, Budget: 1000}
	a, err := NewUniformAllocation(p, prices)
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []Phase{PhaseOnHold, PhaseBoth} {
		analytic, err := est.JobExpectedLatency(groups, prices, phase)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := SimulateJobLatency(p, a, phase, 30000, randx.New(5))
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(analytic, mc, 0.03) {
			t.Errorf("phase %d: analytic %v vs MC %v", phase, analytic, mc)
		}
	}
}

func TestSimulateJobLatencyErrors(t *testing.T) {
	typ := linType("t", 1, 1, 2)
	p := Problem{Groups: []Group{{Type: typ, Tasks: 2, Reps: 2}}, Budget: 8}
	a, _ := NewUniformAllocation(p, []int{2})
	if _, err := SimulateJobLatency(p, a, PhaseBoth, 0, randx.New(1)); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := SimulateJobLatency(p, a, PhaseBoth, 10, nil); err == nil {
		t.Error("nil RNG accepted")
	}
	bad := Allocation{}
	if _, err := SimulateJobLatency(p, bad, PhaseBoth, 10, randx.New(1)); err == nil {
		t.Error("empty allocation accepted")
	}
}

func TestJobExpectedLatencyUnknownPhase(t *testing.T) {
	est := NewEstimator()
	g := Group{Type: linType("t", 1, 1, 2), Tasks: 1, Reps: 1}
	if _, err := est.JobExpectedLatency([]Group{g}, []int{1}, Phase(99)); err == nil {
		t.Error("unknown phase accepted")
	}
}
