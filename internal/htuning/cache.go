package htuning

import (
	"fmt"
	"sync"

	"hputune/internal/randx"
)

// The estimator memo is a bounded, sharded cache with second-chance
// (CLOCK-style) eviction. Long-running processes (the htuned service,
// batch pipelines) share one Estimator across every request, so the
// PR-1 grow-forever map would leak one entry per distinct (kind, rate,
// shape) query for the life of the process; a re-tuned rate model
// changes the rate bits of every key, so an online ingest loop mints
// fresh keys on every fit update. Bounding each shard with an intrusive
// list keeps the worst case at Capacity entries while the hit path
// stays O(1): one shard mutex, one map lookup, one boolean store. The
// original design spliced every hit to the list head for exact LRU;
// under a parallel fleet that made the hot path a pointer-shuffle on
// shared cache lines inside the lock. Hits now only set the entry's
// touched bit — eviction gives touched tails a second chance (rotate to
// front, clear the bit) before dropping a cold one, approximating LRU
// with a read-mostly hit path. 32 shards keep cross-key contention low,
// and a hit's critical section is tens of nanoseconds against integrals
// that cost milliseconds.

// estimatorShards is the number of cache shards. 32 keeps lock
// contention negligible at any realistic GOMAXPROCS while costing only a
// few hundred bytes per idle estimator.
const estimatorShards = 32

// defaultShardCapacity bounds each shard of an Estimator built without an
// explicit capacity: 2048 entries/shard × 32 shards × ~96 B/entry ≈ 6 MB
// worst case — far above any single solve's working set (a few hundred
// keys), so bounded-by-default never evicts mid-solve.
const defaultShardCapacity = 2048

// estEntry is one memoized value on a shard's intrusive recency list.
type estEntry struct {
	key        estimateKey
	val        float64
	touched    bool      // hit since last eviction scan passed it
	prev, next *estEntry // more-recent / less-recent neighbours
}

// estimatorShard is one lock-striped slice of the memo table.
type estimatorShard struct {
	mu         sync.Mutex
	m          map[estimateKey]*estEntry
	head, tail *estEntry // head = most recently inserted, tail = next eviction candidate
	capacity   int       // fixed at first use; entries never exceed it
	hits       uint64
	misses     uint64
	evictions  uint64
}

// CacheStats is a point-in-time snapshot of an Estimator's memo cache,
// summed over all shards. Hits+Misses counts lookups, Evictions counts
// entries dropped to stay within Capacity, Entries is the current size.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// NewEstimatorCapacity returns an estimator whose memo holds at most
// capacity entries in total, split evenly over the shards (at least one
// entry per shard, so the effective minimum is 32; the bound rounds down
// so the total never exceeds capacity when capacity >= 32). Eviction is
// second-chance: entries hit since the last eviction scan are spared
// once, so cold entries go first; evicted values are recomputed on
// demand, so eviction affects speed, never results.
func NewEstimatorCapacity(capacity int) (*Estimator, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("htuning: estimator capacity %d, need >= 1", capacity)
	}
	per := capacity / estimatorShards
	if per < 1 {
		per = 1
	}
	e := &Estimator{}
	for i := range e.shards {
		e.shards[i].capacity = per
	}
	return e, nil
}

// CacheStats sums the per-shard counters. It is safe for concurrent use
// with lookups; the snapshot is per-shard consistent, not globally
// atomic.
func (e *Estimator) CacheStats() CacheStats {
	var st CacheStats
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.Entries += len(s.m)
		st.Capacity += s.shardCapacity()
		s.mu.Unlock()
	}
	return st
}

// shardCapacity resolves the shard's bound, defaulting lazily so the
// zero-value Estimator stays ready to use.
func (s *estimatorShard) shardCapacity() int {
	if s.capacity > 0 {
		return s.capacity
	}
	return defaultShardCapacity
}

// hash mixes every key field through the splitmix64 finalizer so
// nearby keys (consecutive prices, shapes) spread across all shards.
func (k estimateKey) hash() uint64 {
	h := uint64(k.kind)
	h = randx.Mix64(h ^ k.rateBits)
	h = randx.Mix64(h ^ uint64(k.n))
	h = randx.Mix64(h ^ uint64(k.k))
	h = randx.Mix64(h ^ k.procBits)
	return h
}

func (e *Estimator) shard(k estimateKey) *estimatorShard {
	return &e.shards[k.hash()%estimatorShards]
}

// cached looks k up. A hit only marks the entry touched — no list
// splice — so the critical section under a parallel fleet is a map read
// and two stores, not a five-pointer shuffle of shared cache lines.
// Eviction honors the bit in evictLocked.
func (e *Estimator) cached(k estimateKey) (float64, bool) {
	s := e.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	ent, ok := s.m[k]
	if !ok {
		s.misses++
		return 0, false
	}
	s.hits++
	ent.touched = true
	return ent.val, true
}

// store inserts or refreshes k, evicting a cold entry when the shard is
// full. Duplicate concurrent computations of the same key store the
// identical pure-function value, so last-write-wins is benign. Store is
// the miss path — it already paid for an integral — so the list work
// lives here, keeping cached() read-mostly.
func (e *Estimator) store(k estimateKey, v float64) {
	s := e.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if ent, ok := s.m[k]; ok {
		ent.val = v
		ent.touched = true
		return
	}
	if s.m == nil {
		s.m = make(map[estimateKey]*estEntry)
	}
	if len(s.m) >= s.shardCapacity() {
		s.evictLocked()
	}
	ent := &estEntry{key: k, val: v}
	s.pushFront(ent)
	s.m[k] = ent
}

// evictLocked drops one entry using the second-chance sweep: a touched
// tail is rotated to the front with its bit cleared rather than
// evicted, so entries hit since the last sweep survive one pass.
// Each rotation clears a bit, so the loop terminates after at most
// len(m) rotations even when every entry is touched (the first rotated
// entry comes back around with its bit clear).
func (s *estimatorShard) evictLocked() {
	victim := s.tail
	for victim.touched {
		victim.touched = false
		s.unlink(victim)
		s.pushFront(victim)
		victim = s.tail
	}
	s.unlink(victim)
	delete(s.m, victim.key)
	s.evictions++
}

// pushFront links ent as the most recently used entry.
func (s *estimatorShard) pushFront(ent *estEntry) {
	ent.prev = nil
	ent.next = s.head
	if s.head != nil {
		s.head.prev = ent
	}
	s.head = ent
	if s.tail == nil {
		s.tail = ent
	}
}

// unlink removes ent from the recency list.
func (s *estimatorShard) unlink(ent *estEntry) {
	if ent.prev != nil {
		ent.prev.next = ent.next
	} else {
		s.head = ent.next
	}
	if ent.next != nil {
		ent.next.prev = ent.prev
	} else {
		s.tail = ent.prev
	}
	ent.prev, ent.next = nil, nil
}
