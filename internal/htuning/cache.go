package htuning

import (
	"fmt"
	"sync"

	"hputune/internal/randx"
)

// The estimator memo is a bounded, sharded LRU. Long-running processes
// (the htuned service, batch pipelines) share one Estimator across every
// request, so the PR-1 grow-forever map would leak one entry per distinct
// (kind, rate, shape) query for the life of the process; a re-tuned rate
// model changes the rate bits of every key, so an online ingest loop
// mints fresh keys on every fit update. Bounding each shard with an
// intrusive LRU list keeps the worst case at Capacity entries while the
// hit path stays O(1): one shard mutex, one map lookup, one list splice.
// Strict LRU makes hits exclusive where the old unbounded map allowed
// shared RLocks — the deliberate price of exact recency and counters;
// 32 shards keep cross-key contention low, and a hit's critical section
// is tens of nanoseconds against integrals that cost milliseconds.

// estimatorShards is the number of cache shards. 32 keeps lock
// contention negligible at any realistic GOMAXPROCS while costing only a
// few hundred bytes per idle estimator.
const estimatorShards = 32

// defaultShardCapacity bounds each shard of an Estimator built without an
// explicit capacity: 2048 entries/shard × 32 shards × ~96 B/entry ≈ 6 MB
// worst case — far above any single solve's working set (a few hundred
// keys), so bounded-by-default never evicts mid-solve.
const defaultShardCapacity = 2048

// estEntry is one memoized value on a shard's intrusive LRU list.
type estEntry struct {
	key        estimateKey
	val        float64
	prev, next *estEntry // more-recent / less-recent neighbours
}

// estimatorShard is one lock-striped LRU slice of the memo table.
type estimatorShard struct {
	mu         sync.Mutex
	m          map[estimateKey]*estEntry
	head, tail *estEntry // head = most recently used, tail = eviction victim
	capacity   int       // fixed at first use; entries never exceed it
	hits       uint64
	misses     uint64
	evictions  uint64
}

// CacheStats is a point-in-time snapshot of an Estimator's memo cache,
// summed over all shards. Hits+Misses counts lookups, Evictions counts
// entries dropped to stay within Capacity, Entries is the current size.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// NewEstimatorCapacity returns an estimator whose memo holds at most
// capacity entries in total, split evenly over the shards (at least one
// entry per shard, so the effective minimum is 32; the bound rounds down
// so the total never exceeds capacity when capacity >= 32). Least
// recently used entries are evicted first; evicted values are recomputed
// on demand, so eviction affects speed, never results.
func NewEstimatorCapacity(capacity int) (*Estimator, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("htuning: estimator capacity %d, need >= 1", capacity)
	}
	per := capacity / estimatorShards
	if per < 1 {
		per = 1
	}
	e := &Estimator{}
	for i := range e.shards {
		e.shards[i].capacity = per
	}
	return e, nil
}

// CacheStats sums the per-shard counters. It is safe for concurrent use
// with lookups; the snapshot is per-shard consistent, not globally
// atomic.
func (e *Estimator) CacheStats() CacheStats {
	var st CacheStats
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.Entries += len(s.m)
		st.Capacity += s.shardCapacity()
		s.mu.Unlock()
	}
	return st
}

// shardCapacity resolves the shard's bound, defaulting lazily so the
// zero-value Estimator stays ready to use.
func (s *estimatorShard) shardCapacity() int {
	if s.capacity > 0 {
		return s.capacity
	}
	return defaultShardCapacity
}

// hash mixes every key field through the splitmix64 finalizer so
// nearby keys (consecutive prices, shapes) spread across all shards.
func (k estimateKey) hash() uint64 {
	h := uint64(k.kind)
	h = randx.Mix64(h ^ k.rateBits)
	h = randx.Mix64(h ^ uint64(k.n))
	h = randx.Mix64(h ^ uint64(k.k))
	h = randx.Mix64(h ^ k.procBits)
	return h
}

func (e *Estimator) shard(k estimateKey) *estimatorShard {
	return &e.shards[k.hash()%estimatorShards]
}

// cached looks k up, refreshing its recency on a hit.
func (e *Estimator) cached(k estimateKey) (float64, bool) {
	s := e.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	ent, ok := s.m[k]
	if !ok {
		s.misses++
		return 0, false
	}
	s.hits++
	s.moveToFront(ent)
	return ent.val, true
}

// store inserts or refreshes k, evicting the least recently used entry
// when the shard is full. Duplicate concurrent computations of the same
// key store the identical pure-function value, so last-write-wins is
// benign.
func (e *Estimator) store(k estimateKey, v float64) {
	s := e.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if ent, ok := s.m[k]; ok {
		ent.val = v
		s.moveToFront(ent)
		return
	}
	if s.m == nil {
		s.m = make(map[estimateKey]*estEntry)
	}
	if len(s.m) >= s.shardCapacity() {
		victim := s.tail
		s.unlink(victim)
		delete(s.m, victim.key)
		s.evictions++
	}
	ent := &estEntry{key: k, val: v}
	s.pushFront(ent)
	s.m[k] = ent
}

// pushFront links ent as the most recently used entry.
func (s *estimatorShard) pushFront(ent *estEntry) {
	ent.prev = nil
	ent.next = s.head
	if s.head != nil {
		s.head.prev = ent
	}
	s.head = ent
	if s.tail == nil {
		s.tail = ent
	}
}

// unlink removes ent from the recency list.
func (s *estimatorShard) unlink(ent *estEntry) {
	if ent.prev != nil {
		ent.prev.next = ent.next
	} else {
		s.head = ent.next
	}
	if ent.next != nil {
		ent.next.prev = ent.prev
	} else {
		s.tail = ent.prev
	}
	ent.prev, ent.next = nil, nil
}

func (s *estimatorShard) moveToFront(ent *estEntry) {
	if s.head == ent {
		return
	}
	s.unlink(ent)
	s.pushFront(ent)
}
