package htuning

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"hputune/internal/randx"
)

func TestEvenAllocationExactDivision(t *testing.T) {
	typ := linType("t", 1, 1, 2)
	p := Problem{Groups: []Group{{Type: typ, Tasks: 4, Reps: 5}}, Budget: 60}
	a, err := EvenAllocation(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range a.RepPrices[0] {
		for _, price := range task {
			if price != 3 {
				t.Fatalf("price %d, want uniform 3", price)
			}
		}
	}
	if a.Cost() != 60 {
		t.Errorf("Cost = %d, want full budget", a.Cost())
	}
}

func TestEvenAllocationRemainderPlacement(t *testing.T) {
	typ := linType("t", 1, 1, 2)
	// 3 tasks × 2 reps = 6 reps; budget 17 → δ=2, rem=5, γ=1, σ=2.
	p := Problem{Groups: []Group{{Type: typ, Tasks: 3, Reps: 2}}, Budget: 17}
	a, err := EvenAllocation(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost() != 17 {
		t.Fatalf("Cost = %d, want 17 (all budget spent)", a.Cost())
	}
	// Every repetition must be priced δ or δ+1 or δ+2 (γ rep + σ bump).
	for ti, task := range a.RepPrices[0] {
		for ri, price := range task {
			if price < 2 || price > 4 {
				t.Errorf("task %d rep %d price %d outside [2,4]", ti, ri, price)
			}
		}
	}
	// Max spread across repetitions must stay within 2 units (near-even).
	lo, hi := math.MaxInt32, 0
	for _, task := range a.RepPrices[0] {
		for _, price := range task {
			if price < lo {
				lo = price
			}
			if price > hi {
				hi = price
			}
		}
	}
	if hi-lo > 2 {
		t.Errorf("spread %d-%d too wide for even allocation", lo, hi)
	}
}

func TestEvenAllocationBudgetTooSmall(t *testing.T) {
	typ := linType("t", 1, 1, 2)
	p := Problem{Groups: []Group{{Type: typ, Tasks: 4, Reps: 5}}, Budget: 19}
	if _, err := EvenAllocation(p); err == nil {
		t.Fatal("budget below one unit per repetition accepted")
	}
	p.Budget = 20
	if _, err := EvenAllocation(p); err != nil {
		t.Fatalf("minimum budget rejected: %v", err)
	}
}

func TestEvenAllocationRejectsMultiGroup(t *testing.T) {
	typ := linType("t", 1, 1, 2)
	p := Problem{Groups: []Group{
		{Type: typ, Tasks: 1, Reps: 1},
		{Type: typ, Tasks: 1, Reps: 1},
	}, Budget: 10}
	if _, err := EvenAllocation(p); err == nil {
		t.Fatal("multi-group problem accepted by Scenario I solver")
	}
}

func TestEvenAllocationSpendsEntireBudgetProperty(t *testing.T) {
	typ := linType("t", 1, 1, 2)
	prop := func(n8, m8, extra8 uint8) bool {
		n := int(n8%20) + 1
		m := int(m8%6) + 1
		extra := int(extra8 % 100)
		p := Problem{Groups: []Group{{Type: typ, Tasks: n, Reps: m}}, Budget: n*m + extra}
		a, err := EvenAllocation(p)
		if err != nil {
			return false
		}
		if a.Cost() != p.Budget {
			return false
		}
		return a.Validate(p) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestEvenAllocationBeatsBias verifies Theorem 1 empirically: on identical
// tasks under the Linearity Hypothesis the even split yields lower expected
// job latency than any biased split. Uses Monte Carlo with a shared seed
// and a wide margin so the test is stable.
func TestEvenAllocationBeatsBias(t *testing.T) {
	typ := linType("t", 1, 0, 2) // λo = price: maximally price-sensitive
	p := Problem{Groups: []Group{{Type: typ, Tasks: 20, Reps: 5}}, Budget: 500}
	even, err := EvenAllocation(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, alpha := range []float64{0.67, 0.75} {
		bias, err := BiasAllocation(p, alpha, randx.New(1))
		if err != nil {
			t.Fatal(err)
		}
		evenLat, err := SimulateJobLatency(p, even, PhaseOnHold, 4000, randx.New(42))
		if err != nil {
			t.Fatal(err)
		}
		biasLat, err := SimulateJobLatency(p, bias, PhaseOnHold, 4000, randx.New(42))
		if err != nil {
			t.Fatal(err)
		}
		if evenLat >= biasLat {
			t.Errorf("α=%v: even %.4f not better than bias %.4f", alpha, evenLat, biasLat)
		}
	}
}

func TestBiasAllocationAlphaHalfMatchesEvenTotalPerHalf(t *testing.T) {
	typ := linType("t", 1, 1, 2)
	p := Problem{Groups: []Group{{Type: typ, Tasks: 10, Reps: 2}}, Budget: 100}
	a, err := BiasAllocation(p, 0.5, randx.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost() != 100 {
		t.Errorf("Cost = %d, want 100", a.Cost())
	}
	// α = 0.5 must price all repetitions equally (both halves get 50 over
	// 10 reps → 5 each).
	for _, task := range a.RepPrices[0] {
		for _, price := range task {
			if price != 5 {
				t.Errorf("α=0.5 price %d, want 5", price)
			}
		}
	}
}

func TestBiasAllocationErrors(t *testing.T) {
	typ := linType("t", 1, 1, 2)
	p := Problem{Groups: []Group{{Type: typ, Tasks: 4, Reps: 2}}, Budget: 20}
	if _, err := BiasAllocation(p, 0.3, randx.New(1)); err == nil {
		t.Error("α below 0.5 accepted")
	}
	if _, err := BiasAllocation(p, 1.0, randx.New(1)); err == nil {
		t.Error("α = 1 accepted")
	}
	if _, err := BiasAllocation(p, 0.6, nil); err == nil {
		t.Error("nil RNG accepted")
	}
	// α so extreme the poor half cannot pay 1 unit per repetition.
	tight := Problem{Groups: []Group{{Type: typ, Tasks: 4, Reps: 2}}, Budget: 9}
	if _, err := BiasAllocation(tight, 0.9, randx.New(1)); err == nil {
		t.Error("starved half accepted")
	}
	multi := Problem{Groups: []Group{
		{Type: typ, Tasks: 1, Reps: 1}, {Type: typ, Tasks: 1, Reps: 1},
	}, Budget: 10}
	if _, err := BiasAllocation(multi, 0.6, randx.New(1)); err == nil {
		t.Error("multi-group accepted")
	}
}

func TestBiasAllocationSpendsAllAndIsBiased(t *testing.T) {
	typ := linType("t", 1, 1, 2)
	p := Problem{Groups: []Group{{Type: typ, Tasks: 10, Reps: 3}}, Budget: 300}
	a, err := BiasAllocation(p, 0.75, randx.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost() != 300 {
		t.Errorf("Cost = %d, want 300", a.Cost())
	}
	// Task totals must show two distinct levels (the bias).
	totals := map[int]int{}
	for _, task := range a.RepPrices[0] {
		s := 0
		for _, price := range task {
			s += price
		}
		totals[s]++
	}
	if len(totals) < 2 {
		t.Errorf("bias allocation produced uniform task totals: %v", totals)
	}
}

func TestEvenAllocationWrapsSentinel(t *testing.T) {
	typ := linType("t", 1, 1, 2)
	p := Problem{Groups: []Group{{Type: typ, Tasks: 4, Reps: 5}}, Budget: 20}
	p.Budget = 19
	_, err := EvenAllocation(p)
	if err == nil {
		t.Fatal("expected error")
	}
	// Validate fires first (budget below minimum), which is fine — but when
	// it reaches EA's own check it must wrap the sentinel. Build a problem
	// that passes Validate but fails inside EA: impossible by construction,
	// so just confirm the sentinel wrapping path via direct small budget.
	if !errors.Is(err, ErrBudgetTooSmall) {
		// Validate's error is not the sentinel; accept either but verify
		// the EA-specific path separately below.
		t.Logf("validate-path error (acceptable): %v", err)
	}
}
