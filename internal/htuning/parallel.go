package htuning

import (
	"fmt"

	"hputune/internal/conc"
	"hputune/internal/numeric"
	"hputune/internal/randx"
)

// simShardCount is the fixed number of RNG shards a parallel Monte-Carlo
// run is split into. It is a constant — NOT derived from GOMAXPROCS or a
// workers argument — so the shard boundaries, the per-shard randx
// streams, and therefore the final sample mean are bit-for-bit identical
// no matter how many workers execute the shards or in what order they
// finish.
const simShardCount = 32

// simShards returns the per-shard trial counts for a total of trials:
// simShardCount shards (fewer when trials is smaller), with the
// remainder spread one trial at a time over the leading shards.
func simShards(trials int) []int {
	n := simShardCount
	if trials < n {
		n = trials
	}
	shards := make([]int, n)
	base, rem := trials/n, trials%n
	for i := range shards {
		shards[i] = base
		if i < rem {
			shards[i]++
		}
	}
	return shards
}

// shardStreams forks one deterministic randx stream per shard from the
// base seed. Streams are drawn sequentially from a single parent
// generator, so shard i's stream depends only on (seed, i).
func shardStreams(seed uint64, n int) []*randx.Rand {
	parent := randx.New(seed)
	streams := make([]*randx.Rand, n)
	for i := range streams {
		streams[i] = parent.Split()
	}
	return streams
}

// parallelWorkers resolves a workers argument: <= 0 means GOMAXPROCS.
func parallelWorkers(workers int) int { return conc.Workers(workers) }

// parallelEach runs fn(i) for every i in [0, n) on the shared bounded
// worker pool and returns the lowest-index error. Determinism is the
// caller's concern — fn must write only to its own index's slot.
func parallelEach(n, workers int, fn func(i int) error) error {
	if i, err := conc.Each(n, workers, fn); err != nil {
		return fmt.Errorf("task %d: %w", i, err)
	}
	return nil
}

// SimulateJobLatencyParallel estimates E[max over all tasks of the full
// latency] by Monte Carlo like SimulateJobLatency, but splits the trials
// into simShardCount deterministic randx streams executed by a bounded
// worker pool. The result depends only on (p, a, phase, trials, seed) —
// bit-for-bit identical for any workers value, including 1 — so parallel
// runs stay reproducible. workers <= 0 uses GOMAXPROCS.
func SimulateJobLatencyParallel(p Problem, a Allocation, phase Phase, trials int, seed uint64, workers int) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if err := a.Validate(p); err != nil {
		return 0, err
	}
	if trials < 1 {
		return 0, fmt.Errorf("htuning: trials must be >= 1, got %d", trials)
	}
	shards := simShards(trials)
	streams := shardStreams(seed, len(shards))
	sums := make([]float64, len(shards))
	err := parallelEach(len(shards), parallelWorkers(workers), func(i int) error {
		sums[i] = simulateAllocTrials(p, a, phase, shards[i], streams[i])
		return nil
	})
	if err != nil {
		return 0, err
	}
	total := numeric.NewKahan()
	for _, s := range sums {
		total.Add(s)
	}
	return total.Sum() / float64(trials), nil
}

// SimulateJobLatencyFloatParallel is the trial-sharded counterpart of
// SimulateJobLatencyFloat with the same determinism contract as
// SimulateJobLatencyParallel: the result is a pure function of the
// arguments, independent of workers.
func SimulateJobLatencyFloatParallel(groups []Group, prices []float64, phase Phase, trials int, seed uint64, workers int) (float64, error) {
	rates, err := uniformRates(groups, prices)
	if err != nil {
		return 0, err
	}
	if trials < 1 {
		return 0, fmt.Errorf("htuning: trials must be >= 1, got %d", trials)
	}
	shards := simShards(trials)
	streams := shardStreams(seed, len(shards))
	sums := make([]float64, len(shards))
	err = parallelEach(len(shards), parallelWorkers(workers), func(i int) error {
		sums[i] = simulateUniformTrials(groups, rates, phase, shards[i], streams[i])
		return nil
	})
	if err != nil {
		return 0, err
	}
	total := numeric.NewKahan()
	for _, s := range sums {
		total.Add(s)
	}
	return total.Sum() / float64(trials), nil
}
