package htuning

import (
	"math"
	"sync"
)

// This file keeps the straightforward, allocation-heavy solver
// implementations that predate the scratch-buffer/incremental hot-path
// rewrite (see docs/PERFORMANCE.md). They are the certification oracles:
// the optimized SolveRepetition and SolveHeterogeneousNorm must return
// bit-identical results to these on every instance — the parity tests
// pin that contract — and htbench benchmarks them for the ablation
// numbers. They re-evaluate every candidate through the estimator on
// every greedy iteration and allocate fresh slices throughout, which is
// exactly what the optimized paths avoid.

// SolveRepetitionReference is the unoptimized Algorithm 2 (RA)
// implementation: same two greedy rules and exact-latency tie-break as
// SolveRepetition, evaluated the expensive way. Results are bit-identical
// to SolveRepetition by contract.
func SolveRepetitionReference(est *Estimator, p Problem) (RepetitionResult, error) {
	if err := p.Validate(); err != nil {
		return RepetitionResult{}, err
	}
	if est == nil {
		est = NewEstimator()
	}
	var abs, perCost RepetitionResult
	var absErr, perErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		perCost, perErr = solveRepetitionGreedyReference(est, p, true)
	}()
	abs, absErr = solveRepetitionGreedyReference(est, p, false)
	wg.Wait()
	if absErr != nil {
		return RepetitionResult{}, absErr
	}
	if perErr != nil {
		return RepetitionResult{}, perErr
	}
	samePrices := true
	for i := range abs.Prices {
		if abs.Prices[i] != perCost.Prices[i] {
			samePrices = false
			break
		}
	}
	if samePrices {
		return abs, nil
	}
	var absJob, perCostJob float64
	var absJobErr, perJobErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		perCostJob, perJobErr = est.JobExpectedLatency(p.Groups, perCost.Prices, PhaseOnHold)
	}()
	absJob, absJobErr = est.JobExpectedLatency(p.Groups, abs.Prices, PhaseOnHold)
	wg.Wait()
	if absJobErr != nil {
		return RepetitionResult{}, absJobErr
	}
	if perJobErr != nil {
		return RepetitionResult{}, perJobErr
	}
	if perCostJob < absJob {
		return perCost, nil
	}
	return abs, nil
}

// solveRepetitionGreedyReference is one greedy pass, re-evaluating every
// affordable candidate's next-price latency through the estimator on
// every iteration and allocating its working slices per call.
func solveRepetitionGreedyReference(est *Estimator, p Problem, costAware bool) (RepetitionResult, error) {
	n := len(p.Groups)
	prices := make([]int, n)
	costs := make([]int, n)
	spent := 0
	for i, g := range p.Groups {
		prices[i] = 1
		costs[i] = g.UnitCost()
		spent += costs[i]
	}
	current := make([]float64, n)
	if err := parallelEach(n, candidateWorkers(n), func(i int) error {
		v, err := est.GroupPhase1Mean(p.Groups[i], prices[i])
		if err != nil {
			return err
		}
		current[i] = v
		return nil
	}); err != nil {
		return RepetitionResult{}, err
	}
	remaining := p.Budget - spent
	next := make([]float64, n)
	candidates := make([]int, 0, n)
	for {
		candidates = candidates[:0]
		for i := range p.Groups {
			if costs[i] <= remaining {
				candidates = append(candidates, i)
			}
		}
		if len(candidates) == 0 {
			break
		}
		if err := parallelEach(len(candidates), candidateWorkers(len(candidates)), func(ci int) error {
			i := candidates[ci]
			v, err := est.GroupPhase1Mean(p.Groups[i], prices[i]+1)
			if err != nil {
				return err
			}
			next[i] = v
			return nil
		}); err != nil {
			return RepetitionResult{}, err
		}
		bestI := -1
		bestGain := 0.0
		for _, i := range candidates {
			gain := current[i] - next[i]
			if costAware {
				gain /= float64(costs[i])
			}
			if gain > bestGain+1e-15 {
				bestGain = gain
				bestI = i
			}
		}
		if bestI < 0 || bestGain <= 0 {
			break
		}
		prices[bestI]++
		current[bestI] = next[bestI]
		remaining -= costs[bestI]
		spent += costs[bestI]
	}
	obj := 0.0
	for _, v := range current {
		obj += v
	}
	return RepetitionResult{Prices: prices, Objective: obj, Spent: spent}, nil
}

// minimizeO2Reference finds the minimal achievable O2 like minimizeO2,
// but locates each group's cheapest target-reaching price by scanning
// upward from price 1 instead of binary searching — Θ(P) estimator
// lookups per group per feasibility probe against O(log P).
func minimizeO2Reference(est *Estimator, p Problem) (float64, error) {
	n := len(p.Groups)
	u := make([]int, n)
	c2 := make([]float64, n)
	maxPrice := make([]int, n)
	minB := p.MinBudget()
	for i, g := range p.Groups {
		u[i] = g.UnitCost()
		v, err := est.GroupPhase2Mean(g)
		if err != nil {
			return 0, err
		}
		c2[i] = v
		maxPrice[i] = (p.Budget - (minB - u[i])) / u[i]
	}
	cheapestFor := func(target float64) (int, error) {
		total := 0
		for i, g := range p.Groups {
			found := -1
			for price := 1; price <= maxPrice[i]; price++ {
				e1, err := est.GroupPhase1Mean(g, price)
				if err != nil {
					return 0, err
				}
				if e1+c2[i] <= target+1e-12 {
					found = price
					break
				}
			}
			if found < 0 {
				return -1, nil
			}
			total += u[i] * found
		}
		return total, nil
	}
	lo, hi := 0.0, 0.0
	for i, g := range p.Groups {
		e1max, err := est.GroupPhase1Mean(g, maxPrice[i])
		if err != nil {
			return 0, err
		}
		e1min, err := est.GroupPhase1Mean(g, 1)
		if err != nil {
			return 0, err
		}
		if v := e1max + c2[i]; v > lo {
			lo = v
		}
		if v := e1min + c2[i]; v > hi {
			hi = v
		}
	}
	if hi < lo {
		hi = lo
	}
	for iter := 0; iter < 60 && hi-lo > 1e-10*(1+hi); iter++ {
		mid := lo + (hi-lo)/2
		spend, err := cheapestFor(mid)
		if err != nil {
			return 0, err
		}
		if spend >= 0 && spend <= p.Budget {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// SolveHeterogeneousNormReference is the unoptimized Algorithm 3 (HA)
// implementation: every candidate increment is scored by re-walking the
// whole price vector through the estimator (objectives) on a fresh copy.
// Results are bit-identical to SolveHeterogeneousNorm by contract.
func SolveHeterogeneousNormReference(est *Estimator, p Problem, norm Norm) (HeterogeneousResult, error) {
	if err := p.Validate(); err != nil {
		return HeterogeneousResult{}, err
	}
	if est == nil {
		est = NewEstimator()
	}
	var o1DP RepetitionResult
	var o2Star float64
	var o1Err, o2Err error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		o2Star, o2Err = minimizeO2Reference(est, p)
	}()
	o1DP, o1Err = SolveRepetitionDP(est, p)
	wg.Wait()
	if o1Err != nil {
		return HeterogeneousResult{}, o1Err
	}
	if o2Err != nil {
		return HeterogeneousResult{}, o2Err
	}
	up := UtopiaPoint{O1: o1DP.Objective, O2: o2Star}

	n := len(p.Groups)
	prices := make([]int, n)
	costs := make([]int, n)
	spent := 0
	for i, g := range p.Groups {
		prices[i] = 1
		costs[i] = g.UnitCost()
		spent += costs[i]
	}
	closeness := func(prs []int) (float64, float64, float64, error) {
		o1, o2, err := objectives(est, p, prs)
		if err != nil {
			return 0, 0, 0, err
		}
		return norm.distance(o1-up.O1, o2-up.O2), o1, o2, nil
	}
	curCL, curO1, curO2, err := closeness(prices)
	if err != nil {
		return HeterogeneousResult{}, err
	}
	remaining := p.Budget - spent
	type candidate struct{ cl, o1, o2 float64 }
	cands := make([]candidate, n)
	indices := make([]int, 0, n)
	for {
		indices = indices[:0]
		for i := range p.Groups {
			if costs[i] <= remaining {
				indices = append(indices, i)
			}
		}
		if len(indices) == 0 {
			break
		}
		if err := parallelEach(len(indices), candidateWorkers(len(indices)), func(ci int) error {
			i := indices[ci]
			trial := append([]int(nil), prices...)
			trial[i]++
			cl, o1, o2, err := closeness(trial)
			if err != nil {
				return err
			}
			cands[i] = candidate{cl: cl, o1: o1, o2: o2}
			return nil
		}); err != nil {
			return HeterogeneousResult{}, err
		}
		bestI := -1
		bestCL, bestO1, bestO2 := curCL, curO1, curO2
		for _, i := range indices {
			c := cands[i]
			if c.cl < bestCL-1e-15 || (bestI >= 0 && math.Abs(c.cl-bestCL) <= 1e-15 && costs[i] < costs[bestI]) {
				bestCL, bestO1, bestO2 = c.cl, c.o1, c.o2
				bestI = i
			}
		}
		if bestI < 0 {
			break
		}
		prices[bestI]++
		remaining -= costs[bestI]
		spent += costs[bestI]
		curCL, curO1, curO2 = bestCL, bestO1, bestO2
	}
	return HeterogeneousResult{
		Prices:    prices,
		O1:        curO1,
		O2:        curO2,
		Utopia:    up,
		Closeness: curCL,
		Spent:     spent,
	}, nil
}
