package htuning

import (
	"errors"
	"strings"
	"testing"

	"hputune/internal/pricing"
)

// linType returns a task type with λo(c) = k·c + b and processing rate λp.
func linType(name string, k, b, proc float64) *TaskType {
	return &TaskType{Name: name, Accept: pricing.Linear{K: k, B: b}, ProcRate: proc}
}

func TestTaskTypeValidate(t *testing.T) {
	if err := (&TaskType{Name: "x", Accept: pricing.Linear{K: 1, B: 1}, ProcRate: 2}).Validate(); err != nil {
		t.Errorf("valid type rejected: %v", err)
	}
	var nilType *TaskType
	if err := nilType.Validate(); err == nil {
		t.Error("nil type accepted")
	}
	if err := (&TaskType{Name: "x", ProcRate: 2}).Validate(); err == nil {
		t.Error("missing rate model accepted")
	}
	if err := (&TaskType{Name: "x", Accept: pricing.Linear{K: 1, B: 1}, ProcRate: 0}).Validate(); err == nil {
		t.Error("zero processing rate accepted")
	}
}

func TestGroupValidateAndUnitCost(t *testing.T) {
	g := Group{Type: linType("t", 1, 1, 2), Tasks: 10, Reps: 3}
	if err := g.Validate(); err != nil {
		t.Fatalf("valid group rejected: %v", err)
	}
	if g.UnitCost() != 30 {
		t.Errorf("UnitCost = %d, want 30", g.UnitCost())
	}
	if err := (Group{Type: g.Type, Tasks: 0, Reps: 3}).Validate(); err == nil {
		t.Error("zero tasks accepted")
	}
	if err := (Group{Type: g.Type, Tasks: 1, Reps: 0}).Validate(); err == nil {
		t.Error("zero reps accepted")
	}
}

func TestProblemValidate(t *testing.T) {
	typ := linType("t", 1, 1, 2)
	p := Problem{Groups: []Group{{Type: typ, Tasks: 4, Reps: 2}}, Budget: 8}
	if err := p.Validate(); err != nil {
		t.Fatalf("feasible problem rejected: %v", err)
	}
	if p.MinBudget() != 8 {
		t.Errorf("MinBudget = %d, want 8", p.MinBudget())
	}
	if p.TotalTasks() != 4 {
		t.Errorf("TotalTasks = %d, want 4", p.TotalTasks())
	}
	p.Budget = 7
	if err := p.Validate(); err == nil {
		t.Error("infeasible budget accepted")
	}
	if err := (Problem{Budget: 10}).Validate(); err == nil {
		t.Error("empty problem accepted")
	}
}

func TestUniformAllocation(t *testing.T) {
	typ := linType("t", 1, 1, 2)
	p := Problem{Groups: []Group{
		{Type: typ, Tasks: 2, Reps: 3},
		{Type: typ, Tasks: 1, Reps: 2},
	}, Budget: 100}
	a, err := NewUniformAllocation(p, []int{4, 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(p); err != nil {
		t.Fatalf("valid allocation rejected: %v", err)
	}
	if c := a.Cost(); c != 2*3*4+1*2*7 {
		t.Errorf("Cost = %d, want 38", c)
	}
	if price, ok := a.GroupPrice(0); !ok || price != 4 {
		t.Errorf("GroupPrice(0) = %d,%v; want 4,true", price, ok)
	}
	if _, ok := a.GroupPrice(7); ok {
		t.Error("out-of-range group reported uniform")
	}
}

func TestUniformAllocationErrors(t *testing.T) {
	typ := linType("t", 1, 1, 2)
	p := Problem{Groups: []Group{{Type: typ, Tasks: 1, Reps: 1}}, Budget: 10}
	if _, err := NewUniformAllocation(p, []int{1, 2}); err == nil {
		t.Error("wrong price count accepted")
	}
	if _, err := NewUniformAllocation(p, []int{0}); err == nil {
		t.Error("zero price accepted")
	}
}

func TestAllocationValidateCatchesShapeAndBudget(t *testing.T) {
	typ := linType("t", 1, 1, 2)
	p := Problem{Groups: []Group{{Type: typ, Tasks: 2, Reps: 2}}, Budget: 8}
	a, err := NewUniformAllocation(p, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(p); err != nil {
		t.Fatalf("exact-budget allocation rejected: %v", err)
	}
	over, _ := NewUniformAllocation(p, []int{3})
	if err := over.Validate(p); err == nil {
		t.Error("over-budget allocation accepted")
	}
	bad := Allocation{RepPrices: [][][]int{{{1, 1}, {1}}}}
	if err := bad.Validate(p); err == nil {
		t.Error("ragged allocation accepted")
	}
	zero := Allocation{RepPrices: [][][]int{{{1, 1}, {1, 0}}}}
	if err := zero.Validate(p); err == nil {
		t.Error("zero-priced repetition accepted")
	}
}

func TestAllocationString(t *testing.T) {
	typ := linType("t", 1, 1, 2)
	p := Problem{Groups: []Group{{Type: typ, Tasks: 2, Reps: 2}}, Budget: 9}
	a, _ := NewUniformAllocation(p, []int{2})
	if s := a.String(); !strings.Contains(s, "@2") {
		t.Errorf("String() = %q, want uniform summary", s)
	}
	a.RepPrices[0][0][0] = 3 // make it non-uniform
	if s := a.String(); !strings.Contains(s, "@3") || !strings.Contains(s, "@2") {
		t.Errorf("String() = %q, want mixed summary", s)
	}
}

func TestErrBudgetTooSmallWrapping(t *testing.T) {
	typ := linType("t", 1, 1, 2)
	p := Problem{Groups: []Group{{Type: typ, Tasks: 5, Reps: 2}}, Budget: 10}
	// EA demands budget >= tasks*reps; use an unaffordable heuristic to
	// check the sentinel is wrapped.
	p2 := Problem{Groups: []Group{
		{Type: typ, Tasks: 5, Reps: 2},
		{Type: typ, Tasks: 1, Reps: 1},
	}, Budget: 11}
	_, err := UniformTypeAllocation(p2)
	if err == nil {
		t.Fatal("expected budget error")
	}
	if !errors.Is(err, ErrBudgetTooSmall) {
		t.Errorf("error %v does not wrap ErrBudgetTooSmall", err)
	}
	_ = p
}
