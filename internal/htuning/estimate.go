package htuning

import (
	"fmt"
	"math"

	"hputune/internal/dist"
	"hputune/internal/numeric"
	"hputune/internal/randx"
)

// Phase selects which latency phases an estimate covers.
type Phase int

const (
	// PhaseOnHold covers only the on-hold (acceptance) phase, the part the
	// budget controls. Scenarios I and II tune on this phase alone.
	PhaseOnHold Phase = iota
	// PhaseBoth covers on-hold plus processing, the wall-clock latency.
	PhaseBoth
)

// Estimator computes expected latencies for groups and jobs under the HPU
// model, memoizing the expensive E[max of n Erlang] integrals. The zero
// value is ready to use. An Estimator is safe for concurrent use: the
// memo is a bounded LRU sharded by key hash, each shard behind its own
// mutex, so one estimator can back many solver and simulation goroutines
// without serializing them on a single lock. Since every cached value is
// a pure function of its key, duplicate concurrent computations of the
// same key are benign — both goroutines store the identical float64 —
// and eviction only ever costs a recompute, never a different result.
// The zero value (and NewEstimator) caps the cache at 32 shards ×
// defaultShardCapacity entries; NewEstimatorCapacity picks the bound,
// and CacheStats reports hit/miss/eviction counters.
type Estimator struct {
	shards [estimatorShards]estimatorShard
}

// estimateKind distinguishes the three cached expectations.
type estimateKind uint8

const (
	kindPhase1 estimateKind = iota + 1
	kindPhase2
	kindTotal
)

type estimateKey struct {
	kind     estimateKind
	rateBits uint64
	n, k     int
	procBits uint64
}

// NewEstimator returns an empty estimator.
func NewEstimator() *Estimator { return &Estimator{} }

// float64Bits keys the cache on the raw IEEE bits; rates are positive and
// finite, so bit equality is value equality.
func float64Bits(f float64) uint64 { return math.Float64bits(f) }

// GroupPhase1Mean returns E[max over the group's tasks of the on-hold
// latency], where each task's on-hold latency is Erlang(k, λo(price)):
// the expected Phase-1 completion time of group g at the given uniform
// per-repetition price.
func (e *Estimator) GroupPhase1Mean(g Group, price int) (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	if price < 1 {
		return 0, fmt.Errorf("htuning: price %d below 1 unit", price)
	}
	rate := g.Type.Accept.Rate(float64(price))
	if !(rate > 0) {
		return 0, fmt.Errorf("htuning: rate model %q returned non-positive rate %v at price %d", g.Type.Accept.Name(), rate, price)
	}
	key := estimateKey{kind: kindPhase1, rateBits: float64Bits(rate), n: g.Tasks, k: g.Reps}
	if v, ok := e.cached(key); ok {
		return v, nil
	}
	base, err := dist.NewErlang(g.Reps, rate)
	if err != nil {
		return 0, err
	}
	v, err := dist.MeanOfMax(g.Tasks, base)
	if err != nil {
		return 0, err
	}
	e.store(key, v)
	return v, nil
}

// GroupPhase2Mean returns E[max over the group's tasks of the processing
// latency], each task's processing latency being Erlang(k, λp). It does
// not depend on price.
func (e *Estimator) GroupPhase2Mean(g Group) (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	key := estimateKey{kind: kindPhase2, rateBits: float64Bits(g.Type.ProcRate), n: g.Tasks, k: g.Reps}
	if v, ok := e.cached(key); ok {
		return v, nil
	}
	base, err := dist.NewErlang(g.Reps, g.Type.ProcRate)
	if err != nil {
		return 0, err
	}
	v, err := dist.MeanOfMax(g.Tasks, base)
	if err != nil {
		return 0, err
	}
	e.store(key, v)
	return v, nil
}

// GroupTotalMean returns E[max over the group's tasks of on-hold plus
// processing latency], each task distributed TwoPhaseErlang(k, λo(price),
// λp): the expected wall-clock completion of the group alone.
func (e *Estimator) GroupTotalMean(g Group, price int) (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	if price < 1 {
		return 0, fmt.Errorf("htuning: price %d below 1 unit", price)
	}
	rate := g.Type.Accept.Rate(float64(price))
	if !(rate > 0) {
		return 0, fmt.Errorf("htuning: rate model %q returned non-positive rate %v at price %d", g.Type.Accept.Name(), rate, price)
	}
	key := estimateKey{kind: kindTotal, rateBits: float64Bits(rate), n: g.Tasks, k: g.Reps, procBits: float64Bits(g.Type.ProcRate)}
	if v, ok := e.cached(key); ok {
		return v, nil
	}
	base, err := dist.NewTwoPhaseErlang(g.Reps, rate, g.Type.ProcRate)
	if err != nil {
		return 0, err
	}
	v, err := dist.MeanOfMax(g.Tasks, base)
	if err != nil {
		return 0, err
	}
	e.store(key, v)
	return v, nil
}

// SumGroupPhase1 returns Σ_i E[Phase-1 latency of group i] for a uniform
// per-group price vector — the paper's Scenario II surrogate objective
// (an upper bound on, and monotone proxy for, the true E[max]).
func (e *Estimator) SumGroupPhase1(groups []Group, prices []int) (float64, error) {
	if len(groups) != len(prices) {
		return 0, fmt.Errorf("htuning: %d prices for %d groups", len(prices), len(groups))
	}
	sum := numeric.NewKahan()
	for i, g := range groups {
		v, err := e.GroupPhase1Mean(g, prices[i])
		if err != nil {
			return 0, err
		}
		sum.Add(v)
	}
	return sum.Sum(), nil
}

// JobExpectedLatency computes the exact expected completion latency of the
// whole job under a uniform per-group price vector:
//
//	E[max over all tasks] = ∫₀^∞ (1 − Π_i F_i(t)^{n_i}) dt
//
// where F_i is the per-task latency CDF of group i (Erlang for
// PhaseOnHold, TwoPhaseErlang for PhaseBoth). This goes beyond the paper's
// sum-of-group-latencies approximation and is used to score allocation
// strategies fairly in the experiments.
func (e *Estimator) JobExpectedLatency(groups []Group, prices []int, phase Phase) (float64, error) {
	fp := make([]float64, len(prices))
	for i, p := range prices {
		fp[i] = float64(p)
	}
	return e.JobExpectedLatencyFloat(groups, fp, phase)
}

// JobExpectedLatencyFloat is JobExpectedLatency over fractional prices.
// Solvers stay on the discrete payment grid the paper requires ($0.01
// granularity on AMT); fractional prices exist so experiments can score
// idealized baselines (e.g. "half the budget to half the tasks") without
// rounding noise.
func (e *Estimator) JobExpectedLatencyFloat(groups []Group, prices []float64, phase Phase) (float64, error) {
	if len(groups) != len(prices) {
		return 0, fmt.Errorf("htuning: %d prices for %d groups", len(prices), len(groups))
	}
	cdfs := make([]func(float64) float64, len(groups))
	ns := make([]int, len(groups))
	for i, g := range groups {
		if err := g.Validate(); err != nil {
			return 0, err
		}
		if !(prices[i] > 0) {
			return 0, fmt.Errorf("htuning: group %d price %v not positive", i, prices[i])
		}
		rate := g.Type.Accept.Rate(prices[i])
		if !(rate > 0) {
			return 0, fmt.Errorf("htuning: group %d: non-positive rate %v", i, rate)
		}
		var d dist.Distribution
		var err error
		switch phase {
		case PhaseOnHold:
			d, err = dist.NewErlang(g.Reps, rate)
		case PhaseBoth:
			d, err = dist.NewTwoPhaseErlang(g.Reps, rate, g.Type.ProcRate)
		default:
			return 0, fmt.Errorf("htuning: unknown phase %d", phase)
		}
		if err != nil {
			return 0, err
		}
		cdfs[i] = d.CDF
		ns[i] = g.Tasks
	}
	v, err := numeric.IntegrateToInf(func(t float64) float64 {
		prod := 1.0
		for i, cdf := range cdfs {
			f := cdf(t)
			if f == 0 {
				return 1
			}
			prod *= powInt(f, ns[i])
			if prod == 0 {
				return 1
			}
		}
		return 1 - prod
	}, 0, 1e-8)
	if err != nil {
		return v, fmt.Errorf("htuning: job latency integral: %w", err)
	}
	return v, nil
}

// powInt computes x^n for n >= 0 by binary exponentiation.
func powInt(x float64, n int) float64 {
	r := 1.0
	for n > 0 {
		if n&1 == 1 {
			r *= x
		}
		x *= x
		n >>= 1
	}
	return r
}

// SimulateJobLatencyFloat estimates E[max over all tasks] by Monte Carlo
// for uniform per-group prices that may be fractional — the evaluation
// counterpart of JobExpectedLatencyFloat, used where the analytic
// two-phase integral would be too slow.
func SimulateJobLatencyFloat(groups []Group, prices []float64, phase Phase, trials int, r *randx.Rand) (float64, error) {
	rates, err := uniformRates(groups, prices)
	if err != nil {
		return 0, err
	}
	if trials < 1 {
		return 0, fmt.Errorf("htuning: trials must be >= 1, got %d", trials)
	}
	if r == nil {
		return 0, fmt.Errorf("htuning: nil random source")
	}
	return simulateUniformTrials(groups, rates, phase, trials, r) / float64(trials), nil
}

// uniformRates validates a uniform per-group price vector and derives
// each group's on-hold rate — the shared front half of the serial and
// parallel uniform-price simulators.
func uniformRates(groups []Group, prices []float64) ([]float64, error) {
	if len(groups) != len(prices) {
		return nil, fmt.Errorf("htuning: %d prices for %d groups", len(prices), len(groups))
	}
	rates := make([]float64, len(groups))
	for i, g := range groups {
		if err := g.Validate(); err != nil {
			return nil, err
		}
		if !(prices[i] > 0) {
			return nil, fmt.Errorf("htuning: group %d price %v not positive", i, prices[i])
		}
		rates[i] = g.Type.Accept.Rate(prices[i])
		if !(rates[i] > 0) {
			return nil, fmt.Errorf("htuning: group %d: non-positive rate %v", i, rates[i])
		}
	}
	return rates, nil
}

// simulateUniformTrials runs the inner Monte-Carlo loop of
// SimulateJobLatencyFloat for a validated instance and returns the sum
// of per-trial job maxima — the shardable core shared by the serial and
// parallel entry points.
func simulateUniformTrials(groups []Group, rates []float64, phase Phase, trials int, r *randx.Rand) float64 {
	sum := numeric.NewKahan()
	for trial := 0; trial < trials; trial++ {
		jobMax := 0.0
		for gi, g := range groups {
			for ti := 0; ti < g.Tasks; ti++ {
				latency := r.Erlang(g.Reps, rates[gi])
				if phase == PhaseBoth {
					latency += r.Erlang(g.Reps, g.Type.ProcRate)
				}
				if latency > jobMax {
					jobMax = latency
				}
			}
		}
		sum.Add(jobMax)
	}
	return sum.Sum()
}

// SimulateJobLatency estimates E[max over all tasks of the full latency]
// for an arbitrary (possibly non-uniform) allocation by Monte Carlo: each
// task's latency is the sum over its repetitions of Exp(λo(price_rep)) +
// Exp(λp) samples. It returns the sample mean over trials runs.
func SimulateJobLatency(p Problem, a Allocation, phase Phase, trials int, r *randx.Rand) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if err := a.Validate(p); err != nil {
		return 0, err
	}
	if trials < 1 {
		return 0, fmt.Errorf("htuning: trials must be >= 1, got %d", trials)
	}
	if r == nil {
		return 0, fmt.Errorf("htuning: nil random source")
	}
	return simulateAllocTrials(p, a, phase, trials, r) / float64(trials), nil
}

// simulateAllocTrials runs the inner Monte-Carlo loop of
// SimulateJobLatency for a validated instance and returns the sum of
// per-trial job maxima — the shardable core shared by the serial and
// parallel entry points.
func simulateAllocTrials(p Problem, a Allocation, phase Phase, trials int, r *randx.Rand) float64 {
	sum := numeric.NewKahan()
	for trial := 0; trial < trials; trial++ {
		jobMax := 0.0
		for gi, g := range p.Groups {
			for ti := 0; ti < g.Tasks; ti++ {
				latency := 0.0
				for _, price := range a.RepPrices[gi][ti] {
					rate := g.Type.Accept.Rate(float64(price))
					latency += r.Exp(rate)
					if phase == PhaseBoth {
						latency += r.Exp(g.Type.ProcRate)
					}
				}
				if latency > jobMax {
					jobMax = latency
				}
			}
		}
		sum.Add(jobMax)
	}
	return sum.Sum()
}
