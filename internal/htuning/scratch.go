package htuning

import "hputune/internal/conc"

// Scratch buffers for the solver hot paths. One solve used to allocate
// a handful of short-lived slices per greedy pass and per DP table; in a
// campaign loop (hundreds of solves per second) or the htuned service
// that garbage adds up, so each solver borrows a scratch struct from a
// typed free list instead.
//
// Ownership rules (the conc.Pool contract, applied here):
//
//   - a scratch belongs to exactly one solver call, from Get to the
//     deferred Put;
//   - nothing backed by a scratch may outlive the call — every result
//     slice (Prices) is copied into a fresh exact-size allocation before
//     returning;
//   - resize helpers never zero recycled memory, so every element is
//     written before it is read.

// raScratch backs one greedy pass of SolveRepetition.
type raScratch struct {
	prices, costs []int
	current, next []float64
}

var raScratchPool = conc.NewPool(func() *raScratch { return &raScratch{} })

// dpScratch backs one SolveRepetitionDP call: the rolling best/next
// value rows, the per-group price-latency table, and the flat
// back-pointer matrix (n groups × (budget+1) spends).
type dpScratch struct {
	best, next, lat []float64
	choice          []int
}

var dpScratchPool = conc.NewPool(func() *dpScratch { return &dpScratch{} })

// haScratch backs one SolveHeterogeneousNorm call.
type haScratch struct {
	prices, costs  []int
	e1, nextE1, c2 []float64
}

var haScratchPool = conc.NewPool(func() *haScratch { return &haScratch{} })

// intScratch resizes *buf to n elements, reallocating only when the
// recycled capacity is too small. Contents are unspecified.
func intScratch(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// floatScratch is intScratch for float64 slices.
func floatScratch(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}
