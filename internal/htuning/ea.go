package htuning

import "fmt"

// EvenAllocation implements Algorithm 1 (EA) for Scenario I: a single
// group of identical tasks with identical repetitions. The budget is split
// evenly across all repetitions; the indivisible remainder is spread one
// unit at a time, first round-robin over repetitions of every task
// (γ rounds), then over σ distinct tasks, exactly as the paper specifies.
// Theorem 1 proves the even split minimizes the expected Phase-1 latency
// under the Linearity Hypothesis.
//
// The remainder placement uses the first repetitions/tasks in index order;
// tasks are exchangeable, so "random selection" in the paper affects
// nothing observable, and deterministic placement keeps runs reproducible.
func EvenAllocation(p Problem) (Allocation, error) {
	if len(p.Groups) != 1 {
		return Allocation{}, fmt.Errorf("htuning: EvenAllocation handles exactly one group (Scenario I), got %d", len(p.Groups))
	}
	if err := p.Validate(); err != nil {
		return Allocation{}, err
	}
	g := p.Groups[0]
	n, m := g.Tasks, g.Reps
	if p.Budget < n*m {
		return Allocation{}, fmt.Errorf("%w: budget %d < %d repetitions", ErrBudgetTooSmall, p.Budget, n*m)
	}

	delta := p.Budget / (m * n) // base per-repetition payment
	rem := p.Budget % (m * n)   // leftover units
	gamma := rem / n            // whole extra units per task
	sigma := rem % n            // tasks receiving one more unit

	a := Allocation{RepPrices: make([][][]int, 1)}
	a.RepPrices[0] = make([][]int, n)
	for ti := 0; ti < n; ti++ {
		row := make([]int, m)
		for ri := 0; ri < m; ri++ {
			row[ri] = delta
			if ri < gamma {
				row[ri]++ // γ repetitions of every task get one extra unit
			}
		}
		// σ tasks get one further unit, on a repetition not already
		// increased (repetition index γ exists because rem < m·n ⇒ γ < m).
		if ti < sigma {
			row[gamma]++
		}
		a.RepPrices[0][ti] = row
	}
	return a, nil
}
