package htuning

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hputune/internal/pricing"
	"hputune/internal/randx"
)

// randomProblem draws a small Scenario II/III instance with enough
// budget to be feasible. Task counts and repetitions stay small so the
// solvers run in microseconds per check.
func randomProblem(r *randx.Rand, heterogeneous bool) Problem {
	nGroups := 1 + r.Intn(3)
	groups := make([]Group, nGroups)
	for i := range groups {
		proc := 2.0
		k := 1.0
		b := 1.0
		if heterogeneous {
			proc = 0.5 + 3*r.Float64()
			k = 0.2 + 2*r.Float64()
			b = 0.2 + 2*r.Float64()
		}
		groups[i] = Group{
			Type: &TaskType{
				Name:     "t",
				Accept:   pricing.Linear{K: k, B: b},
				ProcRate: proc,
			},
			Tasks: 1 + r.Intn(8),
			Reps:  1 + r.Intn(4),
		}
	}
	p := Problem{Groups: groups}
	p.Budget = p.MinBudget() + r.Intn(200)
	return p
}

// quickCfg pins testing/quick's sampler to a fixed source. Used ONLY by
// the greedy-vs-DP certification below: its 5% margin is an empirical
// band, not an exact invariant, so CI must check a reproducible
// instance set instead of flaking on a rare time-seeded outlier. The
// exact-invariant property tests keep the default time-seeded sampler —
// fresh instances every run are how they earn their keep.
func quickCfg(maxCount int) *quick.Config {
	return &quick.Config{MaxCount: maxCount, Rand: rand.New(rand.NewSource(20170419))}
}

func TestRASolutionInvariantsProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		r := randx.New(seed)
		p := randomProblem(r, false)
		est := NewEstimator()
		res, err := SolveRepetition(est, p)
		if err != nil {
			return false
		}
		// Invariants: spend within budget, prices at least 1, spend
		// consistent with prices, objective equals the re-evaluated sum.
		if res.Spent > p.Budget {
			return false
		}
		spend := 0
		for i, g := range p.Groups {
			if res.Prices[i] < 1 {
				return false
			}
			spend += g.UnitCost() * res.Prices[i]
		}
		if spend != res.Spent {
			return false
		}
		obj, err := est.SumGroupPhase1(p.Groups, res.Prices)
		if err != nil {
			return false
		}
		return almostEqualHT(obj, res.Objective, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestHASolutionInvariantsProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		r := randx.New(seed)
		p := randomProblem(r, true)
		est := NewEstimator()
		res, err := SolveHeterogeneous(est, p)
		if err != nil {
			return false
		}
		if res.Spent > p.Budget {
			return false
		}
		// The achieved point can never dominate the Utopia Point (up to
		// the O2 binary-search tolerance).
		if res.O1 < res.Utopia.O1-1e-9 || res.O2 < res.Utopia.O2-1e-7*(1+res.O2) {
			return false
		}
		// Closeness is consistent with the achieved point under L1. The
		// Utopia O2 comes from a binary search, so the achieved point
		// can sit a search-tolerance below it; compare with magnitudes.
		want := abs(res.O1-res.Utopia.O1) + abs(res.O2-res.Utopia.O2)
		return almostEqualHT(res.Closeness, want, 1e-7)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRAMonotoneInBudgetProperty(t *testing.T) {
	// The exact DP (surrogate optimum) is monotone in budget. The greedy
	// is not guaranteed monotone (its path can flip at affordability
	// boundaries) and selects its candidate by the job's true E[max], so
	// it is certified on that metric: within 5% of the DP allocation's
	// own job E[max] — it frequently beats the DP there, because the
	// surrogate does not reward balance across groups.
	prop := func(seed uint64) bool {
		r := randx.New(seed)
		p := randomProblem(r, false)
		est := NewEstimator()
		p2 := p
		p2.Budget = p.Budget + 1 + r.Intn(100)
		dpLo, err := SolveRepetitionDP(est, p)
		if err != nil {
			return false
		}
		dpHi, err := SolveRepetitionDP(est, p2)
		if err != nil {
			return false
		}
		if dpHi.Objective > dpLo.Objective+1e-9 {
			return false
		}
		for _, prob := range []Problem{p, p2} {
			greedy, err := SolveRepetition(est, prob)
			if err != nil {
				return false
			}
			dp := dpLo
			if prob.Budget == p2.Budget {
				dp = dpHi
			}
			gJob, err := est.JobExpectedLatency(prob.Groups, greedy.Prices, PhaseOnHold)
			if err != nil {
				return false
			}
			dpJob, err := est.JobExpectedLatency(prob.Groups, dp.Prices, PhaseOnHold)
			if err != nil {
				return false
			}
			if gJob > dpJob*1.05+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(25)); err != nil {
		t.Error(err)
	}
}

func TestGroupPhase1MeanMonotoneInPriceProperty(t *testing.T) {
	// More pay never slows a group down under any shipped rate model.
	models := []pricing.RateModel{
		pricing.Linear{K: 1, B: 1},
		pricing.Linear{K: 10, B: 1},
		pricing.Linear{K: 0.1, B: 10},
		pricing.Quadratic{},
		pricing.Logarithmic{},
	}
	est := NewEstimator()
	prop := func(seed uint64) bool {
		r := randx.New(seed)
		g := Group{
			Type: &TaskType{
				Name:     "t",
				Accept:   models[r.Intn(len(models))],
				ProcRate: 2,
			},
			Tasks: 1 + r.Intn(10),
			Reps:  1 + r.Intn(5),
		}
		price := 1 + r.Intn(30)
		lo, err := est.GroupPhase1Mean(g, price)
		if err != nil {
			return false
		}
		hi, err := est.GroupPhase1Mean(g, price+1+r.Intn(10))
		if err != nil {
			return false
		}
		return hi <= lo+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGroupPhase1MeanMonotoneInSizeProperty(t *testing.T) {
	// More tasks or more repetitions never finish sooner.
	est := NewEstimator()
	typ := &TaskType{Name: "t", Accept: pricing.Linear{K: 1, B: 1}, ProcRate: 2}
	prop := func(seed uint64) bool {
		r := randx.New(seed)
		tasks := 1 + r.Intn(10)
		reps := 1 + r.Intn(5)
		price := 1 + r.Intn(10)
		base, err := est.GroupPhase1Mean(Group{Type: typ, Tasks: tasks, Reps: reps}, price)
		if err != nil {
			return false
		}
		moreTasks, err := est.GroupPhase1Mean(Group{Type: typ, Tasks: tasks + 1, Reps: reps}, price)
		if err != nil {
			return false
		}
		moreReps, err := est.GroupPhase1Mean(Group{Type: typ, Tasks: tasks, Reps: reps + 1}, price)
		if err != nil {
			return false
		}
		return moreTasks >= base-1e-9 && moreReps >= base-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestJobLatencyBoundsProperty(t *testing.T) {
	// The exact job E[max] must be at least every group's own E[max]
	// and at most their sum (union bound on expectations of maxima).
	est := NewEstimator()
	prop := func(seed uint64) bool {
		r := randx.New(seed)
		p := randomProblem(r, true)
		prices := make([]int, len(p.Groups))
		for i := range prices {
			prices[i] = 1 + r.Intn(10)
		}
		job, err := est.JobExpectedLatency(p.Groups, prices, PhaseOnHold)
		if err != nil {
			return false
		}
		maxGroup, sum := 0.0, 0.0
		for i, g := range p.Groups {
			v, err := est.GroupPhase1Mean(g, prices[i])
			if err != nil {
				return false
			}
			if v > maxGroup {
				maxGroup = v
			}
			sum += v
		}
		return job >= maxGroup-1e-6 && job <= sum+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestUniformAllocationCostProperty(t *testing.T) {
	// Materializing uniform per-group prices always costs exactly
	// Σ tasks·reps·price.
	prop := func(seed uint64) bool {
		r := randx.New(seed)
		p := randomProblem(r, false)
		prices := make([]int, len(p.Groups))
		want := 0
		for i, g := range p.Groups {
			prices[i] = 1 + r.Intn(5)
			want += g.UnitCost() * prices[i]
		}
		if want > p.Budget {
			return true // infeasible draw; nothing to check
		}
		a, err := NewUniformAllocation(p, prices)
		if err != nil {
			return false
		}
		return a.Cost() == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// almostEqualHT is the local tolerance comparison for property tests.
func almostEqualHT(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol*(1+abs(a)+abs(b))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
