package htuning

import (
	"fmt"
)

// The paper's synthetic evaluation closes with two findings (Sec 5.1):
// the tuning is robust to non-linearity, and it is sensitive to the
// price–rate relationship — "when lambda is sensitive to the change of
// price, the on-hold latency drops sharply with the growing price. Then
// the overall latency is determined by the processing time and it's
// unnecessary to keep on increasing the price." This file turns that
// observation into a queryable diagnostic.

// PricePoint is one step of a marginal-return curve.
type PricePoint struct {
	// Price is the uniform per-repetition price evaluated.
	Price int
	// Latency is the group's expected wall-clock latency at Price.
	Latency float64
	// Marginal is Latency(Price−1) − Latency(Price), the improvement the
	// last price unit bought (0 at the first point).
	Marginal float64
}

// SaturationResult describes where extra payment stops paying for itself.
type SaturationResult struct {
	// Curve is the marginal-return curve from price 1 upward.
	Curve []PricePoint
	// SaturationPrice is the smallest price whose marginal improvement
	// fell below the requested fraction of the group's processing-phase
	// latency, or 0 if the scan ended first.
	SaturationPrice int
	// ProcessingFloor is the group's expected processing latency — the
	// component no payment can reduce, and the natural yardstick for
	// "not worth it anymore".
	ProcessingFloor float64
}

// Saturated reports whether a saturation price was found within the scan.
func (s SaturationResult) Saturated() bool { return s.SaturationPrice > 0 }

// SaturationScan walks the group's expected wall-clock latency over
// uniform prices 1..maxPrice and finds where the marginal improvement of
// one more unit drops below frac × the processing floor (frac of, say,
// 0.01 means "the last unit bought less than 1% of the irreducible
// processing latency"). The curve is returned whole so callers can plot
// diminishing returns; scanning stops early once saturation is found.
func SaturationScan(est *Estimator, g Group, maxPrice int, frac float64) (SaturationResult, error) {
	if err := g.Validate(); err != nil {
		return SaturationResult{}, err
	}
	if est == nil {
		est = NewEstimator()
	}
	if maxPrice < 2 {
		return SaturationResult{}, fmt.Errorf("htuning: saturation scan needs maxPrice >= 2, got %d", maxPrice)
	}
	if !(frac > 0) {
		return SaturationResult{}, fmt.Errorf("htuning: saturation fraction must be positive, got %v", frac)
	}
	floor, err := est.GroupPhase2Mean(g)
	if err != nil {
		return SaturationResult{}, err
	}
	res := SaturationResult{ProcessingFloor: floor}
	threshold := frac * floor
	prev := 0.0
	for price := 1; price <= maxPrice; price++ {
		lat, err := est.GroupTotalMean(g, price)
		if err != nil {
			return SaturationResult{}, err
		}
		pt := PricePoint{Price: price, Latency: lat}
		if price > 1 {
			pt.Marginal = prev - lat
			if pt.Marginal < threshold {
				res.Curve = append(res.Curve, pt)
				res.SaturationPrice = price
				return res, nil
			}
		}
		res.Curve = append(res.Curve, pt)
		prev = lat
	}
	return res, nil
}

// EffectiveBudget returns the smallest budget at which the job's tuned
// expected latency is within (1+slack) of its latency at maxBudget — the
// point past which the paper's finding says further spending is wasted.
// The solver used is EA for single-group problems and RA otherwise; the
// search is a linear walk over the budget grid with the given step.
func EffectiveBudget(est *Estimator, p Problem, maxBudget, step int, slack float64) (int, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if est == nil {
		est = NewEstimator()
	}
	if maxBudget < p.Budget {
		return 0, fmt.Errorf("htuning: maxBudget %d below problem budget %d", maxBudget, p.Budget)
	}
	if step < 1 {
		return 0, fmt.Errorf("htuning: step must be >= 1, got %d", step)
	}
	if !(slack > 0) {
		return 0, fmt.Errorf("htuning: slack must be positive, got %v", slack)
	}
	tuned := func(budget int) (float64, error) {
		q := Problem{Groups: p.Groups, Budget: budget}
		res, err := SolveRepetition(est, q)
		if err != nil {
			return 0, err
		}
		return est.JobExpectedLatency(q.Groups, res.Prices, PhaseBoth)
	}
	target, err := tuned(maxBudget)
	if err != nil {
		return 0, err
	}
	for budget := p.MinBudget(); budget <= maxBudget; budget += step {
		lat, err := tuned(budget)
		if err != nil {
			return 0, err
		}
		if lat <= target*(1+slack) {
			return budget, nil
		}
	}
	return maxBudget, nil
}
