package htuning

import (
	"fmt"
	"math"

	"hputune/internal/dist"
	"hputune/internal/numeric"
)

// JobLatencyCDF returns P(job completes by t) under a uniform per-group
// price vector: Π_i F_i(t)^{n_i}, the product the paper derives for
// parallel batches (Sec 3.2.1). Useful for SLA statements that the
// expectation alone cannot make.
func (e *Estimator) JobLatencyCDF(groups []Group, prices []int, phase Phase, t float64) (float64, error) {
	if len(groups) != len(prices) {
		return 0, fmt.Errorf("htuning: %d prices for %d groups", len(prices), len(groups))
	}
	if t <= 0 {
		return 0, nil
	}
	prod := 1.0
	for i, g := range groups {
		if err := g.Validate(); err != nil {
			return 0, err
		}
		if prices[i] < 1 {
			return 0, fmt.Errorf("htuning: group %d price %d below 1 unit", i, prices[i])
		}
		rate := g.Type.Accept.Rate(float64(prices[i]))
		if !(rate > 0) {
			return 0, fmt.Errorf("htuning: group %d: non-positive rate %v", i, rate)
		}
		var d dist.Distribution
		var err error
		switch phase {
		case PhaseOnHold:
			d, err = dist.NewErlang(g.Reps, rate)
		case PhaseBoth:
			d, err = dist.NewTwoPhaseErlang(g.Reps, rate, g.Type.ProcRate)
		default:
			return 0, fmt.Errorf("htuning: unknown phase %d", phase)
		}
		if err != nil {
			return 0, err
		}
		prod *= powInt(d.CDF(t), g.Tasks)
		if prod == 0 {
			return 0, nil
		}
	}
	return prod, nil
}

// JobLatencyQuantile returns the time t such that the job completes by t
// with probability q (0 < q < 1), found by bracketed bisection on the job
// CDF.
func (e *Estimator) JobLatencyQuantile(groups []Group, prices []int, phase Phase, q float64) (float64, error) {
	if !(q > 0 && q < 1) {
		return 0, fmt.Errorf("htuning: quantile %v outside (0, 1)", q)
	}
	// Bracket: expand hi until the CDF exceeds q.
	mean, err := e.JobExpectedLatency(groups, prices, phase)
	if err != nil {
		return 0, err
	}
	hi := math.Max(mean, 1e-6)
	for i := 0; i < 64; i++ {
		c, err := e.JobLatencyCDF(groups, prices, phase, hi)
		if err != nil {
			return 0, err
		}
		if c >= q {
			break
		}
		hi *= 2
	}
	root, err := numeric.Bisect(func(t float64) float64 {
		c, cerr := e.JobLatencyCDF(groups, prices, phase, t)
		if cerr != nil {
			return math.NaN()
		}
		return c - q
	}, 0, hi, 1e-9*hi)
	if err != nil {
		return 0, fmt.Errorf("htuning: quantile bisection: %w", err)
	}
	return root, nil
}

// DeadlineResult is the outcome of the dual tuning problem: the smallest
// budget whose optimally tuned allocation meets a latency target.
type DeadlineResult struct {
	Budget  int
	Prices  []int
	Latency float64 // expected job latency at Budget
}

// SolveMinBudgetForDeadline solves the inverse of the H-Tuning problem
// (the paper's related work [29] calls it "minimizing the completion cost
// given deadlines"): find the smallest budget B such that the tuned
// allocation's expected job latency is at most deadline. Monotonicity of
// the tuned latency in budget makes exponential-then-binary search exact.
// The searched budget is capped at maxBudget to keep the search finite
// when the deadline is unachievable (e.g. below the processing floor).
func SolveMinBudgetForDeadline(est *Estimator, groups []Group, deadline float64, phase Phase, maxBudget int) (DeadlineResult, error) {
	if est == nil {
		est = NewEstimator()
	}
	if !(deadline > 0) {
		return DeadlineResult{}, fmt.Errorf("htuning: deadline %v must be positive", deadline)
	}
	minB := 0
	for _, g := range groups {
		if err := g.Validate(); err != nil {
			return DeadlineResult{}, err
		}
		minB += g.UnitCost()
	}
	if maxBudget < minB {
		return DeadlineResult{}, fmt.Errorf("htuning: max budget %d below minimum %d", maxBudget, minB)
	}
	tunedLatency := func(budget int) (float64, []int, error) {
		p := Problem{Groups: groups, Budget: budget}
		res, err := SolveRepetition(est, p)
		if err != nil {
			return 0, nil, err
		}
		lat, err := est.JobExpectedLatency(groups, res.Prices, phase)
		if err != nil {
			return 0, nil, err
		}
		return lat, res.Prices, nil
	}
	// Check achievability at the cap first.
	latAtMax, pricesAtMax, err := tunedLatency(maxBudget)
	if err != nil {
		return DeadlineResult{}, err
	}
	if latAtMax > deadline {
		return DeadlineResult{}, fmt.Errorf("htuning: deadline %v unachievable within budget %d (best %v)", deadline, maxBudget, latAtMax)
	}
	// Binary search the smallest feasible budget in [minB, maxBudget].
	lo, hi := minB, maxBudget
	bestPrices := pricesAtMax
	bestLat := latAtMax
	for lo < hi {
		mid := lo + (hi-lo)/2
		lat, prices, err := tunedLatency(mid)
		if err != nil {
			return DeadlineResult{}, err
		}
		if lat <= deadline {
			hi = mid
			bestPrices = prices
			bestLat = lat
		} else {
			lo = mid + 1
		}
	}
	return DeadlineResult{Budget: hi, Prices: bestPrices, Latency: bestLat}, nil
}

// ContinuousResult is the solution of the continuous relaxation of
// Scenario II (payments not restricted to the discrete grid).
type ContinuousResult struct {
	Prices    []float64
	Objective float64
}

// SolveRepetitionContinuous solves the continuous relaxation of the
// Scenario II objective by golden-section search on the budget split
// (two groups) or coordinate descent (more groups). It exists to measure
// how much latency the paper's $0.01 payment granularity costs — the
// granularity-vs-optimality ablation of DESIGN.md.
func SolveRepetitionContinuous(est *Estimator, p Problem) (ContinuousResult, error) {
	if err := p.Validate(); err != nil {
		return ContinuousResult{}, err
	}
	if est == nil {
		est = NewEstimator()
	}
	n := len(p.Groups)
	B := float64(p.Budget)
	u := make([]float64, n)
	for i, g := range p.Groups {
		u[i] = float64(g.UnitCost())
	}
	groupMean := func(i int, price float64) (float64, error) {
		if !(price > 0) {
			return math.Inf(1), nil
		}
		rate := p.Groups[i].Type.Accept.Rate(price)
		if !(rate > 0) {
			return math.Inf(1), nil
		}
		base, err := dist.NewErlang(p.Groups[i].Reps, rate)
		if err != nil {
			return 0, err
		}
		return dist.MeanOfMax(p.Groups[i].Tasks, base)
	}
	prices := make([]float64, n)
	// Start from the rep-even point.
	total := 0.0
	for i := range prices {
		total += u[i]
	}
	for i := range prices {
		prices[i] = B / total
		if prices[i] < 1 {
			prices[i] = 1
		}
	}
	objective := func(prs []float64) (float64, error) {
		sum := 0.0
		for i := range prs {
			v, err := groupMean(i, prs[i])
			if err != nil {
				return 0, err
			}
			sum += v
		}
		return sum, nil
	}
	// Coordinate descent: optimize each price against the budget residual.
	// Convexity of each term makes this converge; a handful of sweeps is
	// ample at the experiment scales.
	for sweep := 0; sweep < 60; sweep++ {
		moved := 0.0
		for i := 0; i < n; i++ {
			// Budget available to group i given the others.
			spent := 0.0
			for j := 0; j < n; j++ {
				if j != i {
					spent += u[j] * prices[j]
				}
			}
			maxPrice := (B - spent) / u[i]
			if maxPrice < 1 {
				continue
			}
			// The objective decreases in p_i, but raising p_i starves
			// future sweeps of other groups; optimize the *pair* budget
			// share with the next group instead for n >= 2.
			j := (i + 1) % n
			if j == i {
				prices[i] = maxPrice
				continue
			}
			pair := u[i]*prices[i] + u[j]*prices[j]
			f := func(share float64) float64 {
				pi := share / u[i]
				pj := (pair - share) / u[j]
				if pi < 1 || pj < 1 {
					return math.Inf(1)
				}
				vi, err := groupMean(i, pi)
				if err != nil {
					return math.Inf(1)
				}
				vj, err := groupMean(j, pj)
				if err != nil {
					return math.Inf(1)
				}
				return vi + vj
			}
			loS, hiS := u[i]*1.0, pair-u[j]*1.0
			if hiS <= loS {
				continue
			}
			bestShare, _ := numeric.MinimizeGolden(f, loS, hiS, 1e-6*pair)
			newPi := bestShare / u[i]
			newPj := (pair - bestShare) / u[j]
			moved += math.Abs(newPi - prices[i])
			prices[i], prices[j] = newPi, newPj
		}
		if moved < 1e-9 {
			break
		}
	}
	obj, err := objective(prices)
	if err != nil {
		return ContinuousResult{}, err
	}
	return ContinuousResult{Prices: prices, Objective: obj}, nil
}
