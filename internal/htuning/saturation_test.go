package htuning

import (
	"testing"

	"hputune/internal/pricing"
)

func TestSaturationScanSensitiveModelSaturatesEarly(t *testing.T) {
	// λ = 10p + 1: the paper's case (b), where "the on-hold latency
	// decreases to a low level with a relatively lower price".
	est := NewEstimator()
	sensitive := Group{
		Type:  &TaskType{Name: "b", Accept: pricing.Linear{K: 10, B: 1}, ProcRate: 2},
		Tasks: 20, Reps: 1,
	}
	res, err := SaturationScan(est, sensitive, 100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated() {
		t.Fatal("sensitive model did not saturate within price 100")
	}
	if res.SaturationPrice > 10 {
		t.Errorf("sensitive model saturated only at price %d, expected early", res.SaturationPrice)
	}
	// The insensitive model (c) must saturate immediately too — price
	// buys nothing — while the moderate model saturates later than (b).
	insensitive := Group{
		Type:  &TaskType{Name: "c", Accept: pricing.Linear{K: 0.1, B: 10}, ProcRate: 2},
		Tasks: 20, Reps: 1,
	}
	resC, err := SaturationScan(est, insensitive, 100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !resC.Saturated() || resC.SaturationPrice > 3 {
		t.Errorf("insensitive model should saturate immediately, got %+v", resC.SaturationPrice)
	}
	moderate := Group{
		Type:  &TaskType{Name: "a", Accept: pricing.Linear{K: 1, B: 1}, ProcRate: 2},
		Tasks: 20, Reps: 1,
	}
	resA, err := SaturationScan(est, moderate, 100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if resA.Saturated() && resA.SaturationPrice <= res.SaturationPrice {
		t.Errorf("moderate model (price %d) should saturate later than the sensitive one (price %d)",
			resA.SaturationPrice, res.SaturationPrice)
	}
}

func TestSaturationScanCurveShape(t *testing.T) {
	est := NewEstimator()
	g := Group{
		Type:  &TaskType{Name: "a", Accept: pricing.Linear{K: 1, B: 1}, ProcRate: 2},
		Tasks: 10, Reps: 2,
	}
	res, err := SaturationScan(est, g, 30, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) < 10 {
		t.Fatalf("curve too short: %d points", len(res.Curve))
	}
	if res.ProcessingFloor <= 0 {
		t.Error("no processing floor")
	}
	for i := 1; i < len(res.Curve); i++ {
		prev, cur := res.Curve[i-1], res.Curve[i]
		if cur.Latency > prev.Latency+1e-9 {
			t.Errorf("latency rose with price at %d: %v -> %v", cur.Price, prev.Latency, cur.Latency)
		}
		if cur.Marginal < -1e-9 {
			t.Errorf("negative marginal at %d: %v", cur.Price, cur.Marginal)
		}
		// Latency can never drop below the processing floor.
		if cur.Latency < res.ProcessingFloor-1e-9 {
			t.Errorf("latency %v below processing floor %v", cur.Latency, res.ProcessingFloor)
		}
	}
}

func TestSaturationScanValidation(t *testing.T) {
	est := NewEstimator()
	g := Group{
		Type:  &TaskType{Name: "a", Accept: pricing.Linear{K: 1, B: 1}, ProcRate: 2},
		Tasks: 5, Reps: 1,
	}
	if _, err := SaturationScan(est, g, 1, 0.01); err == nil {
		t.Error("maxPrice 1 accepted")
	}
	if _, err := SaturationScan(est, g, 10, 0); err == nil {
		t.Error("zero fraction accepted")
	}
	bad := g
	bad.Tasks = 0
	if _, err := SaturationScan(est, bad, 10, 0.01); err == nil {
		t.Error("invalid group accepted")
	}
}

func TestEffectiveBudgetSensitiveVsInsensitive(t *testing.T) {
	est := NewEstimator()
	mk := func(model pricing.RateModel) Problem {
		return Problem{
			Groups: []Group{{
				Type:  &TaskType{Name: "t", Accept: model, ProcRate: 2},
				Tasks: 20, Reps: 2,
			}},
			Budget: 40,
		}
	}
	// Case (b): sensitive — a small budget already achieves near-best.
	sensitive, err := EffectiveBudget(est, mk(pricing.Linear{K: 10, B: 1}), 2000, 40, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	// Case (a): moderate — needs meaningfully more budget.
	moderate, err := EffectiveBudget(est, mk(pricing.Linear{K: 1, B: 1}), 2000, 40, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if sensitive >= moderate {
		t.Errorf("sensitive model effective budget %d not below moderate %d", sensitive, moderate)
	}
}

func TestEffectiveBudgetValidation(t *testing.T) {
	est := NewEstimator()
	p := Problem{
		Groups: []Group{{
			Type:  &TaskType{Name: "t", Accept: pricing.Linear{K: 1, B: 1}, ProcRate: 2},
			Tasks: 5, Reps: 1,
		}},
		Budget: 10,
	}
	if _, err := EffectiveBudget(est, p, 5, 5, 0.02); err == nil {
		t.Error("maxBudget below budget accepted")
	}
	if _, err := EffectiveBudget(est, p, 100, 0, 0.02); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := EffectiveBudget(est, p, 100, 5, 0); err == nil {
		t.Error("zero slack accepted")
	}
}
