package htuning

import (
	"fmt"

	"hputune/internal/randx"
)

// Baselines from the paper's evaluation (Sec 5.1):
//
//   - BiasAllocation — Scenario I comparison: half the tasks take a share α
//     of the budget, the other half 1−α; α = 1/2 recovers EA.
//   - TaskEvenAllocation — every task receives the same total payment,
//     split evenly over its repetitions ("te").
//   - RepEvenAllocation — every repetition of every task receives the same
//     payment ("re").
//   - UniformTypeAllocation — every group (type) receives the same total
//     payment (the Fig 5(c) "HEU" heuristic).

// BiasAllocation splits the budget of a single-group problem unevenly:
// a randomly selected half of the tasks (the "prior group") shares
// α·B, the remaining tasks share (1−α)·B; within each half, payments are
// even per repetition with remainders spread one unit at a time. Requires
// 1/2 ≤ α < 1; α = 1/2 is the even allocation.
func BiasAllocation(p Problem, alpha float64, r *randx.Rand) (Allocation, error) {
	if len(p.Groups) != 1 {
		return Allocation{}, fmt.Errorf("htuning: BiasAllocation handles exactly one group, got %d", len(p.Groups))
	}
	if err := p.Validate(); err != nil {
		return Allocation{}, err
	}
	if alpha < 0.5 || alpha >= 1 {
		return Allocation{}, fmt.Errorf("htuning: bias α = %v outside [0.5, 1)", alpha)
	}
	if r == nil {
		return Allocation{}, fmt.Errorf("htuning: BiasAllocation needs a random source to pick the prior half")
	}
	g := p.Groups[0]
	n, m := g.Tasks, g.Reps
	nPrior := n / 2
	if nPrior == 0 {
		nPrior = 1
	}
	nRest := n - nPrior
	bPrior := int(alpha * float64(p.Budget))
	bRest := p.Budget - bPrior
	// Both halves must still afford one unit per repetition.
	if bPrior < nPrior*m || bRest < nRest*m {
		return Allocation{}, fmt.Errorf("%w: bias α=%v leaves a half below one unit per repetition", ErrBudgetTooSmall, alpha)
	}

	perm := r.Perm(n)
	prior := make(map[int]bool, nPrior)
	for _, ti := range perm[:nPrior] {
		prior[ti] = true
	}

	fill := func(tasks []int, budget int, out [][]int) {
		if len(tasks) == 0 {
			return
		}
		reps := len(tasks) * m
		base := budget / reps
		rem := budget % reps
		for _, ti := range tasks {
			row := make([]int, m)
			for ri := range row {
				row[ri] = base
				if rem > 0 {
					row[ri]++
					rem--
				}
			}
			out[ti] = row
		}
	}

	var priorIdx, restIdx []int
	for ti := 0; ti < n; ti++ {
		if prior[ti] {
			priorIdx = append(priorIdx, ti)
		} else {
			restIdx = append(restIdx, ti)
		}
	}
	rows := make([][]int, n)
	fill(priorIdx, bPrior, rows)
	fill(restIdx, bRest, rows)
	return Allocation{RepPrices: [][][]int{rows}}, nil
}

// TaskEvenAllocation gives every atomic task the same total payment,
// dividing it evenly over the task's repetitions (the paper's "task-even"
// baseline: a task needing more repetitions pays less per repetition).
// Remainder units are spread one per task, then one per repetition.
func TaskEvenAllocation(p Problem) (Allocation, error) {
	if err := p.Validate(); err != nil {
		return Allocation{}, err
	}
	total := p.TotalTasks()
	perTask := p.Budget / total
	remTasks := p.Budget % total

	a := Allocation{RepPrices: make([][][]int, len(p.Groups))}
	taskCounter := 0
	for gi, g := range p.Groups {
		if perTask < g.Reps {
			return Allocation{}, fmt.Errorf("%w: per-task budget %d below %d repetitions of group %d", ErrBudgetTooSmall, perTask, g.Reps, gi)
		}
		a.RepPrices[gi] = make([][]int, g.Tasks)
		for ti := 0; ti < g.Tasks; ti++ {
			budget := perTask
			if taskCounter < remTasks {
				budget++
			}
			taskCounter++
			row := make([]int, g.Reps)
			base := budget / g.Reps
			rem := budget % g.Reps
			for ri := range row {
				row[ri] = base
				if ri < rem {
					row[ri]++
				}
			}
			a.RepPrices[gi][ti] = row
		}
	}
	return a, nil
}

// RepEvenAllocation gives every repetition of every task the same payment
// (the paper's "rep-even" baseline: a task with more repetitions receives
// a proportionally larger total). Remainder units go one per repetition in
// index order.
func RepEvenAllocation(p Problem) (Allocation, error) {
	if err := p.Validate(); err != nil {
		return Allocation{}, err
	}
	totalReps := p.MinBudget() // one unit per repetition == repetition count
	base := p.Budget / totalReps
	rem := p.Budget % totalReps
	if base < 1 {
		return Allocation{}, fmt.Errorf("%w: budget %d below %d repetitions", ErrBudgetTooSmall, p.Budget, totalReps)
	}
	a := Allocation{RepPrices: make([][][]int, len(p.Groups))}
	for gi, g := range p.Groups {
		a.RepPrices[gi] = make([][]int, g.Tasks)
		for ti := 0; ti < g.Tasks; ti++ {
			row := make([]int, g.Reps)
			for ri := range row {
				row[ri] = base
				if rem > 0 {
					row[ri]++
					rem--
				}
			}
			a.RepPrices[gi][ti] = row
		}
	}
	return a, nil
}

// UniformTypeAllocation gives every group the same total payment, split
// evenly over the group's repetitions — the "HEU" heuristic the paper
// compares OPT against on Mechanical Turk (Fig 5(c)).
func UniformTypeAllocation(p Problem) (Allocation, error) {
	if err := p.Validate(); err != nil {
		return Allocation{}, err
	}
	nG := len(p.Groups)
	perGroup := p.Budget / nG
	remG := p.Budget % nG
	a := Allocation{RepPrices: make([][][]int, nG)}
	for gi, g := range p.Groups {
		budget := perGroup
		if gi < remG {
			budget++
		}
		reps := g.UnitCost()
		base := budget / reps
		rem := budget % reps
		if base < 1 {
			return Allocation{}, fmt.Errorf("%w: group %d share %d below %d repetitions", ErrBudgetTooSmall, gi, budget, reps)
		}
		a.RepPrices[gi] = make([][]int, g.Tasks)
		for ti := 0; ti < g.Tasks; ti++ {
			row := make([]int, g.Reps)
			for ri := range row {
				row[ri] = base
				if rem > 0 {
					row[ri]++
					rem--
				}
			}
			a.RepPrices[gi][ti] = row
		}
	}
	return a, nil
}
