// Package htuning implements the H-Tuning problem of "Tuning Crowdsourced
// Human Computation" (Cao et al., ICDE 2017): given a set of atomic crowd
// tasks, each requiring a number of sequential answer repetitions, and a
// discrete total budget, choose per-repetition payments that minimize the
// expected completion latency of the whole job.
//
// The three scenarios of the paper map to three solvers:
//
//   - Scenario I (identical tasks, identical repetitions): EvenAllocation,
//     the provably optimal closed-form split (Algorithm 1);
//   - Scenario II (identical difficulty, repetitions differ by group):
//     SolveRepetition, marginal-gain allocation over group latencies
//     (Algorithm 2), with an exact dynamic program as cross-check;
//   - Scenario III (difficulty and repetitions differ): SolveHeterogeneous,
//     compromise programming against the Utopia Point (Algorithm 3).
//
// Latency estimation uses the HPU model of package dist: on-hold phase
// Exp(λo(price)) per repetition, processing phase Exp(λp), task latency
// Erlang over sequential repetitions, job latency the max over tasks.
package htuning

import (
	"fmt"

	"hputune/internal/pricing"
)

// TaskType describes one class of atomic task: how quickly the crowd picks
// it up as a function of price, and how long the actual human processing
// takes once accepted.
type TaskType struct {
	// Name identifies the type in output ("sort-vote", "filter-8v", ...).
	Name string
	// Accept maps a per-repetition price to the on-hold clock rate λo.
	Accept pricing.RateModel
	// ProcRate is the processing clock rate λp (price-independent).
	ProcRate float64
}

// Validate reports whether the type is usable.
func (t *TaskType) Validate() error {
	if t == nil {
		return fmt.Errorf("htuning: nil task type")
	}
	if t.Accept == nil {
		return fmt.Errorf("htuning: task type %q has no acceptance rate model", t.Name)
	}
	if !(t.ProcRate > 0) {
		return fmt.Errorf("htuning: task type %q has non-positive processing rate %v", t.Name, t.ProcRate)
	}
	return nil
}

// Group is a set of Tasks identical atomic tasks of one type, each
// requiring Reps sequential answer repetitions. Grouping follows the
// paper: tasks of identical type and repetition count are tuned together
// because they are exchangeable.
type Group struct {
	Type  *TaskType
	Tasks int // n: number of atomic tasks in the group
	Reps  int // k: repetitions required per task
}

// UnitCost returns the budget consumed by raising this group's
// per-repetition price by one unit: Tasks × Reps (the u_i of Algorithms
// 2 and 3).
func (g Group) UnitCost() int { return g.Tasks * g.Reps }

// Validate reports whether the group is well formed.
func (g Group) Validate() error {
	if err := g.Type.Validate(); err != nil {
		return err
	}
	if g.Tasks < 1 {
		return fmt.Errorf("htuning: group of type %q has %d tasks, need >= 1", g.Type.Name, g.Tasks)
	}
	if g.Reps < 1 {
		return fmt.Errorf("htuning: group of type %q has %d repetitions, need >= 1", g.Type.Name, g.Reps)
	}
	return nil
}

// Problem is an H-Tuning instance: allocate Budget (in discrete payment
// units) across the repetitions of all tasks in Groups to minimize the
// expected completion latency of the job.
type Problem struct {
	Groups []Group
	Budget int
}

// MinBudget returns the smallest feasible budget: one unit for every
// repetition of every task.
func (p Problem) MinBudget() int {
	total := 0
	for _, g := range p.Groups {
		total += g.UnitCost()
	}
	return total
}

// TotalTasks returns the number of atomic tasks across all groups.
func (p Problem) TotalTasks() int {
	n := 0
	for _, g := range p.Groups {
		n += g.Tasks
	}
	return n
}

// Validate reports whether the instance is well formed and affordable.
func (p Problem) Validate() error {
	if len(p.Groups) == 0 {
		return fmt.Errorf("htuning: problem has no groups")
	}
	for i, g := range p.Groups {
		if err := g.Validate(); err != nil {
			return fmt.Errorf("htuning: group %d: %w", i, err)
		}
	}
	if min := p.MinBudget(); p.Budget < min {
		return fmt.Errorf("htuning: budget %d below minimum %d (one unit per repetition)", p.Budget, min)
	}
	return nil
}

// ErrBudgetTooSmall is returned (wrapped) by solvers when the budget
// cannot give every repetition at least one payment unit — the paper's
// "budget is not enough" case of Algorithm 1.
var ErrBudgetTooSmall = fmt.Errorf("htuning: budget too small")
