package htuning

import (
	"math"
	"testing"
)

func TestJobLatencyCDFBasics(t *testing.T) {
	est := NewEstimator()
	typ := linType("t", 1, 1, 2)
	groups := []Group{{Type: typ, Tasks: 4, Reps: 2}}
	prices := []int{3}
	if v, err := est.JobLatencyCDF(groups, prices, PhaseOnHold, 0); err != nil || v != 0 {
		t.Errorf("CDF(0) = %v, %v", v, err)
	}
	prev := 0.0
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 20} {
		v, err := est.JobLatencyCDF(groups, prices, PhaseOnHold, x)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev-1e-12 || v > 1 {
			t.Errorf("CDF not monotone in [0,1] at %v: %v after %v", x, v, prev)
		}
		prev = v
	}
	if prev < 0.99 {
		t.Errorf("CDF at t=20 only %v", prev)
	}
}

func TestJobLatencyCDFSingleTaskMatchesErlang(t *testing.T) {
	est := NewEstimator()
	typ := linType("t", 1, 0, 2) // λo = price
	groups := []Group{{Type: typ, Tasks: 1, Reps: 3}}
	// Erlang(3, 2) at its mean 1.5.
	v, err := est.JobLatencyCDF(groups, []int{2}, PhaseOnHold, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	// Erlang(3,2) CDF at 1.5: 1 - e^-3 (1 + 3 + 4.5) = 1 - 8.5e^-3.
	want := 1 - 8.5*math.Exp(-3)
	if !almostEqual(v, want, 1e-9) {
		t.Errorf("CDF = %v, want %v", v, want)
	}
}

func TestJobLatencyQuantile(t *testing.T) {
	est := NewEstimator()
	typ := linType("t", 1, 1, 2)
	groups := []Group{
		{Type: typ, Tasks: 5, Reps: 2},
		{Type: typ, Tasks: 3, Reps: 4},
	}
	prices := []int{2, 3}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		tq, err := est.JobLatencyQuantile(groups, prices, PhaseOnHold, q)
		if err != nil {
			t.Fatalf("q=%v: %v", q, err)
		}
		c, err := est.JobLatencyCDF(groups, prices, PhaseOnHold, tq)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(c-q) > 1e-6 {
			t.Errorf("CDF(quantile(%v)) = %v", q, c)
		}
	}
	// Quantiles increase in q.
	t50, _ := est.JobLatencyQuantile(groups, prices, PhaseOnHold, 0.5)
	t95, _ := est.JobLatencyQuantile(groups, prices, PhaseOnHold, 0.95)
	if t95 <= t50 {
		t.Errorf("q95 %v not above q50 %v", t95, t50)
	}
	if _, err := est.JobLatencyQuantile(groups, prices, PhaseOnHold, 1.5); err == nil {
		t.Error("quantile > 1 accepted")
	}
}

func TestSolveMinBudgetForDeadline(t *testing.T) {
	est := NewEstimator()
	typ := linType("t", 1, 1, 2)
	groups := []Group{
		{Type: typ, Tasks: 5, Reps: 3},
		{Type: typ, Tasks: 5, Reps: 5},
	}
	// Latency at a generous budget.
	pGen := Problem{Groups: groups, Budget: 2000}
	resGen, err := SolveRepetition(est, pGen)
	if err != nil {
		t.Fatal(err)
	}
	latGen, err := est.JobExpectedLatency(groups, resGen.Prices, PhaseOnHold)
	if err != nil {
		t.Fatal(err)
	}
	deadline := latGen * 1.5 // achievable below 2000
	res, err := SolveMinBudgetForDeadline(est, groups, deadline, PhaseOnHold, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency > deadline {
		t.Errorf("returned latency %v exceeds deadline %v", res.Latency, deadline)
	}
	if res.Budget > 2000 || res.Budget < 40 {
		t.Errorf("budget %d out of range", res.Budget)
	}
	// Minimality: one unit less must miss the deadline (when above min).
	if res.Budget > 40 {
		pLess := Problem{Groups: groups, Budget: res.Budget - 1}
		r2, err := SolveRepetition(est, pLess)
		if err != nil {
			t.Fatal(err)
		}
		lat2, err := est.JobExpectedLatency(groups, r2.Prices, PhaseOnHold)
		if err != nil {
			t.Fatal(err)
		}
		if lat2 <= deadline {
			t.Errorf("budget %d already meets the deadline (%v <= %v)", res.Budget-1, lat2, deadline)
		}
	}
}

func TestSolveMinBudgetForDeadlineUnachievable(t *testing.T) {
	est := NewEstimator()
	typ := linType("t", 1, 1, 2)
	groups := []Group{{Type: typ, Tasks: 5, Reps: 3}}
	if _, err := SolveMinBudgetForDeadline(est, groups, 1e-9, PhaseOnHold, 500); err == nil {
		t.Error("impossible deadline accepted")
	}
	if _, err := SolveMinBudgetForDeadline(est, groups, 1, PhaseOnHold, 10); err == nil {
		t.Error("cap below minimum budget accepted")
	}
	if _, err := SolveMinBudgetForDeadline(est, groups, -1, PhaseOnHold, 500); err == nil {
		t.Error("negative deadline accepted")
	}
}

func TestSolveRepetitionContinuousBeatsDiscrete(t *testing.T) {
	// The relaxation must never be worse than the discrete optimum, and
	// the gap must shrink as the budget (and thus the grid resolution
	// relative to prices) grows.
	typ := linType("t", 1, 1, 2)
	groups := []Group{
		{Type: typ, Tasks: 5, Reps: 3},
		{Type: typ, Tasks: 5, Reps: 5},
	}
	est := NewEstimator()
	var gaps []float64
	for _, budget := range []int{60, 400} {
		p := Problem{Groups: groups, Budget: budget}
		cont, err := SolveRepetitionContinuous(est, p)
		if err != nil {
			t.Fatal(err)
		}
		disc, err := SolveRepetitionDP(est, p)
		if err != nil {
			t.Fatal(err)
		}
		if cont.Objective > disc.Objective+1e-6 {
			t.Errorf("budget %d: continuous %.6f worse than discrete %.6f",
				budget, cont.Objective, disc.Objective)
		}
		gaps = append(gaps, disc.Objective-cont.Objective)
	}
	if gaps[1] > gaps[0]+1e-9 {
		t.Errorf("granularity gap grew with budget: %v", gaps)
	}
}

func TestSolveRepetitionContinuousSpendsBudget(t *testing.T) {
	typ := linType("t", 1, 1, 2)
	p := Problem{Groups: []Group{
		{Type: typ, Tasks: 4, Reps: 2},
		{Type: typ, Tasks: 4, Reps: 3},
	}, Budget: 100}
	res, err := SolveRepetitionContinuous(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	spent := 0.0
	for i, g := range p.Groups {
		if res.Prices[i] < 1 {
			t.Errorf("price %d below 1: %v", i, res.Prices[i])
		}
		spent += float64(g.UnitCost()) * res.Prices[i]
	}
	if spent > float64(p.Budget)+1e-6 {
		t.Errorf("overspent: %v > %d", spent, p.Budget)
	}
	// A decreasing objective means the whole budget should be used.
	if spent < float64(p.Budget)*0.99 {
		t.Errorf("left money on the table: spent %v of %d", spent, p.Budget)
	}
}
