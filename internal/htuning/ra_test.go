package htuning

import (
	"math"
	"testing"

	"hputune/internal/pricing"
	"hputune/internal/randx"
)

// scenarioII builds the paper's Scenario II shape scaled down: two groups
// of one difficulty with different repetition counts.
func scenarioII(tasks1, reps1, tasks2, reps2, budget int) Problem {
	typ := linType("t", 1, 1, 2)
	return Problem{
		Groups: []Group{
			{Type: typ, Tasks: tasks1, Reps: reps1},
			{Type: typ, Tasks: tasks2, Reps: reps2},
		},
		Budget: budget,
	}
}

func TestSolveRepetitionBasics(t *testing.T) {
	p := scenarioII(5, 3, 5, 5, 200)
	res, err := SolveRepetition(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Prices) != 2 {
		t.Fatalf("got %d prices", len(res.Prices))
	}
	for i, price := range res.Prices {
		if price < 1 {
			t.Errorf("group %d price %d below 1", i, price)
		}
	}
	if res.Spent > p.Budget {
		t.Errorf("spent %d over budget %d", res.Spent, p.Budget)
	}
	a, err := res.Allocation(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(p); err != nil {
		t.Errorf("allocation invalid: %v", err)
	}
}

func TestSolveRepetitionMatchesDP(t *testing.T) {
	// Across budgets and models the greedy must match the exact DP
	// objective (convex marginal structure); allow a hair of slack for
	// integer-cost granularity.
	models := []pricing.RateModel{
		pricing.Linear{K: 1, B: 1},
		pricing.Linear{K: 10, B: 1},
		pricing.Linear{K: 0.1, B: 10},
		pricing.Quadratic{},
		pricing.Logarithmic{},
	}
	for _, m := range models {
		typ := &TaskType{Name: m.Name(), Accept: m, ProcRate: 2}
		for _, budget := range []int{40, 80, 150} {
			p := Problem{
				Groups: []Group{
					{Type: typ, Tasks: 3, Reps: 3},
					{Type: typ, Tasks: 3, Reps: 5},
				},
				Budget: budget,
			}
			est := NewEstimator()
			greedy, err := SolveRepetition(est, p)
			if err != nil {
				t.Fatalf("%s B=%d greedy: %v", m.Name(), budget, err)
			}
			exact, err := SolveRepetitionDP(est, p)
			if err != nil {
				t.Fatalf("%s B=%d dp: %v", m.Name(), budget, err)
			}
			if greedy.Objective > exact.Objective*1.05+1e-9 {
				t.Errorf("%s B=%d: greedy %.6f vs DP %.6f (prices %v vs %v)",
					m.Name(), budget, greedy.Objective, exact.Objective,
					greedy.Prices, exact.Prices)
			}
		}
	}
}

func TestSolveRepetitionDPMatchesBruteForce(t *testing.T) {
	typ := linType("t", 1, 1, 2)
	p := Problem{
		Groups: []Group{
			{Type: typ, Tasks: 2, Reps: 2},
			{Type: typ, Tasks: 2, Reps: 3},
		},
		Budget: 40,
	}
	est := NewEstimator()
	dp, err := SolveRepetitionDP(est, p)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := EnumerateRepetition(est, p, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(dp.Objective, bf.Objective, 1e-10) {
		t.Errorf("DP %.8f (prices %v) vs brute force %.8f (prices %v)",
			dp.Objective, dp.Prices, bf.Objective, bf.Prices)
	}
}

func TestSolveRepetitionGivesMoreToLargerGroups(t *testing.T) {
	// A group with more repetitions has higher latency at equal price;
	// the solver should not leave it at the minimum while the small group
	// is rich. With the paper's 3-vs-5-reps split and equal task counts,
	// the 5-rep group must receive at least the 3-rep group's price.
	p := scenarioII(5, 3, 5, 5, 400)
	res, err := SolveRepetition(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Prices[1] < res.Prices[0] {
		t.Errorf("5-rep group priced %d below 3-rep group %d", res.Prices[1], res.Prices[0])
	}
}

func TestSolveRepetitionBeatsBaselines(t *testing.T) {
	p := scenarioII(10, 3, 10, 5, 600)
	est := NewEstimator()
	res, err := SolveRepetition(est, p)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := res.Allocation(p)
	if err != nil {
		t.Fatal(err)
	}
	te, err := TaskEvenAllocation(p)
	if err != nil {
		t.Fatal(err)
	}
	re, err := RepEvenAllocation(p)
	if err != nil {
		t.Fatal(err)
	}
	lat := func(a Allocation) float64 {
		v, err := SimulateJobLatency(p, a, PhaseOnHold, 6000, randx.New(77))
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	optLat, teLat, reLat := lat(opt), lat(te), lat(re)
	if optLat > teLat*1.02 {
		t.Errorf("OPT %.4f worse than task-even %.4f", optLat, teLat)
	}
	if optLat > reLat*1.02 {
		t.Errorf("OPT %.4f worse than rep-even %.4f", optLat, reLat)
	}
}

func TestSolveRepetitionMonotoneInBudget(t *testing.T) {
	// More budget can only help the objective.
	prev := math.MaxFloat64
	for _, budget := range []int{50, 100, 200, 400, 800} {
		p := scenarioII(5, 3, 5, 5, budget)
		res, err := SolveRepetition(nil, p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Objective > prev+1e-9 {
			t.Errorf("objective rose with budget %d: %v > %v", budget, res.Objective, prev)
		}
		prev = res.Objective
	}
}

func TestSolveRepetitionInfeasible(t *testing.T) {
	p := scenarioII(5, 3, 5, 5, 39) // needs 40
	if _, err := SolveRepetition(nil, p); err == nil {
		t.Error("infeasible budget accepted")
	}
	if _, err := SolveRepetitionDP(nil, p); err == nil {
		t.Error("DP: infeasible budget accepted")
	}
}

func TestEnumerateRepetitionStateCap(t *testing.T) {
	p := scenarioII(2, 2, 2, 2, 200)
	if _, err := EnumerateRepetition(nil, p, 3); err == nil {
		t.Error("state cap not enforced")
	}
}

func TestSolveRepetitionSingleGroupEqualsEvenAllocation(t *testing.T) {
	// With one group, RA should land on the same uniform price EA implies
	// (the budget divided by repetitions, up to the indivisible remainder).
	typ := linType("t", 1, 1, 2)
	p := Problem{Groups: []Group{{Type: typ, Tasks: 4, Reps: 5}}, Budget: 100}
	res, err := SolveRepetition(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if want := 100 / 20; res.Prices[0] != want {
		t.Errorf("single-group RA price %d, want %d", res.Prices[0], want)
	}
}

func TestTaskEvenAndRepEvenShapes(t *testing.T) {
	p := scenarioII(4, 3, 4, 5, 160)
	te, err := TaskEvenAllocation(p)
	if err != nil {
		t.Fatal(err)
	}
	// Task-even: every task's total is equal (within 1 remainder unit).
	var totals []int
	for _, g := range te.RepPrices {
		for _, task := range g {
			s := 0
			for _, price := range task {
				s += price
			}
			totals = append(totals, s)
		}
	}
	for _, s := range totals {
		if s < totals[0]-1 || s > totals[0]+1 {
			t.Errorf("task totals uneven: %v", totals)
		}
	}
	re, err := RepEvenAllocation(p)
	if err != nil {
		t.Fatal(err)
	}
	// Rep-even: every repetition price equal within 1 unit.
	var prices []int
	for _, g := range re.RepPrices {
		for _, task := range g {
			prices = append(prices, task...)
		}
	}
	for _, price := range prices {
		if price < prices[0]-1 || price > prices[0]+1 {
			t.Errorf("rep prices uneven: %v", prices)
		}
	}
	if te.Cost() > p.Budget || re.Cost() > p.Budget {
		t.Error("baseline overspent")
	}
}

func TestUniformTypeAllocationShares(t *testing.T) {
	typ1 := linType("a", 1, 1, 2)
	typ2 := linType("b", 1, 1, 3)
	p := Problem{Groups: []Group{
		{Type: typ1, Tasks: 2, Reps: 10},
		{Type: typ2, Tasks: 2, Reps: 20},
	}, Budget: 120}
	a, err := UniformTypeAllocation(p)
	if err != nil {
		t.Fatal(err)
	}
	groupTotal := func(gi int) int {
		s := 0
		for _, task := range a.RepPrices[gi] {
			for _, price := range task {
				s += price
			}
		}
		return s
	}
	if g0, g1 := groupTotal(0), groupTotal(1); g0 != g1 {
		t.Errorf("group totals differ: %d vs %d", g0, g1)
	}
}
