package htuning

import (
	"fmt"
	"math"
	"sync"
)

// raParallelMin is the smallest candidate count worth fanning across
// goroutines; below it the spawn overhead exceeds the (mostly cached)
// estimator lookups.
const raParallelMin = 4

// candidateWorkers picks the pool size for n independent candidate
// evaluations: inline below raParallelMin, GOMAXPROCS otherwise.
func candidateWorkers(n int) int {
	if n < raParallelMin {
		return 1
	}
	return parallelWorkers(0)
}

// RepetitionResult is the outcome of a Scenario II/III solver: the uniform
// per-repetition price of each group, plus the solver's estimate of its own
// objective for inspection.
type RepetitionResult struct {
	Prices    []int   // per-repetition price per group
	Objective float64 // solver objective at Prices (Σ E_i for RA, closeness for HA)
	Spent     int     // budget units consumed
}

// Allocation materializes the uniform per-group prices into a full
// repetition-level allocation for p.
func (r RepetitionResult) Allocation(p Problem) (Allocation, error) {
	return NewUniformAllocation(p, r.Prices)
}

// SolveRepetition implements Algorithm 2 (RA) for Scenario II: tasks share
// one difficulty but are grouped by repetition count, and the objective is
// the sum over groups of the expected Phase-1 group latency
// Σ_i E[max of n_i Erlang(k_i, λo(p_i))].
//
// Every group starts at one unit per repetition; the remaining budget is
// spent one price increment at a time — the argmin step of the paper's
// Algorithm 2. Two natural greedy rules exist for picking the increment
// when unit costs u_i differ, and neither dominates:
//
//   - greatest absolute gain E_i(p_i) − E_i(p_i+1): the paper's literal
//     reading; right when the budget only fits a few chunky steps (a
//     knapsack effect), and it tends to keep the groups' latencies
//     balanced, which the job's true E[max] rewards;
//   - greatest gain per budget unit (… / u_i): matches the continuous
//     optimum of the surrogate Σ E_i on long runs, but can starve a
//     group whose steps are expensive — better surrogate, worse job.
//
// SolveRepetition therefore runs both rules and keeps the candidate with
// the smaller exact job latency E[max] (ties go to the paper's absolute
// rule); Objective still reports the surrogate of the chosen allocation,
// and the exact surrogate optimum ships as SolveRepetitionDP. E_i(p) is
// convex decreasing in p for every shipped rate model, which is what
// makes either greedy sound; both passes and the final scoring share
// est's memoized integrals.
func SolveRepetition(est *Estimator, p Problem) (RepetitionResult, error) {
	if err := p.Validate(); err != nil {
		return RepetitionResult{}, err
	}
	if est == nil {
		est = NewEstimator()
	}
	// The two greedy passes and the two exact scorings are independent
	// and share est's concurrency-safe memo, so each pair runs on two
	// goroutines; the second pass mostly hits integrals the first one
	// cached.
	var abs, perCost RepetitionResult
	var absErr, perErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		perCost, perErr = solveRepetitionGreedy(est, p, true)
	}()
	abs, absErr = solveRepetitionGreedy(est, p, false)
	wg.Wait()
	if absErr != nil {
		return RepetitionResult{}, absErr
	}
	if perErr != nil {
		return RepetitionResult{}, perErr
	}
	samePrices := true
	for i := range abs.Prices {
		if abs.Prices[i] != perCost.Prices[i] {
			samePrices = false
			break
		}
	}
	if samePrices {
		return abs, nil
	}
	var absJob, perCostJob float64
	var absJobErr, perJobErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		perCostJob, perJobErr = est.JobExpectedLatency(p.Groups, perCost.Prices, PhaseOnHold)
	}()
	absJob, absJobErr = est.JobExpectedLatency(p.Groups, abs.Prices, PhaseOnHold)
	wg.Wait()
	if absJobErr != nil {
		return RepetitionResult{}, absJobErr
	}
	if perJobErr != nil {
		return RepetitionResult{}, perJobErr
	}
	if perCostJob < absJob {
		return perCost, nil
	}
	return abs, nil
}

// solveRepetitionGreedy runs one greedy pass; costAware selects the
// per-budget-unit gain rule.
//
// The pass computes incremental deltas: current[i] and next[i] hold
// E_i at the group's price and price+1, and only the group raised last
// step has its pair refreshed — every other group's gain is unchanged,
// so the argmin re-reads two cached floats instead of re-walking the
// allocation through the estimator (a shard-locked LRU hit per group
// per step in the reference path). Working slices come from a pooled
// scratch; the winning price vector is copied out before the scratch is
// recycled. Bit-identical to solveRepetitionGreedyReference: the same
// estimator values feed the same comparisons in the same group order.
func solveRepetitionGreedy(est *Estimator, p Problem, costAware bool) (RepetitionResult, error) {
	n := len(p.Groups)
	sc := raScratchPool.Get()
	defer raScratchPool.Put(sc)
	prices := intScratch(&sc.prices, n)
	costs := intScratch(&sc.costs, n)
	current := floatScratch(&sc.current, n)
	next := floatScratch(&sc.next, n)
	spent := 0
	for i, g := range p.Groups {
		prices[i] = 1
		costs[i] = g.UnitCost()
		spent += costs[i]
	}
	// Evaluate every group's starting latency concurrently — on a cold
	// cache these are n independent E[max] integrals.
	if err := parallelEach(n, candidateWorkers(n), func(i int) error {
		v, err := est.GroupPhase1Mean(p.Groups[i], prices[i])
		if err != nil {
			return err
		}
		current[i] = v
		return nil
	}); err != nil {
		return RepetitionResult{}, err
	}
	remaining := p.Budget - spent
	// Evaluate the affordable groups' next-price latencies once, also
	// fanned (cold-cache integrals). remaining only ever decreases, so a
	// group unaffordable now is unaffordable forever and its next slot
	// is never read.
	if err := parallelEach(n, candidateWorkers(n), func(i int) error {
		if costs[i] > remaining {
			return nil
		}
		v, err := est.GroupPhase1Mean(p.Groups[i], prices[i]+1)
		if err != nil {
			return err
		}
		next[i] = v
		return nil
	}); err != nil {
		return RepetitionResult{}, err
	}
	for {
		// Argmin over the affordable candidates in group order — the
		// same comparison sequence as the reference pass, fed by the
		// same (cached, pure) estimator values.
		bestI := -1
		bestGain := 0.0
		any := false
		for i := range p.Groups {
			if costs[i] > remaining {
				continue
			}
			any = true
			gain := current[i] - next[i]
			if costAware {
				gain /= float64(costs[i])
			}
			if gain > bestGain+1e-15 {
				bestGain = gain
				bestI = i
			}
		}
		if !any || bestI < 0 || bestGain <= 0 {
			break
		}
		prices[bestI]++
		current[bestI] = next[bestI]
		remaining -= costs[bestI]
		spent += costs[bestI]
		// Only the raised group's delta changed; refresh it if it can
		// still afford another step.
		if costs[bestI] <= remaining {
			v, err := est.GroupPhase1Mean(p.Groups[bestI], prices[bestI]+1)
			if err != nil {
				return RepetitionResult{}, err
			}
			next[bestI] = v
		}
	}
	obj := 0.0
	for _, v := range current {
		obj += v
	}
	out := make([]int, n)
	copy(out, prices)
	return RepetitionResult{Prices: out, Objective: obj, Spent: spent}, nil
}

// SolveRepetitionDP solves the Scenario II objective exactly with a
// multiple-choice knapsack dynamic program over the budget: it considers
// every uniform per-group price vector with Σ u_i·p_i ≤ B and returns the
// one minimizing Σ_i E_i(p_i). Runtime O(Σ_i P_i · B) where P_i is the
// number of affordable price levels of group i; it exists to certify
// SolveRepetition and for ablation benchmarks.
func SolveRepetitionDP(est *Estimator, p Problem) (RepetitionResult, error) {
	if err := p.Validate(); err != nil {
		return RepetitionResult{}, err
	}
	if est == nil {
		est = NewEstimator()
	}
	n := len(p.Groups)
	B := p.Budget

	const inf = math.MaxFloat64
	// All DP state lives in a pooled scratch: the two rolling value rows
	// (swapped instead of reallocated per group), the per-group latency
	// table, and one flat n×(B+1) back-pointer matrix in place of a
	// fresh pick slice per group. Recycled cells are rewritten before
	// every read: value rows are re-filled with inf per group, and the
	// back-walk only visits spends whose value is finite — which implies
	// their back-pointer was stored this call.
	sc := dpScratchPool.Get()
	defer dpScratchPool.Put(sc)
	// best[b] = minimal Σ E over groups processed so far spending exactly b.
	best := floatScratch(&sc.best, B+1)
	next := floatScratch(&sc.next, B+1)
	choice := intScratch(&sc.choice, n*(B+1)) // choice[i*(B+1)+b] = price of group i in the optimum of prefix i at spend b
	for b := range best {
		best[b] = inf
	}
	best[0] = 0

	for i, g := range p.Groups {
		u := g.UnitCost()
		maxPrice := (B - (p.MinBudget() - u)) / u // leave 1 unit/rep for the others
		if maxPrice < 1 {
			return RepetitionResult{}, fmt.Errorf("%w: group %d cannot afford price 1", ErrBudgetTooSmall, i)
		}
		// The price-level latencies are independent integrals — the DP's
		// dominant cost on a cold cache — so they fan across workers.
		lat := floatScratch(&sc.lat, maxPrice+1)
		if err := parallelEach(maxPrice, candidateWorkers(maxPrice), func(pi int) error {
			v, err := est.GroupPhase1Mean(g, pi+1)
			if err != nil {
				return err
			}
			lat[pi+1] = v
			return nil
		}); err != nil {
			return RepetitionResult{}, err
		}
		pick := choice[i*(B+1) : (i+1)*(B+1)]
		for b := range next {
			next[b] = inf
		}
		for b := 0; b <= B; b++ {
			if best[b] == inf {
				continue
			}
			for price := 1; price <= maxPrice; price++ {
				nb := b + u*price
				if nb > B {
					break
				}
				cand := best[b] + lat[price]
				if cand < next[nb] {
					next[nb] = cand
					pick[nb] = price
				}
			}
		}
		best, next = next, best
	}

	// Find the cheapest spend achieving the global minimum.
	bestB, bestV := -1, inf
	for b := 0; b <= B; b++ {
		if best[b] < bestV-1e-15 {
			bestV = best[b]
			bestB = b
		}
	}
	if bestB < 0 {
		return RepetitionResult{}, fmt.Errorf("%w: no feasible allocation", ErrBudgetTooSmall)
	}
	// Walk choices backwards to recover prices.
	prices := make([]int, n)
	b := bestB
	for i := n - 1; i >= 0; i-- {
		price := choice[i*(B+1)+b]
		if price < 1 {
			return RepetitionResult{}, fmt.Errorf("htuning: internal: broken DP back-pointer at group %d spend %d", i, b)
		}
		prices[i] = price
		b -= p.Groups[i].UnitCost() * price
	}
	return RepetitionResult{Prices: prices, Objective: bestV, Spent: bestB}, nil
}

// EnumerateRepetition brute-forces the Scenario II objective over all
// feasible uniform price vectors. Exponential; only for tests and tiny
// instances (it refuses more than maxStates states).
func EnumerateRepetition(est *Estimator, p Problem, maxStates int) (RepetitionResult, error) {
	if err := p.Validate(); err != nil {
		return RepetitionResult{}, err
	}
	if est == nil {
		est = NewEstimator()
	}
	n := len(p.Groups)
	prices := make([]int, n)
	bestPrices := make([]int, n)
	bestObj := math.MaxFloat64
	bestSpent := 0
	states := 0

	var rec func(i, spent int, acc float64) error
	rec = func(i, spent int, acc float64) error {
		if acc >= bestObj {
			return nil // dominated: E_i > 0 always
		}
		if i == n {
			bestObj = acc
			copy(bestPrices, prices)
			bestSpent = spent
			return nil
		}
		g := p.Groups[i]
		u := g.UnitCost()
		restMin := 0
		for j := i + 1; j < n; j++ {
			restMin += p.Groups[j].UnitCost()
		}
		for price := 1; spent+u*price+restMin <= p.Budget; price++ {
			states++
			if states > maxStates {
				return fmt.Errorf("htuning: EnumerateRepetition exceeded %d states", maxStates)
			}
			v, err := est.GroupPhase1Mean(g, price)
			if err != nil {
				return err
			}
			if err := rec(i+1, spent+u*price, acc+v); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, 0, 0); err != nil {
		return RepetitionResult{}, err
	}
	if bestObj == math.MaxFloat64 {
		return RepetitionResult{}, fmt.Errorf("%w: no feasible allocation", ErrBudgetTooSmall)
	}
	return RepetitionResult{Prices: bestPrices, Objective: bestObj, Spent: bestSpent}, nil
}
