package htuning_test

// Parity contracts for the hot-path rewrite: the pooled/incremental
// solver and estimator paths must return bit-identical results to the
// reference implementations on every real workload shape. The table is
// the workload.PaperCampaignFleet scenario set (this file lives in the
// external test package because workload depends on htuning through
// campaign), each campaign recast as the H-Tuning instance its first
// round solves, plus re-fitted-belief variants to cover the keys an
// online loop mints. Run under -race in CI, the same runs also prove the
// scratch pools race-free.

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"hputune/internal/campaign"
	"hputune/internal/dist"
	"hputune/internal/htuning"
	"hputune/internal/pricing"
	"hputune/internal/workload"
)

// parityCase is one H-Tuning instance derived from a fleet campaign.
type parityCase struct {
	name string
	p    htuning.Problem
}

// fleetParityCases recasts every PaperCampaignFleet campaign as the
// instance its round solver sees: the campaign workload priced under a
// belief, with the true classes contributing only their processing
// rates. Two beliefs per campaign — the mistuned prior and a plausible
// re-fitted model — cover both the cold and the re-tuned key space.
func fleetParityCases(t *testing.T) []parityCase {
	t.Helper()
	cfgs, err := workload.PaperCampaignFleet(7)
	if err != nil {
		t.Fatalf("PaperCampaignFleet: %v", err)
	}
	refit := pricing.Floored{Base: pricing.Linear{K: 1.93, B: 0.61}}
	var cases []parityCase
	for _, cfg := range cfgs {
		for _, belief := range []struct {
			tag   string
			model pricing.RateModel
		}{{"prior", cfg.Prior}, {"refit", refit}} {
			p := htuning.Problem{Budget: cfg.RoundBudget}
			for _, g := range cfg.Groups {
				p.Groups = append(p.Groups, htuning.Group{
					Type: &htuning.TaskType{
						Name:     g.Name,
						Accept:   belief.model,
						ProcRate: g.Class.ProcRate,
					},
					Tasks: g.Tasks,
					Reps:  g.Reps,
				})
			}
			cases = append(cases, parityCase{name: cfg.Name + "/" + belief.tag, p: p})
		}
	}
	return cases
}

// TestSolveRepetitionParity pins the optimized RA path to the reference:
// identical prices, objective, spend — bit for bit — on every fleet
// scenario, whether the estimator cache is shared or cold.
func TestSolveRepetitionParity(t *testing.T) {
	shared := htuning.NewEstimator()
	for _, tc := range fleetParityCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			want, err := htuning.SolveRepetitionReference(shared, tc.p)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			got, err := htuning.SolveRepetition(shared, tc.p)
			if err != nil {
				t.Fatalf("optimized: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("optimized RA diverges from reference:\n got %+v\nwant %+v", got, want)
			}
			cold, err := htuning.SolveRepetition(htuning.NewEstimator(), tc.p)
			if err != nil {
				t.Fatalf("cold optimized: %v", err)
			}
			if !reflect.DeepEqual(cold, want) {
				t.Errorf("cold-cache RA diverges from reference:\n got %+v\nwant %+v", cold, want)
			}
		})
	}
}

// TestSolveHeterogeneousParity pins the optimized HA path (incremental
// candidate scoring, binary-search O2 minimization) to the reference
// under every norm, on every fleet scenario.
func TestSolveHeterogeneousParity(t *testing.T) {
	shared := htuning.NewEstimator()
	for _, tc := range fleetParityCases(t) {
		for _, norm := range []htuning.Norm{htuning.NormL1, htuning.NormL2, htuning.NormLInf} {
			t.Run(tc.name+"/"+norm.String(), func(t *testing.T) {
				want, err := htuning.SolveHeterogeneousNormReference(shared, tc.p, norm)
				if err != nil {
					t.Fatalf("reference: %v", err)
				}
				got, err := htuning.SolveHeterogeneousNorm(shared, tc.p, norm)
				if err != nil {
					t.Fatalf("optimized: %v", err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("optimized HA diverges from reference:\n got %+v\nwant %+v", got, want)
				}
			})
		}
	}
}

// TestSolveParityConcurrent reruns both solvers concurrently against one
// shared estimator, so -race exercises the scratch pools and the
// incremental paths under real contention while asserting the results
// still match the references computed serially.
func TestSolveParityConcurrent(t *testing.T) {
	cases := fleetParityCases(t)
	shared := htuning.NewEstimator()
	wantRA := make([]htuning.RepetitionResult, len(cases))
	wantHA := make([]htuning.HeterogeneousResult, len(cases))
	for i, tc := range cases {
		var err error
		if wantRA[i], err = htuning.SolveRepetitionReference(shared, tc.p); err != nil {
			t.Fatalf("%s: reference RA: %v", tc.name, err)
		}
		if wantHA[i], err = htuning.SolveHeterogeneousNormReference(shared, tc.p, htuning.NormL1); err != nil {
			t.Fatalf("%s: reference HA: %v", tc.name, err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, len(cases))
	for i, tc := range cases {
		wg.Add(1)
		go func() {
			defer wg.Done()
			gotRA, err := htuning.SolveRepetition(shared, tc.p)
			if err != nil {
				errs[i] = err
				return
			}
			gotHA, err := htuning.SolveHeterogeneousNorm(shared, tc.p, htuning.NormL1)
			if err != nil {
				errs[i] = err
				return
			}
			if !reflect.DeepEqual(gotRA, wantRA[i]) {
				t.Errorf("%s: concurrent RA diverges from reference", tc.name)
			}
			if !reflect.DeepEqual(gotHA, wantHA[i]) {
				t.Errorf("%s: concurrent HA diverges from reference", tc.name)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("%s: %v", cases[i].name, err)
		}
	}
}

// TestEstimatorParity pins the estimator against direct dist
// computations: a cached (and intern-backed) lookup must equal the
// uncached integral bit for bit, for every group and a spread of prices
// drawn from the fleet scenarios.
func TestEstimatorParity(t *testing.T) {
	est := htuning.NewEstimator()
	type directKey struct {
		rateBits uint64
		n, k     int
		procBits uint64
	}
	seen := map[directKey]bool{}
	for _, tc := range fleetParityCases(t) {
		for _, g := range tc.p.Groups {
			for _, price := range []int{1, 3} {
				rate := g.Type.Accept.Rate(float64(price))
				if !(rate > 0) {
					t.Fatalf("%s: non-positive rate at price %d", tc.name, price)
				}
				// Fleet scenarios repeat group shapes; the direct
				// integrals (the slow side of the comparison) only need
				// computing once per distinct key.
				k := directKey{math.Float64bits(rate), g.Tasks, g.Reps, math.Float64bits(g.Type.ProcRate)}
				if seen[k] {
					continue
				}
				seen[k] = true
				erl, err := dist.NewErlang(g.Reps, rate)
				if err != nil {
					t.Fatal(err)
				}
				want, err := dist.MeanOfMax(g.Tasks, erl)
				if err != nil {
					t.Fatal(err)
				}
				// Twice: a cache miss then a hit, both must equal the
				// direct integral.
				for pass := 0; pass < 2; pass++ {
					got, err := est.GroupPhase1Mean(g, price)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Errorf("%s: GroupPhase1Mean(%s, %d) pass %d = %v, direct integral %v",
							tc.name, g.Type.Name, price, pass, got, want)
					}
				}
				two, err := dist.NewTwoPhaseErlang(g.Reps, rate, g.Type.ProcRate)
				if err != nil {
					t.Fatal(err)
				}
				wantTot, err := dist.MeanOfMax(g.Tasks, two)
				if err != nil {
					t.Fatal(err)
				}
				gotTot, err := est.GroupTotalMean(g, price)
				if err != nil {
					t.Fatal(err)
				}
				if gotTot != wantTot {
					t.Errorf("%s: GroupTotalMean(%s, %d) = %v, direct integral %v",
						tc.name, g.Type.Name, price, gotTot, wantTot)
				}
			}
		}
	}
}

// TestGroupPhase1Monotone pins the monotonicity minimizeO2's binary
// search relies on: E1 strictly decreases as price rises, across every
// fleet group and belief.
func TestGroupPhase1Monotone(t *testing.T) {
	est := htuning.NewEstimator()
	for _, tc := range fleetParityCases(t) {
		for _, g := range tc.p.Groups {
			prev := math.Inf(1)
			for price := 1; price <= 24; price++ {
				v, err := est.GroupPhase1Mean(g, price)
				if err != nil {
					t.Fatalf("%s: %v", tc.name, err)
				}
				if !(v < prev) {
					t.Fatalf("%s: E1(%s) not decreasing at price %d: %v -> %v",
						tc.name, g.Type.Name, price, prev, v)
				}
				prev = v
			}
		}
	}
}

// TestCampaignFleetDeterminism pins that buffer and scratch reuse never
// leaks state across rounds or campaigns: running the paper fleet twice
// (fresh executors, shared estimator) yields identical results.
func TestCampaignFleetDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet run in -short mode")
	}
	cfgs, err := workload.PaperCampaignFleet(11)
	if err != nil {
		t.Fatal(err)
	}
	// Trim to the three structurally distinct market modes to keep the
	// double run fast: stationary, drifted, worker-choice.
	trimmed := []campaign.Config{cfgs[0], cfgs[4], cfgs[6]}
	est := htuning.NewEstimator()
	run := func() []campaign.Result {
		t.Helper()
		ctx := t.Context()
		results := make([]campaign.Result, len(trimmed))
		for i, cfg := range trimmed {
			res, err := campaign.Run(ctx, est, cfg)
			if err != nil {
				t.Fatalf("%s: %v", cfg.Name, err)
			}
			results[i] = res
		}
		return results
	}
	first := run()
	second := run()
	if !reflect.DeepEqual(first, second) {
		t.Error("fleet results differ between identical runs: scratch reuse leaked state")
	}
}
