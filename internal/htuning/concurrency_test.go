package htuning

import (
	"sync"
	"testing"
)

// TestEstimatorConcurrentMatchesSerial hammers one shared Estimator from
// many goroutines over an overlapping query mix and asserts every value
// is bit-for-bit the value a fresh serial estimator computes. Run under
// -race this also exercises the sharded cache for data races.
func TestEstimatorConcurrentMatchesSerial(t *testing.T) {
	groups := []Group{
		{Type: linType("a", 1, 1, 2), Tasks: 10, Reps: 3},
		{Type: linType("b", 2, 1, 3), Tasks: 5, Reps: 2},
		{Type: linType("c", 0.5, 2, 1.5), Tasks: 20, Reps: 4},
	}
	const maxPrice = 12

	// Serial reference, one estimator, one goroutine.
	serial := NewEstimator()
	type key struct{ g, price, kind int }
	want := make(map[key]float64)
	for gi, g := range groups {
		for price := 1; price <= maxPrice; price++ {
			v1, err := serial.GroupPhase1Mean(g, price)
			if err != nil {
				t.Fatal(err)
			}
			want[key{gi, price, 1}] = v1
			vt, err := serial.GroupTotalMean(g, price)
			if err != nil {
				t.Fatal(err)
			}
			want[key{gi, price, 2}] = vt
		}
		v2, err := serial.GroupPhase2Mean(g)
		if err != nil {
			t.Fatal(err)
		}
		want[key{gi, 0, 3}] = v2
	}

	// 16 goroutines share one estimator; every goroutine queries every
	// key so cache writes and reads collide constantly.
	shared := NewEstimator()
	const goroutines = 16
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	mismatch := make(chan string, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Stagger start order so goroutines race on different keys.
			for off := 0; off < len(groups)*maxPrice; off++ {
				i := (off + w) % (len(groups) * maxPrice)
				gi, price := i/maxPrice, 1+i%maxPrice
				g := groups[gi]
				v1, err := shared.GroupPhase1Mean(g, price)
				if err != nil {
					errCh <- err
					return
				}
				if v1 != want[key{gi, price, 1}] {
					mismatch <- "phase1"
					return
				}
				vt, err := shared.GroupTotalMean(g, price)
				if err != nil {
					errCh <- err
					return
				}
				if vt != want[key{gi, price, 2}] {
					mismatch <- "total"
					return
				}
				v2, err := shared.GroupPhase2Mean(g)
				if err != nil {
					errCh <- err
					return
				}
				if v2 != want[key{gi, 0, 3}] {
					mismatch <- "phase2"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	close(mismatch)
	for err := range errCh {
		t.Fatal(err)
	}
	for m := range mismatch {
		t.Fatalf("concurrent %s value diverged from serial reference", m)
	}
}

// TestZeroValueEstimatorConcurrent checks the zero value (no NewEstimator
// call) is also safe to share.
func TestZeroValueEstimatorConcurrent(t *testing.T) {
	var est Estimator
	g := Group{Type: linType("z", 1, 1, 2), Tasks: 4, Reps: 2}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for price := 1; price <= 6; price++ {
				if _, err := est.GroupPhase1Mean(g, price); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestSolversSharingOneEstimator runs RA and HA concurrently against one
// estimator on the same problem; under -race this exercises the real
// solver access pattern.
func TestSolversSharingOneEstimator(t *testing.T) {
	typA := linType("a", 1, 1, 2)
	typB := linType("b", 2, 1, 4)
	p := Problem{
		Groups: []Group{
			{Type: typA, Tasks: 6, Reps: 2},
			{Type: typB, Tasks: 4, Reps: 3},
		},
		Budget: 200,
	}
	est := NewEstimator()
	raRef, err := SolveRepetition(NewEstimator(), p)
	if err != nil {
		t.Fatal(err)
	}
	haRef, err := SolveHeterogeneous(NewEstimator(), p)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ra, err := SolveRepetition(est, p)
			if err != nil {
				t.Error(err)
				return
			}
			for i := range ra.Prices {
				if ra.Prices[i] != raRef.Prices[i] {
					t.Errorf("RA prices diverged: %v vs %v", ra.Prices, raRef.Prices)
					return
				}
			}
			ha, err := SolveHeterogeneous(est, p)
			if err != nil {
				t.Error(err)
				return
			}
			for i := range ha.Prices {
				if ha.Prices[i] != haRef.Prices[i] {
					t.Errorf("HA prices diverged: %v vs %v", ha.Prices, haRef.Prices)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestSimulateJobLatencyParallelDeterministic asserts the trial-sharded
// Monte Carlo is a pure function of (instance, trials, seed): any worker
// count gives the identical float64, and repeated runs reproduce it.
func TestSimulateJobLatencyParallelDeterministic(t *testing.T) {
	typ := linType("t", 1, 1, 2.5)
	p := Problem{
		Groups: []Group{
			{Type: typ, Tasks: 4, Reps: 2},
			{Type: typ, Tasks: 3, Reps: 4},
		},
		Budget: 1000,
	}
	a, err := NewUniformAllocation(p, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	const trials = 5000
	const seed = 42
	base, err := SimulateJobLatencyParallel(p, a, PhaseBoth, trials, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, 0} {
		got, err := SimulateJobLatencyParallel(p, a, PhaseBoth, trials, seed, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got != base {
			t.Errorf("workers=%d: %v differs from workers=1 result %v", workers, got, base)
		}
	}
	again, err := SimulateJobLatencyParallel(p, a, PhaseBoth, trials, seed, 4)
	if err != nil {
		t.Fatal(err)
	}
	if again != base {
		t.Errorf("repeat run diverged: %v vs %v", again, base)
	}
	other, err := SimulateJobLatencyParallel(p, a, PhaseBoth, trials, seed+1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if other == base {
		t.Error("different seed produced the identical estimate")
	}
	// The sharded estimate must agree statistically with the analytic
	// integral, like the single-stream simulator does.
	est := NewEstimator()
	analytic, err := est.JobExpectedLatency(p.Groups, []int{2, 3}, PhaseBoth)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(base, analytic, 0.05) {
		t.Errorf("sharded MC %v far from analytic %v", base, analytic)
	}
}

// TestSimulateJobLatencyFloatParallelDeterministic is the uniform-price
// counterpart of the determinism contract.
func TestSimulateJobLatencyFloatParallelDeterministic(t *testing.T) {
	typ := linType("t", 1, 1, 2)
	groups := []Group{
		{Type: typ, Tasks: 5, Reps: 2},
		{Type: typ, Tasks: 2, Reps: 3},
	}
	prices := []float64{2.5, 3.5}
	base, err := SimulateJobLatencyFloatParallel(groups, prices, PhaseOnHold, 4000, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{3, 8} {
		got, err := SimulateJobLatencyFloatParallel(groups, prices, PhaseOnHold, 4000, 7, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got != base {
			t.Errorf("workers=%d: %v differs from workers=1 result %v", workers, got, base)
		}
	}
}

// TestSimulateParallelErrors covers the argument validation of the
// parallel simulators.
func TestSimulateParallelErrors(t *testing.T) {
	typ := linType("t", 1, 1, 2)
	p := Problem{Groups: []Group{{Type: typ, Tasks: 2, Reps: 2}}, Budget: 8}
	a, _ := NewUniformAllocation(p, []int{2})
	if _, err := SimulateJobLatencyParallel(p, a, PhaseBoth, 0, 1, 2); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := SimulateJobLatencyParallel(p, Allocation{}, PhaseBoth, 10, 1, 2); err == nil {
		t.Error("empty allocation accepted")
	}
	if _, err := SimulateJobLatencyFloatParallel(p.Groups, []float64{1, 2}, PhaseBoth, 10, 1, 2); err == nil {
		t.Error("mismatched prices accepted")
	}
	if _, err := SimulateJobLatencyFloatParallel(p.Groups, []float64{-1}, PhaseBoth, 10, 1, 2); err == nil {
		t.Error("negative price accepted")
	}
}

// TestSimShards checks the shard partition covers exactly the trial
// count with the fixed shard layout the determinism contract relies on.
func TestSimShards(t *testing.T) {
	for _, trials := range []int{1, 5, 31, 32, 33, 1000, 1001} {
		shards := simShards(trials)
		total := 0
		for _, s := range shards {
			if s < 1 {
				t.Fatalf("trials=%d: empty shard in %v", trials, shards)
			}
			total += s
		}
		if total != trials {
			t.Fatalf("trials=%d: shards sum to %d", trials, total)
		}
		if trials >= simShardCount && len(shards) != simShardCount {
			t.Fatalf("trials=%d: %d shards, want %d", trials, len(shards), simShardCount)
		}
	}
}
