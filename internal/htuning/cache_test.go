package htuning

import (
	"sync"
	"testing"
)

// fillDistinctKeys drives n distinct cache keys through the estimator by
// varying the price of a single-group query.
func fillDistinctKeys(t *testing.T, est *Estimator, n int) {
	t.Helper()
	g := Group{Type: linType("t", 1, 1, 2), Tasks: 3, Reps: 2}
	for price := 1; price <= n; price++ {
		if _, err := est.GroupPhase1Mean(g, price); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCacheBoundedCapacity(t *testing.T) {
	const capacity = 64
	est, err := NewEstimatorCapacity(capacity)
	if err != nil {
		t.Fatal(err)
	}
	fillDistinctKeys(t, est, 10*capacity)
	st := est.CacheStats()
	if st.Capacity > capacity {
		t.Errorf("effective capacity %d above configured %d", st.Capacity, capacity)
	}
	if st.Entries > st.Capacity {
		t.Errorf("entries %d exceed capacity %d", st.Entries, st.Capacity)
	}
	if st.Evictions == 0 {
		t.Errorf("no evictions after %d distinct keys into capacity %d", 10*capacity, capacity)
	}
	if st.Misses < uint64(10*capacity) {
		t.Errorf("misses %d below the %d distinct computations", st.Misses, 10*capacity)
	}
}

func TestCacheCapacityErrors(t *testing.T) {
	if _, err := NewEstimatorCapacity(0); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := NewEstimatorCapacity(-5); err == nil {
		t.Error("negative capacity accepted")
	}
	// Tiny capacities clamp to one entry per shard and still work.
	est, err := NewEstimatorCapacity(1)
	if err != nil {
		t.Fatal(err)
	}
	fillDistinctKeys(t, est, 100)
	if st := est.CacheStats(); st.Capacity != estimatorShards {
		t.Errorf("capacity 1 should clamp to %d (one per shard), got %d", estimatorShards, st.Capacity)
	}
}

func TestCacheHitCounters(t *testing.T) {
	est := NewEstimator()
	g := Group{Type: linType("t", 2, 1, 3), Tasks: 4, Reps: 2}
	for i := 0; i < 5; i++ {
		if _, err := est.GroupPhase1Mean(g, 7); err != nil {
			t.Fatal(err)
		}
	}
	st := est.CacheStats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	if st.Hits != 4 {
		t.Errorf("hits = %d, want 4", st.Hits)
	}
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
	if st.Evictions != 0 {
		t.Errorf("evictions = %d, want 0", st.Evictions)
	}
}

// TestCacheLRUOrder pins the recency policy at the shard level: with a
// single-entry-per-shard estimator, re-touching a key keeps it resident
// only until another key lands on its shard, and a re-query after
// eviction recomputes the identical value.
func TestCacheLRUOrder(t *testing.T) {
	est, err := NewEstimatorCapacity(estimatorShards) // one entry per shard
	if err != nil {
		t.Fatal(err)
	}
	g := Group{Type: linType("t", 1, 1, 2), Tasks: 3, Reps: 2}
	first, err := est.GroupPhase1Mean(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	fillDistinctKeys(t, est, 200) // stampede over every shard
	again, err := est.GroupPhase1Mean(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Errorf("recomputed value %v differs from original %v", again, first)
	}
	if st := est.CacheStats(); st.Evictions == 0 {
		t.Error("stampede over a one-entry-per-shard cache evicted nothing")
	}
}

// TestCacheEvictionDoesNotChangeResults re-runs a solve against an
// estimator so small every lookup evicts, and checks the solution is
// identical to the unbounded run — eviction must cost time only.
func TestCacheEvictionDoesNotChangeResults(t *testing.T) {
	p := Problem{
		Groups: []Group{
			{Type: linType("a", 1, 1, 2), Tasks: 5, Reps: 2},
			{Type: linType("b", 2, 1, 3), Tasks: 4, Reps: 3},
		},
		Budget: 300,
	}
	big := NewEstimator()
	want, err := SolveRepetition(big, p)
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := NewEstimatorCapacity(estimatorShards)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveRepetition(tiny, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Prices) != len(want.Prices) {
		t.Fatalf("price vectors differ in length: %v vs %v", got.Prices, want.Prices)
	}
	for i := range got.Prices {
		if got.Prices[i] != want.Prices[i] {
			t.Errorf("prices differ under eviction: %v vs %v", got.Prices, want.Prices)
			break
		}
	}
	if got.Objective != want.Objective {
		t.Errorf("objective differs under eviction: %v vs %v", got.Objective, want.Objective)
	}
}

// TestCacheConcurrentBound hammers a tiny cache from many goroutines and
// checks the entry bound holds throughout (the -race build also verifies
// the locking).
func TestCacheConcurrentBound(t *testing.T) {
	const capacity = 2 * estimatorShards
	est, err := NewEstimatorCapacity(capacity)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := Group{Type: linType("t", 1, 1, 2), Tasks: 2 + w%3, Reps: 1 + w%2}
			for price := 1; price <= 64; price++ {
				if _, err := est.GroupPhase1Mean(g, price); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := est.CacheStats()
	if st.Entries > st.Capacity {
		t.Errorf("entries %d exceed capacity %d under concurrency", st.Entries, st.Capacity)
	}
}

// TestCacheSecondChanceSparesTouched pins the eviction policy at the
// shard level: when the shard is full, an entry hit since the last
// sweep is rotated (bit cleared) and a cold entry is evicted instead;
// a follow-up eviction with no intervening hits then takes the
// previously-spared entry.
func TestCacheSecondChanceSparesTouched(t *testing.T) {
	s := &estimatorShard{capacity: 2, m: map[estimateKey]*estEntry{}}
	put := func(n int) *estEntry {
		ent := &estEntry{key: estimateKey{n: n}, val: float64(n)}
		s.pushFront(ent)
		s.m[ent.key] = ent
		return ent
	}
	old := put(1) // tail after the next insert
	hot := put(2)
	old.touched = true // a hit landed on the tail
	s.evictLocked()
	if _, ok := s.m[old.key]; !ok {
		t.Fatal("touched tail was evicted instead of spared")
	}
	if _, ok := s.m[hot.key]; ok {
		t.Fatal("cold entry survived while the touched tail was spared")
	}
	if old.touched {
		t.Fatal("second chance did not clear the touched bit")
	}
	// Next sweep, no new hits: the spared entry is now the cold one.
	put(3)
	s.evictLocked()
	if _, ok := s.m[old.key]; ok {
		t.Fatal("spared entry survived a second sweep without a hit")
	}
	if s.evictions != 2 {
		t.Fatalf("evictions = %d, want 2", s.evictions)
	}
}

// TestCacheSecondChanceAllTouchedTerminates: when every entry is
// touched the sweep must clear bits around the whole ring and still
// evict exactly one entry rather than spin.
func TestCacheSecondChanceAllTouchedTerminates(t *testing.T) {
	s := &estimatorShard{capacity: 4, m: map[estimateKey]*estEntry{}}
	for n := 1; n <= 4; n++ {
		ent := &estEntry{key: estimateKey{n: n}, val: float64(n), touched: true}
		s.pushFront(ent)
		s.m[ent.key] = ent
	}
	s.evictLocked()
	if len(s.m) != 3 {
		t.Fatalf("%d entries after eviction, want 3", len(s.m))
	}
	for _, ent := range s.m {
		if ent.touched {
			t.Fatalf("entry %v kept its touched bit through a full sweep", ent.key)
		}
	}
}
