package numeric

import (
	"fmt"
	"math"
)

// LinearFit is the result of an ordinary least squares fit y = Slope*x +
// Intercept, with the coefficient of determination R2 and the residual
// standard error SE.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
	SE        float64
	N         int
}

// FitLinear performs ordinary least squares on the paired samples (xs, ys).
// At least two distinct x values are required.
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("numeric: FitLinear: len(xs)=%d != len(ys)=%d", len(xs), len(ys))
	}
	n := len(xs)
	if n < 2 {
		return LinearFit{}, fmt.Errorf("numeric: FitLinear: need at least 2 points, got %d", n)
	}
	mx, my := Mean(xs), Mean(ys)
	sxx, sxy, syy := NewKahan(), NewKahan(), NewKahan()
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx.Add(dx * dx)
		sxy.Add(dx * dy)
		syy.Add(dy * dy)
	}
	if sxx.Sum() == 0 {
		return LinearFit{}, fmt.Errorf("numeric: FitLinear: all x values identical (%v)", xs[0])
	}
	slope := sxy.Sum() / sxx.Sum()
	intercept := my - slope*mx
	// Residual sum of squares and R².
	rss := NewKahan()
	for i := range xs {
		r := ys[i] - (slope*xs[i] + intercept)
		rss.Add(r * r)
	}
	r2 := 1.0
	if syy.Sum() > 0 {
		r2 = 1 - rss.Sum()/syy.Sum()
	}
	se := 0.0
	if n > 2 {
		se = math.Sqrt(rss.Sum() / float64(n-2))
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2, SE: se, N: n}, nil
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Slope*x + f.Intercept }

// String formats the fit as "y = a*x + b (R²=...)".
func (f LinearFit) String() string {
	return fmt.Sprintf("y = %.6g*x + %.6g (R²=%.4f, n=%d)", f.Slope, f.Intercept, f.R2, f.N)
}
