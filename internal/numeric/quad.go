package numeric

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConverge is returned when an iterative routine exhausts its budget
// before reaching the requested tolerance.
var ErrNoConverge = errors.New("numeric: did not converge")

// DefaultTol is the absolute/relative tolerance used by the convenience
// wrappers that do not take an explicit tolerance.
const DefaultTol = 1e-10

// maxAdaptiveDepth bounds the recursion of the adaptive Simpson integrator.
// 48 halvings shrink any finite interval below the spacing of float64
// values, so deeper recursion can never refine the estimate.
const maxAdaptiveDepth = 48

// Integrate computes the definite integral of f over [a, b] with adaptive
// Simpson quadrature to absolute tolerance tol. It handles a > b by sign
// reversal. The integrand must be finite on the interval.
func Integrate(f func(float64) float64, a, b, tol float64) (float64, error) {
	if math.IsNaN(a) || math.IsNaN(b) {
		return 0, fmt.Errorf("numeric: Integrate: NaN bound [%v, %v]", a, b)
	}
	if a == b {
		return 0, nil
	}
	sign := 1.0
	if a > b {
		a, b = b, a
		sign = -1
	}
	if tol <= 0 {
		tol = DefaultTol
	}
	// Pre-split into uniform panels before adapting: plain adaptive Simpson
	// converges prematurely when its three initial samples all miss a
	// narrow feature (integrand looks identically zero at depth 0).
	const panels = 16
	type panel struct {
		a, b, fa, fm, fb, whole float64
	}
	parts := make([]panel, panels)
	h := (b - a) / panels
	scale := 0.0
	for i := range parts {
		pa := a + float64(i)*h
		pb := pa + h
		fa, fm, fb := f(pa), f((pa+pb)/2), f(pb)
		whole := simpson(pa, pb, fa, fm, fb)
		parts[i] = panel{pa, pb, fa, fm, fb, whole}
		scale += math.Abs(whole)
	}
	if scale == 0 {
		scale = math.SmallestNonzeroFloat64
	}
	sum := NewKahan()
	var firstErr error
	for _, p := range parts {
		v, err := adaptiveSimpson(f, p.a, p.b, p.fa, p.fm, p.fb, p.whole, tol/panels, scale, maxAdaptiveDepth)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		sum.Add(v)
	}
	return sign * sum.Sum(), firstErr
}

func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

// adaptiveSimpson refines [a, b] until the Richardson correction delta/15
// is below tol, can no longer change the global integral estimate scale
// (the Gander–Gautschi roundoff criterion), or the recursion budget runs
// out. Without the scale criterion, roundoff-driven delta shrinks at
// exactly the rate the per-level tolerance halves, so on wide panels with
// tight absolute tolerances the recursion would expand to its full
// 2^depth nodes — observed as a multi-minute stall integrating latency
// survival curves with clock rates around 1e-7.
func adaptiveSimpson(f func(float64) float64, a, b, fa, fm, fb, whole, tol, scale float64, depth int) (float64, error) {
	m := (a + b) / 2
	if !(a < m && m < b) {
		// Interval is at float64 resolution; nothing left to refine.
		return whole, nil
	}
	lm, rm := (a+m)/2, (m+b)/2
	flm, frm := f(lm), f(rm)
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	delta := left + right - whole
	converged := math.Abs(delta) <= 15*tol || scale+delta/15 == scale
	if depth <= 0 {
		if !converged {
			return left + right + delta/15, ErrNoConverge
		}
		return left + right + delta/15, nil
	}
	if converged {
		// Richardson extrapolation: one order higher than plain Simpson.
		return left + right + delta/15, nil
	}
	lv, lerr := adaptiveSimpson(f, a, m, fa, flm, fm, left, tol/2, scale, depth-1)
	rv, rerr := adaptiveSimpson(f, m, b, fm, frm, fb, right, tol/2, scale, depth-1)
	if lerr != nil {
		return lv + rv, lerr
	}
	return lv + rv, rerr
}

// IntegrateToInf computes the improper integral of f over [a, +inf).
// The tail is covered by geometrically growing panels [a, a+1], [a+1, a+2],
// [a+2, a+4], ..., each integrated adaptively, stopping once several
// consecutive panels contribute nothing relative to the accumulated total.
// This locates integrand mass wherever it sits (near a, or far out as for
// high-shape Erlang densities) without a scale hint from the caller.
// f must decay to zero fast enough for the integral to exist; exponential
// tails, as in all latency distributions here, are fine.
func IntegrateToInf(f func(float64) float64, a, tol float64) (float64, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	const (
		maxPanels  = 80 // covers widths beyond 1e18: any practical latency scale
		quietLimit = 4  // consecutive negligible panels before stopping
	)
	sum := NewKahan()
	var firstErr error
	lo := a
	width := 1.0
	quiet := 0
	for i := 0; i < maxPanels; i++ {
		hi := lo + width
		v, err := Integrate(f, lo, hi, tol/8)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		sum.Add(v)
		scale := math.Abs(sum.Sum())
		if scale < 1 {
			scale = 1
		}
		if math.Abs(v) <= tol*scale {
			quiet++
			if quiet >= quietLimit && sum.Sum() != 0 {
				return sum.Sum(), firstErr
			}
			if quiet >= quietLimit*8 {
				// Integrand appears to be identically zero.
				return sum.Sum(), firstErr
			}
		} else {
			quiet = 0
		}
		lo = hi
		width *= 2
	}
	return sum.Sum(), firstErr
}

// GaussLegendre integrates f over [a, b] with an n-point Gauss–Legendre
// rule. It is non-adaptive and therefore fast and allocation-free for
// smooth integrands; n must be one of the tabulated orders (5, 10, 20).
func GaussLegendre(f func(float64) float64, a, b float64, n int) (float64, error) {
	nodes, weights, err := glRule(n)
	if err != nil {
		return 0, err
	}
	c := (b - a) / 2
	d := (b + a) / 2
	sum := NewKahan()
	for i, x := range nodes {
		sum.Add(weights[i] * f(c*x+d))
	}
	return c * sum.Sum(), nil
}

// glRule returns the nodes and weights of the n-point Gauss–Legendre rule
// on [-1, 1]. Values are precomputed to 16 significant digits.
func glRule(n int) (nodes, weights []float64, err error) {
	switch n {
	case 5:
		return gl5Nodes[:], gl5Weights[:], nil
	case 10:
		return gl10Nodes[:], gl10Weights[:], nil
	case 20:
		return gl20Nodes[:], gl20Weights[:], nil
	}
	return nil, nil, fmt.Errorf("numeric: GaussLegendre: unsupported order %d (want 5, 10 or 20)", n)
}

var gl5Nodes = [5]float64{
	-0.9061798459386640, -0.5384693101056831, 0,
	0.5384693101056831, 0.9061798459386640,
}

var gl5Weights = [5]float64{
	0.2369268850561891, 0.4786286704993665, 0.5688888888888889,
	0.4786286704993665, 0.2369268850561891,
}

var gl10Nodes = [10]float64{
	-0.9739065285171717, -0.8650633666889845, -0.6794095682990244,
	-0.4333953941292472, -0.1488743389816312, 0.1488743389816312,
	0.4333953941292472, 0.6794095682990244, 0.8650633666889845,
	0.9739065285171717,
}

var gl10Weights = [10]float64{
	0.0666713443086881, 0.1494513491505806, 0.2190863625159820,
	0.2692667193099963, 0.2955242247147529, 0.2955242247147529,
	0.2692667193099963, 0.2190863625159820, 0.1494513491505806,
	0.0666713443086881,
}

var gl20Nodes = [20]float64{
	-0.9931285991850949, -0.9639719272779138, -0.9122344282513259,
	-0.8391169718222188, -0.7463319064601508, -0.6360536807265150,
	-0.5108670019508271, -0.3737060887154196, -0.2277858511416451,
	-0.0765265211334973, 0.0765265211334973, 0.2277858511416451,
	0.3737060887154196, 0.5108670019508271, 0.6360536807265150,
	0.7463319064601508, 0.8391169718222188, 0.9122344282513259,
	0.9639719272779138, 0.9931285991850949,
}

var gl20Weights = [20]float64{
	0.0176140071391521, 0.0406014298003869, 0.0626720483341091,
	0.0832767415767048, 0.1019301198172404, 0.1181945319615184,
	0.1316886384491766, 0.1420961093183820, 0.1491729864726037,
	0.1527533871307258, 0.1527533871307258, 0.1491729864726037,
	0.1420961093183820, 0.1316886384491766, 0.1181945319615184,
	0.1019301198172404, 0.0832767415767048, 0.0626720483341091,
	0.0406014298003869, 0.0176140071391521,
}
