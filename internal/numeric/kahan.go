package numeric

// Kahan accumulates a sum with Kahan–Babuška compensated summation,
// bounding the accumulated rounding error independently of the number of
// addends. The zero value is an empty sum ready to use.
type Kahan struct {
	sum float64
	c   float64 // running compensation for lost low-order bits
}

// NewKahan returns an empty compensated accumulator.
func NewKahan() *Kahan { return &Kahan{} }

// Add accumulates v into the sum.
func (k *Kahan) Add(v float64) {
	y := v - k.c
	t := k.sum + y
	k.c = (t - k.sum) - y
	k.sum = t
}

// Sum returns the compensated total.
func (k *Kahan) Sum() float64 { return k.sum }

// Reset clears the accumulator back to an empty sum.
func (k *Kahan) Reset() { k.sum, k.c = 0, 0 }

// SumSlice returns the compensated sum of xs.
func SumSlice(xs []float64) float64 {
	k := NewKahan()
	for _, x := range xs {
		k.Add(x)
	}
	return k.Sum()
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return SumSlice(xs) / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs, or 0 when fewer
// than two observations are available.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	k := NewKahan()
	for _, x := range xs {
		d := x - m
		k.Add(d * d)
	}
	return k.Sum() / float64(n-1)
}
