package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHarmonicSmall(t *testing.T) {
	cases := []struct {
		n    int
		want float64
	}{
		{0, 0}, {-3, 0}, {1, 1}, {2, 1.5}, {3, 11.0 / 6}, {4, 25.0 / 12},
		{10, 2.9289682539682538},
	}
	for _, c := range cases {
		if got := Harmonic(c.n); !almostEqual(got, c.want, 1e-14) {
			t.Errorf("H_%d = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestHarmonicAsymptoticMatchesExact(t *testing.T) {
	// The asymptotic branch (n >= 64) must agree with direct summation.
	for _, n := range []int{64, 100, 1000, 100000} {
		k := NewKahan()
		for i := 1; i <= n; i++ {
			k.Add(1 / float64(i))
		}
		exact := k.Sum()
		if got := Harmonic(n); !almostEqual(got, exact, 1e-12) {
			t.Errorf("H_%d = %v, exact %v", n, got, exact)
		}
	}
}

func TestHarmonicMonotone(t *testing.T) {
	prev := 0.0
	for n := 1; n <= 200; n++ {
		h := Harmonic(n)
		if h <= prev {
			t.Fatalf("H_%d = %v not greater than H_%d = %v", n, h, n-1, prev)
		}
		prev = h
	}
}

func TestLogFactorial(t *testing.T) {
	cases := []struct {
		n    int
		want float64
	}{
		{0, 0}, {1, 0}, {2, math.Log(2)}, {5, math.Log(120)},
		{10, math.Log(3628800)},
	}
	for _, c := range cases {
		if got := LogFactorial(c.n); !almostEqual(got, c.want, 1e-13) {
			t.Errorf("ln(%d!) = %v, want %v", c.n, got, c.want)
		}
	}
	if !math.IsNaN(LogFactorial(-1)) {
		t.Error("LogFactorial(-1) should be NaN")
	}
	// Large n via Lgamma matches recurrence ln(n!) = ln n + ln((n-1)!).
	for _, n := range []int{20, 25, 50, 170} {
		got := LogFactorial(n)
		want := math.Log(float64(n)) + LogFactorial(n-1)
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("ln(%d!) = %v, recurrence gives %v", n, got, want)
		}
	}
}

func TestRegularizedGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^(-x)
	for _, x := range []float64{0.1, 1, 2, 10} {
		got, err := RegularizedGammaP(1, x)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - math.Exp(-x)
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("P(1, %v) = %v, want %v", x, got, want)
		}
	}
	// P(k, x) = 1 - e^(-x)·Σ_{i<k} x^i/i! for k = 3.
	for _, x := range []float64{0.5, 2.0, 7.0, 30.0} {
		got, err := RegularizedGammaP(3, x)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - math.Exp(-x)*(1+x+x*x/2)
		if !almostEqual(got, want, 1e-10) {
			t.Errorf("P(3, %v) = %v, want %v", x, got, want)
		}
	}
}

func TestRegularizedGammaPBoundsAndErrors(t *testing.T) {
	if v, err := RegularizedGammaP(2, 0); err != nil || v != 0 {
		t.Errorf("P(2,0) = %v, %v; want 0, nil", v, err)
	}
	if _, err := RegularizedGammaP(0, 1); err == nil {
		t.Error("expected error for a=0")
	}
	if _, err := RegularizedGammaP(2, -1); err == nil {
		t.Error("expected error for x<0")
	}
}

func TestRegularizedGammaPMonotoneInX(t *testing.T) {
	prop := func(a8, x8 uint8) bool {
		a := 1 + float64(a8%20)
		x1 := float64(x8%40) / 2
		x2 := x1 + 0.7
		p1, err1 := RegularizedGammaP(a, x1)
		p2, err2 := RegularizedGammaP(a, x2)
		if err1 != nil || err2 != nil {
			return false
		}
		return p2 >= p1 && p1 >= 0 && p2 <= 1+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}
