package numeric

import (
	"fmt"
	"math"
)

// Harmonic returns the n-th harmonic number H_n = 1 + 1/2 + ... + 1/n.
// H_0 is 0. For n beyond the exact-summation regime it switches to the
// asymptotic expansion H_n = ln n + γ + 1/(2n) - 1/(12n²) + 1/(120n⁴),
// accurate to well below 1e-12 for n ≥ 64.
func Harmonic(n int) float64 {
	if n <= 0 {
		return 0
	}
	if n < 64 {
		k := NewKahan()
		for i := 1; i <= n; i++ {
			k.Add(1 / float64(i))
		}
		return k.Sum()
	}
	x := float64(n)
	x2 := x * x
	return math.Log(x) + eulerGamma + 1/(2*x) - 1/(12*x2) + 1/(120*x2*x2)
}

// eulerGamma is the Euler–Mascheroni constant.
const eulerGamma = 0.57721566490153286060651209008240243

// LogFactorial returns ln(n!) using math.Lgamma; exact small-n values are
// summed directly to avoid Lgamma's (tiny) error near integers.
func LogFactorial(n int) float64 {
	if n < 0 {
		return math.NaN()
	}
	if n < 20 {
		s := 0.0
		for i := 2; i <= n; i++ {
			s += math.Log(float64(i))
		}
		return s
	}
	v, _ := math.Lgamma(float64(n) + 1)
	return v
}

// RegularizedGammaP returns P(a, x) = γ(a, x)/Γ(a), the regularized lower
// incomplete gamma function, for a > 0, x ≥ 0. For integer a = k this is the
// Erlang(k, 1) CDF evaluated at x. Implementation follows the standard
// series (x < a+1) / continued-fraction (x ≥ a+1) split.
func RegularizedGammaP(a, x float64) (float64, error) {
	switch {
	case a <= 0:
		return 0, fmt.Errorf("numeric: RegularizedGammaP: a = %v must be positive", a)
	case x < 0:
		return 0, fmt.Errorf("numeric: RegularizedGammaP: x = %v must be non-negative", x)
	case x == 0:
		return 0, nil
	}
	if x < a+1 {
		v, err := lowerGammaSeries(a, x)
		return v, err
	}
	q, err := upperGammaCF(a, x)
	return 1 - q, err
}

// RegularizedGammaQ returns Q(a, x) = 1 - P(a, x), the regularized upper
// incomplete gamma function, computed directly from the continued fraction
// for x ≥ a+1 so it stays accurate deep in the tail where P rounds to 1.
func RegularizedGammaQ(a, x float64) (float64, error) {
	switch {
	case a <= 0:
		return 0, fmt.Errorf("numeric: RegularizedGammaQ: a = %v must be positive", a)
	case x < 0:
		return 0, fmt.Errorf("numeric: RegularizedGammaQ: x = %v must be non-negative", x)
	case x == 0:
		return 1, nil
	}
	if x < a+1 {
		v, err := lowerGammaSeries(a, x)
		return 1 - v, err
	}
	return upperGammaCF(a, x)
}

// lowerGammaSeries evaluates P(a, x) by its power series.
func lowerGammaSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-16 {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg), ErrNoConverge
}

// upperGammaCF evaluates Q(a, x) = 1 - P(a, x) by Lentz's continued
// fraction, stable for x ≥ a+1.
func upperGammaCF(a, x float64) (float64, error) {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-16 {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h, ErrNoConverge
}

// Clamp returns v limited to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
