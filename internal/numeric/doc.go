// Package numeric provides the numerical substrate used throughout hputune:
// quadrature over finite and semi-infinite intervals, stable summation,
// special functions (harmonic numbers, regularized incomplete gamma),
// one-dimensional optimization and root finding, and ordinary least squares.
//
// The Go standard library has no numerical analysis package, and the paper's
// latency estimators need well-conditioned integrals of expressions such as
// 1 - F(t)^n where F is an Erlang CDF. Everything here is implemented from
// scratch on top of package math and is deterministic.
package numeric
