package numeric

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestIntegratePolynomial(t *testing.T) {
	// ∫₀¹ x² dx = 1/3
	v, err := Integrate(func(x float64) float64 { return x * x }, 0, 1, 1e-12)
	if err != nil {
		t.Fatalf("Integrate returned error: %v", err)
	}
	if !almostEqual(v, 1.0/3, 1e-10) {
		t.Errorf("∫x² = %v, want 1/3", v)
	}
}

func TestIntegrateReversedBounds(t *testing.T) {
	f := func(x float64) float64 { return math.Sin(x) }
	fwd, err1 := Integrate(f, 0, math.Pi, 1e-11)
	rev, err2 := Integrate(f, math.Pi, 0, 1e-11)
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v %v", err1, err2)
	}
	if !almostEqual(fwd, 2, 1e-9) {
		t.Errorf("∫sin over [0,π] = %v, want 2", fwd)
	}
	if !almostEqual(rev, -2, 1e-9) {
		t.Errorf("reversed integral = %v, want -2", rev)
	}
}

func TestIntegrateZeroWidth(t *testing.T) {
	v, err := Integrate(math.Exp, 3, 3, 1e-12)
	if err != nil || v != 0 {
		t.Errorf("zero-width integral = %v, err %v; want 0, nil", v, err)
	}
}

func TestIntegrateNaNBound(t *testing.T) {
	if _, err := Integrate(math.Exp, math.NaN(), 1, 1e-9); err == nil {
		t.Error("expected error for NaN bound")
	}
}

func TestIntegrateSharpPeak(t *testing.T) {
	// Narrow Gaussian centered off-midpoint; adaptive refinement must find it.
	f := func(x float64) float64 {
		d := (x - 0.3) / 0.01
		return math.Exp(-d * d / 2)
	}
	v, err := Integrate(f, 0, 1, 1e-12)
	if err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	want := 0.01 * math.Sqrt(2*math.Pi)
	if !almostEqual(v, want, 1e-6) {
		t.Errorf("gaussian peak integral = %v, want %v", v, want)
	}
}

func TestIntegrateToInfExponential(t *testing.T) {
	// ∫₀^∞ e^(−t) dt = 1; ∫₀^∞ t e^(−t) dt = 1; ∫₂^∞ e^(−t) dt = e^(−2)
	cases := []struct {
		name string
		f    func(float64) float64
		a    float64
		want float64
	}{
		{"exp", func(t float64) float64 { return math.Exp(-t) }, 0, 1},
		{"t*exp", func(t float64) float64 { return t * math.Exp(-t) }, 0, 1},
		{"shifted", func(t float64) float64 { return math.Exp(-t) }, 2, math.Exp(-2)},
		{"rate5", func(t float64) float64 { return 5 * math.Exp(-5*t) }, 0, 1},
	}
	for _, c := range cases {
		v, err := IntegrateToInf(c.f, c.a, 1e-12)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !almostEqual(v, c.want, 1e-8) {
			t.Errorf("%s = %v, want %v", c.name, v, c.want)
		}
	}
}

func TestIntegrateToInfSurvival(t *testing.T) {
	// E[Exp(λ)] via survival function for several rates.
	for _, lambda := range []float64{0.1, 1, 2, 17.5} {
		v, err := IntegrateToInf(func(t float64) float64 {
			return math.Exp(-lambda * t)
		}, 0, 1e-12)
		if err != nil {
			t.Fatalf("λ=%v: %v", lambda, err)
		}
		if !almostEqual(v, 1/lambda, 1e-8) {
			t.Errorf("survival mean λ=%v: got %v want %v", lambda, v, 1/lambda)
		}
	}
}

func TestGaussLegendreOrders(t *testing.T) {
	f := func(x float64) float64 { return math.Exp(x) }
	want := math.E - 1
	for _, n := range []int{5, 10, 20} {
		v, err := GaussLegendre(f, 0, 1, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !almostEqual(v, want, 1e-10) {
			t.Errorf("GL%d ∫e^x = %v, want %v", n, v, want)
		}
	}
}

func TestGaussLegendreUnsupportedOrder(t *testing.T) {
	if _, err := GaussLegendre(math.Exp, 0, 1, 7); err == nil {
		t.Error("expected error for unsupported order")
	}
}

func TestGaussLegendreExactForPolynomials(t *testing.T) {
	// n-point GL is exact for degree <= 2n-1: x^9 with n=5.
	v, err := GaussLegendre(func(x float64) float64 { return math.Pow(x, 9) }, 0, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v, 0.1, 1e-12) {
		t.Errorf("GL5 ∫x⁹ = %v, want 0.1", v)
	}
}

func TestIntegrateLinearityProperty(t *testing.T) {
	// Property: ∫(a·f) = a·∫f for random scale factors and quadratics.
	prop := func(scale float64, c0, c1, c2 float64) bool {
		scale = math.Mod(math.Abs(scale), 10) // tame magnitudes
		c0 = math.Mod(c0, 5)
		c1 = math.Mod(c1, 5)
		c2 = math.Mod(c2, 5)
		f := func(x float64) float64 { return c0 + c1*x + c2*x*x }
		base, err1 := Integrate(f, 0, 2, 1e-12)
		scaled, err2 := Integrate(func(x float64) float64 { return scale * f(x) }, 0, 2, 1e-12)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(scaled, scale*base, 1e-8)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIntegrateNoiseLockedScaleTerminates(t *testing.T) {
	// Regression: a nearly-flat integrand evaluated over a huge interval
	// produces a Simpson delta dominated by float64 roundoff. That noise
	// shrinks at exactly the rate the per-level tolerance halves, so
	// without a roundoff floor the recursion expands to 2^depth nodes
	// and the call effectively never returns (observed as a 600 s test
	// timeout through dist.MaxOrder.Mean with rates around 1e-5).
	lambda := 1e-7
	n := 25.0
	f := func(x float64) float64 {
		cdf := 1 - math.Exp(-lambda*x)
		return 1 - math.Pow(cdf, n)
	}
	done := make(chan float64, 1)
	go func() {
		v, _ := Integrate(f, 2.7e7, 2.9e7, 1e-12)
		done <- v
	}()
	select {
	case v := <-done:
		// Sanity bound: the integrand sits in (0.75, 0.83) on that range.
		if v < 0.70*2e6 || v > 0.90*2e6 {
			t.Errorf("integral %v outside sanity bounds", v)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Integrate noise-locked: did not return within 30s")
	}
}

func TestIntegrateToInfTinyRateMaxOrder(t *testing.T) {
	// E[max of 25 Exp(1e-5)] = H_25/1e-5 ≈ 3.816e5; the survival-form
	// integral must both terminate and land near the closed form.
	lambda := 1e-7
	n := 25.0
	want := Harmonic(25) / lambda
	v, err := IntegrateToInf(func(x float64) float64 {
		cdf := 1 - math.Exp(-lambda*x)
		return 1 - math.Pow(cdf, n)
	}, 0, 1e-10)
	if err != nil {
		t.Fatalf("IntegrateToInf: %v", err)
	}
	if !almostEqual(v, want, 1e-4) {
		t.Errorf("E[max] = %v, want %v", v, want)
	}
}
