package numeric

import (
	"fmt"
	"math"
)

// Bisect finds a root of f in [a, b] where f(a) and f(b) have opposite
// signs, to absolute x-tolerance tol.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if fa*fb > 0 {
		return 0, fmt.Errorf("numeric: Bisect: f(%v)=%v and f(%v)=%v do not bracket a root", a, fa, b, fb)
	}
	if tol <= 0 {
		tol = DefaultTol
	}
	for i := 0; i < 200; i++ {
		m := a + (b-a)/2
		fm := f(m)
		if fm == 0 || (b-a)/2 < tol {
			return m, nil
		}
		if fa*fm < 0 {
			b, fb = m, fm
		} else {
			a, fa = m, fm
		}
	}
	_ = fb
	return a + (b-a)/2, ErrNoConverge
}

// invPhi is the reciprocal golden ratio used by golden-section search.
var invPhi = (math.Sqrt(5) - 1) / 2

// MinimizeGolden locates the minimizer of a unimodal f on [a, b] by
// golden-section search to x-tolerance tol, returning (argmin, min).
func MinimizeGolden(f func(float64) float64, a, b, tol float64) (x, fx float64) {
	if tol <= 0 {
		tol = 1e-9
	}
	if a > b {
		a, b = b, a
	}
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	m := (a + b) / 2
	return m, f(m)
}

// ArgminInt returns the index of the smallest value in xs, breaking ties
// toward the lowest index. It panics on an empty slice: callers own the
// non-empty invariant.
func ArgminInt(xs []float64) int {
	if len(xs) == 0 {
		panic("numeric: ArgminInt on empty slice")
	}
	best := 0
	for i, v := range xs {
		if v < xs[best] {
			best = i
		}
	}
	return best
}
