package numeric

import (
	"math"
	"testing"
)

func TestKahanCompensation(t *testing.T) {
	// Summing 1e16 followed by many 1.0s loses the ones under naive
	// addition; Kahan keeps them.
	k := NewKahan()
	k.Add(1e16)
	for i := 0; i < 1000; i++ {
		k.Add(1.0)
	}
	k.Add(-1e16)
	if got := k.Sum(); got != 1000 {
		t.Errorf("compensated sum = %v, want 1000", got)
	}
}

func TestKahanReset(t *testing.T) {
	k := NewKahan()
	k.Add(42)
	k.Reset()
	if k.Sum() != 0 {
		t.Errorf("after Reset sum = %v, want 0", k.Sum())
	}
}

func TestSumSliceAndMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if s := SumSlice(xs); s != 10 {
		t.Errorf("SumSlice = %v, want 10", s)
	}
	if m := Mean(xs); m != 2.5 {
		t.Errorf("Mean = %v, want 2.5", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v, want 0", m)
	}
}

func TestVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Population variance is 4; sample variance is 32/7.
	want := 32.0 / 7
	if v := Variance(xs); math.Abs(v-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", v, want)
	}
	if v := Variance([]float64{3}); v != 0 {
		t.Errorf("Variance of singleton = %v, want 0", v)
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-10 {
		t.Errorf("root = %v, want √2", root)
	}
	if _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-9); err == nil {
		t.Error("expected bracketing error")
	}
	// Exact endpoints.
	if r, err := Bisect(func(x float64) float64 { return x }, 0, 1, 1e-9); err != nil || r != 0 {
		t.Errorf("endpoint root = %v, %v", r, err)
	}
}

func TestMinimizeGolden(t *testing.T) {
	x, fx := MinimizeGolden(func(x float64) float64 { return (x - 3) * (x - 3) }, 0, 10, 1e-10)
	if math.Abs(x-3) > 1e-8 || fx > 1e-15 {
		t.Errorf("argmin = %v (f=%v), want 3 (0)", x, fx)
	}
}

func TestArgminInt(t *testing.T) {
	if i := ArgminInt([]float64{3, 1, 2, 1}); i != 1 {
		t.Errorf("ArgminInt = %d, want 1 (first minimum)", i)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on empty slice")
		}
	}()
	ArgminInt(nil)
}

func TestFitLinearRecoversLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.5*x - 1
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2.5) > 1e-12 || math.Abs(fit.Intercept+1) > 1e-12 {
		t.Errorf("fit = %+v, want slope 2.5 intercept -1", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R² = %v, want 1", fit.R2)
	}
	if got := fit.Predict(10); math.Abs(got-24) > 1e-12 {
		t.Errorf("Predict(10) = %v, want 24", got)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("expected error for single point")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("expected error for mismatched lengths")
	}
	if _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("expected error for constant x")
	}
}

func TestFitLinearNoisyR2(t *testing.T) {
	// A clearly linear relationship with mild noise keeps R² high.
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		x := float64(i)
		xs[i] = x
		noise := math.Sin(float64(i) * 12.9898) // deterministic pseudo-noise in [-1,1]
		ys[i] = 3*x + 7 + noise
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.999 {
		t.Errorf("R² = %v, want > 0.999", fit.R2)
	}
	if math.Abs(fit.Slope-3) > 0.05 {
		t.Errorf("slope = %v, want ≈3", fit.Slope)
	}
}
