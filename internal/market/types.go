// Package market is a discrete-event simulator of a crowdsourcing
// marketplace, the substrate that stands in for Amazon Mechanical Turk in
// the reproduction of "Tuning Crowdsourced Human Computation" (Cao et al.,
// ICDE 2017).
//
// The simulated mechanism is the paper's own model of AMT (Sec 3):
// a task posted at price c waits in an on-hold phase whose duration is
// exponential with rate λo(c), then a processing phase exponential with
// rate λp; the k answer repetitions of one task run sequentially, distinct
// tasks in parallel. Two fidelities are provided:
//
//   - ModeIndependent: every open repetition is accepted by its own
//     exponential clock — exactly the stochastic process the paper
//     analyzes, and the mode used to regenerate the paper's figures;
//   - ModeWorkerChoice: worker entities arrive as a Poisson stream and
//     choose among open repetitions by price attractiveness, introducing
//     the competition the paper's independence assumption ignores — used
//     to probe the robustness of the tuning strategies.
//
// Default rates are calibrated to the paper's published AMT measurements
// (λ ≈ 0.0038–0.0131 s⁻¹ for rewards of $0.05–$0.12, Sec 5.2).
package market

import (
	"fmt"

	"hputune/internal/dist"
	"hputune/internal/pricing"
)

// TaskClass describes one kind of atomic task on the marketplace.
type TaskClass struct {
	// Name identifies the class ("image-filter-4v", "sort-vote", ...).
	Name string
	// Accept maps the offered price to the on-hold clock rate λo.
	Accept pricing.RateModel
	// ProcRate is the processing clock rate λp.
	ProcRate float64
	// Proc, when non-nil, overrides the exponential processing model
	// with an arbitrary latency distribution (e.g. dist.LogNormal or
	// dist.HyperExponential) — the robustness knob for probing the HPU
	// model's exponential-processing assumption. ProcRate is ignored
	// when Proc is set.
	Proc dist.Distribution
	// Accuracy is the probability a worker answers a repetition correctly;
	// 1.0 for latency-only studies. Must lie in (0, 1].
	Accuracy float64
}

// Validate reports whether the class is usable.
func (c *TaskClass) Validate() error {
	if c == nil {
		return fmt.Errorf("market: nil task class")
	}
	if c.Accept == nil {
		return fmt.Errorf("market: class %q has no acceptance model", c.Name)
	}
	if c.Proc == nil && !(c.ProcRate > 0) {
		return fmt.Errorf("market: class %q has non-positive processing rate %v", c.Name, c.ProcRate)
	}
	if !(c.Accuracy > 0) || c.Accuracy > 1 {
		return fmt.Errorf("market: class %q has accuracy %v outside (0, 1]", c.Name, c.Accuracy)
	}
	return nil
}

// TaskSpec is one atomic task to post: Reps sequential repetitions, each
// offered at the corresponding price in RepPrices (length Reps).
type TaskSpec struct {
	// ID is the caller's identifier for the task, echoed in records.
	ID string
	// Class is the task's class; must be registered with the simulator.
	Class *TaskClass
	// RepPrices holds the payment for each repetition, in budget units.
	RepPrices []int
	// Meta is an opaque caller payload echoed in records (e.g. the item
	// pair a comparison task encodes).
	Meta any
}

// Validate reports whether the spec is well formed.
func (s TaskSpec) Validate() error {
	if err := s.Class.Validate(); err != nil {
		return err
	}
	if len(s.RepPrices) == 0 {
		return fmt.Errorf("market: task %q has no repetitions", s.ID)
	}
	for i, p := range s.RepPrices {
		if p < 1 {
			return fmt.Errorf("market: task %q repetition %d priced %d, need >= 1", s.ID, i, p)
		}
	}
	return nil
}

// RepRecord is the trace of one completed repetition.
type RepRecord struct {
	TaskID   string
	Rep      int     // repetition index within the task, 0-based
	Price    int     // payment offered
	PostedAt float64 // when the repetition went on hold
	Accepted float64 // when a worker took it
	Done     float64 // when the answer returned
	WorkerID int     // accepting worker (ModeWorkerChoice) or -1
	Correct  bool    // whether the simulated answer is correct
	Meta     any     // copied from the TaskSpec
}

// OnHold returns the repetition's phase-1 latency.
func (r RepRecord) OnHold() float64 { return r.Accepted - r.PostedAt }

// Processing returns the repetition's phase-2 latency.
func (r RepRecord) Processing() float64 { return r.Done - r.Accepted }

// TaskResult aggregates a completed task.
type TaskResult struct {
	TaskID      string
	CompletedAt float64
	Reps        []RepRecord
}

// Latency returns the task's total latency from first posting.
func (t TaskResult) Latency() float64 {
	if len(t.Reps) == 0 {
		return 0
	}
	return t.CompletedAt - t.Reps[0].PostedAt
}

// Mode selects the acceptance mechanism.
type Mode int

const (
	// ModeIndependent accepts each open repetition on its own
	// Exp(λo(price)) clock — the paper's analytical model.
	ModeIndependent Mode = iota
	// ModeWorkerChoice spawns Poisson worker arrivals that choose among
	// open repetitions weighted by λo(price).
	ModeWorkerChoice
)

// Config parameterizes a simulation run.
type Config struct {
	// Mode selects the acceptance mechanism (default ModeIndependent).
	Mode Mode
	// ArrivalRate is the worker arrival rate for ModeWorkerChoice
	// (workers per unit time). Ignored by ModeIndependent.
	ArrivalRate float64
	// WalkAwayWeight is the pseudo-option weight of a worker inspecting
	// the board and leaving without taking anything (ModeWorkerChoice).
	// Larger values thin the effective acceptance rate. Default 0.
	WalkAwayWeight float64
	// AbandonProb is the probability an accepting worker returns the
	// repetition unfinished ("return HIT" on AMT) instead of answering;
	// the repetition goes back on hold and must be re-accepted. The HPU
	// model of the paper has no abandonment (default 0) — this is the
	// failure-injection knob used to probe the tuning strategies'
	// robustness to a violated model. Must lie in [0, 1).
	AbandonProb float64
	// AbandonRate is the rate of the exponential time an abandoning
	// worker holds the repetition before returning it. Required positive
	// when AbandonProb > 0.
	AbandonRate float64
	// Seed seeds the simulation's deterministic random stream.
	Seed uint64
	// MaxTime aborts a run whose clock exceeds this horizon (a safety
	// net against starved tasks in ModeWorkerChoice). Default 0 = none.
	MaxTime float64
}

func (c Config) validate() error {
	if c.Mode != ModeIndependent && c.Mode != ModeWorkerChoice {
		return fmt.Errorf("market: unknown mode %d", c.Mode)
	}
	if c.Mode == ModeWorkerChoice && !(c.ArrivalRate > 0) {
		return fmt.Errorf("market: worker-choice mode needs a positive arrival rate, got %v", c.ArrivalRate)
	}
	if c.WalkAwayWeight < 0 {
		return fmt.Errorf("market: negative walk-away weight %v", c.WalkAwayWeight)
	}
	if c.AbandonProb < 0 || c.AbandonProb >= 1 {
		return fmt.Errorf("market: abandon probability %v outside [0, 1)", c.AbandonProb)
	}
	if c.AbandonProb > 0 && !(c.AbandonRate > 0) {
		return fmt.Errorf("market: abandonment needs a positive abandon rate, got %v", c.AbandonRate)
	}
	return nil
}
