package market

import (
	"fmt"

	"hputune/internal/randx"
)

// taskState tracks one posted task through its sequential repetitions.
type taskState struct {
	spec    TaskSpec
	nextRep int     // repetition currently open or being processed
	posted  float64 // when the current repetition went on hold
	taken   float64 // when the current repetition was accepted
	open    bool    // current repetition is on hold
	done    bool
	records []RepRecord
}

// Sim is a single marketplace simulation run. Create with New, post tasks
// with Post, then drive with Run. A Sim is single-goroutine.
type Sim struct {
	cfg        Config
	rng        *randx.Rand
	queue      eventQueue
	seq        uint64
	clock      float64
	tasks      []taskState
	nDone      int
	nextWorker int
	abandoned  int
	buf        *Buffers

	// Results and trace, populated as tasks finish.
	results []TaskResult
}

// New returns an empty simulation with the given configuration.
func New(cfg Config) (*Sim, error) {
	return NewWithBuffers(cfg, nil)
}

// Buffers is reusable backing storage for a Sim: the event queue, the
// task table, per-task record slices and the result list. A caller that
// drives many simulations of similar shape in sequence (the campaign
// executor's round loop, replication sweeps) hands the same *Buffers to
// each NewWithBuffers call and the steady state allocates nothing — the
// first run's arrays are recycled by every later one.
//
// Ownership: a Buffers belongs to exactly one Sim at a time. Passing it
// to NewWithBuffers invalidates everything the previous run returned by
// reference — Results, AllRecords slices obtained via AppendRecords, and
// the records inside them share the recycled arrays. Copy anything that
// must outlive the next run. The zero value is ready to use. A Buffers
// is not safe for concurrent use.
type Buffers struct {
	events  eventQueue
	tasks   []taskState
	results []TaskResult
	records [][]RepRecord // per-task record slabs, in post order
}

// reclaim harvests the record slabs of the previous run's task table so
// the next run's Post calls can reuse them by index. Idempotent: the
// slab list and the task table converge to the same slices.
func (b *Buffers) reclaim() {
	for i := range b.tasks {
		if b.tasks[i].records == nil {
			continue
		}
		if i < len(b.records) {
			b.records[i] = b.tasks[i].records
		} else {
			b.records = append(b.records, b.tasks[i].records)
		}
	}
}

// NewWithBuffers is New recycling buf's backing storage; buf == nil is
// exactly New. See Buffers for the ownership contract.
func NewWithBuffers(cfg Config, buf *Buffers) (*Sim, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Sim{cfg: cfg, rng: randx.New(cfg.Seed)}
	if buf != nil {
		buf.reclaim()
		s.queue = buf.events[:0]
		s.tasks = buf.tasks[:0]
		s.results = buf.results[:0]
		s.buf = buf
	}
	return s, nil
}

// syncBuffers stores the possibly regrown slices back into the Buffers
// so the next run starts from the largest arrays seen so far.
func (s *Sim) syncBuffers() {
	if s.buf == nil {
		return
	}
	s.buf.events = s.queue
	s.buf.tasks = s.tasks
	s.buf.results = s.results
}

// Clock returns the current simulation time.
func (s *Sim) Clock() float64 { return s.clock }

// Post places a task on the market at the current clock; its first
// repetition goes on hold immediately.
func (s *Sim) Post(spec TaskSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	st := taskState{spec: spec, posted: s.clock, open: true}
	// A task records exactly one entry per completed repetition
	// (abandoned holds are not recorded), so the exact capacity is known
	// up front; with a Buffers the previous run's slab is recycled.
	if s.buf != nil && len(s.tasks) < len(s.buf.records) {
		st.records = s.buf.records[len(s.tasks)][:0]
	}
	if cap(st.records) < len(spec.RepPrices) {
		st.records = make([]RepRecord, 0, len(spec.RepPrices))
	}
	s.tasks = append(s.tasks, st)
	idx := len(s.tasks) - 1
	if s.cfg.Mode == ModeIndependent {
		s.scheduleAccept(idx)
	}
	return nil
}

// PostAll posts a batch of tasks at the current clock.
func (s *Sim) PostAll(specs []TaskSpec) error {
	if free := cap(s.tasks) - len(s.tasks); free < len(specs) {
		grown := make([]taskState, len(s.tasks), len(s.tasks)+len(specs))
		copy(grown, s.tasks)
		s.tasks = grown
	}
	for _, spec := range specs {
		if err := s.Post(spec); err != nil {
			return err
		}
	}
	return nil
}

func (s *Sim) push(at float64, kind eventKind, task int) {
	s.seq++
	s.queue.push(event{at: at, seq: s.seq, kind: kind, task: task})
}

// scheduleAccept draws the acceptance delay of task idx's open repetition
// from Exp(λo(price)).
func (s *Sim) scheduleAccept(idx int) {
	st := &s.tasks[idx]
	price := st.spec.RepPrices[st.nextRep]
	rate := st.spec.Class.Accept.Rate(float64(price))
	s.push(s.clock+s.rng.Exp(rate), evAccept, idx)
}

// Run drives the simulation until every posted task has completed all its
// repetitions (or MaxTime passes). It returns the completed task results
// in completion order.
func (s *Sim) Run() ([]TaskResult, error) {
	defer s.syncBuffers()
	if len(s.tasks) == 0 {
		return nil, fmt.Errorf("market: Run with no posted tasks")
	}
	if s.results == nil {
		s.results = make([]TaskResult, 0, len(s.tasks))
	}
	if s.cfg.Mode == ModeWorkerChoice {
		s.push(s.clock+s.rng.Exp(s.cfg.ArrivalRate), evArrival, -1)
	}
	for s.nDone < len(s.tasks) {
		if s.queue.Len() == 0 {
			return nil, fmt.Errorf("market: event queue drained with %d/%d tasks incomplete", s.nDone, len(s.tasks))
		}
		ev := s.queue.pop()
		s.clock = ev.at
		if s.cfg.MaxTime > 0 && s.clock > s.cfg.MaxTime {
			return nil, fmt.Errorf("market: horizon %v exceeded with %d/%d tasks incomplete", s.cfg.MaxTime, s.nDone, len(s.tasks))
		}
		switch ev.kind {
		case evAccept:
			s.handleAccept(ev.task, -1)
		case evComplete:
			s.handleComplete(ev.task)
		case evArrival:
			s.handleArrival()
		case evAbandon:
			s.handleAbandon(ev.task)
		}
	}
	return s.results, nil
}

// handleAccept marks task idx's open repetition as taken and schedules its
// completion. worker is the accepting worker id, or -1 in independent mode.
func (s *Sim) handleAccept(idx, worker int) {
	st := &s.tasks[idx]
	if !st.open || st.done {
		return // stale event (repetition already taken)
	}
	st.open = false
	st.taken = s.clock
	_ = worker
	// Failure injection: the worker may hold the repetition for a while
	// and then return it unfinished instead of answering.
	if s.cfg.AbandonProb > 0 && s.rng.Bernoulli(s.cfg.AbandonProb) {
		s.push(s.clock+s.rng.Exp(s.cfg.AbandonRate), evAbandon, idx)
		return
	}
	st.records = append(st.records, RepRecord{
		TaskID:   st.spec.ID,
		Rep:      st.nextRep,
		Price:    st.spec.RepPrices[st.nextRep],
		PostedAt: st.posted,
		Accepted: s.clock,
		WorkerID: worker,
		Meta:     st.spec.Meta,
	})
	s.push(s.clock+s.sampleProcessing(st.spec.Class), evComplete, idx)
}

// sampleProcessing draws one processing latency for the class: its
// custom distribution when set, the HPU model's Exp(λp) otherwise.
func (s *Sim) sampleProcessing(c *TaskClass) float64 {
	if c.Proc != nil {
		return c.Proc.Sample(s.rng)
	}
	return s.rng.Exp(c.ProcRate)
}

// handleAbandon reopens task idx's in-flight repetition after its worker
// returned it: the repetition goes back on hold with a fresh on-hold
// clock. Abandoned holds are not recorded as repetitions (the paper's
// trace model only sees completed answers); the count is exposed through
// Abandoned.
func (s *Sim) handleAbandon(idx int) {
	st := &s.tasks[idx]
	if st.open || st.done {
		return // stale
	}
	s.abandoned++
	st.posted = s.clock
	st.open = true
	if s.cfg.Mode == ModeIndependent {
		s.scheduleAccept(idx)
	}
}

// Abandoned returns how many acceptances were returned unfinished.
func (s *Sim) Abandoned() int { return s.abandoned }

// handleComplete finishes the in-flight repetition of task idx and opens
// the next one, or completes the task.
func (s *Sim) handleComplete(idx int) {
	st := &s.tasks[idx]
	rec := &st.records[len(st.records)-1]
	rec.Done = s.clock
	rec.Correct = s.rng.Bernoulli(st.spec.Class.Accuracy)

	st.nextRep++
	if st.nextRep >= len(st.spec.RepPrices) {
		st.done = true
		s.nDone++
		s.results = append(s.results, TaskResult{
			TaskID:      st.spec.ID,
			CompletedAt: s.clock,
			Reps:        st.records,
		})
		return
	}
	// Sequential repetition: the next one goes on hold now.
	st.posted = s.clock
	st.open = true
	if s.cfg.Mode == ModeIndependent {
		s.scheduleAccept(idx)
	}
}

// handleArrival lets one arriving worker inspect the board and take at
// most one open repetition, weighted by acceptance attractiveness.
func (s *Sim) handleArrival() {
	// Schedule the next arrival first: the stream is unconditional.
	s.push(s.clock+s.rng.Exp(s.cfg.ArrivalRate), evArrival, -1)

	total := s.cfg.WalkAwayWeight
	for i := range s.tasks {
		st := &s.tasks[i]
		if st.open && !st.done {
			total += st.spec.Class.Accept.Rate(float64(st.spec.RepPrices[st.nextRep]))
		}
	}
	if total <= 0 {
		return
	}
	pick := s.rng.Float64() * total
	acc := s.cfg.WalkAwayWeight
	if pick < acc {
		return // worker walked away
	}
	for i := range s.tasks {
		st := &s.tasks[i]
		if !st.open || st.done {
			continue
		}
		acc += st.spec.Class.Accept.Rate(float64(st.spec.RepPrices[st.nextRep]))
		if pick < acc {
			worker := s.nextWorker
			s.nextWorker++
			s.handleAccept(i, worker)
			return
		}
	}
}

// Results returns the task results accumulated so far (completion order).
func (s *Sim) Results() []TaskResult { return s.results }

// AllRecords flattens every completed repetition record, ordered by
// acceptance time — the paper's "arrival order" axis.
func (s *Sim) AllRecords() []RepRecord {
	return s.AppendRecords(nil)
}

// AppendRecords appends every completed repetition record to dst (in
// acceptance order) and returns the extended slice — AllRecords for
// callers that recycle the flattened slice across runs.
func (s *Sim) AppendRecords(dst []RepRecord) []RepRecord {
	total := 0
	for _, t := range s.results {
		total += len(t.Reps)
	}
	if free := cap(dst) - len(dst); free < total {
		grown := make([]RepRecord, len(dst), len(dst)+total)
		copy(grown, dst)
		dst = grown
	}
	start := len(dst)
	for _, t := range s.results {
		dst = append(dst, t.Reps...)
	}
	sortRecordsByAccepted(dst[start:])
	return dst
}

func sortRecordsByAccepted(recs []RepRecord) {
	// Insertion sort: traces are short and mostly ordered already.
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].Accepted < recs[j-1].Accepted; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}

// Makespan returns the completion time of the last task, or 0 before any
// task completes.
func (s *Sim) Makespan() float64 {
	best := 0.0
	for _, t := range s.results {
		if t.CompletedAt > best {
			best = t.CompletedAt
		}
	}
	return best
}
