package market

import (
	"fmt"
	"sort"

	"hputune/internal/numeric"
)

// PhaseSeries are per-repetition latencies ordered by acceptance time:
// the x-axis the paper calls "Order" in Figures 3 and 5.
type PhaseSeries struct {
	AcceptEpochs []float64 // absolute acceptance times
	OnHold       []float64 // phase-1 latency per repetition
	Processing   []float64 // phase-2 latency per repetition
	Overall      []float64 // sum per repetition
}

// CollectPhases extracts ordered phase latencies from a finished run.
func CollectPhases(results []TaskResult) PhaseSeries {
	var recs []RepRecord
	for _, t := range results {
		recs = append(recs, t.Reps...)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Accepted < recs[j].Accepted })
	var s PhaseSeries
	for _, r := range recs {
		s.AcceptEpochs = append(s.AcceptEpochs, r.Accepted)
		s.OnHold = append(s.OnHold, r.OnHold())
		s.Processing = append(s.Processing, r.Processing())
		s.Overall = append(s.Overall, r.OnHold()+r.Processing())
	}
	return s
}

// Summary aggregates a finished run for reporting.
type Summary struct {
	Tasks        int
	Repetitions  int
	Makespan     float64
	MeanOnHold   float64
	MeanProcess  float64
	MeanOverall  float64
	CorrectRatio float64
	TotalPaid    int
}

// Summarize computes run aggregates.
func Summarize(results []TaskResult) Summary {
	var sum Summary
	onhold := numeric.NewKahan()
	proc := numeric.NewKahan()
	correct := 0
	for _, t := range results {
		sum.Tasks++
		if t.CompletedAt > sum.Makespan {
			sum.Makespan = t.CompletedAt
		}
		for _, r := range t.Reps {
			sum.Repetitions++
			onhold.Add(r.OnHold())
			proc.Add(r.Processing())
			sum.TotalPaid += r.Price
			if r.Correct {
				correct++
			}
		}
	}
	if sum.Repetitions > 0 {
		n := float64(sum.Repetitions)
		sum.MeanOnHold = onhold.Sum() / n
		sum.MeanProcess = proc.Sum() / n
		sum.MeanOverall = sum.MeanOnHold + sum.MeanProcess
		sum.CorrectRatio = float64(correct) / n
	}
	return sum
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("tasks=%d reps=%d makespan=%.3f onhold=%.3f proc=%.3f paid=%d correct=%.1f%%",
		s.Tasks, s.Repetitions, s.Makespan, s.MeanOnHold, s.MeanProcess, s.TotalPaid, 100*s.CorrectRatio)
}

// RepeatedMakespan runs fn (which must build, run and return a fresh
// simulation's makespan) rounds times and returns the mean makespan —
// the standard way experiments average over marketplace randomness.
func RepeatedMakespan(rounds int, fn func(round int) (float64, error)) (float64, error) {
	if rounds < 1 {
		return 0, fmt.Errorf("market: rounds must be >= 1, got %d", rounds)
	}
	acc := numeric.NewKahan()
	for i := 0; i < rounds; i++ {
		v, err := fn(i)
		if err != nil {
			return 0, fmt.Errorf("market: round %d: %w", i, err)
		}
		acc.Add(v)
	}
	return acc.Sum() / float64(rounds), nil
}
