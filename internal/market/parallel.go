package market

import (
	"fmt"

	"hputune/internal/conc"
	"hputune/internal/numeric"
	"hputune/internal/randx"
)

// A single Sim is event-ordered and single-goroutine by design; the
// parallel unit of the marketplace is the *replication* — independent
// rounds with derived seeds, the paper's way of averaging over market
// randomness. This file fans rounds across a bounded worker pool while
// keeping every round's seed, and therefore every aggregate, a pure
// function of the configuration.

// roundSeed derives round i's RNG seed from the base seed, so
// replications are decorrelated and depend only on (seed, round) —
// never on scheduling.
func roundSeed(seed uint64, round int) uint64 {
	return randx.Mix64(seed + (uint64(round)+1)*0x9e3779b97f4a7c15)
}

// eachRound runs fn(round) for every round on the shared bounded worker
// pool and returns the lowest-round error.
func eachRound(rounds, workers int, fn func(round int) error) error {
	if i, err := conc.Each(rounds, conc.Workers(workers), fn); err != nil {
		return fmt.Errorf("market: round %d: %w", i, err)
	}
	return nil
}

// RepeatedMakespanParallel is RepeatedMakespan with the rounds fanned
// across a bounded worker pool (workers <= 0 means GOMAXPROCS). fn must
// be safe for concurrent calls: each call has to build and drive its own
// Sim. Round results are combined in round order, so the mean is
// bit-for-bit the serial RepeatedMakespan of the same fn.
func RepeatedMakespanParallel(rounds, workers int, fn func(round int) (float64, error)) (float64, error) {
	if rounds < 1 {
		return 0, fmt.Errorf("market: rounds must be >= 1, got %d", rounds)
	}
	spans := make([]float64, rounds)
	err := eachRound(rounds, workers, func(i int) error {
		v, ferr := fn(i)
		if ferr != nil {
			return ferr
		}
		spans[i] = v
		return nil
	})
	if err != nil {
		return 0, err
	}
	acc := numeric.NewKahan()
	for _, v := range spans {
		acc.Add(v)
	}
	return acc.Sum() / float64(rounds), nil
}

// simBuffers recycles Sim backing storage across replication rounds.
// Each round owns one *Buffers from Get to Put, and nothing a round
// computes escapes its Sim (only the makespan scalar does), so the
// Buffers ownership contract holds trivially.
var simBuffers = conc.NewPool(func() *Buffers { return &Buffers{} })

// ReplicatedMakespans runs rounds independent simulations of the same
// task batch — round i uses cfg with its seed replaced by
// roundSeed(cfg.Seed, i) — across a bounded worker pool, and returns
// each round's makespan in round order. The slice is a pure function of
// (cfg, specs, rounds), independent of workers: the deterministic batch
// evaluation primitive for experiments and the engine's SimulateBatch.
func ReplicatedMakespans(cfg Config, specs []TaskSpec, rounds, workers int) ([]float64, error) {
	if rounds < 1 {
		return nil, fmt.Errorf("market: rounds must be >= 1, got %d", rounds)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("market: no task specs")
	}
	spans := make([]float64, rounds)
	err := eachRound(rounds, workers, func(i int) error {
		rcfg := cfg
		rcfg.Seed = roundSeed(cfg.Seed, i)
		buf := simBuffers.Get()
		defer simBuffers.Put(buf)
		sim, err := NewWithBuffers(rcfg, buf)
		if err != nil {
			return err
		}
		if err := sim.PostAll(specs); err != nil {
			return err
		}
		if _, err := sim.Run(); err != nil {
			return err
		}
		spans[i] = sim.Makespan()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return spans, nil
}
