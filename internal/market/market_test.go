package market

import (
	"fmt"
	"math"
	"testing"

	"hputune/internal/dist"
	"hputune/internal/numeric"
	"hputune/internal/pricing"
)

func testClass(name string, k, b, proc, acc float64) *TaskClass {
	return &TaskClass{Name: name, Accept: pricing.Linear{K: k, B: b}, ProcRate: proc, Accuracy: acc}
}

func specN(class *TaskClass, id string, reps, price int) TaskSpec {
	prices := make([]int, reps)
	for i := range prices {
		prices[i] = price
	}
	return TaskSpec{ID: id, Class: class, RepPrices: prices}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Mode: Mode(9)}); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := New(Config{Mode: ModeWorkerChoice}); err == nil {
		t.Error("worker-choice without arrival rate accepted")
	}
	if _, err := New(Config{WalkAwayWeight: -1}); err == nil {
		t.Error("negative walk-away weight accepted")
	}
	if _, err := New(Config{}); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestSpecValidation(t *testing.T) {
	c := testClass("c", 1, 1, 2, 1)
	if err := (TaskSpec{ID: "t", Class: c}).Validate(); err == nil {
		t.Error("no repetitions accepted")
	}
	if err := (TaskSpec{ID: "t", Class: c, RepPrices: []int{0}}).Validate(); err == nil {
		t.Error("zero price accepted")
	}
	bad := &TaskClass{Name: "bad", Accept: pricing.Linear{K: 1, B: 1}, ProcRate: 0, Accuracy: 1}
	if err := (TaskSpec{ID: "t", Class: bad, RepPrices: []int{1}}).Validate(); err == nil {
		t.Error("invalid class accepted")
	}
	if err := (TaskSpec{ID: "t", Class: c, RepPrices: []int{1, 2}}).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestRunWithoutTasks(t *testing.T) {
	s, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Error("empty run accepted")
	}
}

func TestIndependentModeSingleTaskTrace(t *testing.T) {
	c := testClass("c", 1, 1, 2, 1)
	s, err := New(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Post(specN(c, "t0", 3, 2)); err != nil {
		t.Fatal(err)
	}
	results, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	res := results[0]
	if len(res.Reps) != 3 {
		t.Fatalf("got %d repetition records", len(res.Reps))
	}
	// Repetitions are sequential: each posts when the previous finishes.
	for i, r := range res.Reps {
		if r.Rep != i {
			t.Errorf("record %d has rep index %d", i, r.Rep)
		}
		if r.Accepted < r.PostedAt || r.Done < r.Accepted {
			t.Errorf("rep %d: inconsistent times %+v", i, r)
		}
		if i > 0 && r.PostedAt != res.Reps[i-1].Done {
			t.Errorf("rep %d posted at %v, previous done at %v (must be sequential)",
				i, r.PostedAt, res.Reps[i-1].Done)
		}
	}
	if res.CompletedAt != res.Reps[2].Done {
		t.Error("task completion time mismatch")
	}
	if res.Latency() <= 0 {
		t.Error("non-positive task latency")
	}
}

func TestIndependentModeLatencyMatchesModel(t *testing.T) {
	// Mean on-hold latency over many single-rep tasks at price c must be
	// 1/λo(c); processing must be 1/λp.
	c := testClass("c", 2, 1, 4, 1) // λo(3) = 7, λp = 4
	const n = 20000
	s, err := New(Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := s.Post(specN(c, fmt.Sprintf("t%d", i), 1, 3)); err != nil {
			t.Fatal(err)
		}
	}
	results, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(results)
	if math.Abs(sum.MeanOnHold-1.0/7) > 0.005 {
		t.Errorf("mean on-hold %v, want %v", sum.MeanOnHold, 1.0/7)
	}
	if math.Abs(sum.MeanProcess-0.25) > 0.01 {
		t.Errorf("mean processing %v, want 0.25", sum.MeanProcess)
	}
	if sum.Tasks != n || sum.Repetitions != n {
		t.Errorf("summary counts wrong: %+v", sum)
	}
	if sum.TotalPaid != 3*n {
		t.Errorf("total paid %d, want %d", sum.TotalPaid, 3*n)
	}
}

func TestHigherPriceAcceptsFaster(t *testing.T) {
	// The core premise: raising the reward shortens phase 1 and leaves
	// phase 2 unchanged.
	c := testClass("c", 1, 0.5, 3, 1)
	meanFor := func(price int) (onhold, proc float64) {
		s, err := New(Config{Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8000; i++ {
			if err := s.Post(specN(c, fmt.Sprintf("t%d", i), 1, price)); err != nil {
				t.Fatal(err)
			}
		}
		results, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		sum := Summarize(results)
		return sum.MeanOnHold, sum.MeanProcess
	}
	oh1, pr1 := meanFor(1)
	oh5, pr5 := meanFor(5)
	if oh5 >= oh1 {
		t.Errorf("on-hold at price 5 (%v) not faster than price 1 (%v)", oh5, oh1)
	}
	if math.Abs(pr5-pr1) > 0.02 {
		t.Errorf("processing changed with price: %v vs %v", pr1, pr5)
	}
}

func TestWorkerChoiceModeCompletesAndCompetes(t *testing.T) {
	c := testClass("c", 1, 1, 2, 1)
	s, err := New(Config{Mode: ModeWorkerChoice, ArrivalRate: 50, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := s.Post(specN(c, fmt.Sprintf("t%d", i), 2, 3)); err != nil {
			t.Fatal(err)
		}
	}
	results, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 30 {
		t.Fatalf("completed %d/30 tasks", len(results))
	}
	// Worker ids must be assigned in worker-choice mode.
	sawWorker := false
	for _, res := range results {
		for _, r := range res.Reps {
			if r.WorkerID >= 0 {
				sawWorker = true
			}
		}
	}
	if !sawWorker {
		t.Error("no worker ids recorded in worker-choice mode")
	}
}

func TestWorkerChoicePrefersExpensiveTasks(t *testing.T) {
	// With a shared worker stream, the higher-priced task class should be
	// accepted faster on average.
	c := testClass("c", 3, 0.1, 5, 1)
	s, err := New(Config{Mode: ModeWorkerChoice, ArrivalRate: 20, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	for i := 0; i < n; i++ {
		price := 1
		if i%2 == 0 {
			price = 8
		}
		if err := s.Post(specN(c, fmt.Sprintf("t%d-%d", i, price), 1, price)); err != nil {
			t.Fatal(err)
		}
	}
	results, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	cheap := numeric.NewKahan()
	rich := numeric.NewKahan()
	nc, nr := 0, 0
	for _, res := range results {
		for _, r := range res.Reps {
			if r.Price == 8 {
				rich.Add(r.OnHold())
				nr++
			} else {
				cheap.Add(r.OnHold())
				nc++
			}
		}
	}
	if nr == 0 || nc == 0 {
		t.Fatal("price classes missing from trace")
	}
	if rich.Sum()/float64(nr) >= cheap.Sum()/float64(nc) {
		t.Errorf("expensive tasks waited longer (%v) than cheap (%v)",
			rich.Sum()/float64(nr), cheap.Sum()/float64(nc))
	}
}

func TestMaxTimeHorizon(t *testing.T) {
	c := testClass("c", 0.0001, 0.0001, 2, 1) // astronomically slow acceptance
	s, err := New(Config{Seed: 3, MaxTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Post(specN(c, "slow", 1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Error("horizon violation not reported")
	}
}

func TestDeterministicRuns(t *testing.T) {
	c := testClass("c", 1, 1, 2, 0.8)
	run := func() Summary {
		s, err := New(Config{Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if err := s.Post(specN(c, fmt.Sprintf("t%d", i), 3, 2)); err != nil {
				t.Fatal(err)
			}
		}
		results, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return Summarize(results)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed produced different summaries:\n%+v\n%+v", a, b)
	}
}

func TestAccuracySampling(t *testing.T) {
	c := testClass("c", 1, 1, 2, 0.7)
	s, err := New(Config{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if err := s.Post(specN(c, fmt.Sprintf("t%d", i), 1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	results, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(results)
	if math.Abs(sum.CorrectRatio-0.7) > 0.03 {
		t.Errorf("correct ratio %v, want ≈0.7", sum.CorrectRatio)
	}
}

func TestCollectPhasesOrdering(t *testing.T) {
	c := testClass("c", 1, 1, 2, 1)
	s, err := New(Config{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Post(specN(c, fmt.Sprintf("t%d", i), 2, 2)); err != nil {
			t.Fatal(err)
		}
	}
	results, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	ph := CollectPhases(results)
	if len(ph.OnHold) != 40 {
		t.Fatalf("got %d entries, want 40", len(ph.OnHold))
	}
	for i := 1; i < len(ph.AcceptEpochs); i++ {
		if ph.AcceptEpochs[i] < ph.AcceptEpochs[i-1] {
			t.Fatal("acceptance epochs not sorted")
		}
	}
	for i := range ph.Overall {
		if math.Abs(ph.Overall[i]-(ph.OnHold[i]+ph.Processing[i])) > 1e-12 {
			t.Fatal("overall != onhold + processing")
		}
	}
}

func TestAllRecordsSorted(t *testing.T) {
	c := testClass("c", 1, 1, 2, 1)
	s, err := New(Config{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		if err := s.Post(specN(c, fmt.Sprintf("t%d", i), 2, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	recs := s.AllRecords()
	for i := 1; i < len(recs); i++ {
		if recs[i].Accepted < recs[i-1].Accepted {
			t.Fatal("AllRecords not sorted by acceptance")
		}
	}
	if s.Makespan() <= 0 {
		t.Error("non-positive makespan after completed run")
	}
}

func TestRepeatedMakespan(t *testing.T) {
	got, err := RepeatedMakespan(4, func(round int) (float64, error) {
		return float64(round + 1), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 {
		t.Errorf("mean = %v, want 2.5", got)
	}
	if _, err := RepeatedMakespan(0, nil); err == nil {
		t.Error("zero rounds accepted")
	}
	if _, err := RepeatedMakespan(1, func(int) (float64, error) {
		return 0, fmt.Errorf("boom")
	}); err == nil {
		t.Error("round error not propagated")
	}
}

func TestPoissonArrivalLinearityWorkerChoice(t *testing.T) {
	// Fig 3's observation: acceptance epochs grow linearly in order. In
	// worker-choice mode with no walk-away, acceptance epochs are exactly
	// the Poisson worker arrivals, so the order-epoch regression must be
	// strongly linear.
	c := testClass("c", 1, 1, 1000, 1) // processing ≈ 0 (probe-style)
	s, err := New(Config{Mode: ModeWorkerChoice, ArrivalRate: 5, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	for i := 0; i < n; i++ {
		if err := s.Post(specN(c, fmt.Sprintf("t%d", i), 1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	results, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	ph := CollectPhases(results)
	xs := make([]float64, len(ph.AcceptEpochs))
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	fit, err := numeric.FitLinear(xs, ph.AcceptEpochs)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.98 {
		t.Errorf("arrival epochs not linear in order: R² = %v", fit.R2)
	}
}

func TestPoissonArrivalLinearityEarlyIndependent(t *testing.T) {
	// In independent mode the epochs are order statistics of n iid
	// exponentials — a death process that is only locally homogeneous.
	// The paper's Fig 3 looks at the first 20 arrivals with many open
	// tasks, where the effective rate (n−i)·λ ≈ n·λ is near constant, so
	// the early prefix must still be linear.
	c := testClass("c", 1, 1, 1000, 1)
	s, err := New(Config{Seed: 59})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		if err := s.Post(specN(c, fmt.Sprintf("t%d", i), 1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	results, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	ph := CollectPhases(results)
	const prefix = 30
	xs := make([]float64, prefix)
	ys := make([]float64, prefix)
	for i := 0; i < prefix; i++ {
		xs[i] = float64(i + 1)
		ys[i] = ph.AcceptEpochs[i]
	}
	fit, err := numeric.FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.9 {
		t.Errorf("early arrival epochs not linear: R² = %v", fit.R2)
	}
}

func TestAbandonConfigValidation(t *testing.T) {
	if _, err := New(Config{AbandonProb: -0.1}); err == nil {
		t.Error("negative abandon probability accepted")
	}
	if _, err := New(Config{AbandonProb: 1}); err == nil {
		t.Error("abandon probability 1 accepted")
	}
	if _, err := New(Config{AbandonProb: 0.2}); err == nil {
		t.Error("abandonment without an abandon rate accepted")
	}
	if _, err := New(Config{AbandonProb: 0.2, AbandonRate: 3}); err != nil {
		t.Errorf("valid abandonment config rejected: %v", err)
	}
}

func TestAbandonmentReposts(t *testing.T) {
	class := testClass("vote", 1, 1, 2, 1)
	sim, err := New(Config{Seed: 5, AbandonProb: 0.4, AbandonRate: 5})
	if err != nil {
		t.Fatal(err)
	}
	const tasks = 60
	for i := 0; i < tasks; i++ {
		if err := sim.Post(specN(class, fmt.Sprintf("t%d", i), 2, 3)); err != nil {
			t.Fatal(err)
		}
	}
	results, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Every task still completes every repetition.
	if len(results) != tasks {
		t.Fatalf("completed %d of %d tasks", len(results), tasks)
	}
	for _, res := range results {
		if len(res.Reps) != 2 {
			t.Errorf("task %s recorded %d repetitions, want 2", res.TaskID, len(res.Reps))
		}
	}
	// With p=0.4, acceptances follow a geometric retry: expected
	// abandons ≈ reps·p/(1−p) = 120·(2/3) = 80. Allow a wide band.
	ab := sim.Abandoned()
	if ab < 40 || ab > 130 {
		t.Errorf("abandoned %d acceptances, expected roughly 80", ab)
	}
}

func TestAbandonmentSlowsCompletion(t *testing.T) {
	class := testClass("vote", 1, 1, 2, 1)
	run := func(prob float64) float64 {
		cfg := Config{Seed: 9}
		if prob > 0 {
			cfg.AbandonProb = prob
			cfg.AbandonRate = 4
		}
		const rounds = 30
		total := 0.0
		for round := 0; round < rounds; round++ {
			cfg.Seed = 9 + uint64(round)
			sim, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 40; i++ {
				if err := sim.Post(specN(class, fmt.Sprintf("t%d", i), 1, 3)); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := sim.Run(); err != nil {
				t.Fatal(err)
			}
			total += sim.Makespan()
		}
		return total / rounds
	}
	clean := run(0)
	flaky := run(0.5)
	if flaky <= clean {
		t.Errorf("abandonment did not slow completion: %v <= %v", flaky, clean)
	}
}

func TestAbandonmentDeterministic(t *testing.T) {
	class := testClass("vote", 1, 1, 2, 1)
	run := func() (float64, int) {
		sim, err := New(Config{Seed: 31, AbandonProb: 0.3, AbandonRate: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if err := sim.Post(specN(class, fmt.Sprintf("t%d", i), 3, 2)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return sim.Makespan(), sim.Abandoned()
	}
	m1, a1 := run()
	m2, a2 := run()
	if m1 != m2 || a1 != a2 {
		t.Errorf("non-deterministic abandonment: (%v, %d) vs (%v, %d)", m1, a1, m2, a2)
	}
}

func TestAbandonmentWorkerChoice(t *testing.T) {
	// Abandonment must also work in the worker-choice mechanism: the
	// reopened repetition becomes visible to later arrivals.
	class := testClass("vote", 1, 1, 2, 1)
	sim, err := New(Config{
		Mode:        ModeWorkerChoice,
		ArrivalRate: 30,
		Seed:        17,
		AbandonProb: 0.3,
		AbandonRate: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		if err := sim.Post(specN(class, fmt.Sprintf("t%d", i), 2, 3)); err != nil {
			t.Fatal(err)
		}
	}
	results, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 15 {
		t.Fatalf("completed %d of 15 tasks", len(results))
	}
}

func TestCustomProcessingDistribution(t *testing.T) {
	// A degenerate-ish narrow log-normal makes processing nearly
	// deterministic: observed processing latencies must concentrate
	// around its mean instead of the exponential's wide spread.
	ln, err := dist.LogNormalFromMoments(0.5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	class := &TaskClass{
		Name:     "narrow",
		Accept:   pricing.Linear{K: 1, B: 1},
		Proc:     ln,
		Accuracy: 1,
	}
	if err := class.Validate(); err != nil {
		t.Fatalf("class with Proc but no ProcRate rejected: %v", err)
	}
	sim, err := New(Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := sim.Post(specN(class, fmt.Sprintf("t%d", i), 1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	results, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		p := res.Reps[0].Processing()
		if p < 0.3 || p > 0.8 {
			t.Errorf("processing %v outside the narrow band around 0.5", p)
		}
	}
}

func TestProcessingDistributionMean(t *testing.T) {
	// A two-component hyperexponential's observed mean must match.
	he, err := dist.NewHyperExponential([]float64{0.8, 0.2}, []float64{4, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	class := &TaskClass{
		Name:     "mixed",
		Accept:   pricing.Linear{K: 1, B: 1},
		Proc:     he,
		Accuracy: 1,
	}
	sim, err := New(Config{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	for i := 0; i < n; i++ {
		if err := sim.Post(specN(class, fmt.Sprintf("t%d", i), 1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	results, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, res := range results {
		sum += res.Reps[0].Processing()
	}
	got := sum / n
	want := he.Mean()
	if math.Abs(got-want) > 0.05*want {
		t.Errorf("observed processing mean %v, want %v", got, want)
	}
}
