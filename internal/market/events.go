package market

// eventKind discriminates scheduled events.
type eventKind int

const (
	evAccept   eventKind = iota // an open repetition is taken (ModeIndependent)
	evComplete                  // an accepted repetition's answer returns
	evArrival                   // a worker arrives (ModeWorkerChoice)
	evAbandon                   // an accepting worker returns the repetition unfinished
)

// event is one scheduled occurrence. seq breaks time ties deterministically
// in insertion order, keeping runs reproducible.
type event struct {
	at   float64
	seq  uint64
	kind eventKind
	task int // index into sim.tasks (evAccept, evComplete)
}

// less is the heap order: earliest time first, insertion order on ties.
// With seq unique per event this is a strict total order, so the pop
// sequence is a pure function of the pushed events — independent of the
// heap's internal layout.
func (e event) less(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventQueue is a binary min-heap on (at, seq), laid out directly in a
// slice. It replaces container/heap, whose any-typed Push/Pop box every
// event on the garbage-collected heap — at one box per scheduled and one
// per popped event, the former top allocation site of the whole
// solve→simulate→re-fit loop (see docs/PERFORMANCE.md). Pushing into
// spare capacity and popping in place allocate nothing.
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }

// push inserts e, sifting it up to its heap position.
func (q *eventQueue) push(e event) {
	*q = append(*q, e)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].less(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the minimum event. The caller guarantees the
// queue is non-empty.
func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	*q = h[:last]
	h = h[:last]
	// Sift the relocated root down.
	i := 0
	for {
		left := 2*i + 1
		if left >= last {
			break
		}
		smallest := left
		if right := left + 1; right < last && h[right].less(h[left]) {
			smallest = right
		}
		if !h[smallest].less(h[i]) {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top
}
