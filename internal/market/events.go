package market

import "container/heap"

// eventKind discriminates scheduled events.
type eventKind int

const (
	evAccept   eventKind = iota // an open repetition is taken (ModeIndependent)
	evComplete                  // an accepted repetition's answer returns
	evArrival                   // a worker arrives (ModeWorkerChoice)
	evAbandon                   // an accepting worker returns the repetition unfinished
)

// event is one scheduled occurrence. seq breaks time ties deterministically
// in insertion order, keeping runs reproducible.
type event struct {
	at   float64
	seq  uint64
	kind eventKind
	task int // index into sim.tasks (evAccept, evComplete)
}

// eventQueue is a binary min-heap on (at, seq).
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

var _ heap.Interface = (*eventQueue)(nil)
