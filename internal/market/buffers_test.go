package market

import (
	"fmt"
	"reflect"
	"testing"

	"hputune/internal/pricing"
)

// bufferScenario is one simulation shape the reuse parity sweep drives.
type bufferScenario struct {
	name  string
	cfg   Config
	specs func() []TaskSpec
}

func bufferScenarios() []bufferScenario {
	class := &TaskClass{Name: "t", Accept: pricing.Linear{K: 2, B: 0.5}, ProcRate: 2, Accuracy: 0.9}
	batch := func(tasks, reps, price int) func() []TaskSpec {
		return func() []TaskSpec {
			specs := make([]TaskSpec, tasks)
			for i := range specs {
				prices := make([]int, reps)
				for r := range prices {
					prices[r] = price
				}
				specs[i] = TaskSpec{ID: fmt.Sprintf("t-%03d", i), Class: class, RepPrices: prices}
			}
			return specs
		}
	}
	return []bufferScenario{
		{name: "independent", cfg: Config{Seed: 11}, specs: batch(40, 3, 2)},
		{name: "independent-deep-reps", cfg: Config{Seed: 12}, specs: batch(10, 8, 3)},
		{name: "worker-choice", cfg: Config{Mode: ModeWorkerChoice, ArrivalRate: 25, Seed: 13}, specs: batch(30, 3, 2)},
		{name: "abandonment", cfg: Config{AbandonProb: 0.3, AbandonRate: 4, Seed: 14}, specs: batch(25, 4, 2)},
		// A shape change mid-reuse: the slabs harvested from a larger run
		// must serve a smaller one (and vice versa) without mixing state.
		{name: "small-after-large", cfg: Config{Seed: 15}, specs: batch(5, 2, 2)},
	}
}

// runScenario drives one scenario on the given buffers (nil = fresh
// allocation) and deep-copies everything the Sim returned by reference,
// so later buffer reuse cannot retroactively change what we compare.
func runScenario(t *testing.T, sc bufferScenario, buf *Buffers) ([]TaskResult, []RepRecord, float64) {
	t.Helper()
	sim, err := NewWithBuffers(sc.cfg, buf)
	if err != nil {
		t.Fatalf("%s: New: %v", sc.name, err)
	}
	if err := sim.PostAll(sc.specs()); err != nil {
		t.Fatalf("%s: PostAll: %v", sc.name, err)
	}
	results, err := sim.Run()
	if err != nil {
		t.Fatalf("%s: Run: %v", sc.name, err)
	}
	copied := make([]TaskResult, len(results))
	for i, r := range results {
		r.Reps = append([]RepRecord(nil), r.Reps...)
		copied[i] = r
	}
	records := append([]RepRecord(nil), sim.AllRecords()...)
	return copied, records, sim.Makespan()
}

// TestBuffersReuseParity pins the reuse contract: a Sim recycling one
// Buffers across heterogeneous runs produces bit-identical results,
// records and makespans to fresh Sims — buffer reuse is a pure
// allocation optimization, never a behavioural one.
func TestBuffersReuseParity(t *testing.T) {
	scenarios := bufferScenarios()
	var buf Buffers
	// Two passes over every scenario: the second pass reuses slabs
	// populated by different shapes, the harder case.
	for pass := 0; pass < 2; pass++ {
		for _, sc := range scenarios {
			wantResults, wantRecords, wantSpan := runScenario(t, sc, nil)
			gotResults, gotRecords, gotSpan := runScenario(t, sc, &buf)
			if gotSpan != wantSpan {
				t.Errorf("pass %d %s: makespan %v with buffers, %v fresh", pass, sc.name, gotSpan, wantSpan)
			}
			if !reflect.DeepEqual(gotResults, wantResults) {
				t.Errorf("pass %d %s: results diverge under buffer reuse", pass, sc.name)
			}
			if !reflect.DeepEqual(gotRecords, wantRecords) {
				t.Errorf("pass %d %s: flattened records diverge under buffer reuse", pass, sc.name)
			}
		}
	}
}

// TestAppendRecordsRecycles pins AppendRecords growth semantics: the
// returned slice extends dst in place when capacity allows and matches
// AllRecords contents exactly.
func TestAppendRecordsRecycles(t *testing.T) {
	sc := bufferScenarios()[0]
	sim, err := New(sc.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.PostAll(sc.specs()); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.AllRecords()
	scratch := make([]RepRecord, 0, len(want)+16)
	got := sim.AppendRecords(scratch)
	if &got[0] != &scratch[:1][0] {
		t.Error("AppendRecords reallocated despite sufficient capacity")
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("AppendRecords contents differ from AllRecords")
	}
}
