package market

import (
	"testing"

	"hputune/internal/pricing"
)

func parallelTestSpecs() (*TaskClass, []TaskSpec) {
	class := &TaskClass{
		Name:     "par",
		Accept:   pricing.Linear{K: 1, B: 1},
		ProcRate: 2,
		Accuracy: 1,
	}
	specs := make([]TaskSpec, 20)
	for i := range specs {
		specs[i] = TaskSpec{ID: "t", Class: class, RepPrices: []int{2, 2}}
	}
	return class, specs
}

func TestRepeatedMakespanParallelMatchesSerial(t *testing.T) {
	_, specs := parallelTestSpecs()
	fn := func(round int) (float64, error) {
		sim, err := New(Config{Seed: roundSeed(9, round)})
		if err != nil {
			return 0, err
		}
		if err := sim.PostAll(specs); err != nil {
			return 0, err
		}
		if _, err := sim.Run(); err != nil {
			return 0, err
		}
		return sim.Makespan(), nil
	}
	serial, err := RepeatedMakespan(16, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 0} {
		got, err := RepeatedMakespanParallel(16, workers, fn)
		if err != nil {
			t.Fatal(err)
		}
		if got != serial {
			t.Errorf("workers=%d: %v differs from serial %v", workers, got, serial)
		}
	}
}

func TestReplicatedMakespansDeterministic(t *testing.T) {
	_, specs := parallelTestSpecs()
	cfg := Config{Seed: 11}
	base, err := ReplicatedMakespans(cfg, specs, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 0} {
		got, err := ReplicatedMakespans(cfg, specs, 12, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d round %d: %v differs from %v", workers, i, got[i], base[i])
			}
		}
	}
	// Rounds must be decorrelated, not copies of one run.
	same := 0
	for i := 1; i < len(base); i++ {
		if base[i] == base[0] {
			same++
		}
	}
	if same == len(base)-1 {
		t.Error("all rounds produced the identical makespan")
	}
}

func TestReplicatedMakespansErrors(t *testing.T) {
	_, specs := parallelTestSpecs()
	if _, err := ReplicatedMakespans(Config{}, specs, 0, 1); err == nil {
		t.Error("zero rounds accepted")
	}
	if _, err := ReplicatedMakespans(Config{}, nil, 3, 1); err == nil {
		t.Error("empty specs accepted")
	}
	if _, err := RepeatedMakespanParallel(0, 1, nil); err == nil {
		t.Error("zero rounds accepted")
	}
}
