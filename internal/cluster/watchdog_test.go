package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// healthzServer serves only /v1/healthz, the surface CheckHealth probes.
func healthzServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/healthz" {
			http.NotFound(w, r)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// promoteRecorder is a promote callback that counts calls and hands out
// a fixed replacement URL (or error).
type promoteRecorder struct {
	mu    sync.Mutex
	calls []string
	url   string
	err   error
}

func (p *promoteRecorder) promote(name string) (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls = append(p.calls, name)
	return p.url, p.err
}

func (p *promoteRecorder) count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.calls)
}

func TestWatchdogPromotesAfterThreshold(t *testing.T) {
	t.Parallel()
	live := healthzServer(t)
	dying := healthzServer(t)
	replica := healthzServer(t)

	cl := New(Config{})
	if err := cl.AddNode("n0", live.URL); err != nil {
		t.Fatal(err)
	}
	if err := cl.AddNode("n1", dying.URL); err != nil {
		t.Fatal(err)
	}

	rec := &promoteRecorder{url: replica.URL}
	var events []string
	wd := NewWatchdog(cl, nil, 2, rec.promote, func(format string, args ...any) {
		events = append(events, fmt.Sprintf(format, args...))
	})
	ctx := context.Background()

	// All healthy: no strikes, no promotion.
	wd.Tick(ctx)
	if got := rec.count(); got != 0 {
		t.Fatalf("promote called %d times on a healthy cluster", got)
	}

	dying.Close()

	// Strike one: below threshold, but the node must leave the healthy
	// pool immediately.
	wd.Tick(ctx)
	if got := rec.count(); got != 0 {
		t.Fatalf("promoted after 1 strike with threshold 2 (%d calls)", got)
	}
	if h := cl.Healthy(); len(h) != 1 || h[0] != "n0" {
		t.Fatalf("healthy pool after first strike = %v, want [n0]", h)
	}

	// Strike two: promotion fires and the node repoints at the replica.
	wd.Tick(ctx)
	if got := rec.count(); got != 1 {
		t.Fatalf("promote called %d times at threshold, want 1", got)
	}
	var n1 NodeStatus
	for _, n := range cl.Nodes() {
		if n.Name == "n1" {
			n1 = n
		}
	}
	if !n1.Promoted || !n1.Healthy || n1.URL != replica.URL {
		t.Fatalf("n1 after promotion = %+v, want promoted+healthy at %s", n1, replica.URL)
	}
	if len(events) == 0 {
		t.Fatal("no events emitted for a promotion")
	}

	// The replica answers probes, so later ticks stay quiet.
	wd.Tick(ctx)
	if got := rec.count(); got != 1 {
		t.Fatalf("promote re-fired on a healthy promoted node (%d calls)", got)
	}
}

func TestWatchdogNeverPromotesTwice(t *testing.T) {
	t.Parallel()
	dying := healthzServer(t)
	cl := New(Config{})
	if err := cl.AddNode("n0", dying.URL); err != nil {
		t.Fatal(err)
	}

	// The "replacement" is itself dead, so the node keeps failing probes
	// after the repoint — the Promoted flag alone must stop a second
	// promotion.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	rec := &promoteRecorder{url: dead.URL}
	wd := NewWatchdog(cl, nil, 1, rec.promote, nil)
	ctx := context.Background()

	dying.Close()
	for i := 0; i < 4; i++ {
		wd.Tick(ctx)
	}
	if got := rec.count(); got != 1 {
		t.Fatalf("promote called %d times for one node, want exactly 1", got)
	}
}

func TestWatchdogRetriesFailedPromotion(t *testing.T) {
	t.Parallel()
	dying := healthzServer(t)
	cl := New(Config{})
	if err := cl.AddNode("n0", dying.URL); err != nil {
		t.Fatal(err)
	}

	rec := &promoteRecorder{err: fmt.Errorf("replica not ready")}
	var events []string
	wd := NewWatchdog(cl, nil, 1, rec.promote, func(format string, args ...any) {
		events = append(events, fmt.Sprintf(format, args...))
	})
	ctx := context.Background()

	dying.Close()
	wd.Tick(ctx)
	wd.Tick(ctx)
	// A failed promotion leaves the node unpromoted and retries next tick.
	if got := rec.count(); got != 2 {
		t.Fatalf("promote retried %d times, want 2", got)
	}
	for _, n := range cl.Nodes() {
		if n.Promoted {
			t.Fatalf("node marked promoted despite promote errors: %+v", n)
		}
	}
	found := false
	for _, e := range events {
		if e == "promote n0: replica not ready" {
			found = true
		}
	}
	if !found {
		t.Fatalf("promotion failure not surfaced in events: %q", events)
	}
}

func TestWatchdogRepointFailureSurfaces(t *testing.T) {
	t.Parallel()
	dying := healthzServer(t)
	cl := New(Config{})
	if err := cl.AddNode("n0", dying.URL); err != nil {
		t.Fatal(err)
	}

	// The promote callback removes the node before returning, so the
	// repoint hits an unknown member — the error must surface as an
	// event, not a panic or silent success.
	var events []string
	wd := NewWatchdog(cl, nil, 1, func(name string) (string, error) {
		cl.RemoveNode(name)
		return "http://127.0.0.1:1", nil
	}, func(format string, args ...any) {
		events = append(events, fmt.Sprintf(format, args...))
	})

	dying.Close()
	wd.Tick(context.Background())
	found := false
	for _, e := range events {
		if e == `promote n0: cluster: repoint unknown node "n0"` {
			found = true
		}
	}
	if !found {
		t.Fatalf("repoint failure not surfaced in events: %q", events)
	}
}

func TestWatchdogZeroThresholdOnlyFlagsHealth(t *testing.T) {
	t.Parallel()
	dying := healthzServer(t)
	cl := New(Config{})
	if err := cl.AddNode("n0", dying.URL); err != nil {
		t.Fatal(err)
	}
	rec := &promoteRecorder{url: "http://unused"}
	wd := NewWatchdog(cl, nil, 0, rec.promote, nil)
	ctx := context.Background()

	dying.Close()
	for i := 0; i < 3; i++ {
		wd.Tick(ctx)
	}
	if got := rec.count(); got != 0 {
		t.Fatalf("threshold 0 promoted anyway (%d calls)", got)
	}
	if h := cl.Healthy(); len(h) != 0 {
		t.Fatalf("dead node still in healthy pool: %v", h)
	}
}

func TestWatchdogRunLoop(t *testing.T) {
	t.Parallel()
	dying := healthzServer(t)
	replica := healthzServer(t)
	cl := New(Config{})
	if err := cl.AddNode("n0", dying.URL); err != nil {
		t.Fatal(err)
	}

	promoted := make(chan string, 1)
	wd := NewWatchdog(cl, nil, 1, func(name string) (string, error) {
		select {
		case promoted <- name:
		default:
		}
		return replica.URL, nil
	}, nil)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		wd.Run(ctx, time.Millisecond)
	}()

	dying.Close()
	select {
	case name := <-promoted:
		if name != "n0" {
			t.Fatalf("promoted %q, want n0", name)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run loop never promoted the dead node")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run loop did not stop on context cancel")
	}
}

func TestClusterMembershipEdges(t *testing.T) {
	t.Parallel()
	cl := New(Config{})
	if err := cl.Repoint("ghost", "http://x"); err == nil {
		t.Fatal("Repoint on an unknown node must fail")
	}
	if url, ok := cl.NodeURL("ghost"); ok || url != "" {
		t.Fatalf("NodeURL on an unknown node = (%q, %v), want (\"\", false)", url, ok)
	}
	// SetHealthy on an unknown name is a no-op, not a panic.
	cl.SetHealthy("ghost", false)
	if err := cl.AddNode("n0", "http://a"); err != nil {
		t.Fatal(err)
	}
	// Re-adding updates the URL without disturbing the ring.
	if err := cl.AddNode("n0", "http://b"); err != nil {
		t.Fatal(err)
	}
	if url, _ := cl.NodeURL("n0"); url != "http://b" {
		t.Fatalf("re-add left URL %q, want http://b", url)
	}
	if owner := cl.Place("anything"); owner != "n0" {
		t.Fatalf("single-node cluster placed key on %q", owner)
	}
}

func TestShipErrorMessage(t *testing.T) {
	t.Parallel()
	err := &ShipError{Offset: 42, Want: 7, Got: 9}
	want := "cluster: shipped WAL breaks contiguity at byte 42: got seq 9, want 7"
	if err.Error() != want {
		t.Fatalf("ShipError.Error() = %q, want %q", err.Error(), want)
	}
}
