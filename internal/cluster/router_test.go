package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hputune/internal/server"
)

// testNode is one in-memory htuned behind an httptest listener.
type testNode struct {
	name string
	srv  *server.Server
	ts   *httptest.Server
}

// newTestCluster spins up n in-memory nodes and a router over them.
func newTestCluster(t *testing.T, n int) (*Cluster, *Router, *httptest.Server, []testNode) {
	t.Helper()
	cl := New(Config{})
	nodes := make([]testNode, n)
	for i := range nodes {
		name := fmt.Sprintf("n%d", i)
		s, err := server.New(server.Config{Node: name})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		nodes[i] = testNode{name: name, srv: s, ts: ts}
		if err := cl.AddNode(name, ts.URL); err != nil {
			t.Fatal(err)
		}
	}
	rt := NewRouter(cl, nil)
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	return cl, rt, rts, nodes
}

func postDoc(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

const routerSolveDoc = `{"budget": 50, "groups": [
  {"name": "g", "tasks": 5, "reps": 2, "procRate": 2.0,
   "model": {"kind": "linear", "k": 1, "b": 1}}]}`

const routerCampaignDoc = `{"campaign": {"name": "rc", "roundBudget": 40, "rounds": 2,
  "epsilon": 0.5, "seed": 5,
  "prior": {"kind": "linear", "k": 1, "b": 1},
  "groups": [{"name": "g", "tasks": 4, "reps": 2, "procRate": 2, "true": {"kind": "linear", "k": 1, "b": 1}}]}}`

func TestRouterRoundRobinSpreadsSolves(t *testing.T) {
	_, _, rts, nodes := newTestCluster(t, 3)
	for i := 0; i < 9; i++ {
		resp, raw := postDoc(t, rts.URL+"/v1/solve", routerSolveDoc)
		if resp.StatusCode != 200 {
			t.Fatalf("solve %d: status %d: %s", i, resp.StatusCode, raw)
		}
	}
	for _, n := range nodes {
		if got := n.srv.Metrics().Serve.Solves; got != 3 {
			t.Fatalf("node %s served %d solves, want 3", n.name, got)
		}
	}
}

func TestRouterScatterAndFetchCampaigns(t *testing.T) {
	cl, _, rts, nodes := newTestCluster(t, 3)
	resp, raw := postDoc(t, rts.URL+"/v1/campaigns", `{"fleet": {"preset": "paper", "seed": 11}}`)
	if resp.StatusCode != 202 {
		t.Fatalf("start fleet: status %d: %s", resp.StatusCode, raw)
	}
	var started server.CampaignStartResponse
	if err := json.Unmarshal(raw, &started); err != nil {
		t.Fatal(err)
	}
	if len(started.IDs) < 8 {
		t.Fatalf("fleet started %d campaigns", len(started.IDs))
	}
	owners := make(map[string]bool)
	for _, id := range started.IDs {
		node, _, ok := splitID(id)
		if !ok {
			t.Fatalf("id %q has no node prefix", id)
		}
		if _, known := cl.NodeURL(node); !known {
			t.Fatalf("id %q names unknown node", id)
		}
		owners[node] = true
		// Every id must resolve through the router and carry the
		// cluster-wide id back.
		resp, err := http.Get(rts.URL + "/v1/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var got server.CampaignGetResponse
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 || got.ID != id {
			t.Fatalf("get %s: status %d id %q", id, resp.StatusCode, got.ID)
		}
	}
	if len(owners) < 2 {
		t.Fatalf("8-campaign fleet landed on %d node(s); the ring should spread it", len(owners))
	}
	// The cluster-wide list carries every id.
	resp2, err := http.Get(rts.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var list server.CampaignListResponse
	if err := json.NewDecoder(resp2.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	listed := make(map[string]bool)
	for _, sum := range list.Campaigns {
		listed[sum.ID] = true
	}
	for _, id := range started.IDs {
		if !listed[id] {
			t.Fatalf("id %s missing from cluster list %v", id, list.Campaigns)
		}
	}
	_ = nodes
}

func TestRouterScatterIsDeterministic(t *testing.T) {
	cl, _, rts, _ := newTestCluster(t, 3)
	resp, raw := postDoc(t, rts.URL+"/v1/campaigns", routerCampaignDoc)
	if resp.StatusCode != 202 {
		t.Fatalf("start: %d: %s", resp.StatusCode, raw)
	}
	var started server.CampaignStartResponse
	if err := json.Unmarshal(raw, &started); err != nil {
		t.Fatal(err)
	}
	node, _, _ := splitID(started.IDs[0])
	// The same document must always place on the same node.
	var doc startDoc
	if err := json.Unmarshal([]byte(routerCampaignDoc), &doc); err != nil {
		t.Fatal(err)
	}
	subs, err := scatter([]byte(routerCampaignDoc))
	if err != nil || len(subs) != 1 {
		t.Fatalf("scatter: %v (%d subs)", err, len(subs))
	}
	if got := cl.Place(subs[0].key); got != node {
		t.Fatalf("placement %s, started on %s", got, node)
	}
}

func TestRouterIngestPartitionsByClient(t *testing.T) {
	_, _, rts, nodes := newTestCluster(t, 3)
	ingest := `{"TaskID": "t1", "Rep": 1, "Price": 1, "PostedAt": 0, "Accepted": 0.5, "Done": 1, "WorkerID": 1, "Correct": true}`
	// The same client always lands on the same node; across many clients
	// more than one node sees traffic.
	for round := 0; round < 3; round++ {
		for c := 0; c < 12; c++ {
			req, err := http.NewRequest(http.MethodPost, rts.URL+"/v1/ingest", strings.NewReader(ingest))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("X-Client-ID", fmt.Sprintf("client%d", c))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Fatalf("ingest: status %d", resp.StatusCode)
			}
		}
	}
	touched := 0
	total := uint64(0)
	counts := make([]uint64, len(nodes))
	for i, n := range nodes {
		counts[i] = n.srv.Metrics().Serve.Ingests
		total += counts[i]
		if counts[i] > 0 {
			touched++
		}
	}
	if total != 36 {
		t.Fatalf("ingests %v, want 36 total", counts)
	}
	for _, c := range counts {
		// Each client's 3 batches stick to one node, so every node's
		// count is a multiple of 3.
		if c%3 != 0 {
			t.Fatalf("ingest counts %v: a client's stream split across nodes", counts)
		}
	}
	if touched < 2 {
		t.Fatalf("all 12 clients landed on one node")
	}
}

func TestRouterEnvelopeParity(t *testing.T) {
	_, _, rts, _ := newTestCluster(t, 2)
	cases := []struct {
		method, path, body string
		status             int
		code               string
	}{
		{"POST", "/v1/campaigns", `{"campaign": {`, 400, server.CodeBadSpec},
		{"POST", "/v1/campaigns", `{"nonsense": 1}`, 400, server.CodeBadSpec},
		{"GET", "/v1/campaigns/n0-c99", "", 404, server.CodeNotFound},
		{"GET", "/v1/campaigns/nowhere-c1", "", 404, server.CodeNotFound},
		{"GET", "/v1/campaigns/noprefix", "", 404, server.CodeNotFound},
		{"GET", "/v1/unknown", "", 404, server.CodeNotFound},
		{"DELETE", "/v1/solve", "", 405, server.CodeMethodNotAllowed},
	}
	for _, tc := range cases {
		var rd io.Reader
		if tc.body != "" {
			rd = strings.NewReader(tc.body)
		}
		req, err := http.NewRequest(tc.method, rts.URL+tc.path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Fatalf("%s %s: status %d, want %d: %s", tc.method, tc.path, resp.StatusCode, tc.status, raw)
		}
		var env server.ErrorEnvelope
		if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code != tc.code {
			t.Fatalf("%s %s: envelope %s (err %v), want code %s", tc.method, tc.path, raw, err, tc.code)
		}
	}
}

func TestRouterFanoutDocuments(t *testing.T) {
	_, _, rts, _ := newTestCluster(t, 2)
	for _, path := range []string{"/v1/stats", "/v1/metrics"} {
		resp, err := http.Get(rts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			Router RouterStats                `json:"router"`
			Nodes  map[string]json.RawMessage `json:"nodes"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if len(doc.Nodes) != 2 || doc.Nodes["n0"] == nil || doc.Nodes["n1"] == nil {
			t.Fatalf("%s: nodes %v", path, doc.Nodes)
		}
		if len(doc.Router.Nodes) != 2 {
			t.Fatalf("%s: router stats %+v", path, doc.Router)
		}
	}
}

func TestRouterUnreachableNodeIs503(t *testing.T) {
	cl := New(Config{})
	if err := cl.AddNode("ghost", "http://127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(cl, nil)
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	resp, raw := postDoc(t, rts.URL+"/v1/solve", routerSolveDoc)
	if resp.StatusCode != 503 {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var env server.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code != server.CodeOverloaded || env.Error.RetryAfterMS <= 0 {
		t.Fatalf("envelope %s (err %v)", raw, err)
	}
}

func TestClusterRejectsBadNodeNames(t *testing.T) {
	cl := New(Config{})
	for _, bad := range []string{"", "a-b", "a b", "ä"} {
		if err := cl.AddNode(bad, "http://x"); err == nil {
			t.Fatalf("name %q accepted", bad)
		}
	}
	if err := cl.AddNode("ok_Node3", "http://x"); err != nil {
		t.Fatal(err)
	}
}
