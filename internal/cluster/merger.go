package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"hputune/internal/inference"
	"hputune/internal/server"
	"hputune/internal/store"
)

// Merger closes the cluster's fit divergence: ingest partitions by
// client, so each node's aggregates cover only its own slice of the
// trace stream, and a fit computed per node would price "fitted" solves
// differently depending on ring placement. Each Tick the merger pulls
// every node's partition (the additive sufficient statistics, not the
// fits — sums commute, least-squares fits do not), merges them in
// sorted node order, fits the union once, and pushes the merged model
// to every node through the standard guarded publish path. The merge is
// all-or-nothing: if any partition is unreachable the tick aborts
// rather than publish a fit over a partial union — the next tick (after
// the watchdog promoted the dead node's replica) retries with every
// partition present again.
type Merger struct {
	cl      *Cluster
	client  *http.Client
	onEvent func(format string, args ...any)

	mu        sync.Mutex
	versions  map[string]uint64
	merges    uint64
	skipped   uint64
	pushes    uint64
	pushFails uint64
}

// NewMerger builds a merger over cl. client nil means a 10s-timeout
// default; onEvent may be nil.
func NewMerger(cl *Cluster, client *http.Client, onEvent func(string, ...any)) *Merger {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return &Merger{cl: cl, client: client, onEvent: onEvent, versions: make(map[string]uint64)}
}

func (m *Merger) event(format string, args ...any) {
	if m.onEvent != nil {
		m.onEvent(format, args...)
	}
}

// fetchAggregates pulls and validates one node's partition.
func (m *Merger) fetchAggregates(ctx context.Context, url string) (server.ReplicationAggregatesResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/replication/aggregates", nil)
	if err != nil {
		return server.ReplicationAggregatesResponse{}, err
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return server.ReplicationAggregatesResponse{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxFetchBody))
	if err != nil {
		return server.ReplicationAggregatesResponse{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return server.ReplicationAggregatesResponse{}, fmt.Errorf("status %d: %s", resp.StatusCode, clip(raw))
	}
	return DecodeAggregates(raw)
}

// pushFit publishes the merged fit to one node.
func (m *Merger) pushFit(ctx context.Context, url string, body []byte) (server.MergedFitResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/replication/fit", bytes.NewReader(body))
	if err != nil {
		return server.MergedFitResponse{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := m.client.Do(req)
	if err != nil {
		return server.MergedFitResponse{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxFetchBody))
	if err != nil {
		return server.MergedFitResponse{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return server.MergedFitResponse{}, fmt.Errorf("status %d: %s", resp.StatusCode, clip(raw))
	}
	var doc server.MergedFitResponse
	if err := json.Unmarshal(raw, &doc); err != nil {
		return server.MergedFitResponse{}, fmt.Errorf("decode merged-fit reply: %w", err)
	}
	return doc, nil
}

// Tick runs one exchange round: pull every partition, merge, fit, push.
// It returns the first pull error (the tick aborted before any push) or
// nil; push failures are counted and retried implicitly by later ticks,
// since the merged fit is recomputed from scratch each time.
func (m *Merger) Tick(ctx context.Context) error {
	nodes := m.cl.Nodes() // sorted by name — merge order must be deterministic
	if len(nodes) == 0 {
		return nil
	}
	docs := make([]server.ReplicationAggregatesResponse, len(nodes))
	for i, n := range nodes {
		doc, err := m.fetchAggregates(ctx, n.URL)
		if err != nil {
			// A partial union is worse than a stale fit: a fit over N-1
			// partitions is a model the single-process reference never saw.
			m.mu.Lock()
			m.skipped++
			m.mu.Unlock()
			return fmt.Errorf("cluster: aggregates of %s: %w", n.Name, err)
		}
		docs[i] = doc
	}
	merged := make(map[int]inference.PriceAggregate)
	sources := make(map[string]uint64, len(nodes))
	m.mu.Lock()
	for i, n := range nodes {
		if prev, ok := m.versions[n.Name]; ok && docs[i].Version < prev {
			// Legal after a failover: a promoted replica lags by whatever
			// the dead primary acknowledged but never shipped. Worth a log
			// line — anywhere else it means a node lost durable state.
			m.event("cluster: node %s aggregates went back from version %d to %d (replica promotion?)", n.Name, prev, docs[i].Version)
		}
		m.versions[n.Name] = docs[i].Version
		sources[n.Name] = docs[i].Version
	}
	m.mu.Unlock()
	// Merge in the (sorted) node order: float addition is not
	// associative, so a fixed order is what makes repeated merges of the
	// same partitions bit-identical.
	for i := range nodes {
		merged = inference.MergeAggregates(merged, docs[i].Aggs)
	}
	res, err := inference.FitAggregates(merged)
	if err != nil {
		// Fewer than two distinct prices across the whole cluster: nothing
		// to publish yet, not a failure.
		m.mu.Lock()
		m.skipped++
		m.mu.Unlock()
		return nil
	}
	body, err := json.Marshal(server.MergedFitRequest{
		Fit: store.FitRecord{
			Slope: res.Fit.Slope, Intercept: res.Fit.Intercept,
			R2: res.Fit.R2, SE: res.Fit.SE, N: res.Fit.N,
			Prices: len(res.Prices),
		},
		Sources: sources,
	})
	if err != nil {
		return fmt.Errorf("cluster: encode merged fit: %w", err)
	}
	for _, n := range nodes {
		reply, err := m.pushFit(ctx, n.URL, body)
		m.mu.Lock()
		if err != nil {
			m.pushFails++
			m.mu.Unlock()
			m.event("cluster: push merged fit to %s: %v", n.Name, err)
			continue
		}
		m.pushes++
		m.mu.Unlock()
		if !reply.Published {
			m.event("cluster: node %s kept its previous fit: %s", n.Name, reply.FitPending)
		}
	}
	m.mu.Lock()
	m.merges++
	m.mu.Unlock()
	return nil
}

// Run ticks on a fixed interval until ctx is canceled. Tick errors are
// transient by design (a node may be mid-failover); they are counted in
// Stats and the loop keeps going. Aborts are logged on transition only —
// the first failing tick and the recovery — not per tick: an outage
// lasting the whole failover window would otherwise flood the log at
// the exchange interval.
func (m *Merger) Run(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	var lastErr string
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			err := m.Tick(ctx)
			if ctx.Err() != nil {
				// Shutdown, not an outage: a tick canceled mid-flight fails
				// with a context error that would log as a spurious abort.
				return
			}
			switch {
			case err != nil && err.Error() != lastErr:
				lastErr = err.Error()
				m.event("cluster: fit exchange aborted: %v (retrying every tick)", err)
			case err == nil && lastErr != "":
				lastErr = ""
				m.event("cluster: fit exchange recovered")
			}
		}
	}
}

// MergerStats is a point-in-time copy of the merger's counters.
type MergerStats struct {
	// Merges counts completed exchange rounds (fit pushed to the nodes).
	Merges uint64 `json:"merges"`
	// Skipped counts aborted rounds: a partition was unreachable or the
	// union had fewer than two priced levels.
	Skipped uint64 `json:"skipped"`
	// Pushes counts per-node fit deliveries; PushFailures the misses
	// (recovered implicitly — every round recomputes from scratch).
	Pushes       uint64 `json:"pushes"`
	PushFailures uint64 `json:"pushFailures"`
	// Versions is the last aggregate version consumed per node.
	Versions map[string]uint64 `json:"versions,omitempty"`
}

// Stats snapshots the merger.
func (m *Merger) Stats() MergerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	versions := make(map[string]uint64, len(m.versions))
	for k, v := range m.versions {
		versions[k] = v
	}
	return MergerStats{Merges: m.merges, Skipped: m.skipped, Pushes: m.pushes, PushFailures: m.pushFails, Versions: versions}
}
