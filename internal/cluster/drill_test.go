package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"hputune/internal/campaign"
	"hputune/internal/server"
	"hputune/internal/spec"
	"hputune/internal/store"
)

// The drill suite is the tentpole's correctness proof: an in-process
// multi-node cluster runs real campaign fleets through the router while
// deterministic fault injection (the store's WrapWAL hook, in the style
// of the server package's crash-recovery suite) tears a victim node's
// WAL at a randomized byte boundary. The victim is killed, its
// WAL-shipping follower is promoted through the standard recovery path,
// and every campaign in the cluster must finish with a result
// byte-identical to an uninterrupted single-process campaign.RunFleet
// of the same specs.

// drillNode is one in-process cluster member plus its follower.
type drillNode struct {
	name string
	dir  string
	st   *store.Store
	srv  *server.Server
	ts   *httptest.Server
	fol  *Follower
}

// newDrillNode boots a store-backed node and a follower replicating it.
func newDrillNode(t *testing.T, name string, wrap func(io.Writer) io.Writer) *drillNode {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoSync: true, WrapWAL: wrap})
	if err != nil {
		t.Fatalf("Open(%s): %v", name, err)
	}
	t.Cleanup(func() { st.Close() })
	srv, err := server.Recover(server.Config{Node: name}, st)
	if err != nil {
		t.Fatalf("Recover(%s): %v", name, err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	fol := NewFollower(name, t.TempDir(), &HTTPFetch{Base: ts.URL},
		FollowerOptions{NoSync: true, Store: store.Options{NoSync: true}})
	return &drillNode{name: name, dir: dir, st: st, srv: srv, ts: ts, fol: fol}
}

// drillCluster wires n nodes under one router; wraps[name] injects a
// WAL fault into that node's store.
func drillCluster(t *testing.T, names []string, wraps map[string]func(io.Writer) io.Writer) (*Cluster, *httptest.Server, map[string]*drillNode) {
	t.Helper()
	cl := New(Config{})
	nodes := make(map[string]*drillNode, len(names))
	for _, name := range names {
		n := newDrillNode(t, name, wraps[name])
		nodes[name] = n
		if err := cl.AddNode(name, n.ts.URL); err != nil {
			t.Fatal(err)
		}
	}
	rt := NewRouter(cl, nil)
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	return cl, rts, nodes
}

// referenceResults runs the spec document uninterrupted in one process.
func referenceResults(t *testing.T, doc string) []campaign.Result {
	t.Helper()
	cfgs, err := spec.ParseCampaigns([]byte(doc), spec.BuildOpts{})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ref, err := campaign.RunFleet(context.Background(), nil, cfgs, 0)
	if err != nil {
		t.Fatalf("reference fleet: %v", err)
	}
	return ref
}

// startClusterFleet posts the document through the router.
func startClusterFleet(t *testing.T, routerURL, doc string) []string {
	t.Helper()
	resp, raw := postDoc(t, routerURL+"/v1/campaigns", doc)
	if resp.StatusCode != 202 {
		t.Fatalf("start fleet: status %d: %s", resp.StatusCode, raw)
	}
	var started server.CampaignStartResponse
	if err := json.Unmarshal(raw, &started); err != nil {
		t.Fatal(err)
	}
	return started.IDs
}

// routerResult fetches one campaign through the router.
func routerResult(t *testing.T, routerURL, id string) (campaign.Result, int) {
	t.Helper()
	resp, err := http.Get(routerURL + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		return campaign.Result{}, resp.StatusCode
	}
	var got server.CampaignGetResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("unmarshal %s: %v: %s", id, err, raw)
	}
	return got.Result, 200
}

func resultJSON(t *testing.T, res campaign.Result) string {
	t.Helper()
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(raw)
}

// waitAllTerminal polls the router until every id reports a terminal
// status, returning the final results in id order.
func waitAllTerminal(t *testing.T, routerURL string, ids []string) []campaign.Result {
	t.Helper()
	deadline := time.Now().Add(90 * time.Second)
	out := make([]campaign.Result, len(ids))
	for i, id := range ids {
		for {
			res, status := routerResult(t, routerURL, id)
			if status == 200 && res.Status.Terminal() {
				out[i] = res
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("campaign %s never settled (last status %d, %v)", id, status, res.Status)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return out
}

// waitFor polls cond until true or the timeout fails the test.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// pollFollower runs fol.Poll in a tight background loop until stop is
// closed; transient errors are expected while the primary is dying.
func pollFollower(fol *Follower) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx := context.Background()
		for {
			select {
			case <-done:
				return
			default:
				_ = fol.Poll(ctx)
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// paperFleetDoc is the acceptance drill's workload: the paper preset's
// 8-campaign fleet.
const paperFleetDoc = `{"fleet": {"preset": "paper", "seed": 17}}`

// drillNames is the 3-node acceptance layout.
var drillNames = []string{"n0", "n1", "n2"}

// fleetOwners maps each started id's node prefix.
func fleetOwners(t *testing.T, ids []string) map[string][]string {
	t.Helper()
	owners := make(map[string][]string)
	for _, id := range ids {
		node, _, ok := splitID(id)
		if !ok {
			t.Fatalf("id %q has no node prefix", id)
		}
		owners[node] = append(owners[node], id)
	}
	return owners
}

// TestClusterFleetMatchesReference is the no-fault baseline: the paper
// fleet scattered across three nodes completes with every result
// byte-identical to the single-process reference, and the ring spreads
// the eight campaigns across more than one node.
func TestClusterFleetMatchesReference(t *testing.T) {
	ref := referenceResults(t, paperFleetDoc)
	_, rts, _ := drillCluster(t, drillNames, nil)
	ids := startClusterFleet(t, rts.URL, paperFleetDoc)
	if len(ids) != len(ref) {
		t.Fatalf("started %d campaigns, reference has %d", len(ids), len(ref))
	}
	if owners := fleetOwners(t, ids); len(owners) < 2 {
		t.Fatalf("fleet landed on %d node(s): %v", len(owners), owners)
	}
	got := waitAllTerminal(t, rts.URL, ids)
	for i := range ref {
		if g, w := resultJSON(t, got[i]), resultJSON(t, ref[i]); g != w {
			t.Fatalf("campaign %s diverged from reference\n got  %s\n want %s", ids[i], g, w)
		}
	}
}

// crowdFleetDoc is the crowd-DB query fleet: tournament top-k,
// sequential-discovery group-by, a deadline-SLO campaign and a
// retainer-pool campaign.
const crowdFleetDoc = `{"fleet": {"preset": "crowd", "seed": 9}}`

// TestClusterCrowdFleetMatchesReference extends the no-fault baseline
// to the crowd-query executor family: all four crowd regimes scattered
// across three nodes run the closed loop to terminal statuses with
// every result byte-identical to the single-process reference.
func TestClusterCrowdFleetMatchesReference(t *testing.T) {
	ref := referenceResults(t, crowdFleetDoc)
	_, rts, _ := drillCluster(t, drillNames, nil)
	ids := startClusterFleet(t, rts.URL, crowdFleetDoc)
	if len(ids) != len(ref) {
		t.Fatalf("started %d campaigns, reference has %d", len(ids), len(ref))
	}
	got := waitAllTerminal(t, rts.URL, ids)
	for i := range ref {
		if got[i].Status == campaign.StatusFailed {
			t.Fatalf("campaign %s failed: %s", ids[i], got[i].Reason)
		}
		if g, w := resultJSON(t, got[i]), resultJSON(t, ref[i]); g != w {
			t.Fatalf("campaign %s diverged from reference\n got  %s\n want %s", ids[i], g, w)
		}
	}
}

// truncatingWriter tears the WAL after a byte budget — the injected
// crash, identical in spirit to the server package's crash suite.
type truncatingWriter struct {
	w      io.Writer
	budget int
}

var errCrashed = errors.New("injected crash: WAL torn mid-append")

func (tw *truncatingWriter) Write(p []byte) (int, error) {
	if tw.budget <= 0 {
		return 0, errCrashed
	}
	if len(p) > tw.budget {
		n, _ := tw.w.Write(p[:tw.budget])
		tw.budget = 0
		return n, errCrashed
	}
	tw.budget -= len(p)
	return tw.w.Write(p)
}

// delayingWriter dawdles before each write so concurrent campaign
// appends coalesce into real group-commit batches; composed under the
// truncatingWriter it produces the kill-during-batched-flush drill.
type delayingWriter struct {
	w     io.Writer
	delay time.Duration
}

func (dw *delayingWriter) Write(p []byte) (int, error) {
	time.Sleep(dw.delay)
	return dw.w.Write(p)
}

// probeVictim runs the fleet once with no faults and returns, for the
// node owning the most campaigns, its name and final WAL size — the
// budget space for the crash boundary.
func probeVictim(t *testing.T, names []string, doc string) (string, int) {
	t.Helper()
	_, rts, nodes := drillCluster(t, names, nil)
	ids := startClusterFleet(t, rts.URL, doc)
	waitAllTerminal(t, rts.URL, ids)
	victim, most := "", 0
	for node, owned := range fleetOwners(t, ids) {
		if len(owned) > most {
			victim, most = node, len(owned)
		}
	}
	raw, err := os.ReadFile(store.WALPath(nodes[victim].dir))
	if err != nil {
		t.Fatalf("read probe WAL: %v", err)
	}
	if len(raw) < 1000 {
		t.Fatalf("probe WAL only %d bytes; fleet too small for meaningful crash points", len(raw))
	}
	return victim, len(raw)
}

// killNode ends a node's process: one final follower poll drains the
// acknowledged tail (replication is asynchronous; the drill closes the
// window exactly the way cmd/htrouter's failover does), then the HTTP
// listener goes away.
func killNode(t *testing.T, n *drillNode) {
	t.Helper()
	if err := n.fol.Poll(context.Background()); err != nil {
		// The final poll may race the dying store; the follower keeps
		// whatever was acknowledged, which is the guarantee under test.
		t.Logf("final poll of %s: %v", n.name, err)
	}
	n.srv.Close()
	n.ts.Close()
}

// TestClusterDrillKillNodeMidFleet is the ISSUE's acceptance drill: a
// 3-node cluster runs the 8-campaign paper fleet, the busiest node's
// WAL is torn mid-fleet at a randomized boundary, the node is killed,
// and its follower is promoted. Every campaign — including the ones
// resumed from the replica — must finish byte-identical to the
// uninterrupted single-process reference, served through the router.
func TestClusterDrillKillNodeMidFleet(t *testing.T) {
	ref := referenceResults(t, paperFleetDoc)
	victim, walSize := probeVictim(t, drillNames, paperFleetDoc)
	rng := rand.New(rand.NewSource(20260807))
	// Land the tear in the middle half of the victim's WAL: past the
	// fleet record, before the last campaigns settle.
	budget := walSize/4 + rng.Intn(walSize/2)

	cl, rts, nodes := drillCluster(t, drillNames, map[string]func(io.Writer) io.Writer{
		victim: func(w io.Writer) io.Writer { return &truncatingWriter{w: w, budget: budget} },
	})
	v := nodes[victim]
	stopPolling := pollFollower(v.fol)
	ids := startClusterFleet(t, rts.URL, paperFleetDoc)
	waitFor(t, 60*time.Second, "victim WAL tear", func() bool { return v.st.Err() != nil })
	stopPolling()
	killNode(t, v)

	st2, srv2, err := v.fol.Promote(server.Config{Node: victim})
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer st2.Close()
	state, err := st2.State()
	if err != nil {
		t.Fatalf("replica state: %v", err)
	}
	nonTerminal := 0
	for _, cs := range state.Campaigns {
		if !cs.Checkpoint.Status.Terminal() {
			nonTerminal++
		}
	}
	if nonTerminal == 0 {
		t.Fatalf("tear at byte %d of %d left no campaign mid-flight; the drill proved nothing", budget, walSize)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if err := cl.Repoint(victim, ts2.URL); err != nil {
		t.Fatalf("repoint: %v", err)
	}

	got := waitAllTerminal(t, rts.URL, ids)
	for i := range ref {
		if g, w := resultJSON(t, got[i]), resultJSON(t, ref[i]); g != w {
			t.Fatalf("campaign %s after node kill + promotion diverged from reference\n got  %s\n want %s", ids[i], g, w)
		}
	}
	t.Logf("tear at byte %d/%d on %s; %d campaigns resumed on the promoted replica", budget, walSize, victim, nonTerminal)
}

// verifyDrill checks every campaign of one document against its
// reference after a victim kill + promotion. A campaign owned by the
// victim that is absent from the replica state never durably existed —
// its fleet append was torn before acknowledgement — so the router's
// 404 is the correct recovered answer for it; every other campaign
// must settle byte-identical to the reference.
func verifyDrill(t *testing.T, routerURL string, ids []string, ref []campaign.Result, victim string, state *store.State) {
	t.Helper()
	deadline := time.Now().Add(90 * time.Second)
	for i, id := range ids {
		node, rest, ok := splitID(id)
		if !ok {
			t.Fatalf("id %q has no node prefix", id)
		}
		if node == victim {
			if _, durable := state.Campaigns[rest]; !durable {
				if _, status := routerResult(t, routerURL, id); status != 404 {
					t.Fatalf("campaign %s was never acknowledged by the victim yet the promoted replica serves status %d", id, status)
				}
				continue
			}
		}
		for {
			res, status := routerResult(t, routerURL, id)
			if status == 200 && res.Status.Terminal() {
				if g, w := resultJSON(t, res), resultJSON(t, ref[i]); g != w {
					t.Fatalf("campaign %s diverged after node loss\n got  %s\n want %s", id, g, w)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("campaign %s never settled (last status %d, %v)", id, status, res.Status)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// drillDoc is the randomized drill's smaller fleet: two drifting
// campaigns (epsilon 0 + drift means no early convergence) that keep a
// few hundred WAL bytes flowing per round.
const drillDoc = `{"campaigns":[
  {"name":"da1","roundBudget":300,"budget":1800,"rounds":6,"epsilon":0,"seed":101,
   "prior":{"kind":"linear","k":1,"b":1},
   "drift":{"kind":"rate","factor":0.9},
   "groups":[{"name":"g","tasks":30,"reps":3,"procRate":2,"true":{"kind":"linear","k":2,"b":0.5}}]},
  {"name":"da2","roundBudget":280,"budget":1680,"rounds":6,"epsilon":0,"seed":202,
   "prior":{"kind":"linear","k":1,"b":1},
   "drift":{"kind":"shock","factor":0.7,"round":3},
   "groups":[{"name":"g","tasks":28,"reps":2,"procRate":2,"true":{"kind":"linear","k":1.8,"b":0.6}}]}
]}`

// drillDocB rides along in the rebalance trials: a fleet started while
// a new node is joining the ring.
const drillDocB = `{"campaigns":[
  {"name":"db1","roundBudget":250,"budget":1500,"rounds":5,"epsilon":0,"seed":303,
   "prior":{"kind":"linear","k":1,"b":1},
   "drift":{"kind":"rate","factor":0.93},
   "groups":[{"name":"g","tasks":25,"reps":2,"procRate":2,"true":{"kind":"linear","k":2.1,"b":0.4}}]}
]}`

// victimFor returns the node a document's first campaign places on.
func victimFor(t *testing.T, cl *Cluster, doc string) string {
	t.Helper()
	subs, err := scatter([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return cl.Place(subs[0].key)
}

// TestClusterDrillRandomizedNodeLoss runs >= 12 randomized node-loss
// trials on a 2-node cluster: every trial tears the WAL of the node
// owning the first campaign at a random byte boundary — plain tears
// (mid-round), tears under a delaying writer (mid-batched-flush), and
// tears while a third node joins and takes new traffic (rebalance) —
// kills the victim, promotes its follower, and requires every campaign
// to finish byte-identical to the uninterrupted reference.
func TestClusterDrillRandomizedNodeLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 12 node-loss drills over full fleets")
	}
	refA := referenceResults(t, drillDoc)
	refB := referenceResults(t, drillDocB)
	baseNames := []string{"n0", "n1"}
	victim, walSize := probeVictim(t, baseNames, drillDoc)

	rng := rand.New(rand.NewSource(77))
	const trials = 12
	resumed := 0
	for trial := 0; trial < trials; trial++ {
		variant := trial % 3
		budget := 64 + rng.Intn(walSize-128)
		t.Run(fmt.Sprintf("trial-%02d-variant-%d-at-%d", trial, variant, budget), func(t *testing.T) {
			wrap := func(w io.Writer) io.Writer { return &truncatingWriter{w: w, budget: budget} }
			if variant == 1 {
				// Slow WAL: concurrent appends pile into shared batches,
				// so the tear lands inside a multi-record group commit.
				wrap = func(w io.Writer) io.Writer {
					return &truncatingWriter{w: &delayingWriter{w: w, delay: time.Millisecond}, budget: budget}
				}
			}
			cl, rts, nodes := drillCluster(t, baseNames, map[string]func(io.Writer) io.Writer{victim: wrap})
			if got := victimFor(t, cl, drillDoc); got != victim {
				t.Fatalf("placement moved: first campaign on %s, probe said %s", got, victim)
			}
			v := nodes[victim]
			stopPolling := pollFollower(v.fol)
			ids := startClusterFleet(t, rts.URL, drillDoc)

			var extraIDs []string
			if variant == 2 {
				// Rebalance under traffic: a third node joins the ring
				// mid-run and the next fleet lands with it as a candidate.
				n2 := newDrillNode(t, "n2", nil)
				if err := cl.AddNode("n2", n2.ts.URL); err != nil {
					t.Fatal(err)
				}
				extraIDs = startClusterFleet(t, rts.URL, drillDocB)
			}

			waitFor(t, 60*time.Second, "victim WAL tear", func() bool { return v.st.Err() != nil })
			stopPolling()
			killNode(t, v)

			st2, srv2, err := v.fol.Promote(server.Config{Node: victim})
			if err != nil {
				t.Fatalf("promote: %v", err)
			}
			defer st2.Close()
			// The replica never runs ahead of what the victim
			// acknowledged.
			if replicaSeq, victimSeq := st2.Metrics().LastSeq, v.st.Metrics().LastSeq; replicaSeq > victimSeq {
				t.Fatalf("replica at seq %d, victim acknowledged only %d", replicaSeq, victimSeq)
			}
			state, err := st2.State()
			if err != nil {
				t.Fatalf("replica state: %v", err)
			}
			for _, cs := range state.Campaigns {
				if !cs.Checkpoint.Status.Terminal() {
					resumed++
				}
			}
			ts2 := httptest.NewServer(srv2.Handler())
			defer ts2.Close()
			if err := cl.Repoint(victim, ts2.URL); err != nil {
				t.Fatalf("repoint: %v", err)
			}

			verifyDrill(t, rts.URL, ids, refA, victim, state)
			if len(extraIDs) > 0 {
				verifyDrill(t, rts.URL, extraIDs, refB, victim, state)
			}
		})
	}
	if resumed == 0 {
		t.Fatalf("no trial left a campaign mid-flight across %d tears of a %d-byte WAL; the suite proved nothing", trials, walSize)
	}
	t.Logf("%d campaigns resumed on promoted replicas across %d trials", resumed, trials)
}
