package cluster

import (
	"bytes"
	"fmt"
	"io"

	"hputune/internal/store"
)

// WAL shipping wire format: the reply body of GET /v1/replication/wal
// is a run of store WAL frames (length + CRC-32C + JSON record),
// byte-identical to what the leader's wal.log holds for those records.
// DecodeShip is the follower's gatekeeper — beyond the store Reader's
// framing contract it enforces the shipping contract: records must be
// gapless and start exactly at the follower's cursor + 1, because
// State.Apply refuses gaps and a silently skipped record would fork
// the replica.

// ShipError reports a shipped run that decodes cleanly but violates the
// contiguity contract. Offset is the byte position of the offending
// frame; everything before it is safe to append.
type ShipError struct {
	Offset int64
	Want   uint64
	Got    uint64
}

func (e *ShipError) Error() string {
	return fmt.Sprintf("cluster: shipped WAL breaks contiguity at byte %d: got seq %d, want %d", e.Offset, e.Got, e.Want)
}

// EncodeShip frames recs in the shipping wire format.
func EncodeShip(recs []store.Record) ([]byte, error) {
	var buf []byte
	var err error
	for _, rec := range recs {
		buf, err = store.EncodeRecordFrame(buf, rec)
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeShip decodes a shipped run expected to continue after sequence
// `after`. It returns the decoded records, the byte offset up to which
// data may be appended verbatim to a replica WAL (every frame below it
// decoded cleanly and contiguously), and the classified error:
//
//	nil            — the whole body is clean; good == len(data)
//	*store.TailError — the final frame is torn (an in-flight reply cut
//	                 short); the prefix is usable
//	*store.CorruptError — framing damage; the prefix is usable, the
//	                 rest must not be trusted
//	*ShipError     — intact frames that skip or repeat a sequence; the
//	                 contiguous prefix is usable
func DecodeShip(data []byte, after uint64) ([]store.Record, int64, error) {
	d := store.NewReader(bytes.NewReader(data))
	var recs []store.Record
	want := after + 1
	for {
		prev := d.Offset()
		rec, err := d.Next()
		if err == io.EOF {
			return recs, prev, nil
		}
		if err != nil {
			return recs, d.Offset(), err
		}
		if rec.Seq != want {
			return recs, prev, &ShipError{Offset: prev, Want: want, Got: rec.Seq}
		}
		want++
		recs = append(recs, rec)
	}
}
