package cluster

import (
	"hash/fnv"
	"sort"

	"hputune/internal/randx"
)

// Ring is a consistent-hash ring: each node owns vnodes points on a
// 64-bit circle and a key belongs to the first point clockwise of its
// hash. Adding or removing one node moves ~1/N of the keyspace, which
// is the property the cluster needs to keep campaign placement stable
// across membership changes. Not safe for concurrent use — Cluster
// guards it.
type Ring struct {
	vnodes int
	nodes  map[string]bool
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultVnodes balances placement uniformity against ring size: at
// 256 vnodes/node the worst per-node skew over 10k keys stays near 10%
// for 2–8 nodes (the property tests pin ±20%); 160 measured just past
// 20% at 8 nodes.
const DefaultVnodes = 256

// NewRing builds an empty ring; vnodes <= 0 means DefaultVnodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]bool)}
}

// hashKey mixes a string onto the circle: FNV-1a collects the bytes,
// the splitmix64 finalizer spreads them — FNV alone clusters the
// sequential suffixes vnode labels have.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return randx.Mix64(h.Sum64())
}

// Add inserts a node's vnodes; adding a present node is a no-op, so
// the ring's layout depends only on the membership set, never on the
// order or repetition of Add calls.
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: hashKey(node + "#" + itoa(i)), node: node})
	}
	r.sortPoints()
}

// Remove deletes a node's vnodes; removing an absent node is a no-op.
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// sortPoints orders by hash, breaking the (vanishingly rare) hash tie
// by node name so the layout is deterministic.
func (r *Ring) sortPoints() {
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// Lookup returns the node owning key, or "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the first point clockwise of the top of the circle
	}
	return r.points[i].node
}

// Nodes returns the member set, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// itoa avoids strconv for the one hot loop that labels vnodes.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
