package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"hputune/internal/server"
)

func TestRouterScatterRejectsBadDocs(t *testing.T) {
	_, _, rts, _ := newTestCluster(t, 2)
	cases := []struct {
		name string
		body string
	}{
		{"invalid JSON", `{`},
		{"unknown field", `{"campagin": {}}`},
		{"no kind", `{}`},
		{"two kinds", `{"campaign": {}, "fleet": {"preset": "paper", "seed": 1}}`},
		{"bad preset", `{"fleet": {"preset": "no-such-preset", "seed": 1}}`},
	}
	for _, tc := range cases {
		resp, raw := postDoc(t, rts.URL+"/v1/campaigns", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400: %s", tc.name, resp.StatusCode, raw)
		}
		var env struct {
			Error server.APIError `json:"error"`
		}
		if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code == "" {
			t.Fatalf("%s: reply is not an error envelope: %s", tc.name, raw)
		}
	}
}

// faultyCluster builds a two-node cluster where n0 is a real in-memory
// node (DELETEs counted) and n1 is the scripted handler under test.
func faultyCluster(t *testing.T, faulty http.HandlerFunc) (*httptest.Server, *atomic.Uint64, *server.Server) {
	t.Helper()
	cl := New(Config{})
	good, err := server.New(server.Config{Node: "n0"})
	if err != nil {
		t.Fatal(err)
	}
	var deletes atomic.Uint64
	goodTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodDelete {
			deletes.Add(1)
		}
		good.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(goodTS.Close)
	badTS := httptest.NewServer(faulty)
	t.Cleanup(badTS.Close)
	if err := cl.AddNode("n0", goodTS.URL); err != nil {
		t.Fatal(err)
	}
	if err := cl.AddNode("n1", badTS.URL); err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(cl, nil)
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	return rts, &deletes, good
}

// splitStartDoc builds a {"campaigns":[a,b]} doc whose first entry lands
// on n0 and whose second lands on n1, so the good node's start precedes
// the failing one and the rollback has something to undo.
func splitStartDoc(t *testing.T) string {
	t.Helper()
	one := func(name string) string {
		return fmt.Sprintf(`{"name": %q, "roundBudget": 40, "rounds": 2, "epsilon": 0.5, "seed": 5,
  "prior": {"kind": "linear", "k": 1, "b": 1},
  "groups": [{"name": "g", "tasks": 4, "reps": 2, "procRate": 2, "true": {"kind": "linear", "k": 1, "b": 1}}]}`, name)
	}
	probe := New(Config{})
	for _, n := range []string{"n0", "n1"} {
		if err := probe.AddNode(n, "http://unused"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 256; i++ {
		for j := 0; j < 256; j++ {
			if i == j {
				continue
			}
			doc := fmt.Sprintf(`{"campaigns": [%s, %s]}`, one(fmt.Sprintf("rb%d", i)), one(fmt.Sprintf("rb%d", j)))
			subs, err := scatter([]byte(doc))
			if err != nil {
				t.Fatal(err)
			}
			if probe.Place(subs[0].key) == "n0" && probe.Place(subs[1].key) == "n1" {
				return doc
			}
		}
	}
	t.Fatal("could not construct a doc splitting across both nodes")
	return ""
}

func TestRouterStartRollsBackOnNodeError(t *testing.T) {
	doc := splitStartDoc(t)
	faultyBody := `{"error": {"code": "overloaded", "message": "node full"}}`
	rts, deletes, _ := faultyCluster(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(faultyBody))
	})

	resp, raw := postDoc(t, rts.URL+"/v1/campaigns", doc)
	// The failing node's envelope comes back verbatim...
	if resp.StatusCode != http.StatusServiceUnavailable || string(raw) != faultyBody {
		t.Fatalf("partial failure reply = %d %s, want the node's 503 envelope verbatim", resp.StatusCode, raw)
	}
	// ...and the campaign already started on the good node was canceled.
	if got := deletes.Load(); got != 1 {
		t.Fatalf("rollback issued %d DELETEs, want 1", got)
	}
}

func TestRouterStartRollsBackOnUnreachableNode(t *testing.T) {
	doc := splitStartDoc(t)
	cl := New(Config{})
	good, err := server.New(server.Config{Node: "n0"})
	if err != nil {
		t.Fatal(err)
	}
	var deletes atomic.Uint64
	goodTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodDelete {
			deletes.Add(1)
		}
		good.Handler().ServeHTTP(w, r)
	}))
	defer goodTS.Close()
	// n1's listener is already closed: the call itself errors instead of
	// answering, which is the "unreachable mid-scatter" branch.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	if err := cl.AddNode("n0", goodTS.URL); err != nil {
		t.Fatal(err)
	}
	if err := cl.AddNode("n1", dead.URL); err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(cl, nil)
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	resp, raw := postDoc(t, rts.URL+"/v1/campaigns", doc)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unreachable node reply = %d: %s", resp.StatusCode, raw)
	}
	var env struct {
		Error server.APIError `json:"error"`
	}
	if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code != server.CodeOverloaded {
		t.Fatalf("want an overloaded envelope, got: %s", raw)
	}
	if got := deletes.Load(); got != 1 {
		t.Fatalf("rollback issued %d DELETEs, want 1", got)
	}
}

func TestRouterStartRejectsMalformedNodeReply(t *testing.T) {
	doc := splitStartDoc(t)
	rts, deletes, _ := faultyCluster(t, func(w http.ResponseWriter, r *http.Request) {
		// A 202 that doesn't carry exactly one id breaks the scatter
		// invariant; the router must fail loudly and roll back.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		_, _ = w.Write([]byte(`{"ids": ["a", "b"]}`))
	})
	resp, raw := postDoc(t, rts.URL+"/v1/campaigns", doc)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("malformed reply status = %d, want 500: %s", resp.StatusCode, raw)
	}
	if got := deletes.Load(); got != 1 {
		t.Fatalf("rollback issued %d DELETEs, want 1", got)
	}
}

func TestRouterRejectsOversizedBody(t *testing.T) {
	_, _, rts, _ := newTestCluster(t, 1)
	big := bytes.Repeat([]byte("x"), maxRouterBody+1)
	resp, err := http.Post(rts.URL+"/v1/solve", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status = %d, want 413", resp.StatusCode)
	}
}

func TestRouterStatsCounters(t *testing.T) {
	_, rt, rts, _ := newTestCluster(t, 1)
	if resp, raw := postDoc(t, rts.URL+"/v1/campaigns", routerCampaignDoc); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("start: %d %s", resp.StatusCode, raw)
	}
	rt.AddFailover()
	st := rt.Stats()
	if st.Scattered != 1 || st.Failovers != 1 || st.Proxied == 0 {
		t.Fatalf("stats = %+v, want scattered 1, failovers 1, proxied > 0", st)
	}
	if len(st.Nodes) != 1 {
		t.Fatalf("stats carries %d nodes, want 1", len(st.Nodes))
	}
}

func TestRouterEmptyClusterIs503(t *testing.T) {
	cl := New(Config{})
	rt := NewRouter(cl, nil)
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()
	for _, path := range []string{"/v1/solve", "/v1/ingest", "/v1/campaigns"} {
		resp, raw := postDoc(t, rts.URL+path, strings.TrimSpace(routerCampaignDoc))
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s on an empty cluster = %d, want 503: %s", path, resp.StatusCode, raw)
		}
	}
}
