package cluster

import (
	"fmt"
	"testing"
)

// ringKeys generates the shared key population for the property tests.
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("campaign:%d:ring-prop", i)
	}
	return keys
}

func ringWith(vnodes int, names ...string) *Ring {
	r := NewRing(vnodes)
	for _, n := range names {
		r.Add(n)
	}
	return r
}

func nodeNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("node%d", i)
	}
	return names
}

// TestRingUniformity pins the ISSUE's placement-quality bar: across 10k
// keys every node's share stays within ±20% of the fair 1/N share, for
// each cluster size the drills use.
func TestRingUniformity(t *testing.T) {
	keys := ringKeys(10000)
	for _, n := range []int{2, 3, 5, 8} {
		r := ringWith(0, nodeNames(n)...)
		counts := make(map[string]int)
		for _, k := range keys {
			counts[r.Lookup(k)]++
		}
		fair := float64(len(keys)) / float64(n)
		for _, name := range nodeNames(n) {
			got := float64(counts[name])
			if got < 0.8*fair || got > 1.2*fair {
				t.Errorf("N=%d: %s owns %d of %d keys, outside ±20%% of fair %.0f", n, name, counts[name], len(keys), fair)
			}
		}
	}
}

// TestRingMovementOnAdd pins the consistency property: adding one node
// to N moves only keys that land on the new node, and roughly the fair
// 1/(N+1) fraction of them.
func TestRingMovementOnAdd(t *testing.T) {
	keys := ringKeys(10000)
	for _, n := range []int{2, 3, 5, 8} {
		before := ringWith(0, nodeNames(n)...)
		owners := make(map[string]string, len(keys))
		for _, k := range keys {
			owners[k] = before.Lookup(k)
		}
		after := ringWith(0, nodeNames(n)...)
		after.Add("newcomer")
		moved := 0
		for _, k := range keys {
			now := after.Lookup(k)
			if now != owners[k] {
				moved++
				if now != "newcomer" {
					t.Fatalf("N=%d: key %q moved %s -> %s, not to the new node", n, k, owners[k], now)
				}
			}
		}
		fair := float64(len(keys)) / float64(n+1)
		if f := float64(moved); f < 0.5*fair || f > 2*fair {
			t.Errorf("N=%d: add moved %d keys, fair share is %.0f", n, moved, fair)
		}
	}
}

// TestRingMovementOnRemove: removing a node moves exactly the keys it
// owned, nothing else.
func TestRingMovementOnRemove(t *testing.T) {
	keys := ringKeys(10000)
	for _, n := range []int{3, 5, 8} {
		before := ringWith(0, nodeNames(n)...)
		owners := make(map[string]string, len(keys))
		for _, k := range keys {
			owners[k] = before.Lookup(k)
		}
		victim := "node1"
		after := ringWith(0, nodeNames(n)...)
		after.Remove(victim)
		for _, k := range keys {
			now := after.Lookup(k)
			if owners[k] == victim {
				if now == victim {
					t.Fatalf("N=%d: key %q still on removed node", n, k)
				}
			} else if now != owners[k] {
				t.Fatalf("N=%d: key %q moved %s -> %s though %s was removed", n, k, owners[k], now, victim)
			}
		}
	}
}

// TestRingDeterministicLayout: membership, not call order, decides
// placement.
func TestRingDeterministicLayout(t *testing.T) {
	a := ringWith(64, "x", "y", "z")
	b := ringWith(64, "z", "x", "y")
	b.Add("x") // re-add is a no-op
	for _, k := range ringKeys(1000) {
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("key %q placed differently by build order: %s vs %s", k, a.Lookup(k), b.Lookup(k))
		}
	}
}

func TestRingEmptyAndNodes(t *testing.T) {
	r := NewRing(0)
	if got := r.Lookup("anything"); got != "" {
		t.Fatalf("empty ring returned %q", got)
	}
	r.Add("b")
	r.Add("a")
	if got := fmt.Sprint(r.Nodes()); got != "[a b]" {
		t.Fatalf("nodes %s", got)
	}
	r.Remove("missing") // no-op
	if got := r.Lookup("anything"); got != "a" && got != "b" {
		t.Fatalf("lookup %q", got)
	}
}
