package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hputune/internal/server"
	"hputune/internal/store"
)

// fakeFetch scripts the replication reads so follower edge cases run
// without a network or a live primary.
type fakeFetch struct {
	mu      sync.Mutex
	stateFn func() (*store.State, error)
	walFn   func(from uint64) ([]byte, error)
}

func (f *fakeFetch) State(ctx context.Context) (*store.State, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stateFn()
}

func (f *fakeFetch) WAL(ctx context.Context, from uint64) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.walFn(from)
}

func shipFrames(t *testing.T, recs ...store.Record) []byte {
	t.Helper()
	raw, err := EncodeShip(recs)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func archiveRec(seq uint64, id string) store.Record {
	return store.Record{Seq: seq, Type: store.TypeArchive, Data: json.RawMessage(`{"id":"` + id + `"}`)}
}

func TestFollowerResyncsOnCompaction(t *testing.T) {
	t.Parallel()
	// Seed at seq 5; the first tail fetch finds the primary compacted
	// past the cursor, the re-seeded snapshot sits at seq 8, and the
	// retried fetch ships 9 and 10.
	seedSeq := uint64(5)
	fetch := &fakeFetch{}
	fetch.stateFn = func() (*store.State, error) {
		st := store.NewState()
		st.LastSeq = seedSeq
		return st, nil
	}
	fetch.walFn = func(from uint64) ([]byte, error) {
		if from == 5 {
			seedSeq = 8 // the next State call serves the newer snapshot
			return nil, store.ErrCompacted
		}
		if from != 8 {
			t.Errorf("retry fetched from %d, want 8", from)
		}
		return shipFrames(t, archiveRec(9, "a"), archiveRec(10, "b")), nil
	}

	f := NewFollower("p", t.TempDir(), fetch, FollowerOptions{NoSync: true})
	if err := f.Poll(context.Background()); err != nil {
		t.Fatalf("Poll across a compaction: %v", err)
	}
	st := f.Stats()
	if st.Node != "p" || st.LastSeq != 10 || st.Shipped != 2 || st.Resyncs != 1 || st.Promoted {
		t.Fatalf("stats after resync = %+v, want lastSeq 10, shipped 2, resyncs 1", st)
	}
}

func TestFollowerRejectsGappedShipment(t *testing.T) {
	t.Parallel()
	fetch := &fakeFetch{
		stateFn: func() (*store.State, error) { return store.NewState(), nil },
		// Cursor is 0, so a run starting at seq 2 skips a record.
		walFn: func(from uint64) ([]byte, error) { return shipFrames(t, archiveRec(2, "a")), nil },
	}
	f := NewFollower("p", t.TempDir(), fetch, FollowerOptions{NoSync: true})
	err := f.Poll(context.Background())
	var ship *ShipError
	if !errors.As(err, &ship) {
		t.Fatalf("Poll on a gapped shipment = %v, want *ShipError", err)
	}
	if st := f.Stats(); st.LastSeq != 0 || st.Shipped != 0 {
		t.Fatalf("cursor advanced past a gap: %+v", st)
	}
}

func TestFollowerPromoteGuards(t *testing.T) {
	t.Parallel()
	fetch := &fakeFetch{
		stateFn: func() (*store.State, error) { return store.NewState(), nil },
		walFn:   func(from uint64) ([]byte, error) { return nil, nil },
	}
	f := NewFollower("p", t.TempDir(), fetch, FollowerOptions{NoSync: true, Store: store.Options{NoSync: true}})

	// Promoting before the first successful sync has nothing to open.
	if _, _, err := f.Promote(server.Config{Node: "p"}); err == nil {
		t.Fatal("Promote before any sync must fail")
	}

	if err := f.Poll(context.Background()); err != nil {
		t.Fatal(err)
	}
	st, _, err := f.Promote(server.Config{Node: "p"})
	if err != nil {
		t.Fatalf("Promote after sync: %v", err)
	}
	defer st.Close()

	// The replica is live now; shipping behind its back is refused.
	if err := f.Poll(context.Background()); !errors.Is(err, ErrPromoted) {
		t.Fatalf("Poll after Promote = %v, want ErrPromoted", err)
	}
	if _, _, err := f.Promote(server.Config{Node: "p"}); !errors.Is(err, ErrPromoted) {
		t.Fatalf("second Promote = %v, want ErrPromoted", err)
	}
	if fs := f.Stats(); !fs.Promoted {
		t.Fatalf("stats after promotion = %+v, want Promoted", fs)
	}
}

func TestFollowerRunShipsInBackground(t *testing.T) {
	t.Parallel()
	var served bool
	fetch := &fakeFetch{
		stateFn: func() (*store.State, error) { return store.NewState(), nil },
	}
	fetch.walFn = func(from uint64) ([]byte, error) {
		if served {
			return nil, nil
		}
		served = true
		return shipFrames(t, archiveRec(1, "a")), nil
	}
	f := NewFollower("p", t.TempDir(), fetch, FollowerOptions{NoSync: true})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Run(ctx, time.Millisecond)
	}()

	deadline := time.After(5 * time.Second)
	for f.Stats().Shipped < 1 {
		select {
		case <-deadline:
			t.Fatal("Run loop never shipped the pending record")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run loop did not stop on context cancel")
	}
}

func TestHTTPFetchErrorPaths(t *testing.T) {
	t.Parallel()
	longBody := strings.Repeat("x", 500)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/replication/state":
			switch r.URL.Query().Get("mode") {
			case "garbage":
				w.Write([]byte("{not json"))
			case "empty":
				w.Write([]byte("{}"))
			default:
				http.Error(w, longBody, http.StatusInternalServerError)
			}
		case "/v1/replication/wal":
			http.Error(w, "boom", http.StatusInternalServerError)
		}
	}))
	defer ts.Close()
	ctx := context.Background()

	h := &HTTPFetch{Base: ts.URL}
	_, err := h.State(ctx)
	if err == nil || !strings.Contains(err.Error(), "status 500") {
		t.Fatalf("State on a 500 = %v, want status error", err)
	}
	// clip bounds the embedded body so one bad reply cannot flood logs.
	if len(err.Error()) > 300 {
		t.Fatalf("error message not clipped: %d bytes", len(err.Error()))
	}

	if _, err := h.WAL(ctx, 0); err == nil {
		t.Fatal("WAL on a 500 must fail")
	}

	// Undecodable and stateless replies are rejected, not silently
	// seeded from.
	gts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{not json"))
	}))
	defer gts.Close()
	if _, err := (&HTTPFetch{Base: gts.URL}).State(ctx); err == nil {
		t.Fatal("State on garbage JSON must fail")
	}
	ets := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{}"))
	}))
	defer ets.Close()
	if _, err := (&HTTPFetch{Base: ets.URL}).State(ctx); err == nil {
		t.Fatal("State with a missing state document must fail")
	}

	// A dead endpoint surfaces the transport error.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	if _, err := (&HTTPFetch{Base: dead.URL}).State(ctx); err == nil {
		t.Fatal("State against a dead endpoint must fail")
	}
}
