package cluster

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"hputune/internal/server"
	"hputune/internal/store"
)

// Follower keeps a byte-identical replica of one node's state
// directory: it seeds the directory from the node's full snapshot, then
// polls the node's durable WAL tail and appends the shipped frames
// verbatim to the replica's wal.log. Because the bytes on disk are the
// same bytes the primary acknowledged, promoting the replica is exactly
// the store's normal crash-recovery path — store.Open plus
// server.Recover — and resumes every in-flight campaign bit-identically
// from its last acknowledged checkpoint.
//
// Replication is asynchronous: records the primary accepted but had not
// yet served through /v1/replication/wal at the moment it died are not
// on the replica. The drill suite closes that window by taking one
// final poll against the dying node before promoting.
type Follower struct {
	node  string
	dir   string
	fetch Fetch
	opts  FollowerOptions

	mu       sync.Mutex
	wal      *os.File
	seeded   bool
	promoted bool
	lastSeq  uint64
	shipped  uint64
	resyncs  uint64
}

// Fetch abstracts the two replication reads so tests can inject faults
// without a network; HTTPFetch is the production implementation.
type Fetch interface {
	// State fetches the node's full durable snapshot.
	State(ctx context.Context) (*store.State, error)
	// WAL fetches the framed records after sequence `from`, returning
	// store.ErrCompacted when the node's tail no longer reaches back.
	WAL(ctx context.Context, from uint64) ([]byte, error)
}

// FollowerOptions tunes a follower.
type FollowerOptions struct {
	// NoSync skips fsync on the replica WAL — test-only speed.
	NoSync bool
	// Store configures the store opened at promotion.
	Store store.Options
}

// NewFollower builds a follower replicating `node` into dir.
func NewFollower(node, dir string, fetch Fetch, opts FollowerOptions) *Follower {
	return &Follower{node: node, dir: dir, fetch: fetch, opts: opts}
}

// ErrPromoted is returned by Poll after Promote: the replica has become
// a live store and must not be appended to behind its back.
var ErrPromoted = errors.New("cluster: follower already promoted")

// sync (re-)seeds the replica from the node's full snapshot. Called
// before the first poll and after a compaction outruns the cursor.
func (f *Follower) syncLocked(ctx context.Context) error {
	st, err := f.fetch.State(ctx)
	if err != nil {
		return fmt.Errorf("cluster: fetch state of %s: %w", f.node, err)
	}
	if f.wal != nil {
		f.wal.Close()
		f.wal = nil
	}
	if err := store.SeedDir(f.dir, st, store.Options{NoSync: f.opts.NoSync}); err != nil {
		return err
	}
	w, err := os.OpenFile(store.WALPath(f.dir), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("cluster: open replica WAL: %w", err)
	}
	f.wal = w
	f.lastSeq = st.LastSeq
	f.seeded = true
	return nil
}

// Poll ships one round: fetch the tail after the cursor, verify
// contiguity, append the verified prefix verbatim, advance. On
// ErrCompacted it re-seeds from the full snapshot once and retries.
// A torn tail in the reply (a reply cut short mid-frame) keeps the
// clean prefix and succeeds; corruption and contiguity breaks fail the
// poll without advancing past the verified prefix.
func (f *Follower) Poll(ctx context.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted {
		return ErrPromoted
	}
	if !f.seeded {
		if err := f.syncLocked(ctx); err != nil {
			return err
		}
	}
	raw, err := f.fetch.WAL(ctx, f.lastSeq)
	if errors.Is(err, store.ErrCompacted) {
		f.resyncs++
		if err := f.syncLocked(ctx); err != nil {
			return err
		}
		raw, err = f.fetch.WAL(ctx, f.lastSeq)
	}
	if err != nil {
		return fmt.Errorf("cluster: fetch WAL of %s: %w", f.node, err)
	}
	recs, good, derr := DecodeShip(raw, f.lastSeq)
	var tail *store.TailError
	if derr != nil && !errors.As(derr, &tail) {
		// Corruption or a contiguity break: the prefix below `good` is
		// still sound, but the poll must fail loudly.
		if err := f.appendLocked(raw[:good], recs); err != nil {
			return err
		}
		return fmt.Errorf("cluster: shipped WAL from %s: %w", f.node, derr)
	}
	return f.appendLocked(raw[:good], recs)
}

// appendLocked writes the verified raw prefix to the replica WAL and
// advances the cursor. The primary's bytes land verbatim — re-encoding
// could legally change JSON escaping, and the replica must be
// byte-identical to what the primary acknowledged.
func (f *Follower) appendLocked(raw []byte, recs []store.Record) error {
	if len(raw) == 0 {
		return nil
	}
	if _, err := f.wal.Write(raw); err != nil {
		return fmt.Errorf("cluster: append replica WAL: %w", err)
	}
	if !f.opts.NoSync {
		if err := f.wal.Sync(); err != nil {
			return fmt.Errorf("cluster: fsync replica WAL: %w", err)
		}
	}
	f.lastSeq = recs[len(recs)-1].Seq
	f.shipped += uint64(len(recs))
	return nil
}

// Run polls on a fixed interval until ctx is canceled. Poll errors are
// transient by design (the node may be mid-restart); they are counted
// in Stats and the loop keeps going.
func (f *Follower) Run(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_ = f.Poll(ctx)
		}
	}
}

// ReplicaState materializes the replica's current durable state without
// promoting it: the snapshot and WAL are read from the replica
// directory exactly as recovery would (store.Inspect), leaving the
// shipping WAL handle untouched. It backs the router's stale-allowed
// reads while a node is down but not yet promoted. After Promote the
// replica is a live store that must not be read behind its back, so
// ErrPromoted is returned (the router should be talking to the promoted
// server by then anyway).
func (f *Follower) ReplicaState() (*store.State, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted {
		return nil, ErrPromoted
	}
	if !f.seeded {
		return nil, fmt.Errorf("cluster: replica of %s never synced", f.node)
	}
	rep, err := store.Inspect(f.dir)
	if err != nil {
		return nil, fmt.Errorf("cluster: read replica of %s: %w", f.node, err)
	}
	if !rep.Clean() || rep.State == nil {
		return nil, fmt.Errorf("cluster: replica of %s is not readable (snapshot: %v, corrupt: %v, apply: %v)",
			f.node, rep.SnapshotErr, rep.Corrupt, rep.ApplyErr)
	}
	return rep.State, nil
}

// Promote turns the replica into a live server: the replica WAL is
// closed, the directory is opened as a normal store, and server.Recover
// replays it — the identical path a restarted primary takes. The
// follower stops shipping permanently.
func (f *Follower) Promote(cfg server.Config) (*store.Store, *server.Server, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted {
		return nil, nil, ErrPromoted
	}
	if !f.seeded {
		return nil, nil, fmt.Errorf("cluster: promote %s: follower never synced", f.node)
	}
	if f.wal != nil {
		if err := f.wal.Close(); err != nil {
			return nil, nil, fmt.Errorf("cluster: close replica WAL: %w", err)
		}
		f.wal = nil
	}
	f.promoted = true
	st, err := store.Open(f.dir, f.opts.Store)
	if err != nil {
		return nil, nil, err
	}
	srv, err := server.Recover(cfg, st)
	if err != nil {
		st.Close()
		return nil, nil, err
	}
	return st, srv, nil
}

// FollowerStats is a point-in-time copy of a follower's counters.
type FollowerStats struct {
	// Node is the replicated node's name.
	Node string `json:"node"`
	// LastSeq is the replica's durable cursor.
	LastSeq uint64 `json:"lastSeq"`
	// Shipped counts records appended to the replica WAL.
	Shipped uint64 `json:"shipped"`
	// Resyncs counts full re-seeds forced by primary compaction.
	Resyncs uint64 `json:"resyncs"`
	// Promoted reports whether the replica became a live server.
	Promoted bool `json:"promoted"`
}

// Stats snapshots the follower.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FollowerStats{Node: f.node, LastSeq: f.lastSeq, Shipped: f.shipped, Resyncs: f.resyncs, Promoted: f.promoted}
}
