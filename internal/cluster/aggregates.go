package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"hputune/internal/server"
)

// Aggregate-exchange wire format: the reply body of
// GET /v1/replication/aggregates is one server.ReplicationAggregatesResponse
// document — a node's ingest partition as additive sufficient
// statistics plus a monotone version. DecodeAggregates is the merger's
// gatekeeper over it: beyond well-formed JSON it enforces the aggregate
// invariants the ingest path enforces on trace records, because one
// malformed partition (a negative count, a +Inf total) would poison the
// merged fit for every node in the cluster, not just the one serving
// the bad payload.

// AggregatesError reports an exchange payload that decoded as JSON but
// violates the aggregate invariants. Node is the self-reported serving
// node (may be empty when the document never carried one).
type AggregatesError struct {
	Node  string
	Price int
	Cause string
}

func (e *AggregatesError) Error() string {
	if e.Price != 0 {
		return fmt.Sprintf("cluster: aggregates from %q: price %d: %s", e.Node, e.Price, e.Cause)
	}
	return fmt.Sprintf("cluster: aggregates from %q: %s", e.Node, e.Cause)
}

// DecodeAggregates decodes and validates one aggregate-exchange reply.
// The document must be a single JSON object with no unknown fields and
// no trailing data; every price must be >= 1 and every aggregate finite
// and non-negative — the same domain the ingest handlers admit, so a
// merged map is always a legal FitAggregates input. It never panics on
// arbitrary input (fuzzed in FuzzAggregatesDecode).
func DecodeAggregates(data []byte) (server.ReplicationAggregatesResponse, error) {
	var doc server.ReplicationAggregatesResponse
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return server.ReplicationAggregatesResponse{}, fmt.Errorf("cluster: decode aggregates: %w", err)
	}
	if dec.More() {
		return server.ReplicationAggregatesResponse{}, fmt.Errorf("cluster: decode aggregates: trailing data after the document")
	}
	var total uint64
	for price, agg := range doc.Aggs {
		if price < 1 {
			return server.ReplicationAggregatesResponse{}, &AggregatesError{Node: doc.Node, Price: price, Cause: "price below 1 (model domain is c >= 1)"}
		}
		if agg.N < 0 {
			return server.ReplicationAggregatesResponse{}, &AggregatesError{Node: doc.Node, Price: price, Cause: fmt.Sprintf("negative observation count %d", agg.N)}
		}
		if !(agg.Total >= 0) || math.IsInf(agg.Total, 1) {
			return server.ReplicationAggregatesResponse{}, &AggregatesError{Node: doc.Node, Price: price, Cause: fmt.Sprintf("duration total %v is not a finite non-negative number", agg.Total)}
		}
		sum := total + uint64(agg.N)
		if sum < total {
			return server.ReplicationAggregatesResponse{}, &AggregatesError{Node: doc.Node, Price: price, Cause: "observation counts overflow"}
		}
		total = sum
	}
	// Every ingested record contributes exactly one observation, so the
	// counts can never exceed the node's lifetime record counter.
	if total > doc.Records {
		return server.ReplicationAggregatesResponse{}, &AggregatesError{Node: doc.Node,
			Cause: fmt.Sprintf("aggregates hold %d observations but the node reports only %d records", total, doc.Records)}
	}
	return doc, nil
}
