package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hputune/internal/server"
	"hputune/internal/store"
)

// TestRouterServesReplicaReadsWhileNodeDown pins the stale-read window:
// while a node is down but its replica has not been promoted, GET reads
// for its campaigns, the cluster list and the stats/metrics fan-outs
// are answered from the follower replica and labeled stale; writes keep
// failing 503. After promotion the replica refuses back-door reads.
func TestRouterServesReplicaReadsWhileNodeDown(t *testing.T) {
	n := newDrillNode(t, "n0", nil)
	cl := New(Config{})
	if err := cl.AddNode("n0", n.ts.URL); err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(cl, nil)
	rt.SetReplicaSource(func(name string) (*store.State, error) {
		if name != "n0" {
			return nil, fmt.Errorf("no follower for %s", name)
		}
		return n.fol.ReplicaState()
	})
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)

	ids := startClusterFleet(t, rts.URL, routerCampaignDoc)
	if len(ids) != 1 {
		t.Fatalf("started %v", ids)
	}
	id := ids[0]
	live := waitAllTerminal(t, rts.URL, ids)[0]
	if err := n.fol.Poll(context.Background()); err != nil {
		t.Fatalf("poll: %v", err)
	}
	n.srv.Close()
	n.ts.Close()

	// GET by id: served from the replica, labeled in header and body,
	// with the result the live node last acknowledged.
	resp, err := http.Get(rts.URL + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale get: status %d: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("X-HT-Stale") != "n0" {
		t.Fatalf("stale get: header %q, want n0", resp.Header.Get("X-HT-Stale"))
	}
	var got server.CampaignGetResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("decode: %v: %s", err, raw)
	}
	if !got.Stale || got.ID != id {
		t.Fatalf("stale get: %+v", got)
	}
	if g, w := resultJSON(t, got.Result), resultJSON(t, live); g != w {
		t.Fatalf("replica result diverged from the last live read\n got  %s\n want %s", g, w)
	}

	// Unknown campaigns 404 with a stale-read note, not 503.
	if _, status := routerResult(t, rts.URL, "n0-c999"); status != http.StatusNotFound {
		t.Fatalf("unknown id on replica: status %d, want 404", status)
	}

	// The cluster list names the stale node and still lists its campaign.
	resp2, err := http.Get(rts.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var list server.CampaignListResponse
	if err := json.NewDecoder(resp2.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get("X-HT-Stale") != "n0" {
		t.Fatalf("stale list header %q", resp2.Header.Get("X-HT-Stale"))
	}
	if len(list.StaleNodes) != 1 || list.StaleNodes[0] != "n0" {
		t.Fatalf("staleNodes %v", list.StaleNodes)
	}
	found := false
	for _, sum := range list.Campaigns {
		if sum.ID == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("campaign %s missing from stale list %v", id, list.Campaigns)
	}

	// Stats/metrics fan-outs carry a stale replica summary for the node.
	for _, path := range []string{"/v1/stats", "/v1/metrics"} {
		resp3, err := http.Get(rts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			Nodes map[string]json.RawMessage `json:"nodes"`
		}
		if err := json.NewDecoder(resp3.Body).Decode(&doc); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp3.Body.Close()
		var nodeDoc struct {
			Stale   bool   `json:"stale"`
			LastSeq uint64 `json:"lastSeq"`
		}
		if err := json.Unmarshal(doc.Nodes["n0"], &nodeDoc); err != nil || !nodeDoc.Stale || nodeDoc.LastSeq == 0 {
			t.Fatalf("%s: stale node doc %s (err %v)", path, doc.Nodes["n0"], err)
		}
	}

	// Writes do not fall back: a DELETE to the dead node stays 503.
	req, err := http.NewRequest(http.MethodDelete, rts.URL+"/v1/campaigns/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp4, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp4.Body)
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("delete on dead node: status %d, want 503", resp4.StatusCode)
	}

	if rt.Stats().StaleReads == 0 {
		t.Fatal("stale reads were served but not counted")
	}

	// After promotion the replica is a live store; the back-door read
	// path must refuse, leaving only the 503 until the router repoints.
	if _, _, err := n.fol.Promote(server.Config{Node: "n0"}); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if _, status := routerResult(t, rts.URL, id); status != http.StatusServiceUnavailable {
		t.Fatalf("get after promotion without repoint: status %d, want 503", status)
	}
}

// TestRouterSameHostSharesIngestPlacement pins the client-identity
// satellite: two distinct TCP connections from the same host with no
// client header must resolve to the same identity (host, port
// stripped) and so ingest to the same node — the raw remote address
// would hand each connection a fresh ephemeral port and scatter one
// client's stream across the ring.
func TestRouterSameHostSharesIngestPlacement(t *testing.T) {
	_, _, rts, nodes := newTestCluster(t, 3)
	ingest := `{"TaskID": "t1", "Rep": 1, "Price": 1, "PostedAt": 0, "Accepted": 0.5, "Done": 1, "WorkerID": 1, "Correct": true}`
	for i := 0; i < 4; i++ {
		// A fresh transport per request forces a fresh connection, hence a
		// fresh ephemeral source port.
		tr := &http.Transport{DisableKeepAlives: true}
		client := &http.Client{Transport: tr}
		resp, err := client.Post(rts.URL+"/v1/ingest", "application/json", strings.NewReader(ingest))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		tr.CloseIdleConnections()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: status %d", i, resp.StatusCode)
		}
	}
	owners := 0
	for _, n := range nodes {
		if c := n.srv.Metrics().Serve.Ingests; c > 0 {
			owners++
			if c != 4 {
				t.Fatalf("node %s saw %d of 4 same-host ingests", n.name, c)
			}
		}
	}
	if owners != 1 {
		t.Fatalf("one host's stream landed on %d nodes, want 1", owners)
	}
}

// TestRouterStampsClientIdentityOnForward pins the forwarding
// satellite: the router stamps the resolved client identity onto
// node-bound requests, so node-side per-client rate accounting sees
// the real clients, not one shared bucket keyed by the router's own
// address. A caller-supplied header must survive verbatim.
func TestRouterStampsClientIdentityOnForward(t *testing.T) {
	srv, err := server.New(server.Config{
		Node:    "n0",
		Traffic: server.TrafficConfig{RatePerClient: 1000, RateBurst: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	cl := New(Config{})
	if err := cl.AddNode("n0", ts.URL); err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(cl, nil)
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)

	ingest := `{"TaskID": "t1", "Rep": 1, "Price": 1, "PostedAt": 0, "Accepted": 0.5, "Done": 1, "WorkerID": 1, "Correct": true}`
	send := func(clientID string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, rts.URL+"/v1/ingest", strings.NewReader(ingest))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if clientID != "" {
			req.Header.Set(server.DefaultClientHeader, clientID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest as %q: status %d", clientID, resp.StatusCode)
		}
	}
	for _, id := range []string{"alice", "bob", "carol"} {
		send(id)
		send(id) // repeats reuse the same bucket
	}
	send("") // header-less: stamped with the caller's host
	send("")

	// 3 named clients + 1 host identity = 4 buckets. Without stamping,
	// every header-less request would collapse into a bucket keyed by
	// the router's raw address — and with the old raw-RemoteAddr rule,
	// each connection would mint a new one.
	if got := srv.Metrics().RateLimit.Clients; got != 4 {
		t.Fatalf("node tracks %d rate-limit clients, want 4 (alice, bob, carol, caller host)", got)
	}
}
