// Package cluster shards the htuned serving layer across nodes: a
// consistent-hash ring places campaigns and ingest streams, a thin HTTP
// router (Router) scatters fleet starts and proxies the /v1 envelope
// API unchanged, and per-node WAL shipping (Follower) keeps a
// byte-identical replica of each node's state directory so a killed
// node's campaigns resume on the follower exactly where the durable
// prefix left off. The fault-injection drill suite in this package is
// the correctness proof: it kills nodes mid-fleet and asserts the
// promoted replica finishes with results byte-identical to an
// uninterrupted single-process run.
package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
)

// Config tunes a Cluster. The zero value is usable.
type Config struct {
	// Vnodes is the per-node vnode count; <= 0 means DefaultVnodes.
	Vnodes int
}

// node is one member's routing state.
type node struct {
	url      string
	healthy  bool
	promoted bool
}

// Cluster is the router's membership view: the placement ring plus each
// node's URL and health. Placement ignores health — an unhealthy node
// keeps its keyspace so its campaigns stay addressed to it, and
// failover repoints the node's URL at the promoted replica instead of
// reshuffling ownership.
type Cluster struct {
	mu    sync.RWMutex
	ring  *Ring
	nodes map[string]*node
}

// New builds an empty cluster.
func New(cfg Config) *Cluster {
	return &Cluster{ring: NewRing(cfg.Vnodes), nodes: make(map[string]*node)}
}

// validNodeName rejects names that would break the cluster-wide
// campaign id scheme "<node>-c<n>", which is parsed by cutting at the
// first '-'.
func validNodeName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if !('a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9' || c == '_') {
			return false
		}
	}
	return true
}

// AddNode registers a member. Names are [a-zA-Z0-9_]+ — in particular
// no '-', reserved as the id separator. Re-adding a known node updates
// its URL without moving the ring.
func (c *Cluster) AddNode(name, url string) error {
	if !validNodeName(name) {
		return fmt.Errorf("cluster: node name %q must match [a-zA-Z0-9_]+ ('-' separates node from campaign id)", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.nodes[name]; ok {
		n.url = url
		return nil
	}
	c.nodes[name] = &node{url: url, healthy: true}
	c.ring.Add(name)
	return nil
}

// RemoveNode drops a member and its keyspace.
func (c *Cluster) RemoveNode(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.nodes, name)
	c.ring.Remove(name)
}

// Repoint redirects a node's traffic to a replacement URL — the
// promoted follower — and marks it healthy again. The ring is
// untouched: the node's campaigns keep their ids and placement.
func (c *Cluster) Repoint(name, url string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[name]
	if !ok {
		return fmt.Errorf("cluster: repoint unknown node %q", name)
	}
	n.url = url
	n.healthy = true
	n.promoted = true
	return nil
}

// SetHealthy flips a node's health flag (used by the router's health
// monitor); unknown names are ignored.
func (c *Cluster) SetHealthy(name string, healthy bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.nodes[name]; ok {
		n.healthy = healthy
	}
}

// NodeURL resolves a member's current URL.
func (c *Cluster) NodeURL(name string) (string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n, ok := c.nodes[name]
	if !ok {
		return "", false
	}
	return n.url, true
}

// Place returns the owner of key, or "" on an empty cluster.
func (c *Cluster) Place(key string) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring.Lookup(key)
}

// NodeStatus is one member's view in Nodes().
type NodeStatus struct {
	Name     string `json:"name"`
	URL      string `json:"url"`
	Healthy  bool   `json:"healthy"`
	Promoted bool   `json:"promoted"`
}

// Nodes lists the members, sorted by name.
func (c *Cluster) Nodes() []NodeStatus {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]NodeStatus, 0, len(c.nodes))
	for name, n := range c.nodes {
		out = append(out, NodeStatus{Name: name, URL: n.url, Healthy: n.healthy, Promoted: n.promoted})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Healthy lists the currently healthy members, sorted by name — the
// round-robin pool for stateless work.
func (c *Cluster) Healthy() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for name, n := range c.nodes {
		if n.healthy {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// CheckHealth probes every member's /v1/healthz once and updates the
// health flags. It returns the names that failed the probe.
func (c *Cluster) CheckHealth(ctx context.Context, client *http.Client) []string {
	if client == nil {
		client = http.DefaultClient
	}
	var failed []string
	for _, n := range c.Nodes() {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.URL+"/v1/healthz", nil)
		ok := false
		if err == nil {
			if resp, err := client.Do(req); err == nil {
				resp.Body.Close()
				ok = resp.StatusCode == http.StatusOK
			}
		}
		c.SetHealthy(n.Name, ok)
		if !ok {
			failed = append(failed, n.Name)
		}
	}
	return failed
}
