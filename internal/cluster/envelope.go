package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"hputune/internal/server"
)

// The router speaks the exact envelope dialect the nodes do — same
// {"error":{...}} document, same codes via server.CodeForStatus — so a
// client cannot tell a router-originated error from a node's.

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeEnvelope(w http.ResponseWriter, status int, code string, retry time.Duration, format string, args ...any) {
	e := server.APIError{Code: code, Message: fmt.Sprintf(format, args...)}
	if retry > 0 {
		e.RetryAfterMS = int64((retry + time.Millisecond - 1) / time.Millisecond)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", (retry+time.Second-1)/time.Second))
	}
	writeJSON(w, status, server.ErrorEnvelope{Error: e})
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeEnvelope(w, status, server.CodeForStatus(status), 0, format, args...)
}

// maxInterceptBody caps how much of an intercepted plain-text error
// body is preserved as the envelope message.
const maxInterceptBody = 256

// envelopeWriter mirrors the serving layer's response wrapper: any
// non-JSON error reply — the ServeMux's own plain-text 404/405s —
// is rewritten into the uniform envelope after the handler returns.
type envelopeWriter struct {
	rw          http.ResponseWriter
	status      int
	wrote       bool
	intercept   bool
	intercepted []byte
}

func (w *envelopeWriter) Header() http.Header { return w.rw.Header() }

func (w *envelopeWriter) WriteHeader(status int) {
	if w.wrote {
		return
	}
	w.wrote = true
	w.status = status
	if status >= 400 && !strings.HasPrefix(w.rw.Header().Get("Content-Type"), "application/json") {
		w.intercept = true
		h := w.rw.Header()
		h.Set("Content-Type", "application/json")
		h.Del("Content-Length")
	}
	w.rw.WriteHeader(status)
}

func (w *envelopeWriter) Write(p []byte) (int, error) {
	if !w.wrote {
		w.WriteHeader(http.StatusOK)
	}
	if w.intercept {
		if room := maxInterceptBody - len(w.intercepted); room > 0 {
			if len(p) > room {
				p = p[:room]
			}
			w.intercepted = append(w.intercepted, p...)
		}
		return len(p), nil
	}
	return w.rw.Write(p)
}

func (w *envelopeWriter) finish() {
	if !w.intercept {
		return
	}
	msg := strings.TrimSpace(string(w.intercepted))
	if msg == "" {
		msg = http.StatusText(w.status)
	}
	enc, err := json.Marshal(server.ErrorEnvelope{Error: server.APIError{Code: server.CodeForStatus(w.status), Message: msg}})
	if err != nil {
		return
	}
	_, _ = w.rw.Write(append(enc, '\n'))
	w.intercept = false
}
