package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// Watchdog drives failover: it probes every node's health each tick,
// counts consecutive failures, and once a node crosses the threshold
// asks its promote callback for a replacement URL — the promoted
// follower — and repoints the node's traffic there. The ring never
// moves; campaigns keep their placement and ids across the swap.
type Watchdog struct {
	cl        *Cluster
	client    *http.Client
	threshold int
	// promote turns a dead node's replica into a live server and
	// returns its URL; an error leaves the node down and the watchdog
	// retrying on later ticks.
	promote func(name string) (string, error)
	// onEvent, when non-nil, receives one line per state change.
	onEvent func(format string, args ...any)

	mu      sync.Mutex
	strikes map[string]int
}

// NewWatchdog builds a watchdog over cl. threshold is the consecutive
// failed probes before promotion (<= 0 disables promotion — the
// watchdog then only maintains health flags); client nil means
// http.DefaultClient; onEvent may be nil.
func NewWatchdog(cl *Cluster, client *http.Client, threshold int, promote func(string) (string, error), onEvent func(string, ...any)) *Watchdog {
	return &Watchdog{
		cl: cl, client: client, threshold: threshold,
		promote: promote, onEvent: onEvent,
		strikes: make(map[string]int),
	}
}

func (w *Watchdog) event(format string, args ...any) {
	if w.onEvent != nil {
		w.onEvent(format, args...)
	}
}

// Tick runs one probe round and any promotions it triggers.
func (w *Watchdog) Tick(ctx context.Context) {
	failed := w.cl.CheckHealth(ctx, w.client)
	down := make(map[string]bool, len(failed))
	for _, name := range failed {
		down[name] = true
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, n := range w.cl.Nodes() {
		if !down[n.Name] {
			w.strikes[n.Name] = 0
			continue
		}
		w.strikes[n.Name]++
		if w.threshold <= 0 || w.promote == nil || w.strikes[n.Name] < w.threshold || n.Promoted {
			continue
		}
		w.event("node %s failed %d probes; promoting its replica", n.Name, w.strikes[n.Name])
		url, err := w.promote(n.Name)
		if err != nil {
			w.event("promote %s: %v", n.Name, err)
			continue
		}
		if err := w.cl.Repoint(n.Name, url); err != nil {
			w.event("promote %s: %v", n.Name, err)
			continue
		}
		w.event("node %s now served by its promoted replica on %s", n.Name, url)
	}
}

// Run ticks on a fixed interval until ctx is canceled.
func (w *Watchdog) Run(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			w.Tick(ctx)
		}
	}
}
